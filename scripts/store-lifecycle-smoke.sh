#!/usr/bin/env bash
# End-to-end generational-store smoke test: build a directory store,
# append a generation, tombstone a member, kill a compaction mid-run,
# then require the directory to reload with the right answers — the
# appended member must hit, the deleted member must not — and a clean
# compaction afterwards to leave a single purged generation. CI runs
# this; it is the check that crash-safe mutation actually survives a
# kill -9, not just that the crash matrix passes in-process.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT

echo "== build"
go build -o "$workdir/alae" ./cmd/alae
go build -o "$workdir/alae-gen" ./cmd/alae-gen

echo "== generate data"
# No repeats: the deleted member's prefix must not align anywhere else
# above the verification threshold.
"$workdir/alae-gen" -kind dna -n 400000 -queries 1 -repeats 0 -out "$workdir" >/dev/null
bases=$(awk '/^>/{next}{printf "%s",$0}' "$workdir"/dna_text_*.fa)

# Four base members and one to append, 80kb each, disjoint chunks.
fasta() { # fasta NAME START  -> one 80000-base record on stdout
  echo ">$1"
  printf '%s\n' "${bases:$2:80000}" | fold -w 60
}
{ fasta m1 0; fasta m2 80000; fasta m3 160000; fasta m4 240000; } >"$workdir/base.fa"
fasta m5 320000 >"$workdir/extra.fa"

# Verification queries: 200-base prefixes. An exact match scores 200,
# so -threshold 150 admits only the member itself.
{ echo ">q-appended"; printf '%s\n' "${bases:320000:200}"; } >"$workdir/q_new.fa"
{ echo ">q-deleted"; printf '%s\n' "${bases:80000:200}"; } >"$workdir/q_del.fa"

hits() { # hits QUERY_FILE -> hit count for the one query in it
  "$workdir/alae" -load-store "$workdir/db" -threshold 150 -query "$1" |
    sed -n 's/^query .*: \([0-9]*\) hit(s).*/\1/p'
}

echo "== build the directory store"
"$workdir/alae" -text "$workdir/base.fa" -shards 2 -save-store-dir "$workdir/db" >/dev/null
[ -f "$workdir/db/MANIFEST" ] || { echo "no MANIFEST in the store directory"; exit 1; }

echo "== append a generation, tombstone a member"
"$workdir/alae" -load-store "$workdir/db" -append "$workdir/extra.fa" >"$workdir/append.log"
grep -q "appended 1 member" "$workdir/append.log"
"$workdir/alae" -load-store "$workdir/db" -delete m2 >"$workdir/delete.log"
grep -q "deleted 1 member" "$workdir/delete.log"

echo "== kill a compaction mid-run"
"$workdir/alae" -load-store "$workdir/db" -compact >"$workdir/compact1.log" 2>&1 &
compact_pid=$!
sleep 0.05
if kill -9 "$compact_pid" 2>/dev/null; then
  echo "compaction killed mid-run"
else
  echo "compaction finished before the kill (still a valid recovery case)"
fi
wait "$compact_pid" 2>/dev/null || true

echo "== the store must reload and answer correctly after the kill"
new_hits=$(hits "$workdir/q_new.fa")
del_hits=$(hits "$workdir/q_del.fa")
[ "$new_hits" -gt 0 ] || { echo "appended member lost after kill ($new_hits hits)"; exit 1; }
[ "$del_hits" -eq 0 ] || { echo "deleted member resurfaced after kill ($del_hits hits)"; exit 1; }
echo "post-kill answers: appended=$new_hits deleted=$del_hits"

if ls "$workdir/db"/*.tmp-* >/dev/null 2>&1; then
  echo "temp debris survived the recovery load:"; ls "$workdir/db"; exit 1
fi

echo "== clean compaction"
"$workdir/alae" -load-store "$workdir/db" -compact >"$workdir/compact2.log"
grep -q "store now:" "$workdir/compact2.log" || { echo "compaction did not report store state"; exit 1; }
grep -q "0 tombstone(s)" "$workdir/compact2.log" || {
  echo "tombstones survived compaction:"; cat "$workdir/compact2.log"; exit 1
}

echo "== post-compaction answers unchanged"
[ "$(hits "$workdir/q_new.fa")" -eq "$new_hits" ] || { echo "appended hits changed after compaction"; exit 1; }
[ "$(hits "$workdir/q_del.fa")" -eq 0 ] || { echo "deleted member resurfaced after compaction"; exit 1; }

echo "store lifecycle smoke: PASS"
