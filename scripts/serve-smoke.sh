#!/usr/bin/env bash
# End-to-end serving smoke test: build a store from generated FASTA,
# start alae-serve against it, exercise the endpoints — health, a
# normal search, a search under a short deadline, stats — then SIGTERM
# the daemon and require a clean drain with exit status 0. CI runs
# this; it is the check that the binary actually serves and actually
# drains, not just that the packages compile.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/alae" ./cmd/alae
go build -o "$workdir/alae-gen" ./cmd/alae-gen
go build -o "$workdir/alae-serve" ./cmd/alae-serve

echo "== generate data and build the store"
"$workdir/alae-gen" -kind dna -n 100000 -m 600 -queries 2 -out "$workdir" >/dev/null
"$workdir/alae" -text "$workdir/dna_text_100000.fa" -shards 2 \
  -save-store "$workdir/db.alae" >/dev/null

echo "== start the daemon"
addr="127.0.0.1:7741"
"$workdir/alae-serve" -store "$workdir/db.alae" -addr "$addr" \
  -search-timeout 20s -reload 5s -sweep 5s -probe 5s \
  >"$workdir/serve.log" 2>&1 &
server_pid=$!

for i in $(seq 1 50); do
  if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "daemon died during startup:"; cat "$workdir/serve.log"; exit 1
  fi
  sleep 0.2
done
curl -fsS "http://$addr/healthz" | grep -q ok
echo "healthz: ok"

echo "== search (a member prefix must hit)"
query=$(awk '/^>/{next}{printf "%s",$0}' "$workdir/dna_text_100000.fa" | cut -c1-200)
code=$(curl -s -o "$workdir/search.json" -w '%{http_code}' \
  -d "{\"query\":\"$query\"}" "http://$addr/search")
[ "$code" = 200 ] || { echo "search returned $code"; cat "$workdir/search.json"; exit 1; }
grep -q '"total_hits":' "$workdir/search.json"
total=$(sed -n 's/.*"total_hits":\([0-9]*\).*/\1/p' "$workdir/search.json")
[ "$total" -gt 0 ] || { echo "search found no hits"; cat "$workdir/search.json"; exit 1; }
echo "search: $total hit(s)"

echo "== search under a 1ms deadline (must answer 200 or 504, never crash)"
code=$(curl -s -o "$workdir/deadline.json" -w '%{http_code}' \
  -d "{\"query\":\"$query\",\"timeout_ms\":1}" "http://$addr/search")
case "$code" in
  200|504) echo "deadline search: $code" ;;
  *) echo "deadline search returned $code"; cat "$workdir/deadline.json"; exit 1 ;;
esac
curl -fsS "http://$addr/healthz" >/dev/null # still serving

echo "== stats"
curl -fsS "http://$addr/stats" | grep -q '"admitted":'

echo "== SIGTERM: the daemon must drain and exit 0"
kill -TERM "$server_pid"
status=0
for i in $(seq 1 100); do
  if ! kill -0 "$server_pid" 2>/dev/null; then break; fi
  sleep 0.2
done
if kill -0 "$server_pid" 2>/dev/null; then
  echo "daemon did not exit within 20s of SIGTERM"; cat "$workdir/serve.log"; exit 1
fi
wait "$server_pid" || status=$?
server_pid=""
if [ "$status" -ne 0 ]; then
  echo "daemon exited $status after SIGTERM:"; cat "$workdir/serve.log"; exit 1
fi
grep -q "drained, exiting" "$workdir/serve.log"
echo "drain: clean exit 0"
echo "serve smoke: PASS"
