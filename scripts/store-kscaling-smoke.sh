#!/usr/bin/env bash
# Store k-scaling smoke test: build a directory store once, search the
# same queries through `alae` at -shards 1, 2 and 4, and require every
# line of hits output AND every CalculatedEntries counter to be
# byte-identical across the three runs. This is the shared-index
# scatter's external contract — K is a pure parallelism knob over one
# monolithic index, so changing it may change nothing observable but
# wall clock. CI runs this end to end through the real CLI, not just
# the in-process parity tests.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT

echo "== build"
go build -o "$workdir/alae" ./cmd/alae
go build -o "$workdir/alae-gen" ./cmd/alae-gen

echo "== generate data"
"$workdir/alae-gen" -kind dna -n 200000 -queries 3 -out "$workdir" >/dev/null
text=$(ls "$workdir"/dna_text_*.fa)
queries=$(ls "$workdir"/dna_queries_*.fa)

echo "== build the directory store (once; K is not a build choice)"
"$workdir/alae" -text "$text" -save-store-dir "$workdir/db" >/dev/null

echo "== search at k=1, 2, 4"
for k in 1 2 4; do
  # Cache off so every run does the full scatter; strip the k-dependent
  # preamble and the timing-ish stats fields we do not pin (none: the
  # whole Stats struct is deterministic, so keep every line after the
  # header).
  "$workdir/alae" -load-store "$workdir/db" -shards "$k" -query "$queries" \
    -threshold 50 -query-cache -1 -max-hits 0 -stats |
    grep -v '^loaded store:' >"$workdir/out.k$k"
  hits=$(sed -n 's/^query .*: \([0-9]*\) hit(s).*/\1/p' "$workdir/out.k$k" | awk '{n+=$1} END{print n}')
  entries=$(grep -o 'CalculatedEntries:[0-9]*' "$workdir/out.k$k" | cut -d: -f2 | awk '{n+=$1} END{print n}')
  echo "k=$k: $hits hit(s), $entries entries"
done

echo "== compare"
cmp "$workdir/out.k1" "$workdir/out.k2" || { echo "k=2 output diverges from k=1"; exit 1; }
cmp "$workdir/out.k1" "$workdir/out.k4" || { echo "k=4 output diverges from k=1"; exit 1; }

echo "store k-scaling smoke passed: k=1/2/4 outputs byte-identical"
