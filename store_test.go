package alae

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/seq"
)

// Store acceptance tests: sharding must be invisible (K shards return
// the monolithic index's mapped hit set, byte for byte), persistence
// must round-trip the partition, and the query cache must only move
// work, never change it.

// storeWorkload builds a multi-member database whose queries are
// homologous to segments placed well inside chosen members — far
// enough from member boundaries that no above-threshold alignment can
// reach a separator, which is what makes K>1 parity exact.
type storeWorkload struct {
	records []SeqRecord
	queries [][]byte
}

func buildStoreWorkload(alpha *seq.Alphabet, members, memberLen, segLen int, seed int64) storeWorkload {
	rng := rand.New(rand.NewSource(seed))
	letters := alpha.Letters()
	randSeq := func(n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = letters[rng.Intn(len(letters))]
		}
		return out
	}
	var wl storeWorkload
	for i := 0; i < members; i++ {
		wl.records = append(wl.records, SeqRecord{
			Name: fmt.Sprintf("member%02d", i),
			Seq:  randSeq(memberLen),
		})
	}
	// Two queries, each homologous to segments of three members, the
	// segments centred in their members.
	for qi := 0; qi < 2; qi++ {
		query := randSeq(3*segLen + 300)
		for k := 0; k < 3; k++ {
			src := (qi*3 + k*2 + 1) % members
			mid := memberLen/2 - segLen/2
			seg := seq.Mutate(alpha, wl.records[src].Seq[mid:mid+segLen],
				seq.MutationConfig{SubstitutionRate: 0.05, IndelRate: 0.01}, rng)
			copy(query[100+k*(segLen+50):], seg)
		}
		wl.queries = append(wl.queries, query)
	}
	return wl
}

// monolithicSeqHits maps a monolithic Index result over the same
// concatenation into the store's SeqHit view — the reference the
// scatter-gather must reproduce.
func monolithicSeqHits(res *Result, tab *seq.Table) []SeqHit {
	out := make([]SeqHit, 0, len(res.Hits))
	for _, h := range res.Hits {
		m, local, ok := tab.Locate(h.TEnd, h.TEnd+1)
		if !ok {
			continue
		}
		out = append(out, SeqHit{Hit: h, Member: m, Name: tab.Name(m), LocalTEnd: local})
	}
	return out
}

func seqHitsEqual(a, b []SeqHit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStoreShardParity is the tentpole acceptance gate: over DNA and
// protein workloads, for sequential and parallel searches, through
// one-shot Store.Search and fresh and re-armed StoreSessions, a store
// with K ∈ {1, 2, 5} shards returns exactly the monolithic index's
// mapped hit set — same members, same local and global coordinates,
// same scores, same E-value-derived threshold.
func TestStoreShardParity(t *testing.T) {
	cases := []struct {
		name   string
		alpha  *seq.Alphabet
		opts   SearchOptions
		seed   int64
		mlen   int
		seglen int
	}{
		{"dna-alae", seq.DNA, SearchOptions{}, 700, 3000, 300},
		{"dna-alae-par", seq.DNA, SearchOptions{Parallelism: 0}, 700, 3000, 300},
		{"dna-hybrid", seq.DNA, SearchOptions{Algorithm: ALAEHybrid}, 701, 2500, 250},
		{"dna-evalue", seq.DNA, SearchOptions{EValue: 1e-5}, 702, 3000, 300},
		{"protein-alae", seq.Protein, SearchOptions{Scheme: DefaultProteinScheme}, 703, 1500, 200},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wl := buildStoreWorkload(tc.alpha, 7, tc.mlen, tc.seglen, tc.seed)
			recs := make([]seq.Record, len(wl.records))
			for i, r := range wl.records {
				recs[i] = seq.Record{Header: r.Name, Seq: r.Seq}
			}
			col := seq.NewCollection(recs)
			// The reference carries the same member-separator barrier the
			// store's generation indexes do, so hit AND entry parity are
			// exact (a barrier-free index would compute a handful of
			// extra entries on paths that touch a separator edge).
			mono := newBarrierIndex(col.Text(), seq.Separator)
			wantThreshold := make([]int, len(wl.queries))
			wantHits := make([][]SeqHit, len(wl.queries))
			wantEntries := make([]int64, len(wl.queries))
			for qi, query := range wl.queries {
				want, err := mono.Search(query, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				wantThreshold[qi] = want.Threshold
				wantHits[qi] = monolithicSeqHits(want, col.Table())
				wantEntries[qi] = want.Stats.CalculatedEntries
				if qi == 0 && len(wantHits[qi]) == 0 {
					t.Fatal("vacuous workload: monolithic search found nothing")
				}
			}
			for _, k := range []int{1, 2, 4} {
				st, err := NewStore(wl.records, StoreOptions{Shards: k})
				if err != nil {
					t.Fatal(err)
				}
				if st.Shards() != k {
					t.Fatalf("built %d shards, want %d", st.Shards(), k)
				}
				ss, err := st.OpenSession(tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				for pass := 0; pass < 2; pass++ { // fresh, then re-armed
					for qi, query := range wl.queries {
						got, err := st.Search(query, tc.opts) // pooled scatter-gather
						if err != nil {
							t.Fatal(err)
						}
						if got.Threshold != wantThreshold[qi] {
							t.Fatalf("K=%d pass %d query %d: store threshold %d, monolithic %d",
								k, pass, qi, got.Threshold, wantThreshold[qi])
						}
						if !seqHitsEqual(got.Hits, wantHits[qi]) {
							t.Fatalf("K=%d pass %d query %d: store hits diverge from monolithic (%d vs %d)",
								k, pass, qi, len(got.Hits), len(wantHits[qi]))
						}
						ses, err := ss.Search(query) // session path, cache bypassed
						if err != nil {
							t.Fatal(err)
						}
						if !seqHitsEqual(ses.Hits, wantHits[qi]) {
							t.Fatalf("K=%d pass %d query %d: store session hits diverge", k, pass, qi)
						}
						if ses.Stats.CalculatedEntries != got.Stats.CalculatedEntries &&
							got.Stats.QueryCacheHits == 0 {
							t.Fatalf("K=%d pass %d query %d: session entries %d, one-shot %d",
								k, pass, qi, ses.Stats.CalculatedEntries, got.Stats.CalculatedEntries)
						}
						// The shared-index scatter's entry-parity gate: K only
						// partitions the resolved work, so CalculatedEntries is
						// byte-equal to the monolithic search for EVERY K — the
						// old text-partitioned sharding redid ~1.7× the entries
						// at K=4.
						if ses.Stats.CalculatedEntries != wantEntries[qi] {
							t.Fatalf("K=%d pass %d query %d: entries %d, monolithic %d",
								k, pass, qi, ses.Stats.CalculatedEntries, wantEntries[qi])
						}
					}
				}
				ss.Close()
				ss.Close() // idempotent
				if _, err := ss.Search(wl.queries[0]); err == nil {
					t.Fatal("Search on a closed StoreSession succeeded")
				}
			}
		})
	}
}

// TestStoreSingleRecordMatchesIndex pins the K=1 degenerate case: a
// store over one record is the raw index — no separators, global
// coordinates equal to text coordinates, identical hit set and work.
func TestStoreSingleRecordMatchesIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(710))
	letters := seq.DNA.Letters()
	text := make([]byte, 12_000)
	for i := range text {
		text[i] = letters[rng.Intn(4)]
	}
	query := seq.Mutate(seq.DNA, text[4_000:4_400],
		seq.MutationConfig{SubstitutionRate: 0.05, IndelRate: 0.01}, rng)
	ix := NewIndex(text)
	want, err := ix.Search(query, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Hits) == 0 {
		t.Fatal("vacuous workload")
	}
	st, err := NewStore([]SeqRecord{{Name: "only", Seq: text}}, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Search(query, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Threshold != want.Threshold {
		t.Fatalf("threshold %d, index %d", got.Threshold, want.Threshold)
	}
	if len(got.Hits) != len(want.Hits) {
		t.Fatalf("%d hits, index %d", len(got.Hits), len(want.Hits))
	}
	for i, sh := range got.Hits {
		if sh.Hit != want.Hits[i] || sh.Member != 0 || sh.Name != "only" || sh.LocalTEnd != want.Hits[i].TEnd {
			t.Fatalf("hit %d: %+v, index hit %+v", i, sh, want.Hits[i])
		}
	}
	if got.Stats.CalculatedEntries != want.Stats.CalculatedEntries {
		t.Fatalf("entries %d, index %d", got.Stats.CalculatedEntries, want.Stats.CalculatedEntries)
	}
}

// TestStoreRejectsSeparatorEndingHits pins the member-boundary
// contract from both sides. A barrier-FREE monolithic index over the
// concatenation lets an alignment strong enough to stay above
// threshold consume the separator: it reports hits ON the separator
// row and bridging hits PAST it, inside the next member. The store's
// generation indexes carry the separator as a hard barrier
// (buildGeneration), so neither class can exist in a store result —
// its hit set must equal the barrier-enabled monolithic reference,
// which is the barrier-free set minus exactly those two classes.
func TestStoreRejectsSeparatorEndingHits(t *testing.T) {
	rng := rand.New(rand.NewSource(711))
	letters := seq.DNA.Letters()
	randSeq := func(n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = letters[rng.Intn(4)]
		}
		return out
	}
	a, b := randSeq(1000), randSeq(1000)
	// The query matches a's suffix exactly: the alignment reaches the
	// member boundary with a score far above H, so cells on and past
	// the separator stay above H too.
	query := append([]byte(nil), a[700:]...)
	opts := SearchOptions{Threshold: 40}

	recs := []seq.Record{{Header: "a", Seq: a}, {Header: "b", Seq: b}}
	col := seq.NewCollection(recs)
	free, err := NewIndex(col.Text()).Search(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := newBarrierIndex(col.Text(), seq.Separator).Search(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	sepPos := col.Table().Start(1) - 1
	onSeparator, bridging := 0, 0
	for _, h := range free.Hits {
		switch {
		case h.TEnd == sepPos:
			onSeparator++
		case h.TEnd > sepPos:
			// Above threshold within a handful of rows into member b:
			// only an alignment carried over from a can score that.
			bridging++
		}
	}
	if onSeparator == 0 || bridging == 0 {
		t.Fatalf("workload failed to produce boundary hits (%d on separator, %d bridging); the test is vacuous",
			onSeparator, bridging)
	}
	for _, h := range want.Hits {
		if h.TEnd >= sepPos {
			t.Fatalf("barrier index reported a hit at text end %d, on or past the separator at %d", h.TEnd, sepPos)
		}
	}
	if len(want.Hits) != len(free.Hits)-onSeparator-bridging {
		t.Fatalf("barrier index returned %d hits; barrier-free %d with %d on the separator and %d bridging",
			len(want.Hits), len(free.Hits), onSeparator, bridging)
	}

	st, err := NewStore([]SeqRecord{{Name: "a", Seq: a}, {Name: "b", Seq: b}}, StoreOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Search(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !seqHitsEqual(got.Hits, monolithicSeqHits(want, col.Table())) {
		t.Fatal("store hits diverge from the barrier-enabled monolithic set")
	}
	for _, sh := range got.Hits {
		if sh.LocalTEnd < 0 || sh.LocalTEnd >= st.Sequences().SeqLen(sh.Member) {
			t.Fatalf("hit local end %d outside member %d (len %d)", sh.LocalTEnd, sh.Member, st.Sequences().SeqLen(sh.Member))
		}
	}
}

// TestStoreNoCrossMemberBridging is the separator hard-reset
// regression: a store whose member EQUALS the query produces a
// self-match score far above threshold, and before the barrier that
// alignment could cross the member separator (one mismatch) and mint
// tens of thousands of spurious ≥H end positions in whichever member
// happened to FOLLOW it in its generation — so per-member hit sets
// depended on Append grouping. With the separator a hard reset in the
// band kernels, every layout of the same logical store must return the
// same hits, whatever the generation grouping or lane count K.
func TestStoreNoCrossMemberBridging(t *testing.T) {
	rng := rand.New(rand.NewSource(715))
	letters := seq.DNA.Letters()
	randSeq := func(n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = letters[rng.Intn(4)]
		}
		return out
	}
	members := make([][]byte, 4)
	for i := range members {
		members[i] = randSeq(800)
	}
	query := append([]byte(nil), members[1]...) // member 1 IS the query
	opts := SearchOptions{Threshold: 50}
	recOf := func(i int) SeqRecord {
		return SeqRecord{Name: fmt.Sprintf("m%d", i), Seq: members[i]}
	}

	// Vacuousness guard: without the barrier, the self-match really does
	// bridge — a barrier-free monolithic index over m1#m2 reports end
	// positions past the separator.
	joined := append(append(append([]byte(nil), members[1]...), seq.Separator), members[2]...)
	free, err := NewIndex(joined).Search(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	bridging := 0
	for _, h := range free.Hits {
		if h.TEnd >= len(members[1]) {
			bridging++
		}
	}
	if bridging == 0 {
		t.Fatal("workload failed to bridge on a barrier-free index; the regression test is vacuous")
	}

	// The same logical store in four layouts: one generation at K=1 and
	// K=2, and two multi-generation groupings that historically changed
	// which member the self-match bled into.
	var results []*StoreResult
	var layouts []string
	build := func(name string, groups [][]int, k int) {
		recsOf := func(grp []int) []SeqRecord {
			recs := make([]SeqRecord, len(grp))
			for i, m := range grp {
				recs[i] = recOf(m)
			}
			return recs
		}
		st, err := NewStore(recsOf(groups[0]), StoreOptions{Shards: k})
		if err != nil {
			t.Fatal(err)
		}
		for _, grp := range groups[1:] { // each Append is its own generation
			if err := st.Append(recsOf(grp)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := st.Search(query, opts)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
		layouts = append(layouts, name)
	}
	build("one-gen-k1", [][]int{{0, 1, 2, 3}}, 1)
	build("one-gen-k2", [][]int{{0, 1, 2, 3}}, 2)
	build("m1-with-m2", [][]int{{0}, {1, 2}, {3}}, 1)
	build("m1-ends-gen", [][]int{{0, 1}, {2, 3}}, 1)

	if len(results[0].Hits) == 0 {
		t.Fatal("self-match produced no hits")
	}
	for _, sh := range results[0].Hits {
		if sh.Member != 1 {
			t.Fatalf("hit in member %d (%s); only the self-matched member may hit", sh.Member, sh.Name)
		}
	}
	for i := 1; i < len(results); i++ {
		if !seqHitsEqual(results[i].Hits, results[0].Hits) {
			t.Fatalf("layout %s returns %d hits; layout %s returns %d — per-member hits depend on store layout",
				layouts[i], len(results[i].Hits), layouts[0], len(results[0].Hits))
		}
	}
}

// TestStoreManifestRoundTrip saves and reloads a sharded store and
// checks the partition, directory and answers survive; corrupt files
// are rejected with a message, not a panic.
func TestStoreManifestRoundTrip(t *testing.T) {
	wl := buildStoreWorkload(seq.DNA, 5, 2000, 250, 712)
	st, err := NewStore(wl.records, StoreOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), buf.Bytes()...)

	loaded, err := LoadStore(bytes.NewReader(saved), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// K is a runtime parallelism knob, never persisted: a load without
	// StoreOptions.Shards serves at K=1 whatever the saver used.
	if loaded.Shards() != 1 {
		t.Fatalf("loaded %d lanes, want default 1", loaded.Shards())
	}
	if loaded.Sequences().Len() != st.Sequences().Len() {
		t.Fatalf("loaded %d members, saved %d", loaded.Sequences().Len(), st.Sequences().Len())
	}
	for i := 0; i < st.Sequences().Len(); i++ {
		if loaded.Sequences().Name(i) != st.Sequences().Name(i) ||
			loaded.Sequences().SeqLen(i) != st.Sequences().SeqLen(i) ||
			loaded.Sequences().Start(i) != st.Sequences().Start(i) {
			t.Fatalf("member %d directory mismatch after reload", i)
		}
	}
	for qi, query := range wl.queries {
		want, err := st.Search(query, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Search(query, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if want.Threshold != got.Threshold || !seqHitsEqual(want.Hits, got.Hits) {
			t.Fatalf("query %d: loaded store diverges from saved", qi)
		}
	}

	// Corruptions: bad magic, bad version, truncated payload,
	// inconsistent shard boundaries.
	bad := append([]byte(nil), saved...)
	bad[0] = 'X'
	if _, err := LoadStore(bytes.NewReader(bad), StoreOptions{}); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic accepted (err=%v)", err)
	}
	bad = append([]byte(nil), saved...)
	bad[8] = 99 // version field
	if _, err := LoadStore(bytes.NewReader(bad), StoreOptions{}); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version accepted (err=%v)", err)
	}
	if _, err := LoadStore(bytes.NewReader(saved[:len(saved)/2]), StoreOptions{}); err == nil {
		t.Fatal("truncated store accepted")
	}
	// A hostile member length (the first member's seqLen field sits
	// after magic+version+stamp+genCount+genID+memberCount+nameLen+name
	// in the v2 layout) must be rejected by the plausibility bounds,
	// not answered with a giant allocation.
	bad = append([]byte(nil), saved...)
	off := 8 + 4 + 8 + 8 + 8 + 8 + 8 + len(st.Sequences().Name(0))
	for i := 0; i < 8; i++ {
		bad[off+i] = 0xFF
	}
	if _, err := LoadStore(bytes.NewReader(bad), StoreOptions{}); err == nil ||
		!strings.Contains(err.Error(), "implausible") {
		t.Fatalf("hostile member length accepted (err=%v)", err)
	}
}

// TestStoreQueryCache covers the result-level cache: exact repeats are
// served from it with the hit/miss counters saying so, a disabled
// cache changes nothing but the counters, options changes miss (the
// fingerprint is part of the key), and eviction pressure never changes
// answers.
func TestStoreQueryCache(t *testing.T) {
	wl := buildStoreWorkload(seq.DNA, 4, 2000, 250, 713)
	query := wl.queries[0]

	t.Run("repeat-hits", func(t *testing.T) {
		st, err := NewStore(wl.records, StoreOptions{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		first, err := st.Search(query, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if first.Stats.QueryCacheMisses != 1 || first.Stats.QueryCacheHits != 0 {
			t.Fatalf("cold search counters: %+v", first.Stats)
		}
		second, err := st.Search(query, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if second.Stats.QueryCacheHits != 1 || second.Stats.QueryCacheMisses != 0 {
			t.Fatalf("hot search counters: hits=%d misses=%d",
				second.Stats.QueryCacheHits, second.Stats.QueryCacheMisses)
		}
		if !seqHitsEqual(first.Hits, second.Hits) || first.Threshold != second.Threshold {
			t.Fatal("cached result differs from computed result")
		}
		if hits, misses := st.QueryCacheStats(); hits != 1 || misses != 1 {
			t.Fatalf("store counters hits=%d misses=%d, want 1/1", hits, misses)
		}
		// A different configuration must not share entries.
		other, err := st.Search(query, SearchOptions{Threshold: first.Threshold + 5})
		if err != nil {
			t.Fatal(err)
		}
		if other.Stats.QueryCacheHits != 0 {
			t.Fatal("different options hit the cache of another configuration")
		}
		if len(other.Hits) >= len(first.Hits) {
			t.Fatalf("tighter threshold returned %d hits, loose %d", len(other.Hits), len(first.Hits))
		}
	})

	t.Run("disabled", func(t *testing.T) {
		st, err := NewStore(wl.records, StoreOptions{Shards: 2, QueryCacheSize: -1})
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			res, err := st.Search(query, SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.QueryCacheHits != 0 || res.Stats.QueryCacheMisses != 0 {
				t.Fatalf("disabled cache counted: %+v", res.Stats)
			}
		}
		if hits, misses := st.QueryCacheStats(); hits != 0 || misses != 0 {
			t.Fatalf("disabled cache store counters %d/%d", hits, misses)
		}
	})

	t.Run("eviction", func(t *testing.T) {
		st, err := NewStore(wl.records, StoreOptions{Shards: 2, QueryCacheSize: 2})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewStore(wl.records, StoreOptions{Shards: 2, QueryCacheSize: -1})
		if err != nil {
			t.Fatal(err)
		}
		queries := make([][]byte, 4)
		for i := range queries {
			queries[i] = append([]byte(nil), query...)
			queries[i][i] = 'A' // distinct cache keys
		}
		for round := 0; round < 3; round++ {
			for qi, q := range queries {
				got, err := st.Search(q, SearchOptions{})
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.Search(q, SearchOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if !seqHitsEqual(got.Hits, want.Hits) {
					t.Fatalf("round %d query %d: eviction-pressured cache diverged", round, qi)
				}
			}
			if st.cache.len() > 2 {
				t.Fatalf("cache grew to %d entries, capacity 2", st.cache.len())
			}
		}
	})
}

// TestStoreQueryCacheConcurrent hammers one store from many goroutines
// mixing repeated and distinct queries; run under -race this is the
// data-race check for the cache and the session pools, and every
// result must equal the uncached reference.
func TestStoreQueryCacheConcurrent(t *testing.T) {
	wl := buildStoreWorkload(seq.DNA, 4, 1500, 200, 714)
	st, err := NewStore(wl.records, StoreOptions{Shards: 2, QueryCacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewStore(wl.records, StoreOptions{Shards: 2, QueryCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	wants := make([][]SeqHit, len(wl.queries))
	for qi, q := range wl.queries {
		res, err := ref.Search(q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wants[qi] = res.Hits
	}
	var wg sync.WaitGroup
	errc := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				qi := (g + i) % len(wl.queries)
				res, err := st.Search(wl.queries[qi], SearchOptions{})
				if err != nil {
					errc <- err
					return
				}
				if !seqHitsEqual(res.Hits, wants[qi]) {
					errc <- fmt.Errorf("goroutine %d iteration %d: cached result diverged", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestStoreSearchAll pins the batch path: results in query order equal
// one-shot searches, repeats collapse into cache probes, and the first
// failing query index is reported deterministically.
func TestStoreSearchAll(t *testing.T) {
	wl := buildStoreWorkload(seq.DNA, 4, 1500, 200, 715)
	st, err := NewStore(wl.records, StoreOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	queries := [][]byte{wl.queries[0], wl.queries[1], wl.queries[0], wl.queries[1]}
	results, err := st.SearchAll(queries, SearchOptions{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("%d results for %d queries", len(results), len(queries))
	}
	for qi, res := range results {
		want, err := st.Search(queries[qi], SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !seqHitsEqual(res.Hits, want.Hits) {
			t.Fatalf("query %d: batch result diverges from one-shot", qi)
		}
	}
	if hits, _ := st.QueryCacheStats(); hits == 0 {
		t.Fatal("repeated batch queries never hit the query cache")
	}

	// Error determinism: the shortest failing query wins, wrapped with
	// its index.
	bad := [][]byte{wl.queries[0], []byte("ACG"), []byte("ACG")}
	_, err = st.SearchAll(bad, SearchOptions{}, 3)
	if err == nil || !strings.Contains(err.Error(), "store query 1") {
		t.Fatalf("SearchAll error = %v, want the lowest failing index (1)", err)
	}
	if _, err := st.SearchAll(nil, SearchOptions{}, 2); err != nil {
		t.Fatalf("empty batch errored: %v", err)
	}
}

// TestStoreLaneKnob pins the post-refactor K semantics: Shards is a
// parallelism knob over one monolithic index per generation, so it is
// NOT clamped to the record count (K lanes of family slices exist for
// any record count), it is constant across mutations, and a K far
// above the workload's family count still answers correctly.
func TestStoreLaneKnob(t *testing.T) {
	if _, err := NewStore(nil, StoreOptions{}); err == nil {
		t.Fatal("NewStore accepted zero records")
	}
	seqBytes := []byte("ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT")
	st, err := NewStore([]SeqRecord{{Name: "a", Seq: seqBytes}}, StoreOptions{Shards: 7})
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards() != 7 {
		t.Fatalf("Shards() = %d, want the lane knob 7 (no record-count clamp)", st.Shards())
	}
	if err := st.Append([]SeqRecord{{Name: "b", Seq: seqBytes}}); err != nil {
		t.Fatal(err)
	}
	if st.Shards() != 7 {
		t.Fatalf("Shards() changed across a mutation: %d", st.Shards())
	}
	ref, err := NewStore([]SeqRecord{{Name: "a", Seq: seqBytes}}, StoreOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Append([]SeqRecord{{Name: "b", Seq: seqBytes}}); err != nil {
		t.Fatal(err)
	}
	query := seqBytes[:24]
	got, err := st.Search(query, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Search(query, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !seqHitsEqual(got.Hits, want.Hits) {
		t.Fatalf("K=7 hits diverge from K=1 (%d vs %d)", len(got.Hits), len(want.Hits))
	}
	if got.Stats.CalculatedEntries != want.Stats.CalculatedEntries {
		t.Fatalf("K=7 entries %d, K=1 entries %d", got.Stats.CalculatedEntries, want.Stats.CalculatedEntries)
	}
}

// TestOpenSessionValidatesEagerly pins the satellite fix: for EVERY
// algorithm — the baselines included — configuration errors surface at
// OpenSession, not on the first Search.
func TestOpenSessionValidatesEagerly(t *testing.T) {
	ix := NewIndex([]byte("ACGTACGTACGTACGTACGTACGTACGT"))
	algorithms := []Algorithm{ALAE, ALAEHybrid, BWTSW, BLAST, SmithWaterman}
	for _, alg := range algorithms {
		if _, err := ix.OpenSession(SearchOptions{Algorithm: alg, Threshold: -1}); err == nil {
			t.Errorf("%v: negative threshold accepted at open", alg)
		}
		if _, err := ix.OpenSession(SearchOptions{Algorithm: alg, EValue: -2}); err == nil {
			t.Errorf("%v: negative E-value accepted at open", alg)
		}
		if _, err := ix.OpenSession(SearchOptions{Algorithm: alg, Parallelism: -3}); err == nil {
			t.Errorf("%v: negative parallelism accepted at open", alg)
		}
	}
	if _, err := ix.OpenSession(SearchOptions{Algorithm: Algorithm(97)}); err == nil {
		t.Error("unknown algorithm accepted at open")
	}
	// BWT-SW's scheme floor is a configuration error too.
	if _, err := ix.OpenSession(SearchOptions{
		Algorithm: BWTSW,
		Scheme:    Scheme{Match: 1, Mismatch: -1, GapOpen: -5, GapExtend: -2},
		Threshold: 10,
	}); err == nil {
		t.Error("BWT-SW-incompatible scheme accepted at open")
	}
	// Index.Search applies the same validation.
	if _, err := ix.Search([]byte("ACGTACGTACGT"), SearchOptions{Parallelism: -1, Threshold: 20}); err == nil {
		t.Error("Index.Search accepted negative parallelism")
	}
	// The store session inherits the eager contract.
	st, err := NewStore([]SeqRecord{{Name: "a", Seq: bytes.Repeat([]byte("ACGT"), 16)}}, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.OpenSession(SearchOptions{Threshold: -1}); err == nil {
		t.Error("StoreSession accepted a negative threshold at open")
	}
	if _, err := st.Search([]byte("ACGTACGTACGTACGT"), SearchOptions{EValue: -1}); err == nil {
		t.Error("Store.Search accepted a negative E-value")
	}
}

// TestStoreSearchAllStopsAfterError pins the store batch path's
// cancellation contract, mirroring Index.SearchAll's: after the first
// per-query failure no further queries are launched (a few may already
// be in flight on other workers), and the lowest failing index is the
// one reported.
func TestStoreSearchAllStopsAfterError(t *testing.T) {
	st, err := NewStore([]SeqRecord{{Name: "a", Seq: bytes.Repeat([]byte("ACGT"), 16)}},
		StoreOptions{QueryCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]byte, 64)
	for i := range queries {
		queries[i] = []byte("ACG") // shorter than q: every query errors instantly
	}
	var (
		mu      sync.Mutex
		started int
	)
	storeSearchAllStarted = func(int) {
		mu.Lock()
		started++
		mu.Unlock()
	}
	defer func() { storeSearchAllStarted = nil }()

	_, err = st.SearchAll(queries, SearchOptions{}, 2)
	if err == nil || !strings.Contains(err.Error(), "store query 0") {
		t.Fatalf("SearchAll error = %v, want the lowest failing index (0)", err)
	}
	if started > 4 {
		t.Fatalf("%d of %d queries were launched after the first error; cancellation is not stopping work", started, len(queries))
	}
}

// TestStoreGatherAllocBound pins the streaming gather's shape: a warm
// StoreSession search materialises ONE hit slice — the caller's
// StoreResult.Hits — with no per-lane intermediate Result.Hits in
// between. The per-lane collectors stream straight into the session's
// retained member buckets, so the steady-state allocation count is a
// small constant independent of how many hits the query produces.
func TestStoreGatherAllocBound(t *testing.T) {
	wl := buildStoreWorkload(seq.DNA, 5, 3000, 400, 714)
	st, err := NewStore(wl.records, StoreOptions{QueryCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := st.OpenSession(SearchOptions{Threshold: 60})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	query := wl.queries[0]
	var hits int
	for warm := 0; warm < 3; warm++ {
		res, err := ss.Search(query)
		if err != nil {
			t.Fatal(err)
		}
		hits = len(res.Hits)
	}
	if hits == 0 {
		t.Fatal("workload produced no hits; the test is vacuous")
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := ss.Search(query); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: the StoreResult, its Hits backing array, and the handful
	// of fixed-size boxes the scatter/gather plumbing needs. Anything
	// scaling with hit count or lane count would blow far past this.
	const budget = 8
	if allocs > budget {
		t.Fatalf("warm StoreSession.Search allocated %.1f objects per query (budget %d): the gather is materialising intermediates", allocs, budget)
	}
}
