package alae

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/align"
	"repro/internal/seq"
)

// Fuzz targets: robustness of the parsing/deserialisation surfaces and
// a differential fuzzer pinning the exactness invariant. `go test`
// runs them over the seed corpus; `go test -fuzz=FuzzX` explores.

// FuzzReadFASTA must never panic, whatever bytes arrive.
func FuzzReadFASTA(f *testing.F) {
	f.Add([]byte(">a\nACGT\n"))
	f.Add([]byte("ACGT"))
	f.Add([]byte(">"))
	f.Add([]byte(">x\n>y\nAC\n\n>z"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := seq.ReadFASTA(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must round-trip.
		var buf bytes.Buffer
		if err := seq.WriteFASTA(&buf, recs, 60); err != nil {
			t.Fatalf("WriteFASTA on parsed records: %v", err)
		}
	})
}

// FuzzLoad must reject arbitrary bytes cleanly (no panic, no runaway
// allocation) and accept its own output.
func FuzzLoad(f *testing.F) {
	ix := NewIndex([]byte("ACGTACGTACGTACGT"))
	var good bytes.Buffer
	if err := ix.Save(&good); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully loaded index must be usable.
		if _, err := loaded.Search([]byte("ACGTACGT"), SearchOptions{Threshold: 4}); err != nil {
			t.Fatalf("search on loaded index: %v", err)
		}
	})
}

// FuzzLoadStore hammers the store manifest loader: arbitrary bytes —
// seeded with a real saved store plus truncations and bit-flips of it
// — must be rejected cleanly (no panic, no runaway allocation), and
// any bytes that DO load must produce a searchable store. This is the
// same loader the serving daemon's reload job trusts to keep a corrupt
// file from taking down a running server.
func FuzzLoadStore(f *testing.F) {
	st, err := NewStore([]SeqRecord{
		{Name: "alpha", Seq: []byte("ACGTACGTACGTACGTACGT")},
		{Name: "beta", Seq: []byte("TTTTACGTACGTGGGG")},
		{Name: "gamma", Seq: []byte("ACACACACACACAC")},
	}, StoreOptions{Shards: 2})
	if err != nil {
		f.Fatal(err)
	}
	var good bytes.Buffer
	if err := st.Save(&good); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	// A multi-generation manifest with tombstones: the v2 surface the
	// generational store adds (appended generation, deleted member).
	if err := st.Append([]SeqRecord{{Name: "delta", Seq: []byte("GGGGTTTTCCCCAAAA")}}); err != nil {
		f.Fatal(err)
	}
	if _, err := st.Delete("beta"); err != nil {
		f.Fatal(err)
	}
	var mutated bytes.Buffer
	if err := st.Save(&mutated); err != nil {
		f.Fatal(err)
	}
	f.Add(mutated.Bytes())
	// Truncations at awkward places: inside the magic, the manifest,
	// the generation table, the shard table, a payload.
	for _, src := range []*bytes.Buffer{&good, &mutated} {
		for _, frac := range []int{1, 4, 7, 10, 13, 20, 40, 60, 80, 99} {
			n := src.Len() * frac / 100
			f.Add(append([]byte(nil), src.Bytes()[:n]...))
		}
		// Bit-flips sweeping the file: header, stamp, counts, flags,
		// lengths, payloads.
		for pos := 0; pos < src.Len(); pos += 1 + src.Len()/16 {
			flipped := append([]byte(nil), src.Bytes()...)
			flipped[pos] ^= 1 << (pos % 8)
			f.Add(flipped)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := LoadStore(bytes.NewReader(data), StoreOptions{})
		if err != nil {
			return
		}
		// Whatever loaded must serve: the directory is coherent and a
		// search runs without panicking.
		tab := loaded.Sequences()
		for i := 0; i < tab.Len(); i++ {
			_ = tab.Name(i)
			_ = tab.SeqLen(i)
		}
		if _, err := loaded.Search([]byte("ACGTACGT"), SearchOptions{Threshold: 8}); err != nil {
			t.Fatalf("search on loaded store: %v", err)
		}
	})
}

// FuzzSearchExactness is the differential fuzzer: for any DNA-mapped
// input, ALAE must agree with the Smith-Waterman oracle.
func FuzzSearchExactness(f *testing.F) {
	f.Add([]byte("GCTAGCTAGCATCG"), []byte("GCTAG"), uint8(0))
	f.Add([]byte("AAAAAAAAAA"), []byte("AAAA"), uint8(2))
	f.Fuzz(func(t *testing.T, text, query []byte, hOff uint8) {
		if len(text) == 0 || len(text) > 300 || len(query) > 150 {
			return
		}
		letters := "ACGT"
		for i := range text {
			text[i] = letters[int(text[i])%4]
		}
		for i := range query {
			query[i] = letters[int(query[i])%4]
		}
		s := align.DefaultDNA
		h := s.MinThreshold() + int(hOff%12)
		ix := NewIndex(text)
		res, err := ix.Search(query, SearchOptions{Threshold: h})
		if len(query) < s.Q() {
			// Too-short queries are diagnosed, not silently empty. The
			// empty set would be exact here (m·sa < MinThreshold ≤ H),
			// so nothing is lost by rejecting.
			if err == nil {
				t.Fatalf("short query %q accepted", query)
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		want := align.LocalAll(text, query, s, h)
		if !align.EqualHits(res.Hits, want) {
			t.Fatalf("exactness violated for T=%q P=%q H=%d:\n got %v\nwant %v",
				text, query, h, res.Hits, want)
		}
	})
}

// FuzzSchemeParsing exercises the CLI's scheme grammar indirectly via
// Scheme.Validate on arbitrary integer quadruples.
func FuzzSchemeParsing(f *testing.F) {
	f.Add(1, -3, -5, -2)
	f.Add(0, 0, 0, 0)
	f.Fuzz(func(t *testing.T, sa, sb, sg, ss int) {
		sch := Scheme{Match: sa, Mismatch: sb, GapOpen: sg, GapExtend: ss}
		err := sch.Validate()
		if err == nil {
			// Valid schemes must have coherent derived quantities.
			if sch.Q() < 1 {
				t.Errorf("valid scheme %v has q = %d", sch, sch.Q())
			}
			if sch.MinThreshold() < 1 {
				t.Errorf("valid scheme %v has floor %d", sch, sch.MinThreshold())
			}
			if sch.Lmax(100, 10) < 1 {
				t.Errorf("valid scheme %v has Lmax %d", sch, sch.Lmax(100, 10))
			}
		}
		_ = strings.Contains(sch.String(), ",") // String never panics
	})
}
