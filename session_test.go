package alae

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/align"
	"repro/internal/seq"
)

// TestSessionReuseParity is the serving-core acceptance test: the same
// hits must come back whether a Session is fresh or re-armed, whether
// the search runs sequentially or in parallel, and whether the
// cross-query gram cache is cold or hot — for both ALAE engines, over
// DNA and protein.
func TestSessionReuseParity(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	type tc struct {
		name    string
		alpha   *seq.Alphabet
		scheme  Scheme
		n, qlen int
	}
	cases := []tc{
		{"dna", seq.DNA, DefaultDNAScheme, 5000, 300},
		{"protein", seq.Protein, DefaultProteinScheme, 3000, 250},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			letters := c.alpha.Letters()
			text := make([]byte, c.n)
			for i := range text {
				text[i] = letters[rng.Intn(len(letters))]
			}
			var queries [][]byte
			for k := 0; k < 3; k++ {
				lo := (k + 1) * c.n / 5
				queries = append(queries, seq.Mutate(c.alpha, text[lo:lo+c.qlen],
					seq.MutationConfig{SubstitutionRate: 0.05, IndelRate: 0.01}, rng))
			}
			ix := NewIndex(text) // gram cache starts cold
			for _, alg := range []Algorithm{ALAE, ALAEHybrid} {
				for _, par := range []int{1, 0} {
					opts := SearchOptions{Algorithm: alg, Scheme: c.scheme, Threshold: 25, Parallelism: par}
					ses, err := ix.OpenSession(opts)
					if err != nil {
						t.Fatal(err)
					}
					// Two passes re-arm the session; pass 0 may run cache-cold,
					// pass 1 is cache-hot. Every result must equal a one-shot
					// Index.Search.
					for pass := 0; pass < 2; pass++ {
						for qi, q := range queries {
							got, err := ses.Search(q)
							if err != nil {
								t.Fatal(err)
							}
							want, err := ix.Search(q, opts)
							if err != nil {
								t.Fatal(err)
							}
							if !align.EqualHits(got.Hits, want.Hits) {
								t.Fatalf("%v p=%d pass %d query %d: session hits diverge (%d vs %d)",
									alg, par, pass, qi, len(got.Hits), len(want.Hits))
							}
							if got.Stats.CalculatedEntries != want.Stats.CalculatedEntries {
								t.Fatalf("%v p=%d pass %d query %d: entries %d vs %d",
									alg, par, pass, qi, got.Stats.CalculatedEntries, want.Stats.CalculatedEntries)
							}
							if pass == 1 && got.Stats.GramCacheMisses != 0 {
								t.Errorf("%v p=%d query %d: cache misses on hot pass", alg, par, qi)
							}
						}
					}
					ses.Close()
					ses.Close() // idempotent
				}
			}
		})
	}
}

// TestShortQueryRejectedPublicSurface pins the too-short-query
// contract at the public layer: Index.Search and Session.Search reject
// queries shorter than the scheme's gram length for both ALAE engines
// with a descriptive error, while the Smith-Waterman baseline (which
// has no gram-length floor) still answers them.
func TestShortQueryRejectedPublicSurface(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	ix := NewIndex(randDNA(400, rng))
	q := DefaultDNAScheme.Q()
	short := randDNA(q-1, rng)
	for _, alg := range []Algorithm{ALAE, ALAEHybrid} {
		opts := SearchOptions{Algorithm: alg, Threshold: 25}
		if _, err := ix.Search(short, opts); err == nil {
			t.Errorf("%v: Index.Search accepted a query of length %d < q=%d", alg, len(short), q)
		}
		ses, err := ix.OpenSession(opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ses.Search(short); err == nil {
			t.Errorf("%v: Session.Search accepted a short query", alg)
		}
		// The session must stay usable after the rejection.
		if _, err := ses.Search(randDNA(50, rng)); err != nil {
			t.Errorf("%v: session broken after short-query rejection: %v", alg, err)
		}
		ses.Close()
	}
	if _, err := ix.Search(short, SearchOptions{Algorithm: SmithWaterman, Threshold: 25}); err != nil {
		t.Errorf("Smith-Waterman rejected a short query: %v", err)
	}
}

// TestSessionBaselineAlgorithms pins the fallback: sessions over the
// stateless baseline engines forward to Index.Search.
func TestSessionBaselineAlgorithms(t *testing.T) {
	text, query := workload(601, 2000, 300)
	ix := NewIndex(text)
	for _, alg := range []Algorithm{BWTSW, BLAST, SmithWaterman} {
		opts := SearchOptions{Algorithm: alg, Threshold: 25}
		ses, err := ix.OpenSession(opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ses.Search(query)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ix.Search(query, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !align.EqualHits(got.Hits, want.Hits) {
			t.Fatalf("%v: session hits diverge", alg)
		}
		ses.Close()
	}
	// Invalid configurations surface at open time for the ALAE engines.
	if _, err := ix.OpenSession(SearchOptions{Scheme: Scheme{Match: -1}}); err == nil {
		t.Error("invalid scheme accepted by OpenSession")
	}
	// Use after Close must error, not silently degrade to one-shots.
	ses, err := ix.OpenSession(SearchOptions{Threshold: 25})
	if err != nil {
		t.Fatal(err)
	}
	ses.Close()
	if _, err := ses.Search(query); err == nil {
		t.Error("Search on a closed session succeeded")
	}
}

// TestSaveLoadProteinRoundTrip is the byte-rank-layout round trip: a
// protein index (σ = 20 forces the byte rank core) must serialise and
// reload into an index that answers identically, for both ALAE engines
// and under session reuse.
func TestSaveLoadProteinRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	letters := seq.Protein.Letters()
	text := make([]byte, 4000)
	for i := range text {
		text[i] = letters[rng.Intn(len(letters))]
	}
	query := seq.Mutate(seq.Protein, text[1000:1350],
		seq.MutationConfig{SubstitutionRate: 0.08, IndelRate: 0.02}, rng)
	opts := SearchOptions{Scheme: DefaultProteinScheme, Threshold: 22}

	ix := NewIndex(text)
	want, err := ix.Search(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Hits) == 0 {
		t.Fatal("vacuous protein workload")
	}

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(loaded.Text(), text) {
		t.Fatal("protein text changed through save/load")
	}
	for _, alg := range []Algorithm{ALAE, ALAEHybrid} {
		o := opts
		o.Algorithm = alg
		ses, err := loaded.OpenSession(o)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ { // re-armed and cache-hot too
			got, err := ses.Search(query)
			if err != nil {
				t.Fatal(err)
			}
			if !align.EqualHits(got.Hits, want.Hits) {
				t.Fatalf("%v pass %d: loaded protein index returns %d hits, original %d",
					alg, pass, len(got.Hits), len(want.Hits))
			}
		}
		ses.Close()
	}
}

// TestSearchAllStopsAfterError pins the cancellation contract: after
// the first failure no further queries are launched (a few may already
// be in flight on other workers).
func TestSearchAllStopsAfterError(t *testing.T) {
	ix := NewIndex([]byte("ACGTACGTACGTACGTACGTACGT"))
	queries := make([][]byte, 64)
	for i := range queries {
		queries[i] = []byte("ACGTACGT")
	}
	var (
		mu      sync.Mutex
		started int
	)
	searchAllStarted = func(int) {
		mu.Lock()
		started++
		mu.Unlock()
	}
	defer func() { searchAllStarted = nil }()

	// BWT-SW with an incompatible scheme: every query errors instantly.
	_, err := ix.SearchAll(queries, SearchOptions{
		Algorithm: BWTSW,
		Scheme:    Scheme{Match: 1, Mismatch: -1, GapOpen: -5, GapExtend: -2},
		Threshold: 10,
	}, 2)
	if err == nil {
		t.Fatal("worker error not propagated")
	}
	if started > 4 {
		t.Fatalf("%d of %d queries were launched after the first error; cancellation is not stopping work", started, len(queries))
	}
}
