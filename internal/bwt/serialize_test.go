package bwt

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func buildTestIndex(t *testing.T, n int, seed int64) (*FMIndex, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	letters := []byte("ACGT")
	text := make([]byte, n)
	for i := range text {
		text[i] = letters[rng.Intn(4)]
	}
	return New(text), text
}

func TestSerializeRoundTrip(t *testing.T) {
	fm, text := buildTestIndex(t, 5000, 120)
	var buf bytes.Buffer
	written, err := fm.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if written != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, buffer has %d", written, buf.Len())
	}
	back, err := ReadFMIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != fm.Len() || back.Sigma() != fm.Sigma() {
		t.Fatalf("dimensions changed: %v vs %v", back, fm)
	}
	// Behavioural equality: counts and locates agree on many probes.
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 200; trial++ {
		l := 1 + rng.Intn(10)
		start := rng.Intn(len(text) - l)
		pat := text[start : start+l]
		lo1, hi1 := fm.Search(pat)
		lo2, hi2 := back.Search(pat)
		if lo1 != lo2 || hi1 != hi2 {
			t.Fatalf("Search(%q) differs after round trip", pat)
		}
		p1 := fm.Locate(lo1, min(hi1, lo1+5))
		p2 := back.Locate(lo2, min(hi2, lo2+5))
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("Locate(%q) differs after round trip", pat)
			}
		}
	}
}

func TestSerializeEmptyAndTiny(t *testing.T) {
	for _, text := range [][]byte{nil, []byte("A"), []byte("AC")} {
		fm := New(text)
		var buf bytes.Buffer
		if _, err := fm.WriteTo(&buf); err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		back, err := ReadFMIndex(&buf)
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		if back.Len() != len(text) {
			t.Errorf("%q: length %d after round trip", text, back.Len())
		}
	}
}

func TestSerializeRejectsCorruption(t *testing.T) {
	fm, _ := buildTestIndex(t, 1000, 122)
	var buf bytes.Buffer
	if _, err := fm.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncations at many offsets must all fail, never panic.
	for _, cut := range []int{0, 3, 8, 20, len(good) / 2, len(good) - 1} {
		if _, err := ReadFMIndex(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if _, err := ReadFMIndex(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte(nil), good...)
	bad[4] = 99
	if _, err := ReadFMIndex(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
	// The previous on-disk version (1, which predates the rank-layout
	// tag) must be rejected with a version message, not misparsed.
	bad = append([]byte(nil), good...)
	bad[4] = 1
	if _, err := ReadFMIndex(bytes.NewReader(bad)); err == nil {
		t.Error("version-1 index accepted")
	} else if !strings.Contains(err.Error(), "version 1") {
		t.Errorf("version-1 rejection unclear: %v", err)
	}
	// Unknown rank-layout tag (bytes 8..11 of the v2 header).
	bad = append([]byte(nil), good...)
	bad[8] = 77
	if _, err := ReadFMIndex(bytes.NewReader(bad)); err == nil {
		t.Error("unknown layout tag accepted")
	}
	// Layout tag inconsistent with the alphabet (plane tag on σ=4).
	bad = append([]byte(nil), good...)
	bad[8] = 2
	if _, err := ReadFMIndex(bytes.NewReader(bad)); err == nil {
		t.Error("layout tag inconsistent with σ accepted")
	}
	// Implausible n (length field blown up). In the v2 header n is the
	// uint64 at bytes 12..19, after magic, version and the layout tag.
	bad = append([]byte(nil), good...)
	for i := 12; i < 20; i++ {
		bad[i] = 0xff
	}
	if _, err := ReadFMIndex(bytes.NewReader(bad)); err == nil {
		t.Error("implausible n accepted")
	}
}

func TestSerializeProteinAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	letters := []byte("ACDEFGHIKLMNPQRSTVWY")
	text := make([]byte, 2000)
	for i := range text {
		text[i] = letters[rng.Intn(len(letters))]
	}
	fm := New(text)
	var buf bytes.Buffer
	if _, err := fm.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFMIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Sigma() != 20 {
		t.Errorf("σ = %d after round trip", back.Sigma())
	}
	if back.Count(text[100:110]) != fm.Count(text[100:110]) {
		t.Error("counts differ after round trip")
	}
}
