package bwt

import "math/bits"

// planeRank is the bit-plane rank structure for mid-sized alphabets
// (4 < σ ≤ 32 — the protein case): the dense-code BWT is decomposed
// into ⌈log2 σ⌉ bit planes of 64-bit words, with the per-symbol
// occurrence checkpoints interleaved into the same block so one rank
// query touches one contiguous region. Within a block the rows whose
// code equals k are isolated by ANDing each plane word (complemented
// where bit p of k is 0) and counted with one popcount — the same
// bit-parallel principle as the 2-bit packed DNA layout, generalised
// to five planes. This replaces the byte-scan fallback that made
// protein rank ~10× slower per probe than packed DNA.
//
// The sentinel row's placeholder is stored as code 0, exactly like the
// other layouts; FMIndex applies the same query-time correction.
type planeRank struct {
	rows      int
	sigma     int
	nPlanes   int // ⌈log2 σ⌉, 3..5 for the alphabets routed here
	ckptWords int // ⌈σ/2⌉ — two uint32 running counts per word
	stride    int // uint64s per block: ckptWords + nPlanes·plDataWords
	blocks    []uint64
}

const (
	plRowsPerWord  = 64
	plDataWords    = 2                           // 64-row word groups per block
	plRowsPerBlock = plRowsPerWord * plDataWords // 128, matching packedRank
)

// buildPlaneRank decomposes the dense-code BWT (values 0..sigma-1)
// into checkpointed bit planes. Block data is word-group-major: the
// nPlanes plane words of rows [0,64) precede those of rows [64,128),
// so a scan touches adjacent words.
func buildPlaneRank(codes []byte, sigma int) *planeRank {
	rows := len(codes)
	nPlanes := 1
	for 1<<nPlanes < sigma {
		nPlanes++
	}
	p := &planeRank{
		rows:      rows,
		sigma:     sigma,
		nPlanes:   nPlanes,
		ckptWords: (sigma + 1) / 2,
	}
	p.stride = p.ckptWords + nPlanes*plDataWords
	nBlocks := rows/plRowsPerBlock + 1
	p.blocks = make([]uint64, nBlocks*p.stride)
	running := make([]uint32, sigma)
	for b := 0; b < nBlocks; b++ {
		base := b * p.stride
		for k := 0; k < sigma; k++ {
			p.blocks[base+k>>1] |= uint64(running[k]) << (uint(k&1) * 32)
		}
		lo := b * plRowsPerBlock
		hi := min(lo+plRowsPerBlock, rows)
		for i := lo; i < hi; i++ {
			c := codes[i]
			running[c]++
			off := i - lo
			word := base + p.ckptWords + off/plRowsPerWord*nPlanes
			bit := uint(off % plRowsPerWord)
			for pl := 0; pl < nPlanes; pl++ {
				if c>>uint(pl)&1 != 0 {
					p.blocks[word+pl] |= 1 << bit
				}
			}
		}
	}
	return p
}

// ckpt reads the block checkpoint count of code k at block base.
func (p *planeRank) ckpt(base, k int) int32 {
	return int32(uint32(p.blocks[base+k>>1] >> (uint(k&1) * 32)))
}

// symMask returns the bitmap of rows within one 64-row word group
// whose stored code equals k. group holds the nPlanes plane words.
func (p *planeRank) symMask(group []uint64, k int) uint64 {
	m := group[0]
	if k&1 == 0 {
		m = ^m
	}
	for pl := 1; pl < p.nPlanes; pl++ {
		w := group[pl]
		if k>>uint(pl)&1 == 0 {
			w = ^w
		}
		m &= w
	}
	return m
}

// at returns the symbol stored at row.
func (p *planeRank) at(row int) byte {
	blk := row / plRowsPerBlock
	off := row % plRowsPerBlock
	word := blk*p.stride + p.ckptWords + off/plRowsPerWord*p.nPlanes
	bit := uint(off % plRowsPerWord)
	var c byte
	for pl := 0; pl < p.nPlanes; pl++ {
		c |= byte(p.blocks[word+pl]>>bit&1) << uint(pl)
	}
	return c
}

// rank returns the number of occurrences of code k in rows [0, row),
// counting the sentinel placeholder as code 0 (the caller corrects).
func (p *planeRank) rank(k, row int) int32 {
	blk := row / plRowsPerBlock
	base := blk * p.stride
	cnt := p.ckpt(base, k)
	rem := row % plRowsPerBlock
	data := p.blocks[base+p.ckptWords : base+p.stride]
	full := rem / plRowsPerWord
	for w := 0; w < full; w++ {
		cnt += int32(bits.OnesCount64(p.symMask(data[w*p.nPlanes:], k)))
	}
	if tail := rem % plRowsPerWord; tail != 0 {
		m := p.symMask(data[full*p.nPlanes:], k) & (1<<uint(tail) - 1)
		cnt += int32(bits.OnesCount64(m))
	}
	return cnt
}

// lfRank answers the LF-step pair — the code stored at row and the
// number of its occurrences in rows [0, row) — in one block visit:
// the plane words holding row are read once for both the code
// extraction and the in-block count. The byte layout reads the code
// for free (one byte load); here it would otherwise cost a second
// walk over the planes.
func (p *planeRank) lfRank(row int) (code byte, cnt int32) {
	blk := row / plRowsPerBlock
	base := blk * p.stride
	rem := row % plRowsPerBlock
	data := p.blocks[base+p.ckptWords : base+p.stride]
	full := rem / plRowsPerWord
	group := data[full*p.nPlanes : full*p.nPlanes+p.nPlanes]
	bit := uint(rem % plRowsPerWord)
	m := ^uint64(0)
	for pl, w := range group {
		if w>>bit&1 != 0 {
			code |= 1 << uint(pl)
		} else {
			w = ^w
		}
		m &= w
	}
	cnt = p.ckpt(base, int(code)) + int32(bits.OnesCount64(m&(1<<bit-1)))
	for w := 0; w < full; w++ {
		cnt += int32(bits.OnesCount64(p.symMask(data[w*p.nPlanes:], int(code))))
	}
	return code, cnt
}

// rank2 answers rank(k, lo) and rank(k, hi) in one block visit when
// both rows fall in the same block — the backward-search case, where
// lo and hi delimit one suffix-array range: the shared checkpoint is
// read once and the plane words up to hi are masked once, splitting
// each straddled word at lo. Requires lo ≤ hi.
func (p *planeRank) rank2(k, lo, hi int) (int32, int32) {
	bl := lo / plRowsPerBlock
	if bl != hi/plRowsPerBlock {
		return p.rank(k, lo), p.rank(k, hi)
	}
	base := bl * p.stride
	cnt := p.ckpt(base, k)
	remLo, remHi := lo%plRowsPerBlock, hi%plRowsPerBlock
	data := p.blocks[base+p.ckptWords : base+p.stride]
	var a, b int32 // counts in [0, remLo) and [remLo, remHi)
	for w := 0; w*plRowsPerWord < remHi; w++ {
		m := p.symMask(data[w*p.nPlanes:], k)
		start := w * plRowsPerWord
		if n := remHi - start; n < plRowsPerWord {
			m &= 1<<uint(n) - 1
		}
		switch {
		case start+plRowsPerWord <= remLo:
			a += int32(bits.OnesCount64(m))
		case start >= remLo:
			b += int32(bits.OnesCount64(m))
		default:
			split := uint64(1)<<uint(remLo-start) - 1
			a += int32(bits.OnesCount64(m & split))
			b += int32(bits.OnesCount64(m &^ split))
		}
	}
	return cnt + a, cnt + a + b
}

// countGroup adds the per-symbol populations of one 64-row word group,
// restricted to the rows selected by clip, onto counts. The group is
// decomposed as a branch-free radix sweep: level by level, plane
// nPlanes-1 down to 0, each row-subset mask splits into its
// plane-0/plane-1 halves in place, so after nPlanes levels mask k
// holds exactly the rows whose code is k — 2·(2^nPlanes − 1) ANDs and
// σ popcounts total, with no per-symbol rescan of the planes.
func (p *planeRank) countGroup(group []uint64, clip uint64, counts []int32) {
	if clip == 0 {
		return
	}
	if p.nPlanes == 5 {
		countGroup5(group, clip, counts, p.sigma)
		return
	}
	var masks [32]uint64
	masks[0] = clip
	width := 1
	// Splitting high plane first keeps bit pl of the final mask index
	// at position pl: every later split shifts earlier bits left.
	for pl := p.nPlanes - 1; pl >= 0; pl-- {
		w := group[pl]
		for i := width - 1; i >= 0; i-- {
			m := masks[i]
			masks[2*i] = m &^ w
			masks[2*i+1] = m & w
		}
		width *= 2
	}
	for k := 0; k < p.sigma; k++ {
		counts[k] += int32(bits.OnesCount64(masks[k]))
	}
}

// countGroup5 is countGroup fully unrolled for the five-plane case
// (16 < σ ≤ 32, which includes the σ=20 protein alphabet): the whole
// radix tree lives in registers — no mask array, no zero-init, no
// bounds checks on the splits.
func countGroup5(group []uint64, clip uint64, counts []int32, sigma int) {
	g0, g1, g2, g3, g4 := group[0], group[1], group[2], group[3], group[4]
	a0, a1 := clip&^g4, clip&g4
	b0, b1, b2, b3 := a0&^g3, a0&g3, a1&^g3, a1&g3
	c0, c1, c2, c3 := b0&^g2, b0&g2, b1&^g2, b1&g2
	c4, c5, c6, c7 := b2&^g2, b2&g2, b3&^g2, b3&g2
	var d [16]uint64
	d[0], d[1], d[2], d[3] = c0&^g1, c0&g1, c1&^g1, c1&g1
	d[4], d[5], d[6], d[7] = c2&^g1, c2&g1, c3&^g1, c3&g1
	d[8], d[9], d[10], d[11] = c4&^g1, c4&g1, c5&^g1, c5&g1
	d[12], d[13], d[14], d[15] = c6&^g1, c6&g1, c7&^g1, c7&g1
	counts = counts[:sigma]
	for k := 0; k+1 < sigma; k += 2 {
		pair := d[k>>1]
		counts[k] += int32(bits.OnesCount64(pair &^ g0))
		counts[k+1] += int32(bits.OnesCount64(pair & g0))
	}
	if sigma&1 != 0 {
		counts[sigma-1] += int32(bits.OnesCount64(d[sigma>>1] &^ g0))
	}
}

// ranksAll fills counts[k] = rank(k, row) for every code k in one
// block visit.
func (p *planeRank) ranksAll(row int, counts []int32) {
	blk := row / plRowsPerBlock
	base := blk * p.stride
	for k := 0; k < p.sigma; k++ {
		counts[k] = p.ckpt(base, k)
	}
	rem := row % plRowsPerBlock
	data := p.blocks[base+p.ckptWords : base+p.stride]
	for w := 0; w*plRowsPerWord < rem; w++ {
		clip := ^uint64(0)
		if n := rem - w*plRowsPerWord; n < plRowsPerWord {
			clip = 1<<uint(n) - 1
		}
		p.countGroup(data[w*p.nPlanes:w*p.nPlanes+p.nPlanes], clip, counts)
	}
}

// ranksAll2 fills los[k] = rank(k, lo) and his[k] = rank(k, hi) for
// every code k, visiting the shared block once when lo and hi fall in
// the same block: the checkpoint is read once and every plane word up
// to hi is decomposed once, with straddled words split at lo. his is
// used as the [lo, hi) delta accumulator before the final sum.
// Requires lo ≤ hi.
func (p *planeRank) ranksAll2(lo, hi int, los, his []int32) {
	bl := lo / plRowsPerBlock
	if bl != hi/plRowsPerBlock {
		p.ranksAll(lo, los)
		p.ranksAll(hi, his)
		return
	}
	base := bl * p.stride
	for k := 0; k < p.sigma; k++ {
		los[k] = p.ckpt(base, k)
		his[k] = 0
	}
	remLo, remHi := lo%plRowsPerBlock, hi%plRowsPerBlock
	data := p.blocks[base+p.ckptWords : base+p.stride]
	for w := 0; w*plRowsPerWord < remHi; w++ {
		group := data[w*p.nPlanes : w*p.nPlanes+p.nPlanes]
		start := w * plRowsPerWord
		clip := ^uint64(0)
		if n := remHi - start; n < plRowsPerWord {
			clip = 1<<uint(n) - 1
		}
		switch {
		case start+plRowsPerWord <= remLo:
			p.countGroup(group, clip, los)
		case start >= remLo:
			p.countGroup(group, clip, his)
		default:
			split := uint64(1)<<uint(remLo-start) - 1
			p.countGroup(group, clip&split, los)
			p.countGroup(group, clip&^split, his)
		}
	}
	for k := 0; k < p.sigma; k++ {
		his[k] += los[k]
	}
}

// appendCodes unpacks the stored symbols into out, for serialization
// and consistency verification.
func (p *planeRank) appendCodes(out []byte) []byte {
	for row := 0; row < p.rows; row++ {
		out = append(out, p.at(row))
	}
	return out
}

// sizeBytes is the in-memory footprint of the structure.
func (p *planeRank) sizeBytes() int { return 8 * len(p.blocks) }
