package bwt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Index serialization: a versioned little-endian binary format so an
// index built once can be saved and reloaded instead of rebuilt — the
// first step toward the external-memory deployment the paper lists as
// future work ("exploit algorithms using external memory"). The
// format stores every component of the FM-index verbatim; loading
// performs structural validation and fails cleanly on truncated or
// corrupted input.

const (
	serialMagic = 0x414c4145 // "ALAE"
	// serialVersion 2 adds an explicit rank-layout tag to the header
	// (the version-1 format predated the bit-plane protein core and
	// carried no layout information). Version-1 files are rejected;
	// rebuild the index.
	serialVersion = 2
)

// Rank-layout tags stored in the version-2 header. The tag records
// which rank core the writing index used; the BWT payload itself is
// layout-independent (dense-code bytes plus periodic checkpoints), so
// the tag is informational — the loader validates it and rebuilds the
// best core for the alphabet.
const (
	layoutByte    = 0
	layoutPacked2 = 1 // 2-bit packed, σ ≤ 4
	layoutPlane   = 2 // bit planes, 4 < σ ≤ 32
)

// layoutTag reports the rank-layout tag of the index's current core.
func (fm *FMIndex) layoutTag() uint32 {
	switch {
	case fm.pk != nil:
		return layoutPacked2
	case fm.pl != nil:
		return layoutPlane
	}
	return layoutByte
}

// WriteTo serialises the index. It implements io.WriterTo. The format
// is layout-independent: a packed- or plane-rank index materialises
// its BWT bytes and periodic checkpoints on the way out, so indexes
// written by any layout load identically.
func (fm *FMIndex) WriteTo(w io.Writer) (int64, error) {
	bwtBytes, occ := fm.bwt, fm.occ
	if fm.pk != nil || fm.pl != nil {
		bwtBytes = make([]byte, 0, fm.Rows())
		if fm.pk != nil {
			bwtBytes = fm.pk.appendCodes(bwtBytes)
		} else {
			bwtBytes = fm.pl.appendCodes(bwtBytes)
		}
		occ = buildOcc(bwtBytes, fm.sentinelRow, fm.ckptEvery, fm.sigma)
	}
	cw := &countingWriter{w: bufio.NewWriter(w)}
	write := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	header := []any{
		uint32(serialMagic), uint32(serialVersion), fm.layoutTag(),
		uint64(fm.n), uint32(fm.sigma), uint32(fm.sentinelRow),
		uint32(fm.ckptEvery), uint32(fm.sampleRate),
	}
	if err := write(header...); err != nil {
		return cw.n, err
	}
	if err := write(uint32(len(fm.letters)), fm.letters); err != nil {
		return cw.n, err
	}
	if err := write(uint64(len(bwtBytes)), bwtBytes); err != nil {
		return cw.n, err
	}
	if err := write(uint32(len(fm.c)), fm.c); err != nil {
		return cw.n, err
	}
	if err := write(uint64(len(occ)), occ); err != nil {
		return cw.n, err
	}
	if err := write(uint64(len(fm.samples)), fm.samples); err != nil {
		return cw.n, err
	}
	if err := write(uint64(len(fm.sampleMark.words)), fm.sampleMark.words); err != nil {
		return cw.n, err
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// ReadFMIndex deserialises an index written by WriteTo.
func ReadFMIndex(r io.Reader) (*FMIndex, error) {
	br := bufio.NewReader(r)
	read := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Read(br, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	var magic, version uint32
	if err := read(&magic, &version); err != nil {
		return nil, fmt.Errorf("bwt: reading index header: %w", err)
	}
	if magic != serialMagic {
		return nil, fmt.Errorf("bwt: bad magic %#x; not an ALAE index", magic)
	}
	if version != serialVersion {
		return nil, fmt.Errorf("bwt: unsupported index version %d (want %d); rebuild the index", version, serialVersion)
	}
	fm := &FMIndex{}
	var layout uint32
	var n uint64
	var sigma, sentinelRow, ckptEvery, sampleRate uint32
	if err := read(&layout, &n, &sigma, &sentinelRow, &ckptEvery, &sampleRate); err != nil {
		return nil, fmt.Errorf("bwt: reading index dimensions: %w", err)
	}
	if layout > layoutPlane {
		return nil, fmt.Errorf("bwt: unknown rank-layout tag %d", layout)
	}
	const maxReasonable = 1 << 40
	if n > maxReasonable || sigma > 256 || ckptEvery == 0 || sampleRate == 0 {
		return nil, fmt.Errorf("bwt: implausible index dimensions (n=%d, σ=%d)", n, sigma)
	}
	fm.n = int(n)
	fm.sigma = int(sigma)
	fm.sentinelRow = int(sentinelRow)
	fm.ckptEvery = int(ckptEvery)
	fm.sampleRate = int(sampleRate)
	if fm.sentinelRow > fm.n {
		return nil, fmt.Errorf("bwt: sentinel row %d out of range", fm.sentinelRow)
	}
	if (layout == layoutPacked2 && fm.sigma > 4) ||
		(layout == layoutPlane && (fm.sigma <= 4 || fm.sigma > 32)) {
		return nil, fmt.Errorf("bwt: rank-layout tag %d inconsistent with σ=%d", layout, fm.sigma)
	}

	var nLetters uint32
	if err := read(&nLetters); err != nil {
		return nil, err
	}
	if int(nLetters) != fm.sigma {
		return nil, fmt.Errorf("bwt: letters length %d != σ %d", nLetters, fm.sigma)
	}
	fm.letters = make([]byte, nLetters)
	if err := read(fm.letters); err != nil {
		return nil, err
	}
	for i := range fm.code {
		fm.code[i] = -1
	}
	for i, b := range fm.letters {
		fm.code[b] = int16(i)
	}

	var nBWT uint64
	if err := read(&nBWT); err != nil {
		return nil, err
	}
	if nBWT != n+1 {
		return nil, fmt.Errorf("bwt: BWT length %d != n+1 = %d", nBWT, n+1)
	}
	bwtBytes, err := ReadExact(br, nBWT)
	if err != nil {
		return nil, fmt.Errorf("bwt: reading BWT: %w", err)
	}
	fm.bwt = bwtBytes
	for _, b := range fm.bwt {
		if int(b) >= fm.sigma && fm.sigma > 0 {
			return nil, fmt.Errorf("bwt: BWT code %d out of alphabet", b)
		}
	}

	var nC uint32
	if err := read(&nC); err != nil {
		return nil, err
	}
	if int(nC) != fm.sigma+1 {
		return nil, fmt.Errorf("bwt: C length %d != σ+1", nC)
	}
	fm.c = make([]int32, nC)
	if err := read(fm.c); err != nil {
		return nil, err
	}

	var nOcc, nSamples, nWords uint64
	if err := read(&nOcc); err != nil {
		return nil, err
	}
	wantOcc := uint64(((fm.n+1)/fm.ckptEvery + 1) * fm.sigma)
	if nOcc != wantOcc {
		return nil, fmt.Errorf("bwt: occ length %d != expected %d", nOcc, wantOcc)
	}
	if fm.occ, err = readInt32s(br, nOcc); err != nil {
		return nil, fmt.Errorf("bwt: reading occ checkpoints: %w", err)
	}
	if err := read(&nSamples); err != nil {
		return nil, err
	}
	if nSamples > n+1 {
		return nil, fmt.Errorf("bwt: %d samples for %d rows", nSamples, n+1)
	}
	if fm.samples, err = readInt32s(br, nSamples); err != nil {
		return nil, fmt.Errorf("bwt: reading samples: %w", err)
	}
	if err := read(&nWords); err != nil {
		return nil, err
	}
	wantWords := uint64((fm.n + 1 + 63) / 64)
	if nWords != wantWords {
		return nil, fmt.Errorf("bwt: sample bitmap words %d != expected %d", nWords, wantWords)
	}
	wordBytes, err := ReadExact(br, nWords*8)
	if err != nil {
		return nil, err
	}
	mark := newRankBitVector(fm.n + 1)
	for i := range mark.words {
		mark.words[i] = binary.LittleEndian.Uint64(wordBytes[8*i:])
	}
	mark.Finish()
	if got := mark.Rank(fm.n + 1); got != int(nSamples) {
		return nil, fmt.Errorf("bwt: sample bitmap popcount %d != sample count %d", got, nSamples)
	}
	fm.sampleMark = mark
	if err := fm.verifyConsistency(); err != nil {
		return nil, err
	}
	// Swap the validated byte layout for a bit-parallel core when the
	// alphabet allows it (2-bit packed for σ ≤ 4, bit planes for
	// 4 < σ ≤ 32), matching what NewWithOptions builds — regardless of
	// which layout the writer happened to use.
	if fm.sigma >= 1 && fm.sigma <= 32 {
		fm.attachRank(fm.bwt, false)
	}
	return fm, nil
}

// verifyConsistency recomputes the C array and the occurrence
// checkpoints from the loaded BWT and compares them against the
// stored values. This is what makes a maliciously crafted index safe:
// with C and occ provably derived from the BWT itself, every rank and
// LF result stays in range, so no search can index out of bounds.
// Cost is one O(n) scan, far below the cost of building the index.
func (fm *FMIndex) verifyConsistency() error {
	rows := fm.n + 1
	counts := make([]int32, fm.sigma)
	for row := 0; row < rows; row++ {
		if row%fm.ckptEvery == 0 {
			base := (row / fm.ckptEvery) * fm.sigma
			for k := 0; k < fm.sigma; k++ {
				if fm.occ[base+k] != counts[k] {
					return fmt.Errorf("bwt: occ checkpoint %d/%d inconsistent with BWT content", row/fm.ckptEvery, k)
				}
			}
		}
		if row != fm.sentinelRow {
			counts[fm.bwt[row]]++
		}
	}
	sum := int32(1)
	for k := 0; k < fm.sigma; k++ {
		if fm.c[k] != sum {
			return fmt.Errorf("bwt: C[%d] = %d inconsistent with BWT content (want %d)", k, fm.c[k], sum)
		}
		sum += counts[k]
	}
	if fm.c[fm.sigma] != sum || int(sum) != rows {
		return fmt.Errorf("bwt: C array total %d inconsistent with %d rows", fm.c[fm.sigma], rows)
	}
	for _, p := range fm.samples {
		if p < 0 || int(p) > fm.n {
			return fmt.Errorf("bwt: sample position %d out of range", p)
		}
	}
	return nil
}

// ReadExact reads exactly n bytes, growing the buffer in bounded
// chunks so that a lying length field in a corrupted index fails with
// an I/O error instead of exhausting memory on one giant allocation.
func ReadExact(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 22
	out := make([]byte, 0, min(n, chunk))
	remaining := n
	for remaining > 0 {
		step := min(remaining, uint64(chunk))
		start := len(out)
		out = append(out, make([]byte, step)...)
		if _, err := io.ReadFull(r, out[start:]); err != nil {
			return nil, err
		}
		remaining -= step
	}
	return out, nil
}

// readInt32s reads count little-endian int32 values via ReadExact.
func readInt32s(r io.Reader, count uint64) ([]int32, error) {
	raw, err := ReadExact(r, count*4)
	if err != nil {
		return nil, err
	}
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
