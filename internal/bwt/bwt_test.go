package bwt

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestTransformPaperExample(t *testing.T) {
	// §2.3: "given a text T = GCTAGC ... the BWT transformation of T'
	// is CTGGA$C."
	got := Transform([]byte("GCTAGC"))
	if string(got) != "CTGGA$C" {
		t.Errorf("Transform(GCTAGC) = %q, want CTGGA$C", got)
	}
}

func TestTransformInverseRoundTrip(t *testing.T) {
	f := func(text []byte) bool {
		// The sentinel byte must not occur in the text.
		for i := range text {
			if text[i] == Sentinel {
				text[i] = 'x'
			}
		}
		back, err := Inverse(Transform(text))
		return err == nil && bytes.Equal(back, text)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInverseRejectsGarbage(t *testing.T) {
	if _, err := Inverse(nil); err == nil {
		t.Error("Inverse(nil) should fail")
	}
	if _, err := Inverse([]byte("ABCD")); err == nil {
		t.Error("Inverse without sentinel should fail")
	}
	if _, err := Inverse([]byte("A$B$")); err == nil {
		t.Error("Inverse with two sentinels should fail")
	}
}

// bruteCount is the oracle for Count.
func bruteCount(text, pat []byte) int {
	if len(pat) == 0 {
		return len(text) + 1
	}
	n := 0
	for i := 0; i+len(pat) <= len(text); i++ {
		if bytes.Equal(text[i:i+len(pat)], pat) {
			n++
		}
	}
	return n
}

// brutePositions is the oracle for Locate.
func brutePositions(text, pat []byte) []int {
	var out []int
	for i := 0; i+len(pat) <= len(text); i++ {
		if bytes.Equal(text[i:i+len(pat)], pat) {
			out = append(out, i)
		}
	}
	return out
}

func TestFMIndexPaperExample(t *testing.T) {
	// §2.3: for T = GCTAGC, the SA range of substring GC is [4, 5]
	// (1-based, inclusive) and its starting positions are 5 and 1
	// (1-based), i.e. 4 and 0 in 0-based coordinates.
	fm := New([]byte("GCTAGC"))
	lo, hi := fm.Search([]byte("GC"))
	if lo != 4 || hi != 6 {
		t.Errorf("Search(GC) = [%d, %d), want [4, 6)", lo, hi)
	}
	pos := fm.Locate(lo, hi)
	sort.Ints(pos)
	if len(pos) != 2 || pos[0] != 0 || pos[1] != 4 {
		t.Errorf("Locate(GC) = %v, want [0 4]", pos)
	}
}

func TestFMIndexCountMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	letters := []byte("ACGT")
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		text := make([]byte, n)
		for i := range text {
			text[i] = letters[rng.Intn(4)]
		}
		fm := NewWithOptions(text, Options{SampleRate: 4, CheckpointEvery: 16})
		for plen := 1; plen <= 8; plen++ {
			for k := 0; k < 10; k++ {
				pat := make([]byte, plen)
				for i := range pat {
					pat[i] = letters[rng.Intn(4)]
				}
				if got, want := fm.Count(pat), bruteCount(text, pat); got != want {
					t.Fatalf("Count(%q) in %q = %d, want %d", pat, text, got, want)
				}
			}
		}
	}
}

func TestFMIndexLocateMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	letters := []byte("AC") // tiny alphabet = many occurrences
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(300)
		text := make([]byte, n)
		for i := range text {
			text[i] = letters[rng.Intn(2)]
		}
		fm := NewWithOptions(text, Options{SampleRate: 7, CheckpointEvery: 32})
		for plen := 1; plen <= 6; plen++ {
			pat := make([]byte, plen)
			for i := range pat {
				pat[i] = letters[rng.Intn(2)]
			}
			lo, hi := fm.Search(pat)
			got := fm.Locate(lo, hi)
			sort.Ints(got)
			want := brutePositions(text, pat)
			if len(got) != len(want) {
				t.Fatalf("Locate(%q) in %q: got %v, want %v", pat, text, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Locate(%q) in %q: got %v, want %v", pat, text, got, want)
				}
			}
		}
	}
}

func TestFMIndexExtendStepwiseEqualsSearch(t *testing.T) {
	// Backward search one character at a time (how the engines walk
	// the emulated suffix trie) must agree with whole-pattern Search.
	text := []byte("GCTAGCTAGCATCGATCGGGCTA")
	fm := New(text)
	pat := []byte("GCTA")
	lo, hi := fm.InitRange()
	for i := len(pat) - 1; i >= 0; i-- {
		lo, hi = fm.Extend(lo, hi, pat[i])
	}
	slo, shi := fm.Search(pat)
	if lo != slo || hi != shi {
		t.Errorf("stepwise [%d,%d) != Search [%d,%d)", lo, hi, slo, shi)
	}
}

func TestFMIndexAbsentByte(t *testing.T) {
	fm := New([]byte("ACGTACGT"))
	if fm.Count([]byte("N")) != 0 {
		t.Error("Count of absent byte should be 0")
	}
	if fm.CodeOf('N') != -1 {
		t.Error("CodeOf absent byte should be -1")
	}
	ilo, ihi := fm.InitRange()
	if lo, hi := fm.Extend(ilo, ihi, 'N'); lo != hi {
		t.Errorf("Extend with absent byte gave non-empty range [%d, %d)", lo, hi)
	}
}

func TestFMIndexEmptyAndTiny(t *testing.T) {
	fm := New(nil)
	if fm.Len() != 0 || fm.Rows() != 1 {
		t.Errorf("empty index: Len=%d Rows=%d", fm.Len(), fm.Rows())
	}
	if fm.Count([]byte("A")) != 0 {
		t.Error("empty index should contain nothing")
	}

	fm = New([]byte("A"))
	if fm.Count([]byte("A")) != 1 {
		t.Error("single-char index lookup failed")
	}
	if got := fm.Locate(fm.Search([]byte("A"))); len(got) != 1 || got[0] != 0 {
		t.Errorf("Locate in single-char text = %v", got)
	}
}

func TestFMIndexPositionOfEveryRow(t *testing.T) {
	text := []byte("GCTAGCTAGCATCG")
	fm := NewWithOptions(text, Options{SampleRate: 5})
	// Collect positions of all rows; they must be a permutation of 0..n.
	seen := make([]bool, fm.Rows())
	for row := 0; row < fm.Rows(); row++ {
		p := fm.Position(row)
		if p < 0 || p > fm.Len() || seen[p] {
			t.Fatalf("row %d: bad or duplicate position %d", row, p)
		}
		seen[p] = true
	}
}

func TestFMIndexProteinAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	letters := []byte("ACDEFGHIKLMNPQRSTVWY")
	text := make([]byte, 2000)
	for i := range text {
		text[i] = letters[rng.Intn(len(letters))]
	}
	fm := New(text)
	if fm.Sigma() != 20 {
		t.Fatalf("Sigma = %d, want 20", fm.Sigma())
	}
	for trial := 0; trial < 50; trial++ {
		start := rng.Intn(len(text) - 5)
		pat := text[start : start+5]
		if got, want := fm.Count(pat), bruteCount(text, pat); got != want {
			t.Errorf("Count(%q) = %d, want %d", pat, got, want)
		}
	}
}

func TestFMIndexSizeAccounting(t *testing.T) {
	text := bytes.Repeat([]byte("ACGT"), 4096)
	fm := New(text)
	if fm.SizeBytes() <= 0 || fm.PackedSizeBytes() <= 0 {
		t.Fatal("sizes must be positive")
	}
	if fm.PackedSizeBytes() >= fm.SizeBytes() {
		t.Errorf("packed size %d should be below raw size %d for DNA",
			fm.PackedSizeBytes(), fm.SizeBytes())
	}
	if !strings.Contains(fm.String(), "FMIndex") {
		t.Errorf("String() = %q", fm.String())
	}
}

func TestRankBitVector(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 10000
	v := newRankBitVector(n)
	ref := make([]bool, n)
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			v.Set(i)
			ref[i] = true
		}
	}
	v.Finish()
	rank := 0
	for i := 0; i < n; i++ {
		if got := v.Rank(i); got != rank {
			t.Fatalf("Rank(%d) = %d, want %d", i, got, rank)
		}
		if v.Get(i) != ref[i] {
			t.Fatalf("Get(%d) = %v, want %v", i, v.Get(i), ref[i])
		}
		if ref[i] {
			rank++
		}
	}
}

func BenchmarkFMIndexBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	letters := []byte("ACGT")
	text := make([]byte, 1<<20)
	for i := range text {
		text[i] = letters[rng.Intn(4)]
	}
	b.ResetTimer()
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		New(text)
	}
}

func BenchmarkFMIndexSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	letters := []byte("ACGT")
	text := make([]byte, 1<<20)
	for i := range text {
		text[i] = letters[rng.Intn(4)]
	}
	fm := New(text)
	pat := text[1000:1012]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fm.Search(pat)
	}
}

// TestLocateAppendWideRanges drives the batched (distance-to-sample
// grouped) locate across ranges much wider than its chunk size,
// including the all-rows range, cross-checking every position against
// Position — which walks each row individually.
func TestLocateAppendWideRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	letters := []byte("ACGT")
	for _, n := range []int{1, 63, 64, 65, 1000, 4096} {
		text := make([]byte, n)
		for i := range text {
			text[i] = letters[rng.Intn(4)]
		}
		fm := NewWithOptions(text, Options{SampleRate: 5})
		var buf []int
		for _, span := range [][2]int{{0, fm.Rows()}, {1, min(fm.Rows(), 200)}, {fm.Rows() / 2, fm.Rows()}} {
			lo, hi := span[0], span[1]
			if lo >= hi {
				continue
			}
			buf = fm.LocateAppend(lo, hi, buf[:0])
			if len(buf) != hi-lo {
				t.Fatalf("n=%d [%d,%d): %d positions, want %d", n, lo, hi, len(buf), hi-lo)
			}
			for k, p := range buf {
				if want := fm.Position(lo + k); p != want {
					t.Fatalf("n=%d row %d: batched locate %d, Position %d", n, lo+k, p, want)
				}
			}
		}
	}
}
