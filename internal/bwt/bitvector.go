package bwt

import "math/bits"

// rankBitVector is a bit vector with O(1) rank support, used to mark
// which suffix-array rows carry a position sample. Rank queries use a
// single superblock lookup plus popcounts within the block.
type rankBitVector struct {
	words []uint64
	super []int32 // cumulative popcount before each superblock of 8 words
	n     int
}

const wordsPerSuper = 8

func newRankBitVector(n int) *rankBitVector {
	nw := (n + 63) / 64
	return &rankBitVector{
		words: make([]uint64, nw),
		super: make([]int32, (nw+wordsPerSuper-1)/wordsPerSuper+1),
		n:     n,
	}
}

// Set sets bit i. All Sets must happen before Finish.
func (v *rankBitVector) Set(i int) {
	v.words[i/64] |= 1 << (uint(i) % 64)
}

// Get reports bit i.
func (v *rankBitVector) Get(i int) bool {
	return v.words[i/64]&(1<<(uint(i)%64)) != 0
}

// Finish builds the superblock directory. Call once after all Sets.
func (v *rankBitVector) Finish() {
	var sum int32
	for w := 0; w < len(v.words); w++ {
		if w%wordsPerSuper == 0 {
			v.super[w/wordsPerSuper] = sum
		}
		sum += int32(bits.OnesCount64(v.words[w]))
	}
	v.super[len(v.super)-1] = sum
}

// Rank returns the number of set bits in [0, i).
func (v *rankBitVector) Rank(i int) int {
	w := i / 64
	r := int(v.super[w/wordsPerSuper])
	for k := w - w%wordsPerSuper; k < w; k++ {
		r += bits.OnesCount64(v.words[k])
	}
	if off := uint(i) % 64; off != 0 {
		r += bits.OnesCount64(v.words[w] << (64 - off))
	}
	return r
}

// SizeBytes returns the memory footprint of the vector.
func (v *rankBitVector) SizeBytes() int {
	return 8*len(v.words) + 4*len(v.super)
}
