// Package bwt implements the Burrows-Wheeler transform and an FM-index
// (compressed suffix array) with backward search, the index structure
// that lets ALAE and BWT-SW emulate a suffix trie of the text without
// materialising it (§2.3 and §5 of the paper). The index follows
// Ferragina-Manzini: a BWT string with checkpointed occurrence counts,
// a C array, and a sampled suffix array for locating occurrences.
package bwt

import (
	"fmt"

	"repro/internal/sais"
)

// Sentinel is the conceptual end-of-text symbol '$', smaller than any
// byte of the text. It never appears in the text itself; Transform
// emits it explicitly.
const Sentinel byte = '$'

// Transform returns the Burrows-Wheeler transform of text+Sentinel,
// a string of length len(text)+1. For the paper's example text GCTAGC
// the result is CTGGA$C.
func Transform(text []byte) []byte {
	sa := sais.Build(text)
	n := len(text)
	out := make([]byte, n+1)
	// Row 0 of the conceptual suffix array of text$ is the $ suffix.
	if n > 0 {
		out[0] = text[n-1]
	} else {
		out[0] = Sentinel
	}
	for i, p := range sa {
		if p == 0 {
			out[i+1] = Sentinel
		} else {
			out[i+1] = text[p-1]
		}
	}
	return out
}

// Inverse reconstructs the original text from a transform produced by
// Transform. It returns an error when b is not a valid transform
// (e.g. no sentinel or a malformed permutation).
func Inverse(b []byte) ([]byte, error) {
	n := len(b) - 1
	if n < 0 {
		return nil, fmt.Errorf("bwt: empty transform")
	}
	sentinelAt := -1
	for i, c := range b {
		if c == Sentinel {
			if sentinelAt >= 0 {
				return nil, fmt.Errorf("bwt: multiple sentinels at %d and %d", sentinelAt, i)
			}
			sentinelAt = i
		}
	}
	if sentinelAt < 0 {
		return nil, fmt.Errorf("bwt: no sentinel in transform")
	}
	// LF mapping via counting sort of the transform.
	var counts [256]int
	for _, c := range b {
		counts[c]++
	}
	// The sentinel sorts before everything else.
	var c0 [256]int
	sum := counts[Sentinel]
	for c := 0; c < 256; c++ {
		if byte(c) == Sentinel {
			continue
		}
		c0[c] = sum
		sum += counts[c]
	}
	lf := make([]int, len(b))
	var seen [256]int
	for i, c := range b {
		if c == Sentinel {
			lf[i] = 0
			continue
		}
		lf[i] = c0[c] + seen[c]
		seen[c]++
	}
	// Walk backwards from row 0 (the $ row) emitting characters.
	out := make([]byte, n)
	row := 0
	for i := n - 1; i >= 0; i-- {
		out[i] = b[row]
		row = lf[row]
	}
	if b[row] != Sentinel {
		return nil, fmt.Errorf("bwt: transform is not a valid permutation")
	}
	return out, nil
}
