package bwt

import (
	"fmt"

	"repro/internal/sais"
)

// FMIndex is a compressed suffix array over a byte text: the BWT of
// text+$ with rank support for O(1) backward-search steps and a
// sampled suffix array for locating occurrences. Rows are indexed over
// the n+1 suffixes of text+$; row 0 is always the $ suffix. The index
// is read-only after construction and safe for concurrent use.
//
// Rank support comes in three layouts. For σ ≤ 4 (DNA, the dominant
// workload) the BWT is 2-bit-packed into 64-bit words with interleaved
// occurrence checkpoints and ranks are answered bit-parallel via
// popcount (packedRank). For 4 < σ ≤ 32 (protein) the BWT is
// decomposed into ⌈log2 σ⌉ checkpointed bit planes and ranks are
// answered by masked popcounts over the planes (planeRank). Larger
// alphabets — and ForceByteRank — keep the BWT as a byte slice with
// periodic checkpoints and a single-pass scan. All three layouts also
// answer the two rows of a backward-search step fused (rank2,
// ranksAll2): when lo and hi share a block, the checkpoint is read and
// the block scanned once for both.
type FMIndex struct {
	n           int    // text length
	sigma       int    // number of distinct bytes in the text
	letters     []byte // distinct text bytes in sorted order
	code        [256]int16
	sentinelRow int     // row whose BWT character is $
	c           []int32 // c[k] = 1 + #text chars with code < k ("+1" is the $ row)

	// Byte layout (σ > 4, or ForceByteRank): dense codes with
	// checkpointed counts; bwt[sentinelRow] is a placeholder.
	bwt       []byte
	occ       []int32 // checkpoints: occ[(row/ckpt)*sigma + k]
	ckptEvery int

	// Packed layout (1 ≤ σ ≤ 4): bit-parallel rank core.
	pk *packedRank

	// Plane layout (4 < σ ≤ 32): bit-plane rank core.
	pl *planeRank

	sampleRate int
	sampleMark *rankBitVector // rows carrying a position sample
	samples    []int32        // sampled SA values, in row order
}

// Options tunes the space/time trade-off of the index.
type Options struct {
	// SampleRate is the text-position sampling interval for locate
	// queries (smaller = faster locate, more space). Default 8.
	SampleRate int
	// CheckpointEvery is the occurrence-count checkpoint interval of
	// the byte layout (smaller = faster rank, more space). Default 64.
	// The packed layout checkpoints every 128 rows regardless.
	CheckpointEvery int
	// ForceByteRank disables the bit-parallel rank cores (the 2-bit
	// packed layout for σ ≤ 4 and the bit-plane layout for σ ≤ 32),
	// keeping the byte-scan layout. Used by benchmarks and property
	// tests that compare the implementations; the byte layout is the
	// reference the others are checked against.
	ForceByteRank bool
}

// New builds an FM-index of text with default options.
func New(text []byte) *FMIndex { return NewWithOptions(text, Options{}) }

// NewWithOptions builds an FM-index of text.
func NewWithOptions(text []byte, opt Options) *FMIndex {
	if opt.SampleRate <= 0 {
		opt.SampleRate = 8
	}
	if opt.CheckpointEvery <= 0 {
		opt.CheckpointEvery = 64
	}
	fm := &FMIndex{
		n:          len(text),
		ckptEvery:  opt.CheckpointEvery,
		sampleRate: opt.SampleRate,
	}
	// Dense alphabet of the text.
	var present [256]bool
	for _, b := range text {
		present[b] = true
	}
	for i := range fm.code {
		fm.code[i] = -1
	}
	for b := 0; b < 256; b++ {
		if present[b] {
			fm.code[b] = int16(len(fm.letters))
			fm.letters = append(fm.letters, byte(b))
		}
	}
	fm.sigma = len(fm.letters)

	sa := sais.Build(text)
	rows := fm.n + 1

	// BWT over dense codes; remember where the sentinel lands.
	codes := make([]byte, rows)
	fm.sentinelRow = 0
	saAt := func(row int) int32 {
		if row == 0 {
			return int32(fm.n)
		}
		return sa[row-1]
	}
	for row := 0; row < rows; row++ {
		p := saAt(row)
		if p == 0 {
			fm.sentinelRow = row
			codes[row] = 0 // placeholder, never counted
			continue
		}
		codes[row] = byte(fm.code[text[p-1]])
	}

	// C array.
	fm.c = make([]int32, fm.sigma+1)
	var counts [256]int32
	for _, b := range text {
		counts[fm.code[b]]++
	}
	sum := int32(1) // the $ row precedes everything
	for k := 0; k < fm.sigma; k++ {
		fm.c[k] = sum
		sum += counts[k]
	}
	fm.c[fm.sigma] = sum

	fm.attachRank(codes, opt.ForceByteRank)

	// Position samples: every SampleRate-th text position, plus 0.
	fm.sampleMark = newRankBitVector(rows)
	for row := 0; row < rows; row++ {
		if p := saAt(row); p%int32(fm.sampleRate) == 0 {
			fm.sampleMark.Set(row)
		}
	}
	fm.sampleMark.Finish()
	for row := 0; row < rows; row++ {
		if fm.sampleMark.Get(row) {
			fm.samples = append(fm.samples, saAt(row))
		}
	}
	return fm
}

// attachRank installs the rank structure over the dense-code BWT,
// choosing a bit-parallel core when the alphabet allows it: the 2-bit
// packed layout for σ ≤ 4, the bit-plane layout for 4 < σ ≤ 32.
func (fm *FMIndex) attachRank(codes []byte, forceByte bool) {
	fm.pk, fm.pl = nil, nil
	if !forceByte && fm.sigma >= 1 && fm.sigma <= 4 {
		fm.pk = buildPackedRank(codes)
		fm.bwt, fm.occ = nil, nil
		return
	}
	if !forceByte && fm.sigma > 4 && fm.sigma <= 32 {
		fm.pl = buildPlaneRank(codes, fm.sigma)
		fm.bwt, fm.occ = nil, nil
		return
	}
	fm.bwt = codes
	fm.occ = buildOcc(codes, fm.sentinelRow, fm.ckptEvery, fm.sigma)
}

// buildOcc computes the byte layout's periodic occurrence checkpoints,
// skipping the sentinel placeholder.
func buildOcc(codes []byte, sentinelRow, ckptEvery, sigma int) []int32 {
	rows := len(codes)
	nCkpt := rows/ckptEvery + 1
	occ := make([]int32, nCkpt*sigma)
	running := make([]int32, sigma)
	for row := 0; row <= rows; row++ {
		if row%ckptEvery == 0 {
			copy(occ[(row/ckptEvery)*sigma:], running)
		}
		if row < rows && row != sentinelRow {
			running[codes[row]]++
		}
	}
	return occ
}

// Len returns the text length n.
func (fm *FMIndex) Len() int { return fm.n }

// Rows returns the number of suffix-array rows, n+1.
func (fm *FMIndex) Rows() int { return fm.n + 1 }

// Sigma returns the number of distinct bytes in the text.
func (fm *FMIndex) Sigma() int { return fm.sigma }

// Letters returns the distinct text bytes in sorted order.
func (fm *FMIndex) Letters() []byte { return fm.letters }

// CodeOf returns the dense code of byte b, or -1 when b does not occur
// in the text.
func (fm *FMIndex) CodeOf(b byte) int { return int(fm.code[b]) }

// bwtCode returns the dense code stored at the given BWT row (the
// sentinel row reads its placeholder).
func (fm *FMIndex) bwtCode(row int) byte {
	if fm.pk != nil {
		return fm.pk.at(row)
	}
	if fm.pl != nil {
		return fm.pl.at(row)
	}
	return fm.bwt[row]
}

// rank returns the number of occurrences of code k in bwt[0:row),
// excluding the sentinel placeholder.
func (fm *FMIndex) rank(k int, row int) int32 {
	if fm.pk != nil {
		r := fm.pk.rank(k, row)
		if k == 0 && row > fm.sentinelRow {
			r-- // the placeholder is stored as code 0
		}
		return r
	}
	if fm.pl != nil {
		r := fm.pl.rank(k, row)
		if k == 0 && row > fm.sentinelRow {
			r-- // the placeholder is stored as code 0
		}
		return r
	}
	ck := row / fm.ckptEvery
	start := ck * fm.ckptEvery
	r := fm.occ[ck*fm.sigma+k]
	kb := byte(k)
	for _, b := range fm.bwt[start:row] {
		if b == kb {
			r++
		}
	}
	if sent := fm.sentinelRow; sent >= start && sent < row && fm.bwt[sent] == kb {
		r--
	}
	return r
}

// Rank is the exported form of rank, for benchmarks and property
// tests: the number of occurrences of the letter with dense code k
// among the first row BWT rows, sentinel excluded. k must be in
// [0, Sigma()) and row in [0, Rows()].
func (fm *FMIndex) Rank(k, row int) int32 { return fm.rank(k, row) }

// rank2 answers rank(k, lo) and rank(k, hi) fused: when both rows land
// in the same checkpoint block the block is visited once — the
// ExtendCode case, where lo and hi delimit one suffix-array range.
// Requires lo ≤ hi.
func (fm *FMIndex) rank2(k, lo, hi int) (rlo, rhi int32) {
	switch {
	case fm.pk != nil:
		rlo, rhi = fm.pk.rank2(k, lo, hi)
	case fm.pl != nil:
		rlo, rhi = fm.pl.rank2(k, lo, hi)
	default:
		ckLo := lo / fm.ckptEvery
		if ckLo != hi/fm.ckptEvery {
			return fm.rank(k, lo), fm.rank(k, hi)
		}
		r := fm.occ[ckLo*fm.sigma+k]
		kb := byte(k)
		start := ckLo * fm.ckptEvery
		for _, b := range fm.bwt[start:lo] {
			if b == kb {
				r++
			}
		}
		rlo = r
		for _, b := range fm.bwt[lo:hi] {
			if b == kb {
				r++
			}
		}
		rhi = r
		if sent := fm.sentinelRow; sent >= start && sent < hi && fm.bwt[sent] == kb {
			if sent < lo {
				rlo--
			}
			rhi--
		}
		return rlo, rhi
	}
	// Packed and plane layouts store the sentinel placeholder as code 0.
	if k == 0 {
		if lo > fm.sentinelRow {
			rlo--
		}
		if hi > fm.sentinelRow {
			rhi--
		}
	}
	return rlo, rhi
}

// Rank2 is the exported form of rank2, for benchmarks and property
// tests. Requires lo ≤ hi.
func (fm *FMIndex) Rank2(k, lo, hi int) (int32, int32) { return fm.rank2(k, lo, hi) }

// InitRange returns the suffix-array range of the empty pattern,
// covering all rows.
func (fm *FMIndex) InitRange() (lo, hi int) { return 0, fm.Rows() }

// ExtendCode performs one backward-search step: given the range of a
// pattern S it returns the range of cS, where c is the byte with dense
// code k. An empty result is (x, x). The two boundary ranks are
// answered fused (one checkpoint-block visit when lo and hi are
// close, which deep trie nodes always are).
func (fm *FMIndex) ExtendCode(lo, hi, k int) (int, int) {
	if lo > hi {
		return int(fm.c[k] + fm.rank(k, lo)), int(fm.c[k] + fm.rank(k, hi))
	}
	rlo, rhi := fm.rank2(k, lo, hi)
	return int(fm.c[k] + rlo), int(fm.c[k] + rhi)
}

// Extend is ExtendCode for a raw byte. Bytes absent from the text
// yield an empty range.
func (fm *FMIndex) Extend(lo, hi int, b byte) (int, int) {
	k := fm.code[b]
	if k < 0 {
		return lo, lo
	}
	return fm.ExtendCode(lo, hi, int(k))
}

// ranksAll fills counts[k] = rank(k, row) for every code k in one
// pass — the batched form the trie traversals use when enumerating all
// children of a node.
func (fm *FMIndex) ranksAll(row int, counts []int32) {
	if fm.pk != nil {
		fm.pk.ranksAll(row, counts)
		if row > fm.sentinelRow {
			counts[0]-- // the placeholder is stored as code 0
		}
		return
	}
	if fm.pl != nil {
		fm.pl.ranksAll(row, counts)
		if row > fm.sentinelRow {
			counts[0]-- // the placeholder is stored as code 0
		}
		return
	}
	ck := row / fm.ckptEvery
	copy(counts, fm.occ[ck*fm.sigma:ck*fm.sigma+fm.sigma])
	start := ck * fm.ckptEvery
	sent := fm.sentinelRow
	bwt := fm.bwt
	for i := start; i < row; i++ {
		counts[bwt[i]]++
	}
	if sent >= start && sent < row {
		counts[bwt[sent]]--
	}
}

// RanksAll is the exported form of ranksAll, for benchmarks and
// property tests. counts must have length Sigma().
func (fm *FMIndex) RanksAll(row int, counts []int32) { fm.ranksAll(row, counts) }

// ranksAll2 fills los[k] = rank(k, lo) and his[k] = rank(k, hi) for
// every code k. When both rows fall in the same checkpoint block —
// the ExtendAll case, where they delimit one suffix-array range — the
// block is visited once: the checkpoint is read once, the rows up to
// hi are decomposed once, and both count vectors are derived from that
// single pass. Requires lo ≤ hi.
func (fm *FMIndex) ranksAll2(lo, hi int, los, his []int32) {
	switch {
	case fm.pk != nil:
		fm.pk.ranksAll2(lo, hi, los, his)
	case fm.pl != nil:
		fm.pl.ranksAll2(lo, hi, los, his)
	default:
		ckLo := lo / fm.ckptEvery
		if ckLo != hi/fm.ckptEvery {
			fm.ranksAll(lo, los)
			fm.ranksAll(hi, his)
			return
		}
		sigma := fm.sigma
		copy(los[:sigma], fm.occ[ckLo*sigma:ckLo*sigma+sigma])
		start := ckLo * fm.ckptEvery
		bwt := fm.bwt
		for _, b := range bwt[start:lo] {
			los[b]++
		}
		copy(his[:sigma], los[:sigma])
		for _, b := range bwt[lo:hi] {
			his[b]++
		}
		if sent := fm.sentinelRow; sent >= start && sent < hi {
			if sent < lo {
				los[bwt[sent]]--
			}
			his[bwt[sent]]--
		}
		return
	}
	// Packed and plane layouts store the sentinel placeholder as code 0.
	if lo > fm.sentinelRow {
		los[0]--
	}
	if hi > fm.sentinelRow {
		his[0]--
	}
}

// RanksAll2 is the exported form of ranksAll2, for benchmarks and
// property tests. los and his must have length Sigma(); lo ≤ hi.
func (fm *FMIndex) RanksAll2(lo, hi int, los, his []int32) { fm.ranksAll2(lo, hi, los, his) }

// ExtendAll performs the backward-search step for every character at
// once: after the call, the range of (letter k)+S is
// [los[k], his[k]). los and his must have length Sigma(). The two row
// ranks are fused: when lo and hi share a checkpoint block (every node
// below the first few trie levels) the cost is ~one rank pass, versus
// 2σ for σ ExtendCode calls.
func (fm *FMIndex) ExtendAll(lo, hi int, los, his []int32) {
	if lo <= hi {
		fm.ranksAll2(lo, hi, los, his)
	} else {
		fm.ranksAll(lo, los)
		fm.ranksAll(hi, his)
	}
	for k := 0; k < fm.sigma; k++ {
		los[k] += fm.c[k]
		his[k] += fm.c[k]
	}
}

// LFStep returns the dense code of the BWT character at row together
// with the row of that character's extension (the last-to-first
// mapping). ok is false at the sentinel row, where the pattern cannot
// be extended. For a width-one suffix-array range [row, row+1) this is
// the whole backward-search step: the unique extending character and
// its one-row range — one rank instead of the 2σ a full child
// enumeration costs.
func (fm *FMIndex) LFStep(row int) (code, next int, ok bool) {
	if row == fm.sentinelRow {
		return 0, 0, false
	}
	k, r := fm.lfRank(row)
	return k, int(fm.c[k] + r), true
}

// lfRank returns the dense code at row together with rank(code, row),
// fused into one rank-structure visit where the layout supports it
// (the plane layout would otherwise walk its planes twice). row must
// not be the sentinel row.
func (fm *FMIndex) lfRank(row int) (int, int32) {
	if fm.pl != nil {
		code, r := fm.pl.lfRank(row)
		if code == 0 && row > fm.sentinelRow {
			r-- // the placeholder is stored as code 0
		}
		return int(code), r
	}
	k := int(fm.bwtCode(row))
	return k, fm.rank(k, row)
}

// Search returns the suffix-array range [lo, hi) of pattern in the
// text. The number of occurrences is hi-lo.
func (fm *FMIndex) Search(pattern []byte) (lo, hi int) {
	lo, hi = fm.InitRange()
	for i := len(pattern) - 1; i >= 0 && lo < hi; i-- {
		lo, hi = fm.Extend(lo, hi, pattern[i])
	}
	return lo, hi
}

// Count returns the number of occurrences of pattern in the text.
func (fm *FMIndex) Count(pattern []byte) int {
	lo, hi := fm.Search(pattern)
	return hi - lo
}

// lf is the last-to-first mapping: the row of the suffix starting one
// position before the suffix of the given row.
func (fm *FMIndex) lf(row int) int {
	if row == fm.sentinelRow {
		return 0
	}
	k, r := fm.lfRank(row)
	return int(fm.c[k] + r)
}

// Position returns the text position (0-based) of the suffix at the
// given row; row 0 (the $ suffix) yields n.
func (fm *FMIndex) Position(row int) int {
	steps := 0
	for !fm.sampleMark.Get(row) {
		row = fm.lf(row)
		steps++
		if steps > fm.n+1 {
			// Unreachable on an index built by this package (the walk
			// ends within SampleRate steps); turns a semantically
			// corrupted loaded index into a wrong answer, not a hang.
			return 0
		}
	}
	p := int(fm.samples[fm.sampleMark.Rank(row)]) + steps
	if p > fm.n {
		p = 0 // only reachable through a corrupted loaded index
	}
	return p
}

// Locate returns the text positions of all suffixes in rows [lo, hi),
// i.e. the starting positions of the pattern whose range is [lo, hi).
// The positions are not sorted.
func (fm *FMIndex) Locate(lo, hi int) []int {
	return fm.LocateAppend(lo, hi, make([]int, 0, hi-lo))
}

// locateChunk bounds the batched locate's stack scratch: rows are
// resolved in groups of up to locateChunk at a time.
const locateChunk = 64

// LocateAppend is Locate appending into buf, for callers that reuse a
// positions buffer across queries (the engines' emit paths locate once
// per trie node and must not allocate per node).
//
// Rows are resolved batched, grouped by distance-to-sample: sweep s
// checks every still-walking row of the chunk against the sample
// bitmap, emits the rows whose distance is exactly s, and LF-steps the
// rest together. Each chain is independent (LF is a permutation, so
// chains never merge), but the grouped sweep keeps the rank-structure
// accesses of up to locateChunk rows adjacent in time instead of
// walking each row's full chain before touching the next — the
// cache-friendlier order on the wide ranges emit-heavy searches
// locate.
func (fm *FMIndex) LocateAppend(lo, hi int, buf []int) []int {
	var rows, offs [locateChunk]int
	for base := lo; base < hi; base += locateChunk {
		n := min(locateChunk, hi-base)
		start := len(buf)
		for i := 0; i < n; i++ {
			rows[i] = base + i
			offs[i] = start + i
			buf = append(buf, 0)
		}
		pending := n
		for s := 0; pending > 0; s++ {
			if s > fm.n+1 {
				// Unreachable on an index built by this package (every
				// walk ends within SampleRate steps); turns a corrupted
				// loaded index into wrong answers, not a hang.
				for k := 0; k < pending; k++ {
					buf[offs[k]] = 0
				}
				break
			}
			w := 0
			for k := 0; k < pending; k++ {
				row := rows[k]
				if fm.sampleMark.Get(row) {
					p := int(fm.samples[fm.sampleMark.Rank(row)]) + s
					if p > fm.n {
						p = 0 // only reachable through a corrupted loaded index
					}
					buf[offs[k]] = p
					continue
				}
				rows[w] = fm.lf(row)
				offs[w] = offs[k]
				w++
			}
			pending = w
		}
	}
	return buf
}

// SizeBytes reports the actual in-memory footprint of the index
// structures (rank core, C array, samples). Used by the Figure 11
// index-size experiment.
func (fm *FMIndex) SizeBytes() int {
	rank := len(fm.bwt) + 4*len(fm.occ)
	if fm.pk != nil {
		rank = fm.pk.sizeBytes()
	}
	if fm.pl != nil {
		rank = fm.pl.sizeBytes()
	}
	return rank + 4*len(fm.c) + 4*len(fm.samples) + fm.sampleMark.SizeBytes()
}

// PackedSizeBytes estimates the footprint with the BWT packed at
// ceil(log2 sigma) bits per character, the accounting the paper uses
// ("every character in BWT sequence can be stored using 2 bits").
func (fm *FMIndex) PackedSizeBytes() int {
	bitsPer := 1
	for 1<<bitsPer < fm.sigma {
		bitsPer++
	}
	rows := fm.n + 1
	packed := (rows*bitsPer + 7) / 8
	occ := 4 * len(fm.occ)
	if fm.pk != nil {
		occ = 8 * prCountWords * (len(fm.pk.blocks) / prStride)
	}
	if fm.pl != nil {
		occ = 8 * fm.pl.ckptWords * (len(fm.pl.blocks) / fm.pl.stride)
	}
	return packed + 4*len(fm.c) + occ +
		4*len(fm.samples) + fm.sampleMark.SizeBytes()
}

// String describes the index briefly.
func (fm *FMIndex) String() string {
	layout := "byte"
	if fm.pk != nil {
		layout = "packed2"
	}
	if fm.pl != nil {
		layout = fmt.Sprintf("plane%d", fm.pl.nPlanes)
	}
	return fmt.Sprintf("FMIndex(n=%d, sigma=%d, sample=%d, rank=%s)", fm.n, fm.sigma, fm.sampleRate, layout)
}
