package bwt

import "math/bits"

// packedRank is the bit-parallel rank structure for small alphabets
// (σ ≤ 4, the DNA case): the BWT is stored 2-bit-packed in 64-bit
// words — the representation the paper itself assumes ("every
// character in BWT sequence can be stored using 2 bits") — with the
// occurrence checkpoints interleaved into the same block, so one rank
// query touches one contiguous 48-byte region: two words of per-symbol
// counts followed by four words holding 128 symbols. Within the block
// the count of a symbol is answered with XOR + popcount instead of a
// byte scan, which is what makes backward search bit-parallel.
//
// The sentinel row's placeholder is stored as code 0, exactly like the
// byte layout; FMIndex applies the same query-time correction.
type packedRank struct {
	rows   int
	blocks []uint64
}

const (
	prSymsPerWord  = 32                          // 2 bits per symbol
	prDataWords    = 4                           // data words per block
	prRowsPerBlock = prSymsPerWord * prDataWords // 128
	prCountWords   = 2                           // 4 × uint32 running counts
	prStride       = prCountWords + prDataWords  // uint64s per block
	prLowBits      = 0x5555555555555555          // low bit of every 2-bit group
)

// buildPackedRank packs the dense-code BWT (values 0..3) into blocks.
func buildPackedRank(codes []byte) *packedRank {
	rows := len(codes)
	nBlocks := rows/prRowsPerBlock + 1
	p := &packedRank{rows: rows, blocks: make([]uint64, nBlocks*prStride)}
	var running [4]uint32
	for b := 0; b < nBlocks; b++ {
		base := b * prStride
		p.blocks[base] = uint64(running[0]) | uint64(running[1])<<32
		p.blocks[base+1] = uint64(running[2]) | uint64(running[3])<<32
		lo := b * prRowsPerBlock
		hi := min(lo+prRowsPerBlock, rows)
		for i := lo; i < hi; i++ {
			c := codes[i]
			running[c]++
			off := i - lo
			p.blocks[base+prCountWords+off/prSymsPerWord] |=
				uint64(c) << uint(2*(off%prSymsPerWord))
		}
	}
	return p
}

// eqMask returns a bitmap with the low bit of every 2-bit group set
// where the group of w equals the group of pat.
func eqMask(w, pat uint64) uint64 {
	x := w ^ pat
	return ^(x | x>>1) & prLowBits
}

// pat returns code k replicated into every 2-bit group.
func prPat(k int) uint64 { return uint64(k) * prLowBits }

// at returns the symbol stored at row.
func (p *packedRank) at(row int) byte {
	blk := row / prRowsPerBlock
	off := row % prRowsPerBlock
	w := p.blocks[blk*prStride+prCountWords+off/prSymsPerWord]
	return byte(w >> uint(2*(off%prSymsPerWord)) & 3)
}

// rank returns the number of occurrences of code k in rows [0, row),
// counting the sentinel placeholder as code 0 (the caller corrects).
func (p *packedRank) rank(k, row int) int32 {
	blk := row / prRowsPerBlock
	base := blk * prStride
	cnt := int32(uint32(p.blocks[base+k>>1] >> (uint(k&1) * 32)))
	rem := row % prRowsPerBlock
	pat := prPat(k)
	data := p.blocks[base+prCountWords : base+prStride]
	full := rem / prSymsPerWord
	for i := 0; i < full; i++ {
		cnt += int32(bits.OnesCount64(eqMask(data[i], pat)))
	}
	if tail := rem % prSymsPerWord; tail != 0 {
		m := eqMask(data[full], pat) & (1<<uint(2*tail) - 1)
		cnt += int32(bits.OnesCount64(m))
	}
	return cnt
}

// ranksAll fills counts[k] = rank(k, row) for every code k < len(counts)
// in one block visit, separating each word into high/low bit planes so
// all four symbol counts come from three popcounts per word.
func (p *packedRank) ranksAll(row int, counts []int32) {
	blk := row / prRowsPerBlock
	base := blk * prStride
	var c [4]int32
	c[0] = int32(uint32(p.blocks[base]))
	c[1] = int32(uint32(p.blocks[base] >> 32))
	c[2] = int32(uint32(p.blocks[base+1]))
	c[3] = int32(uint32(p.blocks[base+1] >> 32))
	rem := row % prRowsPerBlock
	data := p.blocks[base+prCountWords : base+prStride]
	full := rem / prSymsPerWord
	var n1, n2, n3 int32
	for i := 0; i < full; i++ {
		word := data[i]
		lo := word & prLowBits
		hi := word >> 1 & prLowBits
		n3 += int32(bits.OnesCount64(lo & hi))
		n2 += int32(bits.OnesCount64(hi &^ lo))
		n1 += int32(bits.OnesCount64(lo &^ hi))
	}
	if tail := rem % prSymsPerWord; tail != 0 {
		word := data[full] & (1<<uint(2*tail) - 1)
		lo := word & prLowBits
		hi := word >> 1 & prLowBits
		n3 += int32(bits.OnesCount64(lo & hi))
		n2 += int32(bits.OnesCount64(hi &^ lo))
		n1 += int32(bits.OnesCount64(lo &^ hi))
	}
	c[0] += int32(rem) - n1 - n2 - n3
	c[1] += n1
	c[2] += n2
	c[3] += n3
	copy(counts, c[:len(counts)])
}

// appendCodes unpacks the stored symbols into out, for serialization
// and consistency verification.
func (p *packedRank) appendCodes(out []byte) []byte {
	for row := 0; row < p.rows; row++ {
		out = append(out, p.at(row))
	}
	return out
}

// sizeBytes is the in-memory footprint of the structure.
func (p *packedRank) sizeBytes() int { return 8 * len(p.blocks) }
