package bwt

import "math/bits"

// packedRank is the bit-parallel rank structure for small alphabets
// (σ ≤ 4, the DNA case): the BWT is stored 2-bit-packed in 64-bit
// words — the representation the paper itself assumes ("every
// character in BWT sequence can be stored using 2 bits") — with the
// occurrence checkpoints interleaved into the same block, so one rank
// query touches one contiguous 48-byte region: two words of per-symbol
// counts followed by four words holding 128 symbols. Within the block
// the count of a symbol is answered with XOR + popcount instead of a
// byte scan, which is what makes backward search bit-parallel.
//
// The sentinel row's placeholder is stored as code 0, exactly like the
// byte layout; FMIndex applies the same query-time correction.
type packedRank struct {
	rows   int
	blocks []uint64
}

const (
	prSymsPerWord  = 32                          // 2 bits per symbol
	prDataWords    = 4                           // data words per block
	prRowsPerBlock = prSymsPerWord * prDataWords // 128
	prCountWords   = 2                           // 4 × uint32 running counts
	prStride       = prCountWords + prDataWords  // uint64s per block
	prLowBits      = 0x5555555555555555          // low bit of every 2-bit group
)

// buildPackedRank packs the dense-code BWT (values 0..3) into blocks.
func buildPackedRank(codes []byte) *packedRank {
	rows := len(codes)
	nBlocks := rows/prRowsPerBlock + 1
	p := &packedRank{rows: rows, blocks: make([]uint64, nBlocks*prStride)}
	var running [4]uint32
	for b := 0; b < nBlocks; b++ {
		base := b * prStride
		p.blocks[base] = uint64(running[0]) | uint64(running[1])<<32
		p.blocks[base+1] = uint64(running[2]) | uint64(running[3])<<32
		lo := b * prRowsPerBlock
		hi := min(lo+prRowsPerBlock, rows)
		for i := lo; i < hi; i++ {
			c := codes[i]
			running[c]++
			off := i - lo
			p.blocks[base+prCountWords+off/prSymsPerWord] |=
				uint64(c) << uint(2*(off%prSymsPerWord))
		}
	}
	return p
}

// eqMask returns a bitmap with the low bit of every 2-bit group set
// where the group of w equals the group of pat.
func eqMask(w, pat uint64) uint64 {
	x := w ^ pat
	return ^(x | x>>1) & prLowBits
}

// pat returns code k replicated into every 2-bit group.
func prPat(k int) uint64 { return uint64(k) * prLowBits }

// at returns the symbol stored at row.
func (p *packedRank) at(row int) byte {
	blk := row / prRowsPerBlock
	off := row % prRowsPerBlock
	w := p.blocks[blk*prStride+prCountWords+off/prSymsPerWord]
	return byte(w >> uint(2*(off%prSymsPerWord)) & 3)
}

// rank returns the number of occurrences of code k in rows [0, row),
// counting the sentinel placeholder as code 0 (the caller corrects).
func (p *packedRank) rank(k, row int) int32 {
	blk := row / prRowsPerBlock
	base := blk * prStride
	cnt := int32(uint32(p.blocks[base+k>>1] >> (uint(k&1) * 32)))
	rem := row % prRowsPerBlock
	pat := prPat(k)
	data := p.blocks[base+prCountWords : base+prStride]
	full := rem / prSymsPerWord
	for i := 0; i < full; i++ {
		cnt += int32(bits.OnesCount64(eqMask(data[i], pat)))
	}
	if tail := rem % prSymsPerWord; tail != 0 {
		m := eqMask(data[full], pat) & (1<<uint(2*tail) - 1)
		cnt += int32(bits.OnesCount64(m))
	}
	return cnt
}

// rank2 answers rank(k, lo) and rank(k, hi) in one block visit when
// both rows fall in the same block — the backward-search case, where
// lo and hi delimit one suffix-array range: the shared checkpoint is
// read once and the data words up to hi are scanned once, splitting
// each straddled word at lo. Requires lo ≤ hi.
func (p *packedRank) rank2(k, lo, hi int) (int32, int32) {
	bl := lo / prRowsPerBlock
	if bl != hi/prRowsPerBlock {
		return p.rank(k, lo), p.rank(k, hi)
	}
	base := bl * prStride
	cnt := int32(uint32(p.blocks[base+k>>1] >> (uint(k&1) * 32)))
	remLo, remHi := lo%prRowsPerBlock, hi%prRowsPerBlock
	pat := prPat(k)
	data := p.blocks[base+prCountWords : base+prStride]
	var a, b int32 // matches in [0, remLo) and [remLo, remHi)
	for w := 0; w*prSymsPerWord < remHi; w++ {
		m := eqMask(data[w], pat)
		start := w * prSymsPerWord
		if n := remHi - start; n < prSymsPerWord {
			m &= 1<<uint(2*n) - 1
		}
		switch {
		case start+prSymsPerWord <= remLo:
			a += int32(bits.OnesCount64(m))
		case start >= remLo:
			b += int32(bits.OnesCount64(m))
		default:
			split := uint64(1)<<uint(2*(remLo-start)) - 1
			a += int32(bits.OnesCount64(m & split))
			b += int32(bits.OnesCount64(m &^ split))
		}
	}
	return cnt + a, cnt + a + b
}

// ranksAll fills counts[k] = rank(k, row) for every code k < len(counts)
// in one block visit, separating each word into high/low bit planes so
// all four symbol counts come from three popcounts per word.
func (p *packedRank) ranksAll(row int, counts []int32) {
	blk := row / prRowsPerBlock
	base := blk * prStride
	var c [4]int32
	c[0] = int32(uint32(p.blocks[base]))
	c[1] = int32(uint32(p.blocks[base] >> 32))
	c[2] = int32(uint32(p.blocks[base+1]))
	c[3] = int32(uint32(p.blocks[base+1] >> 32))
	rem := row % prRowsPerBlock
	data := p.blocks[base+prCountWords : base+prStride]
	full := rem / prSymsPerWord
	var n1, n2, n3 int32
	for i := 0; i < full; i++ {
		word := data[i]
		lo := word & prLowBits
		hi := word >> 1 & prLowBits
		n3 += int32(bits.OnesCount64(lo & hi))
		n2 += int32(bits.OnesCount64(hi &^ lo))
		n1 += int32(bits.OnesCount64(lo &^ hi))
	}
	if tail := rem % prSymsPerWord; tail != 0 {
		word := data[full] & (1<<uint(2*tail) - 1)
		lo := word & prLowBits
		hi := word >> 1 & prLowBits
		n3 += int32(bits.OnesCount64(lo & hi))
		n2 += int32(bits.OnesCount64(hi &^ lo))
		n1 += int32(bits.OnesCount64(lo &^ hi))
	}
	c[0] += int32(rem) - n1 - n2 - n3
	c[1] += n1
	c[2] += n2
	c[3] += n3
	copy(counts, c[:len(counts)])
}

// countWord adds one data word's symbol populations (restricted to the
// 2-bit groups selected by clip, whose low bits must be set) onto the
// n1/n2/n3 plane counters. Code-0 counts are derived from the scanned
// row total by the callers.
func countWord(word, clip uint64, n1, n2, n3 *int32) {
	lo := word & clip
	hi := word >> 1 & clip
	*n3 += int32(bits.OnesCount64(lo & hi))
	*n2 += int32(bits.OnesCount64(hi &^ lo))
	*n1 += int32(bits.OnesCount64(lo &^ hi))
}

// ranksAll2 fills los[k] = rank(k, lo) and his[k] = rank(k, hi) for
// every code k, visiting the shared block once when lo and hi fall in
// the same block — the ExtendAll case, where the two rows delimit one
// suffix-array range: the checkpoint words are read once and each data
// word up to hi is decomposed into its bit planes once, with straddled
// words split at lo. Requires lo ≤ hi; los and his must have length 4
// (or the alphabet size).
func (p *packedRank) ranksAll2(lo, hi int, los, his []int32) {
	bl := lo / prRowsPerBlock
	if bl != hi/prRowsPerBlock {
		p.ranksAll(lo, los)
		p.ranksAll(hi, his)
		return
	}
	base := bl * prStride
	var c [4]int32
	c[0] = int32(uint32(p.blocks[base]))
	c[1] = int32(uint32(p.blocks[base] >> 32))
	c[2] = int32(uint32(p.blocks[base+1]))
	c[3] = int32(uint32(p.blocks[base+1] >> 32))
	remLo, remHi := lo%prRowsPerBlock, hi%prRowsPerBlock
	data := p.blocks[base+prCountWords : base+prStride]
	var a1, a2, a3, b1, b2, b3 int32 // [0, remLo) and [remLo, remHi)
	for w := 0; w*prSymsPerWord < remHi; w++ {
		word := data[w]
		start := w * prSymsPerWord
		clip := uint64(prLowBits)
		if n := remHi - start; n < prSymsPerWord {
			clip &= 1<<uint(2*n) - 1
		}
		switch {
		case start+prSymsPerWord <= remLo:
			countWord(word, clip, &a1, &a2, &a3)
		case start >= remLo:
			countWord(word, clip, &b1, &b2, &b3)
		default:
			split := (uint64(1)<<uint(2*(remLo-start)) - 1) & prLowBits
			countWord(word, clip&split, &a1, &a2, &a3)
			countWord(word, clip&^split, &b1, &b2, &b3)
		}
	}
	n := min(len(los), 4)
	loC := [4]int32{
		c[0] + int32(remLo) - a1 - a2 - a3,
		c[1] + a1, c[2] + a2, c[3] + a3,
	}
	hiC := [4]int32{
		c[0] + int32(remHi) - a1 - a2 - a3 - b1 - b2 - b3,
		c[1] + a1 + b1, c[2] + a2 + b2, c[3] + a3 + b3,
	}
	copy(los, loC[:n])
	copy(his, hiC[:n])
}

// appendCodes unpacks the stored symbols into out, for serialization
// and consistency verification.
func (p *packedRank) appendCodes(out []byte) []byte {
	for row := 0; row < p.rows; row++ {
		out = append(out, p.at(row))
	}
	return out
}

// sizeBytes is the in-memory footprint of the structure.
func (p *packedRank) sizeBytes() int { return 8 * len(p.blocks) }
