package bwt

import (
	"math/rand"
	"testing"
)

// layoutsUnderTest builds the default index (packed for σ ≤ 4, plane
// for σ ≤ 32) and the byte-scan reference over the same text.
func layoutsUnderTest(text []byte) (def, ref *FMIndex) {
	return New(text), NewWithOptions(text, Options{ForceByteRank: true})
}

// TestRanksAll2MatchesTwoCalls is the property test of the fused
// two-row rank: for every layout (packed DNA, bit-plane protein, and
// the byte reference itself), ranksAll2(lo, hi) must equal the pair
// ranksAll(lo), ranksAll(hi), and rank2 likewise — across random
// (lo, hi) pairs plus directed rows straddling the sentinel and every
// kind of checkpoint-block boundary.
func TestRanksAll2MatchesTwoCalls(t *testing.T) {
	cases := []struct {
		name    string
		letters []byte
		sizes   []int
	}{
		{"dna", []byte("ACGT"), []int{0, 1, 2, 63, 64, 127, 128, 129, 255, 1000, 20000}},
		{"binary", []byte("AB"), []int{5, 300}},
		{"protein", []byte("ACDEFGHIKLMNPQRSTVWY"), []int{1, 127, 128, 500, 5000}},
		{"sigma32", []byte("ABCDEFGHIJKLMNOPQRSTUVWXYZ012345"), []int{700}},
		{"sigma33-byte", []byte("ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456"), []int{700}},
	}
	for _, tc := range cases {
		for _, n := range tc.sizes {
			text := randomText(tc.letters, n, int64(n)+23)
			def, ref := layoutsUnderTest(text)
			rows := def.Rows()
			sigma := def.Sigma()
			if sigma == 0 {
				continue
			}
			los := make([]int32, sigma)
			his := make([]int32, sigma)
			wantLo := make([]int32, sigma)
			wantHi := make([]int32, sigma)
			probe := func(fm *FMIndex, layout string, lo, hi int) {
				t.Helper()
				fm.RanksAll2(lo, hi, los, his)
				fm.RanksAll(lo, wantLo)
				fm.RanksAll(hi, wantHi)
				for k := 0; k < sigma; k++ {
					if los[k] != wantLo[k] || his[k] != wantHi[k] {
						t.Fatalf("%s/%s/n=%d: RanksAll2(%d, %d)[%d] = (%d, %d), two RanksAll say (%d, %d)",
							tc.name, layout, n, lo, hi, k, los[k], his[k], wantLo[k], wantHi[k])
					}
					gotLo, gotHi := fm.Rank2(k, lo, hi)
					if gotLo != wantLo[k] || gotHi != wantHi[k] {
						t.Fatalf("%s/%s/n=%d: Rank2(%d, %d, %d) = (%d, %d), two Ranks say (%d, %d)",
							tc.name, layout, n, k, lo, hi, gotLo, gotHi, wantLo[k], wantHi[k])
					}
				}
			}
			probeBoth := func(lo, hi int) {
				probe(def, "default", lo, hi)
				probe(ref, "byte", lo, hi)
				// The fused LF step (code + rank in one visit) must
				// agree across layouts at both rows.
				for _, row := range []int{lo, hi} {
					if row >= rows {
						continue
					}
					c1, n1, ok1 := def.LFStep(row)
					c2, n2, ok2 := ref.LFStep(row)
					if c1 != c2 || n1 != n2 || ok1 != ok2 {
						t.Fatalf("%s/n=%d: LFStep(%d) = (%d, %d, %v) default vs (%d, %d, %v) byte",
							tc.name, n, row, c1, n1, ok1, c2, n2, ok2)
					}
				}
			}
			// Directed pairs: block/checkpoint boundaries (64, 127, 128,
			// 129), the sentinel row straddled and touched, equal rows,
			// and the full range.
			sent := def.sentinelRow
			directed := [][2]int{
				{0, 0}, {0, rows}, {rows, rows},
				{sent, sent}, {max(0, sent-1), min(rows, sent+1)},
				{sent, min(rows, sent+1)}, {max(0, sent-1), sent},
			}
			for _, b := range []int{63, 64, 65, 127, 128, 129, 191, 192} {
				if b <= rows {
					directed = append(directed, [2]int{b, b}, [2]int{max(0, b-1), b}, [2]int{b, min(rows, b+1)})
					if b+40 <= rows {
						directed = append(directed, [2]int{b - 30, b + 40}) // straddles the boundary
					}
				}
			}
			for _, d := range directed {
				if d[0] <= d[1] && d[1] <= rows {
					probeBoth(d[0], d[1])
				}
			}
			rng := rand.New(rand.NewSource(int64(n) + 31))
			trials := 300
			if rows <= 256 {
				trials = 80
			}
			for trial := 0; trial < trials; trial++ {
				lo := rng.Intn(rows + 1)
				hi := lo
				switch trial % 3 {
				case 0: // near pair, usually same block
					hi = min(rows, lo+rng.Intn(48))
				case 1: // anywhere
					hi = lo + rng.Intn(rows+1-lo)
				}
				probeBoth(lo, hi)
			}
		}
	}
}
