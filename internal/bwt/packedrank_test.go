package bwt

import (
	"bytes"
	"math/rand"
	"testing"
)

// randomText draws n bytes from letters.
func randomText(letters []byte, n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	text := make([]byte, n)
	for i := range text {
		text[i] = letters[rng.Intn(len(letters))]
	}
	return text
}

// TestPackedRankMatchesByteRank is the property test of the
// bit-parallel cores: on random texts over DNA-sized (2-bit packed
// layout), protein-sized and maximal 32-letter (bit-plane layout)
// alphabets, every rank answer of the default index equals the
// byte-scan layout's, for every code, at exhaustive rows on small
// texts and random rows on larger ones.
func TestPackedRankMatchesByteRank(t *testing.T) {
	cases := []struct {
		name    string
		letters []byte
		sizes   []int
	}{
		{"dna", []byte("ACGT"), []int{0, 1, 2, 63, 64, 127, 128, 129, 1000, 20000}},
		{"binary", []byte("AB"), []int{5, 300}},
		{"protein", []byte("ACDEFGHIKLMNPQRSTVWY"), []int{1, 63, 64, 127, 128, 129, 500, 5000}},
		{"sigma5", []byte("ACGTN"), []int{400}},
		{"sigma32", []byte("ABCDEFGHIJKLMNOPQRSTUVWXYZ012345"), []int{900}},
		{"sigma33-byte-fallback", []byte("ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456"), []int{900}},
	}
	for _, tc := range cases {
		for _, n := range tc.sizes {
			text := randomText(tc.letters, n, int64(n)+17)
			def := New(text)
			ref := NewWithOptions(text, Options{ForceByteRank: true})
			if def.Sigma() != ref.Sigma() || def.Rows() != ref.Rows() {
				t.Fatalf("%s/n=%d: dimensions diverge", tc.name, n)
			}
			rows := def.Rows()
			probe := func(row int) {
				for k := 0; k < def.Sigma(); k++ {
					if got, want := def.Rank(k, row), ref.Rank(k, row); got != want {
						t.Fatalf("%s/n=%d: Rank(%d, %d) = %d, byte layout says %d",
							tc.name, n, k, row, got, want)
					}
				}
				if s := def.Sigma(); s > 0 {
					got := make([]int32, s)
					want := make([]int32, s)
					def.RanksAll(row, got)
					ref.RanksAll(row, want)
					for k := range got {
						if got[k] != want[k] {
							t.Fatalf("%s/n=%d: RanksAll(%d)[%d] = %d, byte layout says %d",
								tc.name, n, row, k, got[k], want[k])
						}
					}
				}
			}
			if rows <= 512 {
				for row := 0; row <= rows-1; row++ {
					probe(row)
				}
				probe(rows - 1)
			} else {
				rng := rand.New(rand.NewSource(int64(n)))
				for trial := 0; trial < 2000; trial++ {
					probe(rng.Intn(rows))
				}
				probe(0)
				probe(rows - 1)
			}
		}
	}
}

// TestPackedRankSearchLocateAgree cross-checks the full query surface
// of the two layouts: Search ranges, Locate positions, and LF walks.
func TestPackedRankSearchLocateAgree(t *testing.T) {
	text := randomText([]byte("ACGT"), 8000, 99)
	def := New(text)
	ref := NewWithOptions(text, Options{ForceByteRank: true})
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 300; trial++ {
		l := 1 + rng.Intn(12)
		start := rng.Intn(len(text) - l)
		pat := text[start : start+l]
		lo1, hi1 := def.Search(pat)
		lo2, hi2 := ref.Search(pat)
		if lo1 != lo2 || hi1 != hi2 {
			t.Fatalf("Search(%q): packed [%d,%d) vs byte [%d,%d)", pat, lo1, hi1, lo2, hi2)
		}
		p1 := def.Locate(lo1, min(hi1, lo1+8))
		p2 := ref.Locate(lo2, min(hi2, lo2+8))
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("Locate(%q) diverges at %d: %d vs %d", pat, i, p1[i], p2[i])
			}
		}
	}
	for row := 0; row < def.Rows(); row += 37 {
		if def.Position(row) != ref.Position(row) {
			t.Fatalf("Position(%d): %d vs %d", row, def.Position(row), ref.Position(row))
		}
	}
}

// TestPackedRankSerializeRoundTrip checks that a packed index survives
// WriteTo/ReadFMIndex and comes back packed with identical behaviour.
func TestPackedRankSerializeRoundTrip(t *testing.T) {
	text := randomText([]byte("ACGT"), 4000, 7)
	fm := New(text)
	if fm.pk == nil {
		t.Fatal("DNA index should use the packed layout")
	}
	var buf bytes.Buffer
	if _, err := fm.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFMIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.pk == nil {
		t.Error("loaded DNA index should use the packed layout")
	}
	for k := 0; k < fm.Sigma(); k++ {
		for row := 0; row <= fm.Rows(); row += 53 {
			if fm.Rank(k, row) != back.Rank(k, row) {
				t.Fatalf("Rank(%d, %d) changed across round trip", k, row)
			}
		}
	}
}

// TestPlaneRankSerializeRoundTrip checks that a bit-plane protein
// index survives WriteTo/ReadFMIndex at the current serialVersion and
// comes back on the plane layout with identical rank behaviour.
func TestPlaneRankSerializeRoundTrip(t *testing.T) {
	text := randomText([]byte("ACDEFGHIKLMNPQRSTVWY"), 3000, 9)
	fm := New(text)
	if fm.pl == nil {
		t.Fatal("protein index should use the plane layout")
	}
	var buf bytes.Buffer
	if _, err := fm.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFMIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.pl == nil {
		t.Error("loaded protein index should use the plane layout")
	}
	for k := 0; k < fm.Sigma(); k++ {
		for row := 0; row <= fm.Rows(); row += 37 {
			if fm.Rank(k, row) != back.Rank(k, row) {
				t.Fatalf("Rank(%d, %d) changed across round trip", k, row)
			}
		}
	}
	// A byte-forced writer round-trips onto the plane layout too: the
	// payload is layout-independent and the loader picks the best core.
	ref := NewWithOptions(text, Options{ForceByteRank: true})
	buf.Reset()
	if _, err := ref.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back2, err := ReadFMIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back2.pl == nil {
		t.Error("byte-written protein index should load onto the plane layout")
	}
	if back2.Count(text[100:107]) != fm.Count(text[100:107]) {
		t.Error("counts differ across byte-written round trip")
	}
}
