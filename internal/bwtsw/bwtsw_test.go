package bwtsw

import (
	"math/rand"
	"testing"

	"repro/internal/align"
)

func randDNA(n int, rng *rand.Rand) []byte {
	letters := []byte("ACGT")
	out := make([]byte, n)
	for i := range out {
		out[i] = letters[rng.Intn(4)]
	}
	return out
}

// run returns the engine's sorted hits.
func run(text, query []byte, s align.Scheme, h int) ([]align.Hit, Stats) {
	e := New(text)
	c := align.NewCollector()
	st := e.Search(query, s, h, c)
	return c.Hits(), st
}

func TestSearchMatchesGotohRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for trial := 0; trial < 60; trial++ {
		text := randDNA(30+rng.Intn(150), rng)
		query := randDNA(10+rng.Intn(80), rng)
		h := 3 + rng.Intn(8)
		got, _ := run(text, query, align.DefaultDNA, h)
		want := align.LocalAll(text, query, align.DefaultDNA, h)
		if !align.EqualHits(got, want) {
			t.Fatalf("trial %d (T=%q P=%q H=%d):\n got %v\nwant %v",
				trial, text, query, h, got, want)
		}
	}
}

func TestSearchMatchesGotohHomologous(t *testing.T) {
	// Mutated copies exercise gapped alignments.
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 20; trial++ {
		text := randDNA(200, rng)
		q := append([]byte(nil), text[50:110]...)
		q[10] = 'A'
		q[30] = 'C'
		q = append(q[:20], q[23:]...) // 3-char deletion
		h := 10
		got, _ := run(text, q, align.DefaultDNA, h)
		want := align.LocalAll(text, q, align.DefaultDNA, h)
		if !align.EqualHits(got, want) {
			t.Fatalf("trial %d:\n got %v\nwant %v", trial, got, want)
		}
		if len(want) == 0 {
			t.Fatalf("trial %d: workload produced no hits; test is vacuous", trial)
		}
	}
}

func TestSearchAllSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for _, s := range align.Fig9Schemes {
		for trial := 0; trial < 15; trial++ {
			text := randDNA(80+rng.Intn(80), rng)
			query := randDNA(40, rng)
			h := 5 + rng.Intn(5)
			got, _ := run(text, query, s, h)
			want := align.LocalAll(text, query, s, h)
			if !align.EqualHits(got, want) {
				t.Fatalf("scheme %v trial %d (T=%q P=%q H=%d):\n got %v\nwant %v",
					s, trial, text, query, h, got, want)
			}
		}
	}
}

func TestSearchProteinAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	letters := []byte("ACDEFGHIKLMNPQRSTVWY")
	randProt := func(n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = letters[rng.Intn(len(letters))]
		}
		return out
	}
	s := align.DefaultProtein
	for trial := 0; trial < 15; trial++ {
		text := randProt(150)
		query := append(randProt(10), append(append([]byte(nil), text[40:80]...), randProt(10)...)...)
		h := 8
		got, _ := run(text, query, s, h)
		want := align.LocalAll(text, query, s, h)
		if !align.EqualHits(got, want) {
			t.Fatalf("trial %d:\n got %v\nwant %v", trial, got, want)
		}
	}
}

func TestSearchRepeatRichText(t *testing.T) {
	// Heavy repetition stresses occurrence fan-out (one trie path,
	// many text positions).
	rng := rand.New(rand.NewSource(84))
	unit := randDNA(20, rng)
	var text []byte
	for i := 0; i < 10; i++ {
		text = append(text, unit...)
	}
	query := append(append([]byte(nil), unit...), randDNA(10, rng)...)
	h := 12
	got, _ := run(text, query, align.DefaultDNA, h)
	want := align.LocalAll(text, query, align.DefaultDNA, h)
	if !align.EqualHits(got, want) {
		t.Fatalf("repeat text:\n got %v\nwant %v", got, want)
	}
	if len(want) == 0 {
		t.Fatal("vacuous repeat test")
	}
}

func TestSearchEdgeCases(t *testing.T) {
	e := New([]byte("ACGT"))
	c := align.NewCollector()
	if st := e.Search(nil, align.DefaultDNA, 5, c); st.CalculatedEntries != 0 {
		t.Error("empty query should compute nothing")
	}
	// h below 1 is clamped; still exact.
	c = align.NewCollector()
	e.Search([]byte("ACGT"), align.DefaultDNA, 0, c)
	want := align.LocalAll([]byte("ACGT"), []byte("ACGT"), align.DefaultDNA, 1)
	if !align.EqualHits(c.Hits(), want) {
		t.Errorf("h=0 clamp: got %v, want %v", c.Hits(), want)
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	text := randDNA(500, rng)
	query := randDNA(100, rng)
	_, st := run(text, query, align.DefaultDNA, 15)
	if st.CalculatedEntries <= 0 {
		t.Error("no entries calculated")
	}
	if st.NodesVisited <= 0 {
		t.Error("no nodes visited")
	}
	if st.ComputationCost() != 3*st.CalculatedEntries {
		t.Error("cost accounting drifted from the paper's 3 units per entry")
	}
	// BWT-SW must compute far less than the full n·m matrix on random
	// DNA — that is its whole point versus Smith-Waterman.
	full := int64(len(text)) * int64(len(query))
	if st.CalculatedEntries >= full {
		t.Errorf("calculated %d ≥ full matrix %d: pruning is not working",
			st.CalculatedEntries, full)
	}
}

func TestDepthCapMatchesTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	text := randDNA(400, rng)
	query := randDNA(30, rng)
	_, st := run(text, query, align.DefaultDNA, 5)
	if st.MaxDepth > align.DefaultDNA.Lmax(len(query), 1) {
		t.Errorf("depth %d exceeded Lmax(m,1)=%d", st.MaxDepth, align.DefaultDNA.Lmax(len(query), 1))
	}
}

func BenchmarkSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(87))
	text := randDNA(100000, rng)
	query := randDNA(1000, rng)
	e := New(text)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := align.NewCollector()
		e.Search(query, align.DefaultDNA, 25, c)
	}
}
