// Package bwtsw implements the BWT-SW baseline (Lam et al.,
// Bioinformatics 2008), the exact local-alignment method that ALAE
// improves on. BWT-SW runs the BASIC algorithm's dynamic program over
// the suffix trie of the text, emulated on a compressed suffix array,
// with one pruning rule: non-positive alignment scores are meaningless
// (§2.4: "BWT-SW traverses the suffix trie in preorder and provides an
// early-termination technique by ignoring all negative alignment
// scores ... if the matrix indicates that there is not any substring
// of the query pattern having a positive score when aligned with the
// path, then BWT-SW can safely prune the subtree").
//
// Rows of each path matrix are kept sparse: only cells with a positive
// best score are stored. That loses nothing because M ≥ Ga and M ≥ Gb
// hold cell-wise (M maximises over both), so every auxiliary score of
// a dead cell is non-positive and can only decay. Every cell
// evaluation is counted; the paper's Table 4 charges BWT-SW 3 cost
// units per cell (M, Ga and Gb all computed).
package bwtsw

import (
	"repro/internal/align"
	"repro/internal/strie"
)

// Stats reports the work done by one search.
type Stats struct {
	CalculatedEntries int64 // DP cells evaluated
	NodesVisited      int64 // emulated trie nodes expanded
	MaxDepth          int   // deepest row reached
}

// ComputationCost is the paper's §7.2 cost accounting: BWT-SW pays 3
// units per calculated entry.
func (st Stats) ComputationCost() int64 { return 3 * st.CalculatedEntries }

// Engine searches one indexed text. It is safe for concurrent
// searches once built.
type Engine struct {
	trie *strie.Trie
}

// New indexes the text and returns an engine.
func New(text []byte) *Engine { return &Engine{trie: strie.New(text)} }

// NewFromTrie wraps an existing emulated suffix trie, letting callers
// share one index across engines.
func NewFromTrie(t *strie.Trie) *Engine { return &Engine{trie: t} }

// Trie exposes the underlying emulated suffix trie.
func (e *Engine) Trie() *strie.Trie { return e.trie }

const negInf = int32(-1) << 28

// row is a sparse DP row: parallel slices of alive columns (1-based),
// their best scores M and auxiliary vertical-gap scores Ga.
type row struct {
	js []int32
	m  []int32
	ga []int32
}

func (r *row) reset() { r.js, r.m, r.ga = r.js[:0], r.m[:0], r.ga[:0] }

// Search reports every end pair (i, j) with best alignment score ≥ h
// into c and returns work statistics. h must be at least 1; the
// method is exact for any h ≥ 1 (BWT-SW does not need the q-prefix
// assumption that ALAE does).
func (e *Engine) Search(query []byte, s align.Scheme, h int, c *align.Collector) Stats {
	var st Stats
	m := len(query)
	if m == 0 || e.trie.Index().Len() == 0 {
		return st
	}
	if h < 1 {
		h = 1
	}
	// Depth cap implied by positivity: a positive cell (i, j) needs
	// i ≤ j + (j·sa + sg)/|ss| ≤ Lmax(m, 1) (Theorem 1 with H = 1),
	// so this cap removes nothing BWT-SW would keep.
	maxDepth := s.Lmax(m, 1)

	d := &dfsState{
		e: e, query: query, s: s, h: h, c: c, st: &st,
		maxDepth: maxDepth,
	}
	root := e.trie.Root()
	for _, ch := range e.trie.Letters() {
		child, ok := e.trie.Child(root, ch)
		if !ok {
			continue
		}
		d.ensureRows(1)
		d.firstRow(ch)
		if len(d.rows[0].js) > 0 {
			d.walk(child, 0)
		}
	}
	return st
}

type dfsState struct {
	e        *Engine
	query    []byte
	s        align.Scheme
	h        int
	c        *align.Collector
	st       *Stats
	maxDepth int
	rows     []row   // rows[d] is the sparse row at depth d+1
	cand     []int32 // scratch candidate-column buffer

	scratch []*childScratch
}

// childScratch holds one recursion level's child-enumeration buffers.
type childScratch struct {
	nodes    []strie.Node
	los, his []int32
}

func (d *dfsState) getScratch() *childScratch {
	if n := len(d.scratch); n > 0 {
		sc := d.scratch[n-1]
		d.scratch = d.scratch[:n-1]
		return sc
	}
	sigma := d.e.trie.Index().Sigma()
	return &childScratch{
		nodes: make([]strie.Node, sigma),
		los:   make([]int32, sigma),
		his:   make([]int32, sigma),
	}
}

func (d *dfsState) putScratch(sc *childScratch) { d.scratch = append(d.scratch, sc) }

func (d *dfsState) ensureRows(n int) {
	for len(d.rows) < n {
		d.rows = append(d.rows, row{})
	}
}

// firstRow computes the depth-1 row for edge character ch from the
// dense virtual row 0 (M(0, j) = 0 for every j).
func (d *dfsState) firstRow(ch byte) {
	out := &d.rows[0]
	out.reset()
	s := d.s
	open := int32(s.GapOpen + s.GapExtend)
	ext := int32(s.GapExtend)
	gb := negInf
	for j := 1; j <= len(d.query); j++ {
		diag := int32(s.Delta(ch, d.query[j-1])) // M(0, j-1) = 0
		ga := open                               // from M(0, j) = 0
		mv := max32(diag, ga, gb)
		d.st.CalculatedEntries++
		if mv > 0 {
			out.js = append(out.js, int32(j))
			out.m = append(out.m, mv)
			out.ga = append(out.ga, ga)
		}
		// Gb(1, j+1) = max(Gb(1, j)+ss, M(1, j)+sg+ss).
		gb = carryNext(gb, mv, ext, open)
	}
}

// walk expands the subtree under node, whose sparse row sits at
// rows[depthIdx] (node.Depth == depthIdx+1).
func (d *dfsState) walk(node strie.Node, depthIdx int) {
	d.st.NodesVisited++
	if node.Depth > d.st.MaxDepth {
		d.st.MaxDepth = node.Depth
	}
	d.emit(node, depthIdx)
	if node.Depth >= d.maxDepth {
		return
	}
	d.ensureRows(depthIdx + 2)
	if node.Hi-node.Lo == 1 && node.Depth >= 12 {
		// Deep single-occurrence survivors are long homologous runs:
		// read the rest of the path directly from the text instead of
		// paying backward-search steps and locates per level.
		d.walkLinear(node, depthIdx)
		return
	}
	sc := d.getScratch()
	d.e.trie.Children(node, sc.nodes, sc.los, sc.his)
	for k, ch := range d.e.trie.Letters() {
		child := sc.nodes[k]
		if child.Lo >= child.Hi {
			continue
		}
		d.nextRow(depthIdx, ch, depthIdx+1)
		if len(d.rows[depthIdx+1].js) > 0 {
			d.walk(child, depthIdx+1)
		}
	}
	d.putScratch(sc)
}

// walkLinear advances a single-occurrence path by reading the text,
// alternating between two row slots.
func (d *dfsState) walkLinear(node strie.Node, depthIdx int) {
	t := d.e.trie.Occurrences(node)[0]
	text := d.e.trie.Text()
	cur, next := depthIdx, depthIdx+1
	for i := node.Depth + 1; i <= d.maxDepth; i++ {
		pos := t + i - 1
		if pos >= len(text) {
			return
		}
		d.st.NodesVisited++
		if i > d.st.MaxDepth {
			d.st.MaxDepth = i
		}
		d.nextRow(cur, text[pos], next)
		cur, next = next, cur
		row := &d.rows[cur]
		if len(row.js) == 0 {
			return
		}
		for k, j := range row.js {
			if int(row.m[k]) >= d.h {
				d.c.Add(t+i-1, int(j)-1, int(row.m[k]))
			}
		}
	}
}

// emit reports all cells at or above the threshold, expanding the
// node's occurrence list at most once.
func (d *dfsState) emit(node strie.Node, depthIdx int) {
	cur := &d.rows[depthIdx]
	var occ []int
	for k, j := range cur.js {
		if int(cur.m[k]) < d.h {
			continue
		}
		if occ == nil {
			occ = d.e.trie.Occurrences(node)
		}
		for _, t := range occ {
			d.c.Add(t+node.Depth-1, int(j)-1, int(cur.m[k]))
		}
	}
}

// nextRow computes rows[outIdx] for edge character ch from the sparse
// parent row rows[parentIdx], sweeping candidate columns in increasing
// order and chaining the horizontal gap score Gb within the row.
func (d *dfsState) nextRow(parentIdx int, ch byte, outIdx int) {
	parent := &d.rows[parentIdx]
	out := &d.rows[outIdx]
	out.reset()
	np := len(parent.js)
	if np == 0 {
		return
	}
	s := d.s
	open := int32(s.GapOpen + s.GapExtend)
	ext := int32(s.GapExtend)
	m := int32(len(d.query))

	// Candidate columns: each parent cell at pj can make the child
	// alive at pj (via Ga) or pj+1 (via diag); Gb extensions are
	// chained during the sweep.
	cand := d.cand[:0]
	for k := 0; k < np; k++ {
		pj := parent.js[k]
		cand = append(cand, pj)
		if k+1 >= np || parent.js[k+1] != pj+1 {
			if pj+1 <= m {
				cand = append(cand, pj+1)
			}
		}
	}
	d.cand = cand

	gb := negInf // Gb value applying to the column currently processed
	ci := 0
	pi := 0 // parent index, advanced monotonically
	j := cand[0]
	for j <= m {
		// Locate parent cells at j-1 (diag) and j (Ga).
		for pi < np && parent.js[pi] < j-1 {
			pi++
		}
		diag, ga := negInf, negInf
		k := pi
		if k < np && parent.js[k] == j-1 {
			diag = parent.m[k] + int32(s.Delta(ch, d.query[j-1]))
			k++
		}
		if k < np && parent.js[k] == j {
			ga = max32(parent.ga[k]+ext, parent.m[k]+open, negInf)
		}
		mv := max32(diag, ga, gb)
		d.st.CalculatedEntries++
		if mv > 0 {
			out.js = append(out.js, j)
			out.m = append(out.m, mv)
			out.ga = append(out.ga, ga)
		}
		gb = carryNext(gb, mv, ext, open)

		// Pick the next column: j+1 while the Gb carry is alive,
		// otherwise the next candidate beyond j.
		for ci < len(cand) && cand[ci] <= j {
			ci++
		}
		if gb > 0 {
			j++
		} else if ci < len(cand) {
			j = cand[ci]
		} else {
			break
		}
	}
}

// carryNext advances the horizontal gap carry from column j to j+1:
// Gb(i, j+1) = max(Gb(i, j)+ss, M(i, j)+sg+ss), dropping to −∞ once
// non-positive (it could never resurrect a cell).
func carryNext(gb, mv, ext, open int32) int32 {
	ng := negInf
	if gb > negInf {
		ng = gb + ext
	}
	if mv > 0 && mv+open > ng {
		ng = mv + open
	}
	if ng <= 0 {
		return negInf
	}
	return ng
}

func max32(vals ...int32) int32 {
	best := vals[0]
	for _, v := range vals[1:] {
		if v > best {
			best = v
		}
	}
	return best
}
