package cptree

import (
	"math/rand"
	"testing"
)

// bruteLCP returns the longest common prefix length of two suffixes.
func bruteLCP(p []byte, a, b int) int {
	l := 0
	for a+l < len(p) && b+l < len(p) && p[a+l] == p[b+l] {
		l++
	}
	return l
}

func TestFig6Example(t *testing.T) {
	// §4.2, Figure 6: P = CACGTATACG with fork columns j = 2, 4, 6, 8
	// (1-based), i.e. suffixes ACGTATACG, GTATACG, ATACG, ACG.
	p := []byte("CACGTATACG")
	tr := New(p)
	starts := []int{1, 3, 5, 7}

	lcp, owner := tr.Insert(starts[0], 0)
	if lcp != 0 || owner != -1 {
		t.Errorf("first insert: lcp=%d owner=%d, want 0/-1", lcp, owner)
	}
	lcp, _ = tr.Insert(starts[1], 1) // GTATACG shares nothing
	if lcp != 0 {
		t.Errorf("GTATACG lcp=%d, want 0", lcp)
	}
	lcp, owner = tr.Insert(starts[2], 2) // ATACG shares "A" with fork 0
	if lcp != 1 || owner != 0 {
		t.Errorf("ATACG: lcp=%d owner=%d, want 1/0", lcp, owner)
	}
	lcp, owner = tr.Insert(starts[3], 3) // ACG shares "ACG" with fork 0
	if lcp != 3 || owner != 0 {
		t.Errorf("ACG: lcp=%d owner=%d, want 3/0", lcp, owner)
	}

	// The final tree must spell exactly the four suffixes (Fig 6(d)).
	got := tr.Paths()
	want := []string{"ACG", "ACGTATACG", "ATACG", "GTATACG"}
	if len(got) != len(want) {
		t.Fatalf("paths = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("paths = %v, want %v", got, want)
		}
	}
}

func TestInsertLCPMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	letters := []byte("ACGT")
	for trial := 0; trial < 60; trial++ {
		n := 20 + rng.Intn(200)
		p := make([]byte, n)
		for i := range p {
			p[i] = letters[rng.Intn(4)]
		}
		tr := New(p)
		var starts []int
		for w := 0; w < 15; w++ {
			start := rng.Intn(n)
			lcp, owner := tr.Insert(start, w)
			// Oracle: max LCP against all previously inserted suffixes.
			wantLCP := 0
			for _, prev := range starts {
				if l := bruteLCP(p, prev, start); l > wantLCP {
					wantLCP = l
				}
			}
			if lcp != wantLCP {
				t.Fatalf("trial %d insert %d (start %d): lcp=%d, want %d",
					trial, w, start, lcp, wantLCP)
			}
			// The owner must actually share lcp characters.
			if lcp > 0 {
				if owner < 0 || owner >= w {
					t.Fatalf("owner %d out of range", owner)
				}
				if got := bruteLCP(p, starts[owner], start); got < lcp {
					t.Fatalf("owner %d shares only %d < %d characters", owner, got, lcp)
				}
			}
			starts = append(starts, start)
		}
	}
}

func TestInsertDuplicateSuffix(t *testing.T) {
	p := []byte("ACGTACGT")
	tr := New(p)
	tr.Insert(0, 0)
	lcp, owner := tr.Insert(4, 1) // ACGT is a full prefix of ACGTACGT
	if lcp != 4 || owner != 0 {
		t.Errorf("prefix suffix: lcp=%d owner=%d, want 4/0", lcp, owner)
	}
	// Inserting the same start twice: full-length share.
	lcp, _ = tr.Insert(4, 2)
	if lcp != 4 {
		t.Errorf("duplicate insert lcp=%d, want 4", lcp)
	}
}

func TestEmptySuffix(t *testing.T) {
	p := []byte("ACGT")
	tr := New(p)
	lcp, owner := tr.Insert(4, 0) // empty suffix
	if lcp != 0 || owner != -1 {
		t.Errorf("empty suffix: lcp=%d owner=%d", lcp, owner)
	}
	if paths := tr.Paths(); len(paths) != 0 {
		t.Errorf("paths after empty insert = %v", paths)
	}
}

func TestPathsSpellInsertedSuffixes(t *testing.T) {
	p := []byte("GCTACCCCCTTTGGAA")
	tr := New(p)
	tr.Insert(2, 0)
	tr.Insert(7, 1)
	tr.Insert(12, 2)
	want := map[string]bool{
		string(p[2:]):  true,
		string(p[7:]):  true,
		string(p[12:]): true,
	}
	for _, path := range tr.Paths() {
		if !want[path] {
			t.Errorf("unexpected path %q", path)
		}
		delete(want, path)
	}
	for missing := range want {
		t.Errorf("missing path %q", missing)
	}
}

// TestResetReuse pins the serving contract of the arena tree: Reset
// re-arms it for a new query, results match a fresh tree, and repeated
// Reset+Insert cycles on warm arenas allocate nothing.
func TestResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	letters := []byte("ACGT")
	tr := New([]byte("A"))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(80)
		p := make([]byte, n)
		for i := range p {
			p[i] = letters[rng.Intn(4)]
		}
		fresh := New(p)
		tr.Reset(p)
		for w := 0; w < 8; w++ {
			start := rng.Intn(n)
			lcp1, own1 := fresh.Insert(start, w)
			lcp2, own2 := tr.Insert(start, w)
			if lcp1 != lcp2 || own1 != own2 {
				t.Fatalf("trial %d insert %d: reset tree (%d,%d) vs fresh (%d,%d)",
					trial, w, lcp2, own2, lcp1, own1)
			}
		}
	}
	// Warm arenas: further cycles must not allocate.
	p := []byte("ACGTACGTACGTACGT")
	allocs := testing.AllocsPerRun(10, func() {
		tr.Reset(p)
		for w := 0; w < 6; w++ {
			tr.Insert(w*2, w)
		}
	})
	if allocs > 0 {
		t.Fatalf("warm Reset+Insert allocated %.1f objects", allocs)
	}
}
