// Package cptree implements the common-prefix tree T_Ps of §4.2
// (Algorithm 2, CONSTRUCTCPTREE). The hybrid engine uses it to
// identify duplicated substrings among the fork suffixes of the query:
// when two forks' gap regions read the same query substring from
// equally-scored FGOEs, the later fork copies the earlier fork's
// column scores instead of recomputing them (Lemma 2, Theorem 5,
// Lemma 3).
//
// The tree is a compressed trie over the suffixes P[j_w..] of the
// fork columns, built incrementally in fork order. Inserting a new
// suffix reports the longest prefix it shares with any previously
// inserted suffix and which fork owns that prefix — exactly the
// "reuse entries in gap regions" walk of calMatrixByColumn. Edge
// labels are (start, end) offsets into the query, so the tree is
// linear space regardless of suffix lengths.
package cptree

import "strings"

// Tree is the common-prefix tree of a query.
type Tree struct {
	p    []byte
	root *node
}

type node struct {
	children map[byte]*edge
	terminal bool // a whole inserted suffix ends here
}

type edge struct {
	start, end int // label = p[start:end]
	fork       int // the fork that first created this edge
	to         *node
}

// New returns an empty tree over query p. The paper builds one tree
// per matrix and releases it afterwards ("TPs is only used locally");
// callers simply drop the Tree.
func New(p []byte) *Tree {
	return &Tree{p: p, root: &node{children: map[byte]*edge{}}}
}

// Insert adds the suffix p[start:] on behalf of the given fork id.
// It returns the length of the longest prefix shared with previously
// inserted suffixes and the id of the fork owning that shared prefix
// (owner is -1 when lcp is 0).
func (t *Tree) Insert(start, fork int) (lcp int, owner int) {
	owner = -1
	u := t.root
	pos := start
	for pos < len(t.p) {
		e, ok := u.children[t.p[pos]]
		if !ok {
			// No shared path onward: attach the remaining suffix.
			u.children[t.p[pos]] = &edge{start: pos, end: len(t.p), fork: fork,
				to: &node{children: map[byte]*edge{}, terminal: true}}
			return lcp, owner
		}
		// Walk along the edge label while it matches.
		d := 0
		for d < e.end-e.start && pos+d < len(t.p) && t.p[e.start+d] == t.p[pos+d] {
			d++
		}
		lcp += d
		owner = e.fork
		pos += d
		if d < e.end-e.start {
			// Mismatch (or suffix exhausted) inside the edge: split it.
			mid := &node{children: map[byte]*edge{}}
			mid.children[t.p[e.start+d]] = &edge{start: e.start + d, end: e.end, fork: e.fork, to: e.to}
			e.end = e.start + d
			e.to = mid
			if pos < len(t.p) {
				mid.children[t.p[pos]] = &edge{start: pos, end: len(t.p), fork: fork,
					to: &node{children: map[byte]*edge{}, terminal: true}}
			} else {
				mid.terminal = true
			}
			return lcp, owner
		}
		u = e.to
	}
	u.terminal = true
	return lcp, owner
}

// Paths returns every inserted suffix as spelled by the tree, sorted,
// mirroring the final tree of the paper's Figure 6 example; used by
// tests and debugging.
func (t *Tree) Paths() []string {
	var out []string
	var walk func(u *node, prefix string)
	walk = func(u *node, prefix string) {
		if u.terminal && prefix != "" {
			out = append(out, prefix)
		}
		for _, e := range u.children {
			walk(e.to, prefix+string(t.p[e.start:e.end]))
		}
	}
	walk(t.root, "")
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && strings.Compare(s[j], s[j-1]) < 0; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
