// Package cptree implements the common-prefix tree T_Ps of §4.2
// (Algorithm 2, CONSTRUCTCPTREE). The hybrid engine uses it to
// identify duplicated substrings among the fork suffixes of the query:
// when two forks' gap regions read the same query substring from
// equally-scored FGOEs, the later fork copies the earlier fork's
// column scores instead of recomputing them (Lemma 2, Theorem 5,
// Lemma 3).
//
// The tree is a compressed trie over the suffixes P[j_w..] of the
// fork columns, built incrementally in fork order. Inserting a new
// suffix reports the longest prefix it shares with any previously
// inserted suffix and which fork owns that prefix — exactly the
// "reuse entries in gap regions" walk of calMatrixByColumn. Edge
// labels are (start, end) offsets into the query, so the tree is
// linear space regardless of suffix lengths.
//
// Nodes and edges live in flat arenas and children form intrusive
// sibling lists, so a Tree can be Reset and reused across fork groups
// without allocating — the hybrid engine keeps one per workspace and
// its steady-state per-gram path stays allocation-free.
package cptree

import "strings"

// Tree is the common-prefix tree of a query. The zero value is not
// usable; build with New and re-arm with Reset.
type Tree struct {
	p     []byte
	nodes []tnode
	edges []tedge
}

type tnode struct {
	first    int32 // head of the child edge list, -1 when childless
	terminal bool  // a whole inserted suffix ends here
}

type tedge struct {
	start, end int32 // label = p[start:end]
	fork       int32 // the fork that first created this edge
	to         int32
	next       int32 // next sibling edge, -1 at list end
}

// New returns an empty tree over query p. The paper builds one tree
// per matrix and releases it afterwards ("TPs is only used locally");
// callers either drop the Tree or Reset it for the next group.
func New(p []byte) *Tree {
	t := &Tree{}
	t.Reset(p)
	return t
}

// Reset re-arms the tree for query p, keeping the node and edge arenas
// so repeated groups allocate nothing once the arenas are warm.
func (t *Tree) Reset(p []byte) {
	t.p = p
	t.nodes = append(t.nodes[:0], tnode{first: -1})
	t.edges = t.edges[:0]
}

func (t *Tree) newNode(terminal bool) int32 {
	t.nodes = append(t.nodes, tnode{first: -1, terminal: terminal})
	return int32(len(t.nodes) - 1)
}

// findChild returns the index of u's child edge whose label starts
// with c, or -1.
func (t *Tree) findChild(u int32, c byte) int32 {
	for ei := t.nodes[u].first; ei >= 0; ei = t.edges[ei].next {
		if t.p[t.edges[ei].start] == c {
			return ei
		}
	}
	return -1
}

// addEdge prepends a new child edge to u and returns its index.
func (t *Tree) addEdge(u, start, end, fork, to int32) int32 {
	t.edges = append(t.edges, tedge{start: start, end: end, fork: fork, to: to, next: t.nodes[u].first})
	ei := int32(len(t.edges) - 1)
	t.nodes[u].first = ei
	return ei
}

// Insert adds the suffix p[start:] on behalf of the given fork id.
// It returns the length of the longest prefix shared with previously
// inserted suffixes and the id of the fork owning that shared prefix
// (owner is -1 when lcp is 0).
func (t *Tree) Insert(start, fork int) (lcp int, owner int) {
	owner = -1
	u := int32(0)
	pos := int32(start)
	n := int32(len(t.p))
	for pos < n {
		ei := t.findChild(u, t.p[pos])
		if ei < 0 {
			// No shared path onward: attach the remaining suffix.
			leaf := t.newNode(true)
			t.addEdge(u, pos, n, int32(fork), leaf)
			return lcp, owner
		}
		// Walk along the edge label while it matches.
		e := &t.edges[ei]
		d := int32(0)
		for d < e.end-e.start && pos+d < n && t.p[e.start+d] == t.p[pos+d] {
			d++
		}
		lcp += int(d)
		owner = int(e.fork)
		pos += d
		if d < e.end-e.start {
			// Mismatch (or suffix exhausted) inside the edge: split it.
			mid := t.newNode(pos >= n)
			e = &t.edges[ei] // newNode may have grown the arena
			t.addEdge(mid, e.start+d, e.end, e.fork, e.to)
			e = &t.edges[ei] // addEdge too
			e.end = e.start + d
			e.to = mid
			if pos < n {
				leaf := t.newNode(true)
				t.addEdge(mid, pos, n, int32(fork), leaf)
			}
			return lcp, owner
		}
		u = e.to
	}
	t.nodes[u].terminal = true
	return lcp, owner
}

// Paths returns every inserted suffix as spelled by the tree, sorted,
// mirroring the final tree of the paper's Figure 6 example; used by
// tests and debugging.
func (t *Tree) Paths() []string {
	var out []string
	var walk func(u int32, prefix string)
	walk = func(u int32, prefix string) {
		if t.nodes[u].terminal && prefix != "" {
			out = append(out, prefix)
		}
		for ei := t.nodes[u].first; ei >= 0; ei = t.edges[ei].next {
			e := t.edges[ei]
			walk(e.to, prefix+string(t.p[e.start:e.end]))
		}
	}
	walk(0, "")
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && strings.Compare(s[j], s[j-1]) < 0; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
