package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/align"
	"repro/internal/seq"
)

// cancelWorkload builds a homologous search big enough that a
// cancelled context lands mid-traversal: text n, query a mutated
// m-long segment of it.
func cancelWorkload(n, m int, seed int64) (text, query []byte) {
	rng := rand.New(rand.NewSource(seed))
	text = randDNA(n, rng)
	query = seq.Mutate(seq.DNA, text[n/4:n/4+m],
		seq.MutationConfig{SubstitutionRate: 0.05, IndelRate: 0.01}, rng)
	return text, query
}

// TestSearchContextCancellation pins the cancellation contract on both
// engine modes and both scheduling paths: a cancelled context returns
// its error with a bounded amount of work done, and the session stays
// fully reusable — the next search over the same session reproduces
// the uncancelled hit set and entry counts exactly.
func TestSearchContextCancellation(t *testing.T) {
	text, query := cancelWorkload(15_000, 500, 900)
	s := align.DefaultDNA
	h := 45

	for _, mode := range []Mode{ModeDFS, ModeHybrid} {
		for _, workers := range []int{1, 4} {
			name := map[Mode]string{ModeDFS: "dfs", ModeHybrid: "hybrid"}[mode]
			if workers > 1 {
				name += "/parallel"
			} else {
				name += "/sequential"
			}
			t.Run(name, func(t *testing.T) {
				e := New(text, Options{Mode: mode})
				ses := e.AcquireSession()
				defer ses.Release()
				c := align.NewCollector()

				// Reference: the uncancelled answer through the same session.
				refStats, err := ses.SearchContext(context.Background(), query, s, h, c, workers)
				if err != nil {
					t.Fatal(err)
				}
				refHits := c.Hits()
				if len(refHits) == 0 {
					t.Fatal("workload produced no hits; the test is vacuous")
				}

				// A context cancelled before the search starts must be
				// observed at the first checkpoint of every worker: the
				// context's error comes back and at most one entry budget
				// per worker was spent.
				cancelled, cancel := context.WithCancel(context.Background())
				cancel()
				c.Reset()
				st, err := ses.SearchContext(cancelled, query, s, h, c, workers)
				if err != context.Canceled {
					t.Fatalf("pre-cancelled search returned %v, want context.Canceled", err)
				}
				bound := int64(workers) * 2 * cancelEntryBudget
				if ce := st.CalculatedEntries(); ce > bound {
					t.Fatalf("pre-cancelled search calculated %d entries, budget bound is %d", ce, bound)
				}
				if ce, ref := st.CalculatedEntries(), refStats.CalculatedEntries(); ce >= ref {
					t.Fatalf("pre-cancelled search did all the work: %d of %d entries", ce, ref)
				}

				// Cancel mid-flight: the search must stop with the
				// context's error. (If this machine finished the whole
				// search before the timer fired, the run proves nothing
				// extra but must still have succeeded cleanly.)
				midCtx, midCancel := context.WithCancel(context.Background())
				timer := time.AfterFunc(time.Millisecond, midCancel)
				c.Reset()
				_, err = ses.SearchContext(midCtx, query, s, h, c, workers)
				timer.Stop()
				midCancel()
				if err != nil && err != context.Canceled {
					t.Fatalf("mid-flight cancel returned %v", err)
				}

				// The session must be reusable after cancellation, with
				// byte-identical results.
				c.Reset()
				st, err = ses.SearchContext(context.Background(), query, s, h, c, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !align.EqualHits(c.Hits(), refHits) {
					t.Fatal("post-cancellation search diverged from the reference hit set")
				}
				if st.CalculatedEntries() != refStats.CalculatedEntries() {
					t.Fatalf("post-cancellation entries %d, reference %d",
						st.CalculatedEntries(), refStats.CalculatedEntries())
				}
			})
		}
	}
}

// TestSearchContextDeadline exercises the deadline path specifically:
// an already-expired deadline returns context.DeadlineExceeded.
func TestSearchContextDeadline(t *testing.T) {
	text, query := cancelWorkload(10_000, 400, 901)
	e := New(text, Options{})
	ses := e.AcquireSession()
	defer ses.Release()
	c := align.NewCollector()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := ses.SearchContext(ctx, query, align.DefaultDNA, 30, c, 1); err != context.DeadlineExceeded {
		t.Fatalf("expired deadline returned %v, want context.DeadlineExceeded", err)
	}

	c.Reset()
	if _, err := ses.SearchContext(context.Background(), query, align.DefaultDNA, 30, c, 1); err != nil {
		t.Fatalf("search after expired-deadline search: %v", err)
	}
}
