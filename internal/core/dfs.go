package core

import (
	"repro/internal/strie"
)

// The DFS engine computes, per q-gram fork family, the single matrix
// M_X of §2.2 restricted to its meaningful regions: the NGR diagonals
// are advanced per fork (they are disjoint by construction and use the
// one-source recurrence of Equation 3, cost 1), while all gap regions
// of the matrix live in ONE merged sparse band per trie path — fork
// regions overlap in M_X, and a matrix entry is a matrix entry no
// matter how many fork areas contain it, so merging computes each at
// most once. Every FGOE seeds the band with its cell value; the
// horizontal extension run of §3.1.3 then falls out of the band's own
// Gb carry. This achieves within the DFS what §4's reuse achieves for
// the column-wise hybrid engine: duplicated entries are not
// recalculated.
//
// The traversal is flat: recursion is an explicit stack of walkFrames,
// live diagonals are a stack of 8-byte ngrForks in one slice, and the
// merged band rows of every depth share one structure-of-arrays slab
// (js/m/ga backing arrays with per-frame offsets). Pushing a child
// appends to the slab tops; popping truncates. Nothing in the per-gram
// path allocates once the workspace is warm. Child enumeration — the
// ExtendAll at the root and at every fork expansion — rides the rank
// core's fused two-row scan: both boundary rows of a node's range are
// answered from one checkpoint-block visit whenever they are close,
// so an expanded node pays ~one scan instead of two.

// seedCell is an FGOE entering the merged band at the current row.
type seedCell struct {
	j int32 // 1-based query column
	v int32 // FGOE score
}

// ngrFork is a live no-gap diagonal in the flat walk: the 0-based query
// position of its q-prefix match and its current diagonal score. (The
// full fork struct is only needed before the row-q merge; during the
// walk a fork is either this diagonal or a cell in the merged band.)
type ngrFork struct {
	col0  int32
	score int32
}

// bandTriple is a structure-of-arrays run of band cells: parallel
// sorted columns, best scores M and vertical-gap scores Ga. As the
// workspace slab it holds every live depth's row back to back; rows are
// addressed by (start, length) pairs held in walkFrames.
type bandTriple struct {
	js, m, ga []int32
}

func (b *bandTriple) len() int { return len(b.js) }

func (b *bandTriple) reset() { b.truncate(0) }

func (b *bandTriple) truncate(n int) {
	b.js, b.m, b.ga = b.js[:n], b.m[:n], b.ga[:n]
}

func (b *bandTriple) push(j, m, ga int32) {
	b.js = append(b.js, j)
	b.m = append(b.m, m)
	b.ga = append(b.ga, ga)
}

// row returns the cell run [start, start+n) as slice views. The views
// stay readable even if later pushes grow the slab.
func (b *bandTriple) row(start, n int) (js, m, ga []int32) {
	return b.js[start : start+n], b.m[start : start+n], b.ga[start : start+n]
}

// walkFrame is one level of the explicit DFS stack: the expanded
// node's depth, its child ranges (los/his double as the rank buffers
// backward search fills), read-only views of the frame's live
// diagonals and merged band row, the truncation water marks in the
// workspace slabs, and the emit state of the frame's node. The views
// are captured once at push time; they stay readable even if deeper
// pushes grow the slab backings, because growth copies and the
// frame's cells are never overwritten while it lives. Frame buffers
// are allocated once per stack depth and reused across pushes.
type walkFrame struct {
	depth    int
	childIdx int
	los, his []int32
	em       emitCtx

	diags        []ngrFork // this frame's live diagonals
	pJs, pM, pGa []int32   // this frame's merged band row
	forkStart    int       // ws.diags truncation mark
	bandStart    int       // ws.slab truncation mark
}

// frame returns a pointer to stack level i, growing the frame slice if
// needed. Callers must re-acquire frame pointers after calling frame
// with a larger i (growth moves the backing array).
func (ws *workspace) frame(ctx *searchCtx, i int) *walkFrame {
	for len(ws.frames) <= i {
		sigma := ctx.e.trie.Index().Sigma()
		ws.frames = append(ws.frames, walkFrame{
			los: make([]int32, sigma),
			his: make([]int32, sigma),
		})
	}
	return &ws.frames[i]
}

// dfsGram builds this fork family's row-q state — per-fork NGR
// diagonals plus the merged band holding any pre-q FGOE regions — and
// walks the subtree. survivors are ascending 0-based query positions.
func (ctx *searchCtx) dfsGram(node strie.Node, gram []byte, survivors []int32, occGetter func() []int) {
	ws := ctx.ws
	for len(ws.forks) < len(survivors) {
		ws.forks = append(ws.forks, fork{})
	}
	forks := ws.forks[:len(survivors)]
	for k, col0 := range survivors {
		ctx.newForkInto(&forks[k], col0, gram)
	}
	ws.diags = ws.diags[:0]
	ws.slab.reset()
	ctx.mergeForkBands(forks)
	ctx.dfsEmitRowQ(node, occGetter)
	if len(ws.diags) > 0 || ws.slab.len() > 0 {
		ctx.dfsWalk(node)
	}
}

// dfsEmitRowQ reports row-q hits at the gram node itself: the EMR
// diagonal cell scores q·sa and can already reach the threshold, both
// for forks still on the diagonal and for band cells from forks whose
// FGOE fell inside the EMR. Cells stage into the workspace's row-q
// RunStage (diagonals of adjacent surviving forks and merged-band runs
// are column-contiguous) and flush through the batched path once.
func (ctx *searchCtx) dfsEmitRowQ(node strie.Node, occGetter func() []int) {
	q := node.Depth
	st := &ctx.ws.rowQ
	stage := func(j int32, score int32) {
		if !st.Stage(int32(q), j, score) {
			ctx.flushRowQ(occGetter)
			st.Stage(int32(q), j, score)
		}
	}
	for _, d := range ctx.ws.diags {
		if int(d.score) >= ctx.h {
			stage(d.col0+int32(q), d.score)
		}
	}
	slab := &ctx.ws.slab
	for k, mv := range slab.m {
		if mv > negInf && int(mv) >= ctx.h {
			stage(slab.js[k], mv)
		}
	}
	ctx.flushRowQ(occGetter)
}

// flushRowQ drains the row-q stage: each run fans out over the gram
// node's occurrences through the dominance filter and batched AddRun.
func (ctx *searchCtx) flushRowQ(occGetter func() []int) {
	st := &ctx.ws.rowQ
	if st.Empty() {
		return
	}
	cells := st.Cells()
	for _, r := range st.Runs() {
		run := cells[r.Off : r.Off+r.N]
		for _, t := range occGetter() {
			ctx.forwardRun(t+int(r.Row)-1, int(r.J0)-1, run)
		}
	}
	st.Reset()
}

// mergeRun is one fork's sorted cell run during the row-q band merge:
// the fork plus the index of its current live cell.
type mergeRun struct {
	f   *fork
	pos int32
}

// key is the run's current 1-based query column.
func (r *mergeRun) key() int32 { return r.f.lo + r.pos }

// advance moves the run past its current cell to the next live one,
// skipping dead interior cells; false means the run is exhausted.
func (r *mergeRun) advance() bool {
	r.pos++
	for int(r.pos) < len(r.f.m) && r.f.m[r.pos] <= negInf {
		r.pos++
	}
	return int(r.pos) < len(r.f.m)
}

// siftDownRuns restores the min-heap-by-key property below index i.
func siftDownRuns(runs []mergeRun, i int) {
	for {
		l := 2*i + 1
		if l >= len(runs) {
			return
		}
		s := l
		if r := l + 1; r < len(runs) && runs[r].key() < runs[s].key() {
			s = r
		}
		if runs[i].key() <= runs[s].key() {
			return
		}
		runs[i], runs[s] = runs[s], runs[i]
		i = s
	}
}

// mergeForkBands splits the initial forks into the live-diagonal stack
// (ws.diags) and one merged row-q band (ws.slab row 0), taking the
// maximum on column collisions. Each fork's band cells are already
// sorted by column, so the merge is a min-heap k-way merge over the
// fork runs — O(cells·log k), no per-gram allocation, no comparison
// sort. Dead interior cells (negInf) are skipped, preserving the
// all-cells-alive invariant of the merged band.
func (ctx *searchCtx) mergeForkBands(forks []fork) {
	ws := ctx.ws
	runs := ws.runs[:0]
	for k := range forks {
		f := &forks[k]
		switch f.phase {
		case phaseNGR:
			ws.diags = append(ws.diags, ngrFork{col0: f.col0, score: f.score})
		case phaseGap:
			r := mergeRun{f: f, pos: -1}
			if r.advance() {
				runs = append(runs, r)
			}
		}
	}
	ws.runs = runs // retain capacity across grams
	for i := len(runs)/2 - 1; i >= 0; i-- {
		siftDownRuns(runs, i)
	}
	for len(runs) > 0 {
		j := runs[0].key()
		// Fold every run head at column j, keeping max m and max ga.
		mv, gav := negInf, negInf
		for len(runs) > 0 && runs[0].key() == j {
			r := &runs[0]
			if v := r.f.m[r.pos]; v > mv {
				mv = v
			}
			if g := r.f.ga[r.pos]; g > gav {
				gav = g
			}
			if r.advance() {
				siftDownRuns(runs, 0)
			} else {
				runs[0] = runs[len(runs)-1]
				runs = runs[:len(runs)-1]
				siftDownRuns(runs, 0)
			}
		}
		ws.slab.push(j, mv, gav)
	}
}

// dfsWalk expands the subtree under the gram node with an explicit
// stack. For each live trie edge it advances every parent diagonal one
// row (appending survivors to the fork stack, FGOEs to the seed
// scratch), sweeps the merged band into a new slab row, and pushes a
// frame when anything stayed alive. Popping truncates the fork and band
// slabs back to the parent's water marks.
func (ctx *searchCtx) dfsWalk(root strie.Node) {
	ws := ctx.ws
	ctx.st.NodesVisited++
	if root.Depth > ctx.st.MaxDepth {
		ctx.st.MaxDepth = root.Depth
	}
	if root.Depth >= ctx.lmax {
		return
	}
	fr := ws.frame(ctx, 0)
	if root.Hi-root.Lo == 1 {
		ctx.dfsLinear(root, 0, len(ws.diags), 0, ws.slab.len(), &fr.em)
		return
	}
	fm := ctx.e.trie.Index()
	fr.depth = root.Depth
	fr.childIdx = 0
	fr.forkStart, fr.diags = 0, ws.diags
	fr.bandStart = 0
	fr.pJs, fr.pM, fr.pGa = ws.slab.row(0, ws.slab.len())
	fm.ExtendAll(root.Lo, root.Hi, fr.los, fr.his)

	sigma := fm.Sigma()
	mq := int32(len(ctx.query))
	colBound := ctx.colBound
	barrier := ctx.barrier
	seeds := ws.seeds
	var nodesVisited, ngrEntries int64
	top := 0
	for top >= 0 {
		// One iteration advances at most one trie edge: O(m) diagonal
		// steps plus one O(m) band sweep, so a cancellation lands within
		// a bounded number of entries of the signal (cancel.go).
		if ctx.cancelled(ngrEntries) {
			break
		}
		fr := &ws.frames[top]
		if fr.childIdx >= sigma {
			ws.diags = ws.diags[:fr.forkStart]
			ws.slab.truncate(fr.bandStart)
			top--
			continue
		}
		k := fr.childIdx
		fr.childIdx++
		if k == barrier {
			// Hard reset: a barrier-labelled edge is never descended, so
			// no alignment path can span the barrier row (engine.go,
			// Options.BarrierByte).
			continue
		}
		lo, hi := int(fr.los[k]), int(fr.his[k])
		if lo >= hi {
			continue
		}
		i := fr.depth + 1
		if len(ws.frames) <= top+1 {
			ws.frame(ctx, top+1) // grow moves the backing array
			fr = &ws.frames[top]
		}
		cf := &ws.frames[top+1]
		cf.em.reset(ctx, strie.Node{Lo: lo, Hi: hi, Depth: i})
		deltaRow := ctx.deltaRow(k)

		// One NGR step per live parent diagonal (Equation 3).
		cs := len(ws.diags) // the parent's fork range ends here
		seeds = seeds[:0]
		rowB := ctx.rowBound(i)
		for _, d := range fr.diags {
			j := d.col0 + int32(i) // 1-based diagonal column
			if j > mq {
				continue
			}
			ngrEntries++
			sc := d.score + deltaRow[j-1]
			if sc <= 0 || sc < rowB || sc < colBound[j-1] {
				continue
			}
			if int(sc) >= ctx.h {
				cf.em.emit(i, j, sc)
			}
			if int(sc) > ctx.gOpen {
				// The FGOE cell joins the merged band; its horizontal
				// extension run emerges from the band's Gb carry.
				seeds = append(seeds, seedCell{j: j, v: sc})
			} else {
				ws.diags = append(ws.diags, ngrFork{col0: d.col0, score: sc})
			}
		}
		childForkLen := len(ws.diags) - cs

		// One merged-band row per trie edge.
		cbs := ws.slab.len()
		ctx.advanceMergedBand(fr.pJs, fr.pM, fr.pGa, deltaRow, i, seeds, &cf.em, &ws.slab)
		childBandLen := ws.slab.len() - cbs

		if childForkLen == 0 && childBandLen == 0 {
			cf.em.flush()
			ws.diags = ws.diags[:cs]
			ws.slab.truncate(cbs)
			continue
		}
		nodesVisited++
		if i > ctx.st.MaxDepth {
			ctx.st.MaxDepth = i
		}
		if i >= ctx.lmax {
			cf.em.flush()
			ws.diags = ws.diags[:cs]
			ws.slab.truncate(cbs)
			continue
		}
		if hi-lo == 1 {
			// A single-occurrence node's remaining path is one LF step
			// per level (dfsLinear), far cheaper than the two rank
			// passes a child enumeration costs — hand off immediately.
			ws.seeds = seeds
			ctx.dfsLinear(strie.Node{Lo: lo, Hi: hi, Depth: i}, cs, childForkLen, cbs, childBandLen, &cf.em)
			seeds = ws.seeds
			ws.diags = ws.diags[:cs]
			ws.slab.truncate(cbs)
			continue
		}
		// Flush at push: nothing stages into this frame's emit context
		// once its own row is done (descendants use deeper frames), so
		// the runs fan out now, while the node is still the tenant.
		cf.em.flush()
		cf.depth = i
		cf.childIdx = 0
		cf.forkStart, cf.diags = cs, ws.diags[cs:]
		cf.bandStart = cbs
		cf.pJs, cf.pM, cf.pGa = ws.slab.row(cbs, childBandLen)
		fm.ExtendAll(lo, hi, cf.los, cf.his)
		top++
	}
	ws.seeds = seeds
	ctx.st.NodesVisited += nodesVisited
	ctx.st.EntriesNGR += ngrEntries
}

// dfsLinear walks a single-occurrence path without enumerating
// children: the unique next edge letter and child row come from one
// LF step per level (Trie.SingleChild), and the path's text position
// is only resolved — lazily, by the emitCtx — if a cell actually
// reaches the threshold; once resolved, the walk switches to direct
// text reads. Rows ping-pong between the two workspace linear band
// rows so storage stays bounded regardless of path length; diagonals
// are filtered in place within their fork-stack range (the caller
// discards the range afterwards).
//
// NodesVisited counting matches dfsWalk's rule exactly (see Stats): a
// level is counted at walk time only when live state survived the
// advance into it, so a path's dying level is not counted — the same
// as a dfsWalk child whose fork and band advances both come up empty.
// The handoff depth therefore never changes the diagnostic.
func (ctx *searchCtx) dfsLinear(node strie.Node, forkStart, forkLen, bandStart, bandLen int, em *emitCtx) {
	ws := ctx.ws
	text := ctx.e.trie.Text()
	fm := ctx.e.trie.Index()
	em.resetLinearLazy(ctx)
	mq := int32(len(ctx.query))
	colBound := ctx.colBound
	var nodes, ngrEntries int64
	maxDepth := ctx.st.MaxDepth

	// The parent row starts as the node's slab row, then ping-pongs
	// between the two workspace linear rows.
	curJs, curM, curGa := ws.slab.row(bandStart, bandLen)
	outIdx := 0

	live := ws.diags[forkStart : forkStart+forkLen]
	seeds := ws.seeds
	u := node
	for i := node.Depth + 1; i <= ctx.lmax; i++ {
		if ctx.cancelled(ngrEntries) {
			break // a level is one bounded unit, like a dfsWalk edge
		}
		var code int
		if t := em.fixedT; t >= 0 {
			pos := t + i - 1
			if pos >= len(text) {
				break
			}
			code = fm.CodeOf(text[pos])
		} else {
			v, c, ok := ctx.e.trie.SingleChild(u)
			if !ok {
				break
			}
			u, code = v, c
			em.linRow, em.linDep = u.Lo, i
		}
		if code == ctx.barrier {
			break // hard reset: the path may not span the barrier row
		}
		deltaRow := ctx.deltaRow(code)
		seeds = seeds[:0]
		rowB := ctx.rowBound(i)
		n := 0
		for _, d := range live {
			j := d.col0 + int32(i)
			if j > mq {
				continue
			}
			ngrEntries++
			sc := d.score + deltaRow[j-1]
			if sc <= 0 || sc < rowB || sc < colBound[j-1] {
				continue
			}
			if int(sc) >= ctx.h {
				em.emit(i, j, sc)
			}
			if int(sc) > ctx.gOpen {
				seeds = append(seeds, seedCell{j: j, v: sc})
			} else {
				live[n] = ngrFork{col0: d.col0, score: sc}
				n++
			}
		}
		live = live[:n]
		out := &ws.lin[outIdx]
		out.reset()
		ctx.advanceMergedBand(curJs, curM, curGa, deltaRow, i, seeds, em, out)
		curJs, curM, curGa = out.js, out.m, out.ga
		outIdx = 1 - outIdx
		if len(live) == 0 && len(curJs) == 0 {
			break
		}
		nodes++
		if i > maxDepth {
			maxDepth = i
		}
	}
	em.flush() // the walk ends here; staged runs must not outlive it
	ws.seeds = seeds
	ctx.st.NodesVisited += nodes
	ctx.st.EntriesNGR += ngrEntries
	ctx.st.MaxDepth = maxDepth
}

// advanceMergedBand computes the merged band's next row from the
// parent row (pJs/pM/pGa, all cells alive by invariant) and the new
// FGOE seeds, appending to out. The sweep is a single fused pass in
// increasing column order: parent and seed cursors advance linearly, Gb
// chains to j+1, and the next candidate column is derived from the
// cursors — no candidate prepass, no binary search, no allocation.
// Score filtering, boundary/interior entry counting, and threshold
// emission match the recurrence exactly. Seeds must be sorted by
// column (diagonals step in ascending col0 order per gram, so they
// are).
func (ctx *searchCtx) advanceMergedBand(pJs, pM, pGa []int32, deltaRow []int32, i int, seeds []seedCell, em *emitCtx, out *bandTriple) {
	np := len(pJs)
	if np == 0 && len(seeds) == 0 {
		return
	}
	if len(seeds) == 0 && np > 0 && pJs[np-1]-pJs[0] == int32(np-1) {
		// The parent row is one contiguous column run — the dominant
		// shape on homologous paths — so the candidate set is just
		// [lo, hi+1] plus the Gb tail and every cell indexes the
		// parent arrays directly.
		ctx.advanceDenseBand(pJs[0], pM, pGa, deltaRow, i, em, out)
		return
	}
	s := ctx.s
	open := int32(s.GapOpen + s.GapExtend)
	ext := int32(s.GapExtend)
	mq := int32(len(ctx.query))
	colBound := ctx.colBound
	rowB := ctx.rowBound(i)
	var boundary, interior int64
	const farJ = int32(1) << 30

	gb := negInf
	pi := 0 // first parent index with pJs[pi] >= j-1
	si := 0 // first unconsumed seed
	j := farJ
	if np > 0 {
		j = pJs[0]
	}
	if len(seeds) > 0 && seeds[0].j < j {
		j = seeds[0].j
	}
	for j <= mq {
		for pi < np && pJs[pi] < j-1 {
			pi++
		}
		dg, ga := negInf, negInf
		sources := 0
		k := pi
		if k < np && pJs[k] == j-1 {
			dg = pM[k] + deltaRow[j-1]
			sources++
			k++
		}
		hasCellAtJ := k < np && pJs[k] == j
		if hasCellAtJ {
			// Merged-band cells are always alive (pM[k] > 0), so the
			// Ga recurrence always has its M source.
			ga = pM[k] + open
			sources++
			if pga := pGa[k]; pga > negInf && pga+ext > ga {
				ga = pga + ext
			}
		}
		if gb > negInf {
			sources++
		}
		sv := negInf
		for si < len(seeds) && seeds[si].j < j {
			si++
		}
		if si < len(seeds) && seeds[si].j == j {
			sv = seeds[si].v
			si++
		}
		mv := dg
		if ga > mv {
			mv = ga
		}
		if gb > mv {
			mv = gb
		}
		if sv > mv {
			mv = sv
		}
		if sources > 0 {
			// Seed-only cells were already counted as NGR entries by
			// the diagonal step; only sweep-computed cells count here.
			if sources >= 3 {
				interior++
			} else {
				boundary++
			}
		}
		alive := mv > 0 && mv >= rowB && mv >= colBound[j-1]
		if alive {
			if int(mv) >= ctx.h && sv < mv {
				// Seed cells at their own value were emitted by the
				// diagonal step; emit only improvements and sweep cells.
				em.emit(i, j, mv)
			}
			out.push(j, mv, ga)
		}
		// Gb carry to column j+1.
		ng := negInf
		if gb > negInf {
			ng = gb + ext
		}
		if alive && mv+open > ng {
			ng = mv + open
		}
		if ng <= 0 {
			ng = negInf
		}
		gb = ng
		if gb > negInf {
			j++
			continue
		}
		// Next candidate column: the first parent contribution past j
		// (a cell at j feeds j+1 diagonally; otherwise the next stored
		// column) or the next seed, whichever is smaller.
		nj := farJ
		if hasCellAtJ {
			nj = j + 1
		} else {
			t := pi
			for t < np && pJs[t] <= j {
				t++
			}
			if t < np {
				nj = pJs[t]
			}
		}
		if si < len(seeds) && seeds[si].j < nj {
			nj = seeds[si].j
		}
		j = nj
	}
	if !ctx.mute {
		ctx.st.EntriesBoundary += boundary
		ctx.st.EntriesInterior += interior
	}
}

// advanceDenseBand is advanceMergedBand specialised to a contiguous,
// seedless parent row [lo, lo+np): cells index the parent arrays
// directly, with no column cursors or candidate derivation. Emission,
// score filtering and entry counting are identical to the general
// sweep.
func (ctx *searchCtx) advanceDenseBand(lo int32, pM, pGa []int32, deltaRow []int32, i int, em *emitCtx, out *bandTriple) {
	s := ctx.s
	open := int32(s.GapOpen + s.GapExtend)
	ext := int32(s.GapExtend)
	mq := int32(len(ctx.query))
	colBound := ctx.colBound
	rowB := ctx.rowBound(i)
	var boundary, interior int64
	np := int32(len(pM))

	gb := negInf
	limit := lo + np // hi+1
	if limit > mq {
		limit = mq
	}
	for j := lo; j <= limit; j++ {
		k := j - lo
		dg, ga := negInf, negInf
		sources := 0
		if k > 0 {
			dg = pM[k-1] + deltaRow[j-1]
			sources++
		}
		if k < np {
			ga = pM[k] + open
			sources++
			if pga := pGa[k]; pga > negInf && pga+ext > ga {
				ga = pga + ext
			}
		}
		if gb > negInf {
			sources++
		}
		mv := dg
		if ga > mv {
			mv = ga
		}
		if gb > mv {
			mv = gb
		}
		if sources >= 3 {
			interior++
		} else {
			boundary++
		}
		alive := mv > 0 && mv >= rowB && mv >= colBound[j-1]
		if alive {
			if int(mv) >= ctx.h {
				em.emit(i, j, mv)
			}
			out.push(j, mv, ga)
		}
		ng := negInf
		if gb > negInf {
			ng = gb + ext
		}
		if alive && mv+open > ng {
			ng = mv + open
		}
		if ng <= 0 {
			ng = negInf
		}
		gb = ng
	}
	// Gb tail past the parent run.
	for j := limit + 1; j <= mq && gb > negInf; j++ {
		boundary++
		mv := gb
		alive := mv >= rowB && mv >= colBound[j-1]
		if alive {
			if int(mv) >= ctx.h {
				em.emit(i, j, mv)
			}
			out.push(j, mv, negInf)
		}
		ng := gb + ext
		if alive && mv+open > ng {
			ng = mv + open
		}
		if ng <= 0 {
			ng = negInf
		}
		gb = ng
	}
	if !ctx.mute {
		ctx.st.EntriesBoundary += boundary
		ctx.st.EntriesInterior += interior
	}
}
