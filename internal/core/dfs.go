package core

import (
	"sort"

	"repro/internal/strie"
)

// The DFS engine computes, per q-gram fork family, the single matrix
// M_X of §2.2 restricted to its meaningful regions: the NGR diagonals
// are advanced per fork (they are disjoint by construction and use the
// one-source recurrence of Equation 3, cost 1), while all gap regions
// of the matrix live in ONE merged sparse band per trie path — fork
// regions overlap in M_X, and a matrix entry is a matrix entry no
// matter how many fork areas contain it, so merging computes each at
// most once. Every FGOE seeds the band with its cell value; the
// horizontal extension run of §3.1.3 then falls out of the band's own
// Gb carry. This achieves within the DFS what §4's reuse achieves for
// the column-wise hybrid engine: duplicated entries are not
// recalculated.

// seedCell is an FGOE entering the merged band at the current row.
type seedCell struct {
	j int32 // 1-based query column
	v int32 // FGOE score
}

// bandRow is one row of the merged gap-region band: sorted alive
// columns with their best scores M and vertical-gap scores Ga.
type bandRow struct {
	js []int32
	m  []int32
	ga []int32
}

func (r *bandRow) reset() { r.js, r.m, r.ga = r.js[:0], r.m[:0], r.ga[:0] }

// dfsGram builds this fork family's row-q state — per-fork NGR
// diagonals plus the merged band holding any pre-q FGOE regions — and
// walks the subtree. survivors are ascending 0-based query positions.
func (ctx *searchCtx) dfsGram(node strie.Node, gram []byte, survivors []int32, occGetter func() []int) {
	forks := make([]fork, 0, len(survivors))
	for _, col0 := range survivors {
		forks = append(forks, ctx.newFork(col0, gram))
	}
	if len(ctx.ws.bands) == 0 {
		ctx.ws.bands = append(ctx.ws.bands, bandRow{})
	}
	ngr := mergeForkBands(forks, &ctx.ws.bands[0])
	ctx.dfsEmitRowQ(node, ngr, &ctx.ws.bands[0], occGetter)
	if len(ngr) > 0 || len(ctx.ws.bands[0].js) > 0 {
		ctx.dfsWalk(node, ngr, 0)
	}
}

// dfsEmitRowQ reports row-q hits at the gram node itself: the EMR
// diagonal cell scores q·sa and can already reach the threshold, both
// for forks still on the diagonal and for band cells from forks whose
// FGOE fell inside the EMR.
func (ctx *searchCtx) dfsEmitRowQ(node strie.Node, forks []fork, band *bandRow, occGetter func() []int) {
	q := node.Depth
	emit := func(j int32, score int32) {
		for _, t := range occGetter() {
			ctx.c.Add(t+q-1, int(j)-1, int(score))
		}
	}
	for k := range forks {
		f := &forks[k]
		if f.phase == phaseNGR && int(f.score) >= ctx.h {
			emit(f.col0+int32(q), f.score)
		}
	}
	for k, mv := range band.m {
		if mv > negInf && int(mv) >= ctx.h {
			emit(band.js[k], mv)
		}
	}
}

// mergeForkBands folds the row-q bands of forks whose FGOE fell inside
// the EMR (built by newFork) into one merged band, taking the maximum
// on collisions.
func mergeForkBands(forks []fork, out *bandRow) []fork {
	out.reset()
	ngr := forks[:0]
	type cell struct{ j, m, ga int32 }
	var cells []cell
	for _, f := range forks {
		switch f.phase {
		case phaseNGR:
			ngr = append(ngr, f)
		case phaseGap:
			for k, mv := range f.m {
				if mv > negInf {
					cells = append(cells, cell{f.lo + int32(k), mv, f.ga[k]})
				}
			}
		}
	}
	if len(cells) == 0 {
		return ngr
	}
	sort.Slice(cells, func(a, b int) bool { return cells[a].j < cells[b].j })
	for _, c := range cells {
		if n := len(out.js); n > 0 && out.js[n-1] == c.j {
			if c.m > out.m[n-1] {
				out.m[n-1] = c.m
			}
			if c.ga > out.ga[n-1] {
				out.ga[n-1] = c.ga
			}
			continue
		}
		out.js = append(out.js, c.j)
		out.m = append(out.m, c.m)
		out.ga = append(out.ga, c.ga)
	}
	return ngr
}

// dfsWalk expands the subtree under node: one NGR step per live fork
// plus one merged-band row per trie edge. bandIdx indexes the
// per-depth band storage (node.Depth - q).
func (ctx *searchCtx) dfsWalk(node strie.Node, forks []fork, bandIdx int) {
	ctx.st.NodesVisited++
	if node.Depth > ctx.st.MaxDepth {
		ctx.st.MaxDepth = node.Depth
	}
	if node.Depth >= ctx.lmax {
		return
	}
	for len(ctx.ws.bands) <= bandIdx+1 {
		ctx.ws.bands = append(ctx.ws.bands, bandRow{})
	}
	if node.Hi-node.Lo == 1 && node.Depth >= ctx.st.Q+8 {
		// A single-occurrence node that survived this deep is almost
		// certainly a long homologous run: the remaining path is a
		// literal text substring, so read it directly instead of
		// paying backward-search steps and locates per level. Shallow
		// width-1 nodes mostly die within a level or two, where the
		// one-off locate would cost more than it saves.
		ctx.dfsLinear(node, forks, bandIdx)
		return
	}
	sc := ctx.scratch()
	ctx.e.trie.Children(node, sc.nodes, sc.los, sc.his)
	for k, ch := range ctx.e.trie.Letters() {
		child := sc.nodes[k]
		if child.Lo >= child.Hi {
			continue
		}
		i := child.Depth
		sc.em.reset(ctx, child)

		childForks := sc.forks[:0]
		seeds := sc.seeds[:0]
		for _, f := range forks {
			ctx.stepNGR(&f, ch, i)
			switch f.phase {
			case phaseNGR:
				if int(f.score) >= ctx.h {
					sc.em.emit(i, f.col0+int32(i), f.score)
				}
				childForks = append(childForks, f)
			case phaseGap:
				// The FGOE cell joins the merged band; its horizontal
				// extension run emerges from the band's Gb carry.
				if int(f.score) >= ctx.h {
					sc.em.emit(i, f.lo, f.score)
				}
				seeds = append(seeds, seedCell{j: f.lo, v: f.score})
			}
		}
		sc.forks, sc.seeds = childForks, seeds
		ctx.advanceMergedBand(&ctx.ws.bands[bandIdx], &ctx.ws.bands[bandIdx+1], ch, i, seeds, &sc.em)
		if len(childForks) > 0 || len(ctx.ws.bands[bandIdx+1].js) > 0 {
			ctx.dfsWalk(child, childForks, bandIdx+1)
		}
	}
	ctx.release(sc)
}

// dfsLinear walks a single-occurrence path by reading the text
// directly. Rows alternate between two band slots so storage stays
// bounded regardless of path length.
func (ctx *searchCtx) dfsLinear(node strie.Node, forks []fork, bandIdx int) {
	t := ctx.e.trie.Occurrences(node)[0]
	text := ctx.e.trie.Text()
	sc := ctx.scratch()
	sc.em.resetLinear(ctx, t)
	cur, next := bandIdx, bandIdx+1

	liveForks := append(sc.forks[:0], forks...)
	for i := node.Depth + 1; i <= ctx.lmax; i++ {
		pos := t + i - 1
		if pos >= len(text) {
			break
		}
		ch := text[pos]
		ctx.st.NodesVisited++
		if i > ctx.st.MaxDepth {
			ctx.st.MaxDepth = i
		}
		seeds := sc.seeds[:0]
		alive := liveForks[:0]
		for _, f := range liveForks {
			ctx.stepNGR(&f, ch, i)
			switch f.phase {
			case phaseNGR:
				if int(f.score) >= ctx.h {
					sc.em.emit(i, f.col0+int32(i), f.score)
				}
				alive = append(alive, f)
			case phaseGap:
				if int(f.score) >= ctx.h {
					sc.em.emit(i, f.lo, f.score)
				}
				seeds = append(seeds, seedCell{j: f.lo, v: f.score})
			}
		}
		liveForks, sc.seeds = alive, seeds
		ctx.advanceMergedBand(&ctx.ws.bands[cur], &ctx.ws.bands[next], ch, i, seeds, &sc.em)
		cur, next = next, cur
		if len(liveForks) == 0 && len(ctx.ws.bands[cur].js) == 0 {
			break
		}
	}
	sc.forks = liveForks
	ctx.release(sc)
}

// advanceMergedBand computes the merged band's next row from the
// parent row and the new FGOE seeds, sweeping candidate columns in
// increasing order with the in-row Gb carry, applying score filtering,
// counting boundary/interior entries, and emitting threshold cells.
// Seeds must be sorted by column (stepNGR visits forks in ascending
// col0 order per gram, so they are).
func (ctx *searchCtx) advanceMergedBand(parent, out *bandRow, ch byte, i int, seeds []seedCell, em *emitCtx) {
	out.reset()
	np := len(parent.js)
	if np == 0 && len(seeds) == 0 {
		return
	}
	s := ctx.s
	open := int32(s.GapOpen + s.GapExtend)
	ext := int32(s.GapExtend)
	mq := int32(len(ctx.query))

	// Candidate columns: parent cells contribute pj (via Ga) and pj+1
	// (via diag); seeds contribute their own column; Gb extensions are
	// chained during the sweep.
	cand := ctx.ws.cand[:0]
	si := 0
	pushSeedsUpTo := func(limit int32) {
		for si < len(seeds) && seeds[si].j <= limit {
			cand = append(cand, seeds[si].j)
			si++
		}
	}
	for k := 0; k < np; k++ {
		pj := parent.js[k]
		pushSeedsUpTo(pj - 1)
		cand = append(cand, pj)
		if k+1 >= np || parent.js[k+1] != pj+1 {
			if pj+1 <= mq {
				pushSeedsUpTo(pj)
				cand = append(cand, pj+1)
			}
		}
	}
	pushSeedsUpTo(mq)
	ctx.ws.cand = cand
	if len(cand) == 0 {
		return
	}

	seedAt := func(j int32) int32 {
		lo, hi := 0, len(seeds)
		for lo < hi {
			mid := (lo + hi) / 2
			if seeds[mid].j < j {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(seeds) && seeds[lo].j == j {
			return seeds[lo].v
		}
		return negInf
	}

	gb := negInf
	ci := 0
	pi := 0
	j := cand[0]
	for j <= mq {
		for pi < np && parent.js[pi] < j-1 {
			pi++
		}
		diag, ga := negInf, negInf
		sources := 0
		k := pi
		if k < np && parent.js[k] == j-1 {
			if pm := parent.m[k]; pm > negInf {
				diag = pm + int32(s.Delta(ch, ctx.query[j-1]))
				sources++
			}
			k++
		}
		if k < np && parent.js[k] == j {
			pm, pga := parent.m[k], parent.ga[k]
			if pm > negInf {
				ga = pm + open
				sources++
			}
			if pga > negInf && pga+ext > ga {
				if ga == negInf {
					sources++
				}
				ga = pga + ext
			}
		}
		if gb > negInf {
			sources++
		}
		sv := seedAt(j)
		mv := diag
		if ga > mv {
			mv = ga
		}
		if gb > mv {
			mv = gb
		}
		if sv > mv {
			mv = sv
		}
		if sources > 0 {
			// Seed-only cells were already counted as NGR entries by
			// stepNGR; only sweep-computed cells are counted here.
			if !ctx.mute {
				if sources >= 3 {
					ctx.st.EntriesInterior++
				} else {
					ctx.st.EntriesBoundary++
				}
			}
		}
		alive := mv > negInf && mv > 0 && ctx.minGainOK(mv, i, j)
		if alive {
			if int(mv) >= ctx.h && sv < mv {
				// Seed cells at their own value were emitted by the
				// NGR step; emit only improvements and sweep cells.
				em.emit(i, j, mv)
			}
			out.js = append(out.js, j)
			out.m = append(out.m, mv)
			out.ga = append(out.ga, ga)
		}
		// Gb carry to column j+1.
		ng := negInf
		if gb > negInf {
			ng = gb + ext
		}
		if alive && mv+open > ng {
			ng = mv + open
		}
		if ng <= 0 {
			ng = negInf
		}
		gb = ng

		for ci < len(cand) && cand[ci] <= j {
			ci++
		}
		if gb > negInf {
			j++
		} else if ci < len(cand) {
			j = cand[ci]
		} else {
			break
		}
	}
}
