package core

import (
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/seq"
)

func randDNA(n int, rng *rand.Rand) []byte {
	letters := []byte("ACGT")
	out := make([]byte, n)
	for i := range out {
		out[i] = letters[rng.Intn(4)]
	}
	return out
}

// runEngine searches with the given options and returns sorted hits.
func runEngine(t *testing.T, text, query []byte, s align.Scheme, h int, opts Options) ([]align.Hit, Stats) {
	t.Helper()
	e := New(text, opts)
	c := align.NewCollector()
	st, err := e.Search(query, s, h, c)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	return c.Hits(), st
}

// oracle is the Gotoh sweep.
func oracle(text, query []byte, s align.Scheme, h int) []align.Hit {
	return align.LocalAll(text, query, s, h)
}

func TestDFSMatchesOracleRandomDNA(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	s := align.DefaultDNA
	for trial := 0; trial < 80; trial++ {
		text := randDNA(30+rng.Intn(200), rng)
		query := randDNA(10+rng.Intn(100), rng)
		h := s.MinThreshold() + rng.Intn(10)
		got, _ := runEngine(t, text, query, s, h, Options{})
		want := oracle(text, query, s, h)
		if !align.EqualHits(got, want) {
			t.Fatalf("trial %d (T=%q P=%q H=%d):\n got %v\nwant %v",
				trial, text, query, h, got, want)
		}
	}
}

func TestDFSMatchesOracleHomologous(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	s := align.DefaultDNA
	nonEmpty := 0
	for trial := 0; trial < 40; trial++ {
		text := randDNA(300, rng)
		query := seq.Mutate(seq.DNA, text[50:200],
			seq.MutationConfig{SubstitutionRate: 0.05, IndelRate: 0.02}, rng)
		h := 15
		got, _ := runEngine(t, text, query, s, h, Options{})
		want := oracle(text, query, s, h)
		if !align.EqualHits(got, want) {
			t.Fatalf("trial %d:\n got %v\nwant %v", trial, got, want)
		}
		if len(want) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 20 {
		t.Fatalf("only %d/40 trials had hits; workload too weak", nonEmpty)
	}
}

func TestHybridMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	s := align.DefaultDNA
	for trial := 0; trial < 60; trial++ {
		text := randDNA(30+rng.Intn(200), rng)
		var query []byte
		if trial%2 == 0 {
			query = randDNA(10+rng.Intn(100), rng)
		} else {
			query = seq.Mutate(seq.DNA, text[10:10+rng.Intn(len(text)-20)+5],
				seq.MutationConfig{SubstitutionRate: 0.06, IndelRate: 0.02}, rng)
		}
		h := s.MinThreshold() + rng.Intn(12)
		got, _ := runEngine(t, text, query, s, h, Options{Mode: ModeHybrid})
		want := oracle(text, query, s, h)
		if !align.EqualHits(got, want) {
			t.Fatalf("trial %d (T=%q P=%q H=%d):\n got %v\nwant %v",
				trial, text, query, h, got, want)
		}
	}
}

func TestAllSchemesBothModes(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	schemes := append([]align.Scheme{}, align.Fig9Schemes...)
	schemes = append(schemes,
		align.Scheme{Match: 2, Mismatch: -3, GapOpen: -5, GapExtend: -2},
		align.Scheme{Match: 4, Mismatch: -5, GapOpen: -5, GapExtend: -2}, // FGOE inside EMR
		align.Scheme{Match: 1, Mismatch: -2, GapOpen: -2, GapExtend: -1},
	)
	for _, s := range schemes {
		for _, mode := range []Mode{ModeDFS, ModeHybrid} {
			for trial := 0; trial < 12; trial++ {
				text := randDNA(100+rng.Intn(120), rng)
				query := seq.Mutate(seq.DNA, text[20:90],
					seq.MutationConfig{SubstitutionRate: 0.08, IndelRate: 0.03}, rng)
				h := s.MinThreshold() + rng.Intn(3*s.Match) + 2
				got, _ := runEngine(t, text, query, s, h, Options{Mode: mode})
				want := oracle(text, query, s, h)
				if !align.EqualHits(got, want) {
					t.Fatalf("scheme %v mode %d trial %d (T=%q P=%q H=%d):\n got %v\nwant %v",
						s, mode, trial, text, query, h, got, want)
				}
			}
		}
	}
}

func TestProteinBothModes(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	letters := seq.Protein.Letters()
	randProt := func(n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = letters[rng.Intn(len(letters))]
		}
		return out
	}
	s := align.DefaultProtein
	for _, mode := range []Mode{ModeDFS, ModeHybrid} {
		for trial := 0; trial < 15; trial++ {
			text := randProt(200)
			query := append(randProt(8),
				append(seq.Mutate(seq.Protein, text[50:120],
					seq.MutationConfig{SubstitutionRate: 0.1, IndelRate: 0.02}, rng),
					randProt(8)...)...)
			h := 12
			got, _ := runEngine(t, text, query, s, h, Options{Mode: mode})
			want := oracle(text, query, s, h)
			if !align.EqualHits(got, want) {
				t.Fatalf("mode %d trial %d:\n got %v\nwant %v", mode, trial, got, want)
			}
		}
	}
}

func TestFilterAblationsStayExact(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	s := align.DefaultDNA
	variants := []Options{
		{},
		{DisableLengthFilter: true},
		{DisableScoreFilter: true},
		{DisableDomination: true},
		{DisableLengthFilter: true, DisableScoreFilter: true, DisableDomination: true},
		{EnableGMatrix: true},
		{EnableGMatrix: true, DisableDomination: true},
		{Mode: ModeHybrid, DisableScoreFilter: true},
		{Mode: ModeHybrid, DisableDomination: true},
	}
	for vi, opts := range variants {
		for trial := 0; trial < 12; trial++ {
			text := randDNA(150, rng)
			query := seq.Mutate(seq.DNA, text[30:130],
				seq.MutationConfig{SubstitutionRate: 0.06, IndelRate: 0.02}, rng)
			h := 12
			got, _ := runEngine(t, text, query, s, h, opts)
			want := oracle(text, query, s, h)
			if !align.EqualHits(got, want) {
				t.Fatalf("variant %d trial %d:\n got %v\nwant %v", vi, trial, got, want)
			}
		}
	}
}

func TestRepeatRichText(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	unit := randDNA(25, rng)
	var text []byte
	for i := 0; i < 12; i++ {
		text = append(text, unit...)
	}
	query := append(append(randDNA(5, rng), unit...), randDNA(5, rng)...)
	s := align.DefaultDNA
	h := 15
	want := oracle(text, query, s, h)
	if len(want) == 0 {
		t.Fatal("vacuous workload")
	}
	for _, mode := range []Mode{ModeDFS, ModeHybrid} {
		got, _ := runEngine(t, text, query, s, h, Options{Mode: mode})
		if !align.EqualHits(got, want) {
			t.Fatalf("mode %d:\n got %v\nwant %v", mode, got, want)
		}
	}
}

func TestSearchRejectsLowThreshold(t *testing.T) {
	e := New([]byte("ACGTACGT"), Options{})
	c := align.NewCollector()
	if _, err := e.Search([]byte("ACGT"), align.DefaultDNA, 2, c); err == nil {
		t.Error("threshold below MinThreshold accepted")
	}
	if _, err := e.Search([]byte("ACGT"), align.Scheme{}, 10, c); err == nil {
		t.Error("invalid scheme accepted")
	}
}

func TestSearchEdgeInputs(t *testing.T) {
	s := align.DefaultDNA
	e := New([]byte("ACGTACGT"), Options{})
	c := align.NewCollector()
	// Query shorter than q: diagnosed, not silently empty (qgram.New
	// would emit zero grams and the engines would have nothing to do).
	st, err := e.Search([]byte("AC"), s, s.MinThreshold(), c)
	if err == nil || st.ForksConsidered != 0 {
		t.Errorf("short query accepted: st=%+v err=%v", st, err)
	}
	// Empty text.
	e2 := New(nil, Options{})
	if _, err := e2.Search([]byte("ACGTACGT"), s, s.MinThreshold(), c); err != nil {
		t.Errorf("empty text: %v", err)
	}
	// Query with letters absent from the text.
	e3 := New([]byte("AAAACCCCAAAA"), Options{})
	st, err = e3.Search([]byte("GGGGTTTT"), s, s.MinThreshold(), c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Error("impossible hits emitted")
	}
}

// TestShortQueryDiagnosedBothEngines pins the too-short-query
// contract on both engine modes: a query shorter than the scheme's
// gram length is rejected with a descriptive error — from one-shot
// Search and from a re-armed Session alike — and the session stays
// usable for well-formed queries afterwards.
func TestShortQueryDiagnosedBothEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	text := randDNA(500, rng)
	s := align.DefaultDNA
	q := s.Q()
	short := randDNA(q-1, rng)
	good := randDNA(60, rng)
	for _, mode := range []Mode{ModeDFS, ModeHybrid} {
		e := New(text, Options{Mode: mode})
		c := align.NewCollector()
		if _, err := e.Search(short, s, s.MinThreshold(), c); err == nil {
			t.Fatalf("mode %v: short query (m=%d < q=%d) accepted", mode, len(short), q)
		}
		if _, err := e.Search(nil, s, s.MinThreshold(), c); err == nil {
			t.Fatalf("mode %v: empty query accepted", mode)
		}
		ses := e.AcquireSession()
		if _, err := ses.Search(short, s, s.MinThreshold(), c, 1); err == nil {
			t.Fatalf("mode %v: session accepted short query", mode)
		}
		// The rejection must not poison the session.
		if _, err := ses.Search(good, s, s.MinThreshold(), c, 1); err != nil {
			t.Fatalf("mode %v: session broken after short-query rejection: %v", mode, err)
		}
		ses.Release()
	}
}

func TestStatsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	text := randDNA(600, rng)
	query := seq.Mutate(seq.DNA, text[100:350],
		seq.MutationConfig{SubstitutionRate: 0.05, IndelRate: 0.01}, rng)
	s := align.DefaultDNA
	h := 20

	_, stDFS := runEngine(t, text, query, s, h, Options{})
	if stDFS.CalculatedEntries() <= 0 || stDFS.ForksStarted <= 0 {
		t.Fatalf("DFS stats empty: %+v", stDFS)
	}
	if stDFS.ComputationCost() < stDFS.CalculatedEntries() {
		t.Error("cost below entry count")
	}
	if stDFS.ReusedEntries != 0 {
		t.Error("DFS mode must not reuse")
	}

	_, stHyb := runEngine(t, text, query, s, h, Options{Mode: ModeHybrid})
	if stHyb.AccessedEntries() != stHyb.CalculatedEntries()+stHyb.ReusedEntries {
		t.Error("accessed != calculated + reused")
	}
	if r := stHyb.ReusingRatio(); r < 0 || r >= 1 {
		t.Errorf("reusing ratio %g out of range", r)
	}

	// Filters must reduce the work.
	_, stNoFilter := runEngine(t, text, query, s, h,
		Options{DisableScoreFilter: true, DisableLengthFilter: true, DisableDomination: true})
	if stNoFilter.CalculatedEntries() < stDFS.CalculatedEntries() {
		t.Errorf("filters increased work: %d (filters on) vs %d (off)",
			stDFS.CalculatedEntries(), stNoFilter.CalculatedEntries())
	}
	if stNoFilter.ForksDominated != 0 {
		t.Error("domination counted while disabled")
	}
}

func TestDominationPrunesForksOnTandemRepeat(t *testing.T) {
	// In a long tandem repeat every occurrence of most grams is
	// preceded by the same character, so domination must fire when
	// the query walks the same repeat.
	rng := rand.New(rand.NewSource(108))
	unit := randDNA(40, rng)
	var text []byte
	for i := 0; i < 8; i++ {
		text = append(text, unit...)
	}
	query := append(append([]byte(nil), unit...), unit...)
	s := align.DefaultDNA
	h := 25
	_, st := runEngine(t, text, query, s, h, Options{})
	if st.ForksDominated == 0 {
		t.Errorf("no forks dominated on a tandem repeat: %+v", st)
	}
	// And exactness must hold regardless.
	got, _ := runEngine(t, text, query, s, h, Options{})
	want := oracle(text, query, s, h)
	if !align.EqualHits(got, want) {
		t.Fatalf("domination broke exactness:\n got %v\nwant %v", got, want)
	}
}

func TestGMatrixFiltersRepeatedForks(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	unit := randDNA(30, rng)
	text := append(append([]byte(nil), unit...), unit...)
	query := append(append([]byte(nil), unit...), unit...)
	s := align.DefaultDNA
	h := 20
	got, st := runEngine(t, text, query, s, h,
		Options{EnableGMatrix: true, DisableDomination: true})
	want := oracle(text, query, s, h)
	if !align.EqualHits(got, want) {
		t.Fatalf("G-matrix broke exactness:\n got %v\nwant %v", got, want)
	}
	if st.ForksGMatrixFiltered == 0 {
		t.Logf("note: no forks filtered by G matrix on this workload (stats %+v)", st)
	}
}

func TestGMatrixMemoryCap(t *testing.T) {
	e := New([]byte("ACGTACGTACGT"), Options{EnableGMatrix: true, GMatrixMaxBytes: 1})
	c := align.NewCollector()
	if _, err := e.Search([]byte("ACGTACGT"), align.DefaultDNA, 4, c); err == nil {
		t.Error("G matrix over cap accepted")
	}
}

func TestMinThresholdBoundaryExact(t *testing.T) {
	// Exactly at the floor H = (q−1)·sa + 1: q-length pure matches
	// qualify and nothing shorter can; both engines must agree with
	// the oracle.
	rng := rand.New(rand.NewSource(110))
	s := align.DefaultDNA
	h := s.MinThreshold() // 4
	for trial := 0; trial < 20; trial++ {
		text := randDNA(60, rng)
		query := randDNA(30, rng)
		want := oracle(text, query, s, h)
		for _, mode := range []Mode{ModeDFS, ModeHybrid} {
			got, _ := runEngine(t, text, query, s, h, Options{Mode: mode})
			if !align.EqualHits(got, want) {
				t.Fatalf("mode %d trial %d (T=%q P=%q):\n got %v\nwant %v",
					mode, trial, text, query, got, want)
			}
		}
	}
}

func TestCollectionSeparatorsDoNotCrash(t *testing.T) {
	coll := seq.NewCollection([]seq.Record{
		{Header: "a", Seq: []byte("ACGTACGTACGTACGTACGT")},
		{Header: "b", Seq: []byte("TTTTACGTACGTACGTCCCC")},
	})
	s := align.DefaultDNA
	h := 8
	got, _ := runEngine(t, coll.Text(), []byte("ACGTACGTACGT"), s, h, Options{})
	want := oracle(coll.Text(), []byte("ACGTACGTACGT"), s, h)
	if !align.EqualHits(got, want) {
		t.Fatalf("collection text:\n got %v\nwant %v", got, want)
	}
}
