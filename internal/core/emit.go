package core

// The batched emission path. Band kernels report threshold-reaching
// cells through small per-context staging buffers (align.RunStage) as
// row runs — one append per cell, no table probe, no occurrence
// resolution. The emit contexts flush staged runs in bulk at natural
// ownership boundaries (frame pop, child-edge end, linear-walk end):
// a flush resolves the path node's occurrences once, fans each run out
// per occurrence, filters it through the per-search diagonal dominance
// table, and lands the surviving cells in the collector via the
// block-batched AddRun — one probe window per run block instead of one
// per cell.
//
// The dominance table is a flat direct-mapped slab keyed by alignment
// diagonal (tEnd − qEnd): each cell remembers the best-scoring
// (tEnd, qEnd) pair last forwarded on its diagonal. An emission is
// suppressed ONLY when the stored pair is exactly the same end pair
// with an equal or better score — a provable collector no-op, so hit
// sets are byte-identical with suppression on or off. Duplicate
// emissions are common by construction: gap regions that survive a
// trie branch are recomputed per branch, seed cells re-emit as band
// improvements, and hybrid copy-phase columns re-emit reused cells.
// The table is re-armed per fork family by an O(1) epoch bump, which
// also makes the Emitted/Suppressed counters independent of how
// families are scheduled across workers.

const (
	diagSlabBits = 12
	diagSlabLen  = 1 << diagSlabBits
	diagSlabMask = diagSlabLen - 1
)

// diagCell is one dominance-table entry: the packed (tEnd, qEnd) pair
// last forwarded on this diagonal, its score, and the arming epoch that
// validates it.
type diagCell struct {
	key   uint64
	score int32
	epoch uint32
}

// armDiag re-arms the diagonal dominance table for one fork family: an
// epoch bump invalidates every entry in O(1); the slab is only cleared
// on the (effectively unreachable) epoch wrap.
func (ctx *searchCtx) armDiag() {
	ws := ctx.ws
	if ws.diag == nil {
		ws.diag = make([]diagCell, diagSlabLen)
	}
	ws.diagEpoch++
	if ws.diagEpoch == 0 {
		clear(ws.diag)
		ws.diagEpoch = 1
	}
}

// forwardRun sends one occurrence-resolved row run — consecutive query
// end positions qEnd0, qEnd0+1, ... at text end tEnd — through the
// dominance filter and on to the collector in maximal admitted
// sub-runs. Suppressed cells are exact repeats of pairs this worker
// already forwarded with an equal or better score, so dropping them
// cannot change the collector's content.
func (ctx *searchCtx) forwardRun(tEnd, qEnd0 int, scores []int32) {
	if ctx.e.opts.DisableEmitSuppression {
		ctx.c.AddRun(tEnd, qEnd0, scores)
		ctx.st.EmittedHits += int64(len(scores))
		return
	}
	diag := ctx.ws.diag
	epoch := ctx.ws.diagEpoch
	start, kept := 0, 0
	for idx, sc := range scores {
		qEnd := qEnd0 + idx
		key := uint64(uint32(tEnd))<<32 | uint64(uint32(qEnd))
		d := &diag[uint32(tEnd-qEnd)&diagSlabMask]
		if d.epoch == epoch && d.key == key && d.score >= sc {
			if idx > start {
				ctx.c.AddRun(tEnd, qEnd0+start, scores[start:idx])
				kept += idx - start
			}
			start = idx + 1
			continue
		}
		d.key, d.score, d.epoch = key, sc, epoch
	}
	if len(scores) > start {
		ctx.c.AddRun(tEnd, qEnd0+start, scores[start:])
		kept += len(scores) - start
	}
	ctx.st.EmittedHits += int64(kept)
	ctx.st.SuppressedEmissions += int64(len(scores) - kept)
}
