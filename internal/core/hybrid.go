package core

import (
	"slices"

	"repro/internal/align"
	"repro/internal/cptree"
	"repro/internal/strie"
)

// The hybrid engine is Algorithm 3 (HYBRID). The horizontal phase —
// calMatrixByRow — advances the NGR diagonals along every trie path
// (shared across paths by the DFS) and records each first gap-open
// entry. Gap regions are then computed in the vertical phase —
// calMatrixByColumn — column by column, with cross-fork reuse: forks
// whose FGOEs share a row have equal FGOE scores (Theorem 5), so
// columns under a common query prefix are equal (Lemma 3) and are
// copied instead of recomputed, the duplicates being identified with
// the common-prefix tree of Algorithm 2.
//
// To know exactly how deep each gap region stays alive — which rows
// of the path the vertical phase needs — the engine also advances the
// region's row band during the descent, as a silent liveness oracle:
// those band entries are not counted (ctx.mute) and do not emit; all
// gap-region accounting and emission happens in the vertical phase.
// A region's vertical pass fires the moment its band dies (its rows
// are then fully determined by the current path prefix) or when the
// path itself ends; regions that stay alive across a trie branch are
// recomputed per branch, matching the paper's "recalculate ... as we
// are going up along the suffix trie", and the collector deduplicates
// the re-emitted hits.
//
// Like the DFS engine, the whole per-gram path is allocation-free in
// steady state: the recursion's per-level fork lists and oracle band
// rows live in per-depth frames (hframe) whose buffers persist across
// visits — a band row is written into the child level's SoA slab, so a
// parent's rows stay readable while every child of a node is explored
// — and the vertical phase stores its columns in flat arenas indexed
// by (offset, length) headers, with a Reset-able common-prefix tree.
// Everything hangs off the workspace and is re-armed per gram.

// pendingFGOE is a fork that has left its no-gap diagonal and awaits
// vertical gap-region computation.
//
// wm is the region's emitted watermark: every threshold cell at a row
// ≤ wm has already been forwarded by an earlier sibling branch of the
// descent. A gap-region cell (i, j) depends only on path rows ≤ i, so
// when a region alive across a trie branch is recomputed per branch,
// its rows within the still-shared path prefix reproduce the exact
// cells — same scores, same columns, same occurrences — the previous
// branch already emitted. The vertical phase skips those rows'
// emissions (counting them as CopiedEmissions) instead of re-running
// the occurrence fan-out, dominance filter and collector for provable
// no-ops. descend raises the watermark of a level's pendings to the
// level's depth after each fully-processed child edge; regions are
// born with wm = 0.
type pendingFGOE struct {
	col0   int32 // fork identity: 0-based q-prefix position in P
	row    int32 // FGOE row l
	col    int32 // FGOE column c (1-based)
	v      int32 // FGOE score (equal across a row group, Theorem 5)
	wm     int32 // emitted watermark: rows ≤ wm already forwarded
	memoID int32 // slot in hybridState.memo holding the region's last pass
}

// hframe is one level of the hybrid descent: the fork lists the parent
// built for this level's node, the level's oracle-band slab (the band
// rows of every fork alive here), and the node's memoised occurrence
// list. Buffers persist across visits, so re-entering a level
// allocates nothing once warm.
type hframe struct {
	ngr      []fork
	bands    []fork        // parallel to pendings
	pendings []pendingFGOE // the live regions' vertical-phase tickets
	dying    []pendingFGOE // regions whose oracle died on this edge
	slab     bandPair      // band rows of this level's forks
	occ      []int
	occValid bool
}

func (fr *hframe) reset() {
	fr.ngr, fr.bands = fr.ngr[:0], fr.bands[:0]
	fr.pendings, fr.dying = fr.pendings[:0], fr.dying[:0]
	fr.slab.reset()
	fr.occValid = false
}

// colData is one stored gap-region column header: rows
// [loRow, loRow+n) with cells at [off, off+n) in the vertical arenas
// (vm = best scores M, vgb = horizontal-gap scores Gb; negInf marks
// dead interior cells). Headers are values, so a copied column shares
// its cells — exactly what the reuse phase wants.
type colData struct {
	loRow int32
	off   int32
	n     int32
}

// colsRange is one fork's column run within the vcols header arena.
type colsRange struct {
	start, n int32
}

// hybridState is the hybrid engine's per-search scratch, owned by the
// workspace.
type hybridState struct {
	ctx       *searchCtx
	nodes     []strie.Node // nodes[d] is the trie node at depth q+d
	path      []byte       // X[1..depth]: path[i-1] is the row-i character
	pathCodes []int16      // dense letter codes of path, for δ-table rows
	frames    []hframe     // per-depth descent frames, frames[d] ↔ depth q+d

	cpt     *cptree.Tree // reusable common-prefix tree (Algorithm 2)
	vm, vgb []int32      // vertical-phase cell arenas (per-family lifetime)
	vcols   []colData    // vertical-phase column headers (per-family lifetime)
	vstored []colsRange  // per-fork column runs of the current group

	// memo[id] is region id's column run from its most recent vertical
	// pass — the per-search region→columns memo. The arenas live for
	// the whole fork family (reset in hybridGram, like the dominance
	// table's epoch discipline), so a stored run stays addressable
	// across verticals calls; when the region is recomputed on a later
	// sibling branch, the rows it shares with the memoised pass — rows
	// ≤ the emitted watermark — are loaded instead of recomputed
	// (ReusedEntries), and only deeper rows run the recurrence.
	memo []colsRange

	// stage buffers the horizontal phase's emitted cells as row runs;
	// flushEmits resolves each run's row occurrences (occAt) and
	// forwards through the dominance filter. Rows reference descent
	// frames, so the stage is drained before any truncation of
	// hs.nodes (end of every child-edge iteration in descend, end of
	// hybridGram).
	stage align.RunStage

	// The vertical phase emits column by column, so consecutive columns
	// of a fork revisit the same rows with consecutive j: vrows[i] holds
	// row i's open run and extends it by one append per cell. Runs
	// flush — one occurrence resolution per row, one batched forwardRun
	// per occurrence — on discontinuity and at the end of every
	// verticals call, while the path (occAt) is still valid. vdirty
	// lists the rows with staged cells, so a flush never scans vrows.
	vrows  []vertRow
	vdirty []int32
}

// vertRow is one matrix row's open emission run in the vertical phase:
// scores for query columns j0, j0+1, ... .
type vertRow struct {
	j0     int32
	scores []int32
}

// hybrid returns the workspace's hybrid state, arming it for ctx.
func (ws *workspace) hybrid(ctx *searchCtx) *hybridState {
	if ws.hs == nil {
		ws.hs = &hybridState{}
	}
	hs := ws.hs
	hs.ctx = ctx
	return hs
}

// frame returns descent frame i, growing the frame slice if needed.
// Callers must re-acquire frame pointers after calling frame with a
// larger i (growth moves the backing array).
func (hs *hybridState) frame(i int) *hframe {
	for len(hs.frames) <= i {
		hs.frames = append(hs.frames, hframe{})
	}
	return &hs.frames[i]
}

// hybridGram runs one fork family in hybrid mode.
func (ctx *searchCtx) hybridGram(node strie.Node, gram []byte, cols []int32) {
	q := len(gram)
	ws := ctx.ws
	hs := ws.hybrid(ctx)
	hs.nodes = append(hs.nodes[:0], node) // depth q
	hs.path = append(hs.path[:0], gram...)
	hs.pathCodes = hs.pathCodes[:0]
	fm := ctx.e.trie.Index()
	for _, ch := range gram {
		hs.pathCodes = append(hs.pathCodes, int16(fm.CodeOf(ch)))
	}
	f0 := hs.frame(0)
	f0.reset()
	hs.vm, hs.vgb = hs.vm[:0], hs.vgb[:0]
	hs.vcols = hs.vcols[:0]
	hs.memo = hs.memo[:0]

	for len(ws.forks) < len(cols) {
		ws.forks = append(ws.forks, fork{})
	}
	for k, col0 := range cols {
		f := &ws.forks[k]
		ctx.mute = true
		ctx.newForkInto(f, col0, gram)
		ctx.mute = false
		switch f.phase {
		case phaseNGR:
			if int(f.score) >= ctx.h {
				hs.emitRow(q, col0+int32(q), f.score)
			}
			f0.ngr = append(f0.ngr, *f)
		case phaseGap, phaseDead:
			p := pendingFGOE{col0: col0, row: f.fgoeAt, col: col0 + f.fgoeAt,
				v: f.fgoeAt * int32(ctx.s.Match), memoID: hs.newMemoID()}
			if f.phase == phaseDead {
				f0.dying = append(f0.dying, p)
			} else {
				f0.bands = append(f0.bands, *f)
				f0.pendings = append(f0.pendings, p)
			}
		}
	}
	if len(f0.dying) > 0 {
		hs.verticals(q, f0.dying)
	}
	if len(f0.ngr) > 0 || len(f0.bands) > 0 {
		hs.descend(0, node)
	}
	hs.flushEmits()
	hs.ctx = nil // don't let the pooled workspace pin this search's state
}

// occAt returns the occurrence positions of X[1..i] (row i ≥ q),
// memoised on the row's descent frame.
func (hs *hybridState) occAt(i int) []int {
	d := i - hs.nodes[0].Depth
	fr := &hs.frames[d]
	if !fr.occValid {
		fr.occ = hs.ctx.e.trie.OccurrencesAppend(hs.nodes[d], fr.occ[:0])
		fr.occValid = true
	}
	return fr.occ
}

// emitRow stages a horizontal-phase hit at matrix row i, 1-based query
// column j (NGR passes emit row-wise and batch into real runs; the
// vertical phase goes through emitVert's per-row open runs instead).
func (hs *hybridState) emitRow(i int, j int32, score int32) {
	if !hs.stage.Stage(int32(i), j, score) {
		hs.flushEmits()
		hs.stage.Stage(int32(i), j, score)
	}
}

// flushEmits drains the staged runs: one occurrence resolution per
// distinct row (memoised on the descent frames), then the dominance
// filter and batched AddRun per occurrence.
func (hs *hybridState) flushEmits() {
	if hs.stage.Empty() {
		return
	}
	cells := hs.stage.Cells()
	for _, r := range hs.stage.Runs() {
		row := int(r.Row)
		run := cells[r.Off : r.Off+r.N]
		for _, t := range hs.occAt(row) {
			hs.ctx.forwardRun(t+row-1, int(r.J0)-1, run)
		}
	}
	hs.stage.Reset()
}

// emitVertCell routes one vertical-phase threshold cell at (row i,
// 1-based column j). Rows at or below the region's emitted watermark
// were already forwarded — with identical scores, columns and
// occurrences — by an earlier sibling branch (see pendingFGOE.wm);
// they count as copied emissions and skip the forward path entirely.
func (hs *hybridState) emitVertCell(wm int32, i int, j, score int32) {
	if int32(i) <= wm && !hs.ctx.e.opts.DisableCopyReuse {
		hs.ctx.st.CopiedEmissions += int64(len(hs.occAt(i)))
		return
	}
	hs.emitVert(i, j, score)
}

// emitVert stages one vertical-phase cell into its row's open run,
// flushing the run first when j does not extend it.
func (hs *hybridState) emitVert(i int, j, score int32) {
	for len(hs.vrows) <= i {
		hs.vrows = append(hs.vrows, vertRow{})
	}
	r := &hs.vrows[i]
	if len(r.scores) > 0 {
		if r.j0+int32(len(r.scores)) == j {
			r.scores = append(r.scores, score)
			return
		}
		hs.forwardVertRow(i, r)
	} else {
		hs.vdirty = append(hs.vdirty, int32(i))
	}
	r.j0 = j
	r.scores = append(r.scores[:0], score)
}

// forwardVertRow fans row i's open run out over the row's occurrences
// through the dominance filter. The caller owns the run bookkeeping.
func (hs *hybridState) forwardVertRow(i int, r *vertRow) {
	for _, t := range hs.occAt(i) {
		hs.ctx.forwardRun(t+i-1, int(r.j0)-1, r.scores)
	}
}

// flushVerts drains every dirty vertical-phase row. Called at the end
// of each verticals pass, while hs.nodes still covers the emitted rows.
func (hs *hybridState) flushVerts() {
	for _, i := range hs.vdirty {
		r := &hs.vrows[i]
		if len(r.scores) > 0 {
			hs.forwardVertRow(int(i), r)
			r.scores = r.scores[:0]
		}
	}
	hs.vdirty = hs.vdirty[:0]
}

// resetVerts abandons staged vertical-phase runs without forwarding
// (cancelled searches discard their hits anyway; a pooled workspace
// must not leak them into the next query).
func (hs *hybridState) resetVerts() {
	for _, i := range hs.vdirty {
		hs.vrows[i].scores = hs.vrows[i].scores[:0]
	}
	hs.vdirty = hs.vdirty[:0]
}

// descend is the horizontal phase walk over the node at descent level
// (trie depth q+level). The level's frame carries its live diagonal
// forks and the silent liveness oracles of the gap regions listed in
// its pendings (parallel slices).
func (hs *hybridState) descend(level int, node strie.Node) {
	ctx := hs.ctx
	if ctx.cancelled(0) {
		return // unwind the recursion; hits so far are discarded by the caller
	}
	ctx.st.NodesVisited++
	if node.Depth > ctx.st.MaxDepth {
		ctx.st.MaxDepth = node.Depth
	}
	fr := &hs.frames[level]
	if len(fr.ngr) == 0 && len(fr.bands) == 0 {
		return
	}
	if node.Depth >= ctx.lmax {
		if len(fr.pendings) > 0 {
			hs.verticals(node.Depth, fr.pendings)
		}
		return
	}
	descended := false
	sc := ctx.scratch()
	ctx.e.trie.Children(node, sc.nodes, sc.los, sc.his)
	for k, ch := range ctx.e.trie.Letters() {
		child := sc.nodes[k]
		if child.Lo >= child.Hi {
			continue
		}
		if k == ctx.barrier {
			// Hard reset: the barrier edge is never descended (and does
			// not count as a live child, so a barrier-only node still
			// finishes its regions through the leaf fallback below).
			continue
		}
		descended = true
		i := child.Depth
		cf := hs.frame(level + 1)
		fr = &hs.frames[level] // frame growth may have moved the array
		cf.reset()
		ngr, bands, pendings := fr.ngr, fr.bands, fr.pendings
		hs.nodes = append(hs.nodes, child)
		hs.path = append(hs.path, ch)
		hs.pathCodes = append(hs.pathCodes, int16(k))
		deltaRow := ctx.deltaRow(k)

		for _, f := range ngr {
			ctx.stepNGR(&f, deltaRow, i)
			switch f.phase {
			case phaseNGR:
				if int(f.score) >= ctx.h {
					hs.emitRow(i, f.col0+int32(i), f.score)
				}
				cf.ngr = append(cf.ngr, f)
			case phaseGap:
				p := pendingFGOE{col0: f.col0, row: int32(i), col: f.lo,
					v: f.score, memoID: hs.newMemoID()}
				ctx.mute = true
				mark := cf.slab.len()
				n := ctx.seedBandInto(i, f.lo, f.score, nil, &cf.slab)
				ctx.mute = false
				f.m, f.ga = cf.slab.m[mark:mark+n], cf.slab.ga[mark:mark+n]
				cf.bands = append(cf.bands, f)
				cf.pendings = append(cf.pendings, p)
			}
		}
		for bi := range bands {
			f := bands[bi]
			ctx.mute = true
			mark := cf.slab.len()
			newLo, n := ctx.advanceBandInto(f.lo, f.m, f.ga, deltaRow, i, nil, &cf.slab)
			ctx.mute = false
			if n == 0 {
				cf.dying = append(cf.dying, pendings[bi])
				continue
			}
			f.lo = newLo
			f.m, f.ga = cf.slab.m[mark:mark+n], cf.slab.ga[mark:mark+n]
			cf.bands = append(cf.bands, f)
			cf.pendings = append(cf.pendings, pendings[bi])
		}
		if len(cf.dying) > 0 {
			// These regions' rows are fully determined by the current
			// path prefix: compute them now, once per death point.
			hs.verticals(i, cf.dying)
		}
		if len(cf.ngr) > 0 || len(cf.bands) > 0 {
			hs.descend(level+1, child)
		}

		// Every region in this level's pendings has now been fully
		// emitted along this child edge (it either died on the edge or
		// was carried down and finished deeper): the rows it shares
		// with the next sibling's paths — rows ≤ this node's depth —
		// need not be re-forwarded there. Raise the watermarks.
		for bi := range fr.pendings {
			if fr.pendings[bi].wm < int32(node.Depth) {
				fr.pendings[bi].wm = int32(node.Depth)
			}
		}

		// Drain before truncating: staged rows at this child's depth
		// resolve occurrences through hs.nodes, and the next sibling
		// reuses (and resets) the child frame's occurrence memo.
		hs.flushEmits()
		hs.nodes = hs.nodes[:len(hs.nodes)-1]
		hs.path = hs.path[:len(hs.path)-1]
		hs.pathCodes = hs.pathCodes[:len(hs.pathCodes)-1]
	}
	ctx.release(sc)
	if !descended {
		fr = &hs.frames[level]
		if len(fr.pendings) > 0 {
			// Trie leaf: the path cannot grow; finish the live regions.
			hs.verticals(node.Depth, fr.pendings)
		}
	}
}

// verticals runs calMatrixByColumn for the given FGOEs over the
// current path, grouping by FGOE row per Lemma 3 and reusing columns
// through the common-prefix tree. pending is reordered in place
// ((row, col) is unique per fork, so the order is deterministic).
func (hs *hybridState) verticals(depth int, pending []pendingFGOE) {
	slices.SortFunc(pending, func(a, b pendingFGOE) int {
		if a.row != b.row {
			return int(a.row - b.row)
		}
		return int(a.col - b.col)
	})
	for lo := 0; lo < len(pending); {
		hi := lo + 1
		for hi < len(pending) && pending[hi].row == pending[lo].row {
			hi++
		}
		hs.verticalGroup(depth, pending[lo:hi])
		lo = hi
	}
	hs.flushVerts()
}

// newMemoID allocates a region's memo slot for the current family.
func (hs *hybridState) newMemoID() int32 {
	hs.memo = append(hs.memo, colsRange{})
	return int32(len(hs.memo) - 1)
}

// verticalGroup processes one same-FGOE-row group of forks in column
// order with cross-fork column reuse. Stored columns append to the
// per-family vertical arenas (kept live for the cross-branch memo);
// the group-relative state — the common-prefix tree and the group's
// column runs — resets per group.
func (hs *hybridState) verticalGroup(depth int, group []pendingFGOE) {
	ctx := hs.ctx
	if hs.cpt == nil {
		hs.cpt = cptree.New(ctx.query)
	} else {
		hs.cpt.Reset(ctx.query)
	}
	hs.vstored = hs.vstored[:0]
	for w, p := range group {
		if ctx.cancelled(0) {
			return
		}
		// Theorem 5: same-row FGOEs have equal scores. Reuse relies on
		// it; compute plainly if it ever failed.
		lcp, owner := hs.cpt.Insert(int(p.col-1), w)
		if p.v != group[0].v {
			lcp, owner = 0, -1
		}
		hs.vstored = append(hs.vstored, hs.verticalFork(depth, p, lcp, owner))
	}
}

// verticalFork computes (or copies) the gap region of one fork column
// by column, returning its header run in the vcols arena. lcp/owner
// describe how many leading columns can be copied from a previously
// processed fork in the same group.
func (hs *hybridState) verticalFork(depth int, p pendingFGOE, lcp, owner int) colsRange {
	ctx := hs.ctx
	mq := int32(len(ctx.query))
	start := int32(len(hs.vcols))
	count := func() int32 { return int32(len(hs.vcols)) - start }

	// Copy phase: Lemma 3 lets columns under the shared query prefix
	// be taken verbatim from the owner fork (headers are copied, cells
	// are shared). copied reports whether the fork's region was fully
	// determined here (column past the query end, or dying where the
	// owner died).
	copied := false
	if owner >= 0 {
		own := hs.vstored[owner]
		for d := 0; d < lcp && d < int(own.n) && !copied; d++ {
			j := p.col + int32(d)
			if j > mq {
				copied = true
				break
			}
			src := hs.vcols[own.start+int32(d)]
			hs.vcols = append(hs.vcols, src)
			for k, mv := range hs.vm[src.off : src.off+src.n] {
				if mv > negInf {
					ctx.st.ReusedEntries++
					if int(mv) >= ctx.h {
						hs.emitVertCell(p.wm, int(src.loRow)+k, j, mv)
					}
				}
			}
		}
		if int(own.n) < lcp && count() == own.n {
			// The owner's region died within the shared prefix; ours
			// dies at the same column (identical values).
			copied = true
		}
	}

	// Cross-branch memo: when the region was already computed on an
	// earlier sibling branch, its stored columns supply every row the
	// two paths share (rows ≤ the emitted watermark) verbatim; only
	// deeper rows recompute.
	var memo colsRange
	useMemo := false
	if !ctx.e.opts.DisableCopyReuse && p.wm >= p.row {
		memo = hs.memo[p.memoID]
		useMemo = memo.n > 0
	}

	// Compute phase: continue column by column until the region dies.
	for d := int(count()); !copied; d++ {
		j := p.col + int32(d)
		if j > mq {
			break
		}
		if ctx.cancelled(0) {
			break // one column is a bounded unit (≤ Lmax cells)
		}
		var prev colData
		hasPrev := false
		if d > 0 {
			prev, hasPrev = hs.vcols[start+int32(d-1)], true
		}
		var src colData
		hasSrc := false
		if useMemo && int32(d) < memo.n {
			src, hasSrc = hs.vcols[memo.start+int32(d)], true
		}
		col, any := hs.computeColumn(depth, p, j, prev, hasPrev, src, hasSrc)
		if !any {
			break
		}
		hs.vcols = append(hs.vcols, col)
	}
	out := colsRange{start: start, n: count()}
	if !ctx.e.opts.DisableCopyReuse {
		hs.memo[p.memoID] = out
	}
	return out
}

// computeColumn evaluates one gap-region column j for fork p over the
// current path, appending its cells to the vertical arenas. prev is
// column j−1 (hasPrev false for the FGOE column itself). The cell loop
// is branch-lean: the previous column is read through direct slice
// views, cells append straight to the arenas, and Theorem 2 is the
// same two-compare form the DFS sweep uses — for a fixed column the
// bound is max(colBound[j−1], rowBound(i)), with rowBound linear in
// the row.
//
// src (when hasSrc) is the same column from the region's memoised
// previous pass: its cells at rows ≤ p.wm — the rows the two passes'
// paths share — are loaded verbatim (a gap-region cell depends only on
// path rows above it, so they are provably identical), the
// vertical-gap carry is replayed over them, and the recurrence runs
// only for the rows beyond the shared prefix.
func (hs *hybridState) computeColumn(depth int, p pendingFGOE, j int32, prev colData, hasPrev bool, src colData, hasSrc bool) (colData, bool) {
	ctx := hs.ctx
	s := ctx.s
	open := int32(s.GapOpen + s.GapExtend)
	ext := int32(s.GapExtend)
	delta, mCols := ctx.delta, int32(len(ctx.query))

	// Direct views of column j−1 (empty when hasPrev is false, so every
	// ranged read comes up negInf).
	var prevM, prevGb []int32
	prevLo := p.row
	if hasPrev {
		prevM = hs.vm[prev.off : prev.off+prev.n]
		prevGb = hs.vgb[prev.off : prev.off+prev.n]
		prevLo = prev.loRow
	}
	np := uint32(len(prevM))

	// Theorem 2, column-constant part and the row-linear base:
	// rowBound(i) = (h − Lmax·sa) + i·sa.
	scoreFilter := !ctx.e.opts.DisableScoreFilter
	var cb, rbBase, sa int32
	if scoreFilter {
		cb = ctx.colBound[j-1]
		sa = int32(s.Match)
		rbBase = int32(ctx.h - ctx.lmax*s.Match)
	}

	// Arena slices and cost counters live in locals for the duration of
	// the cell loop; both are written back once on the way out.
	vm, vgb := hs.vm, hs.vgb
	pathCodes := hs.pathCodes
	var interior, boundary, reused, copied int64

	off := int32(len(vm))
	loRow := p.row
	firstAlive, lastAlive := int32(-1), int32(-1)
	gaCarry := negInf
	prevHi := p.row - 1
	if hasPrev {
		prevHi = prev.loRow + prev.n - 1
	}
	maxRow := int32(depth)
	if int32(ctx.lmax) < maxRow {
		maxRow = int32(ctx.lmax)
	}

	startRow := p.row
	if hasSrc {
		srcTop := src.loRow + src.n - 1
		if srcTop > p.wm {
			srcTop = p.wm
		}
		if src.loRow <= srcTop {
			// Load the shared rows. Live cells count as reused entries
			// and, at threshold, as copied emissions; the carry replay
			// mirrors the recurrence's gaCarry update exactly.
			loRow = src.loRow
			firstAlive = src.loRow
			srcM := vm[src.off : src.off+src.n]
			srcGb := vgb[src.off : src.off+src.n]
			for r := src.loRow; r <= srcTop; r++ {
				mv, gbv := srcM[r-src.loRow], srcGb[r-src.loRow]
				vm = append(vm, mv)
				vgb = append(vgb, gbv)
				if mv > negInf {
					reused++
					lastAlive = r
					if int(mv) >= ctx.h {
						copied += int64(len(hs.occAt(int(r))))
					}
				}
				ng := negInf
				if gaCarry > negInf {
					ng = gaCarry + ext
				}
				if mv > negInf && mv+open > ng {
					ng = mv + open
				}
				if ng <= 0 {
					ng = negInf
				}
				gaCarry = ng
			}
			startRow = srcTop + 1
		} else {
			// The memoised run starts below the shared prefix: every
			// shared row of this column is dead.
			loRow = p.wm + 1
			startRow = p.wm + 1
		}
	}

	for i := startRow; i <= maxRow; i++ {
		if i == p.row && !hasPrev {
			// The FGOE cell itself: assigned from the horizontal
			// phase, not recalculated.
			vm = append(vm, p.v)
			vgb = append(vgb, negInf)
			firstAlive, lastAlive = i, i
			gaCarry = p.v + open
			if gaCarry <= 0 {
				gaCarry = negInf
			}
			if int(p.v) >= ctx.h {
				hs.emitVertCell(p.wm, int(i), j, p.v)
			}
			continue
		}
		if i > prevHi+1 && gaCarry == negInf {
			break // no source can reach deeper rows
		}
		var diag, gbv int32 = negInf, negInf
		sources := 0
		if k := uint32(i - 1 - prevLo); k < np {
			if pm := prevM[k]; pm > negInf {
				diag = pm + delta[int32(pathCodes[i-1])*mCols+j-1]
				sources++
			}
		}
		if k := uint32(i - prevLo); k < np {
			pm, pgb := prevM[k], prevGb[k]
			if pm > negInf || pgb > negInf {
				if pgb > negInf {
					gbv = pgb + ext
				}
				if pm > negInf && pm+open > gbv {
					gbv = pm + open
				}
				sources++
			}
		}
		if gaCarry > negInf {
			sources++
		}
		if sources == 0 {
			if firstAlive >= 0 {
				vm = append(vm, negInf)
				vgb = append(vgb, negInf)
			} else {
				loRow = i + 1
			}
			continue
		}
		mv := diag
		if gaCarry > mv {
			mv = gaCarry
		}
		if gbv > mv {
			mv = gbv
		}
		if sources >= 3 {
			interior++
		} else {
			boundary++
		}
		alive := mv > 0
		if alive && scoreFilter {
			b := cb
			if rb := rbBase + i*sa; rb > b {
				b = rb
			}
			alive = mv >= b
		}
		if alive {
			if int(mv) >= ctx.h {
				hs.emitVertCell(p.wm, int(i), j, mv)
			}
			if firstAlive < 0 {
				firstAlive = i
				loRow = i
			}
			lastAlive = i
			vm = append(vm, mv)
			vgb = append(vgb, gbv)
		} else if firstAlive >= 0 {
			vm = append(vm, negInf)
			vgb = append(vgb, negInf)
		} else {
			loRow = i + 1
		}
		// Vertical-gap carry to row i+1.
		ng := negInf
		if gaCarry > negInf {
			ng = gaCarry + ext
		}
		if alive && mv+open > ng {
			ng = mv + open
		}
		if ng <= 0 {
			ng = negInf
		}
		gaCarry = ng
	}
	ctx.st.EntriesInterior += interior
	ctx.st.EntriesBoundary += boundary
	ctx.st.ReusedEntries += reused
	ctx.st.CopiedEmissions += copied
	if firstAlive < 0 {
		hs.vm, hs.vgb = vm[:off], vgb[:off]
		return colData{}, false
	}
	n := lastAlive - loRow + 1
	hs.vm, hs.vgb = vm[:off+n], vgb[:off+n]
	return colData{loRow: loRow, off: off, n: n}, true
}
