package core

import (
	"sort"

	"repro/internal/cptree"
	"repro/internal/strie"
)

// The hybrid engine is Algorithm 3 (HYBRID). The horizontal phase —
// calMatrixByRow — advances the NGR diagonals along every trie path
// (shared across paths by the DFS) and records each first gap-open
// entry. Gap regions are then computed in the vertical phase —
// calMatrixByColumn — column by column, with cross-fork reuse: forks
// whose FGOEs share a row have equal FGOE scores (Theorem 5), so
// columns under a common query prefix are equal (Lemma 3) and are
// copied instead of recomputed, the duplicates being identified with
// the common-prefix tree of Algorithm 2.
//
// To know exactly how deep each gap region stays alive — which rows
// of the path the vertical phase needs — the engine also advances the
// region's row band during the descent, as a silent liveness oracle:
// those band entries are not counted (ctx.mute) and do not emit; all
// gap-region accounting and emission happens in the vertical phase.
// A region's vertical pass fires the moment its band dies (its rows
// are then fully determined by the current path prefix) or when the
// path itself ends; regions that stay alive across a trie branch are
// recomputed per branch, matching the paper's "recalculate ... as we
// are going up along the suffix trie", and the collector deduplicates
// the re-emitted hits.

// pendingFGOE is a fork that has left its no-gap diagonal and awaits
// vertical gap-region computation.
type pendingFGOE struct {
	col0 int32 // fork identity: 0-based q-prefix position in P
	row  int32 // FGOE row l
	col  int32 // FGOE column c (1-based)
	v    int32 // FGOE score (equal across a row group, Theorem 5)
}

// hybridGram runs one fork family in hybrid mode.
func (ctx *searchCtx) hybridGram(node strie.Node, gram []byte, cols []int32) {
	q := len(gram)
	hs := &hybridState{ctx: ctx, gram: gram}
	hs.nodes = append(hs.nodes, node) // depth q
	hs.path = append(hs.path, gram...)
	fm := ctx.e.trie.Index()
	for _, ch := range gram {
		hs.pathCodes = append(hs.pathCodes, int16(fm.CodeOf(ch)))
	}
	hs.occs = make([][]int, 1)

	var ngr []fork
	var bands []fork
	var pendings []pendingFGOE
	var dying []pendingFGOE
	for _, col0 := range cols {
		ctx.mute = true
		f := ctx.newFork(col0, gram)
		ctx.mute = false
		switch f.phase {
		case phaseNGR:
			if int(f.score) >= ctx.h {
				hs.emitRow(q, col0+int32(q), f.score)
			}
			ngr = append(ngr, f)
		case phaseGap, phaseDead:
			p := pendingFGOE{col0: col0, row: f.fgoeAt, col: col0 + f.fgoeAt,
				v: f.fgoeAt * int32(ctx.s.Match)}
			if f.phase == phaseDead {
				dying = append(dying, p)
			} else {
				bands = append(bands, f)
				pendings = append(pendings, p)
			}
		}
	}
	if len(dying) > 0 {
		hs.verticals(q, dying)
	}
	hs.descend(node, ngr, bands, pendings)
}

type hybridState struct {
	ctx       *searchCtx
	gram      []byte
	nodes     []strie.Node // nodes[d] is the trie node at depth q+d
	occs      [][]int      // lazily located occurrences per depth index
	path      []byte       // X[1..depth]: path[i-1] is the row-i character
	pathCodes []int16      // dense letter codes of path, for δ-table rows
}

// occAt returns the occurrence positions of X[1..i] (row i ≥ q).
func (hs *hybridState) occAt(i int) []int {
	d := i - hs.nodes[0].Depth
	if hs.occs[d] == nil {
		hs.occs[d] = hs.ctx.e.trie.Occurrences(hs.nodes[d])
	}
	return hs.occs[d]
}

// emitRow reports a hit at matrix row i, 1-based query column j.
func (hs *hybridState) emitRow(i int, j int32, score int32) {
	for _, t := range hs.occAt(i) {
		hs.ctx.c.Add(t+i-1, int(j)-1, int(score))
	}
}

// descend is the horizontal phase walk. ngr are live diagonal forks;
// bands are the silent liveness oracles of the gap regions listed in
// pendings (parallel slices).
func (hs *hybridState) descend(node strie.Node, ngr, bands []fork, pendings []pendingFGOE) {
	ctx := hs.ctx
	ctx.st.NodesVisited++
	if node.Depth > ctx.st.MaxDepth {
		ctx.st.MaxDepth = node.Depth
	}
	if len(ngr) == 0 && len(bands) == 0 {
		return
	}
	if node.Depth >= ctx.lmax {
		if len(pendings) > 0 {
			hs.verticals(node.Depth, pendings)
		}
		return
	}
	descended := false
	sc := ctx.scratch()
	ctx.e.trie.Children(node, sc.nodes, sc.los, sc.his)
	for k, ch := range ctx.e.trie.Letters() {
		child := sc.nodes[k]
		if child.Lo >= child.Hi {
			continue
		}
		descended = true
		i := child.Depth
		hs.nodes = append(hs.nodes, child)
		hs.path = append(hs.path, ch)
		hs.pathCodes = append(hs.pathCodes, int16(k))
		hs.occs = append(hs.occs, nil)
		deltaRow := ctx.deltaRow(k)

		childNGR := make([]fork, 0, len(ngr))
		childBands := make([]fork, 0, len(bands)+len(ngr))
		var childPendings []pendingFGOE
		var dying []pendingFGOE
		for _, f := range ngr {
			ctx.stepNGR(&f, deltaRow, i)
			switch f.phase {
			case phaseNGR:
				if int(f.score) >= ctx.h {
					hs.emitRow(i, f.col0+int32(i), f.score)
				}
				childNGR = append(childNGR, f)
			case phaseGap:
				p := pendingFGOE{col0: f.col0, row: int32(i), col: f.lo, v: f.score}
				ctx.mute = true
				ctx.seedBand(&f, i, f.lo, f.score, nil)
				ctx.mute = false
				childBands = append(childBands, f)
				childPendings = append(childPendings, p)
			}
		}
		for k, f := range bands {
			ctx.mute = true
			ctx.advanceBand(&f, deltaRow, i, nil)
			ctx.mute = false
			if f.phase == phaseDead {
				dying = append(dying, pendings[k])
				continue
			}
			childBands = append(childBands, f)
			childPendings = append(childPendings, pendings[k])
		}
		if len(dying) > 0 {
			// These regions' rows are fully determined by the current
			// path prefix: compute them now, once per death point.
			hs.verticals(i, dying)
		}
		if len(childNGR) > 0 || len(childBands) > 0 {
			hs.descend(child, childNGR, childBands, childPendings)
		}

		hs.nodes = hs.nodes[:len(hs.nodes)-1]
		hs.path = hs.path[:len(hs.path)-1]
		hs.pathCodes = hs.pathCodes[:len(hs.pathCodes)-1]
		hs.occs = hs.occs[:len(hs.occs)-1]
	}
	ctx.release(sc)
	if !descended && len(pendings) > 0 {
		// Trie leaf: the path cannot grow; finish the live regions.
		hs.verticals(node.Depth, pendings)
	}
}

// colData is one stored gap-region column: rows [loRow, loRow+len(m))
// with best scores m and horizontal-gap scores gb (negInf marks dead
// interior cells).
type colData struct {
	loRow int32
	m, gb []int32
}

// verticals runs calMatrixByColumn for the given FGOEs over the
// current path, grouping by FGOE row per Lemma 3 and reusing columns
// through the common-prefix tree.
func (hs *hybridState) verticals(depth int, pending []pendingFGOE) {
	byRow := make(map[int32][]pendingFGOE)
	for _, p := range pending {
		byRow[p.row] = append(byRow[p.row], p)
	}
	var rows []int32
	for r := range byRow {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a] < rows[b] })
	for _, r := range rows {
		group := byRow[r]
		sort.Slice(group, func(a, b int) bool { return group[a].col < group[b].col })
		hs.verticalGroup(depth, group)
	}
}

// verticalGroup processes one same-FGOE-row group of forks in column
// order with cross-fork column reuse.
func (hs *hybridState) verticalGroup(depth int, group []pendingFGOE) {
	ctx := hs.ctx
	tree := cptree.New(ctx.query)
	stored := make([][]colData, len(group))
	for w, p := range group {
		// Theorem 5: same-row FGOEs have equal scores. Reuse relies on
		// it; compute plainly if it ever failed.
		lcp, owner := tree.Insert(int(p.col-1), w)
		if p.v != group[0].v {
			lcp, owner = 0, -1
		}
		stored[w] = hs.verticalFork(depth, p, lcp, owner, stored)
	}
}

// verticalFork computes (or copies) the gap region of one fork column
// by column. lcp/owner describe how many leading columns can be copied
// from a previously processed fork in the same group.
func (hs *hybridState) verticalFork(depth int, p pendingFGOE, lcp, owner int, stored [][]colData) []colData {
	ctx := hs.ctx
	mq := int32(len(ctx.query))
	var cols []colData

	// Copy phase: Lemma 3 lets columns under the shared query prefix
	// be taken verbatim from the owner fork.
	if owner >= 0 {
		own := stored[owner]
		for d := 0; d < lcp && d < len(own); d++ {
			j := p.col + int32(d)
			if j > mq {
				return cols
			}
			src := own[d]
			cols = append(cols, src)
			for k, mv := range src.m {
				if mv > negInf {
					ctx.st.ReusedEntries++
					if int(mv) >= ctx.h {
						hs.emitRow(int(src.loRow)+k, j, mv)
					}
				}
			}
		}
		if len(own) < lcp && len(cols) == len(own) {
			// The owner's region died within the shared prefix; ours
			// dies at the same column (identical values).
			return cols
		}
	}

	// Compute phase: continue column by column until the region dies.
	for d := len(cols); ; d++ {
		j := p.col + int32(d)
		if j > mq {
			break
		}
		var prev *colData
		if d > 0 {
			prev = &cols[d-1]
		}
		col, any := hs.computeColumn(depth, p, j, prev)
		if !any {
			break
		}
		cols = append(cols, col)
	}
	return cols
}

// computeColumn evaluates one gap-region column j for fork p over the
// current path. prev is column j−1 (nil for the FGOE column itself).
func (hs *hybridState) computeColumn(depth int, p pendingFGOE, j int32, prev *colData) (colData, bool) {
	ctx := hs.ctx
	s := ctx.s
	open := int32(s.GapOpen + s.GapExtend)
	ext := int32(s.GapExtend)
	delta, mCols := ctx.delta, int32(len(ctx.query))

	prevAt := func(i int32) (m, gb int32) {
		if prev == nil {
			return negInf, negInf
		}
		k := i - prev.loRow
		if k < 0 || int(k) >= len(prev.m) {
			return negInf, negInf
		}
		return prev.m[k], prev.gb[k]
	}

	var outM, outGb []int32
	loRow := p.row
	firstAlive, lastAlive := int32(-1), int32(-1)
	gaCarry := negInf
	prevHi := p.row - 1
	if prev != nil {
		prevHi = prev.loRow + int32(len(prev.m)) - 1
	}
	maxRow := int32(depth)
	if int32(ctx.lmax) < maxRow {
		maxRow = int32(ctx.lmax)
	}

	for i := p.row; i <= maxRow; i++ {
		if i == p.row && prev == nil {
			// The FGOE cell itself: assigned from the horizontal
			// phase, not recalculated.
			outM = append(outM, p.v)
			outGb = append(outGb, negInf)
			firstAlive, lastAlive = i, i
			gaCarry = p.v + open
			if gaCarry <= 0 {
				gaCarry = negInf
			}
			if int(p.v) >= ctx.h {
				hs.emitRow(int(i), j, p.v)
			}
			continue
		}
		if i > prevHi+1 && gaCarry == negInf {
			break // no source can reach deeper rows
		}
		var diag, gbv int32 = negInf, negInf
		sources := 0
		if pm, _ := prevAt(i - 1); pm > negInf {
			diag = pm + delta[int32(hs.pathCodes[i-1])*mCols+j-1]
			sources++
		}
		if pm, pgb := prevAt(i); pm > negInf || pgb > negInf {
			if pgb > negInf {
				gbv = pgb + ext
			}
			if pm > negInf && pm+open > gbv {
				gbv = pm + open
			}
			sources++
		}
		if gaCarry > negInf {
			sources++
		}
		if sources == 0 {
			if firstAlive >= 0 {
				outM = append(outM, negInf)
				outGb = append(outGb, negInf)
			} else {
				loRow = i + 1
			}
			continue
		}
		mv := diag
		if gaCarry > mv {
			mv = gaCarry
		}
		if gbv > mv {
			mv = gbv
		}
		if sources >= 3 {
			ctx.st.EntriesInterior++
		} else {
			ctx.st.EntriesBoundary++
		}
		alive := mv > 0 && ctx.minGainOK(mv, int(i), j)
		if alive {
			if int(mv) >= ctx.h {
				hs.emitRow(int(i), j, mv)
			}
			if firstAlive < 0 {
				firstAlive = i
				loRow = i
			}
			lastAlive = i
			outM = append(outM, mv)
			outGb = append(outGb, gbv)
		} else if firstAlive >= 0 {
			outM = append(outM, negInf)
			outGb = append(outGb, negInf)
		} else {
			loRow = i + 1
		}
		// Vertical-gap carry to row i+1.
		ng := negInf
		if gaCarry > negInf {
			ng = gaCarry + ext
		}
		if alive && mv+open > ng {
			ng = mv + open
		}
		if ng <= 0 {
			ng = negInf
		}
		gaCarry = ng
	}
	if firstAlive < 0 {
		return colData{}, false
	}
	outM = outM[:lastAlive-loRow+1]
	outGb = outGb[:lastAlive-loRow+1]
	return colData{loRow: loRow, m: outM, gb: outGb}, true
}
