package core

import (
	"math/rand"
	"testing"

	"repro/internal/align"
)

// TestSearchParallelMatchesSequential is the scheduler's identity
// property: for both engine modes, any worker count produces exactly
// the sequential engine's hit set and the same work counters — the
// partition into fork families is identical, only the interleaving
// changes.
func TestSearchParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	s := align.DefaultDNA
	for _, mode := range []Mode{ModeDFS, ModeHybrid} {
		e := New(randDNA(4000, rng), Options{Mode: mode})
		for trial := 0; trial < 6; trial++ {
			query := randDNA(150+rng.Intn(250), rng)
			h := s.MinThreshold() + rng.Intn(8)

			seqC := align.NewCollector()
			seqSt, err := e.Search(query, s, h, seqC)
			if err != nil {
				t.Fatal(err)
			}
			want := seqC.Hits()

			for _, workers := range []int{0, 2, 3, 7} {
				parC := align.NewCollector()
				parSt, err := e.SearchParallel(query, s, h, parC, workers)
				if err != nil {
					t.Fatal(err)
				}
				if got := parC.Hits(); !align.EqualHits(got, want) {
					t.Fatalf("mode %v workers %d trial %d: %d hits vs %d sequential",
						mode, workers, trial, len(got), len(want))
				}
				if parSt.CalculatedEntries() != seqSt.CalculatedEntries() {
					t.Fatalf("mode %v workers %d trial %d: CalculatedEntries %d vs %d",
						mode, workers, trial, parSt.CalculatedEntries(), seqSt.CalculatedEntries())
				}
				if parSt.ForksStarted != seqSt.ForksStarted ||
					parSt.NodesVisited != seqSt.NodesVisited ||
					parSt.MaxDepth != seqSt.MaxDepth {
					t.Fatalf("mode %v workers %d trial %d: stats diverge: %+v vs %+v",
						mode, workers, trial, parSt, seqSt)
				}
			}
		}
	}
}

// TestSearchParallelGMatrixStaysSequential pins the safety rule: the
// order-dependent G-matrix filter must force one worker, and results
// must still match the sequential engine.
func TestSearchParallelGMatrixStaysSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(778))
	s := align.DefaultDNA
	e := New(randDNA(2000, rng), Options{EnableGMatrix: true})
	query := randDNA(200, rng)
	h := s.MinThreshold() + 4

	seqC := align.NewCollector()
	seqSt, err := e.Search(query, s, h, seqC)
	if err != nil {
		t.Fatal(err)
	}
	parC := align.NewCollector()
	parSt, err := e.SearchParallel(query, s, h, parC, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !align.EqualHits(parC.Hits(), seqC.Hits()) {
		t.Fatal("G-matrix parallel search diverged from sequential")
	}
	// The gram-cache counters record where resolution came from, not
	// work done, and legitimately differ between the cold first run and
	// the warm second; every work counter must be identical.
	parSt.GramCacheHits, parSt.GramCacheMisses = 0, 0
	seqSt.GramCacheHits, seqSt.GramCacheMisses = 0, 0
	if parSt != seqSt {
		t.Fatalf("G-matrix stats diverge: %+v vs %+v", parSt, seqSt)
	}
}
