package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/align"
)

// TestSearchParallelMatchesSequential is the scheduler's identity
// property: for both engine modes, any worker count produces exactly
// the sequential engine's hit set and the same work counters — the
// partition into fork families is identical, only the interleaving
// changes.
func TestSearchParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	s := align.DefaultDNA
	for _, mode := range []Mode{ModeDFS, ModeHybrid} {
		e := New(randDNA(4000, rng), Options{Mode: mode})
		for trial := 0; trial < 6; trial++ {
			query := randDNA(150+rng.Intn(250), rng)
			h := s.MinThreshold() + rng.Intn(8)

			seqC := align.NewCollector()
			seqSt, err := e.Search(query, s, h, seqC)
			if err != nil {
				t.Fatal(err)
			}
			want := seqC.Hits()

			for _, workers := range []int{0, 2, 3, 7} {
				parC := align.NewCollector()
				parSt, err := e.SearchParallel(query, s, h, parC, workers)
				if err != nil {
					t.Fatal(err)
				}
				if got := parC.Hits(); !align.EqualHits(got, want) {
					t.Fatalf("mode %v workers %d trial %d: %d hits vs %d sequential",
						mode, workers, trial, len(got), len(want))
				}
				if parSt.CalculatedEntries() != seqSt.CalculatedEntries() {
					t.Fatalf("mode %v workers %d trial %d: CalculatedEntries %d vs %d",
						mode, workers, trial, parSt.CalculatedEntries(), seqSt.CalculatedEntries())
				}
				if parSt.ForksStarted != seqSt.ForksStarted ||
					parSt.NodesVisited != seqSt.NodesVisited ||
					parSt.MaxDepth != seqSt.MaxDepth {
					t.Fatalf("mode %v workers %d trial %d: stats diverge: %+v vs %+v",
						mode, workers, trial, parSt, seqSt)
				}
			}
		}
	}
}

// TestSearchParallelGMatrixStaysSequential pins the safety rule: the
// order-dependent G-matrix filter must force one worker, and results
// must still match the sequential engine.
func TestSearchParallelGMatrixStaysSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(778))
	s := align.DefaultDNA
	e := New(randDNA(2000, rng), Options{EnableGMatrix: true})
	query := randDNA(200, rng)
	h := s.MinThreshold() + 4

	seqC := align.NewCollector()
	seqSt, err := e.Search(query, s, h, seqC)
	if err != nil {
		t.Fatal(err)
	}
	parC := align.NewCollector()
	parSt, err := e.SearchParallel(query, s, h, parC, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !align.EqualHits(parC.Hits(), seqC.Hits()) {
		t.Fatal("G-matrix parallel search diverged from sequential")
	}
	// The gram-cache counters record where resolution came from, not
	// work done, and legitimately differ between the cold first run and
	// the warm second; every work counter must be identical.
	parSt.GramCacheHits, parSt.GramCacheMisses = 0, 0
	seqSt.GramCacheHits, seqSt.GramCacheMisses = 0, 0
	if parSt != seqSt {
		t.Fatalf("G-matrix stats diverge: %+v vs %+v", parSt, seqSt)
	}
}

// synthFamilies builds a family list whose only meaningful content is
// the cost inputs (len(cols) and the node range) — enough to exercise
// the partitioner, which never looks at grams or entries.
func synthFamilies(costs []int64) []gramFamily {
	fams := make([]gramFamily, len(costs))
	for i, c := range costs {
		fams[i].cols = make([]int32, 1)
		fams[i].node.Hi = int(c)
	}
	return fams
}

// TestPartitionFamilies pins the partitioner's contract: the cuts
// cover the list exactly once in order, every lane is non-empty when
// k ≤ len(families), the cuts are deterministic, the lane costs are
// roughly balanced, and one giant family cannot starve the rest.
func TestPartitionFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(779))
	check := func(name string, costs []int64, k int) []int {
		t.Helper()
		fams := synthFamilies(costs)
		cuts := partitionFamilies(fams, k)
		if len(cuts) != k+1 || cuts[0] != 0 || cuts[k] != len(fams) {
			t.Fatalf("%s: cuts %v do not frame %d families in %d lanes", name, cuts, len(fams), k)
		}
		for w := 0; w < k; w++ {
			if cuts[w] > cuts[w+1] {
				t.Fatalf("%s: cuts %v are not monotone", name, cuts)
			}
			if k <= len(fams) && cuts[w] == cuts[w+1] {
				t.Fatalf("%s: lane %d of %d is empty (cuts %v)", name, w, k, cuts)
			}
		}
		again := partitionFamilies(fams, k)
		for i := range cuts {
			if cuts[i] != again[i] {
				t.Fatalf("%s: partition is not deterministic: %v vs %v", name, cuts, again)
			}
		}
		return cuts
	}

	for _, k := range []int{1, 2, 3, 7} {
		costs := make([]int64, 40)
		var total int64
		for i := range costs {
			costs[i] = int64(1 + rng.Intn(1000))
			total += costs[i]
		}
		cuts := check("random", costs, k)
		// No lane may carry more than a whole extra max-cost family
		// beyond the ideal share: the greedy cut overshoots by at most
		// half the family it keeps, and the tail lane absorbs the rest.
		var maxCost, maxLane int64
		for _, c := range costs {
			maxCost = max(maxCost, c)
		}
		for w := 0; w < k; w++ {
			var lane int64
			for i := cuts[w]; i < cuts[w+1]; i++ {
				lane += costs[i]
			}
			maxLane = max(maxLane, lane)
		}
		if limit := total/int64(k) + 2*maxCost; maxLane > limit {
			t.Fatalf("k=%d: heaviest lane %d exceeds balance bound %d (total %d)", k, maxLane, limit, total)
		}
	}

	// One family dwarfing all others: it takes a lane of its own and
	// every other lane still gets work.
	giant := []int64{5, 1 << 40, 3, 4, 2, 6, 1, 7}
	check("giant", giant, 4)

	// Degenerate shapes.
	check("fewer-than-lanes", []int64{9, 9}, 2)
	check("single", []int64{42}, 1)
	check("zero-cost", make([]int64, 10), 3)
}

// TestSearchLanesMatchesSequential pins the contract the store's
// shared-index scatter rides on: SearchLanes with any lane count
// produces the sequential engine's exact hit set and work counters —
// entries included — because each family is processed exactly once on
// exactly one lane.
func TestSearchLanesMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(780))
	s := align.DefaultDNA
	e := New(randDNA(4000, rng), Options{})
	ses := e.AcquireSession()
	defer ses.Release()
	for trial := 0; trial < 4; trial++ {
		query := randDNA(150+rng.Intn(250), rng)
		h := s.MinThreshold() + rng.Intn(8)

		seqC := align.NewCollector()
		seqSt, err := e.Search(query, s, h, seqC)
		if err != nil {
			t.Fatal(err)
		}
		want := seqC.Hits()

		for _, lanes := range []int{1, 2, 4, 9} {
			c := align.NewCollector()
			st, err := ses.SearchLanes(context.Background(), query, s, h, c, lanes)
			if err != nil {
				t.Fatal(err)
			}
			if got := c.Hits(); !align.EqualHits(got, want) {
				t.Fatalf("lanes %d trial %d: %d hits vs %d sequential", lanes, trial, len(got), len(want))
			}
			if st.CalculatedEntries() != seqSt.CalculatedEntries() ||
				st.ForksStarted != seqSt.ForksStarted ||
				st.NodesVisited != seqSt.NodesVisited {
				t.Fatalf("lanes %d trial %d: stats diverge: %+v vs %+v", lanes, trial, st, seqSt)
			}
		}
	}
}
