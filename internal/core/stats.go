package core

// Stats accounts for the work one ALAE search performs, at the
// granularity the paper's evaluation reports (§7.2, Tables 4-5,
// Figures 7 and 10).
//
// Entry classes follow the paper's cost model:
//   - EMR entries are assigned, not calculated ("these scores could be
//     assigned without any calculation", §3.1.3/§4.3) — cost 0;
//   - NGR entries use the gap-free recurrence of Equation 3 — cost 1;
//   - fork-boundary entries rely on two adjacent entries — cost 2;
//   - interior gap-region entries need all three recurrences — cost 3.
type Stats struct {
	EntriesEMR      int64 // assigned exact-match-region entries
	EntriesNGR      int64 // calculated no-gap-region entries (cost 1)
	EntriesBoundary int64 // calculated gap-region boundary entries (cost 2)
	EntriesInterior int64 // calculated gap-region interior entries (cost 3)
	ReusedEntries   int64 // entries copied from previous forks (§4)

	ForksConsidered      int64 // q-gram matches examined
	ForksAbsent          int64 // pruned: q-prefix absent from the text (Theorem 3)
	ForksDominated       int64 // pruned: q-prefix domination (Lemma 1)
	ForksGMatrixFiltered int64 // pruned: boolean-matrix global filter (Theorem 4)
	ForksStarted         int64 // forks that produced a fork area

	GramCacheHits   int64 // distinct grams resolved from the cross-query cache
	GramCacheMisses int64 // distinct grams resolved by trie walk (and published)

	// NodesVisited counts emulated suffix-trie nodes entered with live
	// alignment state: the gram node of every started family plus each
	// descendant whose row retained at least one live diagonal or band
	// cell after the advance into it. The branching walk (dfsWalk), the
	// width-1 LF walk (dfsLinear) and the hybrid descent all count by
	// this one rule, so the diagnostic is comparable across engine
	// modes and does not depend on where the linear handoff fires.
	NodesVisited int64
	MaxDepth     int // deepest row reached
	Threshold    int // the score threshold H in force
	Q            int // the q-prefix length in force
	Lmax         int // the length-filter bound in force

	// Emission-path accounting (emit.go, hybrid.go). EmittedHits counts
	// the occurrence-resolved (tEnd, qEnd) cells forwarded to the
	// collector; SuppressedEmissions counts the cells the diagonal
	// dominance filter dropped as provable collector no-ops;
	// CopiedEmissions counts the cells the hybrid vertical phase
	// skipped because an earlier sibling branch already forwarded the
	// identical cell (the emitted watermark, hybrid.go). Their sum is
	// the total emission fan-out, and all three are invariant under
	// parallel scheduling (the dominance filter is re-armed and the
	// watermark is path-structured per fork family).
	EmittedHits         int64
	SuppressedEmissions int64
	CopiedEmissions     int64
}

// CalculatedEntries is the number of DP cells ALAE actually computed
// (the quantity bounded by §6 and compared against BWT-SW).
func (st Stats) CalculatedEntries() int64 {
	return st.EntriesNGR + st.EntriesBoundary + st.EntriesInterior
}

// AccessedEntries is calculated plus reused entries, the denominator
// of the paper's reusing ratio (Equation 6).
func (st Stats) AccessedEntries() int64 {
	return st.CalculatedEntries() + st.ReusedEntries
}

// ReusingRatio is Equation 6: reused / accessed.
func (st Stats) ReusingRatio() float64 {
	if a := st.AccessedEntries(); a > 0 {
		return float64(st.ReusedEntries) / float64(a)
	}
	return 0
}

// ComputationCost is the weighted cost of §7.2's Table 4: one unit per
// NGR entry, two per boundary entry, three per interior entry.
func (st Stats) ComputationCost() int64 {
	return st.EntriesNGR + 2*st.EntriesBoundary + 3*st.EntriesInterior
}

// Add accumulates another search's statistics into st, for workload
// aggregation.
func (st *Stats) Add(other Stats) {
	st.EntriesEMR += other.EntriesEMR
	st.EntriesNGR += other.EntriesNGR
	st.EntriesBoundary += other.EntriesBoundary
	st.EntriesInterior += other.EntriesInterior
	st.ReusedEntries += other.ReusedEntries
	st.ForksConsidered += other.ForksConsidered
	st.ForksAbsent += other.ForksAbsent
	st.ForksDominated += other.ForksDominated
	st.ForksGMatrixFiltered += other.ForksGMatrixFiltered
	st.ForksStarted += other.ForksStarted
	st.GramCacheHits += other.GramCacheHits
	st.GramCacheMisses += other.GramCacheMisses
	st.NodesVisited += other.NodesVisited
	st.EmittedHits += other.EmittedHits
	st.SuppressedEmissions += other.SuppressedEmissions
	st.CopiedEmissions += other.CopiedEmissions
	if other.MaxDepth > st.MaxDepth {
		st.MaxDepth = other.MaxDepth
	}
	st.Threshold = other.Threshold
	st.Q = other.Q
	st.Lmax = other.Lmax
}
