package core

import "fmt"

// gMatrix is the online boolean matrix G of §3.2.1: G(πt, πp) = 1 when
// an already-processed matrix established A(πt, πp).score ≥ sa. A fork
// whose every occurrence is already covered at its starting column is
// meaningless (Theorem 4, case 2), which the paper checks with bitwise
// AND between a column of G and the occurrence vector z; marking is
// the corresponding bitwise OR.
//
// Storage is column-major bitsets over text positions, allocated per
// column on first touch. The paper notes this structure "requires
// n × m space ... which is space consuming especially when both the
// lengths of the text and the query are large" — that observation is
// what motivates q-prefix domination — so a hard byte cap protects
// callers.
type gMatrix struct {
	n       int
	cols    [][]uint64
	words   int
	used    int
	maxByte int
}

func newGMatrix(n, m, maxBytes int) (*gMatrix, error) {
	words := (n + 63) / 64
	// The worst case must fit under the cap up front so a search
	// cannot die halfway through.
	if worst := words * 8 * m; worst > maxBytes {
		return nil, fmt.Errorf("core: G matrix needs up to %d bytes for n=%d, m=%d (cap %d); use domination filtering instead",
			worst, n, m, maxBytes)
	}
	return &gMatrix{n: n, cols: make([][]uint64, m), words: words, maxByte: maxBytes}, nil
}

// covered reports whether every occurrence position is already marked
// at 0-based query column col — the bitwise-AND test of §3.2.1.
func (g *gMatrix) covered(col int, occ []int) bool {
	bits := g.cols[col]
	if bits == nil {
		return false
	}
	for _, t := range occ {
		if bits[t/64]&(1<<(uint(t)%64)) == 0 {
			return false
		}
	}
	return true
}

// markEMR records the exact-match-region diagonal of a fork being
// processed: for each occurrence t and row i ∈ [1, q], the alignment
// ending at (t+i−1, col+i−1) scores i·sa ≥ sa.
func (g *gMatrix) markEMR(col, q int, occ []int) {
	for i := 0; i < q; i++ {
		c := col + i
		if c >= len(g.cols) {
			break
		}
		bits := g.cols[c]
		if bits == nil {
			bits = make([]uint64, g.words)
			g.cols[c] = bits
			g.used += g.words * 8
		}
		for _, t := range occ {
			row := t + i
			if row < g.n {
				bits[row/64] |= 1 << (uint(row) % 64)
			}
		}
	}
}

// SizeBytes reports the current allocation.
func (g *gMatrix) SizeBytes() int { return g.used }
