package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/align"
)

// alaeInput is a randomized problem instance for property testing.
type alaeInput struct {
	Text  []byte
	Query []byte
	HOff  uint8 // threshold offset above the exactness floor
	Plant bool  // copy a slice of the text into the query
	Mode  bool  // hybrid when true
}

// Generate implements quick.Generator, producing DNA instances with
// planted homology half of the time so that hits actually occur.
func (alaeInput) Generate(r *rand.Rand, _ int) reflect.Value {
	letters := []byte("ACGT")
	n := 10 + r.Intn(120)
	m := 6 + r.Intn(60)
	in := alaeInput{
		Text:  make([]byte, n),
		Query: make([]byte, m),
		HOff:  uint8(r.Intn(8)),
		Plant: r.Intn(2) == 0,
		Mode:  r.Intn(2) == 0,
	}
	for i := range in.Text {
		in.Text[i] = letters[r.Intn(4)]
	}
	for i := range in.Query {
		in.Query[i] = letters[r.Intn(4)]
	}
	if in.Plant && n > 12 && m > 8 {
		l := min(m-4, n-5)
		copy(in.Query[2:], in.Text[3:3+l])
		// Sprinkle mutations so gapped paths matter.
		for k := 0; k < l/8; k++ {
			in.Query[2+r.Intn(l)] = letters[r.Intn(4)]
		}
	}
	return reflect.ValueOf(in)
}

// TestPropertyExactness is the repository's load-bearing invariant:
// for any input, ALAE's hit set equals the full Smith-Waterman sweep.
func TestPropertyExactness(t *testing.T) {
	s := align.DefaultDNA
	f := func(in alaeInput) bool {
		h := s.MinThreshold() + int(in.HOff)
		opts := Options{}
		if in.Mode {
			opts.Mode = ModeHybrid
		}
		e := New(in.Text, opts)
		c := align.NewCollector()
		if _, err := e.Search(in.Query, s, h, c); err != nil {
			return false
		}
		return align.EqualHits(c.Hits(), align.LocalAll(in.Text, in.Query, s, h))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEnginesAgree checks DFS and Hybrid give identical hits
// and that hybrid's accessed-entry accounting is self-consistent.
func TestPropertyEnginesAgree(t *testing.T) {
	s := align.DefaultDNA
	f := func(in alaeInput) bool {
		h := s.MinThreshold() + int(in.HOff)
		cDFS := align.NewCollector()
		eDFS := New(in.Text, Options{})
		if _, err := eDFS.Search(in.Query, s, h, cDFS); err != nil {
			return false
		}
		cHyb := align.NewCollector()
		eHyb := New(in.Text, Options{Mode: ModeHybrid})
		stHyb, err := eHyb.Search(in.Query, s, h, cHyb)
		if err != nil {
			return false
		}
		if stHyb.AccessedEntries() != stHyb.CalculatedEntries()+stHyb.ReusedEntries {
			return false
		}
		return align.EqualHits(cDFS.Hits(), cHyb.Hits())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}
