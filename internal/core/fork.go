package core

import (
	"repro/internal/align"
	"repro/internal/strie"
)

const negInf = int32(-1) << 28

// forkPhase distinguishes the two lives of a fork (§3.1.3): on the
// exact-match/no-gap diagonal, or inside the gap region entered at the
// first gap-open entry.
type forkPhase uint8

const (
	phaseNGR forkPhase = iota
	phaseGap
	phaseDead
)

// fork is the per-fork DP state carried before the row-q merge and
// through the hybrid engine's traversal. In phaseNGR only the diagonal
// score is live. In phaseGap the state is the current row of the
// fork's gap-region band: columns [lo, lo+len(m)) (1-based query
// columns) with best scores m and vertical-gap scores ga; dead
// interior cells hold negInf. The band storage is either fork-owned
// (the initial forks of a gram, element-wise reused from the
// workspace) or a view into a per-level band slab (the hybrid
// descent); in both cases writes go to fresh storage, never through
// the views, so copied forks stay safe. (The DFS walk carries the
// leaner ngrFork instead — see dfs.go.)
type fork struct {
	col0  int32 // 0-based query position of the q-prefix match
	phase forkPhase
	score int32 // NGR diagonal score (phaseNGR only)

	lo     int32
	m, ga  []int32
	fgoeAt int32 // row of the FGOE, for diagnostics and hybrid grouping
}

// bandPair is a structure-of-arrays run of band cells without the
// column array of bandTriple: a hybrid fork band is a contiguous
// column run [lo, lo+len(m)), so only the best scores M and one gap
// dimension need storing. Used both as the per-level band slab of the
// hybrid descent and as ping-pong scratch.
type bandPair struct {
	m, ga []int32
}

func (b *bandPair) len() int { return len(b.m) }

func (b *bandPair) reset() { b.truncate(0) }

func (b *bandPair) truncate(n int) { b.m, b.ga = b.m[:n], b.ga[:n] }

func (b *bandPair) push(m, ga int32) {
	b.m = append(b.m, m)
	b.ga = append(b.ga, ga)
}

// emitCtx reports cells whose score reaches the threshold: each is
// fanned out to every occurrence of the current path node. A nil
// *emitCtx disables emission (used where it is provably impossible or
// handled elsewhere). Cells accumulate in a per-context staging buffer
// as row runs and only reach the collector on flush (emit.go), so a
// contiguous emitting stretch costs one append per cell plus one
// batched AddRun per occurrence, not one table probe per cell per
// occurrence. All position resolution is lazy and buffered: node mode
// locates the occurrence list once per flush into a retained buffer,
// and lazy-linear mode (single-occurrence LF walks) resolves the
// path's text position only if a cell actually reaches the threshold —
// paths that die silently never pay a locate.
//
// Staged runs must never outlive their tenant: reset and
// resetLinearLazy flush the previous tenant's runs before rebinding,
// and the traversals flush explicitly wherever an emit context's node
// goes out of scope without a rebind (frame pop, dead or depth-capped
// child edges, linear-walk end).
type emitCtx struct {
	ctx    *searchCtx
	node   strie.Node
	occ    []int // located occurrences; nil until first flush
	buf    []int // retained locate buffer backing occ
	fixedT int   // ≥0 known single occurrence; -1 node mode; lazyT lazy-linear mode
	linRow int   // lazy-linear: suffix-array row of the current path node
	linDep int   // lazy-linear: its depth
	stage  align.RunStage
}

// lazyT marks a lazy-linear emitCtx whose path position is not yet
// resolved.
const lazyT = -2

func (e *emitCtx) reset(ctx *searchCtx, node strie.Node) {
	e.flush()
	e.ctx, e.node, e.occ, e.fixedT = ctx, node, nil, -1
}

// resetLinearLazy prepares emission for a width-one LF walk: the
// path's text position is resolved from (linRow, linDep) on the first
// emit, if any.
func (e *emitCtx) resetLinearLazy(ctx *searchCtx) {
	e.flush()
	e.ctx, e.occ, e.fixedT = ctx, nil, lazyT
}

// emit stages a hit at matrix row i (== e.node.Depth), 1-based query
// column j. Lazy-linear position resolution happens here — not at
// flush — so the caller's walk can switch to direct text reads as soon
// as anything emits, exactly as the unstaged path did.
func (e *emitCtx) emit(i int, j int32, score int32) {
	if e == nil {
		return
	}
	if e.fixedT == lazyT {
		e.fixedT = e.ctx.e.trie.PathOccurrence(strie.Node{Lo: e.linRow, Hi: e.linRow + 1, Depth: e.linDep})
	}
	if !e.stage.Stage(int32(i), j, score) {
		e.flush()
		e.stage.Stage(int32(i), j, score)
	}
}

// flush drains the staged runs to the collector: occurrences are
// resolved once, and each run goes through the dominance filter and
// the block-batched AddRun (emit.go).
func (e *emitCtx) flush() {
	if e.stage.Empty() {
		return
	}
	ctx := e.ctx
	cells := e.stage.Cells()
	if e.fixedT >= 0 {
		for _, r := range e.stage.Runs() {
			ctx.forwardRun(e.fixedT+int(r.Row)-1, int(r.J0)-1, cells[r.Off:r.Off+r.N])
		}
	} else {
		if e.occ == nil {
			e.buf = ctx.e.trie.OccurrencesAppend(e.node, e.buf[:0])
			e.occ = e.buf
		}
		for _, r := range e.stage.Runs() {
			run := cells[r.Off : r.Off+r.N]
			for _, t := range e.occ {
				ctx.forwardRun(t+int(r.Row)-1, int(r.J0)-1, run)
			}
		}
	}
	e.stage.Reset()
}

// newForkInto initialises f for a q-prefix match at 0-based query
// position col0, reusing f's band storage. Rows 1..q are the EMR with
// assigned scores i·sa (counted as EntriesEMR by the caller). If the
// EMR diagonal already crosses |sg+ss| before row q — possible when
// q·sa > |sg+ss|, e.g. scheme ⟨4,−5,−5,−2⟩ — the fork enters its gap
// phase inside the EMR and the band is advanced through the remaining
// gram rows here, ping-ponging between the workspace scratch rows and
// landing in the fork's own storage. Emission is a no-op during those
// rows: any gap-region cell at row i ≤ q scores at most i·sa − |sg+ss|
// ≤ sa < MinThreshold ≤ H.
func (ctx *searchCtx) newForkInto(f *fork, col0 int32, gram []byte) {
	q := len(gram)
	sa := int32(ctx.s.Match)
	f.col0, f.phase, f.score = col0, phaseNGR, int32(q)*sa
	f.lo, f.fgoeAt = 0, 0
	f.m, f.ga = f.m[:0], f.ga[:0]
	if int(f.score) <= ctx.gOpen {
		return
	}
	// FGOE inside the EMR: the first row whose assigned score exceeds
	// |sg+ss|.
	ws := ctx.ws
	l := ctx.gOpen/ctx.s.Match + 1
	cur := &ws.hb[0]
	cur.reset()
	ctx.seedBandInto(l, col0+int32(l), int32(l)*sa, nil, cur)
	f.phase, f.fgoeAt, f.lo = phaseGap, int32(l), col0+int32(l)
	fm := ctx.e.trie.Index()
	curIdx := 0
	for row := l + 1; row <= q; row++ {
		out := &ws.hb[1-curIdx]
		out.reset()
		newLo, n := ctx.advanceBandInto(f.lo, cur.m, cur.ga, ctx.deltaRow(fm.CodeOf(gram[row-1])), row, nil, out)
		if n == 0 {
			f.phase = phaseDead
			return
		}
		f.lo = newLo
		curIdx = 1 - curIdx
		cur = out
	}
	f.m = append(f.m[:0], cur.m...)
	f.ga = append(f.ga[:0], cur.ga...)
}

// seedBandInto appends the band row a fork enters its gap phase with —
// the FGOE cell (l, c) with score v plus its horizontal extension run,
// the paper's extension entry (l, πp+l) and its Gb continuation:
// M(l, c+d) = v + sg + d·ss while alive — to out, returning the cell
// count. (The downward extension entry (l+1, πp+l−1) falls out of the
// next advanceBandInto.) The caller owns the fork bookkeeping (phase,
// fgoeAt, lo, band views).
func (ctx *searchCtx) seedBandInto(l int, c, v int32, emit *emitCtx, out *bandPair) int {
	start := out.len()
	out.push(v, negInf)
	if int(v) >= ctx.h {
		emit.emit(l, c, v)
	}
	mq := int32(len(ctx.query))
	open := int32(ctx.s.GapOpen + ctx.s.GapExtend)
	ext := int32(ctx.s.GapExtend)
	rowB := ctx.rowBound(l)
	colBound := ctx.colBound
	var boundary int64
	gb := v + open
	for j := c + 1; j <= mq && gb > 0; j++ {
		boundary++
		if gb < rowB || gb < colBound[j-1] {
			break
		}
		if int(gb) >= ctx.h {
			emit.emit(l, j, gb)
		}
		out.push(gb, negInf)
		gb += ext
	}
	if !ctx.mute {
		ctx.st.EntriesBoundary += boundary
	}
	return out.len() - start
}

// stepNGR advances an NGR fork by one row whose edge letter has δ row
// deltaRow. At the FGOE it marks the fork phaseGap with lo/fgoeAt set
// but does NOT build the band: the caller must invoke seedBandInto (it
// owns the emitter, the mute policy and the band storage).
func (ctx *searchCtx) stepNGR(f *fork, deltaRow []int32, i int) {
	j := f.col0 + int32(i) // 1-based diagonal column
	if int(j) > len(ctx.query) {
		f.phase = phaseDead
		return
	}
	ctx.st.EntriesNGR++
	f.score += deltaRow[j-1]
	if f.score <= 0 || !ctx.minGainOK(f.score, i, j) {
		f.phase = phaseDead
		return
	}
	if int(f.score) > ctx.gOpen {
		// First gap-open entry reached.
		f.phase = phaseGap
		f.fgoeAt = int32(i)
		f.lo = j
	}
}

// advanceBandInto computes row i of a gap-phase fork's band — columns
// [inLo, inLo+len(inM)) with best scores inM and vertical-gap scores
// inGa, dead interior cells negInf — appending the surviving run to
// out and returning its first column and cell count (0 cells = the
// band died). Entry counting follows the paper's cost model (boundary
// = two adjacent sources, interior = three) and cells at or above the
// threshold emit. The caller owns the fork bookkeeping; input and
// output storage must not alias (the callers hand distinct scratch
// rows or slab levels).
func (ctx *searchCtx) advanceBandInto(inLo int32, inM, inGa []int32, deltaRow []int32, i int, emit *emitCtx, out *bandPair) (outLo int32, n int) {
	s := ctx.s
	open := int32(s.GapOpen + s.GapExtend)
	ext := int32(s.GapExtend)
	mq := int32(len(ctx.query))

	inHi := inLo + int32(len(inM)) - 1
	start := out.len()
	firstAlive, lastAlive := int32(-1), int32(-1)
	rowB := ctx.rowBound(i)
	colBound := ctx.colBound
	var interior, boundary int64

	gb := negInf
	for j := inLo; j <= mq; j++ {
		diag, ga := negInf, negInf
		sources := 0
		if k := j - 1 - inLo; k >= 0 && j-1 <= inHi && inM[k] > negInf {
			diag = inM[k] + deltaRow[j-1]
			sources++
		}
		if k := j - inLo; k >= 0 && j <= inHi {
			if inM[k] > negInf {
				ga = inM[k] + open
				sources++
			}
			if g := inGa[k]; g > negInf && g+ext > ga {
				ga = g + ext
				if sources == 0 {
					sources++
				}
			}
		}
		if gb > negInf {
			sources++
		}
		if sources == 0 {
			// Nothing can make this or any further cell alive.
			if j > inHi {
				break
			}
			if firstAlive >= 0 {
				out.push(negInf, negInf)
			}
			continue
		}
		mv := diag
		if ga > mv {
			mv = ga
		}
		if gb > mv {
			mv = gb
		}
		// Cost accounting: boundary cells miss at least one of the
		// three recurrence inputs. Hybrid mode advances bands purely
		// as liveness oracles and counts gap-region work in its
		// vertical phase instead (ctx.mute).
		if sources >= 3 {
			interior++
		} else {
			boundary++
		}
		alive := mv > 0 && mv >= rowB && mv >= colBound[j-1]
		if alive {
			if int(mv) >= ctx.h {
				emit.emit(i, j, mv)
			}
			if firstAlive < 0 {
				firstAlive = j
			}
			lastAlive = j
			out.push(mv, ga)
		} else if firstAlive >= 0 {
			out.push(negInf, negInf)
		}
		// Horizontal-gap carry to column j+1.
		ng := negInf
		if gb > negInf {
			ng = gb + ext
		}
		if alive && mv+open > ng {
			ng = mv + open
		}
		if ng <= 0 {
			ng = negInf
		}
		gb = ng
	}
	if !ctx.mute {
		ctx.st.EntriesInterior += interior
		ctx.st.EntriesBoundary += boundary
	}
	if firstAlive < 0 {
		out.truncate(start)
		return 0, 0
	}
	// Trim trailing dead cells.
	n = int(lastAlive - firstAlive + 1)
	out.truncate(start + n)
	return firstAlive, n
}
