package core

import "repro/internal/strie"

const negInf = int32(-1) << 28

// forkPhase distinguishes the two lives of a fork (§3.1.3): on the
// exact-match/no-gap diagonal, or inside the gap region entered at the
// first gap-open entry.
type forkPhase uint8

const (
	phaseNGR forkPhase = iota
	phaseGap
	phaseDead
)

// fork is the per-fork DP state carried before the row-q merge and
// through the hybrid engine's traversal. In phaseNGR only the diagonal
// score is live. In phaseGap the state is the current row of the
// fork's gap-region band: columns [lo, lo+len(m)) (1-based query
// columns) with best scores m and vertical-gap scores ga; dead
// interior cells hold negInf. (The DFS walk carries the leaner ngrFork
// instead — see dfs.go.)
type fork struct {
	col0  int32 // 0-based query position of the q-prefix match
	phase forkPhase
	score int32 // NGR diagonal score (phaseNGR only)

	lo     int32
	m, ga  []int32
	fgoeAt int32 // row of the FGOE, for diagnostics and hybrid grouping
}

// emitCtx reports cells whose score reaches the threshold: each is
// fanned out to every occurrence of the current path node. A nil
// *emitCtx disables emission (used where it is provably impossible or
// handled elsewhere). All position resolution is lazy and buffered:
// node mode locates the occurrence list once per node into a retained
// buffer, and lazy-linear mode (single-occurrence LF walks) resolves
// the path's text position only if a cell actually reaches the
// threshold — paths that die silently never pay a locate.
type emitCtx struct {
	ctx    *searchCtx
	node   strie.Node
	occ    []int // located occurrences; nil until first emit
	buf    []int // retained locate buffer backing occ
	fixedT int   // ≥0 known single occurrence; -1 node mode; lazyT lazy-linear mode
	linRow int   // lazy-linear: suffix-array row of the current path node
	linDep int   // lazy-linear: its depth
}

// lazyT marks a lazy-linear emitCtx whose path position is not yet
// resolved.
const lazyT = -2

func (e *emitCtx) reset(ctx *searchCtx, node strie.Node) {
	e.ctx, e.node, e.occ, e.fixedT = ctx, node, nil, -1
}

// resetLinearLazy prepares emission for a width-one LF walk: the
// path's text position is resolved from (linRow, linDep) on the first
// emit, if any.
func (e *emitCtx) resetLinearLazy(ctx *searchCtx) {
	e.ctx, e.occ, e.fixedT = ctx, nil, lazyT
}

// emit reports a hit at matrix row i (== e.node.Depth), 1-based query
// column j.
func (e *emitCtx) emit(i int, j int32, score int32) {
	if e == nil {
		return
	}
	if e.fixedT == lazyT {
		e.fixedT = e.ctx.e.trie.PathOccurrence(strie.Node{Lo: e.linRow, Hi: e.linRow + 1, Depth: e.linDep})
	}
	if e.fixedT >= 0 {
		e.ctx.c.Add(e.fixedT+i-1, int(j)-1, int(score))
		return
	}
	if e.occ == nil {
		e.buf = e.ctx.e.trie.OccurrencesAppend(e.node, e.buf[:0])
		e.occ = e.buf
	}
	for _, t := range e.occ {
		e.ctx.c.Add(t+i-1, int(j)-1, int(score))
	}
}

// newFork creates the fork for a q-prefix match at 0-based query
// position col0 (allocating form, used by the hybrid engine).
func (ctx *searchCtx) newFork(col0 int32, gram []byte) fork {
	var f fork
	ctx.newForkInto(&f, col0, gram)
	return f
}

// newForkInto initialises f for a q-prefix match at 0-based query
// position col0, reusing f's band storage. Rows 1..q are the EMR with
// assigned scores i·sa (counted as EntriesEMR by the caller). If the
// EMR diagonal already crosses |sg+ss| before row q — possible when
// q·sa > |sg+ss|, e.g. scheme ⟨4,−5,−5,−2⟩ — the fork enters its gap
// phase inside the EMR and the band is advanced through the remaining
// gram rows here. Emission is a no-op during those rows: any
// gap-region cell at row i ≤ q scores at most i·sa − |sg+ss| ≤ sa <
// MinThreshold ≤ H.
func (ctx *searchCtx) newForkInto(f *fork, col0 int32, gram []byte) {
	q := len(gram)
	sa := int32(ctx.s.Match)
	f.col0, f.phase, f.score = col0, phaseNGR, int32(q)*sa
	f.lo, f.fgoeAt = 0, 0
	f.m, f.ga = f.m[:0], f.ga[:0]
	if int(f.score) <= ctx.gOpen {
		return
	}
	// FGOE inside the EMR: the first row whose assigned score exceeds
	// |sg+ss|.
	l := ctx.gOpen/ctx.s.Match + 1
	ctx.seedBand(f, l, col0+int32(l), int32(l)*sa, nil)
	fm := ctx.e.trie.Index()
	for row := l + 1; row <= q && f.phase == phaseGap; row++ {
		ctx.advanceBand(f, ctx.deltaRow(fm.CodeOf(gram[row-1])), row, nil)
	}
}

// seedBand switches a fork into its gap phase at the FGOE (l, c) with
// score v. The band's first row is the FGOE cell plus its horizontal
// extension run — the paper's extension entry (l, πp+l) and its Gb
// continuation: M(l, c+d) = v + sg + d·ss while alive. (The downward
// extension entry (l+1, πp+l−1) falls out of the next advanceBand.)
func (ctx *searchCtx) seedBand(f *fork, l int, c, v int32, emit *emitCtx) {
	f.phase = phaseGap
	f.fgoeAt = int32(l)
	f.lo = c
	f.m = append(f.m[:0], v)
	f.ga = append(f.ga[:0], negInf)
	if int(v) >= ctx.h {
		emit.emit(l, c, v)
	}
	mq := int32(len(ctx.query))
	open := int32(ctx.s.GapOpen + ctx.s.GapExtend)
	ext := int32(ctx.s.GapExtend)
	gb := v + open
	for j := c + 1; j <= mq && gb > 0; j++ {
		if !ctx.mute {
			ctx.st.EntriesBoundary++
		}
		if !ctx.minGainOK(gb, l, j) {
			break
		}
		if int(gb) >= ctx.h {
			emit.emit(l, j, gb)
		}
		f.m = append(f.m, gb)
		f.ga = append(f.ga, negInf)
		gb += ext
	}
}

// stepNGR advances an NGR fork by one row whose edge letter has δ row
// deltaRow. At the FGOE it marks the fork phaseGap with lo/fgoeAt set
// but does NOT build the band: the caller must invoke seedBand (it
// owns the emitter and the mute policy).
func (ctx *searchCtx) stepNGR(f *fork, deltaRow []int32, i int) {
	j := f.col0 + int32(i) // 1-based diagonal column
	if int(j) > len(ctx.query) {
		f.phase = phaseDead
		return
	}
	ctx.st.EntriesNGR++
	f.score += deltaRow[j-1]
	if f.score <= 0 || !ctx.minGainOK(f.score, i, j) {
		f.phase = phaseDead
		return
	}
	if int(f.score) > ctx.gOpen {
		// First gap-open entry reached.
		f.phase = phaseGap
		f.fgoeAt = int32(i)
		f.lo = j
	}
}

// advanceBand computes row i of a gap-phase fork's band from row i−1
// with the edge letter's δ row, counting entries per the paper's cost
// model (boundary = two adjacent sources, interior = three) and
// emitting cells at or above the threshold. It is the hybrid engine's
// liveness oracle (and the rare pre-q band of newForkInto); the DFS
// engine's merged band uses advanceMergedBand instead.
func (ctx *searchCtx) advanceBand(f *fork, deltaRow []int32, i int, emit *emitCtx) {
	s := ctx.s
	open := int32(s.GapOpen + s.GapExtend)
	ext := int32(s.GapExtend)
	mq := int32(len(ctx.query))

	inLo := f.lo
	inHi := f.lo + int32(len(f.m)) - 1
	var outM, outGa []int32
	outLo := int32(0)
	firstAlive, lastAlive := int32(-1), int32(-1)

	gb := negInf
	for j := inLo; j <= mq; j++ {
		diag, ga := negInf, negInf
		sources := 0
		if k := j - 1 - inLo; k >= 0 && j-1 <= inHi && f.m[k] > negInf {
			diag = f.m[k] + deltaRow[j-1]
			sources++
		}
		if k := j - inLo; k >= 0 && j <= inHi {
			if f.m[k] > negInf {
				ga = f.m[k] + open
				sources++
			}
			if g := f.ga[k]; g > negInf && g+ext > ga {
				ga = g + ext
				if sources == 0 {
					sources++
				}
			}
		}
		if gb > negInf {
			sources++
		}
		if sources == 0 {
			// Nothing can make this or any further cell alive.
			if j > inHi {
				break
			}
			if firstAlive >= 0 {
				outM = append(outM, negInf)
				outGa = append(outGa, negInf)
			}
			continue
		}
		mv := diag
		if ga > mv {
			mv = ga
		}
		if gb > mv {
			mv = gb
		}
		// Cost accounting: boundary cells miss at least one of the
		// three recurrence inputs. Hybrid mode advances bands purely
		// as liveness oracles and counts gap-region work in its
		// vertical phase instead (ctx.mute).
		if !ctx.mute {
			if sources >= 3 {
				ctx.st.EntriesInterior++
			} else {
				ctx.st.EntriesBoundary++
			}
		}
		alive := mv > 0 && ctx.minGainOK(mv, i, j)
		if alive {
			if int(mv) >= ctx.h {
				emit.emit(i, j, mv)
			}
			if firstAlive < 0 {
				firstAlive = j
				outLo = j
			}
			lastAlive = j
			outM = append(outM, mv)
			outGa = append(outGa, ga)
		} else if firstAlive >= 0 {
			outM = append(outM, negInf)
			outGa = append(outGa, negInf)
		}
		// Horizontal-gap carry to column j+1.
		ng := negInf
		if gb > negInf {
			ng = gb + ext
		}
		if alive && mv+open > ng {
			ng = mv + open
		}
		if ng <= 0 {
			ng = negInf
		}
		gb = ng
	}
	if firstAlive < 0 {
		f.phase = phaseDead
		f.m, f.ga = f.m[:0], f.ga[:0]
		return
	}
	// Trim trailing dead cells.
	outM = outM[:lastAlive-outLo+1]
	outGa = outGa[:lastAlive-outLo+1]
	f.lo = outLo
	f.m = outM
	f.ga = outGa
}
