package core

import (
	"repro/internal/qgram"
	"repro/internal/strie"
)

// Prefix-shared gram resolution. The naive family pipeline re-walks
// every distinct q-gram from the trie root — q backward-search steps
// per gram — even though sorted grams share long prefixes. Resolution
// instead keeps a stack of trie nodes for the prefixes of the most
// recently walked gram and only runs backward-search steps for each
// gram's non-shared suffix, the §5 shared-structure principle applied
// to the grams themselves. Absent grams (Theorem 3's cheapest prune)
// die here, before the scheduler ever sees them, and a prefix known to
// be absent kills every later gram that still shares it without a
// single further index probe.
//
// On top of the walk sits the engine's cross-query gram cache (see
// gramcache.go): a gram whose packed key is cached skips the walk
// entirely, and a miss publishes its resolution for every later query
// over the same index. The walk state (node stack, last walked gram,
// failed-prefix mark) only ever advances on misses, so the two layers
// compose: hot grams are hash probes, cold runs of sorted grams still
// share their prefixes.

// gramFamily is one unit of schedulable work: a distinct q-gram of the
// query, its pre-resolved trie node, and the 0-based query positions
// where it occurs. entry points at the gram's cross-query cache entry
// when one exists (it carries the hot-gram occurrence memo).
type gramFamily struct {
	node  strie.Node
	gram  []byte
	cols  []int32
	entry *gramEntry
}

// resolveFamilies resolves every distinct gram of qidx against the trie
// — through the cross-query cache where possible, by one incremental
// prefix-shared pass otherwise — and returns the present families in
// lexicographic gram order. ForksConsidered/ForksAbsent accounting for
// the pruned grams lands in st (identically on cache hits and misses);
// the per-family filters (domination, G-matrix) still run at
// processing time.
func (ses *Session) resolveFamilies(qidx *qgram.Index, st *Stats) []gramFamily {
	e := ses.e
	q := qidx.Q()
	prevFams := len(ses.fams)
	fams := ses.fams[:0]
	gramBuf := ses.gramBuf[:0] // one backing array for every family's gram
	if cap(ses.resNodes) < q {
		ses.resNodes = make([]strie.Node, q)
	}
	nodes := ses.resNodes[:q] // nodes[d] spells the walked gram's prefix of length d+1
	prev := ses.prevGram[:0]  // the most recently walked gram
	depth := 0                // resolved prefix length of the walked gram
	failedAt := -1            // shortest absent prefix length of the walked gram, or -1
	root := e.trie.Root()

	var gc *gramCache
	packer := qidx.Packer()
	if packer != nil {
		// The cache pointer is immutable once built; memoising it on
		// the session keeps the engine mutex off the per-query path.
		if !ses.gcValid || ses.gcQ != q {
			ses.gc, ses.gcQ, ses.gcValid = e.gramCacheFor(q), q, true
		}
		gc = ses.gc
	}
	addFamily := func(gram []byte, node strie.Node, cols []int32, entry *gramEntry) {
		gramBuf = append(gramBuf, gram...)
		fams = append(fams, gramFamily{
			node:  node,
			gram:  gramBuf[len(gramBuf)-q:],
			cols:  cols,
			entry: entry,
		})
	}
	resolve := func(gram []byte, key uint64, cols []int32) {
		st.ForksConsidered += int64(len(cols))
		var entry *gramEntry
		if gc != nil {
			var owner bool
			entry, owner = gc.acquire(key)
			if !owner {
				st.GramCacheHits++
				if !entry.present {
					st.ForksAbsent += int64(len(cols))
					return
				}
				addFamily(gram, entry.node, cols, entry)
				return
			}
			st.GramCacheMisses++
		}
		// Walk path (cache miss or cache disabled). The shared prefix
		// with the last walked gram is computed directly: sorted order
		// guarantees LCP(walked, current) = min over the skipped grams,
		// so cache hits in between never overstate the sharing.
		lcp := 0
		for lcp < len(prev) && prev[lcp] == gram[lcp] {
			lcp++
		}
		prev = append(prev[:0], gram...)
		if failedAt >= 0 && failedAt <= lcp {
			// The shared prefix already failed: this gram is absent too.
			st.ForksAbsent += int64(len(cols))
			if entry != nil {
				gc.publish(entry, strie.Node{}, false)
			}
			return
		}
		failedAt = -1
		if depth > lcp {
			depth = lcp
		}
		u := root
		if depth > 0 {
			u = nodes[depth-1]
		}
		for d := depth; d < q; d++ {
			v, ok := e.trie.Child(u, gram[d])
			if !ok {
				depth = d
				failedAt = d + 1
				st.ForksAbsent += int64(len(cols))
				if entry != nil {
					gc.publish(entry, strie.Node{}, false)
				}
				return
			}
			nodes[d] = v
			u = v
		}
		depth = q
		if entry != nil {
			gc.publish(entry, u, true)
		}
		addFamily(gram, u, cols, entry)
	}
	if packer != nil {
		// The packed iteration hands over each gram's key for free —
		// no re-packing on the cache probe path.
		qidx.GramsSortedKeys(resolve)
	} else {
		qidx.GramsSorted(func(gram []byte, cols []int32) { resolve(gram, 0, cols) })
	}
	ses.fams, ses.gramBuf, ses.prevGram = fams, gramBuf, prev
	if n := len(fams); n < prevFams && prevFams <= cap(fams) {
		// Clear the shrunk list's stale tail so an idle session does
		// not pin the previous query's position lists or cache entries.
		clear(fams[n:prevFams])
	}
	return fams
}
