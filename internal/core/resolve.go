package core

import (
	"repro/internal/qgram"
	"repro/internal/strie"
)

// Prefix-shared gram resolution. The naive family pipeline re-walks
// every distinct q-gram from the trie root — q backward-search steps
// per gram — even though GramsSortedLCP emits grams in lexicographic
// order with long shared prefixes. Resolution instead keeps a stack of
// trie nodes for the prefixes of the most recent gram and only runs
// backward-search steps for each gram's non-shared suffix, the §5
// shared-structure principle applied to the grams themselves. Absent
// grams (Theorem 3's cheapest prune) die here, before the scheduler
// ever sees them, and a prefix known to be absent kills every later
// gram that still shares it without a single further index probe.

// gramFamily is one unit of schedulable work: a distinct q-gram of the
// query, its pre-resolved trie node, and the 0-based query positions
// where it occurs.
type gramFamily struct {
	node strie.Node
	gram []byte
	cols []int32
}

// resolveFamilies resolves every distinct gram of qidx against the trie
// in one incremental pass and returns the present families in
// lexicographic gram order. ForksConsidered/ForksAbsent accounting for
// the pruned grams lands in st; the per-family filters (domination,
// G-matrix) still run at processing time.
func (e *Engine) resolveFamilies(qidx *qgram.Index, st *Stats) []gramFamily {
	q := qidx.Q()
	fams := make([]gramFamily, 0, qidx.Distinct())
	gramBuf := make([]byte, 0, q*qidx.Distinct()) // one backing array for every family's gram
	nodes := make([]strie.Node, q)                // nodes[d] spells the current gram's prefix of length d+1
	depth := 0                                    // resolved prefix length of the most recent gram
	failedAt := -1                                // shortest absent prefix length of the most recent gram, or -1
	root := e.trie.Root()
	qidx.GramsSortedLCP(func(gram []byte, lcp int, cols []int32) {
		st.ForksConsidered += int64(len(cols))
		if failedAt >= 0 && failedAt <= lcp {
			// The shared prefix already failed: this gram is absent too.
			st.ForksAbsent += int64(len(cols))
			return
		}
		failedAt = -1
		if depth > lcp {
			depth = lcp
		}
		u := root
		if depth > 0 {
			u = nodes[depth-1]
		}
		for d := depth; d < q; d++ {
			v, ok := e.trie.Child(u, gram[d])
			if !ok {
				depth = d
				failedAt = d + 1
				st.ForksAbsent += int64(len(cols))
				return
			}
			nodes[d] = v
			u = v
		}
		depth = q
		gramBuf = append(gramBuf, gram...)
		fams = append(fams, gramFamily{
			node: u,
			gram: gramBuf[len(gramBuf)-q:],
			cols: cols,
		})
	})
	return fams
}
