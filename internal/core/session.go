package core

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/align"
	"repro/internal/domination"
	"repro/internal/qgram"
	"repro/internal/strie"
)

// Session owns every query-specific structure of a search: the q-gram
// inverted index of the query (an open-addressing gram table re-armed
// in place — qgram.Index.Rearm), the δ score table, the Theorem 2
// bound tables, the resolved fork families with their backing gram
// buffer, the traversal workspace, the search context and statistics,
// and (for parallel searches) the per-worker collector shards. A
// session is re-armed in place for each query, so in a serving loop —
// one index answering query after query — a warm sequential Search
// performs zero allocations end to end (TestSessionSearchAllocFree).
//
// A Session is NOT safe for concurrent use: it is one serving lane.
// Concurrency comes from running many sessions against the shared
// engine, whose structures (trie, domination index, gram cache) are
// read-mostly and safe to share. Engine.AcquireSession and
// Session.Release pool sessions so bursty callers reuse lanes instead
// of building new ones.
type Session struct {
	e *Engine

	qidx     qgram.Index // the query's gram table, re-armed in place
	delta    []int32     // δ table backing, rebuilt per query
	colBound []int32     // Theorem 2 column bounds backing
	fams     []gramFamily
	gramBuf  []byte
	resNodes []strie.Node // resolution prefix stack (resolve.go)
	prevGram []byte

	gc      *gramCache // memoised engine gram cache for gcQ (nil = disabled)
	gcQ     int
	gcValid bool

	ws *workspace // the sequential (and worker-0) traversal workspace

	// stats and ctx back the sequential search path: keeping them on
	// the session (instead of stack variables whose addresses escape
	// into the context) is what lets a warm Session.Search run without
	// a single allocation — see TestSessionSearchAllocFree.
	stats Stats
	ctx   searchCtx

	// Parallel-search state, sized to the widest search seen.
	shards *align.ShardedCollector
	wstats []Stats
}

// errQueryTooShort is the shared diagnostic for queries the q-gram
// engines cannot start a fork from: qgram.New would emit zero grams
// (no window of length q fits), so a search would silently return an
// empty hit set — almost always a caller bug (truncated input, wrong
// scheme). Callers that want the degenerate answer can use the
// Smith-Waterman baseline, which has no gram-length floor.
func errQueryTooShort(m, q int, s align.Scheme) error {
	return fmt.Errorf("core: query length %d is shorter than the scheme's gram length q=%d (scheme %v); the q-gram engines cannot search it", m, q, s)
}

// ResolveGrams runs only the gram-resolution stage of a search: every
// distinct q-gram of query is resolved against the trie (through the
// cross-query cache where warm, by the prefix-shared walk otherwise)
// and the number of present families is returned, with the resolution
// counters (ForksConsidered/Absent, GramCacheHits/Misses) in st. This
// is the isolation surface the perf tooling (alae-exp -bench-json and
// BenchmarkGramResolution) tracks across PRs; the family count is
// layout-invariant, which is its exactness gate.
func (ses *Session) ResolveGrams(query []byte, s align.Scheme) (families int, st Stats, err error) {
	q := s.Q()
	st.Q = q
	if len(query) < q {
		return 0, st, errQueryTooShort(len(query), q, s)
	}
	if err := ses.qidx.Rearm(query, q, ses.e.trie.Letters()); err != nil {
		return 0, st, err
	}
	return len(ses.resolveFamilies(&ses.qidx, &st)), st, nil
}

// AcquireSession returns a pooled session (or a fresh one) for this
// engine. Callers re-arm it per query via Session.Search and hand it
// back with Release.
func (e *Engine) AcquireSession() *Session {
	if s, ok := e.sessPool.Get().(*Session); ok {
		return s
	}
	return &Session{e: e, ws: e.getWorkspace()}
}

// Release returns the session to the engine's pool.
func (ses *Session) Release() { ses.e.sessPool.Put(ses) }

// Engine returns the engine this session serves.
func (ses *Session) Engine() *Engine { return ses.e }

// Search runs one query through the session; see Engine.SearchParallel
// for the contract. The session's buffers are re-armed in place, the
// engine's shared structures are only read, and hits land in c. In
// steady state — a warm session answering a repeated query shape
// sequentially — the whole path performs zero allocations
// (TestSessionSearchAllocFree); only the parallel fan-out allocates
// its worker contexts and goroutines.
func (ses *Session) Search(query []byte, s align.Scheme, h int, c *align.Collector, workers int) (Stats, error) {
	return ses.SearchContext(context.Background(), query, s, h, c, workers)
}

// SearchContext is Search under a context: the traversal loops poll
// cx's done channel at entry-budget checkpoints (cancel.go), so a
// deadline or cancellation aborts a running search within a bounded
// number of calculated entries per worker. On cancellation the
// context's error is returned, the partial statistics describe the
// work actually done, and the collector holds a partial (meaningless)
// hit set the caller must discard; the session itself remains fully
// reusable — the next Search re-arms it exactly as after a completed
// query. A background (non-cancellable) context adds no per-entry
// overhead: the done channel is nil and every checkpoint is one field
// read.
func (ses *Session) SearchContext(cx context.Context, query []byte, s align.Scheme, h int, c *align.Collector, workers int) (Stats, error) {
	return ses.searchImpl(cx, query, s, h, c, workers, false)
}

// SearchLanes is SearchContext with the family-slice dispatch: the
// resolved fork families are cut into lanes contiguous slices balanced
// by estimated band cost (partitionFamilies) and each slice runs on
// its own goroutine with its own workspace and collector shard. This
// is the store's shared-index scatter seam — one gram resolution, one
// monolithic index, K lanes of work — and its exactness contract is
// that CalculatedEntries and the hit set are byte-identical for every
// lanes value, including lanes = 1 (the sequential path). lanes ≤ 0
// defaults to runtime.NumCPU().
func (ses *Session) SearchLanes(cx context.Context, query []byte, s align.Scheme, h int, c *align.Collector, lanes int) (Stats, error) {
	return ses.searchImpl(cx, query, s, h, c, lanes, true)
}

// searchImpl is the shared body of SearchContext and SearchLanes:
// everything up to family dispatch is identical — validation,
// threshold floor, gram resolution, δ and bound tables — and sliced
// selects the dispatch (cost-balanced contiguous slices vs the
// work-stealing cursor).
func (ses *Session) searchImpl(cx context.Context, query []byte, s align.Scheme, h int, c *align.Collector, workers int, sliced bool) (Stats, error) {
	e := ses.e
	if err := s.Validate(); err != nil {
		return Stats{}, err
	}
	if minH := s.MinThreshold(); h < minH {
		return Stats{}, fmt.Errorf("core: threshold %d below the exactness floor %d for scheme %v", h, minH, s)
	}
	q := s.Q()
	ses.stats = Stats{}
	st := &ses.stats
	st.Threshold, st.Q = h, q
	m := len(query)
	if e.opts.DisableLengthFilter {
		st.Lmax = s.Lmax(m, 1) // positivity bound only
	} else {
		st.Lmax = s.Lmax(m, h)
	}
	if m < q {
		// The empty set happens to be exact here — a query of m < q
		// characters scores at most m·sa < MinThreshold ≤ h — but it is
		// diagnosed instead of returned; see errQueryTooShort.
		return *st, errQueryTooShort(m, q, s)
	}
	if e.trie.Index().Len() == 0 {
		return *st, nil
	}

	if err := ses.qidx.Rearm(query, q, e.trie.Letters()); err != nil {
		return *st, err
	}
	var dom *domination.Index
	var err error
	if !e.opts.DisableDomination {
		if dom, err = e.DominationIndex(q); err != nil {
			return *st, err
		}
	}
	var gm *gMatrix
	if e.opts.EnableGMatrix {
		gm, err = newGMatrix(e.trie.Index().Len(), m, e.opts.GMatrixMaxBytes)
		if err != nil {
			return *st, err
		}
	}

	// Resolve every distinct gram — against the cross-query cache where
	// warm, by one prefix-shared trie pass otherwise (see resolve.go);
	// absent grams die here, so the scheduler and the per-family filters
	// only ever see live trie nodes.
	families := ses.resolveFamilies(&ses.qidx, st)
	if len(families) == 0 {
		return *st, nil
	}
	// The δ(edge letter, query column) score table: the inner sweeps
	// index it instead of calling Scheme.Delta per cell. Shared
	// read-only by every worker.
	ses.delta = buildDeltaTableInto(ses.delta, e.trie.Letters(), query, s)
	ses.colBound = buildColBoundsInto(ses.colBound, m, h, s, e.opts.DisableScoreFilter)

	// base carries everything the worker contexts share; collector,
	// stats and workspace are lane-specific and filled in per lane. A
	// plain value (not a closure) so the sequential path stays
	// allocation-free.
	base := searchCtx{
		e: e, query: query, s: s, h: h,
		lmax:     st.Lmax,
		gOpen:    -(s.GapOpen + s.GapExtend), // |sg+ss|
		delta:    ses.delta,
		colBound: ses.colBound,
		dom:      dom,
		gm:       gm,
		barrier:  barrierCode(e.trie.Letters(), e.opts.BarrierByte),
		done:     cx.Done(), // nil for background contexts: checkpoints are free
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if gm != nil {
		workers = 1 // the G-matrix filter's state is traversal-order-dependent
	}
	if sliced {
		ses.searchFamilySlices(families, base, workers, c, st)
	} else {
		ses.searchFamilies(families, base, workers, c, st)
	}
	if err := cx.Err(); err != nil {
		return *st, err
	}
	return *st, nil
}
