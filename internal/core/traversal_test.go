package core

import (
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/qgram"
	"repro/internal/seq"
)

// The flat-traversal tests: the explicit-stack DFS with its
// structure-of-arrays band slab, the single-occurrence LF walk
// (dfsLinear), and the prefix-shared gram resolution must all be
// invisible — every hit set equals the Gotoh oracle, and resolution
// matches the naive per-gram Walk.

// TestFlatTraversalDeepLinearPaths plants long unique homologous runs
// so the walk survives far past the gram depth on width-one nodes and
// the dfsLinear handoff (including its lazy position resolution)
// carries most of the work. DNA and protein texts both run: protein
// exercises the byte-rank fallback and a 20-letter delta table.
func TestFlatTraversalDeepLinearPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	type tc struct {
		name    string
		alpha   *seq.Alphabet
		scheme  align.Scheme
		n, h    int
		mutRate float64
	}
	cases := []tc{
		{"dna", seq.DNA, align.DefaultDNA, 4000, 20, 0.03},
		{"dna-exact", seq.DNA, align.DefaultDNA, 4000, 25, 0},
		{"protein", seq.Protein, align.DefaultProtein, 1500, 18, 0.05},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			letters := c.alpha.Letters()
			randSeq := func(n int) []byte {
				out := make([]byte, n)
				for i := range out {
					out[i] = letters[rng.Intn(len(letters))]
				}
				return out
			}
			for trial := 0; trial < 6; trial++ {
				text := randSeq(c.n)
				// A long, deep, (almost) unique run: a random text of
				// this size has unique substrings beyond ~log_σ(n)
				// characters, so most of this path is width-one.
				lo := 100 + rng.Intn(c.n/2)
				run := text[lo : lo+300]
				var query []byte
				query = append(query, randSeq(30)...)
				if c.mutRate > 0 {
					query = append(query, seq.Mutate(c.alpha, run,
						seq.MutationConfig{SubstitutionRate: c.mutRate, IndelRate: c.mutRate / 2}, rng)...)
				} else {
					query = append(query, run...)
				}
				query = append(query, randSeq(30)...)
				got, st := runEngine(t, text, query, c.scheme, c.h, Options{})
				want := oracle(text, query, c.scheme, c.h)
				if !align.EqualHits(got, want) {
					t.Fatalf("trial %d: flat DFS disagrees with oracle\n got %d hits\nwant %d hits", trial, len(got), len(want))
				}
				if len(want) == 0 {
					t.Fatalf("trial %d: vacuous workload", trial)
				}
				if st.MaxDepth < st.Q+20 {
					t.Fatalf("trial %d: max depth %d never went deep (q=%d); linear handoff not exercised", trial, st.MaxDepth, st.Q)
				}
			}
		})
	}
}

// TestPrefixSharedResolutionMatchesWalk cross-checks resolveFamilies
// against the naive per-gram root Walk on queries engineered to hit
// every LCP shape: maximal sharing (LCP = q−1 chains from homopolymer
// runs), no sharing (LCP = 0 at letter boundaries), and absent grams
// (the text lacks a letter the query uses, so whole prefix groups die
// at several depths).
func TestPrefixSharedResolutionMatchesWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	s := align.DefaultDNA
	q := s.Q()
	texts := [][]byte{
		randDNA(2000, rng),
		// No 'T' in the text: every query gram containing T is absent,
		// and the resolver must prune them by shared failed prefix.
		func() []byte {
			letters := []byte("ACG")
			out := make([]byte, 1500)
			for i := range out {
				out[i] = letters[rng.Intn(3)]
			}
			return out
		}(),
	}
	queries := [][]byte{
		randDNA(300, rng),
		// Homopolymer runs: consecutive sorted grams share q−1 chars.
		[]byte("AAAAAAAAAACCCCCCCCCCGGGGGGGGGGTTTTTTTTTT"),
		// Alternating blocks: sorted neighbours often share nothing.
		[]byte("ACGTACGTACGTTGCATGCATGCAAAAATTTTTCCCCCGGGGG"),
	}
	for ti, text := range texts {
		e := New(text, Options{})
		for qi, query := range queries {
			qidx, err := qgram.New(query, q, e.trie.Letters())
			if err != nil {
				t.Fatal(err)
			}
			var st Stats
			ses := e.AcquireSession()
			fams := ses.resolveFamilies(qidx, &st)

			// Naive resolution: one root Walk per distinct gram.
			type naive struct {
				lo, hi int
				cols   []int32
			}
			var wantFams []naive
			var wantConsidered, wantAbsent int64
			qidx.GramsSorted(func(gram []byte, cols []int32) {
				wantConsidered += int64(len(cols))
				node, ok := e.trie.Walk(gram)
				if !ok {
					wantAbsent += int64(len(cols))
					return
				}
				wantFams = append(wantFams, naive{lo: node.Lo, hi: node.Hi, cols: cols})
			})
			if st.ForksConsidered != wantConsidered || st.ForksAbsent != wantAbsent {
				t.Fatalf("text %d query %d: accounting considered=%d absent=%d, want %d/%d",
					ti, qi, st.ForksConsidered, st.ForksAbsent, wantConsidered, wantAbsent)
			}
			if len(fams) != len(wantFams) {
				t.Fatalf("text %d query %d: %d families, want %d", ti, qi, len(fams), len(wantFams))
			}
			for k, f := range fams {
				w := wantFams[k]
				if f.node.Lo != w.lo || f.node.Hi != w.hi || f.node.Depth != q {
					t.Fatalf("text %d query %d family %d (%q): node [%d,%d)@%d, want [%d,%d)@%d",
						ti, qi, k, f.gram, f.node.Lo, f.node.Hi, f.node.Depth, w.lo, w.hi, q)
				}
				if len(f.cols) != len(w.cols) {
					t.Fatalf("text %d query %d family %d: cols %v want %v", ti, qi, k, f.cols, w.cols)
				}
			}
			// And exactness end to end on the same pairing.
			for _, h := range []int{s.MinThreshold(), 10} {
				got, _ := runEngine(t, text, query, s, h, Options{})
				want := oracle(text, query, s, h)
				if !align.EqualHits(got, want) {
					t.Fatalf("text %d query %d h=%d: hits diverge", ti, qi, h)
				}
			}
		}
	}
}

// TestFlatTraversalPropertyMixed is the randomized cross-check of the
// flat traversal over mixed DNA/protein inputs with and without
// planted homology, at thresholds from the exactness floor upward.
func TestFlatTraversalPropertyMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 120; trial++ {
		var (
			alpha  *seq.Alphabet
			scheme align.Scheme
		)
		if trial%3 == 2 {
			alpha, scheme = seq.Protein, align.DefaultProtein
		} else {
			alpha, scheme = seq.DNA, align.DefaultDNA
		}
		letters := alpha.Letters()
		n := 50 + rng.Intn(300)
		m := 10 + rng.Intn(120)
		text := make([]byte, n)
		for i := range text {
			text[i] = letters[rng.Intn(len(letters))]
		}
		query := make([]byte, m)
		for i := range query {
			query[i] = letters[rng.Intn(len(letters))]
		}
		if trial%2 == 0 && m > 12 && n > 30 {
			l := min(m-4, n-5)
			copy(query[2:], text[3:3+l])
		}
		h := scheme.MinThreshold() + rng.Intn(10)
		got, _ := runEngine(t, text, query, scheme, h, Options{})
		want := oracle(text, query, scheme, h)
		if !align.EqualHits(got, want) {
			t.Fatalf("trial %d (T=%q P=%q H=%d):\n got %v\nwant %v", trial, text, query, h, got, want)
		}
	}
}

// benchTraversalCtx builds a ready-to-run searchCtx plus resolved
// families over a planted-homology workload, mirroring what
// Session.Search sets up per search.
func benchTraversalCtx(b testing.TB, n, runLen int, opts Options) (*searchCtx, []gramFamily) {
	b.Helper()
	rng := rand.New(rand.NewSource(77))
	text := randDNA(n, rng)
	s := align.DefaultDNA
	// A mostly random query with one planted homologous run: enough to
	// exercise the band sweep, seeds, emission and the linear handoff
	// without the pathological all-homology blowup a full-copy query
	// at a low threshold produces.
	query := append(randDNA(400, rng), append(
		seq.Mutate(seq.DNA, text[n/4:n/4+runLen],
			seq.MutationConfig{SubstitutionRate: 0.05, IndelRate: 0.02}, rng),
		randDNA(400, rng)...)...)
	h := 25
	e := New(text, opts)
	qidx, err := qgram.New(query, s.Q(), e.trie.Letters())
	if err != nil {
		b.Fatal(err)
	}
	st := &Stats{Threshold: h, Q: s.Q(), Lmax: s.Lmax(len(query), h)}
	ses := e.AcquireSession()
	fams := ses.resolveFamilies(qidx, st)
	dom, err := e.DominationIndex(s.Q())
	if err != nil {
		b.Fatal(err)
	}
	ctx := &searchCtx{
		e: e, query: query, s: s, h: h,
		c: align.NewCollector(), st: st,
		lmax:     st.Lmax,
		gOpen:    -(s.GapOpen + s.GapExtend),
		delta:    buildDeltaTableInto(nil, e.trie.Letters(), query, s),
		colBound: buildColBoundsInto(nil, len(query), h, s, false),
		dom:      dom,
		barrier:  -1,
		ws:       ses.ws,
	}
	return ctx, fams
}

// TestPerGramPathAllocFree enforces the steady-state zero-allocation
// contract of the per-gram path (processGram → dfsGram →
// advanceMergedBand) as a failing test, not just a benchmark report:
// after one warm pass, reprocessing every family must allocate
// nothing.
func TestPerGramPathAllocFree(t *testing.T) {
	ctx, fams := benchTraversalCtx(t, 20_000, 200, Options{})
	for i := range fams {
		ctx.processGram(&fams[i]) // warm the workspace slabs and collector
	}
	allocs := testing.AllocsPerRun(3, func() {
		for i := range fams {
			ctx.processGram(&fams[i])
		}
	})
	if allocs > 0 {
		t.Fatalf("per-gram path allocated %.1f objects per sweep; must be 0 in steady state", allocs)
	}
}

// TestHybridPerGramPathAllocFree is the same contract for ModeHybrid:
// with the oracle bands living in the per-level frame slabs, the
// vertical columns in the workspace arenas and the common-prefix tree
// Reset-able, the reuse engine's whole per-gram path (processGram →
// hybridGram → descend → verticals) must be allocation-free once warm
// — the steady-state-zero property the DFS engine has had since PR 2.
func TestHybridPerGramPathAllocFree(t *testing.T) {
	ctx, fams := benchTraversalCtx(t, 20_000, 200, Options{Mode: ModeHybrid})
	for i := range fams {
		ctx.processGram(&fams[i]) // warm frames, slabs, arenas, collector
	}
	allocs := testing.AllocsPerRun(3, func() {
		for i := range fams {
			ctx.processGram(&fams[i])
		}
	})
	if allocs > 0 {
		t.Fatalf("hybrid per-gram path allocated %.1f objects per sweep; must be 0 in steady state", allocs)
	}
}

// BenchmarkDFSTraversal times the per-gram hot path in isolation —
// processGram → dfsGram → dfsWalk/dfsLinear → advanceMergedBand — over
// pre-resolved families with a warm workspace. The headline metric is
// allocs/op: the whole path must be allocation-free in steady state
// (the collector and workspace are warmed before the timer starts).
func BenchmarkDFSTraversal(b *testing.B) {
	ctx, fams := benchTraversalCtx(b, 100_000, 300, Options{})
	// Warm: size every workspace slab and the collector table.
	for i := range fams {
		ctx.processGram(&fams[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i := range fams {
			ctx.processGram(&fams[i])
		}
	}
	b.ReportMetric(float64(ctx.st.CalculatedEntries())/float64(b.N+1), "entries")
}
