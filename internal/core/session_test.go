package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/align"
	"repro/internal/qgram"
	"repro/internal/seq"
)

// Session and cross-query gram-cache tests: a session must be a pure
// serving lane (re-arming changes nothing observable), and the cache
// must only move resolution work, never change its outcome — cold or
// hot, sequential or concurrent, with or without eviction pressure.

// TestSessionReuseIdenticalAcrossQueries runs an interleaved query
// stream twice through one re-armed session and through fresh
// one-shot searches; hits and work stats must match pairwise, with the
// second session pass resolving entirely from the warm cache.
func TestSessionReuseIdenticalAcrossQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	text := randDNA(6000, rng)
	s := align.DefaultDNA
	queries := [][]byte{
		seq.Mutate(seq.DNA, text[100:600], seq.MutationConfig{SubstitutionRate: 0.05, IndelRate: 0.01}, rng),
		randDNA(300, rng),
		seq.Mutate(seq.DNA, text[3000:3400], seq.MutationConfig{SubstitutionRate: 0.08, IndelRate: 0.02}, rng),
	}
	for _, mode := range []Mode{ModeDFS, ModeHybrid} {
		e := New(text, Options{Mode: mode})
		ses := e.AcquireSession()
		for pass := 0; pass < 2; pass++ {
			for qi, query := range queries {
				h := 15
				cSes := align.NewCollector()
				stSes, err := ses.Search(query, s, h, cSes, 1)
				if err != nil {
					t.Fatal(err)
				}
				// Fresh engine = fresh session AND cold cache.
				cFresh := align.NewCollector()
				stFresh, err := New(text, Options{Mode: mode}).Search(query, s, h, cFresh)
				if err != nil {
					t.Fatal(err)
				}
				if !align.EqualHits(cSes.Hits(), cFresh.Hits()) {
					t.Fatalf("mode %v pass %d query %d: re-armed session hits diverge from fresh", mode, pass, qi)
				}
				if stSes.CalculatedEntries() != stFresh.CalculatedEntries() ||
					stSes.NodesVisited != stFresh.NodesVisited ||
					stSes.ForksAbsent != stFresh.ForksAbsent {
					t.Fatalf("mode %v pass %d query %d: work stats diverge: %+v vs %+v",
						mode, pass, qi, stSes, stFresh)
				}
				if pass == 1 && stSes.GramCacheMisses != 0 {
					t.Errorf("mode %v query %d: %d cache misses on the hot pass", mode, qi, stSes.GramCacheMisses)
				}
				if pass == 1 && stSes.GramCacheHits == 0 {
					t.Errorf("mode %v query %d: no cache hits on the hot pass", mode, qi)
				}
			}
		}
	}
}

// TestGramCacheDisabledIdentical pins that the cache is invisible:
// GramCacheSize < 0 must give the same hits and work counters.
func TestGramCacheDisabledIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	text := randDNA(3000, rng)
	query := seq.Mutate(seq.DNA, text[200:700], seq.MutationConfig{SubstitutionRate: 0.06, IndelRate: 0.02}, rng)
	s := align.DefaultDNA
	h := 14

	withC, withoutC := align.NewCollector(), align.NewCollector()
	eWith := New(text, Options{})
	eWithout := New(text, Options{GramCacheSize: -1})
	stWith, err := eWith.Search(query, s, h, withC)
	if err != nil {
		t.Fatal(err)
	}
	stWithout, err := eWithout.Search(query, s, h, withoutC)
	if err != nil {
		t.Fatal(err)
	}
	if !align.EqualHits(withC.Hits(), withoutC.Hits()) {
		t.Fatal("cache changed the hit set")
	}
	if stWithout.GramCacheHits != 0 || stWithout.GramCacheMisses != 0 {
		t.Fatalf("disabled cache still counted: %+v", stWithout)
	}
	stWith.GramCacheHits, stWith.GramCacheMisses = 0, 0
	if stWith != stWithout {
		t.Fatalf("cache changed work stats: %+v vs %+v", stWith, stWithout)
	}
}

// TestGramCacheEvictionStaysCorrect forces heavy LRU churn (capacity
// far below the distinct-gram count) and checks results never change.
func TestGramCacheEvictionStaysCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	text := randDNA(4000, rng)
	s := align.DefaultDNA
	e := New(text, Options{GramCacheSize: 8})
	ref := New(text, Options{GramCacheSize: -1})
	for trial := 0; trial < 4; trial++ {
		query := seq.Mutate(seq.DNA, text[trial*500:trial*500+400],
			seq.MutationConfig{SubstitutionRate: 0.05, IndelRate: 0.02}, rng)
		h := 14
		got, want := align.NewCollector(), align.NewCollector()
		if _, err := e.Search(query, s, h, got); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Search(query, s, h, want); err != nil {
			t.Fatal(err)
		}
		if !align.EqualHits(got.Hits(), want.Hits()) {
			t.Fatalf("trial %d: eviction-pressured cache diverged", trial)
		}
		if gc := e.gramCacheFor(s.Q()); gc.len() > 8 {
			t.Fatalf("trial %d: cache grew to %d entries, capacity 8", trial, gc.len())
		}
	}
}

// TestGramCacheSingleFlightConcurrent hammers one cold cache from many
// goroutines resolving the same query; run under -race this is the
// data-race check for acquire/publish and the occurrence memo, and
// every searcher must see identical hits.
func TestGramCacheSingleFlightConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	text := randDNA(3000, rng)
	query := seq.Mutate(seq.DNA, text[1000:1300], seq.MutationConfig{SubstitutionRate: 0.04, IndelRate: 0.01}, rng)
	s := align.DefaultDNA
	h := 20
	e := New(text, Options{})
	if _, err := e.DominationIndex(s.Q()); err != nil {
		t.Fatal(err)
	}
	want := align.NewCollector()
	if _, err := New(text, Options{}).Search(query, s, h, want); err != nil {
		t.Fatal(err)
	}
	wantHits := want.Hits()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				c := align.NewCollector()
				if _, err := e.Search(query, s, h, c); err != nil {
					errs <- err
					return
				}
				if !align.EqualHits(c.Hits(), wantHits) {
					errs <- errDiverged
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every distinct present-or-absent gram resolved exactly once
	// in total: misses across all searches == cache population.
	gc := e.gramCacheFor(s.Q())
	if gc.len() == 0 {
		t.Fatal("cache empty after concurrent searches")
	}
}

var errDiverged = &divergedError{}

type divergedError struct{}

func (*divergedError) Error() string { return "concurrent cached search diverged" }

// BenchmarkGramResolution isolates what the cross-query cache
// accelerates: resolving every distinct gram of a query against the
// index. walk is the uncached prefix-shared trie pass; cached runs
// against a warm cache (every gram a hash probe). The ratio is the
// serving path's per-query resolution saving; end-to-end impact scales
// with the resolution share of the whole search. DNA (packed rank,
// q=11, long shared prefixes) and protein (byte rank, q=4) have very
// different walk costs, so both run.
func BenchmarkGramResolution(b *testing.B) {
	rng := rand.New(rand.NewSource(504))
	bench := func(b *testing.B, text, query []byte, s align.Scheme) {
		run := func(b *testing.B, e *Engine) {
			qidx, err := qgram.New(query, s.Q(), e.trie.Letters())
			if err != nil {
				b.Fatal(err)
			}
			ses := e.AcquireSession()
			var st Stats
			ses.resolveFamilies(qidx, &st) // warm cache and session buffers
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				st = Stats{}
				ses.resolveFamilies(qidx, &st)
			}
		}
		b.Run("walk", func(b *testing.B) { run(b, New(text, Options{GramCacheSize: -1})) })
		b.Run("cached", func(b *testing.B) { run(b, New(text, Options{})) })
	}
	b.Run("dna", func(b *testing.B) {
		bench(b, randDNA(200_000, rng), randDNA(5_000, rng), align.DefaultDNA)
	})
	b.Run("protein", func(b *testing.B) {
		letters := seq.Protein.Letters()
		randProt := func(n int) []byte {
			out := make([]byte, n)
			for i := range out {
				out[i] = letters[rng.Intn(len(letters))]
			}
			return out
		}
		bench(b, randProt(200_000), randProt(5_000), align.DefaultProtein)
	})
}

// TestSessionSearchAllocFree is the end-to-end steady-state contract
// the ROADMAP's "qgram index reuse" item completes: with the gram
// table, the search context and the stats all session-owned and
// re-armed in place, a warm sequential Session.Search must not
// allocate at all — not just the per-gram traversal path
// (TestPerGramPathAllocFree) but the whole query: gram-table rearm,
// resolution, δ/bound table rebuild, traversal and emission.
func TestSessionSearchAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	text := randDNA(20_000, rng)
	query := seq.Mutate(seq.DNA, text[2_000:2_300],
		seq.MutationConfig{SubstitutionRate: 0.05, IndelRate: 0.01}, rng)
	// A repeat-dense workload keeps the emission path hot: large
	// occurrence fan-out, run staging overflows and dominance-filter
	// traffic every query, so the gate also covers the two-level
	// collector's steady state.
	emitText, emitQuery := emitWorkload(seq.DNA, 20_000, 300, 507)
	s := align.DefaultDNA
	h := 25
	for _, tc := range []struct {
		name        string
		opts        Options
		text, query []byte
	}{
		{"dfs-cached", Options{}, text, query},
		{"dfs-walk", Options{GramCacheSize: -1}, text, query},
		{"hybrid-cached", Options{Mode: ModeHybrid}, text, query},
		{"dfs-emit-heavy", Options{}, emitText, emitQuery},
		{"hybrid-emit-heavy", Options{Mode: ModeHybrid}, emitText, emitQuery},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := New(tc.text, tc.opts)
			if _, err := e.DominationIndex(s.Q()); err != nil {
				t.Fatal(err)
			}
			ses := e.AcquireSession()
			defer ses.Release()
			c := align.NewCollector()
			for warm := 0; warm < 2; warm++ {
				c.Reset()
				if _, err := ses.Search(tc.query, s, h, c, 1); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(5, func() {
				c.Reset()
				if _, err := ses.Search(tc.query, s, h, c, 1); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 0 {
				t.Fatalf("warm sequential Session.Search allocated %.1f objects per query; must be 0", allocs)
			}
		})
	}
}
