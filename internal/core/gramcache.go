package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/strie"
)

// The cross-query gram→trie-node cache of the serving path. An index
// in a database setting answers many queries, and every query's
// resolution walks its distinct q-grams against the trie even though
// the gram→node mapping depends only on the immutable index. The cache
// turns resolution of a hot gram into one hash probe: entries are
// keyed by the gram's packed integer key (see qgram.Packer), hold the
// resolved trie node (or an absent marker — negative results are as
// reusable as positive ones), and are evicted CLOCK-approximately-LRU.
//
// Concurrency: the cache is shared by every session of an engine and
// is read-mostly once warm. A hit is an RLock-guarded map probe plus
// two atomic flag operations — no exclusive lock, no list surgery — so
// concurrent sessions scale. Population is single-flight: a miss takes
// the write lock once to insert a pending entry and resolves it
// outside any lock, while concurrent sessions missing on the same gram
// wait on the entry's ready channel instead of re-walking the trie
// (the fast path reads a published done flag and never touches the
// channel).
//
// Entries of hot gram nodes also lazily memoise the node's located
// occurrence list (bounded by maxCachedOccs positions), which removes
// the residual locate cost of the emit path for repeated queries: the
// sampled-SA walk for a hot gram's rows happens once per index
// lifetime instead of once per query.

// defaultGramCacheSize is the default capacity in entries. An entry is
// ~100 bytes plus an optional occurrence list of at most maxCachedOccs
// positions, so the default tops out at a few megabytes.
const defaultGramCacheSize = 1 << 16

// maxCachedOccs bounds the per-entry occurrence memo: nodes with more
// occurrences than this locate per query as before (wide nodes are
// rare among distinct grams and their lists would dominate the cache's
// footprint).
const maxCachedOccs = 32

// gramEntry is one cached gram resolution. node/present are immutable
// after publish (done flags the publication); the occurrence memo is
// published once via compare-and-swap.
type gramEntry struct {
	key     uint64
	ready   chan struct{} // closed once node/present are set
	done    atomic.Bool   // fast-path view of "ready is closed"
	used    atomic.Bool   // CLOCK reference bit
	node    strie.Node
	present bool
	occ     atomic.Pointer[[]int]
}

// occurrences returns the memoised occurrence list, or nil.
func (e *gramEntry) occurrences() []int {
	if p := e.occ.Load(); p != nil {
		return *p
	}
	return nil
}

// memoOccurrences publishes a copy of occ as the entry's occurrence
// memo if none exists and the list is small enough to be worth pinning.
func (e *gramEntry) memoOccurrences(occ []int) {
	if len(occ) > maxCachedOccs || e.occ.Load() != nil {
		return
	}
	cp := make([]int, len(occ))
	copy(cp, occ)
	e.occ.CompareAndSwap(nil, &cp)
}

// gramCache is the table. One exists per (engine, q).
type gramCache struct {
	mu       sync.RWMutex
	capacity int
	m        map[uint64]*gramEntry
	ring     []*gramEntry // CLOCK ring over the live entries
	hand     int
}

func newGramCache(capacity int) *gramCache {
	if capacity < 1 {
		capacity = 1
	}
	return &gramCache{capacity: capacity, m: make(map[uint64]*gramEntry, capacity)}
}

// acquire returns the entry for key. owner reports whether the caller
// inserted it and must publish the resolution; when owner is false the
// entry is already resolved (acquire waits for in-flight population).
func (gc *gramCache) acquire(key uint64) (e *gramEntry, owner bool) {
	gc.mu.RLock()
	e = gc.m[key]
	gc.mu.RUnlock()
	if e == nil {
		gc.mu.Lock()
		if e = gc.m[key]; e == nil { // re-check under the write lock
			e = &gramEntry{key: key, ready: make(chan struct{})}
			gc.insert(e)
			gc.mu.Unlock()
			return e, true
		}
		gc.mu.Unlock()
	}
	e.used.Store(true)
	if !e.done.Load() {
		<-e.ready // no locks held: the populating session closes this promptly
	}
	return e, false
}

// publish resolves a pending entry. Must be called exactly once by the
// owner returned from acquire; waiters unblock here.
func (gc *gramCache) publish(e *gramEntry, node strie.Node, present bool) {
	e.node, e.present = node, present
	e.done.Store(true)
	close(e.ready)
}

// insert adds a pending entry, evicting one CLOCK victim when the
// cache is full. Requires gc.mu (write).
func (gc *gramCache) insert(e *gramEntry) {
	gc.m[e.key] = e
	if len(gc.ring) < gc.capacity {
		gc.ring = append(gc.ring, e)
		return
	}
	// CLOCK sweep: clear reference bits until an unreferenced resolved
	// entry turns up, then take its slot. Pending entries are treated
	// as referenced (their owners are about to publish); the sweep is
	// bounded, falling back to the hand's current slot.
	victim := -1
	for i := 0; i < 2*len(gc.ring); i++ {
		cand := gc.ring[gc.hand]
		if !cand.used.Swap(false) && cand.done.Load() {
			victim = gc.hand
			break
		}
		gc.hand = (gc.hand + 1) % len(gc.ring)
	}
	if victim < 0 {
		victim = gc.hand
	}
	old := gc.ring[victim]
	if old.key != e.key { // self-replacement cannot happen, but stay safe
		delete(gc.m, old.key)
	}
	gc.ring[victim] = e
	gc.hand = (victim + 1) % len(gc.ring)
	// Sessions holding the evicted entry (including a still-populating
	// owner) keep using it; it is simply no longer findable.
}

// len reports the number of cached entries (tests and diagnostics).
func (gc *gramCache) len() int {
	gc.mu.RLock()
	defer gc.mu.RUnlock()
	return len(gc.m)
}

// gramCacheFor returns the engine's gram cache for gram length q,
// building it on first use. nil when caching is disabled.
func (e *Engine) gramCacheFor(q int) *gramCache {
	if e.opts.GramCacheSize < 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.gcaches == nil {
		e.gcaches = make(map[int]*gramCache)
	}
	gc, ok := e.gcaches[q]
	if !ok {
		size := e.opts.GramCacheSize
		if size == 0 {
			size = defaultGramCacheSize
		}
		gc = newGramCache(size)
		e.gcaches[q] = gc
	}
	return gc
}
