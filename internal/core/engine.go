// Package core implements ALAE, the paper's contribution: exact local
// alignment with affine gaps over a compressed suffix array, sped up
// by a family of filters and by score reuse.
//
//   - Length filtering (Theorem 1) caps the rows of every matrix at
//     Lmax and is applied as a traversal depth bound.
//   - Score filtering (Theorem 2) kills entries that provably cannot
//     reach the threshold H with the query columns and rows remaining.
//   - q-prefix filtering (Theorem 3) only starts fork areas where a
//     q-gram of the query exactly matches the text, splitting each
//     fork into an exact-match region (assigned scores), a no-gap
//     region (Equation 3, one-source recurrence), and a gap region
//     entered at the first gap-open entry (FGOE).
//   - Global filtering (§3.2) skips whole forks: q-prefix domination
//     (Lemma 1, via the offline domination index) and optionally the
//     online boolean matrix G (Theorem 4).
//   - Score reuse (§4) is provided by the Hybrid engine mode, which
//     computes gap regions column-wise (calMatrixByColumn) and copies
//     columns between forks whose FGOEs share a row, using the
//     common-prefix tree of Algorithm 2.
//
// Both engine modes produce exactly the hits of a full Smith-Waterman
// sweep whenever H ≥ Scheme.MinThreshold(), which E-value-derived
// thresholds always satisfy.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/align"
	"repro/internal/domination"
	"repro/internal/qgram"
	"repro/internal/strie"
)

// Mode selects the search engine variant.
type Mode int

const (
	// ModeDFS traverses the emulated suffix trie row-by-row, sharing
	// common path prefixes (the default and fastest mode).
	ModeDFS Mode = iota
	// ModeHybrid is Algorithm 3: horizontal NGR passes to find FGOEs,
	// then vertical gap-region passes with cross-fork score reuse.
	ModeHybrid
)

// Options configures an Engine. The zero value enables every filter
// except the space-hungry G-matrix, matching the paper's ALAE
// configuration; individual filters can be switched off for the
// ablation experiments.
type Options struct {
	Mode Mode

	// DisableLengthFilter turns Theorem 1 off (the traversal is then
	// bounded only by score positivity).
	DisableLengthFilter bool
	// DisableScoreFilter turns Theorem 2 off.
	DisableScoreFilter bool
	// DisableDomination turns the Lemma 1 global filter off.
	DisableDomination bool
	// EnableGMatrix turns the §3.2.1 boolean-matrix global filter on.
	// It needs O(n·m/8) bytes per searched query in the worst case,
	// which is why the paper develops domination as its replacement;
	// GMatrixMaxBytes caps the allocation (default 1 GiB).
	EnableGMatrix   bool
	GMatrixMaxBytes int
}

// Engine is an ALAE search engine over one indexed text. Searches are
// safe to run concurrently.
type Engine struct {
	trie *strie.Trie
	opts Options

	mu  sync.Mutex
	dom map[int]*domination.Index // per q, built lazily

	wsPool sync.Pool // *workspace, reused across searches and workers
}

// New indexes text and returns an engine.
func New(text []byte, opts Options) *Engine {
	return NewFromTrie(strie.New(text), opts)
}

// NewFromTrie wraps an existing emulated suffix trie (shareable with
// the BWT-SW engine).
func NewFromTrie(t *strie.Trie, opts Options) *Engine {
	if opts.GMatrixMaxBytes <= 0 {
		opts.GMatrixMaxBytes = 1 << 30
	}
	return &Engine{trie: t, opts: opts, dom: make(map[int]*domination.Index)}
}

// Trie exposes the underlying emulated suffix trie.
func (e *Engine) Trie() *strie.Trie { return e.trie }

// DominationIndex returns the (lazily built) domination index for
// gram length q, exposing its size for the Figure 11 experiment.
func (e *Engine) DominationIndex(q int) (*domination.Index, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if idx, ok := e.dom[q]; ok {
		return idx, nil
	}
	idx, err := domination.Build(e.trie.Text(), q, e.trie.Letters())
	if err != nil {
		return nil, err
	}
	e.dom[q] = idx
	return idx, nil
}

// Search reports every end pair (i, j) whose best local-alignment
// score reaches h into c and returns work statistics. It returns an
// error when the scheme is invalid or h is below the scheme's
// MinThreshold (the q-prefix filter would lose pure-match alignments
// shorter than q; E-value-derived thresholds are always far above).
func (e *Engine) Search(query []byte, s align.Scheme, h int, c *align.Collector) (Stats, error) {
	return e.SearchParallel(query, s, h, c, 1)
}

// SearchParallel is Search with the q-gram fork families dispatched
// across up to workers goroutines (0 or negative means
// runtime.NumCPU(); 1 is the sequential engine). Fork families are
// independent by construction — each owns one gram's subtree and one
// column set — so workers pull families from a shared queue, collect
// hits into private collectors, and the results merge by max-score,
// producing exactly the sequential engine's hit set and entry counts
// regardless of scheduling. The order-dependent G-matrix global filter
// forces workers to 1 when enabled.
func (e *Engine) SearchParallel(query []byte, s align.Scheme, h int, c *align.Collector, workers int) (Stats, error) {
	if err := s.Validate(); err != nil {
		return Stats{}, err
	}
	if minH := s.MinThreshold(); h < minH {
		return Stats{}, fmt.Errorf("core: threshold %d below the exactness floor %d for scheme %v", h, minH, s)
	}
	q := s.Q()
	var st Stats
	st.Threshold, st.Q = h, q
	m := len(query)
	if e.opts.DisableLengthFilter {
		st.Lmax = s.Lmax(m, 1) // positivity bound only
	} else {
		st.Lmax = s.Lmax(m, h)
	}
	if m < q || e.trie.Index().Len() == 0 {
		return st, nil
	}

	qidx, err := qgram.New(query, q, e.trie.Letters())
	if err != nil {
		return st, err
	}
	var dom *domination.Index
	if !e.opts.DisableDomination {
		if dom, err = e.DominationIndex(q); err != nil {
			return st, err
		}
	}
	var gm *gMatrix
	if e.opts.EnableGMatrix {
		gm, err = newGMatrix(e.trie.Index().Len(), m, e.opts.GMatrixMaxBytes)
		if err != nil {
			return st, err
		}
	}

	newCtx := func(coll *align.Collector, stats *Stats) *searchCtx {
		return &searchCtx{
			e: e, query: query, s: s, h: h, c: coll, st: stats,
			lmax:  st.Lmax,
			gOpen: -(s.GapOpen + s.GapExtend), // |sg+ss|
			dom:   dom,
			gm:    gm,
			ws:    e.getWorkspace(),
		}
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if gm != nil {
		workers = 1 // the G-matrix filter's state is traversal-order-dependent
	}
	if workers <= 1 {
		ctx := newCtx(c, &st)
		qidx.GramsSorted(func(gram []byte, cols []int32) {
			ctx.processGram(gram, cols)
		})
		e.putWorkspace(ctx.ws)
		return st, nil
	}
	e.searchFamilies(qidx, newCtx, workers, c, &st)
	return st, nil
}

// searchCtx carries one search worker's state. In a parallel search
// each worker owns one searchCtx with a private collector, stats and
// workspace; the engine merges them afterwards.
type searchCtx struct {
	e     *Engine
	query []byte
	s     align.Scheme
	h     int
	c     *align.Collector
	st    *Stats
	lmax  int
	gOpen int // |sg+ss|, the FGOE crossing level
	dom   *domination.Index
	gm    *gMatrix
	mute  bool // suppress gap-region entry counting (hybrid oracles)

	ws *workspace
}

// workspace is the reusable traversal scratch of one worker: the
// child-enumeration buffer pool (whose los/his slices are the rank
// buffers backward search fills), the per-depth merged band rows and
// the candidate-column buffer. Workspaces live in an engine-level
// sync.Pool so repeated and concurrent searches allocate none of this
// per call.
type workspace struct {
	pool  []*childScratch
	bands []bandRow // per-depth merged gap-region bands (DFS engine)
	cand  []int32   // scratch candidate-column buffer
}

func (e *Engine) getWorkspace() *workspace {
	if ws, ok := e.wsPool.Get().(*workspace); ok {
		return ws
	}
	return &workspace{}
}

func (e *Engine) putWorkspace(ws *workspace) { e.wsPool.Put(ws) }

// childScratch holds one recursion level's child-enumeration buffers,
// the per-child fork workspace and the emit state, so the hot DFS loop
// allocates nothing per node.
type childScratch struct {
	nodes    []strie.Node
	los, his []int32
	forks    []fork
	seeds    []seedCell
	em       emitCtx
}

// scratch pops a buffer set sized for the trie's alphabet.
func (ctx *searchCtx) scratch() *childScratch {
	if n := len(ctx.ws.pool); n > 0 {
		sc := ctx.ws.pool[n-1]
		ctx.ws.pool = ctx.ws.pool[:n-1]
		return sc
	}
	sigma := ctx.e.trie.Index().Sigma()
	return &childScratch{
		nodes: make([]strie.Node, sigma),
		los:   make([]int32, sigma),
		his:   make([]int32, sigma),
	}
}

func (ctx *searchCtx) release(sc *childScratch) {
	ctx.ws.pool = append(ctx.ws.pool, sc)
}

// minGainOK applies Theorem 2: can a cell at (row i, 1-based column j)
// with the given score still reach h? The future gain is bounded by
// sa times the matches still possible, which need both query columns
// and rows: min(m−j, Lmax−i).
func (ctx *searchCtx) minGainOK(score int32, i int, j int32) bool {
	if ctx.e.opts.DisableScoreFilter {
		return true
	}
	remQ := len(ctx.query) - int(j)
	remRows := ctx.lmax - i
	rem := min(remQ, remRows)
	if rem < 0 {
		rem = 0
	}
	return int(score)+rem*ctx.s.Match >= ctx.h
}

// processGram runs one fork family: every fork whose q-prefix is this
// gram, over the whole subtree of the gram's trie node.
func (ctx *searchCtx) processGram(gram []byte, cols []int32) {
	ctx.st.ForksConsidered += int64(len(cols))
	node, ok := ctx.e.trie.Walk(gram)
	if !ok {
		ctx.st.ForksAbsent += int64(len(cols))
		return
	}
	var occ []int // lazily located occurrences of the gram
	occGetter := func() []int {
		if occ == nil {
			occ = ctx.e.trie.Occurrences(node)
		}
		return occ
	}

	survivors := make([]int32, 0, len(cols))
	for _, col0 := range cols {
		if ctx.dom != nil && col0 > 0 && ctx.dom.Dominated(gram, ctx.query[col0-1]) {
			ctx.st.ForksDominated++
			continue
		}
		if ctx.gm != nil && ctx.gm.covered(int(col0), occGetter()) {
			ctx.st.ForksGMatrixFiltered++
			continue
		}
		survivors = append(survivors, col0)
		ctx.st.ForksStarted++
		ctx.st.EntriesEMR += int64(len(gram))
		if ctx.gm != nil {
			ctx.gm.markEMR(int(col0), len(gram), occGetter())
		}
	}
	if len(survivors) == 0 {
		return
	}
	switch ctx.e.opts.Mode {
	case ModeHybrid:
		ctx.hybridGram(node, gram, survivors)
	default:
		ctx.dfsGram(node, gram, survivors, occGetter)
	}
}
