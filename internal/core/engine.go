// Package core implements ALAE, the paper's contribution: exact local
// alignment with affine gaps over a compressed suffix array, sped up
// by a family of filters and by score reuse.
//
//   - Length filtering (Theorem 1) caps the rows of every matrix at
//     Lmax and is applied as a traversal depth bound.
//   - Score filtering (Theorem 2) kills entries that provably cannot
//     reach the threshold H with the query columns and rows remaining.
//   - q-prefix filtering (Theorem 3) only starts fork areas where a
//     q-gram of the query exactly matches the text, splitting each
//     fork into an exact-match region (assigned scores), a no-gap
//     region (Equation 3, one-source recurrence), and a gap region
//     entered at the first gap-open entry (FGOE).
//   - Global filtering (§3.2) skips whole forks: q-prefix domination
//     (Lemma 1, via the offline domination index) and optionally the
//     online boolean matrix G (Theorem 4).
//   - Score reuse (§4) is provided by the Hybrid engine mode, which
//     computes gap regions column-wise (calMatrixByColumn) and copies
//     columns between forks whose FGOEs share a row, using the
//     common-prefix tree of Algorithm 2.
//
// Both engine modes produce exactly the hits of a full Smith-Waterman
// sweep whenever H ≥ Scheme.MinThreshold(), which E-value-derived
// thresholds always satisfy.
package core

import (
	"sync"

	"repro/internal/align"
	"repro/internal/domination"
	"repro/internal/strie"
)

// Mode selects the search engine variant.
type Mode int

const (
	// ModeDFS traverses the emulated suffix trie row-by-row, sharing
	// common path prefixes (the default and fastest mode).
	ModeDFS Mode = iota
	// ModeHybrid is Algorithm 3: horizontal NGR passes to find FGOEs,
	// then vertical gap-region passes with cross-fork score reuse.
	ModeHybrid
)

// Options configures an Engine. The zero value enables every filter
// except the space-hungry G-matrix, matching the paper's ALAE
// configuration; individual filters can be switched off for the
// ablation experiments.
type Options struct {
	Mode Mode

	// DisableLengthFilter turns Theorem 1 off (the traversal is then
	// bounded only by score positivity).
	DisableLengthFilter bool
	// DisableScoreFilter turns Theorem 2 off.
	DisableScoreFilter bool
	// DisableDomination turns the Lemma 1 global filter off.
	DisableDomination bool
	// EnableGMatrix turns the §3.2.1 boolean-matrix global filter on.
	// It needs O(n·m/8) bytes per searched query in the worst case,
	// which is why the paper develops domination as its replacement;
	// GMatrixMaxBytes caps the allocation (default 1 GiB).
	EnableGMatrix   bool
	GMatrixMaxBytes int
	// GramCacheSize is the capacity, in entries, of the cross-query
	// gram→trie-node LRU cache (gramcache.go). 0 means the default
	// (65536 entries); negative disables the cache. The cache only
	// changes where resolution work happens, never its outcome.
	GramCacheSize int
	// DisableEmitSuppression turns the emission path's diagonal
	// dominance filter off, so every occurrence-resolved cell reaches
	// the collector. The hit set is identical either way — the filter
	// only drops provable collector no-ops — which the emission tests
	// verify against this switch.
	DisableEmitSuppression bool
	// DisableCopyReuse turns the hybrid vertical phase's emitted
	// watermark off, so gap regions recomputed across trie branches
	// re-forward their shared-prefix rows instead of counting them as
	// CopiedEmissions. The hit set is identical either way — copied
	// rows are provable collector no-ops — which the copy-reuse
	// property test verifies against this switch.
	DisableCopyReuse bool
	// BarrierByte, when non-zero, is a hard reset row in every band
	// kernel: trie edges labelled with it are never descended, so no
	// alignment path — diagonal or gap — spans an occurrence of the
	// byte (equivalently, every DP cell on a barrier row is −∞ and
	// vertical gaps may not cross it). Multi-member stores set it to
	// their member separator so a hit can never bridge two members.
	// Queries are the caller's responsibility: the q-gram resolution
	// step matches text substrings wholesale, so callers must reject
	// queries containing the byte (the store does) or barrier-crossing
	// gram paths could slip past the edge skips.
	BarrierByte byte
}

// Engine is an ALAE search engine over one indexed text. Searches are
// safe to run concurrently.
type Engine struct {
	trie *strie.Trie
	opts Options

	mu      sync.Mutex
	dom     map[int]*domination.Index // per q, built lazily
	gcaches map[int]*gramCache        // per q, built lazily (gramcache.go)

	wsPool   sync.Pool // *workspace, reused across searches and workers
	sessPool sync.Pool // *Session, reused across queries and callers
}

// New indexes text and returns an engine.
func New(text []byte, opts Options) *Engine {
	return NewFromTrie(strie.New(text), opts)
}

// NewFromTrie wraps an existing emulated suffix trie (shareable with
// the BWT-SW engine).
func NewFromTrie(t *strie.Trie, opts Options) *Engine {
	if opts.GMatrixMaxBytes <= 0 {
		opts.GMatrixMaxBytes = 1 << 30
	}
	return &Engine{trie: t, opts: opts, dom: make(map[int]*domination.Index)}
}

// Trie exposes the underlying emulated suffix trie.
func (e *Engine) Trie() *strie.Trie { return e.trie }

// DominationIndex returns the (lazily built) domination index for
// gram length q, exposing its size for the Figure 11 experiment.
func (e *Engine) DominationIndex(q int) (*domination.Index, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if idx, ok := e.dom[q]; ok {
		return idx, nil
	}
	idx, err := domination.Build(e.trie.Text(), q, e.trie.Letters())
	if err != nil {
		return nil, err
	}
	e.dom[q] = idx
	return idx, nil
}

// Search reports every end pair (i, j) whose best local-alignment
// score reaches h into c and returns work statistics. It returns an
// error when the scheme is invalid or h is below the scheme's
// MinThreshold (the q-prefix filter would lose pure-match alignments
// shorter than q; E-value-derived thresholds are always far above).
func (e *Engine) Search(query []byte, s align.Scheme, h int, c *align.Collector) (Stats, error) {
	return e.SearchParallel(query, s, h, c, 1)
}

// SearchParallel is Search with the q-gram fork families dispatched
// across up to workers goroutines (0 or negative means
// runtime.NumCPU(); 1 is the sequential engine). Fork families are
// independent by construction — each owns one gram's subtree and one
// column set — so workers pull families from a shared queue, collect
// hits into private collector shards, and the results merge by
// max-score, producing exactly the sequential engine's hit set and
// entry counts regardless of scheduling. The order-dependent G-matrix
// global filter forces workers to 1 when enabled.
//
// SearchParallel is the one-shot shell over the session machinery: it
// borrows a pooled Session (which owns every per-query structure and
// re-arms it in place), runs the query, and returns the session. Query
// loops should hold a Session directly via AcquireSession.
func (e *Engine) SearchParallel(query []byte, s align.Scheme, h int, c *align.Collector, workers int) (Stats, error) {
	ses := e.AcquireSession()
	defer ses.Release()
	return ses.Search(query, s, h, c, workers)
}

// buildColBoundsInto precomputes Theorem 2 as table lookups: a cell
// (i, j) with score v survives iff v ≥ h − min(m−j, Lmax−i)·sa, i.e.
// iff v clears BOTH the column bound h−(m−j)·sa (this table,
// colBound[j-1]) and the row bound h−(Lmax−i)·sa (one multiply per
// row, rowBound). With the filter disabled both collapse to negInf and
// never fire. dst is reused when it has the capacity.
func buildColBoundsInto(dst []int32, m, h int, s align.Scheme, disabled bool) []int32 {
	colBound := sizeInt32(dst, m)
	if disabled {
		for j := range colBound {
			colBound[j] = negInf
		}
		return colBound
	}
	for j := 1; j <= m; j++ {
		colBound[j-1] = int32(h - (m-j)*s.Match)
	}
	return colBound
}

// buildDeltaTableInto precomputes δ(a, b) for every edge letter of the
// text against every query column: delta[k*m+j] scores the letter with
// dense code k against 0-based query position j. Building it costs σ·m
// — a few microseconds — and removes a call plus two byte loads from
// every diagonal step and gap-region cell. dst is reused when it has
// the capacity.
func buildDeltaTableInto(dst []int32, letters, query []byte, s align.Scheme) []int32 {
	m := len(query)
	match, mismatch := int32(s.Match), int32(s.Mismatch)
	delta := sizeInt32(dst, len(letters)*m)
	for k, ch := range letters {
		row := delta[k*m : (k+1)*m]
		for j, qc := range query {
			if ch == qc {
				row[j] = match
			} else {
				row[j] = mismatch
			}
		}
	}
	return delta
}

// barrierCode resolves Options.BarrierByte to its dense letter code in
// the indexed text's alphabet, or -1 when no barrier is configured or
// the byte never occurs in the text (then no trie edge can carry it).
func barrierCode(letters []byte, b byte) int {
	if b == 0 {
		return -1
	}
	for k, ch := range letters {
		if ch == b {
			return k
		}
	}
	return -1
}

// sizeInt32 returns dst resized to n elements, reallocating only when
// the capacity is short.
func sizeInt32(dst []int32, n int) []int32 {
	if cap(dst) < n {
		return make([]int32, n)
	}
	return dst[:n]
}

// searchCtx carries one search worker's state. In a parallel search
// each worker owns one searchCtx with a private collector, stats and
// workspace; the engine merges them afterwards.
type searchCtx struct {
	e        *Engine
	query    []byte
	s        align.Scheme
	h        int
	c        *align.Collector
	st       *Stats
	lmax     int
	gOpen    int     // |sg+ss|, the FGOE crossing level
	delta    []int32 // δ table: delta[k*m+j] = δ(letter k, query[j]); read-only, shared
	colBound []int32 // Theorem 2 column bounds: h − (m−j)·sa, or negInf when disabled
	dom      *domination.Index
	gm       *gMatrix
	mute     bool // suppress gap-region entry counting (hybrid oracles)
	barrier  int  // dense code of Options.BarrierByte, or -1 (no barrier)

	// Cancellation state (cancel.go). done is shared by every worker of
	// one search; stopped and nextPoll are per-worker (each worker owns
	// its searchCtx copy).
	done     <-chan struct{}
	stopped  bool
	nextPoll int64

	ws *workspace
}

// deltaRow returns the δ row of the letter with dense code k, indexed
// by 0-based query position.
func (ctx *searchCtx) deltaRow(k int) []int32 {
	m := len(ctx.query)
	return ctx.delta[k*m : (k+1)*m]
}

// rowBound is Theorem 2's row bound for matrix row i: a cell there
// needs at least h − (Lmax−i)·sa (negInf when the filter is off). A
// cell survives iff it clears rowBound(i) AND colBound[j-1].
func (ctx *searchCtx) rowBound(i int) int32 {
	if ctx.e.opts.DisableScoreFilter {
		return negInf
	}
	return int32(ctx.h - (ctx.lmax-i)*ctx.s.Match)
}

// workspace is the reusable traversal scratch of one worker. The DFS
// engine's entire per-gram state lives here as flat structure-of-arrays
// slabs — the explicit walk stack (frames), the live-diagonal stack
// (diags), the merged gap-region band slab (slab) — plus the per-gram
// scratch (initial forks, survivors, seeds, merge runs, occurrence
// buffers). Everything is sized by the first searches and reused, so
// the per-gram path (processGram → dfsGram → advanceMergedBand)
// allocates nothing in steady state. The hybrid engine keeps its
// recursive child-enumeration buffer pool. Workspaces live in an
// engine-level sync.Pool so repeated and concurrent searches share
// them.
type workspace struct {
	pool []*childScratch // hybrid engine's per-level buffers

	frames    []walkFrame   // explicit DFS stack; frame buffers persist across pushes
	diags     []ngrFork     // flat stack of live no-gap diagonals, framed by walkFrame ranges
	slab      bandTriple    // flat SoA merged-band slab, framed by walkFrame ranges
	lin       [2]bandTriple // ping-pong band rows for single-occurrence linear walks
	seeds     []seedCell    // per-child FGOE seeds, rebuilt for every edge
	forks     []fork        // per-gram initial forks; element-wise reuse keeps band capacity
	survivors []int32       // per-gram filter survivors
	occBuf    []int         // gram-node occurrence buffer
	runs      []mergeRun    // fork-band k-way merge cursors

	hb [2]bandPair  // ping-pong rows for newForkInto's pre-q bands
	hs *hybridState // hybrid engine per-search state (frames, arenas), lazily built

	diag      []diagCell     // diagonal dominance table (emit.go), lazily sized
	diagEpoch uint32         // current arming epoch; bumped per fork family
	rowQ      align.RunStage // staging for the gram node's own row-q emissions
}

func (e *Engine) getWorkspace() *workspace {
	if ws, ok := e.wsPool.Get().(*workspace); ok {
		return ws
	}
	return &workspace{}
}

func (e *Engine) putWorkspace(ws *workspace) { e.wsPool.Put(ws) }

// scrub drops the per-search pointers the scratch captured — emit
// contexts point at the search's collector and query, the hybrid state
// at its whole searchCtx — so an idle pooled workspace pins only its
// own buffers, never the last caller's collector, G-matrix or query.
// Retained locate buffers survive (they are workspace-owned). Staging
// buffers are emptied unconditionally: a cancelled search may abandon
// staged runs mid-walk, and they must not leak into the next query.
func (ws *workspace) scrub() {
	for i := range ws.frames {
		em := &ws.frames[i].em
		em.ctx, em.node, em.occ = nil, strie.Node{}, nil
		em.stage.Reset()
	}
	ws.rowQ.Reset()
	if ws.hs != nil {
		ws.hs.ctx = nil
		ws.hs.stage.Reset()
		ws.hs.resetVerts()
		if ws.hs.cpt != nil {
			ws.hs.cpt.Reset(nil) // its p field held the query
		}
	}
}

// childScratch holds one recursion level's child-enumeration buffers
// (los/his are the rank buffers backward search fills) for the hybrid
// engine's recursive descent. The flat DFS engine keeps this state in
// its walkFrames instead.
type childScratch struct {
	nodes    []strie.Node
	los, his []int32
}

// scratch pops a buffer set sized for the trie's alphabet.
func (ctx *searchCtx) scratch() *childScratch {
	if n := len(ctx.ws.pool); n > 0 {
		sc := ctx.ws.pool[n-1]
		ctx.ws.pool = ctx.ws.pool[:n-1]
		return sc
	}
	sigma := ctx.e.trie.Index().Sigma()
	return &childScratch{
		nodes: make([]strie.Node, sigma),
		los:   make([]int32, sigma),
		his:   make([]int32, sigma),
	}
}

func (ctx *searchCtx) release(sc *childScratch) {
	ctx.ws.pool = append(ctx.ws.pool, sc)
}

// minGainOK applies Theorem 2: can a cell at (row i, 1-based column j)
// with the given score still reach h? The future gain is bounded by
// sa times the matches still possible, which need both query columns
// and rows: min(m−j, Lmax−i).
func (ctx *searchCtx) minGainOK(score int32, i int, j int32) bool {
	if ctx.e.opts.DisableScoreFilter {
		return true
	}
	remQ := len(ctx.query) - int(j)
	remRows := ctx.lmax - i
	rem := min(remQ, remRows)
	if rem < 0 {
		rem = 0
	}
	return int(score)+rem*ctx.s.Match >= ctx.h
}

// processGram runs one pre-resolved fork family: every fork whose
// q-prefix is this gram, over the whole subtree of the gram's trie
// node. Gram resolution — and the absent-gram accounting — happened in
// resolveFamilies. The gram node's occurrence list is located lazily;
// for cached grams it is memoised on the cache entry, so hot grams of
// a repeated-query workload locate once per index lifetime.
func (ctx *searchCtx) processGram(fam *gramFamily) {
	if ctx.cancelled(0) {
		return
	}
	node, gram, cols := fam.node, fam.gram, fam.cols
	occ := ctx.ws.occBuf[:0] // lazily located occurrences of the gram
	occGetter := func() []int {
		if len(occ) == 0 {
			if fam.entry != nil {
				if memo := fam.entry.occurrences(); memo != nil {
					occ = memo
					return occ
				}
			}
			occ = ctx.e.trie.OccurrencesAppend(node, occ)
			ctx.ws.occBuf = occ
			if fam.entry != nil {
				fam.entry.memoOccurrences(occ)
			}
		}
		return occ
	}

	survivors := ctx.ws.survivors[:0]
	for _, col0 := range cols {
		if ctx.dom != nil && col0 > 0 && ctx.dom.Dominated(gram, ctx.query[col0-1]) {
			ctx.st.ForksDominated++
			continue
		}
		if ctx.gm != nil && ctx.gm.covered(int(col0), occGetter()) {
			ctx.st.ForksGMatrixFiltered++
			continue
		}
		survivors = append(survivors, col0)
		ctx.st.ForksStarted++
		ctx.st.EntriesEMR += int64(len(gram))
		if ctx.gm != nil {
			ctx.gm.markEMR(int(col0), len(gram), occGetter())
		}
	}
	ctx.ws.survivors = survivors
	if len(survivors) == 0 {
		return
	}
	ctx.armDiag() // fresh dominance epoch: suppression never crosses families
	switch ctx.e.opts.Mode {
	case ModeHybrid:
		ctx.hybridGram(node, gram, survivors)
	default:
		ctx.dfsGram(node, gram, survivors, occGetter)
	}
}
