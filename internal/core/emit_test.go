package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/align"
	"repro/internal/seq"
)

// The emission-path suite: the batched run staging, the diagonal
// dominance filter and the two-level collector must be invisible in
// the results — hit sets byte-identical to the Smith-Waterman oracle
// and across engine modes, parallelism and the suppression switch —
// while the Emitted/Suppressed counters stay scheduling-invariant.

// emitWorkload builds a repeat-dense instance: the trie occurrence
// fan-out over near-identical repeats is what makes the emission path
// hot, stages overflow mid-row, and the dominance filter fire.
func emitWorkload(a *seq.Alphabet, n, m int, seed int64) (text, query []byte) {
	rng := rand.New(rand.NewSource(seed))
	text = seq.RandomGenome(a, seq.GenomeConfig{
		Length: n, RepeatFraction: 0.5, RepeatMutationRate: 0.02,
		RepeatMinLen: 100, RepeatMaxLen: 400,
	}, rng)
	src := len(text)/2 + rng.Intn(len(text)/2-m)
	query = seq.Mutate(a, text[src:src+m], seq.MutationConfig{
		SubstitutionRate: 0.03, IndelRate: 0.005,
	}, rng)
	return text, query
}

// TestEmitParitySuite pins the overhaul's acceptance gate in miniature:
// DNA and protein repeat-dense workloads, sequential / parallel /
// hybrid, all byte-identical to the oracle and to each other, with the
// emission counters invariant under worker count.
func TestEmitParitySuite(t *testing.T) {
	var suppressedTotal int64
	for _, wl := range []struct {
		name   string
		alpha  *seq.Alphabet
		scheme align.Scheme
		seed   int64
	}{
		{"dna", seq.DNA, align.DefaultDNA, 61},
		{"protein", seq.Protein, align.DefaultProtein, 62},
	} {
		t.Run(wl.name, func(t *testing.T) {
			text, query := emitWorkload(wl.alpha, 3000, 150, wl.seed)
			h := wl.scheme.MinThreshold() + 2
			want := align.LocalAll(text, query, wl.scheme, h)
			if len(want) == 0 {
				t.Fatalf("degenerate workload: no oracle hits")
			}
			for _, mode := range []Mode{ModeDFS, ModeHybrid} {
				e := New(text, Options{Mode: mode})
				seqC := align.NewCollector()
				seqSt, err := e.Search(query, wl.scheme, h, seqC)
				if err != nil {
					t.Fatal(err)
				}
				if !align.EqualHits(seqC.Hits(), want) {
					t.Fatalf("mode %v: %d hits vs oracle %d", mode, seqC.Len(), len(want))
				}
				if seqSt.EmittedHits == 0 {
					t.Fatalf("mode %v: no emissions recorded on an emitting workload", mode)
				}
				suppressedTotal += seqSt.SuppressedEmissions
				for _, workers := range []int{2, 5} {
					parC := align.NewCollector()
					parSt, err := e.SearchParallel(query, wl.scheme, h, parC, workers)
					if err != nil {
						t.Fatal(err)
					}
					if !align.EqualHits(parC.Hits(), want) {
						t.Fatalf("mode %v workers %d: hits diverge from oracle", mode, workers)
					}
					if parSt.EmittedHits != seqSt.EmittedHits ||
						parSt.SuppressedEmissions != seqSt.SuppressedEmissions ||
						parSt.CopiedEmissions != seqSt.CopiedEmissions {
						t.Fatalf("mode %v workers %d: emission counters not scheduling-invariant: emitted %d/%d suppressed %d/%d copied %d/%d",
							mode, workers, parSt.EmittedHits, seqSt.EmittedHits,
							parSt.SuppressedEmissions, seqSt.SuppressedEmissions,
							parSt.CopiedEmissions, seqSt.CopiedEmissions)
					}
				}
			}
		})
	}
	if suppressedTotal == 0 {
		t.Error("dominance filter never fired across repeat-dense workloads; the filter is dead code")
	}
}

// TestHybridEmitParity is the vertical-phase overhaul's acceptance
// gate in miniature: on repeat-dense DNA and protein workloads the
// hybrid engine's hit set is byte-identical to the DFS engine's, its
// EmittedHits stays within 10% of DFS's (the watermark keeps re-walked
// branches from re-forwarding their shared rows), and the copy path
// actually fires (CopiedEmissions > 0 — branch-heavy repeats guarantee
// shared prefixes).
func TestHybridEmitParity(t *testing.T) {
	for _, wl := range []struct {
		name   string
		alpha  *seq.Alphabet
		scheme align.Scheme
		seed   int64
	}{
		{"dna", seq.DNA, align.DefaultDNA, 71},
		{"protein", seq.Protein, align.DefaultProtein, 72},
	} {
		t.Run(wl.name, func(t *testing.T) {
			text, query := emitWorkload(wl.alpha, 6000, 200, wl.seed)
			h := wl.scheme.MinThreshold() + 2

			dfs := New(text, Options{Mode: ModeDFS})
			dfsC := align.NewCollector()
			dfsSt, err := dfs.Search(query, wl.scheme, h, dfsC)
			if err != nil {
				t.Fatal(err)
			}
			hyb := New(text, Options{Mode: ModeHybrid})
			hybC := align.NewCollector()
			hybSt, err := hyb.Search(query, wl.scheme, h, hybC)
			if err != nil {
				t.Fatal(err)
			}

			if !align.EqualHits(hybC.Hits(), dfsC.Hits()) {
				t.Fatalf("hybrid hits diverge from DFS (%d vs %d)", hybC.Len(), dfsC.Len())
			}
			if dfsSt.EmittedHits == 0 {
				t.Fatal("degenerate workload: DFS emitted nothing")
			}
			if lo, hi := dfsSt.EmittedHits*9/10, dfsSt.EmittedHits*11/10; hybSt.EmittedHits < lo || hybSt.EmittedHits > hi {
				t.Fatalf("hybrid EmittedHits %d outside 10%% of DFS %d", hybSt.EmittedHits, dfsSt.EmittedHits)
			}
			if hybSt.CopiedEmissions == 0 {
				t.Fatal("hybrid copy path never fired on a repeat-dense workload; the watermark is dead code")
			}
			if dfsSt.CopiedEmissions != 0 {
				t.Fatalf("DFS reported %d CopiedEmissions; the counter is hybrid-only", dfsSt.CopiedEmissions)
			}
		})
	}
}

// TestPropertyCopyReuseLossless is the copy path's safety property: for
// any input, the hybrid engine with copy reuse produces exactly the hit
// set of the engine without it, and the emission books balance — every
// fan-out cell is forwarded, suppressed, or copied, never silently
// dropped, so Emitted+Suppressed+Copied is invariant under the switch.
func TestPropertyCopyReuseLossless(t *testing.T) {
	s := align.DefaultDNA
	f := func(in suppressionInput) bool {
		h := s.MinThreshold() + int(in.HOff)
		on := New(in.Text, Options{Mode: ModeHybrid})
		cOn := align.NewCollector()
		stOn, err := on.Search(in.Query, s, h, cOn)
		if err != nil {
			return false
		}
		off := New(in.Text, Options{Mode: ModeHybrid, DisableCopyReuse: true})
		cOff := align.NewCollector()
		stOff, err := off.Search(in.Query, s, h, cOff)
		if err != nil {
			return false
		}
		if stOff.CopiedEmissions != 0 {
			return false
		}
		onTotal := stOn.EmittedHits + stOn.SuppressedEmissions + stOn.CopiedEmissions
		offTotal := stOff.EmittedHits + stOff.SuppressedEmissions
		if onTotal != offTotal {
			return false
		}
		return align.EqualHits(cOn.Hits(), cOff.Hits())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestEmitStageOverflow drives the flush-and-retry path hard: a
// single-letter text makes every q-gram occur everywhere, so fan-out
// and run lengths overflow the fixed stage capacities many times per
// band row. The result must still match the oracle exactly.
func TestEmitStageOverflow(t *testing.T) {
	s := align.DefaultDNA
	text := make([]byte, 400)
	for i := range text {
		text[i] = 'A'
	}
	rng := rand.New(rand.NewSource(63))
	query := make([]byte, 60)
	for i := range query {
		if rng.Intn(10) == 0 {
			query[i] = 'C'
		} else {
			query[i] = 'A'
		}
	}
	h := s.MinThreshold() + 1
	want := align.LocalAll(text, query, s, h)
	for _, mode := range []Mode{ModeDFS, ModeHybrid} {
		e := New(text, Options{Mode: mode})
		c := align.NewCollector()
		st, err := e.Search(query, s, h, c)
		if err != nil {
			t.Fatal(err)
		}
		if !align.EqualHits(c.Hits(), want) {
			t.Fatalf("mode %v: %d hits vs oracle %d", mode, c.Len(), len(want))
		}
		if st.EmittedHits < int64(len(want)) {
			t.Fatalf("mode %v: EmittedHits %d below distinct hit count %d", mode, st.EmittedHits, len(want))
		}
	}
}

// suppressionInput reuses the randomized generator shape of
// property_test.go but biases toward repetitive texts, where duplicate
// emissions (and so suppression) actually occur.
type suppressionInput struct {
	Text  []byte
	Query []byte
	HOff  uint8
	Mode  bool
}

func (suppressionInput) Generate(r *rand.Rand, _ int) reflect.Value {
	letters := []byte("ACGT")
	sigma := 2 + r.Intn(3) // small alphabets repeat heavily
	n := 20 + r.Intn(150)
	m := 8 + r.Intn(60)
	in := suppressionInput{
		Text:  make([]byte, n),
		Query: make([]byte, m),
		HOff:  uint8(r.Intn(6)),
		Mode:  r.Intn(2) == 0,
	}
	for i := range in.Text {
		in.Text[i] = letters[r.Intn(sigma)]
	}
	for i := range in.Query {
		in.Query[i] = letters[r.Intn(sigma)]
	}
	return reflect.ValueOf(in)
}

// TestPropertyEmitSuppressionLossless is the dominance filter's
// safety property: for any input, the engine with suppression produces
// exactly the hit set (per-pair maxima included) of the engine without
// it, and the books balance — every fan-out cell is either forwarded
// or suppressed, never silently dropped.
func TestPropertyEmitSuppressionLossless(t *testing.T) {
	s := align.DefaultDNA
	f := func(in suppressionInput) bool {
		h := s.MinThreshold() + int(in.HOff)
		opts := Options{}
		if in.Mode {
			opts.Mode = ModeHybrid
		}
		on := New(in.Text, opts)
		cOn := align.NewCollector()
		stOn, err := on.Search(in.Query, s, h, cOn)
		if err != nil {
			return false
		}
		offOpts := opts
		offOpts.DisableEmitSuppression = true
		off := New(in.Text, offOpts)
		cOff := align.NewCollector()
		stOff, err := off.Search(in.Query, s, h, cOff)
		if err != nil {
			return false
		}
		if stOff.SuppressedEmissions != 0 {
			return false
		}
		if stOn.EmittedHits+stOn.SuppressedEmissions != stOff.EmittedHits {
			return false
		}
		return align.EqualHits(cOn.Hits(), cOff.Hits())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
