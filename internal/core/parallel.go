package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/align"
)

// The parallel fork-family scheduler. A fork family — one distinct
// q-gram of the query with its pre-resolved trie node and column set
// (see resolve.go) — is the engine's natural unit of independent work:
// families never share traversal state, only the read-only index
// structures (trie, domination index, query, δ table), and their
// outputs combine through the collector's commutative max-merge and
// additive statistics. Families vary wildly in cost (a family over a
// frequent gram walks a much larger subtree), so the scheduler uses an
// atomic work-stealing cursor over the sorted family list instead of
// static striping: idle workers immediately pull the next family.
//
// Hit recording is sharded: each worker owns one open-addressing table
// of the session's ShardedCollector, so no Add ever contends, and the
// shards merge into the caller's collector by table scan afterwards.
// The shards (and the per-worker Stats) belong to the session and are
// re-armed per query, so a serving session's parallel path reuses its
// warm tables instead of allocating per search.

// searchFamilies fans the pre-resolved fork families out over workers
// goroutines and merges the per-worker collector shards and statistics
// into c and st. base carries the search-shared context fields; each
// lane copies it and fills in its own collector, stats and workspace.
// st must already carry Threshold/Q/Lmax (plus the resolution-time
// fork accounting).
func (ses *Session) searchFamilies(families []gramFamily, base searchCtx, workers int, c *align.Collector, st *Stats) {
	e := ses.e
	if workers > len(families) {
		workers = len(families)
	}
	if workers <= 1 {
		// The sequential lane runs in the session-owned context, so a
		// warm sequential search allocates nothing; the context is
		// zeroed afterwards so a pooled idle session never pins the
		// caller's collector or query.
		ctx := &ses.ctx
		*ctx = base
		ctx.c, ctx.st, ctx.ws = c, st, ses.ws
		for i := range families {
			if ctx.stopped {
				break // cancelled (cancel.go); SearchContext reports the error
			}
			ctx.processGram(&families[i])
		}
		ses.ws.scrub()
		*ctx = searchCtx{}
		return
	}

	if ses.shards == nil {
		ses.shards = align.NewSharded(workers)
	} else {
		ses.shards.Resize(workers)
	}
	ses.shards.ResetAll()
	if cap(ses.wstats) < workers {
		ses.wstats = make([]Stats, workers)
	}
	wstats := ses.wstats[:workers]

	var cursor atomic.Int64
	ctxs := make([]*searchCtx, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Worker stats start from the search-level constants so the
		// final Stats.Add merge preserves them.
		wstats[w] = Stats{Threshold: st.Threshold, Q: st.Q, Lmax: st.Lmax}
		ws := ses.ws
		if w > 0 {
			ws = e.getWorkspace() // extra lanes borrow pooled workspaces
		}
		ctx := base
		ctx.c, ctx.st, ctx.ws = ses.shards.Shard(w), &wstats[w], ws
		ctxs[w] = &ctx
		wg.Add(1)
		go func(ctx *searchCtx) {
			defer wg.Done()
			for {
				if ctx.stopped {
					return // cancelled (cancel.go); partial stats still merge
				}
				i := int(cursor.Add(1)) - 1
				if i >= len(families) {
					return
				}
				ctx.processGram(&families[i])
			}
		}(ctxs[w])
	}
	wg.Wait()
	for w, ctx := range ctxs {
		st.Add(*ctx.st)
		ctx.ws.scrub()
		if w > 0 {
			e.putWorkspace(ctx.ws)
		}
	}
	ses.shards.MergeInto(c, workers)
}

// familyCost estimates the band work a fork family will do: columns to
// sweep times the width of the gram's SA range (the subtree the fork
// descends into). It only steers load balancing — a wrong estimate
// costs wall-clock, never exactness.
func familyCost(f *gramFamily) int64 {
	return int64(len(f.cols)) * int64(f.node.Hi-f.node.Lo)
}

// partitionFamilies cuts the family list into k contiguous slices
// balanced by estimated band cost: cuts[w] is the first family of lane
// w, cuts[k] = len(families). Greedy with a half-family overshoot rule
// — a family joins the current lane while that lands the lane closer
// to the remaining average — while always leaving at least one family
// for every remaining lane. Callers clamp k ≤ len(families), so every
// lane is non-empty. The cuts depend only on the family list (which is
// resolution-order deterministic), never on timing, so a sliced search
// is reproducible.
func partitionFamilies(families []gramFamily, k int) []int {
	var remaining int64
	for i := range families {
		remaining += familyCost(&families[i])
	}
	cuts := make([]int, k+1)
	cuts[k] = len(families)
	idx := 0
	for w := 0; w < k; w++ {
		cuts[w] = idx
		target := remaining / int64(k-w)
		maxEnd := len(families) - (k - w - 1)
		var acc int64
		for idx < maxEnd && (idx == cuts[w] || acc+familyCost(&families[idx])/2 <= target) {
			acc += familyCost(&families[idx])
			idx++
		}
		remaining -= acc
	}
	return cuts
}

// searchFamilySlices is the shared-index scatter's dispatch: the same
// fan-out as searchFamilies, but each lane owns one pre-cut contiguous
// family slice (partitionFamilies) instead of pulling from a
// work-stealing cursor. The store's shard lanes run through here — K
// shards of a store are K slices of ONE resolved family list over one
// monolithic index, so every family (and with it every DP entry) is
// processed exactly once whatever K is: CalculatedEntries and the hit
// set are byte-identical across lane counts, which is the invariant
// the old text-partitioned sharding could not offer (it redid ~1.7×
// the entries at K=4). Static slices also keep each lane's traversal
// order deterministic, at the price of coarser balancing than
// stealing — the cost model above is what pays that back.
func (ses *Session) searchFamilySlices(families []gramFamily, base searchCtx, lanes int, c *align.Collector, st *Stats) {
	e := ses.e
	if lanes > len(families) {
		lanes = len(families)
	}
	if lanes <= 1 {
		ses.searchFamilies(families, base, 1, c, st)
		return
	}
	cuts := partitionFamilies(families, lanes)

	if ses.shards == nil {
		ses.shards = align.NewSharded(lanes)
	} else {
		ses.shards.Resize(lanes)
	}
	ses.shards.ResetAll()
	if cap(ses.wstats) < lanes {
		ses.wstats = make([]Stats, lanes)
	}
	wstats := ses.wstats[:lanes]

	ctxs := make([]*searchCtx, lanes)
	var wg sync.WaitGroup
	for w := 0; w < lanes; w++ {
		wstats[w] = Stats{Threshold: st.Threshold, Q: st.Q, Lmax: st.Lmax}
		ws := ses.ws
		if w > 0 {
			ws = e.getWorkspace()
		}
		ctx := base
		ctx.c, ctx.st, ctx.ws = ses.shards.Shard(w), &wstats[w], ws
		ctxs[w] = &ctx
		wg.Add(1)
		go func(ctx *searchCtx, fams []gramFamily) {
			defer wg.Done()
			for i := range fams {
				if ctx.stopped {
					return // cancelled (cancel.go); partial stats still merge
				}
				ctx.processGram(&fams[i])
			}
		}(ctxs[w], families[cuts[w]:cuts[w+1]])
	}
	wg.Wait()
	for w, ctx := range ctxs {
		st.Add(*ctx.st)
		ctx.ws.scrub()
		if w > 0 {
			e.putWorkspace(ctx.ws)
		}
	}
	ses.shards.MergeInto(c, lanes)
}
