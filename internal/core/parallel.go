package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/align"
	"repro/internal/qgram"
)

// The parallel fork-family scheduler. A fork family — one distinct
// q-gram of the query with its column set — is the engine's natural
// unit of independent work: families never share traversal state, only
// the read-only index structures (trie, domination index, query), and
// their outputs combine through the collector's commutative max-merge
// and additive statistics. Families vary wildly in cost (a family over
// a frequent gram walks a much larger subtree), so the scheduler uses
// an atomic work-stealing cursor over the sorted family list instead
// of static striping: idle workers immediately pull the next family.

// gramFamily is one unit of schedulable work.
type gramFamily struct {
	gram []byte
	cols []int32
}

// searchFamilies fans the query's fork families out over workers
// goroutines and merges the per-worker collectors and statistics into
// c and st. st must already carry Threshold/Q/Lmax.
func (e *Engine) searchFamilies(qidx *qgram.Index, newCtx func(*align.Collector, *Stats) *searchCtx, workers int, c *align.Collector, st *Stats) {
	var families []gramFamily
	qidx.GramsSorted(func(gram []byte, cols []int32) {
		// GramsSorted reuses its gram buffer; the scheduler outlives
		// the callback, so copy. cols is safely shared read-only.
		families = append(families, gramFamily{gram: append([]byte(nil), gram...), cols: cols})
	})
	if workers > len(families) {
		workers = len(families)
	}
	if workers <= 1 {
		ctx := newCtx(c, st)
		for _, fam := range families {
			ctx.processGram(fam.gram, fam.cols)
		}
		e.putWorkspace(ctx.ws)
		return
	}

	var cursor atomic.Int64
	ctxs := make([]*searchCtx, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Worker stats start from the search-level constants so the
		// final Stats.Add merge preserves them.
		wst := &Stats{Threshold: st.Threshold, Q: st.Q, Lmax: st.Lmax}
		ctxs[w] = newCtx(align.NewCollector(), wst)
		wg.Add(1)
		go func(ctx *searchCtx) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(families) {
					return
				}
				ctx.processGram(families[i].gram, families[i].cols)
			}
		}(ctxs[w])
	}
	wg.Wait()
	for _, ctx := range ctxs {
		st.Add(*ctx.st)
		c.Merge(ctx.c)
		e.putWorkspace(ctx.ws)
	}
}
