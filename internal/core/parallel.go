package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/align"
)

// The parallel fork-family scheduler. A fork family — one distinct
// q-gram of the query with its pre-resolved trie node and column set
// (see resolve.go) — is the engine's natural unit of independent work:
// families never share traversal state, only the read-only index
// structures (trie, domination index, query, δ table), and their
// outputs combine through the collector's commutative max-merge and
// additive statistics. Families vary wildly in cost (a family over a
// frequent gram walks a much larger subtree), so the scheduler uses an
// atomic work-stealing cursor over the sorted family list instead of
// static striping: idle workers immediately pull the next family.

// searchFamilies fans the pre-resolved fork families out over workers
// goroutines and merges the per-worker collectors and statistics into
// c and st. st must already carry Threshold/Q/Lmax (plus the
// resolution-time fork accounting).
func (e *Engine) searchFamilies(families []gramFamily, newCtx func(*align.Collector, *Stats) *searchCtx, workers int, c *align.Collector, st *Stats) {
	if workers > len(families) {
		workers = len(families)
	}
	if workers <= 1 {
		ctx := newCtx(c, st)
		for i := range families {
			ctx.processGram(&families[i])
		}
		e.putWorkspace(ctx.ws)
		return
	}

	var cursor atomic.Int64
	ctxs := make([]*searchCtx, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Worker stats start from the search-level constants so the
		// final Stats.Add merge preserves them.
		wst := &Stats{Threshold: st.Threshold, Q: st.Q, Lmax: st.Lmax}
		ctxs[w] = newCtx(align.NewCollector(), wst)
		wg.Add(1)
		go func(ctx *searchCtx) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(families) {
					return
				}
				ctx.processGram(&families[i])
			}
		}(ctxs[w])
	}
	wg.Wait()
	for _, ctx := range ctxs {
		st.Add(*ctx.st)
		c.Merge(ctx.c)
		e.putWorkspace(ctx.ws)
	}
}
