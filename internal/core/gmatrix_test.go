package core

import "testing"

func TestGMatrixCoverAndMark(t *testing.T) {
	g, err := newGMatrix(100, 10, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	occ := []int{5, 50, 95}
	if g.covered(3, occ) {
		t.Error("fresh matrix reports coverage")
	}
	g.markEMR(3, 4, occ) // rows t..t+3 at columns 3..6
	if !g.covered(3, occ) {
		t.Error("marked occurrences not covered at the start column")
	}
	// Column 4 is covered at rows t+1 for each occurrence, not t.
	if g.covered(4, occ) {
		t.Error("column 4 should not cover the unshifted occurrence rows")
	}
	shifted := []int{6, 51, 96}
	if !g.covered(4, shifted) {
		t.Error("column 4 should cover the shifted rows")
	}
	// Partial coverage is not coverage.
	if g.covered(3, []int{5, 50, 96}) {
		t.Error("an unmarked occurrence must defeat coverage")
	}
	if g.SizeBytes() <= 0 {
		t.Error("no allocation recorded")
	}
}

func TestGMatrixBoundsClamping(t *testing.T) {
	g, err := newGMatrix(10, 3, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Marks past the column or row limits must be dropped silently.
	g.markEMR(2, 5, []int{8})
	if !g.covered(2, []int{8}) {
		t.Error("in-range mark lost")
	}
}

func TestGMatrixCapRejectsUpFront(t *testing.T) {
	if _, err := newGMatrix(1<<20, 1<<20, 1024); err == nil {
		t.Error("worst case over the cap must be rejected at construction")
	}
}
