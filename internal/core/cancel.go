package core

// Cancellation checkpoints. A serving process needs a way to STOP a
// running search — a request deadline fires, the client disconnects,
// the server drains — and the traversal loops are where the time goes,
// so that is where cancellation must be observed. Polling a context on
// every DP cell would dominate the inner loops; instead each worker's
// searchCtx polls its context's done channel whenever the worker's
// calculated-entry count has advanced by cancelEntryBudget since the
// last poll. Every traversal unit between two checkpoint calls
// computes a bounded number of entries (one trie-edge advance, one
// linear-walk level, one vertical column — each O(m) or O(Lmax)), so a
// cancelled search stops within a bounded entry budget per worker:
// at most cancelEntryBudget plus one unit's entries past the moment
// the context fires. Hits already collected are discarded by the
// caller (SearchContext returns the context's error); the session and
// its buffers remain fully reusable — cancellation unwinds through the
// same truncation paths a dead subtree does.

// cancelEntryBudget is the number of calculated entries a worker may
// accrue between two polls of its cancellation signal. It bounds both
// the polling overhead (one channel poll per 64Ki entries — noise next
// to the entries themselves) and the post-cancellation overrun.
const cancelEntryBudget = 1 << 16

// cancelled reports whether the search's context has been cancelled,
// polling the done channel only when the worker's entry count has
// crossed the next budget mark. pending carries entries a caller has
// accumulated locally but not yet flushed into ctx.st (the DFS walk
// batches its NGR counts), so the budget accounting sees them too.
// Once the channel fires the result latches: every later call is a
// cheap field read and the traversal unwinds without polling again.
func (ctx *searchCtx) cancelled(pending int64) bool {
	if ctx.stopped {
		return true
	}
	if ctx.done == nil {
		return false
	}
	if ce := ctx.st.CalculatedEntries() + pending; ce >= ctx.nextPoll {
		ctx.nextPoll = ce + cancelEntryBudget
		select {
		case <-ctx.done:
			ctx.stopped = true
		default:
		}
	}
	return ctx.stopped
}
