package blast

import (
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/seq"
)

func randDNA(n int, rng *rand.Rand) []byte {
	letters := []byte("ACGT")
	out := make([]byte, n)
	for i := range out {
		out[i] = letters[rng.Intn(4)]
	}
	return out
}

func TestHitsAreSubsetOfExact(t *testing.T) {
	// BLAST may miss results but must never invent or overscore one.
	rng := rand.New(rand.NewSource(90))
	for trial := 0; trial < 20; trial++ {
		text := randDNA(400, rng)
		query := seq.Mutate(seq.DNA, text[100:220],
			seq.MutationConfig{SubstitutionRate: 0.05, IndelRate: 0.01}, rng)
		h := 20
		e := New(text, []byte("ACGT"), Options{})
		c := align.NewCollector()
		e.Search(query, align.DefaultDNA, h, c)
		// Every reported end pair must be a real result; the windowed
		// gapped pass may *under*-score a hit whose optimal alignment
		// escapes the window, but it must never overscore one.
		exact := make(map[[2]int]int)
		for _, hit := range align.LocalAll(text, query, align.DefaultDNA, h) {
			exact[[2]int{hit.TEnd, hit.QEnd}] = hit.Score
		}
		for _, hit := range c.Hits() {
			best, ok := exact[[2]int{hit.TEnd, hit.QEnd}]
			if !ok {
				t.Fatalf("trial %d: BLAST hit %+v is not a real result", trial, hit)
			}
			if hit.Score > best {
				t.Fatalf("trial %d: BLAST overscored %+v (exact %d)", trial, hit, best)
			}
		}
	}
}

func TestFindsPlantedStrongAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	text := randDNA(2000, rng)
	// A planted exact copy has w-length words everywhere: BLAST must
	// recover its hits in full.
	query := append(randDNA(30, rng), append(append([]byte(nil), text[500:580]...), randDNA(30, rng)...)...)
	h := 40
	e := New(text, []byte("ACGT"), Options{})
	c := align.NewCollector()
	st := e.Search(query, align.DefaultDNA, h, c)
	if st.Seeds == 0 || st.GappedExts == 0 {
		t.Fatalf("no seeding happened: %+v", st)
	}
	want := align.LocalAll(text, query, align.DefaultDNA, h)
	if len(want) == 0 {
		t.Fatal("planted workload produced no exact hits; test is vacuous")
	}
	got := c.Hits()
	// The planted region is seed-rich; BLAST should find essentially
	// everything the exact engines find here.
	if len(got) < len(want)*9/10 {
		t.Errorf("BLAST found %d of %d hits around a planted exact copy", len(got), len(want))
	}
}

func TestMissesSeedlessAlignment(t *testing.T) {
	// A strong alignment whose longest exact run is below the word
	// size must be invisible to the heuristic — this is the accuracy
	// gap the paper's exact methods close.
	s := align.DefaultDNA
	w := 11
	// Build a text/query pair matching 8, mismatching 1, repeatedly.
	var text, query []byte
	rng := rand.New(rand.NewSource(92))
	for k := 0; k < 30; k++ {
		run := randDNA(8, rng)
		text = append(text, run...)
		query = append(query, run...)
		text = append(text, 'A')
		query = append(query, 'C') // forced mismatch every 9th column
	}
	h := 20
	exact := align.LocalAll(text, query, s, h)
	if len(exact) == 0 {
		t.Fatal("construction failed to produce exact hits")
	}
	e := New(text, []byte("ACGT"), Options{WordSize: w})
	c := align.NewCollector()
	e.Search(query, s, h, c)
	if c.Len() >= len(exact) {
		t.Errorf("heuristic found %d of %d hits; expected it to miss seedless ones",
			c.Len(), len(exact))
	}
}

func TestShortQueryAndEmptyText(t *testing.T) {
	e := New([]byte("ACGTACGTACGT"), []byte("ACGT"), Options{})
	c := align.NewCollector()
	if st := e.Search([]byte("ACGT"), align.DefaultDNA, 5, c); st.Seeds != 0 {
		t.Error("query shorter than the word size should not seed")
	}
	e2 := New(nil, []byte("ACGT"), Options{})
	if st := e2.Search(randDNA(50, rand.New(rand.NewSource(1))), align.DefaultDNA, 5, c); st.Seeds != 0 {
		t.Error("empty text should not seed")
	}
}

func TestWordSizeFallback(t *testing.T) {
	// A huge word size over a wide alphabet cannot pack into 62 bits;
	// the engine must shrink it rather than fail.
	letters := []byte("ACDEFGHIKLMNPQRSTVWY")
	e := New([]byte("ACDEFGHIKLMNPQRSTVWY"), letters, Options{WordSize: 40})
	if e.WordSize() >= 40 {
		t.Errorf("word size %d not reduced", e.WordSize())
	}
}

func TestSchemeInsensitivity(t *testing.T) {
	// Figure 9's observation: BLAST's work hardly changes across
	// scoring schemes, because seeding ignores the scheme.
	rng := rand.New(rand.NewSource(93))
	text := randDNA(5000, rng)
	query := seq.Mutate(seq.DNA, text[1000:1500],
		seq.MutationConfig{SubstitutionRate: 0.03}, rng)
	var seedCounts []int64
	for _, s := range align.Fig9Schemes {
		e := New(text, []byte("ACGT"), Options{})
		c := align.NewCollector()
		st := e.Search(query, s, 30, c)
		seedCounts = append(seedCounts, st.Seeds)
	}
	for _, n := range seedCounts[1:] {
		if n != seedCounts[0] {
			t.Errorf("seed counts vary across schemes: %v", seedCounts)
		}
	}
}

func TestSeparatorBytesNotSeeded(t *testing.T) {
	coll := seq.NewCollection([]seq.Record{
		{Header: "a", Seq: []byte("ACGTACGTACGTACGT")},
		{Header: "b", Seq: []byte("TTTTGGGGCCCCAAAA")},
	})
	e := New(coll.Text(), []byte("ACGT"), Options{WordSize: 4})
	c := align.NewCollector()
	st := e.Search([]byte("ACGTACGTACGT"), align.DefaultDNA, 8, c)
	if st.Seeds == 0 {
		t.Error("no seeds in collection search")
	}
}

func BenchmarkSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(94))
	text := randDNA(1_000_000, rng)
	query := seq.Mutate(seq.DNA, text[10000:20000],
		seq.MutationConfig{SubstitutionRate: 0.05, IndelRate: 0.005}, rng)
	e := New(text, []byte("ACGT"), Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := align.NewCollector()
		e.Search(query, align.DefaultDNA, 30, c)
	}
}
