// Package blast implements a BLAST-family heuristic baseline:
// word-seeded, X-drop-extended local alignment search. It stands in
// for NCBI BLAST in the paper's comparisons (Tables 2-3, Figure 9).
// Like the real tool it is fast, largely insensitive to the scoring
// scheme, and *approximate*: alignments whose text/query match
// structure never produces a full w-character exact word are missed,
// which is why the exact engines report more results (§7.1: "It is
// worth mentioning that ALAE found more results than BLAST did").
//
// Pipeline per query: (1) look up every query w-mer in the text word
// index; (2) ungapped X-drop extension of each seed, with per-diagonal
// dedup; (3) for seeds whose ungapped score reaches the trigger, a
// gapped pass over a window around the seed that reports every end
// pair scoring at least H, making its result counts directly
// comparable with the exact engines'.
package blast

import (
	"repro/internal/align"
	"repro/internal/qgram"
)

// Options tunes the heuristic.
type Options struct {
	// WordSize is the seed length w. Default: 11 for alphabets of at
	// most 4 letters (blastn's default), 4 otherwise.
	WordSize int
	// XDrop is how far below the best-so-far score an ungapped
	// extension may fall before stopping. Default 20·sa... scaled by
	// the scheme in effect at search time when zero.
	XDrop int
	// UngappedTrigger is the ungapped score required to run the
	// gapped pass, as a fraction of the threshold H. Default 0.5.
	UngappedTrigger float64
	// WindowPad is the extra margin around the ungapped segment that
	// the gapped pass examines. Default 64.
	WindowPad int
}

func (o *Options) fillDefaults(sigma int) {
	if o.WordSize <= 0 {
		if sigma <= 4 {
			o.WordSize = 11
		} else {
			o.WordSize = 4
		}
	}
	if o.UngappedTrigger <= 0 {
		o.UngappedTrigger = 0.5
	}
	if o.WindowPad <= 0 {
		o.WindowPad = 64
	}
}

// Stats reports the work done by one search.
type Stats struct {
	Seeds             int64 // word hits examined
	UngappedExts      int64 // ungapped extensions run
	GappedExts        int64 // gapped windows evaluated
	CalculatedEntries int64 // DP cells computed in gapped windows
}

// Engine is a word-indexed text ready for searches.
type Engine struct {
	text   []byte
	opts   Options
	words  map[uint64][]int32
	packer *qgram.Packer
	sigma  int
}

// New indexes the text's w-mers. letters is the alphabet of interest;
// words containing other bytes are not indexed.
func New(text []byte, letters []byte, opts Options) *Engine {
	opts.fillDefaults(len(letters))
	e := &Engine{text: text, opts: opts, sigma: len(letters)}
	e.packer = qgram.NewPacker(letters, opts.WordSize)
	if e.packer == nil {
		// Word too wide to pack: fall back to a shorter word size.
		for opts.WordSize > 1 && e.packer == nil {
			opts.WordSize--
			e.packer = qgram.NewPacker(letters, opts.WordSize)
		}
		e.opts = opts
	}
	e.words = make(map[uint64][]int32)
	w := opts.WordSize
	for i := 0; i+w <= len(text); i++ {
		if key, ok := e.packer.Pack(text[i : i+w]); ok {
			e.words[key] = append(e.words[key], int32(i))
		}
	}
	return e
}

// WordSize returns the effective seed length.
func (e *Engine) WordSize() int { return e.opts.WordSize }

// Search reports end pairs with score ≥ h into c. The result is a
// subset of what the exact engines report.
func (e *Engine) Search(query []byte, s align.Scheme, h int, c *align.Collector) Stats {
	var st Stats
	w := e.opts.WordSize
	if len(query) < w || len(e.text) == 0 {
		return st
	}
	xdrop := e.opts.XDrop
	if xdrop <= 0 {
		xdrop = 20 * s.Match
	}
	trigger := int(float64(h) * e.opts.UngappedTrigger)
	if trigger < w*s.Match {
		trigger = w * s.Match // a bare word already scores this much
	}

	// Per-diagonal high-water mark of query positions already covered
	// by an extension, the classic one-hit dedup.
	covered := make(map[int32]int32)

	key, ok := uint64(0), false
	for qp := 0; qp+w <= len(query); qp++ {
		if qp == 0 {
			key, ok = e.packer.Pack(query[:w])
		} else {
			key, ok = e.packer.Next(key, query[qp+w-1])
		}
		if !ok {
			// Re-sync after a foreign byte.
			if qp+w < len(query) {
				key, ok = e.packer.Pack(query[qp+1 : qp+1+w])
			}
			continue
		}
		for _, tp32 := range e.words[key] {
			tp := int(tp32)
			st.Seeds++
			diag := int32(tp - qp)
			if hw, seen := covered[diag]; seen && int32(qp) < hw {
				continue
			}
			st.UngappedExts++
			score, tLo, tHi, qLo, qHi := e.ungapped(query, s, tp, qp, w, xdrop)
			covered[diag] = int32(qHi + 1)
			if score < trigger {
				continue
			}
			st.GappedExts++
			st.CalculatedEntries += e.gapped(query, s, h, c, tLo, tHi, qLo, qHi)
		}
	}
	return st
}

// ungapped extends the exact word [tp, tp+w) × [qp, qp+w) in both
// directions without gaps under an X-drop rule, returning the best
// segment score and its half-open spans.
func (e *Engine) ungapped(query []byte, s align.Scheme, tp, qp, w, xdrop int) (score, tLo, tHi, qLo, qHi int) {
	score = w * s.Match
	tLo, tHi = tp, tp+w
	qLo, qHi = qp, qp+w

	// Right.
	cur, best := score, score
	bt, bq := tHi, qHi
	for ti, qi := tHi, qHi; ti < len(e.text) && qi < len(query); ti, qi = ti+1, qi+1 {
		cur += s.Delta(e.text[ti], query[qi])
		if cur > best {
			best, bt, bq = cur, ti+1, qi+1
		}
		if cur <= best-xdrop {
			break
		}
	}
	score, tHi, qHi = best, bt, bq

	// Left.
	cur, best = score, score
	blt, blq := tLo, qLo
	for ti, qi := tLo-1, qLo-1; ti >= 0 && qi >= 0; ti, qi = ti-1, qi-1 {
		cur += s.Delta(e.text[ti], query[qi])
		if cur > best {
			best, blt, blq = cur, ti, qi
		}
		if cur <= best-xdrop {
			break
		}
	}
	return best, blt, tHi, blq, qHi
}

// gapped runs the exact affine DP over a padded window around the
// ungapped segment and reports every end pair at or above h, with
// coordinates shifted back to global positions. Returns cells computed.
func (e *Engine) gapped(query []byte, s align.Scheme, h int, c *align.Collector, tLo, tHi, qLo, qHi int) int64 {
	pad := e.opts.WindowPad
	wtLo, wtHi := max(0, tLo-pad), min(len(e.text), tHi+pad)
	wqLo, wqHi := max(0, qLo-pad), min(len(query), qHi+pad)
	sub := e.text[wtLo:wtHi]
	qsub := query[wqLo:wqHi]
	local := align.NewCollector()
	cells := align.LocalAllInto(sub, qsub, s, h, local)
	for _, hit := range local.Hits() {
		c.Add(hit.TEnd+wtLo, hit.QEnd+wqLo, hit.Score)
	}
	return int64(cells)
}
