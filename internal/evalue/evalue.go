// Package evalue implements the Karlin-Altschul statistics that relate
// alignment scores to expectation values. The paper's experiments set
// the threshold indirectly: "E = K·m·n·e^{−λS}", hence
// "H = ⌈(ln(K·m·n) − ln E)/λ⌉" (§7, citing OASIS [11]); λ and K are
// the scaling constants computed by BLAST.
//
// λ is the unique positive solution of Σ p_a·p_b·e^{λ·s(a,b)} = 1 and
// is computed exactly by bisection. K has no simple closed form; NCBI
// BLAST computes it with Karlin's algorithm over the score
// distribution, and for the match/mismatch schemes used in the paper
// it publishes the values. We ship those published constants for the
// standard DNA schemes and fall back to a documented approximation for
// other schemes; the threshold H depends on K only through ln K, so
// even a crude K moves H by at most a point or two.
package evalue

import (
	"fmt"
	"math"

	"repro/internal/align"
)

// Params are the Karlin-Altschul scaling constants for a scheme and a
// background letter distribution.
type Params struct {
	Lambda float64
	K      float64
}

// Lambda solves Σ_a Σ_b p_a·p_b·e^{λ·s(a,b)} = 1 for λ > 0 under a
// uniform match/mismatch scheme: with pMatch = Σ p_a², the equation is
// pMatch·e^{λ·sa} + (1−pMatch)·e^{λ·sb} = 1. An error is returned when
// the expected score is non-negative (no positive root exists; such
// schemes are unusable for local alignment statistics).
func Lambda(s align.Scheme, freqs []float64) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	pMatch := 0.0
	for _, p := range freqs {
		pMatch += p * p
	}
	if pMatch <= 0 || pMatch >= 1 {
		return 0, fmt.Errorf("evalue: degenerate match probability %g", pMatch)
	}
	expected := pMatch*float64(s.Match) + (1-pMatch)*float64(s.Mismatch)
	if expected >= 0 {
		return 0, fmt.Errorf("evalue: expected score %g is non-negative; no positive λ", expected)
	}
	f := func(l float64) float64 {
		return pMatch*math.Exp(l*float64(s.Match)) + (1-pMatch)*math.Exp(l*float64(s.Mismatch)) - 1
	}
	// f(0) = 0, f'(0) = expected < 0, f(∞) = +∞: bracket the positive root.
	lo, hi := 0.0, 1.0
	for f(hi) < 0 {
		hi *= 2
		if hi > 1e3 {
			return 0, fmt.Errorf("evalue: λ bracket exploded for scheme %v", s)
		}
	}
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// publishedK carries NCBI's ungapped K for the standard uniform-DNA
// match/mismatch pairs (blastn tables; gap scores do not enter the
// ungapped constants).
var publishedK = map[[2]int]float64{
	{1, -2}: 0.46,
	{1, -3}: 0.711,
	{1, -4}: 0.7916,
	{2, -3}: 0.46,
	{4, -5}: 0.22,
	{1, -1}: 0.0516,
}

// New computes the Karlin-Altschul parameters for a scheme over a
// background distribution (uniform when freqs is nil, given the
// alphabet size sigma).
func New(s align.Scheme, sigma int, freqs []float64) (Params, error) {
	if freqs == nil {
		freqs = make([]float64, sigma)
		for i := range freqs {
			freqs[i] = 1 / float64(sigma)
		}
	}
	lambda, err := Lambda(s, freqs)
	if err != nil {
		return Params{}, err
	}
	k, ok := publishedK[[2]int{s.Match, s.Mismatch}]
	if !ok || sigma != 4 {
		// Fallback: K ≈ λ·ĥ/H_rel is crude; we use the simpler and
		// long-serving heuristic K ≈ 0.3, acceptable because H moves
		// with ln K only.
		k = 0.3
	}
	return Params{Lambda: lambda, K: k}, nil
}

// EValue returns the expected number of chance alignments with score
// at least s when searching a query of length m against a text of
// length n: E = K·m·n·e^{−λ·s}.
func (p Params) EValue(m, n int, score int) float64 {
	return p.K * float64(m) * float64(n) * math.Exp(-p.Lambda*float64(score))
}

// BitScore converts a raw score to a normalized bit score
// S' = (λS − ln K)/ln 2.
func (p Params) BitScore(score int) float64 {
	return (p.Lambda*float64(score) - math.Log(p.K)) / math.Ln2
}

// Threshold converts an E-value to the smallest raw score H whose
// E-value is at most e: H = ⌈(ln(K·m·n) − ln E)/λ⌉, the formula of §7.
func (p Params) Threshold(m, n int, e float64) int {
	h := (math.Log(p.K*float64(m)*float64(n)) - math.Log(e)) / p.Lambda
	return int(math.Ceil(h))
}

// ThresholdFor is the one-call convenience the engines use: compute
// the constants for the scheme and derive H from an E-value, clamped
// up to the scheme's minimum exact threshold (see
// align.Scheme.MinThreshold).
func ThresholdFor(s align.Scheme, sigma, m, n int, e float64) (int, error) {
	p, err := New(s, sigma, nil)
	if err != nil {
		return 0, err
	}
	h := p.Threshold(m, n, e)
	if minH := s.MinThreshold(); h < minH {
		h = minH
	}
	return h, nil
}
