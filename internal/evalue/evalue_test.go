package evalue

import (
	"math"
	"testing"

	"repro/internal/align"
)

func uniform(sigma int) []float64 {
	f := make([]float64, sigma)
	for i := range f {
		f[i] = 1 / float64(sigma)
	}
	return f
}

func TestLambdaMatchesBLASTPublishedValues(t *testing.T) {
	// NCBI's published ungapped λ for uniform DNA backgrounds.
	cases := []struct {
		match, mismatch int
		want            float64
	}{
		{1, -3, 1.374},
		{1, -2, 1.332},
		{1, -4, 1.383},
		{2, -3, 0.624},
	}
	for _, tc := range cases {
		s := align.Scheme{Match: tc.match, Mismatch: tc.mismatch, GapOpen: -5, GapExtend: -2}
		got, err := Lambda(s, uniform(4))
		if err != nil {
			t.Fatalf("Lambda(%v): %v", s, err)
		}
		if math.Abs(got-tc.want) > 0.01 {
			t.Errorf("Lambda(%d,%d) = %.4f, want ≈%.3f", tc.match, tc.mismatch, got, tc.want)
		}
	}
}

func TestLambdaSolvesDefiningEquation(t *testing.T) {
	for _, s := range align.Fig9Schemes {
		for _, sigma := range []int{4, 20} {
			l, err := Lambda(s, uniform(sigma))
			if err != nil {
				t.Fatalf("Lambda(%v, σ=%d): %v", s, sigma, err)
			}
			pm := 1 / float64(sigma)
			residual := pm*math.Exp(l*float64(s.Match)) + (1-pm)*math.Exp(l*float64(s.Mismatch)) - 1
			if math.Abs(residual) > 1e-9 {
				t.Errorf("λ=%g for %v σ=%d leaves residual %g", l, s, sigma, residual)
			}
			if l <= 0 {
				t.Errorf("λ=%g must be positive", l)
			}
		}
	}
}

func TestLambdaRejectsNonNegativeExpectation(t *testing.T) {
	// With match 3, mismatch −1 on DNA the expected step score is
	// 3/4·(−1) + 1/4·3 = 0: no positive λ.
	s := align.Scheme{Match: 3, Mismatch: -1, GapOpen: -5, GapExtend: -2}
	if _, err := Lambda(s, uniform(4)); err == nil {
		t.Error("expected error for zero-expectation scheme")
	}
	if _, err := Lambda(align.Scheme{}, uniform(4)); err == nil {
		t.Error("expected error for invalid scheme")
	}
}

func TestEValueThresholdRoundTrip(t *testing.T) {
	p, err := New(align.DefaultDNA, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, n := 10000, 1000000
	for _, e := range []float64{1e-15, 1e-5, 10} {
		h := p.Threshold(m, n, e)
		// At score H the E-value must be at most e; at H−1, above e.
		if got := p.EValue(m, n, h); got > e*1.0001 {
			t.Errorf("E(H=%d) = %g > %g", h, got, e)
		}
		if got := p.EValue(m, n, h-1); got < e {
			t.Errorf("E(H−1=%d) = %g < %g: threshold not tight", h-1, got, e)
		}
	}
}

func TestThresholdMonotonicity(t *testing.T) {
	p, _ := New(align.DefaultDNA, 4, nil)
	m, n := 10000, 1000000
	h15 := p.Threshold(m, n, 1e-15)
	h5 := p.Threshold(m, n, 1e-5)
	h10 := p.Threshold(m, n, 10)
	if !(h15 > h5 && h5 > h10) {
		t.Errorf("thresholds not decreasing in E: %d, %d, %d", h15, h5, h10)
	}
	// Larger search space raises the threshold.
	if p.Threshold(m, 10*n, 10) <= h10 {
		t.Error("threshold should grow with the text")
	}
}

func TestBitScoreIncreasing(t *testing.T) {
	p, _ := New(align.DefaultDNA, 4, nil)
	if p.BitScore(20) <= p.BitScore(10) {
		t.Error("bit score must increase with the raw score")
	}
}

func TestThresholdForClampsToMinThreshold(t *testing.T) {
	// A huge E-value on a tiny search space would give H below the
	// exactness floor; ThresholdFor must clamp it.
	s := align.DefaultDNA
	h, err := ThresholdFor(s, 4, 10, 50, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if h < s.MinThreshold() {
		t.Errorf("H = %d below MinThreshold %d", h, s.MinThreshold())
	}
}

func TestThresholdForRealisticScale(t *testing.T) {
	// At paper-like scales the default scheme and E=10 give a
	// threshold in the tens — sanity anchor for the experiments.
	h, err := ThresholdFor(align.DefaultDNA, 4, 1_000_000, 1_000_000_000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h < 20 || h > 40 {
		t.Errorf("H = %d out of the plausible range [20, 40]", h)
	}
}

func TestNewProteinFallbackK(t *testing.T) {
	p, err := New(align.DefaultProtein, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 0.3 {
		t.Errorf("protein fallback K = %g, want 0.3", p.K)
	}
	if p.Lambda <= 0 {
		t.Errorf("λ = %g", p.Lambda)
	}
}
