package align

import (
	"fmt"
	"strings"
)

// Op is one alignment operation in a traceback.
type Op byte

const (
	OpMatch    Op = 'M' // identical characters
	OpMismatch Op = 'X' // substitution
	OpDelete   Op = 'D' // text character aligned to a gap
	OpInsert   Op = 'I' // query character aligned to a gap
)

// Alignment is a fully resolved local alignment with its operation
// sequence. Start/End positions are 0-based inclusive.
type Alignment struct {
	TStart, TEnd int
	QStart, QEnd int
	Score        int
	Ops          []Op
}

// Traceback reconstructs the best local alignment that ends at the
// given hit. It recomputes the DP over a window ending at the hit,
// growing the window until the alignment's start fits, so memory stays
// proportional to the alignment's own footprint rather than n·m.
func Traceback(text, query []byte, s Scheme, hit Hit) (Alignment, error) {
	if hit.TEnd < 0 || hit.TEnd >= len(text) || hit.QEnd < 0 || hit.QEnd >= len(query) {
		return Alignment{}, fmt.Errorf("align: hit end (%d,%d) out of range", hit.TEnd, hit.QEnd)
	}
	for window := 256; ; window *= 4 {
		a, ok := tracebackWindow(text, query, s, hit, window)
		if ok {
			return a, nil
		}
		if window > len(text)+len(query) {
			return Alignment{}, fmt.Errorf("align: no alignment of score %d ends at (%d,%d)",
				hit.Score, hit.TEnd, hit.QEnd)
		}
	}
}

// direction codes packed per cell and per matrix.
const (
	fromZero = iota
	fromDiag
	fromGa // vertical gap (consumes text)
	fromGb // horizontal gap (consumes query)
)

func tracebackWindow(text, query []byte, s Scheme, hit Hit, window int) (Alignment, bool) {
	ti0 := max(0, hit.TEnd+1-window)
	qj0 := max(0, hit.QEnd+1-window)
	sub := text[ti0 : hit.TEnd+1]
	qub := query[qj0 : hit.QEnd+1]
	n, m := len(sub), len(qub)
	const negInf = int(-1) << 40

	h := make([][]int32, n+1)
	dir := make([][]uint8, n+1) // two bits H-source, two bits Ga-ext, two bits Gb-ext
	ga := make([][]int32, n+1)
	gb := make([][]int32, n+1)
	for i := 0; i <= n; i++ {
		h[i] = make([]int32, m+1)
		dir[i] = make([]uint8, m+1)
		ga[i] = make([]int32, m+1)
		gb[i] = make([]int32, m+1)
		for j := 0; j <= m; j++ {
			ga[i][j], gb[i][j] = int32(negInf>>16), int32(negInf>>16)
		}
	}
	open := s.GapOpen + s.GapExtend
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			gaExt := ga[i-1][j] + int32(s.GapExtend)
			gaOpen := h[i-1][j] + int32(open)
			var gaFlag uint8
			if gaExt > gaOpen {
				ga[i][j] = gaExt
				gaFlag = 1 << 2
			} else {
				ga[i][j] = gaOpen
			}
			gbExt := gb[i][j-1] + int32(s.GapExtend)
			gbOpen := h[i][j-1] + int32(open)
			var gbFlag uint8
			if gbExt > gbOpen {
				gb[i][j] = gbExt
				gbFlag = 1 << 4
			} else {
				gb[i][j] = gbOpen
			}
			d := h[i-1][j-1] + int32(s.Delta(sub[i-1], qub[j-1]))
			best, src := int32(0), uint8(fromZero)
			if d > best {
				best, src = d, fromDiag
			}
			if ga[i][j] > best {
				best, src = ga[i][j], fromGa
			}
			if gb[i][j] > best {
				best, src = gb[i][j], fromGb
			}
			h[i][j] = best
			dir[i][j] = src | gaFlag | gbFlag
		}
	}
	if int(h[n][m]) != hit.Score {
		// The window clipped the alignment; caller will grow it.
		return Alignment{}, false
	}

	var ops []Op
	i, j := n, m
	state := dir[i][j] & 3
	for state != fromZero {
		switch state {
		case fromDiag:
			if sub[i-1] == qub[j-1] {
				ops = append(ops, OpMatch)
			} else {
				ops = append(ops, OpMismatch)
			}
			i, j = i-1, j-1
			state = dir[i][j] & 3
			if h[i][j] == 0 {
				state = fromZero
			}
		case fromGa:
			ext := dir[i][j]&(1<<2) != 0
			ops = append(ops, OpDelete)
			i--
			if ext {
				state = fromGa
			} else {
				state = dir[i][j] & 3
				if h[i][j] == 0 {
					state = fromZero
				}
			}
		case fromGb:
			ext := dir[i][j]&(1<<4) != 0
			ops = append(ops, OpInsert)
			j--
			if ext {
				state = fromGb
			} else {
				state = dir[i][j] & 3
				if h[i][j] == 0 {
					state = fromZero
				}
			}
		}
		if i == 0 || j == 0 {
			break
		}
	}
	if i == 0 && ti0 > 0 || j == 0 && qj0 > 0 {
		// Ran into the window edge: alignment extends further left.
		if int(h[n][m]) != hit.Score || (i == 0 && ti0 > 0) || (j == 0 && qj0 > 0) {
			return Alignment{}, false
		}
	}
	// Reverse ops.
	for a, b := 0, len(ops)-1; a < b; a, b = a+1, b-1 {
		ops[a], ops[b] = ops[b], ops[a]
	}
	return Alignment{
		TStart: ti0 + i, TEnd: hit.TEnd,
		QStart: qj0 + j, QEnd: hit.QEnd,
		Score: hit.Score, Ops: ops,
	}, true
}

// CIGAR renders the operations in a compact run-length form, with 'M'
// covering both matches and mismatches as in SAM.
func (a Alignment) CIGAR() string {
	var b strings.Builder
	i := 0
	for i < len(a.Ops) {
		op := a.Ops[i]
		j := i
		for j < len(a.Ops) && sameCigarClass(a.Ops[j], op) {
			j++
		}
		cls := byte(op)
		if op == OpMatch || op == OpMismatch {
			cls = 'M'
		}
		fmt.Fprintf(&b, "%d%c", j-i, cls)
		i = j
	}
	return b.String()
}

func sameCigarClass(a, b Op) bool {
	isM := func(o Op) bool { return o == OpMatch || o == OpMismatch }
	if isM(a) && isM(b) {
		return true
	}
	return a == b
}

// Format renders a three-line human-readable alignment (text row,
// match row, query row), wrapped at width columns.
func (a Alignment) Format(text, query []byte, width int) string {
	if width <= 0 {
		width = 60
	}
	var tRow, mRow, qRow []byte
	ti, qi := a.TStart, a.QStart
	for _, op := range a.Ops {
		switch op {
		case OpMatch:
			tRow = append(tRow, text[ti])
			mRow = append(mRow, '|')
			qRow = append(qRow, query[qi])
			ti, qi = ti+1, qi+1
		case OpMismatch:
			tRow = append(tRow, text[ti])
			mRow = append(mRow, ' ')
			qRow = append(qRow, query[qi])
			ti, qi = ti+1, qi+1
		case OpDelete:
			tRow = append(tRow, text[ti])
			mRow = append(mRow, ' ')
			qRow = append(qRow, '-')
			ti++
		case OpInsert:
			tRow = append(tRow, '-')
			mRow = append(mRow, ' ')
			qRow = append(qRow, query[qi])
			qi++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "score=%d text[%d..%d] query[%d..%d] cigar=%s\n",
		a.Score, a.TStart, a.TEnd, a.QStart, a.QEnd, a.CIGAR())
	for off := 0; off < len(tRow); off += width {
		end := min(off+width, len(tRow))
		fmt.Fprintf(&b, "T %s\n  %s\nQ %s\n", tRow[off:end], mRow[off:end], qRow[off:end])
	}
	return b.String()
}

// Identity returns the fraction of alignment columns that are exact
// matches.
func (a Alignment) Identity() float64 {
	if len(a.Ops) == 0 {
		return 0
	}
	matches := 0
	for _, op := range a.Ops {
		if op == OpMatch {
			matches++
		}
	}
	return float64(matches) / float64(len(a.Ops))
}
