package align

// XMatrix computes the per-substring matrix M_X of §2.2 for a path
// substring x against a query p, together with the auxiliary Ga and Gb
// matrices, using exactly the paper's initial conditions:
//
//	M(0,j) = 0,  M(i,0) = sg + i·ss,  Ga(0,j) = Gb(i,0) = −∞.
//
// Unlike the Smith-Waterman H matrix, M has no zero floor: the text
// side is pinned to consume exactly x[1..i]. Matrices are 1-based;
// NegInf marks −∞ entries. Intended for small inputs, tests and the
// BASIC reference algorithm.
func XMatrix(x, p []byte, s Scheme) (m, ga, gb [][]int) {
	d, q := len(x), len(p)
	m = make([][]int, d+1)
	ga = make([][]int, d+1)
	gb = make([][]int, d+1)
	for i := 0; i <= d; i++ {
		m[i] = make([]int, q+1)
		ga[i] = make([]int, q+1)
		gb[i] = make([]int, q+1)
	}
	for j := 0; j <= q; j++ {
		m[0][j] = 0
		ga[0][j] = NegInf
		gb[0][j] = NegInf
	}
	for i := 1; i <= d; i++ {
		m[i][0] = s.GapOpen + i*s.GapExtend
		ga[i][0] = NegInf
		gb[i][0] = NegInf
	}
	for i := 1; i <= d; i++ {
		for j := 1; j <= q; j++ {
			ga[i][j] = max(addInf(ga[i-1][j], s.GapExtend), addInf(m[i-1][j], s.GapOpen+s.GapExtend))
			gb[i][j] = max(addInf(gb[i][j-1], s.GapExtend), addInf(m[i][j-1], s.GapOpen+s.GapExtend))
			m[i][j] = max(addInf(m[i-1][j-1], s.Delta(x[i-1], p[j-1])), ga[i][j], gb[i][j])
		}
	}
	return m, ga, gb
}

// NegInf is the −∞ used by XMatrix. It is deeply negative but far from
// integer overflow when scheme scores are added to it.
const NegInf = int(-1) << 40

// addInf adds a score to a possibly-−∞ value without drifting away
// from NegInf over long chains.
func addInf(v, delta int) int {
	if v <= NegInf/2 {
		return NegInf
	}
	return v + delta
}

// BasicHits implements Algorithm 1 (BASIC) literally: enumerate every
// distinct substring of the text (conceptually, every prefix of every
// suffix-trie path), compute its X-matrix against the query, and merge
// scores per end pair. It is exponentially slower than everything else
// here and exists purely as a second independent oracle for tiny
// inputs.
func BasicHits(text, query []byte, s Scheme, h int) []Hit {
	c := NewCollector()
	seen := make(map[string]bool)
	for start := 0; start < len(text); start++ {
		suffix := text[start:]
		if seen[string(suffix)] {
			continue
		}
		seen[string(suffix)] = true
		m, _, _ := XMatrix(suffix, query, s)
		// Find all occurrences of each prefix by rescanning the text;
		// O(n^2·m) in total, fine for the tiny oracle role.
		for i := 1; i <= len(suffix); i++ {
			prefix := suffix[:i]
			for j := 1; j <= len(query); j++ {
				if m[i][j] < h {
					continue
				}
				for t := 0; t+i <= len(text); t++ {
					if string(text[t:t+i]) == string(prefix) {
						c.Add(t+i-1, j-1, m[i][j])
					}
				}
			}
		}
	}
	return c.Hits()
}
