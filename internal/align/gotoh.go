package align

// LocalAll runs the full Smith-Waterman dynamic program with affine
// gaps (Gotoh's formulation) over text × query and returns every hit:
// each end pair (i, j) whose best local-alignment score reaches h.
// This is the problem definition of §2.1 solved by brute force in
// O(n·m) time and O(m) space — the oracle against which all engines
// are verified, and the paper's slowest baseline.
func LocalAll(text, query []byte, s Scheme, h int) []Hit {
	c := NewCollector()
	LocalAllInto(text, query, s, h, c)
	return c.Hits()
}

// LocalAllInto is LocalAll accumulating into an existing collector.
// It returns the number of DP cells computed (n·m).
func LocalAllInto(text, query []byte, s Scheme, h int, c *Collector) int {
	n, m := len(text), len(query)
	if n == 0 || m == 0 {
		return 0
	}
	const negInf = int(-1) << 40
	// Rolling rows: hRow[j] = H(i-1, j), fCol[j] = F(i-1→i, j).
	hRow := make([]int, m+1)
	fCol := make([]int, m+1)
	for j := range fCol {
		fCol[j] = negInf
	}
	open := s.GapOpen + s.GapExtend
	for i := 1; i <= n; i++ {
		tc := text[i-1]
		diag := hRow[0] // H(i-1, 0) = 0
		hRow[0] = 0
		e := negInf
		for j := 1; j <= m; j++ {
			e = max(e+s.GapExtend, hRow[j-1]+open) // uses H(i, j-1) already in hRow
			f := max(fCol[j]+s.GapExtend, hRow[j]+open)
			fCol[j] = f
			hv := diag
			if tc == query[j-1] {
				hv += s.Match
			} else {
				hv += s.Mismatch
			}
			hv = max(hv, e, f, 0)
			diag = hRow[j]
			hRow[j] = hv
			if hv >= h {
				c.Add(i-1, j-1, hv)
			}
		}
	}
	return n * m
}

// LocalMatrix returns the full H, Ga (gap-in-query, vertical) and Gb
// (gap-in-text, horizontal) matrices with 1-based indexing, matching
// the recurrences of §2.2 but with the local zero floor on H. Intended
// for small inputs and tests only.
func LocalMatrix(text, query []byte, s Scheme) (h, ga, gb [][]int) {
	n, m := len(text), len(query)
	const negInf = int(-1) << 40
	h = make([][]int, n+1)
	ga = make([][]int, n+1)
	gb = make([][]int, n+1)
	for i := 0; i <= n; i++ {
		h[i] = make([]int, m+1)
		ga[i] = make([]int, m+1)
		gb[i] = make([]int, m+1)
		for j := 0; j <= m; j++ {
			ga[i][j], gb[i][j] = negInf, negInf
		}
	}
	open := s.GapOpen + s.GapExtend
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			ga[i][j] = max(ga[i-1][j]+s.GapExtend, h[i-1][j]+open)
			gb[i][j] = max(gb[i][j-1]+s.GapExtend, h[i][j-1]+open)
			h[i][j] = max(0, h[i-1][j-1]+s.Delta(text[i-1], query[j-1]), ga[i][j], gb[i][j])
		}
	}
	return h, ga, gb
}

// BestLocal returns the single best local alignment score and its end
// pair. found is false when no alignment has a positive score.
func BestLocal(text, query []byte, s Scheme) (hit Hit, found bool) {
	c := NewCollector()
	LocalAllInto(text, query, s, 1, c)
	best := Hit{Score: 0}
	for _, h := range c.Hits() {
		if h.Score > best.Score {
			best = h
			found = true
		}
	}
	return best, found
}
