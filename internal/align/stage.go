package align

// RunStage is the first level of the two-level collector: a small
// fixed-capacity staging buffer of row runs that the band kernels fill
// with one append per emitting cell and the emit contexts flush in
// bulk (occurrence fan-out, dominance filtering, Collector.AddRun).
// Capacities are chosen so a stage stays L1-resident; the hot loop
// never touches the open-addressing table.
//
// A run is a maximal sequence of Stage calls with the same row and
// consecutive j. Stages are owned by per-query state (emit contexts,
// workspaces) and reused, so the backing arrays are allocated once.
type RunStage struct {
	runs  []RunHdr
	cells []int32
}

// RunHdr describes one staged run: matrix row Row, first column J0,
// N scores at cells[Off : Off+N].
type RunHdr struct {
	Row, J0 int32
	Off, N  int32
}

// Stage capacities. A band row stages one run per emitting stretch;
// 128 headers / 1024 cells absorb the common per-band traffic between
// natural flush points while keeping the stage ~5 KB.
const (
	stageMaxRuns  = 128
	stageMaxCells = 1024
)

// Stage appends one cell, extending the open run when (row, j)
// continues it. It returns false — staging nothing — when the stage is
// full; the caller must flush and retry (a retry on an empty stage
// cannot fail).
func (s *RunStage) Stage(row, j, score int32) bool {
	if s.cells == nil {
		s.runs = make([]RunHdr, 0, stageMaxRuns)
		s.cells = make([]int32, 0, stageMaxCells)
	}
	if len(s.cells) == stageMaxCells {
		return false
	}
	if n := len(s.runs); n > 0 {
		h := &s.runs[n-1]
		if h.Row == row && h.J0+h.N == j {
			s.cells = append(s.cells, score)
			h.N++
			return true
		}
	}
	if len(s.runs) == stageMaxRuns {
		return false
	}
	s.runs = append(s.runs, RunHdr{Row: row, J0: j, Off: int32(len(s.cells)), N: 1})
	s.cells = append(s.cells, score)
	return true
}

// Runs returns the staged run headers. Valid until Reset.
func (s *RunStage) Runs() []RunHdr { return s.runs }

// Cells returns the staged score slab indexed by RunHdr.Off/N.
func (s *RunStage) Cells() []int32 { return s.cells }

// Empty reports whether nothing is staged.
func (s *RunStage) Empty() bool { return len(s.cells) == 0 }

// Reset discards all staged runs, keeping capacity.
func (s *RunStage) Reset() {
	s.runs = s.runs[:0]
	s.cells = s.cells[:0]
}
