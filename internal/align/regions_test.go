package align

import (
	"math/rand"
	"testing"
)

func TestMergeRegionsCollapsesOneAlignment(t *testing.T) {
	// Hits along one alignment band: consecutive diagonal end pairs.
	var hits []Hit
	for i := 0; i < 50; i++ {
		hits = append(hits, Hit{TEnd: 100 + i, QEnd: 200 + i, Score: 10 + i})
	}
	regions := MergeRegions(hits, 100)
	if len(regions) != 1 {
		t.Fatalf("one alignment became %d regions", len(regions))
	}
	if regions[0].Best.Score != 59 || regions[0].Count != 50 {
		t.Errorf("region %+v, want best 59 over 50 hits", regions[0])
	}
}

func TestMergeRegionsKeepsDistinctAlignments(t *testing.T) {
	hits := []Hit{
		{TEnd: 100, QEnd: 200, Score: 30},
		{TEnd: 5000, QEnd: 200, Score: 25}, // same query region, far text
		{TEnd: 100, QEnd: 4200, Score: 20}, // same text region, far query
	}
	regions := MergeRegions(hits, 100)
	if len(regions) != 3 {
		t.Fatalf("distinct alignments merged: %d regions", len(regions))
	}
	// Ordered by descending best score.
	for i := 1; i < len(regions); i++ {
		if regions[i].Best.Score > regions[i-1].Best.Score {
			t.Error("regions not ordered by score")
		}
	}
}

func TestMergeRegionsOnRealHits(t *testing.T) {
	// Plant two separated homologous segments; the exact hit set
	// must collapse to exactly two regions.
	rng := rand.New(rand.NewSource(130))
	text := randDNA(2000, rng)
	query := randDNA(600, rng)
	copy(query[50:], text[300:420])
	copy(query[400:], text[1500:1620])
	hits := LocalAll(text, query, DefaultDNA, 30)
	if len(hits) < 20 {
		t.Fatalf("workload too weak: %d hits", len(hits))
	}
	regions := MergeRegions(hits, 150)
	if len(regions) != 2 {
		t.Fatalf("expected 2 regions, got %d", len(regions))
	}
	total := 0
	for _, r := range regions {
		total += r.Count
	}
	if total != len(hits) {
		t.Errorf("region counts sum to %d, want %d", total, len(hits))
	}
}

func TestMergeRegionsEmpty(t *testing.T) {
	if MergeRegions(nil, 10) != nil {
		t.Error("nil hits should give nil regions")
	}
}

func TestTopK(t *testing.T) {
	hits := []Hit{
		{TEnd: 1, QEnd: 1, Score: 5},
		{TEnd: 2, QEnd: 2, Score: 9},
		{TEnd: 3, QEnd: 3, Score: 7},
		{TEnd: 1, QEnd: 9, Score: 9},
	}
	top := TopK(hits, 2)
	if len(top) != 2 || top[0].Score != 9 || top[1].Score != 9 {
		t.Fatalf("TopK(2) = %v", top)
	}
	// Deterministic tiebreak: lower TEnd first.
	if top[0].TEnd != 1 {
		t.Errorf("tiebreak wrong: %v", top)
	}
	if got := TopK(hits, 0); len(got) != 4 {
		t.Errorf("TopK(0) should return all, got %d", len(got))
	}
	if got := TopK(hits, 99); len(got) != 4 {
		t.Errorf("TopK(99) should return all, got %d", len(got))
	}
	// Input must not be mutated.
	if hits[0].Score != 5 {
		t.Error("TopK mutated its input")
	}
}
