package align

import (
	"math/rand"
	"testing"
)

// refAdd mirrors collector semantics on a plain map.
func refAdd(ref map[[2]int]int, tEnd, qEnd, score int) {
	k := [2]int{tEnd, qEnd}
	if old, ok := ref[k]; !ok || score > old {
		ref[k] = score
	}
}

func checkAgainstRef(t *testing.T, c *Collector, ref map[[2]int]int) {
	t.Helper()
	if c.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(ref))
	}
	for _, h := range c.Hits() {
		want, ok := ref[[2]int{h.TEnd, h.QEnd}]
		if !ok {
			t.Fatalf("unexpected hit %+v", h)
		}
		if h.Score != want {
			t.Fatalf("hit (%d,%d) score %d, want %d", h.TEnd, h.QEnd, h.Score, want)
		}
	}
}

// TestCollectorAddRandomized drives single-cell Add across block
// boundaries, duplicate pairs, and table growth, against a map oracle.
func TestCollectorAddRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewCollector()
	ref := map[[2]int]int{}
	for i := 0; i < 20_000; i++ {
		tEnd, qEnd := rng.Intn(500), rng.Intn(300)
		score := rng.Intn(1000) - 100
		c.Add(tEnd, qEnd, score)
		refAdd(ref, tEnd, qEnd, score)
	}
	checkAgainstRef(t, c, ref)
}

// TestCollectorAddRun checks the batched run path against per-cell
// Add semantics: arbitrary run starts (any lane offset), runs spanning
// multiple blocks, overlapping/duplicate runs, and negative scores.
func TestCollectorAddRun(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := NewCollector()
	ref := map[[2]int]int{}
	for i := 0; i < 5_000; i++ {
		tEnd := rng.Intn(200)
		qEnd0 := rng.Intn(100)
		n := 1 + rng.Intn(30)
		scores := make([]int32, n)
		for k := range scores {
			scores[k] = int32(rng.Intn(1000) - 100)
			refAdd(ref, tEnd, qEnd0+k, int(scores[k]))
		}
		c.AddRun(tEnd, qEnd0, scores)
	}
	// Interleave single adds over the same coordinate space.
	for i := 0; i < 5_000; i++ {
		tEnd, qEnd := rng.Intn(200), rng.Intn(130)
		score := rng.Intn(1000) - 100
		c.Add(tEnd, qEnd, score)
		refAdd(ref, tEnd, qEnd, score)
	}
	checkAgainstRef(t, c, ref)
}

// TestCollectorAddRunEmpty: a zero-length run is a no-op.
func TestCollectorAddRunEmpty(t *testing.T) {
	c := NewCollector()
	c.AddRun(5, 7, nil)
	if c.Len() != 0 {
		t.Fatalf("empty run recorded %d hits", c.Len())
	}
}

// TestCollectorMergeBlocks merges collectors whose blocks partially
// overlap lane-wise and checks the per-pair max survives.
func TestCollectorMergeBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ref := map[[2]int]int{}
	dst := NewCollector()
	for s := 0; s < 4; s++ {
		src := NewCollector()
		for i := 0; i < 3_000; i++ {
			tEnd, qEnd := rng.Intn(150), rng.Intn(90)
			score := rng.Intn(500)
			src.Add(tEnd, qEnd, score)
			refAdd(ref, tEnd, qEnd, score)
		}
		dst.Merge(src)
	}
	checkAgainstRef(t, dst, ref)
}

// TestCollectorResetKeepsCapacityBlocks: after Reset, re-adding the
// same runs must not grow the warm table and must reproduce the hits.
func TestCollectorResetKeepsCapacityBlocks(t *testing.T) {
	c := NewCollector()
	scores := make([]int32, 23)
	for k := range scores {
		scores[k] = int32(k)
	}
	fill := func() {
		for tEnd := 0; tEnd < 100; tEnd++ {
			c.AddRun(tEnd, tEnd%5, scores)
		}
	}
	fill()
	want := c.Hits()
	capBefore := len(c.keys)
	c.Reset()
	if c.Len() != 0 || len(c.Hits()) != 0 {
		t.Fatalf("reset collector still reports %d hits", c.Len())
	}
	fill()
	if len(c.keys) != capBefore {
		t.Fatalf("warm re-fill grew the table: %d -> %d", capBefore, len(c.keys))
	}
	if !EqualHits(c.Hits(), want) {
		t.Fatal("hits diverged across Reset + re-fill")
	}
}

// TestRunStage exercises run extension, run breaks, capacity refusal,
// and reset.
func TestRunStage(t *testing.T) {
	var s RunStage
	if !s.Empty() {
		t.Fatal("fresh stage not empty")
	}
	// One contiguous run.
	for j := int32(10); j < 20; j++ {
		if !s.Stage(3, j, j*2) {
			t.Fatalf("stage refused cell j=%d", j)
		}
	}
	// Row change breaks the run; j gap breaks the run.
	s.Stage(4, 10, 1)
	s.Stage(4, 12, 2)
	runs := s.Runs()
	if len(runs) != 3 {
		t.Fatalf("got %d runs, want 3", len(runs))
	}
	if runs[0].Row != 3 || runs[0].J0 != 10 || runs[0].N != 10 {
		t.Fatalf("run 0 = %+v", runs[0])
	}
	cells := s.Cells()
	for i := int32(0); i < runs[0].N; i++ {
		if cells[runs[0].Off+i] != (10+i)*2 {
			t.Fatalf("cell %d = %d", i, cells[runs[0].Off+i])
		}
	}
	s.Reset()
	if !s.Empty() || len(s.Runs()) != 0 {
		t.Fatal("reset stage not empty")
	}
	// Fill to cell capacity: the stage must refuse, not overflow.
	for i := 0; ; i++ {
		if !s.Stage(1, int32(i), 0) {
			break
		}
		if i > stageMaxCells {
			t.Fatal("stage never refused past capacity")
		}
	}
	s.Reset()
	// Fill to header capacity with 1-cell runs (gapped j).
	for i := 0; ; i++ {
		if !s.Stage(1, int32(2*i), 0) {
			if i < stageMaxRuns {
				t.Fatalf("stage refused after only %d runs", i)
			}
			break
		}
	}
}
