package align

import (
	"math/rand"
	"testing"
)

// TestCollectorReset pins the re-arm contract: after Reset the
// collector reports nothing, accepts the same hits again, and did not
// shrink (steady-state Adds on a warm table must not grow it).
func TestCollectorReset(t *testing.T) {
	c := NewCollector()
	rng := rand.New(rand.NewSource(40))
	add := func() {
		for i := 0; i < 500; i++ {
			c.Add(rng.Intn(1000), rng.Intn(100), 1+rng.Intn(50))
		}
	}
	add()
	if c.Len() == 0 {
		t.Fatal("nothing recorded")
	}
	capBefore := len(c.keys)
	c.Reset()
	if c.Len() != 0 || len(c.Hits()) != 0 {
		t.Fatalf("reset collector still reports %d hits", c.Len())
	}
	if len(c.keys) != capBefore {
		t.Fatalf("Reset changed the table size: %d -> %d", capBefore, len(c.keys))
	}
	rng = rand.New(rand.NewSource(40))
	add()
	if len(c.keys) != capBefore {
		t.Fatalf("re-adding the same hits grew the warm table: %d -> %d", capBefore, len(c.keys))
	}
}

// TestShardedCollectorMatchesSingle scatters one hit stream (with
// duplicate end pairs at different scores) across shards and checks
// the merged result equals a single collector fed the same stream.
func TestShardedCollectorMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	sc := NewSharded(4)
	want := NewCollector()
	for i := 0; i < 3000; i++ {
		tEnd, qEnd, score := rng.Intn(400), rng.Intn(80), 1+rng.Intn(60)
		want.Add(tEnd, qEnd, score)
		sc.Shard(rng.Intn(4)).Add(tEnd, qEnd, score)
	}
	got := NewCollector()
	sc.MergeInto(got, 4)
	if !EqualHits(got.Hits(), want.Hits()) {
		t.Fatalf("sharded merge diverges: %d hits vs %d", got.Len(), want.Len())
	}

	// Re-arm and reuse: the shards must come back empty but warm.
	sc.ResetAll()
	for i := 0; i < 4; i++ {
		if sc.Shard(i).Len() != 0 {
			t.Fatalf("shard %d not empty after ResetAll", i)
		}
	}
	sc.Shard(0).Add(7, 3, 9)
	second := NewCollector()
	sc.MergeInto(second, 4)
	if second.Len() != 1 {
		t.Fatalf("reused shards leaked old hits: %d", second.Len())
	}

	// Resize keeps existing shards.
	sc.Resize(6)
	if sc.Shard(0).Len() != 1 {
		t.Fatal("Resize dropped shard contents")
	}
	if sc.Shard(5).Len() != 0 {
		t.Fatal("new shard not empty")
	}
}
