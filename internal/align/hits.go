package align

import "sort"

// Hit is one local-alignment result: the paper's A(i, j) restricted to
// scores at or above the threshold. TEnd and QEnd are 0-based
// *inclusive* end positions in the text and the query; Score is the
// best score over all alignments of substrings ending exactly there.
type Hit struct {
	TEnd  int
	QEnd  int
	Score int
}

// Collector deduplicates hits by end-position pair, keeping the
// maximum score, which is exactly the max-merge over matrices that
// Algorithm 1 (BASIC) performs in lines 6-10.
type Collector struct {
	byEnd map[uint64]int32
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{byEnd: make(map[uint64]int32)}
}

func key(tEnd, qEnd int) uint64 { return uint64(uint32(tEnd))<<32 | uint64(uint32(qEnd)) }

// Add records a hit, keeping the best score per end pair.
func (c *Collector) Add(tEnd, qEnd, score int) {
	k := key(tEnd, qEnd)
	if old, ok := c.byEnd[k]; !ok || int32(score) > old {
		c.byEnd[k] = int32(score)
	}
}

// Merge folds another collector's hits into c, keeping the best score
// per end pair. It is the reduction step of the parallel search
// scheduler: per-worker collectors merge into the caller's, and
// because Add is a commutative max the result is independent of worker
// scheduling.
func (c *Collector) Merge(o *Collector) {
	for k, s := range o.byEnd {
		if old, ok := c.byEnd[k]; !ok || s > old {
			c.byEnd[k] = s
		}
	}
}

// Len returns the number of distinct end pairs recorded.
func (c *Collector) Len() int { return len(c.byEnd) }

// Hits returns all recorded hits sorted by (TEnd, QEnd).
func (c *Collector) Hits() []Hit {
	out := make([]Hit, 0, len(c.byEnd))
	for k, s := range c.byEnd {
		out = append(out, Hit{TEnd: int(k >> 32), QEnd: int(uint32(k)), Score: int(s)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TEnd != out[j].TEnd {
			return out[i].TEnd < out[j].TEnd
		}
		return out[i].QEnd < out[j].QEnd
	})
	return out
}

// SortHits sorts a hit slice by (TEnd, QEnd), the canonical order used
// when comparing engines.
func SortHits(hs []Hit) {
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].TEnd != hs[j].TEnd {
			return hs[i].TEnd < hs[j].TEnd
		}
		return hs[i].QEnd < hs[j].QEnd
	})
}

// EqualHits reports whether two sorted hit slices are identical.
func EqualHits(a, b []Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
