package align

import "slices"

// Hit is one local-alignment result: the paper's A(i, j) restricted to
// scores at or above the threshold. TEnd and QEnd are 0-based
// *inclusive* end positions in the text and the query; Score is the
// best score over all alignments of substrings ending exactly there.
type Hit struct {
	TEnd  int
	QEnd  int
	Score int
}

// Collector deduplicates hits by end-position pair, keeping the
// maximum score, which is exactly the max-merge over matrices that
// Algorithm 1 (BASIC) performs in lines 6-10.
//
// The store is a linear-probing open-addressing table on the packed
// (tEnd, qEnd) key — the engines call Add for every above-threshold
// cell of every fork family (tens of calls per surviving hit), and the
// flat probe beats a general-purpose map by several times on that
// workload. Keys are stored +1 so zero marks an empty slot.
type Collector struct {
	keys   []uint64
	scores []int32
	n      int
	shift  uint
}

const collectorMinBits = 6

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	c := &Collector{}
	c.init(collectorMinBits)
	return c
}

func (c *Collector) init(bits uint) {
	c.keys = make([]uint64, 1<<bits)
	c.scores = make([]int32, 1<<bits)
	c.shift = 64 - bits
	c.n = 0
}

func key(tEnd, qEnd int) uint64 { return uint64(uint32(tEnd))<<32 | uint64(uint32(qEnd)) }

// fibMix is 2^64/φ, the Fibonacci-hashing multiplier: consecutive keys
// (adjacent matrix cells are the common case) scatter across the
// table.
const fibMix = 0x9E3779B97F4A7C15

// Add records a hit, keeping the best score per end pair.
func (c *Collector) Add(tEnd, qEnd, score int) {
	k := key(tEnd, qEnd) + 1
	mask := uint64(len(c.keys) - 1)
	i := (k * fibMix) >> c.shift
	for {
		stored := c.keys[i]
		if stored == k {
			if int32(score) > c.scores[i] {
				c.scores[i] = int32(score)
			}
			return
		}
		if stored == 0 {
			c.keys[i] = k
			c.scores[i] = int32(score)
			c.n++
			if c.n > len(c.keys)*5/8 {
				c.grow()
			}
			return
		}
		i = (i + 1) & mask
	}
}

// grow doubles the table, reinserting every slot.
func (c *Collector) grow() {
	oldKeys, oldScores := c.keys, c.scores
	bits := 65 - c.shift
	c.init(bits)
	mask := uint64(len(c.keys) - 1)
	for idx, k := range oldKeys {
		if k == 0 {
			continue
		}
		i := (k * fibMix) >> c.shift
		for c.keys[i] != 0 {
			i = (i + 1) & mask
		}
		c.keys[i] = k
		c.scores[i] = oldScores[idx]
		c.n++
	}
}

// Merge folds another collector's hits into c, keeping the best score
// per end pair. It is the reduction step of the parallel search
// scheduler: per-worker collectors merge into the caller's, and
// because Add is a commutative max the result is independent of worker
// scheduling.
func (c *Collector) Merge(o *Collector) {
	for idx, k := range o.keys {
		if k == 0 {
			continue
		}
		kk := k - 1
		c.Add(int(kk>>32), int(uint32(kk)), int(o.scores[idx]))
	}
}

// Reset empties the collector while keeping its table capacity, so a
// reused collector (a serving session answering query after query)
// stays warm-sized and its steady-state Adds never grow the table.
func (c *Collector) Reset() {
	clear(c.keys)
	c.n = 0
}

// ShardedCollector is a set of per-worker collectors: the parallel
// fork-family scheduler gives each worker its own open-addressing
// table so hit recording never contends, and the shards merge into one
// result table afterwards by table scan. A session keeps one across
// queries so the per-worker tables, like every other per-query
// structure, are allocated once and re-armed.
type ShardedCollector struct {
	shards []*Collector
}

// NewSharded returns a sharded collector with n shards.
func NewSharded(n int) *ShardedCollector {
	sc := &ShardedCollector{}
	sc.Resize(n)
	return sc
}

// Resize ensures at least n shards exist, keeping existing ones (and
// their warm table capacity).
func (sc *ShardedCollector) Resize(n int) {
	for len(sc.shards) < n {
		sc.shards = append(sc.shards, NewCollector())
	}
}

// Shard returns shard i. The caller must have Resized to at least i+1.
func (sc *ShardedCollector) Shard(i int) *Collector { return sc.shards[i] }

// ResetAll empties every shard, keeping capacity.
func (sc *ShardedCollector) ResetAll() {
	for _, s := range sc.shards {
		s.Reset()
	}
}

// MergeInto folds the first n shards into c by table scan. Add is a
// commutative max, so the result is independent of which worker
// recorded which hit.
func (sc *ShardedCollector) MergeInto(c *Collector, n int) {
	for _, s := range sc.shards[:n] {
		c.Merge(s)
	}
}

// Len returns the number of distinct end pairs recorded.
func (c *Collector) Len() int { return c.n }

// Hits returns all recorded hits sorted by (TEnd, QEnd).
func (c *Collector) Hits() []Hit {
	out := make([]Hit, 0, c.n)
	for idx, k := range c.keys {
		if k == 0 {
			continue
		}
		kk := k - 1
		out = append(out, Hit{TEnd: int(kk >> 32), QEnd: int(uint32(kk)), Score: int(c.scores[idx])})
	}
	SortHits(out)
	return out
}

// SortHits sorts a hit slice by (TEnd, QEnd), the canonical order used
// when comparing engines.
func SortHits(hs []Hit) {
	slices.SortFunc(hs, func(a, b Hit) int {
		if a.TEnd != b.TEnd {
			return a.TEnd - b.TEnd
		}
		return a.QEnd - b.QEnd
	})
}

// EqualHits reports whether two sorted hit slices are identical.
func EqualHits(a, b []Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
