package align

import (
	"math/bits"
	"slices"
)

// Hit is one local-alignment result: the paper's A(i, j) restricted to
// scores at or above the threshold. TEnd and QEnd are 0-based
// *inclusive* end positions in the text and the query; Score is the
// best score over all alignments of substrings ending exactly there.
type Hit struct {
	TEnd  int
	QEnd  int
	Score int
}

// Collector deduplicates hits by end-position pair, keeping the
// maximum score, which is exactly the max-merge over matrices that
// Algorithm 1 (BASIC) performs in lines 6-10.
//
// The store is a linear-probing open-addressing table on a packed
// (tEnd, qEnd-block) key, block-granular: each slot covers laneWidth
// consecutive qEnd positions of one tEnd (a lane bitmask marks which
// are present). Emission is row-run shaped — a surviving band row
// yields a run of consecutive qEnds at one tEnd — so AddRun pays one
// Fibonacci-hash probe per block (≤ laneWidth cells) instead of one
// per cell, and single-cell Add costs the same one probe it always
// did. Keys are stored +1 so zero marks an empty slot.
type Collector struct {
	keys   []uint64
	used   []uint8 // per-slot lane occupancy bitmask
	scores []int32 // laneWidth lanes per slot
	n      int     // occupied slots (blocks)
	hits   int     // distinct (tEnd, qEnd) pairs
	shift  uint
}

// laneShift sets the block granularity: 1<<laneShift consecutive qEnd
// positions share one table slot. 8 lanes fit the used bitmask in one
// byte and cover typical emission-run lengths with one probe.
const (
	laneShift = 3
	laneWidth = 1 << laneShift
	laneMask  = laneWidth - 1
)

const collectorMinBits = 6

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	c := &Collector{}
	c.init(collectorMinBits)
	return c
}

func (c *Collector) init(bits uint) {
	c.keys = make([]uint64, 1<<bits)
	c.used = make([]uint8, 1<<bits)
	c.scores = make([]int32, (1<<bits)*laneWidth)
	c.shift = 64 - bits
	c.n = 0
	c.hits = 0
}

// blockKey packs (tEnd, qEnd block index). Injective for the engines'
// coordinate ranges (0 ≤ tEnd, qEnd < 2^31), and +1 storage cannot
// carry into the tEnd half.
func blockKey(tEnd, qEnd int) uint64 {
	return uint64(uint32(tEnd))<<32 | uint64(uint32(qEnd)>>laneShift)
}

// fibMix is 2^64/φ, the Fibonacci-hashing multiplier: consecutive keys
// (adjacent matrix blocks are the common case) scatter across the
// table.
const fibMix = 0x9E3779B97F4A7C15

// slot returns the table index for block key k (stored +1), claiming
// an empty slot if the block is new. Callers must reserve() first so
// the probe never needs to grow mid-scan.
func (c *Collector) slot(k uint64) int {
	mask := uint64(len(c.keys) - 1)
	i := (k * fibMix) >> c.shift
	for {
		stored := c.keys[i]
		if stored == k {
			return int(i)
		}
		if stored == 0 {
			c.keys[i] = k
			c.n++
			return int(i)
		}
		i = (i + 1) & mask
	}
}

// reserve grows the table until one more block insert stays under the
// 5/8 load factor.
func (c *Collector) reserve() {
	for c.n+1 > len(c.keys)*5/8 {
		c.grow()
	}
}

// Add records a hit, keeping the best score per end pair.
func (c *Collector) Add(tEnd, qEnd, score int) {
	c.reserve()
	i := c.slot(blockKey(tEnd, qEnd) + 1)
	lane := qEnd & laneMask
	bit := uint8(1) << lane
	si := i*laneWidth + lane
	if c.used[i]&bit != 0 {
		if int32(score) > c.scores[si] {
			c.scores[si] = int32(score)
		}
		return
	}
	c.used[i] |= bit
	c.scores[si] = int32(score)
	c.hits++
}

// AddRun records a run of hits at one tEnd covering consecutive qEnds
// qEnd0, qEnd0+1, ..., qEnd0+len(scores)-1, max-merging like Add. One
// table probe per block touched (≤ laneWidth cells each) — the batched
// fast path of the emission overhaul.
func (c *Collector) AddRun(tEnd, qEnd0 int, scores []int32) {
	for len(scores) > 0 {
		lane := qEnd0 & laneMask
		span := laneWidth - lane
		if span > len(scores) {
			span = len(scores)
		}
		c.reserve()
		i := c.slot(blockKey(tEnd, qEnd0) + 1)
		base := i * laneWidth
		u := c.used[i]
		for m := 0; m < span; m++ {
			l := lane + m
			bit := uint8(1) << l
			sc := scores[m]
			if u&bit != 0 {
				if sc > c.scores[base+l] {
					c.scores[base+l] = sc
				}
			} else {
				u |= bit
				c.scores[base+l] = sc
				c.hits++
			}
		}
		c.used[i] = u
		qEnd0 += span
		scores = scores[span:]
	}
}

// grow doubles the table, reinserting every block.
func (c *Collector) grow() {
	oldKeys, oldUsed, oldScores := c.keys, c.used, c.scores
	oldHits := c.hits
	bits := 65 - c.shift
	c.init(bits)
	c.hits = oldHits
	mask := uint64(len(c.keys) - 1)
	for idx, k := range oldKeys {
		if k == 0 {
			continue
		}
		i := (k * fibMix) >> c.shift
		for c.keys[i] != 0 {
			i = (i + 1) & mask
		}
		c.keys[i] = k
		c.used[i] = oldUsed[idx]
		copy(c.scores[int(i)*laneWidth:(int(i)+1)*laneWidth], oldScores[idx*laneWidth:(idx+1)*laneWidth])
		c.n++
	}
}

// Merge folds another collector's hits into c, keeping the best score
// per end pair. It is the reduction step of the parallel search
// scheduler: per-worker collectors merge into the caller's, and
// because the per-pair max is commutative the result is independent of
// worker scheduling. One probe per source block.
func (c *Collector) Merge(o *Collector) {
	for idx, k := range o.keys {
		if k == 0 {
			continue
		}
		ou := o.used[idx]
		if ou == 0 {
			continue
		}
		c.reserve()
		i := c.slot(k)
		base, obase := i*laneWidth, idx*laneWidth
		u := c.used[i]
		for rem := ou; rem != 0; rem &= rem - 1 {
			l := bits.TrailingZeros8(rem)
			bit := uint8(1) << l
			sc := o.scores[obase+l]
			if u&bit != 0 {
				if sc > c.scores[base+l] {
					c.scores[base+l] = sc
				}
			} else {
				u |= bit
				c.scores[base+l] = sc
				c.hits++
			}
		}
		c.used[i] = u
	}
}

// Reset empties the collector while keeping its table capacity, so a
// reused collector (a serving session answering query after query)
// stays warm-sized and its steady-state Adds never grow the table.
func (c *Collector) Reset() {
	clear(c.keys)
	clear(c.used)
	c.n = 0
	c.hits = 0
}

// ShardedCollector is a set of per-worker collectors: the parallel
// fork-family scheduler gives each worker its own open-addressing
// table so hit recording never contends, and the shards merge into one
// result table afterwards by table scan. A session keeps one across
// queries so the per-worker tables, like every other per-query
// structure, are allocated once and re-armed.
type ShardedCollector struct {
	shards []*Collector
}

// NewSharded returns a sharded collector with n shards.
func NewSharded(n int) *ShardedCollector {
	sc := &ShardedCollector{}
	sc.Resize(n)
	return sc
}

// Resize ensures at least n shards exist, keeping existing ones (and
// their warm table capacity).
func (sc *ShardedCollector) Resize(n int) {
	for len(sc.shards) < n {
		sc.shards = append(sc.shards, NewCollector())
	}
}

// Shard returns shard i. The caller must have Resized to at least i+1.
func (sc *ShardedCollector) Shard(i int) *Collector { return sc.shards[i] }

// ResetAll empties every shard, keeping capacity.
func (sc *ShardedCollector) ResetAll() {
	for _, s := range sc.shards {
		s.Reset()
	}
}

// MergeInto folds the first n shards into c by table scan. The merge
// is a commutative per-pair max, so the result is independent of which
// worker recorded which hit.
func (sc *ShardedCollector) MergeInto(c *Collector, n int) {
	for _, s := range sc.shards[:n] {
		c.Merge(s)
	}
}

// Len returns the number of distinct end pairs recorded.
func (c *Collector) Len() int { return c.hits }

// Hits returns all recorded hits sorted by (TEnd, QEnd).
func (c *Collector) Hits() []Hit {
	out := make([]Hit, 0, c.hits)
	for idx, k := range c.keys {
		if k == 0 {
			continue
		}
		kk := k - 1
		tEnd := int(kk >> 32)
		qBase := int(uint32(kk)) << laneShift
		base := idx * laneWidth
		for rem := c.used[idx]; rem != 0; rem &= rem - 1 {
			l := bits.TrailingZeros8(rem)
			out = append(out, Hit{TEnd: tEnd, QEnd: qBase + l, Score: int(c.scores[base+l])})
		}
	}
	SortHits(out)
	return out
}

// ForEach streams every recorded hit to fn in table order — NOT sorted.
// It is the gather surface of the store's streaming scatter: callers
// that bucket hits by destination (per-member SeqHit buckets) consume
// the collector directly instead of materialising an intermediate
// sorted []Hit per lane. The collector is not modified; fn must not
// call back into it.
func (c *Collector) ForEach(fn func(tEnd, qEnd, score int)) {
	for idx, k := range c.keys {
		if k == 0 {
			continue
		}
		kk := k - 1
		tEnd := int(kk >> 32)
		qBase := int(uint32(kk)) << laneShift
		base := idx * laneWidth
		for rem := c.used[idx]; rem != 0; rem &= rem - 1 {
			l := bits.TrailingZeros8(rem)
			fn(tEnd, qBase+l, int(c.scores[base+l]))
		}
	}
}

// SortHits sorts a hit slice by (TEnd, QEnd), the canonical order used
// when comparing engines.
func SortHits(hs []Hit) {
	slices.SortFunc(hs, func(a, b Hit) int {
		if a.TEnd != b.TEnd {
			return a.TEnd - b.TEnd
		}
		return a.QEnd - b.QEnd
	})
}

// EqualHits reports whether two sorted hit slices are identical.
func EqualHits(a, b []Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
