// Package align defines affine-gap scoring schemes and the full
// Smith-Waterman (Gotoh) dynamic program. The Gotoh sweep is both one
// of the paper's baselines (§7.1, "too slow to be considered") and the
// exactness oracle for every other engine in this repository: ALAE and
// BWT-SW must report exactly the end-position pairs whose Gotoh cell
// value reaches the threshold.
package align

import (
	"fmt"
)

// Scheme is the paper's scoring scheme ⟨sa, sb, sg, ss⟩: an identical
// mapping scores Match (> 0), a substitution Mismatch (< 0), and a gap
// of r characters costs GapOpen + r·GapExtend (both < 0).
type Scheme struct {
	Match     int // sa
	Mismatch  int // sb
	GapOpen   int // sg
	GapExtend int // ss
}

// Canonical schemes used throughout the paper's evaluation (§7).
var (
	// DefaultDNA is ⟨1,−3,−5,−2⟩, the default of both BLAST and BWT-SW.
	DefaultDNA = Scheme{Match: 1, Mismatch: -3, GapOpen: -5, GapExtend: -2}
	// DefaultProtein is ⟨1,−3,−11,−1⟩, used for the protein index
	// experiments (§7.5).
	DefaultProtein = Scheme{Match: 1, Mismatch: -3, GapOpen: -11, GapExtend: -1}
	// Fig9Schemes are the four representative schemes of Figure 9.
	Fig9Schemes = []Scheme{
		{1, -3, -5, -2},
		{1, -4, -5, -2},
		{1, -1, -5, -2},
		{1, -3, -2, -2},
	}
)

// Validate reports whether the scheme is usable: positive match score
// and strictly negative mismatch, gap-open and gap-extend scores.
func (s Scheme) Validate() error {
	if s.Match <= 0 {
		return fmt.Errorf("align: match score %d must be positive", s.Match)
	}
	if s.Mismatch >= 0 {
		return fmt.Errorf("align: mismatch score %d must be negative", s.Mismatch)
	}
	if s.GapOpen >= 0 {
		return fmt.Errorf("align: gap-open score %d must be negative", s.GapOpen)
	}
	if s.GapExtend >= 0 {
		return fmt.Errorf("align: gap-extend score %d must be negative", s.GapExtend)
	}
	return nil
}

// Delta is δ(a, b): Match when the characters are identical, Mismatch
// otherwise.
func (s Scheme) Delta(a, b byte) int {
	if a == b {
		return s.Match
	}
	return s.Mismatch
}

// Q is the q-prefix length of §3.1.3 (Equation 2):
// q = ⌊min(|sb|, |sg+ss|)/sa⌋ + 1. Any local alignment whose every
// prefix scores positively must begin with q exact matches.
func (s Scheme) Q() int {
	mb := -s.Mismatch
	mg := -(s.GapOpen + s.GapExtend)
	return min(mb, mg)/s.Match + 1
}

// MinThreshold is the smallest threshold H for which the q-prefix
// filtering of §3.1.3 is lossless: (q−1)·sa + 1. Below it, an
// alignment of fewer than q exact matches could reach H without
// containing a q-prefix match, and the fork construction would miss
// it. The paper implicitly assumes E-value-derived thresholds, which
// are always far above this.
func (s Scheme) MinThreshold() int {
	return (s.Q()-1)*s.Match + 1
}

// floorDiv is floored integer division (Go's / truncates toward zero).
func floorDiv(a, b int) int {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// Lmax is the length upper bound of Theorem 1 (length filtering):
// rows beyond max{m, m + ⌊(H − (sa·m + sg))/ss⌋} of any matrix are
// meaningless for a query of length m and threshold H.
func (s Scheme) Lmax(m, h int) int {
	return max(m, m+floorDiv(h-(s.Match*m+s.GapOpen), s.GapExtend))
}

// MinRow is the row lower bound of Theorem 1: an entry in a row below
// ⌈H/sa⌉ cannot itself reach the threshold (though it may feed deeper
// rows).
func (s Scheme) MinRow(h int) int {
	return (h + s.Match - 1) / s.Match
}

// BWTSWCompatible reports whether the scheme satisfies the |sb| ≥ 3·|sa|
// restriction that the BWT-SW implementation requires (§2.4); Figure 9
// omits BWT-SW on ⟨1,−1,−5,−2⟩ for this reason.
func (s Scheme) BWTSWCompatible() bool {
	return -s.Mismatch >= 3*s.Match
}

// String renders the scheme in the paper's ⟨sa,sb,sg,ss⟩ notation.
func (s Scheme) String() string {
	return fmt.Sprintf("<%d,%d,%d,%d>", s.Match, s.Mismatch, s.GapOpen, s.GapExtend)
}
