package align

import (
	"math/rand"
	"strings"
	"testing"
)

func TestSchemeValidate(t *testing.T) {
	if err := DefaultDNA.Validate(); err != nil {
		t.Errorf("default scheme invalid: %v", err)
	}
	bad := []Scheme{
		{0, -3, -5, -2},
		{1, 3, -5, -2},
		{1, -3, 5, -2},
		{1, -3, -5, 0},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("scheme %v should be invalid", s)
		}
	}
}

func TestSchemeQ(t *testing.T) {
	// §3.1.3: q = ⌊min(|sb|, |sg+ss|)/sa⌋ + 1; for ⟨1,−3,−5,−2⟩, q = 4.
	cases := []struct {
		s Scheme
		q int
	}{
		{Scheme{1, -3, -5, -2}, 4},
		{Scheme{1, -4, -5, -2}, 5},
		{Scheme{1, -1, -5, -2}, 2},
		{Scheme{1, -3, -2, -2}, 4}, // min(3, 4)/1 + 1
		{Scheme{2, -3, -5, -2}, 2}, // min(3, 7)/2 + 1
		{Scheme{4, -5, -5, -2}, 2}, // min(5, 7)/4 + 1
	}
	for _, tc := range cases {
		if got := tc.s.Q(); got != tc.q {
			t.Errorf("Q(%v) = %d, want %d", tc.s, got, tc.q)
		}
	}
}

func TestSchemeLmax(t *testing.T) {
	// §3.1.1 example: T=CTAGCTAG, P=GCTAC (m=5), H=3, scheme
	// ⟨1,−3,−5,−2⟩: substring lengths range from ⌈H/sa⌉=3 to 4.
	s := DefaultDNA
	if got := s.Lmax(5, 3); got != max(5, 5+floorDiv(3-(5+-5), -2)) {
		t.Fatalf("Lmax formula drifted: %d", got)
	}
	// H−(sa·m+sg) = 3−(5−5) = 3; ⌊3/−2⌋ = −2; Lmax = max(5, 3) ... the
	// theorem's bound: m + ⌊(H−(sa·m+sg))/ss⌋ = 5 − 2 = 3, so Lmax =
	// max(m, 3) = 5 by the formula; the example's tighter bound of 4
	// comes from the i ≤ h ≤ m branch combined with score filtering.
	if got := s.Lmax(5, 3); got != 5 {
		t.Errorf("Lmax(5,3) = %d, want 5", got)
	}
	if got := s.MinRow(3); got != 3 {
		t.Errorf("MinRow(3) = %d, want 3", got)
	}
	// Thresholds above the all-match query score shrink nothing but
	// must not go below m when gaps could pay off.
	if got := s.Lmax(100, 20); got < 100 {
		t.Errorf("Lmax(100,20) = %d, below m", got)
	}
}

func TestSchemeMinThreshold(t *testing.T) {
	if got := DefaultDNA.MinThreshold(); got != 4 {
		t.Errorf("MinThreshold = %d, want 4 (q−1 matches score 3, +1)", got)
	}
}

func TestSchemeBWTSWCompatible(t *testing.T) {
	if !DefaultDNA.BWTSWCompatible() {
		t.Error("⟨1,−3,−5,−2⟩ must be BWT-SW compatible")
	}
	if (Scheme{1, -1, -5, -2}).BWTSWCompatible() {
		t.Error("⟨1,−1,−5,−2⟩ must violate |sb| ≥ 3|sa| (§2.4, Fig 9)")
	}
}

func TestSchemeString(t *testing.T) {
	if got := DefaultDNA.String(); got != "<1,-3,-5,-2>" {
		t.Errorf("String = %q", got)
	}
}

func TestSimPaperIntroExample(t *testing.T) {
	// §2.1: S1 = AAACG, S2 = AACCG; the optimal alignment replaces the
	// third character, sim = 4·1 + (−3) = 1... as a global alignment.
	// As a *local* alignment the best is the exact prefix AA plus the
	// suffix CG: substring scores reach 2 (e.g. "AA" vs "AA").
	// The intro's value is checked with the X-matrix, which pins both
	// full strings.
	m, _, _ := XMatrix([]byte("AAACG"), []byte("AACCG"), DefaultDNA)
	// Global-ish score of the full strings: best alignment consuming
	// all of S1 and ending at S2's last column.
	if m[5][5] != 1 {
		t.Errorf("sim(AAACG, AACCG) via XMatrix = %d, want 1", m[5][5])
	}
}

func TestXMatrixFig1(t *testing.T) {
	// Figure 1: X = GCTA aligned against P = GCTAG under ⟨1,−3,−5,−2⟩.
	x, p := []byte("GCTA"), []byte("GCTAG")
	m, ga, gb := XMatrix(x, p, DefaultDNA)

	// Boundary conditions.
	for j := 0; j <= 5; j++ {
		if m[0][j] != 0 {
			t.Errorf("M(0,%d) = %d, want 0", j, m[0][j])
		}
	}
	for i := 1; i <= 4; i++ {
		want := -5 - 2*i
		if m[i][0] != want {
			t.Errorf("M(%d,0) = %d, want %d", i, m[i][0], want)
		}
	}

	// The bold diagonal of the worked example.
	diag := []struct{ i, j, want int }{
		{1, 1, 1}, {2, 2, 2}, {3, 3, 3}, {4, 4, 4},
		{1, 5, 1},  // the figure's (1,5) entry
		{3, 2, -5}, // used by the MX(4,3) derivation
		{4, 3, -4}, // the derived value
	}
	for _, tc := range diag {
		if m[tc.i][tc.j] != tc.want {
			t.Errorf("M(%d,%d) = %d, want %d", tc.i, tc.j, m[tc.i][tc.j], tc.want)
		}
	}
	// The worked auxiliary values: Ga(4,3) = −4, Gb(4,3) = −14.
	if ga[4][3] != -4 {
		t.Errorf("Ga(4,3) = %d, want -4", ga[4][3])
	}
	if gb[4][3] != -14 {
		t.Errorf("Gb(4,3) = %d, want -14", gb[4][3])
	}
}

// rescore recomputes an alignment's score from its operations.
func rescore(a Alignment, s Scheme) int {
	score := 0
	run := Op(0)
	for _, op := range a.Ops {
		switch op {
		case OpMatch:
			score += s.Match
		case OpMismatch:
			score += s.Mismatch
		case OpDelete, OpInsert:
			if run == op {
				score += s.GapExtend
			} else {
				score += s.GapOpen + s.GapExtend
			}
		}
		run = op
	}
	return score
}

func randDNA(n int, rng *rand.Rand) []byte {
	letters := []byte("ACGT")
	out := make([]byte, n)
	for i := range out {
		out[i] = letters[rng.Intn(4)]
	}
	return out
}

func TestLocalAllMatchesLocalMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 60; trial++ {
		text := randDNA(5+rng.Intn(60), rng)
		query := randDNA(5+rng.Intn(60), rng)
		h := 4 + rng.Intn(6)
		s := DefaultDNA
		want := NewCollector()
		hm, _, _ := LocalMatrix(text, query, s)
		for i := 1; i <= len(text); i++ {
			for j := 1; j <= len(query); j++ {
				if hm[i][j] >= h {
					want.Add(i-1, j-1, hm[i][j])
				}
			}
		}
		got := LocalAll(text, query, s, h)
		if !EqualHits(got, want.Hits()) {
			t.Fatalf("trial %d: LocalAll disagrees with LocalMatrix\n got %v\nwant %v",
				trial, got, want.Hits())
		}
	}
}

func TestLocalAllMatchesBasic(t *testing.T) {
	// Two independent oracles must agree: the rolling Gotoh sweep and
	// the literal Algorithm 1 over X-matrices.
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		text := randDNA(4+rng.Intn(25), rng)
		query := randDNA(4+rng.Intn(25), rng)
		h := 4 + rng.Intn(4)
		got := LocalAll(text, query, DefaultDNA, h)
		want := BasicHits(text, query, DefaultDNA, h)
		if !EqualHits(got, want) {
			t.Fatalf("trial %d (T=%q P=%q H=%d):\n gotoh %v\n basic %v",
				trial, text, query, h, got, want)
		}
	}
}

func TestLocalAllEmptyInputs(t *testing.T) {
	if got := LocalAll(nil, []byte("ACGT"), DefaultDNA, 1); len(got) != 0 {
		t.Errorf("empty text gave hits: %v", got)
	}
	if got := LocalAll([]byte("ACGT"), nil, DefaultDNA, 1); len(got) != 0 {
		t.Errorf("empty query gave hits: %v", got)
	}
}

func TestLocalAllExactSubstring(t *testing.T) {
	// Planting an exact copy of the query must produce a hit with
	// score m·sa at the right coordinates.
	rng := rand.New(rand.NewSource(42))
	text := randDNA(300, rng)
	query := text[100:130]
	hits := LocalAll(text, query, DefaultDNA, 30)
	found := false
	for _, h := range hits {
		if h.TEnd == 129 && h.QEnd == 29 && h.Score == 30 {
			found = true
		}
	}
	if !found {
		t.Errorf("planted exact hit missing from %v", hits)
	}
}

func TestBestLocal(t *testing.T) {
	text := []byte("TTTTGCTAGCTTTT")
	query := []byte("AAGCTAGCAA")
	hit, found := BestLocal(text, query, DefaultDNA)
	if !found {
		t.Fatal("no alignment found")
	}
	// The longest common exact stretch is GCTAGC (6 matches); the
	// flanking characters mismatch, so extending never pays.
	if hit.Score != 6 {
		t.Errorf("best score = %d, want 6", hit.Score)
	}
}

func TestTracebackRescores(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	s := DefaultDNA
	for trial := 0; trial < 40; trial++ {
		text := randDNA(80+rng.Intn(100), rng)
		// Embed a mutated copy so gapped alignments exist.
		start := rng.Intn(len(text) - 40)
		sub := append([]byte(nil), text[start:start+40]...)
		if len(sub) > 10 {
			sub[5] = 'A'
			sub = append(sub[:20], sub[22:]...) // deletion of 2
		}
		query := append(randDNA(10, rng), append(sub, randDNA(10, rng)...)...)
		hits := LocalAll(text, query, s, 12)
		for _, h := range hits {
			a, err := Traceback(text, query, s, h)
			if err != nil {
				t.Fatalf("trial %d: traceback(%+v): %v", trial, h, err)
			}
			if got := rescore(a, s); got != h.Score {
				t.Fatalf("trial %d: alignment rescores to %d, hit says %d\n%s",
					trial, got, h.Score, a.Format(text, query, 0))
			}
			if a.TEnd != h.TEnd || a.QEnd != h.QEnd {
				t.Fatalf("trial %d: end coordinates moved: %+v vs %+v", trial, a, h)
			}
			// Consumed lengths must match the coordinate spans.
			tLen, qLen := 0, 0
			for _, op := range a.Ops {
				if op != OpInsert {
					tLen++
				}
				if op != OpDelete {
					qLen++
				}
			}
			if tLen != a.TEnd-a.TStart+1 || qLen != a.QEnd-a.QStart+1 {
				t.Fatalf("trial %d: op lengths inconsistent with spans: %+v", trial, a)
			}
		}
	}
}

func TestTracebackRejectsBadHit(t *testing.T) {
	if _, err := Traceback([]byte("ACGT"), []byte("ACGT"), DefaultDNA, Hit{TEnd: 9, QEnd: 0}); err == nil {
		t.Error("out-of-range hit accepted")
	}
}

func TestAlignmentFormatAndCIGAR(t *testing.T) {
	text := []byte("GCTAGC")
	query := []byte("GCTTAGC")
	hit, found := BestLocal(text, query, DefaultDNA)
	if !found {
		t.Fatal("no hit")
	}
	a, err := Traceback(text, query, DefaultDNA, hit)
	if err != nil {
		t.Fatal(err)
	}
	out := a.Format(text, query, 40)
	if !strings.Contains(out, "score=") || !strings.Contains(out, "T ") {
		t.Errorf("Format output malformed:\n%s", out)
	}
	if a.CIGAR() == "" {
		t.Error("empty CIGAR")
	}
	if id := a.Identity(); id <= 0 || id > 1 {
		t.Errorf("identity %g out of range", id)
	}
}

func TestCollectorKeepsMax(t *testing.T) {
	c := NewCollector()
	c.Add(5, 7, 10)
	c.Add(5, 7, 8)
	c.Add(5, 7, 12)
	c.Add(6, 7, 3)
	hits := c.Hits()
	if len(hits) != 2 {
		t.Fatalf("got %d hits, want 2", len(hits))
	}
	if hits[0] != (Hit{5, 7, 12}) {
		t.Errorf("hits[0] = %+v, want {5 7 12}", hits[0])
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestEqualHits(t *testing.T) {
	a := []Hit{{1, 2, 3}}
	b := []Hit{{1, 2, 3}}
	if !EqualHits(a, b) {
		t.Error("identical slices not equal")
	}
	if EqualHits(a, nil) {
		t.Error("different lengths equal")
	}
	if EqualHits(a, []Hit{{1, 2, 4}}) {
		t.Error("different scores equal")
	}
}

func BenchmarkLocalAll(b *testing.B) {
	rng := rand.New(rand.NewSource(44))
	text := randDNA(10000, rng)
	query := randDNA(1000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCollector()
		LocalAllInto(text, query, DefaultDNA, 25, c)
	}
}
