package align

import "sort"

// Region is a cluster of nearby hits summarised by its best one.
// Exact engines report every qualifying end pair, so a single
// conserved stretch produces hundreds of hits on overlapping end
// positions; MergeRegions collapses them into the distinct alignment
// regions a user actually wants to look at.
type Region struct {
	Best  Hit // the highest-scoring hit of the cluster
	Count int // number of raw hits merged into this region
}

// MergeRegions clusters hits whose end positions lie within slack of
// an already-clustered hit (in both coordinates) and returns one
// region per cluster, ordered by descending best score. Hits are
// processed in descending score order so each region is anchored at
// its best hit.
func MergeRegions(hits []Hit, slack int) []Region {
	if len(hits) == 0 {
		return nil
	}
	sorted := append([]Hit(nil), hits...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Score > sorted[b].Score })
	var regions []Region
	for _, h := range sorted {
		merged := false
		for i := range regions {
			b := regions[i].Best
			if abs(b.TEnd-h.TEnd) <= slack+abs(b.QEnd-h.QEnd) &&
				abs(b.TEnd-h.TEnd-(b.QEnd-h.QEnd)) <= slack {
				// Same diagonal neighbourhood: same alignment region.
				regions[i].Count++
				merged = true
				break
			}
		}
		if !merged {
			regions = append(regions, Region{Best: h, Count: 1})
		}
	}
	return regions
}

// TopK returns the k highest-scoring hits (all of them when k ≤ 0 or
// k ≥ len), ordered by descending score with (TEnd, QEnd) as the
// tiebreak for determinism.
func TopK(hits []Hit, k int) []Hit {
	sorted := append([]Hit(nil), hits...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Score != sorted[b].Score {
			return sorted[a].Score > sorted[b].Score
		}
		if sorted[a].TEnd != sorted[b].TEnd {
			return sorted[a].TEnd < sorted[b].TEnd
		}
		return sorted[a].QEnd < sorted[b].QEnd
	})
	if k > 0 && k < len(sorted) {
		sorted = sorted[:k]
	}
	return sorted
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
