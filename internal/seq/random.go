package seq

import (
	"math/rand"
)

// GenomeConfig controls RandomGenome. The defaults (zero value plus
// Length) produce an i.i.d. uniform sequence; the repeat knobs inject
// the kind of duplicated structure that real genomes have and that both
// the suffix-trie sharing of BWT-SW and the score-reuse technique of
// ALAE (§4) exploit.
type GenomeConfig struct {
	Length int // number of characters to generate

	// GC is the combined probability of G and C for DNA texts.
	// 0 means 0.5 (uniform). Ignored for non-DNA alphabets.
	GC float64

	// RepeatFraction is the fraction of the text produced by copying
	// earlier segments (tandem and interspersed repeats), in [0, 1).
	RepeatFraction float64

	// RepeatMinLen/RepeatMaxLen bound the copied segment lengths.
	// Defaults: 50 and 500.
	RepeatMinLen, RepeatMaxLen int

	// RepeatMutationRate is the per-character probability that a copied
	// character is substituted, modelling diverged repeat families.
	RepeatMutationRate float64
}

func (cfg *GenomeConfig) fillDefaults() {
	if cfg.GC == 0 {
		cfg.GC = 0.5
	}
	if cfg.RepeatMinLen == 0 {
		cfg.RepeatMinLen = 50
	}
	if cfg.RepeatMaxLen == 0 {
		cfg.RepeatMaxLen = 500
	}
	if cfg.RepeatMaxLen < cfg.RepeatMinLen {
		cfg.RepeatMaxLen = cfg.RepeatMinLen
	}
}

// RandomSeq returns n i.i.d. letters drawn from the alphabet with the
// given distribution (uniform when freqs is nil).
func RandomSeq(a *Alphabet, n int, freqs []float64, rng *rand.Rand) []byte {
	if freqs == nil {
		out := make([]byte, n)
		for i := range out {
			out[i] = a.Letter(rng.Intn(a.Size()))
		}
		return out
	}
	cum := make([]float64, len(freqs))
	sum := 0.0
	for i, f := range freqs {
		sum += f
		cum[i] = sum
	}
	out := make([]byte, n)
	for i := range out {
		x := rng.Float64() * sum
		k := 0
		for k < len(cum)-1 && x > cum[k] {
			k++
		}
		out[i] = a.Letter(k)
	}
	return out
}

// dnaFreqs returns the DNA letter distribution for a GC content.
// Letter order is A, C, G, T.
func dnaFreqs(gc float64) []float64 {
	at := (1 - gc) / 2
	return []float64{at, gc / 2, gc / 2, at}
}

// RandomGenome generates a synthetic genome-like text. It stands in for
// the paper's GRCh37 human text (DNA) and UniParc text (protein); see
// DESIGN.md. The generator is deterministic for a given rng seed.
func RandomGenome(a *Alphabet, cfg GenomeConfig, rng *rand.Rand) []byte {
	cfg.fillDefaults()
	var freqs []float64
	if a == DNA {
		freqs = dnaFreqs(cfg.GC)
	}
	out := make([]byte, 0, cfg.Length)
	for len(out) < cfg.Length {
		if len(out) > cfg.RepeatMaxLen && rng.Float64() < cfg.RepeatFraction {
			// Copy an earlier segment (a repeat), lightly mutated.
			segLen := cfg.RepeatMinLen
			if cfg.RepeatMaxLen > cfg.RepeatMinLen {
				segLen += rng.Intn(cfg.RepeatMaxLen - cfg.RepeatMinLen)
			}
			segLen = min(segLen, cfg.Length-len(out))
			src := rng.Intn(len(out) - segLen + 1)
			for i := 0; i < segLen; i++ {
				c := out[src+i]
				if rng.Float64() < cfg.RepeatMutationRate {
					c = a.Letter(rng.Intn(a.Size()))
				}
				out = append(out, c)
			}
			continue
		}
		// A stretch of fresh random sequence.
		stretch := min(1+rng.Intn(200), cfg.Length-len(out))
		out = append(out, RandomSeq(a, stretch, freqs, rng)...)
	}
	return out
}

// MutationConfig controls Mutate and MutatedQueries.
type MutationConfig struct {
	SubstitutionRate float64 // per-character substitution probability
	IndelRate        float64 // per-character gap-opening probability
	IndelMaxLen      int     // maximum indel length (default 3)
}

// Mutate returns a copy of s with random substitutions and indels
// applied, modelling a homologous sequence from a related species.
func Mutate(a *Alphabet, s []byte, cfg MutationConfig, rng *rand.Rand) []byte {
	if cfg.IndelMaxLen <= 0 {
		cfg.IndelMaxLen = 3
	}
	out := make([]byte, 0, len(s)+len(s)/10)
	for i := 0; i < len(s); i++ {
		if rng.Float64() < cfg.IndelRate {
			n := 1 + rng.Intn(cfg.IndelMaxLen)
			if rng.Intn(2) == 0 {
				// Deletion: skip n characters of s.
				i += n - 1
				continue
			}
			// Insertion: emit n random characters, then s[i].
			for k := 0; k < n; k++ {
				out = append(out, a.Letter(rng.Intn(a.Size())))
			}
		}
		c := s[i]
		if rng.Float64() < cfg.SubstitutionRate {
			// Substitute with a different letter.
			for {
				nc := a.Letter(rng.Intn(a.Size()))
				if nc != c {
					c = nc
					break
				}
			}
		}
		out = append(out, c)
	}
	return out
}

// HomologousQueries builds count queries of length qlen consisting of
// random background sequence with mutated text segments embedded —
// the structure of the paper's query workloads (mouse-genome queries
// against a human text share conserved segments, not their whole
// length). segLen and segEvery control the conserved-segment length
// and spacing; zeros mean 150 and 600.
func HomologousQueries(a *Alphabet, text []byte, count, qlen, segLen, segEvery int, cfg MutationConfig, rng *rand.Rand) [][]byte {
	if segLen <= 0 {
		segLen = 150
	}
	if segEvery <= 0 {
		segEvery = 600
	}
	if segLen > qlen {
		segLen = qlen
	}
	if segLen > len(text) {
		segLen = len(text)
	}
	out := make([][]byte, count)
	for i := range out {
		q := RandomSeq(a, qlen, nil, rng)
		var segs [][]byte
		for off := segEvery / 3; off+segLen <= qlen; off += segEvery {
			var seg []byte
			if len(segs) > 0 && rng.Float64() < 0.5 {
				// Duplicate an earlier segment verbatim: queries from
				// real genomes carry near-identical internal
				// duplications (satellites, transposon families), the
				// structure §4's score reuse exploits.
				seg = segs[rng.Intn(len(segs))]
			} else {
				src := 0
				if len(text) > segLen {
					src = rng.Intn(len(text) - segLen)
				}
				seg = Mutate(a, text[src:src+segLen], cfg, rng)
			}
			segs = append(segs, seg)
			if len(seg) > qlen-off {
				seg = seg[:qlen-off]
			}
			copy(q[off:], seg)
		}
		out[i] = q
	}
	return out
}

// MutatedQueries samples count substrings of length qlen from text and
// mutates each in full — every query is one long homologous region.
// Sampled windows always fit inside text; qlen larger than the text is
// clamped.
func MutatedQueries(a *Alphabet, text []byte, count, qlen int, cfg MutationConfig, rng *rand.Rand) [][]byte {
	if qlen > len(text) {
		qlen = len(text)
	}
	out := make([][]byte, count)
	for i := range out {
		start := 0
		if len(text) > qlen {
			start = rng.Intn(len(text) - qlen)
		}
		window := text[start : start+qlen]
		out[i] = Mutate(a, window, cfg, rng)
	}
	return out
}
