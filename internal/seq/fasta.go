package seq

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// Record is one FASTA record: a header line (without the leading '>')
// and the concatenated sequence data.
type Record struct {
	Header string
	Seq    []byte
}

// ReadFASTA parses FASTA records from r. Sequence lines are
// concatenated verbatim except that ASCII whitespace is dropped and
// lower-case letters are upshifted, matching how genome assemblies mark
// soft-masked repeats. Data before the first header is an error.
func ReadFASTA(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var recs []Record
	var cur *Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if line[0] == '>' {
			recs = append(recs, Record{Header: string(line[1:])})
			cur = &recs[len(recs)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("seq: line %d: sequence data before first FASTA header", lineNo)
		}
		for _, c := range line {
			if c >= 'a' && c <= 'z' {
				c -= 'a' - 'A'
			}
			cur.Seq = append(cur.Seq, c)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seq: reading FASTA: %w", err)
	}
	return recs, nil
}

// WriteFASTA writes records to w with sequence lines wrapped at width
// columns (60 when width <= 0).
func WriteFASTA(w io.Writer, recs []Record, width int) error {
	if width <= 0 {
		width = 60
	}
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n", rec.Header); err != nil {
			return err
		}
		for off := 0; off < len(rec.Seq); off += width {
			end := min(off+width, len(rec.Seq))
			if _, err := bw.Write(rec.Seq[off:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Collection is a set of named sequences concatenated into one text so
// a single index serves the whole database, exactly as §2.2 of the
// paper prescribes ("given all the sequences T1..Tn in the database, we
// concatenate them into a single sequence T"). A separator byte keeps
// alignments from silently spanning two database sequences: it is not a
// letter of any alphabet, so it can never contribute a match, and
// Locate rejects hits that cross it.
type Collection struct {
	text   []byte
	names  []string
	starts []int // start offset of each member in text
}

// Separator is the byte placed between concatenated sequences.
const Separator byte = '#'

// NewCollection concatenates the records into a single searchable text.
func NewCollection(recs []Record) *Collection {
	c := &Collection{}
	for i, rec := range recs {
		if i > 0 {
			c.text = append(c.text, Separator)
		}
		c.starts = append(c.starts, len(c.text))
		c.names = append(c.names, rec.Header)
		c.text = append(c.text, rec.Seq...)
	}
	return c
}

// Text returns the concatenated text. The caller must not modify it.
func (c *Collection) Text() []byte { return c.text }

// Len returns the number of member sequences.
func (c *Collection) Len() int { return len(c.names) }

// Name returns the header of member i.
func (c *Collection) Name(i int) string { return c.names[i] }

// Locate maps a half-open global interval [start, end) of the
// concatenated text to (member index, local start). ok is false when
// the interval is empty, out of bounds, or crosses a separator.
func (c *Collection) Locate(start, end int) (member, local int, ok bool) {
	if start < 0 || end > len(c.text) || start >= end {
		return 0, 0, false
	}
	// Binary search for the member whose range contains start.
	lo, hi := 0, len(c.starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if c.starts[mid] <= start {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	memberEnd := len(c.text)
	if lo+1 < len(c.starts) {
		memberEnd = c.starts[lo+1] - 1 // exclude the separator
	}
	if end > memberEnd {
		return 0, 0, false
	}
	return lo, start - c.starts[lo], true
}
