package seq

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// Record is one FASTA record: a header line (without the leading '>')
// and the concatenated sequence data.
type Record struct {
	Header string
	Seq    []byte
}

// ReadFASTA parses FASTA records from r. Sequence lines are
// concatenated verbatim except that ASCII whitespace is dropped and
// lower-case letters are upshifted, matching how genome assemblies mark
// soft-masked repeats. Data before the first header is an error.
func ReadFASTA(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var recs []Record
	var cur *Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if line[0] == '>' {
			recs = append(recs, Record{Header: string(line[1:])})
			cur = &recs[len(recs)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("seq: line %d: sequence data before first FASTA header", lineNo)
		}
		for _, c := range line {
			if c >= 'a' && c <= 'z' {
				c -= 'a' - 'A'
			}
			cur.Seq = append(cur.Seq, c)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seq: reading FASTA: %w", err)
	}
	return recs, nil
}

// WriteFASTA writes records to w with sequence lines wrapped at width
// columns (60 when width <= 0).
func WriteFASTA(w io.Writer, recs []Record, width int) error {
	if width <= 0 {
		width = 60
	}
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n", rec.Header); err != nil {
			return err
		}
		for off := 0; off < len(rec.Seq); off += width {
			end := min(off+width, len(rec.Seq))
			if _, err := bw.Write(rec.Seq[off:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Separator is the byte placed between concatenated sequences.
const Separator byte = '#'

// Table is the name/offset directory of a concatenated sequence
// database laid out as §2.2 prescribes — T = T1 # T2 # … # Tn, one
// Separator byte between consecutive members. It answers the
// hit-mapping questions (which member does a text interval fall in,
// and at what local offset) without needing the text itself, which is
// what lets a sharded store keep one global directory over texts it
// never materialises as one buffer.
type Table struct {
	names   []string
	starts  []int // start offset of each member in the concatenated text
	lengths []int
	total   int // length of the concatenated text, separators included
}

// NewTable builds the directory for members with the given names and
// sequence lengths. names and lengths must have equal length; both are
// copied.
func NewTable(names []string, lengths []int) *Table {
	if len(names) != len(lengths) {
		panic("seq: NewTable needs one length per name")
	}
	t := &Table{
		names:   append([]string(nil), names...),
		lengths: append([]int(nil), lengths...),
		starts:  make([]int, 0, len(names)),
	}
	off := 0
	for i, n := range lengths {
		if i > 0 {
			off++ // the separator byte
		}
		t.starts = append(t.starts, off)
		off += n
	}
	t.total = off
	return t
}

// Len returns the number of member sequences.
func (t *Table) Len() int { return len(t.names) }

// Name returns the name of member i.
func (t *Table) Name(i int) string { return t.names[i] }

// SeqLen returns the sequence length of member i.
func (t *Table) SeqLen(i int) int { return t.lengths[i] }

// Start returns member i's start offset in the concatenated text.
func (t *Table) Start(i int) int { return t.starts[i] }

// TotalLen returns the length of the concatenated text, separator
// bytes included.
func (t *Table) TotalLen() int { return t.total }

// Locate maps a half-open global interval [start, end) of the
// concatenated text to (member index, local start). ok is false when
// the interval is empty, out of bounds, or touches a separator — in
// particular, Locate(p, p+1) reports whether position p belongs to a
// member at all, the gather-side test for hits ending on separator
// rows.
func (t *Table) Locate(start, end int) (member, local int, ok bool) {
	if start < 0 || end > t.total || start >= end || len(t.starts) == 0 {
		return 0, 0, false
	}
	// Binary search for the member whose range contains start.
	lo, hi := 0, len(t.starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if t.starts[mid] <= start {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if end > t.starts[lo]+t.lengths[lo] {
		return 0, 0, false // runs past the member into a separator
	}
	return lo, start - t.starts[lo], true
}

// Collection is a set of named sequences concatenated into one text so
// a single index serves the whole database, exactly as §2.2 of the
// paper prescribes ("given all the sequences T1..Tn in the database, we
// concatenate them into a single sequence T"). A separator byte keeps
// alignments from silently spanning two database sequences: it is not a
// letter of any alphabet, so it can never contribute a match, and
// Locate rejects hits that cross it. The name/offset bookkeeping lives
// in the embedded Table.
type Collection struct {
	text []byte
	tab  *Table
}

// NewCollection concatenates the records into a single searchable text.
func NewCollection(recs []Record) *Collection {
	names := make([]string, len(recs))
	lengths := make([]int, len(recs))
	for i, rec := range recs {
		names[i], lengths[i] = rec.Header, len(rec.Seq)
	}
	c := &Collection{tab: NewTable(names, lengths)}
	c.text = make([]byte, 0, c.tab.TotalLen())
	for i, rec := range recs {
		if i > 0 {
			c.text = append(c.text, Separator)
		}
		c.text = append(c.text, rec.Seq...)
	}
	return c
}

// Text returns the concatenated text. The caller must not modify it.
func (c *Collection) Text() []byte { return c.text }

// Table returns the collection's name/offset directory.
func (c *Collection) Table() *Table { return c.tab }

// Len returns the number of member sequences.
func (c *Collection) Len() int { return c.tab.Len() }

// Name returns the header of member i.
func (c *Collection) Name(i int) string { return c.tab.Name(i) }

// Locate maps a half-open global interval [start, end) of the
// concatenated text to (member index, local start). ok is false when
// the interval is empty, out of bounds, or crosses a separator.
func (c *Collection) Locate(start, end int) (member, local int, ok bool) {
	return c.tab.Locate(start, end)
}
