// Package seq provides the biosequence substrate for the ALAE
// reproduction: alphabets (DNA and protein), sequence validation, FASTA
// input/output, and seeded synthetic-data generators that stand in for
// the genome and protein datasets used in the paper's evaluation
// (human GRCh37, mouse MGSCv37 and UniParc, which are not redistributable
// here; see DESIGN.md for the substitution rationale).
package seq

import "fmt"

// Alphabet describes the character set of a biosequence. Characters are
// plain ASCII bytes; Code maps a byte to a dense code in [0, Size) used
// by the index structures.
type Alphabet struct {
	name    string
	letters []byte
	code    [256]int16 // -1 when the byte is not in the alphabet
}

// NewAlphabet builds an alphabet from the given distinct letters.
// It panics if letters repeat, because alphabets are package-level
// constants and a duplicate is a programming error.
func NewAlphabet(name string, letters string) *Alphabet {
	a := &Alphabet{name: name, letters: []byte(letters)}
	for i := range a.code {
		a.code[i] = -1
	}
	for i, c := range a.letters {
		if a.code[c] != -1 {
			panic(fmt.Sprintf("seq: duplicate letter %q in alphabet %s", c, name))
		}
		a.code[c] = int16(i)
	}
	return a
}

// DNA is the four-letter nucleotide alphabet (σ = 4 in the paper).
var DNA = NewAlphabet("DNA", "ACGT")

// Protein is the twenty-letter amino-acid alphabet (σ = 20 in the paper).
var Protein = NewAlphabet("Protein", "ACDEFGHIKLMNPQRSTVWY")

// Name returns the alphabet's name.
func (a *Alphabet) Name() string { return a.name }

// Size returns σ, the number of letters.
func (a *Alphabet) Size() int { return len(a.letters) }

// Letters returns the alphabet's letters in code order. The caller must
// not modify the returned slice.
func (a *Alphabet) Letters() []byte { return a.letters }

// Code returns the dense code of c, or -1 when c is not in the alphabet.
func (a *Alphabet) Code(c byte) int { return int(a.code[c]) }

// Letter returns the letter with the given code.
func (a *Alphabet) Letter(code int) byte { return a.letters[code] }

// Contains reports whether c is a letter of the alphabet.
func (a *Alphabet) Contains(c byte) bool { return a.code[c] >= 0 }

// Validate checks that every byte of s belongs to the alphabet and
// returns a descriptive error for the first offender.
func (a *Alphabet) Validate(s []byte) error {
	for i, c := range s {
		if a.code[c] < 0 {
			return fmt.Errorf("seq: byte %q at offset %d is not in alphabet %s", c, i, a.name)
		}
	}
	return nil
}

// Encode maps s to dense codes. It returns an error when s contains a
// byte outside the alphabet.
func (a *Alphabet) Encode(s []byte) ([]byte, error) {
	out := make([]byte, len(s))
	for i, c := range s {
		v := a.code[c]
		if v < 0 {
			return nil, fmt.Errorf("seq: byte %q at offset %d is not in alphabet %s", c, i, a.name)
		}
		out[i] = byte(v)
	}
	return out, nil
}

// Decode maps dense codes back to letters. Codes out of range panic,
// since they can only come from a bug in this module.
func (a *Alphabet) Decode(codes []byte) []byte {
	out := make([]byte, len(codes))
	for i, v := range codes {
		out[i] = a.letters[v]
	}
	return out
}

// FrequenciesOf returns the empirical letter distribution of s in code
// order. Bytes outside the alphabet are ignored. When s is empty the
// distribution is uniform, which is the right prior for score
// statistics (package evalue) on unseen data.
func (a *Alphabet) FrequenciesOf(s []byte) []float64 {
	freqs := make([]float64, a.Size())
	total := 0
	for _, c := range s {
		if v := a.code[c]; v >= 0 {
			freqs[v]++
			total++
		}
	}
	if total == 0 {
		for i := range freqs {
			freqs[i] = 1 / float64(a.Size())
		}
		return freqs
	}
	for i := range freqs {
		freqs[i] /= float64(total)
	}
	return freqs
}
