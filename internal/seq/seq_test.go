package seq

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAlphabetBasics(t *testing.T) {
	if DNA.Size() != 4 {
		t.Fatalf("DNA size = %d, want 4", DNA.Size())
	}
	if Protein.Size() != 20 {
		t.Fatalf("Protein size = %d, want 20", Protein.Size())
	}
	for i, c := range []byte("ACGT") {
		if DNA.Code(c) != i {
			t.Errorf("DNA.Code(%q) = %d, want %d", c, DNA.Code(c), i)
		}
		if DNA.Letter(i) != c {
			t.Errorf("DNA.Letter(%d) = %q, want %q", i, DNA.Letter(i), c)
		}
	}
	if DNA.Contains('N') {
		t.Error("DNA should not contain N")
	}
	if DNA.Code('N') != -1 {
		t.Errorf("DNA.Code('N') = %d, want -1", DNA.Code('N'))
	}
}

func TestAlphabetEncodeDecodeRoundTrip(t *testing.T) {
	f := func(s []byte) bool {
		// Map arbitrary bytes into the DNA alphabet first.
		letters := DNA.Letters()
		for i := range s {
			s[i] = letters[int(s[i])%len(letters)]
		}
		codes, err := DNA.Encode(s)
		if err != nil {
			return false
		}
		return bytes.Equal(DNA.Decode(codes), s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlphabetEncodeRejectsForeignBytes(t *testing.T) {
	if _, err := DNA.Encode([]byte("ACGN")); err == nil {
		t.Error("Encode accepted a byte outside the alphabet")
	}
	if err := DNA.Validate([]byte("ACGX")); err == nil {
		t.Error("Validate accepted a byte outside the alphabet")
	}
	if err := DNA.Validate([]byte("ACGT")); err != nil {
		t.Errorf("Validate rejected a valid sequence: %v", err)
	}
}

func TestAlphabetDuplicateLetterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewAlphabet with duplicate letters did not panic")
		}
	}()
	NewAlphabet("bad", "AA")
}

func TestFrequenciesOf(t *testing.T) {
	freqs := DNA.FrequenciesOf([]byte("AACG"))
	want := []float64{0.5, 0.25, 0.25, 0}
	for i := range want {
		if freqs[i] != want[i] {
			t.Errorf("freqs[%d] = %g, want %g", i, freqs[i], want[i])
		}
	}
	uniform := DNA.FrequenciesOf(nil)
	for i, f := range uniform {
		if f != 0.25 {
			t.Errorf("uniform freqs[%d] = %g, want 0.25", i, f)
		}
	}
}

func TestReadFASTA(t *testing.T) {
	in := ">chr1 test\nACGT\nacgt\n\n>chr2\nTTTT\n"
	recs, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Header != "chr1 test" {
		t.Errorf("header = %q", recs[0].Header)
	}
	if string(recs[0].Seq) != "ACGTACGT" {
		t.Errorf("seq = %q, want ACGTACGT (lower case upshifted)", recs[0].Seq)
	}
	if string(recs[1].Seq) != "TTTT" {
		t.Errorf("seq2 = %q", recs[1].Seq)
	}
}

func TestReadFASTARejectsHeaderlessData(t *testing.T) {
	if _, err := ReadFASTA(strings.NewReader("ACGT\n")); err == nil {
		t.Error("expected an error for data before the first header")
	}
}

func TestFASTARoundTrip(t *testing.T) {
	recs := []Record{
		{Header: "a", Seq: []byte("ACGTACGTACGTACGT")},
		{Header: "b desc", Seq: []byte("TT")},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, recs, 5); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip: got %d records, want %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i].Header != recs[i].Header || !bytes.Equal(back[i].Seq, recs[i].Seq) {
			t.Errorf("record %d mismatch: %+v vs %+v", i, back[i], recs[i])
		}
	}
}

func TestCollectionLocate(t *testing.T) {
	c := NewCollection([]Record{
		{Header: "s0", Seq: []byte("AAAA")},
		{Header: "s1", Seq: []byte("CC")},
		{Header: "s2", Seq: []byte("GGG")},
	})
	if got := string(c.Text()); got != "AAAA#CC#GGG" {
		t.Fatalf("text = %q", got)
	}
	cases := []struct {
		start, end  int
		member, loc int
		ok          bool
	}{
		{0, 4, 0, 0, true},
		{1, 3, 0, 1, true},
		{5, 7, 1, 0, true},
		{8, 11, 2, 0, true},
		{3, 6, 0, 0, false}, // crosses separator
		{4, 5, 0, 0, false}, // separator itself ends past member
		{-1, 2, 0, 0, false},
		{0, 0, 0, 0, false},
		{9, 20, 0, 0, false},
	}
	for _, tc := range cases {
		m, l, ok := c.Locate(tc.start, tc.end)
		if ok != tc.ok || (ok && (m != tc.member || l != tc.loc)) {
			t.Errorf("Locate(%d,%d) = (%d,%d,%v), want (%d,%d,%v)",
				tc.start, tc.end, m, l, ok, tc.member, tc.loc, tc.ok)
		}
	}
	if c.Len() != 3 || c.Name(1) != "s1" {
		t.Errorf("Len/Name wrong: %d %q", c.Len(), c.Name(1))
	}
}

func TestRandomSeqUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := RandomSeq(DNA, 100000, nil, rng)
	if err := DNA.Validate(s); err != nil {
		t.Fatal(err)
	}
	freqs := DNA.FrequenciesOf(s)
	for i, f := range freqs {
		if f < 0.23 || f > 0.27 {
			t.Errorf("letter %d frequency %g far from uniform", i, f)
		}
	}
}

func TestRandomGenomeGCContent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := RandomGenome(DNA, GenomeConfig{Length: 200000, GC: 0.6}, rng)
	if len(g) != 200000 {
		t.Fatalf("length = %d, want 200000", len(g))
	}
	freqs := DNA.FrequenciesOf(g)
	gc := freqs[DNA.Code('G')] + freqs[DNA.Code('C')]
	if gc < 0.57 || gc > 0.63 {
		t.Errorf("GC content %g, want about 0.6", gc)
	}
}

func TestRandomGenomeRepeatsIncreaseDuplication(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	plain := RandomGenome(DNA, GenomeConfig{Length: 50000}, rng)
	rng = rand.New(rand.NewSource(3))
	repeaty := RandomGenome(DNA, GenomeConfig{Length: 50000, RepeatFraction: 0.5}, rng)

	if len(repeaty) != 50000 {
		t.Fatalf("length = %d", len(repeaty))
	}
	// Count distinct 16-mers: a repeat-rich text has noticeably fewer.
	distinct := func(s []byte) int {
		set := make(map[string]struct{})
		for i := 0; i+16 <= len(s); i++ {
			set[string(s[i:i+16])] = struct{}{}
		}
		return len(set)
	}
	dp, dr := distinct(plain), distinct(repeaty)
	if dr >= dp {
		t.Errorf("repeat-rich text has %d distinct 16-mers, plain has %d; want fewer", dr, dp)
	}
}

func TestRandomGenomeProtein(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := RandomGenome(Protein, GenomeConfig{Length: 10000}, rng)
	if len(g) != 10000 {
		t.Fatalf("length = %d", len(g))
	}
	if err := Protein.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestMutateRates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := RandomSeq(DNA, 20000, nil, rng)

	same := Mutate(DNA, s, MutationConfig{}, rng)
	if !bytes.Equal(same, s) {
		t.Error("zero-rate mutation changed the sequence")
	}

	mut := Mutate(DNA, s, MutationConfig{SubstitutionRate: 0.1}, rng)
	if len(mut) != len(s) {
		t.Fatalf("substitution-only mutation changed length: %d vs %d", len(mut), len(s))
	}
	diff := 0
	for i := range s {
		if mut[i] != s[i] {
			diff++
		}
	}
	rate := float64(diff) / float64(len(s))
	if rate < 0.07 || rate > 0.13 {
		t.Errorf("observed substitution rate %g, want about 0.1", rate)
	}

	indel := Mutate(DNA, s, MutationConfig{IndelRate: 0.05}, rng)
	if len(indel) == len(s) {
		t.Log("indel mutation kept length (possible but unlikely)")
	}
	if err := DNA.Validate(indel); err != nil {
		t.Fatal(err)
	}
}

func TestMutatedQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	text := RandomSeq(DNA, 5000, nil, rng)
	qs := MutatedQueries(DNA, text, 7, 200, MutationConfig{SubstitutionRate: 0.02}, rng)
	if len(qs) != 7 {
		t.Fatalf("got %d queries, want 7", len(qs))
	}
	for i, q := range qs {
		if len(q) < 150 || len(q) > 250 {
			t.Errorf("query %d length %d far from 200", i, len(q))
		}
		if err := DNA.Validate(q); err != nil {
			t.Errorf("query %d: %v", i, err)
		}
	}
	// Clamping: query length longer than the text must not panic.
	long := MutatedQueries(DNA, text[:100], 1, 1000, MutationConfig{}, rng)
	if len(long[0]) == 0 {
		t.Error("clamped query is empty")
	}
}

func TestRandomGenomeDeterministic(t *testing.T) {
	a := RandomGenome(DNA, GenomeConfig{Length: 10000, RepeatFraction: 0.3}, rand.New(rand.NewSource(42)))
	b := RandomGenome(DNA, GenomeConfig{Length: 10000, RepeatFraction: 0.3}, rand.New(rand.NewSource(42)))
	if !bytes.Equal(a, b) {
		t.Error("generator is not deterministic for a fixed seed")
	}
}

func TestHomologousQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	text := RandomSeq(DNA, 20000, nil, rng)
	qs := HomologousQueries(DNA, text, 5, 3000, 150, 600,
		MutationConfig{SubstitutionRate: 0.03}, rng)
	if len(qs) != 5 {
		t.Fatalf("got %d queries", len(qs))
	}
	for i, q := range qs {
		if len(q) != 3000 {
			t.Errorf("query %d length %d, want 3000", i, len(q))
		}
		if err := DNA.Validate(q); err != nil {
			t.Errorf("query %d: %v", i, err)
		}
	}
	// A homologous query must share long exact runs with the text; a
	// purely random one must not. Compare longest shared 20-mer counts.
	kmers := make(map[string]bool)
	for i := 0; i+20 <= len(text); i++ {
		kmers[string(text[i:i+20])] = true
	}
	shared := 0
	for i := 0; i+20 <= len(qs[0]); i++ {
		if kmers[string(qs[0][i:i+20])] {
			shared++
		}
	}
	if shared == 0 {
		t.Error("homologous query shares no 20-mers with the text")
	}
	random := RandomSeq(DNA, 3000, nil, rng)
	sharedRandom := 0
	for i := 0; i+20 <= len(random); i++ {
		if kmers[string(random[i:i+20])] {
			sharedRandom++
		}
	}
	if sharedRandom >= shared {
		t.Errorf("random query shares as much as homologous: %d vs %d", sharedRandom, shared)
	}
	// Segment length above qlen and tiny texts must not panic.
	HomologousQueries(DNA, text[:50], 1, 30, 100, 100, MutationConfig{}, rng)
}

// TestTableLayoutAndLocate pins the promoted directory type against
// the collection it indexes: starts/lengths describe exactly the
// concatenated text, every in-member position locates to its member
// and offset, and every separator position (and every interval
// touching one) is rejected.
func TestTableLayoutAndLocate(t *testing.T) {
	recs := []Record{
		{Header: "a", Seq: []byte("ACGTACGT")},
		{Header: "b", Seq: []byte("GG")},
		{Header: "c", Seq: []byte("TTTTT")},
	}
	c := NewCollection(recs)
	tab := c.Table()
	if tab.TotalLen() != len(c.Text()) {
		t.Fatalf("TotalLen %d, text %d", tab.TotalLen(), len(c.Text()))
	}
	if tab.Len() != 3 || tab.Name(1) != "b" || tab.SeqLen(2) != 5 {
		t.Fatalf("directory fields wrong: %d members, name(1)=%q, seqlen(2)=%d",
			tab.Len(), tab.Name(1), tab.SeqLen(2))
	}
	for i, rec := range recs {
		start := tab.Start(i)
		if got := c.Text()[start : start+len(rec.Seq)]; string(got) != string(rec.Seq) {
			t.Fatalf("member %d text %q, want %q", i, got, rec.Seq)
		}
		for off := range rec.Seq {
			m, local, ok := tab.Locate(start+off, start+off+1)
			if !ok || m != i || local != off {
				t.Fatalf("Locate(%d) = (%d,%d,%v), want (%d,%d,true)", start+off, m, local, ok, i, off)
			}
		}
	}
	for _, sep := range []int{8, 11} { // the two separator positions
		if c.Text()[sep] != Separator {
			t.Fatalf("position %d is %q, want separator", sep, c.Text()[sep])
		}
		if _, _, ok := tab.Locate(sep, sep+1); ok {
			t.Fatalf("Locate accepted separator position %d", sep)
		}
		if _, _, ok := tab.Locate(sep-1, sep+1); ok {
			t.Fatalf("Locate accepted interval crossing separator at %d", sep)
		}
	}
	// Degenerate intervals.
	if _, _, ok := tab.Locate(-1, 1); ok {
		t.Error("negative start accepted")
	}
	if _, _, ok := tab.Locate(3, 3); ok {
		t.Error("empty interval accepted")
	}
	if _, _, ok := tab.Locate(0, tab.TotalLen()+1); ok {
		t.Error("out-of-bounds end accepted")
	}
}
