// Package analysis implements the closed-form entry-count bounds of
// §6 of the paper. For a scheme ⟨sa,sb,sg,ss⟩ over an alphabet of
// size σ, Lemma 4 bounds the number of positive-scoring gap-free
// alignments of a length-d substring by f(d) ≤ k1·k2^d with
//
//	s  = 1 + |sb|/|sa|
//	k1 = (1 − 1/s)^q · (σ−1)/(σ−2) · s/√(2π(s−1))
//	k2 = s · (σ−1)^{1/s} / (s−1)^{(s−1)/s}
//
// and Equation 4 turns that into the expected total number of entries
// ALAE calculates:
//
//	( k1/(k2−1) + k1·σ²/(σ−k2) ) · m · n^{log_σ k2}.
//
// Swept over BLAST's published parameter grid this yields the ranges
// quoted in the abstract: 4.50·mn^0.520 … 9.05·mn^0.896 for DNA and
// 8.28·mn^0.364 … 7.49·mn^0.723 for proteins, with 4.47·mn^0.6038 for
// the default ⟨1,−3,−5,−2⟩ — versus BWT-SW's 69·mn^0.628.
package analysis

import (
	"fmt"
	"math"

	"repro/internal/align"
)

// Bound is the upper bound coefficient·m·n^exponent on the number of
// calculated entries for one scheme and alphabet size.
type Bound struct {
	Scheme      align.Scheme
	Sigma       int
	K1, K2      float64
	Coefficient float64
	Exponent    float64
}

// Compute evaluates the §6 bound for a scheme over an alphabet of
// size sigma. It returns an error when the bound's preconditions fail
// (σ > 2 for the (σ−1)/(σ−2) factor; k2 < σ so the geometric series
// of Equation 4 converges; s > 1).
func Compute(sch align.Scheme, sigma int) (Bound, error) {
	if err := sch.Validate(); err != nil {
		return Bound{}, err
	}
	if sigma <= 2 {
		return Bound{}, fmt.Errorf("analysis: alphabet size %d too small for the Lemma 4 bound", sigma)
	}
	s := 1 + float64(-sch.Mismatch)/float64(sch.Match)
	if s <= 1 {
		return Bound{}, fmt.Errorf("analysis: s = %g must exceed 1", s)
	}
	q := float64(sch.Q())
	sig := float64(sigma)

	k1 := math.Pow(1-1/s, q) * ((sig - 1) / (sig - 2)) * s / math.Sqrt(2*math.Pi*(s-1))
	k2 := s * math.Pow(sig-1, 1/s) / math.Pow(s-1, (s-1)/s)
	if k2 >= sig-1e-9 {
		return Bound{}, fmt.Errorf("analysis: k2 = %g ≥ σ = %d; Equation 4 diverges", k2, sigma)
	}
	if k2 <= 1 {
		return Bound{}, fmt.Errorf("analysis: k2 = %g ≤ 1; Equation 4's first series diverges", k2)
	}
	coeff := k1/(k2-1) + k1*sig*sig/(sig-k2)
	return Bound{
		Scheme: sch, Sigma: sigma,
		K1: k1, K2: k2,
		Coefficient: coeff,
		Exponent:    math.Log(k2) / math.Log(sig),
	}, nil
}

// Entries evaluates the bound for concrete m and n.
func (b Bound) Entries(m, n int) float64 {
	return b.Coefficient * float64(m) * math.Pow(float64(n), b.Exponent)
}

// String renders the bound the way the paper quotes them.
func (b Bound) String() string {
	return fmt.Sprintf("%.2f·mn^%.4f (scheme %v, σ=%d)", b.Coefficient, b.Exponent, b.Scheme, b.Sigma)
}

// BWTSWBound is the comparison constant the paper cites from Lam et
// al. for the default DNA scheme: 69·mn^0.628.
var BWTSWBound = struct {
	Coefficient, Exponent float64
}{69, 0.628}

// BLASTGrid enumerates the scoring schemes BLAST publishes (§6):
// (sa, sb) pairs crossed with the |sg|/|sa| ∈ {1,2,3,5} and
// |ss|/|sa| ∈ {1,2} ratios. Schemes whose bound preconditions fail
// are skipped, mirroring the paper's "representative ranges".
func BLASTGrid(sigma int) []Bound {
	pairs := [][2]int{{1, -2}, {1, -3}, {1, -4}, {2, -3}, {4, -5}, {1, -1}}
	gRatios := []int{1, 2, 3, 5}
	sRatios := []int{1, 2}
	var out []Bound
	for _, p := range pairs {
		for _, g := range gRatios {
			for _, s := range sRatios {
				sch := align.Scheme{
					Match: p[0], Mismatch: p[1],
					GapOpen: -g * p[0], GapExtend: -s * p[0],
				}
				b, err := Compute(sch, sigma)
				if err != nil {
					continue
				}
				out = append(out, b)
			}
		}
	}
	return out
}

// Range reports the extreme bounds over the BLAST grid, the way the
// abstract quotes them: the best end is the smallest exponent with
// the smallest coefficient among schemes sharing it (the gap scores
// change q and hence k1 but not k2), the worst end the largest
// exponent with the largest coefficient.
func Range(sigma int) (minExp, maxExp Bound) {
	grid := BLASTGrid(sigma)
	minExp, maxExp = grid[0], grid[0]
	const eps = 1e-12
	for _, b := range grid[1:] {
		if b.Exponent < minExp.Exponent-eps ||
			(b.Exponent < minExp.Exponent+eps && b.Coefficient < minExp.Coefficient) {
			minExp = b
		}
		if b.Exponent > maxExp.Exponent+eps ||
			(b.Exponent > maxExp.Exponent-eps && b.Coefficient > maxExp.Coefficient) {
			maxExp = b
		}
	}
	return minExp, maxExp
}
