package analysis

import (
	"math"
	"testing"

	"repro/internal/align"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.4f, want ≈%.4f", name, got, want)
	}
}

func TestDefaultDNABoundMatchesPaper(t *testing.T) {
	// §6: "using ALAE the number is upper bounded by 4.47·mn^0.6038"
	// for ⟨1,−3,−5,−2⟩ on DNA.
	b, err := Compute(align.DefaultDNA, 4)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "exponent", b.Exponent, 0.6038, 0.0005)
	approx(t, "coefficient", b.Coefficient, 4.47, 0.02)
	// k2 = 4/√3 for s = 4, σ = 4.
	approx(t, "k2", b.K2, 4/math.Sqrt(3), 1e-9)
}

func TestDNARangeMatchesAbstract(t *testing.T) {
	// Abstract: "vary from 4.50·mn^0.520 to 9.05·mn^0.896 for random
	// DNA sequences".
	lo, hi := Range(4)
	approx(t, "min exponent", lo.Exponent, 0.520, 0.002)
	approx(t, "min coefficient", lo.Coefficient, 4.50, 0.02)
	approx(t, "max exponent", hi.Exponent, 0.896, 0.002)
	approx(t, "max coefficient", hi.Coefficient, 9.05, 0.02)
	// The extremes come from ⟨1,−4,…⟩ (deep pruning) and ⟨1,−1,…⟩
	// (shallow pruning), as §7.4 discusses.
	if lo.Scheme.Mismatch != -4 {
		t.Errorf("min-exponent scheme = %v, expected a (1,−4) scheme", lo.Scheme)
	}
	if hi.Scheme.Mismatch != -1 {
		t.Errorf("max-exponent scheme = %v, expected the (1,−1) scheme", hi.Scheme)
	}
}

func TestProteinRangeMatchesAbstract(t *testing.T) {
	// Abstract: "vary from 8.28·mn^0.364 to 7.49·mn^0.723 for random
	// proteins sequences".
	lo, hi := Range(20)
	approx(t, "min exponent", lo.Exponent, 0.364, 0.002)
	approx(t, "min coefficient", lo.Coefficient, 8.28, 0.02)
	approx(t, "max exponent", hi.Exponent, 0.723, 0.002)
	approx(t, "max coefficient", hi.Coefficient, 7.49, 0.02)
}

func TestALAEBeatsBWTSWBoundOnDefaultScheme(t *testing.T) {
	b, _ := Compute(align.DefaultDNA, 4)
	if b.Exponent >= BWTSWBound.Exponent {
		t.Errorf("ALAE exponent %.4f not below BWT-SW's %.3f", b.Exponent, BWTSWBound.Exponent)
	}
	if b.Coefficient >= BWTSWBound.Coefficient {
		t.Errorf("ALAE coefficient %.2f not below BWT-SW's %.0f", b.Coefficient, BWTSWBound.Coefficient)
	}
	// Concretely, at n = 1e9, m = 1e6 ALAE's bound is orders of
	// magnitude smaller.
	alae := b.Entries(1e6, 1e9)
	bwtsw := BWTSWBound.Coefficient * 1e6 * math.Pow(1e9, BWTSWBound.Exponent)
	if alae >= bwtsw/10 {
		t.Errorf("bound gap too small: ALAE %.3g vs BWT-SW %.3g", alae, bwtsw)
	}
}

func TestComputeRejectsDegenerateInputs(t *testing.T) {
	if _, err := Compute(align.Scheme{}, 4); err == nil {
		t.Error("invalid scheme accepted")
	}
	if _, err := Compute(align.DefaultDNA, 2); err == nil {
		t.Error("σ=2 accepted (the (σ−1)/(σ−2) factor is undefined)")
	}
	// For s = 1.5 on a 3-letter alphabet, k2 = 1.5·2^{2/3}/2^{−1/3} =
	// 1.5·2 = 3 = σ exactly: the geometric series of Equation 4
	// diverges and Compute must refuse.
	bad := align.Scheme{Match: 2, Mismatch: -1, GapOpen: -5, GapExtend: -2}
	if _, err := Compute(bad, 3); err == nil {
		t.Error("diverging scheme accepted (k2 = σ expected to error)")
	}
}

func TestGridIsSubstantial(t *testing.T) {
	grid := BLASTGrid(4)
	if len(grid) < 20 {
		t.Errorf("grid has only %d valid schemes", len(grid))
	}
	for _, b := range grid {
		if b.Exponent <= 0 || b.Exponent >= 1 {
			t.Errorf("exponent %.3f out of (0,1) for %v", b.Exponent, b.Scheme)
		}
		if b.Coefficient <= 0 {
			t.Errorf("non-positive coefficient for %v", b.Scheme)
		}
	}
}

func TestEntriesMonotonic(t *testing.T) {
	b, _ := Compute(align.DefaultDNA, 4)
	if b.Entries(1000, 1e6) >= b.Entries(1000, 1e8) {
		t.Error("bound not increasing in n")
	}
	if b.Entries(1000, 1e6) >= b.Entries(10000, 1e6) {
		t.Error("bound not increasing in m")
	}
}

func TestStringFormat(t *testing.T) {
	b, _ := Compute(align.DefaultDNA, 4)
	if s := b.String(); s == "" {
		t.Error("empty String()")
	}
}
