package exp

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro"
	"repro/internal/align"
	"repro/internal/analysis"
	"repro/internal/seq"
)

// tiny is a configuration small enough for unit tests.
var tiny = Config{Scale: 0.02, Seed: 7, NumQueries: 1}

func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	for _, e := range Experiments {
		var buf bytes.Buffer
		if err := e.Run(&buf, tiny); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", e.ID)
		}
	}
}

func TestRunByIDAndUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("bounds", &buf, tiny); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mn^") {
		t.Errorf("bounds output missing the bound form: %q", buf.String())
	}
	if err := Run("nope", &buf, tiny); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunAll(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf, tiny); err != nil {
		t.Fatal(err)
	}
	for _, e := range Experiments {
		if !strings.Contains(buf.String(), e.ID) {
			t.Errorf("RunAll output missing section %s", e.ID)
		}
	}
}

func TestWorkloadShapes(t *testing.T) {
	wl := DNAWorkload(5000, 300, 4, 1)
	if len(wl.Text) != 5000 || len(wl.Queries) != 4 {
		t.Fatalf("workload shape: n=%d queries=%d", len(wl.Text), len(wl.Queries))
	}
	pw := ProteinWorkload(2000, 100, 2, 1)
	if len(pw.Text) != 2000 || len(pw.Queries) != 2 {
		t.Fatalf("protein workload shape wrong")
	}
}

func TestMeasureAggregates(t *testing.T) {
	wl := DNAWorkload(4000, 300, 3, 2)
	ix := alae.NewIndex(wl.Text)
	m := Measure(ix, wl, alae.SearchOptions{Algorithm: alae.ALAE})
	if m.Err != nil {
		t.Fatal(m.Err)
	}
	if m.Hits == 0 {
		t.Error("homologous workload produced no hits")
	}
	if m.Stats.CalculatedEntries == 0 {
		t.Error("no entries accounted")
	}
	if m.AvgTime <= 0 {
		t.Error("no time measured")
	}
}

func TestMeasurePropagatesErrors(t *testing.T) {
	wl := DNAWorkload(2000, 200, 1, 3)
	ix := alae.NewIndex(wl.Text)
	m := Measure(ix, wl, alae.SearchOptions{
		Algorithm: alae.BWTSW,
		Scheme:    alae.Scheme{Match: 1, Mismatch: -1, GapOpen: -5, GapExtend: -2},
	})
	if m.Err == nil {
		t.Error("BWT-SW on an incompatible scheme must error")
	}
}

func TestFilteringRatio(t *testing.T) {
	if FilteringRatio(25, 100) != 0.75 {
		t.Error("ratio arithmetic wrong")
	}
	if FilteringRatio(100, 0) != 0 {
		t.Error("zero denominator not handled")
	}
	if FilteringRatio(200, 100) != 0 {
		t.Error("negative ratio not clamped")
	}
}

// TestExactEnginesAgreeOnHarnessWorkload ties the harness back to the
// exactness invariant at a slightly larger scale than the unit tests.
func TestExactEnginesAgreeOnHarnessWorkload(t *testing.T) {
	wl := DNAWorkload(20_000, 1_000, 2, 11)
	ix := alae.NewIndex(wl.Text)
	a := Measure(ix, wl, alae.SearchOptions{Algorithm: alae.ALAE})
	b := Measure(ix, wl, alae.SearchOptions{Algorithm: alae.BWTSW})
	sw := Measure(ix, wl, alae.SearchOptions{Algorithm: alae.SmithWaterman})
	for _, m := range []Measurement{a, b, sw} {
		if m.Err != nil {
			t.Fatal(m.Err)
		}
	}
	if a.Hits != b.Hits || a.Hits != sw.Hits {
		t.Fatalf("hit counts differ: ALAE=%d BWT-SW=%d SW=%d", a.Hits, b.Hits, sw.Hits)
	}
	if a.Hits == 0 {
		t.Fatal("vacuous workload")
	}
	// And the filtering ratio must be positive: ALAE computes less.
	if f := FilteringRatio(a.Stats.CalculatedEntries, b.Stats.CalculatedEntries); f <= 0 {
		t.Errorf("filtering ratio %.3f not positive (ALAE %d vs BWT-SW %d entries)",
			f, a.Stats.CalculatedEntries, b.Stats.CalculatedEntries)
	}
}

// TestMeasuredEntriesRespectAnalyticBound ties the engine's counters
// to the §6 theory: on random inputs the calculated entries must stay
// below coefficient·m·n^exponent.
func TestMeasuredEntriesRespectAnalyticBound(t *testing.T) {
	bound, err := analysis.Compute(align.DefaultDNA, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	m := 1000
	for _, n := range []int{50_000, 150_000} {
		text := seq.RandomSeq(seq.DNA, n, nil, rng)
		queries := [][]byte{
			seq.RandomSeq(seq.DNA, m, nil, rng),
			seq.RandomSeq(seq.DNA, m, nil, rng),
		}
		ix := alae.NewIndex(text)
		meas := Measure(ix, Workload{Text: text, Queries: queries, Alphabet: seq.DNA},
			alae.SearchOptions{Algorithm: alae.ALAE})
		if meas.Err != nil {
			t.Fatal(meas.Err)
		}
		perQuery := float64(meas.Stats.CalculatedEntries) / 2
		analytic := bound.Entries(m, n)
		if perQuery > analytic {
			t.Errorf("n=%d: measured %.0f entries exceed the §6 bound %.0f", n, perQuery, analytic)
		}
	}
}
