// Package exp is the evaluation harness: it regenerates every table
// and figure of the paper's §7 on synthetic workloads (see DESIGN.md
// for the dataset substitutions) plus the §6 analytic bounds. Each
// experiment prints rows shaped like the paper's artifact so the two
// can be compared side by side; EXPERIMENTS.md records that
// comparison.
package exp

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"repro"
	"repro/internal/align"
	"repro/internal/analysis"
	"repro/internal/seq"
)

// Config scales the workloads. Scale 1.0 is the laptop default
// (texts of a few hundred thousand to a couple of million characters);
// the paper's full sizes (n up to 10⁹) are reachable with large
// scales and patience.
type Config struct {
	Scale      float64 // multiplies every text/query length (default 1)
	Seed       int64   // RNG seed (default 42)
	NumQueries int     // queries per workload point (default 3; paper used 100)
	// Parallelism is passed to every search's SearchOptions: worker
	// goroutines per ALAE search (0 = all cores, 1 = sequential). Work
	// metrics (entries, ratios) are identical either way; only the
	// timing columns move.
	Parallelism int
}

func (c Config) fill() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.NumQueries <= 0 {
		c.NumQueries = 3
	}
	return c
}

func (c Config) scaled(base int) int {
	v := int(float64(base) * c.Scale)
	if v < 64 {
		v = 64
	}
	return v
}

// Workload is one evaluation dataset: a text and homologous queries.
type Workload struct {
	Text     []byte
	Queries  [][]byte
	Alphabet *seq.Alphabet
}

// DNAWorkload builds a repeat-bearing synthetic genome of length n and
// numQ mutated-substring queries of length qlen, standing in for the
// paper's GRCh37 text and MGSCv37 queries.
func DNAWorkload(n, qlen, numQ int, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	text := seq.RandomGenome(seq.DNA, seq.GenomeConfig{
		Length: n, GC: 0.41, RepeatFraction: 0.08, RepeatMutationRate: 0.05,
	}, rng)
	queries := seq.HomologousQueries(seq.DNA, text, numQ, qlen, 100, 2500, seq.MutationConfig{
		SubstitutionRate: 0.05, IndelRate: 0.01,
	}, rng)
	return Workload{Text: text, Queries: queries, Alphabet: seq.DNA}
}

// ProteinWorkload is the UniParc stand-in over Σ=20.
func ProteinWorkload(n, qlen, numQ int, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	text := seq.RandomGenome(seq.Protein, seq.GenomeConfig{
		Length: n, RepeatFraction: 0.05, RepeatMutationRate: 0.05,
	}, rng)
	queries := seq.HomologousQueries(seq.Protein, text, numQ, qlen, 60, 1500, seq.MutationConfig{
		SubstitutionRate: 0.08, IndelRate: 0.01,
	}, rng)
	return Workload{Text: text, Queries: queries, Alphabet: seq.Protein}
}

// ProteinEmissionWorkload builds the emission-heavy protein case the
// emit-path work targets: a repeat-dense text (half the characters are
// lightly diverged copies of earlier segments) in which every query is
// a lightly mutated copy of a text window. Each query therefore aligns
// against many near-copies at once, surviving bands stay wide, and
// band cells fan out over multiple occurrences — collector traffic,
// not rank, is the wall.
func ProteinEmissionWorkload(n, qlen, numQ int, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	text := seq.RandomGenome(seq.Protein, seq.GenomeConfig{
		Length: n, RepeatFraction: 0.5, RepeatMutationRate: 0.02,
		RepeatMinLen: 400, RepeatMaxLen: 1600,
	}, rng)
	queries := make([][]byte, numQ)
	for i := range queries {
		// Draw from the back half, where most windows are repeat copies.
		src := len(text)/2 + rng.Intn(len(text)/2-qlen)
		queries[i] = seq.Mutate(seq.Protein, text[src:src+qlen], seq.MutationConfig{
			SubstitutionRate: 0.03, IndelRate: 0.005,
		}, rng)
	}
	return Workload{Text: text, Queries: queries, Alphabet: seq.Protein}
}

// Measurement is one (algorithm, workload) cell of a table.
type Measurement struct {
	Algorithm alae.Algorithm
	AvgTime   time.Duration // per query
	Hits      int           // total result count C across queries
	Stats     alae.Stats    // accumulated
	Threshold int
	Err       error
}

// Measure runs every query of the workload through one algorithm.
// Offline index structures (the domination index, §3.2.2) are built
// before timing starts, matching the paper's accounting ("constructing
// dominations offline").
func Measure(ix *alae.Index, w Workload, opts alae.SearchOptions) Measurement {
	m := Measurement{Algorithm: opts.Algorithm}
	if opts.Algorithm == alae.ALAE || opts.Algorithm == alae.ALAEHybrid {
		s := opts.Scheme
		if s == (alae.Scheme{}) {
			s = alae.DefaultDNAScheme
		}
		if _, err := ix.DominationIndexSize(s); err != nil {
			m.Err = err
			return m
		}
	}
	var total time.Duration
	for _, q := range w.Queries {
		start := time.Now()
		res, err := ix.Search(q, opts)
		if err != nil {
			m.Err = err
			return m
		}
		total += time.Since(start)
		m.Hits += len(res.Hits)
		m.Threshold = res.Threshold
		m.Stats.CalculatedEntries += res.Stats.CalculatedEntries
		m.Stats.ReusedEntries += res.Stats.ReusedEntries
		m.Stats.AccessedEntries += res.Stats.AccessedEntries
		m.Stats.ComputationCost += res.Stats.ComputationCost
		m.Stats.NodesVisited += res.Stats.NodesVisited
		m.Stats.ForksStarted += res.Stats.ForksStarted
		m.Stats.ForksDominated += res.Stats.ForksDominated
		m.Stats.Seeds += res.Stats.Seeds
		m.Stats.EmittedHits += res.Stats.EmittedHits
		m.Stats.SuppressedEmissions += res.Stats.SuppressedEmissions
		m.Stats.CopiedEmissions += res.Stats.CopiedEmissions
	}
	if len(w.Queries) > 0 {
		m.AvgTime = total / time.Duration(len(w.Queries))
	}
	return m
}

// FilteringRatio is Equation 5: the share of BWT-SW's calculated
// entries that ALAE never touches.
func FilteringRatio(alaeEntries, bwtswEntries int64) float64 {
	if bwtswEntries <= 0 {
		return 0
	}
	f := float64(bwtswEntries-alaeEntries) / float64(bwtswEntries)
	if f < 0 {
		return 0
	}
	return f
}

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
}

// Experiments enumerates every runnable experiment by id.
var Experiments = []struct {
	ID   string
	Desc string
	Run  func(w io.Writer, cfg Config) error
}{
	{"table2", "Table 2: time & results vs query length m", Table2},
	{"table3", "Table 3: time & results vs text length n", Table3},
	{"table4", "Table 4: calculated entries × cost, ALAE vs BWT-SW", Table4},
	{"table5", "Table 5: reused/accessed/calculated entries per scheme", Table5},
	{"fig7", "Figure 7: filtering & reusing ratios vs m and n", Fig7},
	{"fig8", "Figure 8: time vs E-value", Fig8},
	{"fig9", "Figure 9: time vs scoring scheme, 3 algorithms", Fig9},
	{"fig10", "Figure 10: filtering & reusing ratios per scheme", Fig10},
	{"fig11", "Figure 11: index sizes (BWT + dominate), DNA & protein", Fig11},
	{"bounds", "§6: closed-form entry bounds over the BLAST grid", Bounds},
	{"growth", "§6 empirical check: measured entries vs the analytic bound", Growth},
}

// Run executes one experiment by id.
func Run(id string, w io.Writer, cfg Config) error {
	for _, e := range Experiments {
		if e.ID == id {
			return e.Run(w, cfg)
		}
	}
	return fmt.Errorf("exp: unknown experiment %q", id)
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, cfg Config) error {
	for _, e := range Experiments {
		fmt.Fprintf(w, "==== %s — %s ====\n", e.ID, e.Desc)
		if err := e.Run(w, cfg); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// exactAlgorithms are the three compared engines of Tables 2-3.
var tableAlgorithms = []alae.Algorithm{alae.ALAE, alae.BLAST, alae.BWTSW}

// Table2 varies the query length at fixed text length (paper: n = 1
// billion, m from 1 thousand to 10 million; here scaled down but the
// ordering ALAE < BLAST < BWT-SW in time, and ALAE = BWT-SW > BLAST
// in result counts, is the artifact being reproduced).
func Table2(w io.Writer, cfg Config) error {
	cfg = cfg.fill()
	n := cfg.scaled(1_000_000)
	ms := []int{cfg.scaled(1_000), cfg.scaled(5_000), cfg.scaled(20_000)}
	wl0 := DNAWorkload(n, 1, 1, cfg.Seed) // text only; queries per m below
	ix := alae.NewIndex(wl0.Text)
	tw := newTab(w)
	fmt.Fprintf(tw, "n=%d, scheme %v, E=10\t", n, alae.DefaultDNAScheme)
	for _, m := range ms {
		fmt.Fprintf(tw, "m=%d\t\t", m)
	}
	fmt.Fprintln(tw)
	fmt.Fprint(tw, "Approach\t")
	for range ms {
		fmt.Fprint(tw, "Time\tC\t")
	}
	fmt.Fprintln(tw)
	for _, alg := range tableAlgorithms {
		fmt.Fprintf(tw, "%v\t", alg)
		for mi, m := range ms {
			wl := Workload{Text: wl0.Text, Alphabet: seq.DNA}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(mi) + 1))
			wl.Queries = seq.HomologousQueries(seq.DNA, wl0.Text, cfg.NumQueries, m, 0, 0,
				seq.MutationConfig{SubstitutionRate: 0.05, IndelRate: 0.01}, rng)
			meas := Measure(ix, wl, alae.SearchOptions{Parallelism: cfg.Parallelism, Algorithm: alg})
			if meas.Err != nil {
				return meas.Err
			}
			fmt.Fprintf(tw, "%s\t%d\t", fmtDur(meas.AvgTime), meas.Hits)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Table3 varies the text length at fixed query length (paper: m = 1
// million, n from 50 million to 1 billion).
func Table3(w io.Writer, cfg Config) error {
	cfg = cfg.fill()
	m := cfg.scaled(10_000)
	ns := []int{cfg.scaled(250_000), cfg.scaled(500_000), cfg.scaled(1_000_000)}
	tw := newTab(w)
	fmt.Fprintf(tw, "m=%d, scheme %v, E=10\t", m, alae.DefaultDNAScheme)
	for _, n := range ns {
		fmt.Fprintf(tw, "n=%d\t\t", n)
	}
	fmt.Fprintln(tw)
	fmt.Fprint(tw, "Approach\t")
	for range ns {
		fmt.Fprint(tw, "Time\tC\t")
	}
	fmt.Fprintln(tw)

	type cell struct {
		meas Measurement
	}
	cells := make(map[alae.Algorithm][]cell)
	for _, n := range ns {
		wl := DNAWorkload(n, m, cfg.NumQueries, cfg.Seed)
		ix := alae.NewIndex(wl.Text)
		for _, alg := range tableAlgorithms {
			meas := Measure(ix, wl, alae.SearchOptions{Parallelism: cfg.Parallelism, Algorithm: alg})
			if meas.Err != nil {
				return meas.Err
			}
			cells[alg] = append(cells[alg], cell{meas})
		}
	}
	for _, alg := range tableAlgorithms {
		fmt.Fprintf(tw, "%v\t", alg)
		for _, c := range cells[alg] {
			fmt.Fprintf(tw, "%s\t%d\t", fmtDur(c.meas.AvgTime), c.meas.Hits)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Table4 compares calculated entries and their weighted computation
// cost between ALAE (cost classes 1/2/3) and BWT-SW (all cost 3).
func Table4(w io.Writer, cfg Config) error {
	cfg = cfg.fill()
	n := cfg.scaled(1_000_000)
	ms := []int{cfg.scaled(1_000), cfg.scaled(10_000)}
	tw := newTab(w)
	fmt.Fprintf(tw, "n=%d, scheme %v, E=10\n", n, alae.DefaultDNAScheme)
	fmt.Fprint(tw, "m\tALAE entries\tALAE cost\tBWT-SW entries\tBWT-SW cost\tratio\n")
	for mi, m := range ms {
		wl := DNAWorkload(n, m, cfg.NumQueries, cfg.Seed+int64(mi))
		ix := alae.NewIndex(wl.Text)
		a := Measure(ix, wl, alae.SearchOptions{Parallelism: cfg.Parallelism, Algorithm: alae.ALAE})
		b := Measure(ix, wl, alae.SearchOptions{Parallelism: cfg.Parallelism, Algorithm: alae.BWTSW})
		if a.Err != nil {
			return a.Err
		}
		if b.Err != nil {
			return b.Err
		}
		ratio := float64(b.Stats.ComputationCost) / float64(max(a.Stats.ComputationCost, 1))
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%.1fx\n",
			m, a.Stats.CalculatedEntries, a.Stats.ComputationCost,
			b.Stats.CalculatedEntries, b.Stats.ComputationCost, ratio)
	}
	return tw.Flush()
}

// Table5 reports the reuse accounting for the two extreme schemes of
// the paper's Table 5 (hybrid engine).
func Table5(w io.Writer, cfg Config) error {
	cfg = cfg.fill()
	n := cfg.scaled(200_000)
	m := cfg.scaled(10_000)
	schemes := []align.Scheme{
		{Match: 1, Mismatch: -1, GapOpen: -5, GapExtend: -2},
		{Match: 1, Mismatch: -3, GapOpen: -2, GapExtend: -2},
		align.DefaultDNA,
	}
	wl := DNAWorkload(n, m, cfg.NumQueries, cfg.Seed)
	ix := alae.NewIndex(wl.Text)
	tw := newTab(w)
	fmt.Fprintf(tw, "n=%d, m=%d, E=10 (hybrid engine)\n", n, m)
	fmt.Fprint(tw, "Scheme\tReused\tAccessed\tCalculated\tReusing ratio\n")
	for _, s := range schemes {
		meas := Measure(ix, wl, alae.SearchOptions{Parallelism: cfg.Parallelism, Algorithm: alae.ALAEHybrid, Scheme: s})
		if meas.Err != nil {
			return meas.Err
		}
		ratio := float64(meas.Stats.ReusedEntries) / float64(max(meas.Stats.AccessedEntries, 1))
		fmt.Fprintf(tw, "%v\t%d\t%d\t%d\t%.1f%%\n",
			s, meas.Stats.ReusedEntries, meas.Stats.AccessedEntries,
			meas.Stats.CalculatedEntries, 100*ratio)
	}
	return tw.Flush()
}

// Fig7 sweeps the filtering ratio (Equation 5) and reusing ratio
// (Equation 6) over query length and text length.
func Fig7(w io.Writer, cfg Config) error {
	cfg = cfg.fill()
	tw := newTab(w)
	fmt.Fprintf(tw, "(a,b) ratios vs m at n=%d; (c,d) ratios vs n at m=%d\n",
		cfg.scaled(500_000), cfg.scaled(5_000))
	fmt.Fprint(tw, "sweep\tpoint\tfiltering\treusing\n")
	nFixed := cfg.scaled(500_000)
	for mi, m := range []int{cfg.scaled(1_000), cfg.scaled(5_000), cfg.scaled(20_000)} {
		wl := DNAWorkload(nFixed, m, cfg.NumQueries, cfg.Seed+int64(mi))
		ix := alae.NewIndex(wl.Text)
		f, r, err := ratios(ix, wl, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "m\t%d\t%.1f%%\t%.1f%%\n", m, 100*f, 100*r)
	}
	mFixed := cfg.scaled(5_000)
	for ni, n := range []int{cfg.scaled(200_000), cfg.scaled(500_000), cfg.scaled(1_000_000)} {
		wl := DNAWorkload(n, mFixed, cfg.NumQueries, cfg.Seed+10+int64(ni))
		ix := alae.NewIndex(wl.Text)
		f, r, err := ratios(ix, wl, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "n\t%d\t%.1f%%\t%.1f%%\n", n, 100*f, 100*r)
	}
	return tw.Flush()
}

// ratios measures the filtering ratio (ALAE-DFS vs BWT-SW) and the
// reusing ratio (hybrid engine) for one workload.
func ratios(ix *alae.Index, wl Workload, cfg Config) (filtering, reusing float64, err error) {
	a := Measure(ix, wl, alae.SearchOptions{Parallelism: cfg.Parallelism, Algorithm: alae.ALAE})
	if a.Err != nil {
		return 0, 0, a.Err
	}
	b := Measure(ix, wl, alae.SearchOptions{Parallelism: cfg.Parallelism, Algorithm: alae.BWTSW})
	if b.Err != nil {
		return 0, 0, b.Err
	}
	hyb := Measure(ix, wl, alae.SearchOptions{Parallelism: cfg.Parallelism, Algorithm: alae.ALAEHybrid})
	if hyb.Err != nil {
		return 0, 0, hyb.Err
	}
	filtering = FilteringRatio(a.Stats.CalculatedEntries, b.Stats.CalculatedEntries)
	reusing = float64(hyb.Stats.ReusedEntries) / float64(max(hyb.Stats.AccessedEntries, 1))
	return filtering, reusing, nil
}

// Fig8 varies the E-value; the paper's observation is that ALAE is
// barely sensitive to it.
func Fig8(w io.Writer, cfg Config) error {
	cfg = cfg.fill()
	n := cfg.scaled(500_000)
	tw := newTab(w)
	fmt.Fprintf(tw, "n=%d, scheme %v\n", n, alae.DefaultDNAScheme)
	fmt.Fprint(tw, "m\tE=1e-15\tE=1e-5\tE=10\n")
	for mi, m := range []int{cfg.scaled(1_000), cfg.scaled(10_000)} {
		wl := DNAWorkload(n, m, cfg.NumQueries, cfg.Seed+int64(mi))
		ix := alae.NewIndex(wl.Text)
		fmt.Fprintf(tw, "%d\t", m)
		for _, ev := range []float64{1e-15, 1e-5, 10} {
			meas := Measure(ix, wl, alae.SearchOptions{Parallelism: cfg.Parallelism, Algorithm: alae.ALAE, EValue: ev})
			if meas.Err != nil {
				return meas.Err
			}
			fmt.Fprintf(tw, "%s\t", fmtDur(meas.AvgTime))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Fig9 compares the three algorithms across the four representative
// scoring schemes; BWT-SW is skipped on ⟨1,−1,−5,−2⟩ (its |sb| ≥
// 3|sa| restriction), exactly as in the paper.
func Fig9(w io.Writer, cfg Config) error {
	cfg = cfg.fill()
	n := cfg.scaled(200_000)
	m := cfg.scaled(5_000)
	wl := DNAWorkload(n, m, cfg.NumQueries, cfg.Seed)
	ix := alae.NewIndex(wl.Text)
	tw := newTab(w)
	fmt.Fprintf(tw, "n=%d, m=%d, E=10\n", n, m)
	fmt.Fprint(tw, "Scheme\tALAE\tBLAST\tBWT-SW\n")
	for _, s := range align.Fig9Schemes {
		fmt.Fprintf(tw, "%v\t", s)
		for _, alg := range []alae.Algorithm{alae.ALAE, alae.BLAST, alae.BWTSW} {
			if alg == alae.BWTSW && !s.BWTSWCompatible() {
				fmt.Fprint(tw, "n/a\t")
				continue
			}
			meas := Measure(ix, wl, alae.SearchOptions{Parallelism: cfg.Parallelism, Algorithm: alg, Scheme: s})
			if meas.Err != nil {
				return meas.Err
			}
			fmt.Fprintf(tw, "%s\t", fmtDur(meas.AvgTime))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Fig10 reports the filtering and reusing ratios per scheme.
func Fig10(w io.Writer, cfg Config) error {
	cfg = cfg.fill()
	n := cfg.scaled(200_000)
	m := cfg.scaled(5_000)
	wl := DNAWorkload(n, m, cfg.NumQueries, cfg.Seed)
	ix := alae.NewIndex(wl.Text)
	tw := newTab(w)
	fmt.Fprintf(tw, "n=%d, m=%d, E=10\n", n, m)
	fmt.Fprint(tw, "Scheme\tfiltering\treusing\n")
	for _, s := range align.Fig9Schemes {
		if !s.BWTSWCompatible() {
			// The filtering ratio needs the BWT-SW entry count; the
			// paper measures it against its own BWT-SW runs, which are
			// unavailable for this scheme — report reuse only.
			hyb := Measure(ix, wl, alae.SearchOptions{Parallelism: cfg.Parallelism, Algorithm: alae.ALAEHybrid, Scheme: s})
			if hyb.Err != nil {
				return hyb.Err
			}
			r := float64(hyb.Stats.ReusedEntries) / float64(max(hyb.Stats.AccessedEntries, 1))
			fmt.Fprintf(tw, "%v\tn/a\t%.1f%%\n", s, 100*r)
			continue
		}
		a := Measure(ix, wl, alae.SearchOptions{Parallelism: cfg.Parallelism, Algorithm: alae.ALAE, Scheme: s})
		b := Measure(ix, wl, alae.SearchOptions{Parallelism: cfg.Parallelism, Algorithm: alae.BWTSW, Scheme: s})
		hyb := Measure(ix, wl, alae.SearchOptions{Parallelism: cfg.Parallelism, Algorithm: alae.ALAEHybrid, Scheme: s})
		for _, meas := range []Measurement{a, b, hyb} {
			if meas.Err != nil {
				return meas.Err
			}
		}
		f := FilteringRatio(a.Stats.CalculatedEntries, b.Stats.CalculatedEntries)
		r := float64(hyb.Stats.ReusedEntries) / float64(max(hyb.Stats.AccessedEntries, 1))
		fmt.Fprintf(tw, "%v\t%.1f%%\t%.1f%%\n", s, 100*f, 100*r)
	}
	return tw.Flush()
}

// Fig11 reports index sizes: the BWT index and the dominate index,
// for DNA and protein texts of growing length.
func Fig11(w io.Writer, cfg Config) error {
	cfg = cfg.fill()
	tw := newTab(w)
	fmt.Fprint(tw, "kind\tn\tBWT index\tBWT packed\tdominate index\n")
	for ni, n := range []int{cfg.scaled(250_000), cfg.scaled(500_000), cfg.scaled(1_000_000)} {
		wl := DNAWorkload(n, 64, 1, cfg.Seed+int64(ni))
		ix := alae.NewIndex(wl.Text)
		ds, err := ix.DominationIndexSize(alae.DefaultDNAScheme)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "DNA\t%d\t%d\t%d\t%d\n", n, ix.SizeBytes(), ix.PackedSizeBytes(), ds)
	}
	for ni, n := range []int{cfg.scaled(100_000), cfg.scaled(200_000), cfg.scaled(400_000)} {
		wl := ProteinWorkload(n, 64, 1, cfg.Seed+20+int64(ni))
		ix := alae.NewIndex(wl.Text)
		ds, err := ix.DominationIndexSize(alae.DefaultProteinScheme)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "protein\t%d\t%d\t%d\t%d\n", n, ix.SizeBytes(), ix.PackedSizeBytes(), ds)
	}
	return tw.Flush()
}

// Bounds prints the §6 closed-form bounds: the default scheme, the
// extremes over the BLAST grid for DNA and protein, and the BWT-SW
// comparison constant.
func Bounds(w io.Writer, _ Config) error {
	tw := newTab(w)
	b, err := analysis.Compute(align.DefaultDNA, 4)
	if err != nil {
		return err
	}
	fmt.Fprintf(tw, "default DNA scheme\t%v\n", b)
	fmt.Fprintf(tw, "BWT-SW (Lam et al.)\t%.0f·mn^%.3f\n",
		analysis.BWTSWBound.Coefficient, analysis.BWTSWBound.Exponent)
	for _, sigma := range []int{4, 20} {
		lo, hi := analysis.Range(sigma)
		kind := "DNA"
		if sigma == 20 {
			kind = "protein"
		}
		fmt.Fprintf(tw, "%s best\t%v\n", kind, lo)
		fmt.Fprintf(tw, "%s worst\t%v\n", kind, hi)
	}
	return tw.Flush()
}

// Growth empirically validates the §6 analysis: on random (homology-
// free) DNA, ALAE's calculated entries must stay below the analytic
// upper bound coefficient·m·n^exponent at every text length, and the
// measured growth with n must be clearly sublinear. This check is
// stronger than anything the paper prints: it ties the implementation
// counters to the theory.
func Growth(w io.Writer, cfg Config) error {
	cfg = cfg.fill()
	bound, err := analysis.Compute(align.DefaultDNA, 4)
	if err != nil {
		return err
	}
	m := cfg.scaled(2_000)
	tw := newTab(w)
	fmt.Fprintf(tw, "random DNA, random queries, m=%d, scheme %v, E=10\n", m, align.DefaultDNA)
	fmt.Fprintf(tw, "bound: %v\n", bound)
	fmt.Fprint(tw, "n\tmeasured entries\tanalytic bound\tratio\n")
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, n := range []int{cfg.scaled(100_000), cfg.scaled(200_000), cfg.scaled(400_000)} {
		text := seq.RandomSeq(seq.DNA, n, nil, rng)
		queries := make([][]byte, cfg.NumQueries)
		for i := range queries {
			queries[i] = seq.RandomSeq(seq.DNA, m, nil, rng)
		}
		ix := alae.NewIndex(text)
		wl := Workload{Text: text, Queries: queries, Alphabet: seq.DNA}
		meas := Measure(ix, wl, alae.SearchOptions{Parallelism: cfg.Parallelism, Algorithm: alae.ALAE})
		if meas.Err != nil {
			return meas.Err
		}
		perQuery := float64(meas.Stats.CalculatedEntries) / float64(len(queries))
		analytic := bound.Entries(m, n)
		fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%.3f\n", n, perQuery, analytic, perQuery/analytic)
	}
	return tw.Flush()
}
