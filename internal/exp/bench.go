package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro"
	"repro/internal/align"
	"repro/internal/core"
)

// Machine-readable benchmarking for the perf trajectory (BENCH_*.json).
// The CI and release tooling need benchmark numbers a script can diff,
// which `go test -bench` text output is not; RunBenchJSON re-times the
// headline workload — the Table 2 point (n=200k, m=5000) that
// BenchmarkParallelSearch uses — and emits JSON.

// BenchResult is one timed configuration.
type BenchResult struct {
	Name    string  `json:"name"`
	Reps    int     `json:"reps"`
	NsPerOp int64   `json:"ns_per_op"` // best wall-clock over reps (one op = the whole workload)
	MsPerOp float64 `json:"ms_per_op"`
	Entries int64   `json:"entries"` // CalculatedEntries, must be invariant across engines/runs
	Hits    int     `json:"hits"`    // total result count, must be invariant across engines/runs
}

// BenchSuite is the JSON document RunBenchJSON emits.
type BenchSuite struct {
	Benchmark string        `json:"benchmark"`
	N         int           `json:"n"`
	M         int           `json:"m"`
	Queries   int           `json:"queries"`
	Seed      int64         `json:"seed"`
	GoVersion string        `json:"go_version"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Results   []BenchResult `json:"results"`
}

// RunBenchJSON times the Table 2 workload point sequentially (p=1) and
// at full parallelism (p=max), then the repeated-query serving path —
// one session-backed SearchAll pass over the same queries, cache-cold
// (fresh index per rep) and cache-hot (shared index, warm gram cache)
// — reps repetitions each keeping the best wall-clock, and writes an
// indented BenchSuite to w. Scale grows the workload like the other
// experiments; index builds are excluded from timing. Entries and hits
// must be invariant across every configuration; the cold/hot pair is
// the measured speedup of the cross-query gram cache and session reuse
// on a repeated workload.
func RunBenchJSON(w io.Writer, cfg Config, reps int) error {
	if reps <= 0 {
		reps = 5
	}
	n := int(200_000 * cfg.Scale)
	m := int(5_000 * cfg.Scale)
	const queries = 2
	wl := DNAWorkload(n, m, queries, cfg.Seed)
	ix := alae.NewIndex(wl.Text)
	suite := BenchSuite{
		Benchmark: "ParallelSearch (Table 2 point)",
		N:         n,
		M:         m,
		Queries:   queries,
		Seed:      cfg.Seed,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, tc := range []struct {
		name string
		p    int
	}{{"p=1", 1}, {"p=max", 0}} {
		opts := alae.SearchOptions{Algorithm: alae.ALAE, Parallelism: tc.p}
		// Warm-up builds the lazy domination index and engine caches.
		warm := Measure(ix, wl, opts)
		if warm.Err != nil {
			return warm.Err
		}
		best := BenchResult{Name: tc.name, Reps: reps}
		for r := 0; r < reps; r++ {
			start := time.Now()
			meas := Measure(ix, wl, opts)
			elapsed := time.Since(start)
			if meas.Err != nil {
				return meas.Err
			}
			if best.NsPerOp == 0 || elapsed.Nanoseconds() < best.NsPerOp {
				best.NsPerOp = elapsed.Nanoseconds()
			}
			best.Entries = meas.Stats.CalculatedEntries
			best.Hits = meas.Hits
		}
		best.MsPerOp = float64(best.NsPerOp) / 1e6
		suite.Results = append(suite.Results, best)
	}

	// The repeated-query serving points: SearchAll with one worker is
	// one Session re-armed across the workload. Cold runs against a
	// fresh index each rep (empty gram cache, cold collector tables);
	// hot reuses the warm index. Both must reproduce the one-shot
	// configurations' entries and hits exactly — the caches and session
	// reuse may move work, never change it.
	opts := alae.SearchOptions{Algorithm: alae.ALAE, Parallelism: 1}
	repeatPoint := func(name string, index func() (*alae.Index, error)) error {
		best := BenchResult{Name: name, Reps: reps}
		for r := 0; r < reps; r++ {
			target, err := index()
			if err != nil {
				return err
			}
			start := time.Now()
			results, err := target.SearchAll(wl.Queries, opts, 1)
			elapsed := time.Since(start)
			if err != nil {
				return err
			}
			best.Entries, best.Hits = 0, 0
			for _, res := range results {
				best.Entries += res.Stats.CalculatedEntries
				best.Hits += len(res.Hits)
			}
			if best.NsPerOp == 0 || elapsed.Nanoseconds() < best.NsPerOp {
				best.NsPerOp = elapsed.Nanoseconds()
			}
		}
		if ref := suite.Results[0]; best.Entries != ref.Entries || best.Hits != ref.Hits {
			return fmt.Errorf("exp: %q produced entries=%d hits=%d, want %d/%d (serving path is not exact)",
				name, best.Entries, best.Hits, ref.Entries, ref.Hits)
		}
		best.MsPerOp = float64(best.NsPerOp) / 1e6
		suite.Results = append(suite.Results, best)
		return nil
	}
	if err := repeatPoint("p=1 repeat-cold", func() (*alae.Index, error) {
		fresh := alae.NewIndex(wl.Text)
		_, err := fresh.DominationIndexSize(alae.DefaultDNAScheme)
		return fresh, err
	}); err != nil {
		return err
	}
	if _, err := ix.SearchAll(wl.Queries, opts, 1); err != nil { // ensure warm
		return err
	}
	if err := repeatPoint("p=1 repeat-hot", func() (*alae.Index, error) { return ix, nil }); err != nil {
		return err
	}

	// Protein gram-resolution points: the resolution stage in
	// isolation, over the same scale (n=200k text, m=5000 query) as the
	// BenchmarkGramResolution harness. "walk" resolves uncached through
	// the rank core every time (the number the plane-rank layout
	// moves); "cached" runs against a warm cross-query gram cache.
	// Entries carries the ForksConsidered count and Hits the resolved
	// family count — both must be invariant across rank layouts and
	// cache states, which is this point's exactness gate.
	pwl := ProteinWorkload(n, m, 1, cfg.Seed)
	pQuery := pwl.Queries[0]
	const resolvesPerRep = 32
	for _, tc := range []struct {
		name string
		opts core.Options
	}{
		{"protein-resolve walk", core.Options{GramCacheSize: -1}},
		{"protein-resolve cached", core.Options{}},
	} {
		e := core.New(pwl.Text, tc.opts)
		ses := e.AcquireSession()
		best := BenchResult{Name: tc.name, Reps: reps}
		if _, _, err := ses.ResolveGrams(pQuery, align.DefaultProtein); err != nil {
			return err // warm the cache and the session buffers
		}
		for r := 0; r < reps; r++ {
			start := time.Now()
			var fams int
			var st core.Stats
			var err error
			for i := 0; i < resolvesPerRep; i++ {
				fams, st, err = ses.ResolveGrams(pQuery, align.DefaultProtein)
				if err != nil {
					return err
				}
			}
			elapsed := time.Since(start).Nanoseconds() / resolvesPerRep
			if best.NsPerOp == 0 || elapsed < best.NsPerOp {
				best.NsPerOp = elapsed
			}
			best.Entries = st.ForksConsidered
			best.Hits = fams
		}
		ses.Release()
		best.MsPerOp = float64(best.NsPerOp) / 1e6
		if prev := len(suite.Results) - 1; suite.Results[prev].Name == "protein-resolve walk" &&
			(suite.Results[prev].Entries != best.Entries || suite.Results[prev].Hits != best.Hits) {
			return fmt.Errorf("exp: protein resolution diverged between walk and cached (%d/%d vs %d/%d)",
				suite.Results[prev].Entries, suite.Results[prev].Hits, best.Entries, best.Hits)
		}
		suite.Results = append(suite.Results, best)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(suite)
}
