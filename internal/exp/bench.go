package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro"
)

// Machine-readable benchmarking for the perf trajectory (BENCH_*.json).
// The CI and release tooling need benchmark numbers a script can diff,
// which `go test -bench` text output is not; RunBenchJSON re-times the
// headline workload — the Table 2 point (n=200k, m=5000) that
// BenchmarkParallelSearch uses — and emits JSON.

// BenchResult is one timed configuration.
type BenchResult struct {
	Name    string  `json:"name"`
	Reps    int     `json:"reps"`
	NsPerOp int64   `json:"ns_per_op"` // best wall-clock over reps (one op = the whole workload)
	MsPerOp float64 `json:"ms_per_op"`
	Entries int64   `json:"entries"` // CalculatedEntries, must be invariant across engines/runs
	Hits    int     `json:"hits"`    // total result count, must be invariant across engines/runs
}

// BenchSuite is the JSON document RunBenchJSON emits.
type BenchSuite struct {
	Benchmark string        `json:"benchmark"`
	N         int           `json:"n"`
	M         int           `json:"m"`
	Queries   int           `json:"queries"`
	Seed      int64         `json:"seed"`
	GoVersion string        `json:"go_version"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Results   []BenchResult `json:"results"`
}

// RunBenchJSON times the Table 2 workload point sequentially (p=1) and
// at full parallelism (p=max), then the repeated-query serving path —
// one session-backed SearchAll pass over the same queries, cache-cold
// (fresh index per rep) and cache-hot (shared index, warm gram cache)
// — reps repetitions each keeping the best wall-clock, and writes an
// indented BenchSuite to w. Scale grows the workload like the other
// experiments; index builds are excluded from timing. Entries and hits
// must be invariant across every configuration; the cold/hot pair is
// the measured speedup of the cross-query gram cache and session reuse
// on a repeated workload.
func RunBenchJSON(w io.Writer, cfg Config, reps int) error {
	if reps <= 0 {
		reps = 5
	}
	n := int(200_000 * cfg.Scale)
	m := int(5_000 * cfg.Scale)
	const queries = 2
	wl := DNAWorkload(n, m, queries, cfg.Seed)
	ix := alae.NewIndex(wl.Text)
	suite := BenchSuite{
		Benchmark: "ParallelSearch (Table 2 point)",
		N:         n,
		M:         m,
		Queries:   queries,
		Seed:      cfg.Seed,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, tc := range []struct {
		name string
		p    int
	}{{"p=1", 1}, {"p=max", 0}} {
		opts := alae.SearchOptions{Algorithm: alae.ALAE, Parallelism: tc.p}
		// Warm-up builds the lazy domination index and engine caches.
		warm := Measure(ix, wl, opts)
		if warm.Err != nil {
			return warm.Err
		}
		best := BenchResult{Name: tc.name, Reps: reps}
		for r := 0; r < reps; r++ {
			start := time.Now()
			meas := Measure(ix, wl, opts)
			elapsed := time.Since(start)
			if meas.Err != nil {
				return meas.Err
			}
			if best.NsPerOp == 0 || elapsed.Nanoseconds() < best.NsPerOp {
				best.NsPerOp = elapsed.Nanoseconds()
			}
			best.Entries = meas.Stats.CalculatedEntries
			best.Hits = meas.Hits
		}
		best.MsPerOp = float64(best.NsPerOp) / 1e6
		suite.Results = append(suite.Results, best)
	}

	// The repeated-query serving points: SearchAll with one worker is
	// one Session re-armed across the workload. Cold runs against a
	// fresh index each rep (empty gram cache, cold collector tables);
	// hot reuses the warm index. Both must reproduce the one-shot
	// configurations' entries and hits exactly — the caches and session
	// reuse may move work, never change it.
	opts := alae.SearchOptions{Algorithm: alae.ALAE, Parallelism: 1}
	repeatPoint := func(name string, index func() (*alae.Index, error)) error {
		best := BenchResult{Name: name, Reps: reps}
		for r := 0; r < reps; r++ {
			target, err := index()
			if err != nil {
				return err
			}
			start := time.Now()
			results, err := target.SearchAll(wl.Queries, opts, 1)
			elapsed := time.Since(start)
			if err != nil {
				return err
			}
			best.Entries, best.Hits = 0, 0
			for _, res := range results {
				best.Entries += res.Stats.CalculatedEntries
				best.Hits += len(res.Hits)
			}
			if best.NsPerOp == 0 || elapsed.Nanoseconds() < best.NsPerOp {
				best.NsPerOp = elapsed.Nanoseconds()
			}
		}
		if ref := suite.Results[0]; best.Entries != ref.Entries || best.Hits != ref.Hits {
			return fmt.Errorf("exp: %q produced entries=%d hits=%d, want %d/%d (serving path is not exact)",
				name, best.Entries, best.Hits, ref.Entries, ref.Hits)
		}
		best.MsPerOp = float64(best.NsPerOp) / 1e6
		suite.Results = append(suite.Results, best)
		return nil
	}
	if err := repeatPoint("p=1 repeat-cold", func() (*alae.Index, error) {
		fresh := alae.NewIndex(wl.Text)
		_, err := fresh.DominationIndexSize(alae.DefaultDNAScheme)
		return fresh, err
	}); err != nil {
		return err
	}
	if _, err := ix.SearchAll(wl.Queries, opts, 1); err != nil { // ensure warm
		return err
	}
	if err := repeatPoint("p=1 repeat-hot", func() (*alae.Index, error) { return ix, nil }); err != nil {
		return err
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(suite)
}
