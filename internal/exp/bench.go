package exp

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"repro"
)

// Machine-readable benchmarking for the perf trajectory (BENCH_*.json).
// The CI and release tooling need benchmark numbers a script can diff,
// which `go test -bench` text output is not; RunBenchJSON re-times the
// headline workload — the Table 2 point (n=200k, m=5000) that
// BenchmarkParallelSearch uses — and emits JSON.

// BenchResult is one timed configuration.
type BenchResult struct {
	Name    string  `json:"name"`
	Reps    int     `json:"reps"`
	NsPerOp int64   `json:"ns_per_op"` // best wall-clock over reps (one op = the whole workload)
	MsPerOp float64 `json:"ms_per_op"`
	Entries int64   `json:"entries"` // CalculatedEntries, must be invariant across engines/runs
	Hits    int     `json:"hits"`    // total result count, must be invariant across engines/runs
}

// BenchSuite is the JSON document RunBenchJSON emits.
type BenchSuite struct {
	Benchmark string        `json:"benchmark"`
	N         int           `json:"n"`
	M         int           `json:"m"`
	Queries   int           `json:"queries"`
	Seed      int64         `json:"seed"`
	GoVersion string        `json:"go_version"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Results   []BenchResult `json:"results"`
}

// RunBenchJSON times the Table 2 workload point sequentially (p=1) and
// at full parallelism (p=max), reps repetitions each keeping the best
// wall-clock, and writes an indented BenchSuite to w. Scale grows the
// workload like the other experiments; the index build is excluded
// from timing.
func RunBenchJSON(w io.Writer, cfg Config, reps int) error {
	if reps <= 0 {
		reps = 5
	}
	n := int(200_000 * cfg.Scale)
	m := int(5_000 * cfg.Scale)
	const queries = 2
	wl := DNAWorkload(n, m, queries, cfg.Seed)
	ix := alae.NewIndex(wl.Text)
	suite := BenchSuite{
		Benchmark: "ParallelSearch (Table 2 point)",
		N:         n,
		M:         m,
		Queries:   queries,
		Seed:      cfg.Seed,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, tc := range []struct {
		name string
		p    int
	}{{"p=1", 1}, {"p=max", 0}} {
		opts := alae.SearchOptions{Algorithm: alae.ALAE, Parallelism: tc.p}
		// Warm-up builds the lazy domination index and engine caches.
		warm := Measure(ix, wl, opts)
		if warm.Err != nil {
			return warm.Err
		}
		best := BenchResult{Name: tc.name, Reps: reps}
		for r := 0; r < reps; r++ {
			start := time.Now()
			meas := Measure(ix, wl, opts)
			elapsed := time.Since(start)
			if meas.Err != nil {
				return meas.Err
			}
			if best.NsPerOp == 0 || elapsed.Nanoseconds() < best.NsPerOp {
				best.NsPerOp = elapsed.Nanoseconds()
			}
			best.Entries = meas.Stats.CalculatedEntries
			best.Hits = meas.Hits
		}
		best.MsPerOp = float64(best.NsPerOp) / 1e6
		suite.Results = append(suite.Results, best)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(suite)
}
