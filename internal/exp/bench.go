package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro"
	"repro/internal/align"
	"repro/internal/core"
)

// Machine-readable benchmarking for the perf trajectory (BENCH_*.json).
// The CI and release tooling need benchmark numbers a script can diff,
// which `go test -bench` text output is not; RunBenchJSON re-times the
// headline workload — the Table 2 point (n=200k, m=5000) that
// BenchmarkParallelSearch uses — and emits JSON.

// BenchResult is one timed configuration.
type BenchResult struct {
	Name    string  `json:"name"`
	Reps    int     `json:"reps"`
	NsPerOp int64   `json:"ns_per_op"` // best wall-clock over reps (one op = the whole workload)
	MsPerOp float64 `json:"ms_per_op"`
	Entries int64   `json:"entries"` // CalculatedEntries, must be invariant across engines/runs
	Hits    int     `json:"hits"`    // total result count, must be invariant across engines/runs

	// Emission-path counters, recorded on the points that exercise the
	// batched emit path. All are scheduling-invariant (the dominance
	// table re-arms per fork family), so the p=1 and p=max emission
	// points must report identical values. Copied is the hybrid
	// vertical phase's watermark skip count (zero for the DFS engine).
	Emitted    int64 `json:"emitted,omitempty"`
	Suppressed int64 `json:"suppressed,omitempty"`
	Copied     int64 `json:"copied,omitempty"`
}

// BenchSuite is the JSON document RunBenchJSON emits.
type BenchSuite struct {
	Benchmark string        `json:"benchmark"`
	N         int           `json:"n"`
	M         int           `json:"m"`
	Queries   int           `json:"queries"`
	Seed      int64         `json:"seed"`
	GoVersion string        `json:"go_version"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Results   []BenchResult `json:"results"`
}

// RunBenchJSON times the Table 2 workload point sequentially (p=1) and
// at full parallelism (p=max), then the repeated-query serving path —
// one session-backed SearchAll pass over the same queries, cache-cold
// (fresh index per rep) and cache-hot (shared index, warm gram cache)
// — reps repetitions each keeping the best wall-clock, and writes an
// indented BenchSuite to w. Scale grows the workload like the other
// experiments; index builds are excluded from timing. Entries and hits
// must be invariant across every configuration; the cold/hot pair is
// the measured speedup of the cross-query gram cache and session reuse
// on a repeated workload.
func RunBenchJSON(w io.Writer, cfg Config, reps int) error {
	if reps <= 0 {
		reps = 5
	}
	n := int(200_000 * cfg.Scale)
	m := int(5_000 * cfg.Scale)
	const queries = 2
	wl := DNAWorkload(n, m, queries, cfg.Seed)
	ix := alae.NewIndex(wl.Text)
	suite := BenchSuite{
		Benchmark: "ParallelSearch (Table 2 point)",
		N:         n,
		M:         m,
		Queries:   queries,
		Seed:      cfg.Seed,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, tc := range []struct {
		name string
		p    int
	}{{"p=1", 1}, {"p=max", 0}} {
		opts := alae.SearchOptions{Algorithm: alae.ALAE, Parallelism: tc.p}
		// Warm-up builds the lazy domination index and engine caches.
		warm := Measure(ix, wl, opts)
		if warm.Err != nil {
			return warm.Err
		}
		best := BenchResult{Name: tc.name, Reps: reps}
		for r := 0; r < reps; r++ {
			start := time.Now()
			meas := Measure(ix, wl, opts)
			elapsed := time.Since(start)
			if meas.Err != nil {
				return meas.Err
			}
			if best.NsPerOp == 0 || elapsed.Nanoseconds() < best.NsPerOp {
				best.NsPerOp = elapsed.Nanoseconds()
			}
			best.Entries = meas.Stats.CalculatedEntries
			best.Hits = meas.Hits
		}
		best.MsPerOp = float64(best.NsPerOp) / 1e6
		suite.Results = append(suite.Results, best)
	}

	// The repeated-query serving points: SearchAll with one worker is
	// one Session re-armed across the workload. Cold runs against a
	// fresh index each rep (empty gram cache, cold collector tables);
	// hot reuses the warm index. Both must reproduce the one-shot
	// configurations' entries and hits exactly — the caches and session
	// reuse may move work, never change it.
	opts := alae.SearchOptions{Algorithm: alae.ALAE, Parallelism: 1}
	repeatPoint := func(name string, index func() (*alae.Index, error)) error {
		best := BenchResult{Name: name, Reps: reps}
		for r := 0; r < reps; r++ {
			target, err := index()
			if err != nil {
				return err
			}
			start := time.Now()
			results, err := target.SearchAll(wl.Queries, opts, 1)
			elapsed := time.Since(start)
			if err != nil {
				return err
			}
			best.Entries, best.Hits = 0, 0
			for _, res := range results {
				best.Entries += res.Stats.CalculatedEntries
				best.Hits += len(res.Hits)
			}
			if best.NsPerOp == 0 || elapsed.Nanoseconds() < best.NsPerOp {
				best.NsPerOp = elapsed.Nanoseconds()
			}
		}
		if ref := suite.Results[0]; best.Entries != ref.Entries || best.Hits != ref.Hits {
			return fmt.Errorf("exp: %q produced entries=%d hits=%d, want %d/%d (serving path is not exact)",
				name, best.Entries, best.Hits, ref.Entries, ref.Hits)
		}
		best.MsPerOp = float64(best.NsPerOp) / 1e6
		suite.Results = append(suite.Results, best)
		return nil
	}
	if err := repeatPoint("p=1 repeat-cold", func() (*alae.Index, error) {
		fresh := alae.NewIndex(wl.Text)
		_, err := fresh.DominationIndexSize(alae.DefaultDNAScheme)
		return fresh, err
	}); err != nil {
		return err
	}
	if _, err := ix.SearchAll(wl.Queries, opts, 1); err != nil { // ensure warm
		return err
	}
	if err := repeatPoint("p=1 repeat-hot", func() (*alae.Index, error) { return ix, nil }); err != nil {
		return err
	}

	// Protein gram-resolution points: the resolution stage in
	// isolation, over the same scale (n=200k text, m=5000 query) as the
	// BenchmarkGramResolution harness. "walk" resolves uncached through
	// the rank core every time (the number the plane-rank layout
	// moves); "cached" runs against a warm cross-query gram cache.
	// Entries carries the ForksConsidered count and Hits the resolved
	// family count — both must be invariant across rank layouts and
	// cache states, which is this point's exactness gate.
	pwl := ProteinWorkload(n, m, 1, cfg.Seed)
	pQuery := pwl.Queries[0]
	const resolvesPerRep = 32
	for _, tc := range []struct {
		name string
		opts core.Options
	}{
		{"protein-resolve walk", core.Options{GramCacheSize: -1}},
		{"protein-resolve cached", core.Options{}},
	} {
		e := core.New(pwl.Text, tc.opts)
		ses := e.AcquireSession()
		best := BenchResult{Name: tc.name, Reps: reps}
		if _, _, err := ses.ResolveGrams(pQuery, align.DefaultProtein); err != nil {
			return err // warm the cache and the session buffers
		}
		for r := 0; r < reps; r++ {
			start := time.Now()
			var fams int
			var st core.Stats
			var err error
			for i := 0; i < resolvesPerRep; i++ {
				fams, st, err = ses.ResolveGrams(pQuery, align.DefaultProtein)
				if err != nil {
					return err
				}
			}
			elapsed := time.Since(start).Nanoseconds() / resolvesPerRep
			if best.NsPerOp == 0 || elapsed < best.NsPerOp {
				best.NsPerOp = elapsed
			}
			best.Entries = st.ForksConsidered
			best.Hits = fams
		}
		ses.Release()
		best.MsPerOp = float64(best.NsPerOp) / 1e6
		if prev := len(suite.Results) - 1; suite.Results[prev].Name == "protein-resolve walk" &&
			(suite.Results[prev].Entries != best.Entries || suite.Results[prev].Hits != best.Hits) {
			return fmt.Errorf("exp: protein resolution diverged between walk and cached (%d/%d vs %d/%d)",
				suite.Results[prev].Entries, suite.Results[prev].Hits, best.Entries, best.Hits)
		}
		suite.Results = append(suite.Results, best)
	}

	// Store k-scaling points: the §2.2 serving layer over the same
	// Table 2 workload. Since the shared-index scatter, K is a lane
	// count over ONE monolithic index per generation — the fork
	// families are resolved once and cut into K cost-balanced slices —
	// so every K serves the SAME store text and must reproduce the p=1
	// point's entries AND hits byte-exactly. All three points are
	// gated on both (the old text-partitioned scatter paid ~1.7×
	// entries at K=4; these gates pin that inflation at exactly 1.0×),
	// and the wall-clock column is the k-scaling curve.
	storeOpts := alae.SearchOptions{Algorithm: alae.ALAE, Parallelism: 1}
	measureStore := func(st *alae.Store) (entries int64, hits int, err error) {
		results, err := st.SearchAll(wl.Queries, storeOpts, 1)
		if err != nil {
			return 0, 0, err
		}
		for _, res := range results {
			entries += res.Stats.CalculatedEntries
			hits += len(res.Hits)
		}
		return entries, hits, nil
	}
	storePoint := func(name string, st *alae.Store, wantEntries int64, wantHits int) error {
		if _, _, err := measureStore(st); err != nil { // warm sessions + lazy structures
			return err
		}
		best := BenchResult{Name: name, Reps: reps}
		for r := 0; r < reps; r++ {
			start := time.Now()
			entries, hits, err := measureStore(st)
			elapsed := time.Since(start)
			if err != nil {
				return err
			}
			best.Entries, best.Hits = entries, hits
			if best.NsPerOp == 0 || elapsed.Nanoseconds() < best.NsPerOp {
				best.NsPerOp = elapsed.Nanoseconds()
			}
		}
		if (wantEntries >= 0 && best.Entries != wantEntries) || best.Hits != wantHits {
			return fmt.Errorf("exp: %q produced entries=%d hits=%d, want %d/%d (sharded serving is not exact)",
				name, best.Entries, best.Hits, wantEntries, wantHits)
		}
		best.MsPerOp = float64(best.NsPerOp) / 1e6
		suite.Results = append(suite.Results, best)
		return nil
	}
	single := []alae.SeqRecord{{Name: "all", Seq: wl.Text}}
	for _, k := range []int{1, 2, 4} {
		kst, err := alae.NewStore(single, alae.StoreOptions{Shards: k, QueryCacheSize: -1})
		if err != nil {
			return err
		}
		name := fmt.Sprintf("store k=%d SearchAll", k)
		if err := storePoint(name, kst, suite.Results[0].Entries, suite.Results[0].Hits); err != nil {
			return err
		}
	}
	chunks := chunkRecords(wl.Text, 8)
	k4c, err := alae.NewStore(chunks, alae.StoreOptions{Shards: 4, QueryCacheSize: -1})
	if err != nil {
		return err
	}

	// The query-cache points: one query repeated. Cold recomputes the
	// scatter-gather through warm sessions every time (k4c's cache is
	// disabled); hot answers from the result cache — the O(1)
	// exact-repeat path. The cached result carries the stats of its
	// original computation, so entries/hits are the invariance gate
	// here too; the cold/hot ratio is the measured cache speedup.
	rq := wl.Queries[0]
	hotStore, err := alae.NewStore(chunks, alae.StoreOptions{Shards: 4})
	if err != nil {
		return err
	}
	repeatStorePoint := func(name string, st *alae.Store, searchesPerRep int) (BenchResult, error) {
		best := BenchResult{Name: name, Reps: reps}
		if _, err := st.Search(rq, storeOpts); err != nil { // warm sessions (and cache, when enabled)
			return best, err
		}
		for r := 0; r < reps; r++ {
			start := time.Now()
			var res *alae.StoreResult
			for i := 0; i < searchesPerRep; i++ {
				var err error
				if res, err = st.Search(rq, storeOpts); err != nil {
					return best, err
				}
			}
			elapsed := time.Since(start).Nanoseconds() / int64(searchesPerRep)
			if best.NsPerOp == 0 || elapsed < best.NsPerOp {
				best.NsPerOp = elapsed
			}
			best.Entries = res.Stats.CalculatedEntries
			best.Hits = len(res.Hits)
		}
		best.MsPerOp = float64(best.NsPerOp) / 1e6
		suite.Results = append(suite.Results, best)
		return best, nil
	}
	coldRes, err := repeatStorePoint("store repeat-cold", k4c, 1)
	if err != nil {
		return err
	}
	hotRes, err := repeatStorePoint("store repeat-hot", hotStore, 64)
	if err != nil {
		return err
	}
	if hotRes.Entries != coldRes.Entries || hotRes.Hits != coldRes.Hits {
		return fmt.Errorf("exp: query cache changed the answer (entries %d/%d, hits %d/%d)",
			hotRes.Entries, coldRes.Entries, hotRes.Hits, coldRes.Hits)
	}

	// Emission point: the repeat-dense homologous protein workload the
	// emit-path overhaul targets (ProteinEmissionWorkload). Wide
	// surviving bands fanning out over many near-copy occurrences put
	// the collector, not the rank core, on the critical path (~80%
	// of samples in Collector.Add + advanceDenseBand before the
	// overhaul). Hits must be invariant across engines and
	// parallelism, entries across parallelism within the DFS engine
	// (the hybrid accounts reused entries differently, so its entry
	// count is recorded, not asserted). Emitted/suppressed counters
	// must be scheduling-invariant: equal at p=1 and p=max. The hybrid
	// point additionally gates its vertical-phase overhaul: emitted
	// within 10% of DFS and a live copy path (Copied > 0).
	en := int(30_000 * cfg.Scale)
	emq := int(300 * cfg.Scale)
	ewl := ProteinEmissionWorkload(en, emq, queries, cfg.Seed)
	eix := alae.NewIndex(ewl.Text)
	emitReps := reps
	if emitReps > 3 {
		emitReps = 3 // the point is ~100× slower per op than Table 2 p=1
	}
	var emitRef BenchResult
	for _, tc := range []struct {
		name string
		opts alae.SearchOptions
	}{
		{"protein-emit p=1", alae.SearchOptions{Algorithm: alae.ALAE, Parallelism: 1}},
		{"protein-emit p=max", alae.SearchOptions{Algorithm: alae.ALAE}},
		{"protein-emit hybrid", alae.SearchOptions{Algorithm: alae.ALAEHybrid, Parallelism: 1}},
	} {
		warm := Measure(eix, ewl, tc.opts)
		if warm.Err != nil {
			return warm.Err
		}
		best := BenchResult{Name: tc.name, Reps: emitReps}
		for r := 0; r < emitReps; r++ {
			start := time.Now()
			meas := Measure(eix, ewl, tc.opts)
			elapsed := time.Since(start)
			if meas.Err != nil {
				return meas.Err
			}
			if best.NsPerOp == 0 || elapsed.Nanoseconds() < best.NsPerOp {
				best.NsPerOp = elapsed.Nanoseconds()
			}
			best.Entries = meas.Stats.CalculatedEntries
			best.Hits = meas.Hits
			best.Emitted = meas.Stats.EmittedHits
			best.Suppressed = meas.Stats.SuppressedEmissions
			best.Copied = meas.Stats.CopiedEmissions
		}
		best.MsPerOp = float64(best.NsPerOp) / 1e6
		switch tc.name {
		case "protein-emit p=1":
			emitRef = best
		case "protein-emit p=max":
			if best.Entries != emitRef.Entries || best.Hits != emitRef.Hits {
				return fmt.Errorf("exp: %q produced entries=%d hits=%d, want %d/%d (parallel emission is not exact)",
					tc.name, best.Entries, best.Hits, emitRef.Entries, emitRef.Hits)
			}
			if best.Emitted != emitRef.Emitted || best.Suppressed != emitRef.Suppressed {
				return fmt.Errorf("exp: %q emission counters not scheduling-invariant (emitted %d/%d, suppressed %d/%d)",
					tc.name, best.Emitted, emitRef.Emitted, best.Suppressed, emitRef.Suppressed)
			}
		case "protein-emit hybrid":
			if best.Hits != emitRef.Hits {
				return fmt.Errorf("exp: %q produced hits=%d, want %d (hybrid emission is not exact)",
					tc.name, best.Hits, emitRef.Hits)
			}
			// The vertical-phase watermark keeps re-walked branches from
			// re-forwarding shared rows: emitted stays within 10% of the
			// DFS engine's count (exactly equal on this workload in
			// practice) and the copy path must actually fire.
			if lo, hi := emitRef.Emitted*9/10, emitRef.Emitted*11/10; best.Emitted < lo || best.Emitted > hi {
				return fmt.Errorf("exp: %q emitted %d outside 10%% of the DFS engine's %d",
					tc.name, best.Emitted, emitRef.Emitted)
			}
			if best.Copied == 0 {
				return fmt.Errorf("exp: %q reported zero CopiedEmissions on a branch-heavy workload; the copy path is dead", tc.name)
			}
		}
		suite.Results = append(suite.Results, best)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(suite)
}

// chunkRecords splits text into n equal named chunks — the multi-member
// database stand-in the sharded bench points serve.
func chunkRecords(text []byte, n int) []alae.SeqRecord {
	recs := make([]alae.SeqRecord, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(text)/n, (i+1)*len(text)/n
		recs = append(recs, alae.SeqRecord{Name: fmt.Sprintf("chunk%02d", i), Seq: text[lo:hi]})
	}
	return recs
}
