package domination

import (
	"math/rand"
	"testing"
)

var dnaLetters = []byte("ACGT")

// bruteDominated is the definitional oracle: every occurrence of gram
// in text is immediately preceded by prev.
func bruteDominated(text []byte, gram []byte, prev byte) bool {
	q := len(gram)
	occurrences := 0
	for i := 0; i+q <= len(text); i++ {
		if string(text[i:i+q]) != string(gram) {
			continue
		}
		occurrences++
		if i == 0 || text[i-1] != prev {
			return false
		}
	}
	return occurrences > 0
}

func randDNA(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		out[i] = dnaLetters[rng.Intn(4)]
	}
	return out
}

func TestDominatedMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 40; trial++ {
		text := randDNA(100+rng.Intn(200), int64(trial))
		q := 2 + rng.Intn(4)
		idx, err := Build(text, q, dnaLetters)
		if err != nil {
			t.Fatal(err)
		}
		// Probe every gram present in the text plus some random ones.
		for i := 0; i+q <= len(text); i += 3 {
			gram := text[i : i+q]
			for _, prev := range dnaLetters {
				got := idx.Dominated(gram, prev)
				want := bruteDominated(text, gram, prev)
				if got != want {
					t.Fatalf("Dominated(%q, %q) = %v, want %v (text %q)",
						gram, prev, got, want, text)
				}
			}
		}
	}
}

func TestDominationChainExample(t *testing.T) {
	// In text ACGTACGT, every occurrence of CGT is preceded by A, so
	// the CGT fork is dominated when the query has A before it; GTA
	// occurs once (position 2... also 6? GTA at 2 only since position
	// 6 would need index 6..8) and is preceded by C.
	text := []byte("ACGTACGT")
	idx, err := Build(text, 3, dnaLetters)
	if err != nil {
		t.Fatal(err)
	}
	if !idx.Dominated([]byte("CGT"), 'A') {
		t.Error("CGT should be dominated by preceding A")
	}
	if idx.Dominated([]byte("CGT"), 'C') {
		t.Error("CGT is never preceded by C")
	}
	// ACG occurs at 0 and 4; position 0 has no predecessor, so ACG can
	// never be dominated — the paper's first-position rule.
	for _, prev := range dnaLetters {
		if idx.Dominated([]byte("ACG"), prev) {
			t.Errorf("ACG dominated by %q despite its position-0 occurrence", prev)
		}
	}
}

func TestOccursAndCount(t *testing.T) {
	text := []byte("ACGTACGT")
	idx, _ := Build(text, 4, dnaLetters)
	if !idx.Occurs([]byte("ACGT")) || idx.Count([]byte("ACGT")) != 2 {
		t.Errorf("ACGT: occurs=%v count=%d", idx.Occurs([]byte("ACGT")), idx.Count([]byte("ACGT")))
	}
	if idx.Occurs([]byte("AAAA")) || idx.Count([]byte("AAAA")) != 0 {
		t.Error("AAAA should be absent")
	}
	if idx.Dominated([]byte("AAAA"), 'A') {
		t.Error("absent gram cannot be dominated")
	}
}

func TestBuildRejectsBadQ(t *testing.T) {
	if _, err := Build([]byte("ACGT"), 0, dnaLetters); err == nil {
		t.Error("q=0 accepted")
	}
}

func TestSeparatorGramsNotIndexed(t *testing.T) {
	idx, err := Build([]byte("ACG#ACG"), 3, dnaLetters)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Occurs([]byte("CG#")) {
		t.Error("gram containing separator was indexed")
	}
	// The second ACG is preceded by '#', which is outside the
	// alphabet: ACG must not be dominated by anything.
	for _, prev := range dnaLetters {
		if idx.Dominated([]byte("ACG"), prev) {
			t.Errorf("ACG dominated by %q despite separator predecessor", prev)
		}
	}
	if idx.Count([]byte("ACG")) != 2 {
		t.Errorf("Count(ACG) = %d, want 2", idx.Count([]byte("ACG")))
	}
}

func TestDistinctAndSize(t *testing.T) {
	text := randDNA(5000, 99)
	idx, _ := Build(text, 4, dnaLetters)
	if idx.Distinct() <= 0 || idx.Distinct() > 256 {
		t.Errorf("Distinct = %d, want within (0, 4^4]", idx.Distinct())
	}
	if idx.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
	// A longer DNA text saturates the 4^q gram space, so the dominate
	// index stops growing — the behaviour behind Figure 11(a).
	big, _ := Build(randDNA(50000, 100), 4, dnaLetters)
	if big.Distinct() != 256 {
		t.Errorf("50k DNA text should contain all 256 4-grams, got %d", big.Distinct())
	}
}

func TestFallbackAlphabet(t *testing.T) {
	// Force the string-keyed path with a wide alphabet and large q.
	letters := make([]byte, 62)
	for i := range letters {
		letters[i] = byte('!' + i)
	}
	rng := rand.New(rand.NewSource(101))
	text := make([]byte, 400)
	for i := range text {
		text[i] = letters[rng.Intn(len(letters))]
	}
	idx, err := Build(text, 11, letters)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+11 <= len(text); i += 7 {
		gram := text[i : i+11]
		for _, prev := range []byte{letters[0], text[max(0, i-1)]} {
			if got, want := idx.Dominated(gram, prev), bruteDominated(text, gram, prev); got != want {
				t.Fatalf("fallback Dominated(%q, %q) = %v, want %v", gram, prev, got, want)
			}
		}
	}
}

func TestQAccessor(t *testing.T) {
	idx, _ := Build([]byte("ACGTACGT"), 4, dnaLetters)
	if idx.Q() != 4 {
		t.Errorf("Q = %d", idx.Q())
	}
}
