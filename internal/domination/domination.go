// Package domination implements the q-prefix domination index of
// §3.2.2: the offline structure that lets ALAE prune whole fork areas.
//
// Definition 1 specialises cleanly: the fork for the q-gram
// X = P[j..j+q−1] at query column j is dominated by
// X' = P[j−1..j+q−2] exactly when every occurrence of X in the text is
// immediately preceded by the character P[j−1] — then every alignment
// found through the fork at j is found, with a strictly higher score,
// through the fork at j−1 (one more leading match), so the fork at j
// is meaningless (Lemma 1).
//
// The index therefore stores, for every distinct q-gram of the text,
// its total occurrence count and its occurrence count per preceding
// character; it is built in one O(n) scan, matching the paper's
// "constructing dominations offline ... in O(n) time". A q-gram at
// text position 0 has no predecessor, which automatically prevents it
// from being dominated — the paper's rule that "the q-length substring
// at position 1 could not be dominated".
package domination

import (
	"fmt"

	"repro/internal/qgram"
)

// Index is the domination index of a text for a fixed q.
type Index struct {
	q       int
	letters []byte
	packer  *qgram.Packer
	counts  map[uint64]*gramCounts // packed path
	strCnts map[string]*gramCounts // fallback path
}

type gramCounts struct {
	total int32
	prec  []int32 // by preceding-character code; index len(letters) = "no predecessor"
}

// Build scans text once and constructs the index. letters must list
// the alphabet bytes of interest; grams containing other bytes (e.g.
// collection separators) are not indexed and can never dominate or be
// dominated.
func Build(text []byte, q int, letters []byte) (*Index, error) {
	if q <= 0 {
		return nil, fmt.Errorf("domination: q = %d must be positive", q)
	}
	idx := &Index{q: q, letters: append([]byte(nil), letters...), packer: qgram.NewPacker(letters, q)}
	codeOf := make(map[byte]int, len(letters))
	for i, c := range letters {
		codeOf[c] = i
	}
	noPred := len(letters)
	record := func(gram []byte, pos int) {
		var gc *gramCounts
		if idx.packer != nil {
			key, ok := idx.packer.Pack(gram)
			if !ok {
				return
			}
			if idx.counts == nil {
				idx.counts = make(map[uint64]*gramCounts)
			}
			gc = idx.counts[key]
			if gc == nil {
				gc = &gramCounts{prec: make([]int32, len(letters)+1)}
				idx.counts[key] = gc
			}
		} else {
			for _, c := range gram {
				if _, ok := codeOf[c]; !ok {
					return
				}
			}
			if idx.strCnts == nil {
				idx.strCnts = make(map[string]*gramCounts)
			}
			gc = idx.strCnts[string(gram)]
			if gc == nil {
				gc = &gramCounts{prec: make([]int32, len(letters)+1)}
				idx.strCnts[string(gram)] = gc
			}
		}
		gc.total++
		slot := noPred
		if pos > 0 {
			if c, ok := codeOf[text[pos-1]]; ok {
				slot = c
			}
		}
		gc.prec[slot]++
	}
	for i := 0; i+q <= len(text); i++ {
		record(text[i:i+q], i)
	}
	return idx, nil
}

// Q returns the gram length.
func (idx *Index) Q() int { return idx.q }

// lookup returns the counts of gram, or nil when it does not occur.
func (idx *Index) lookup(gram []byte) *gramCounts {
	if idx.packer != nil {
		key, ok := idx.packer.Pack(gram)
		if !ok {
			return nil
		}
		return idx.counts[key]
	}
	return idx.strCnts[string(gram)]
}

// Occurs reports whether gram occurs in the text at all — the first
// condition of Lemma 1 (no fork without a text match).
func (idx *Index) Occurs(gram []byte) bool {
	return idx.lookup(gram) != nil
}

// Count returns the number of occurrences of gram in the text.
func (idx *Index) Count(gram []byte) int {
	if gc := idx.lookup(gram); gc != nil {
		return int(gc.total)
	}
	return 0
}

// Dominated reports whether the fork for gram is dominated when the
// query character preceding it is prev: true iff every text occurrence
// of gram is immediately preceded by prev.
func (idx *Index) Dominated(gram []byte, prev byte) bool {
	gc := idx.lookup(gram)
	if gc == nil {
		return false // vacuous; the fork will be skipped as absent anyway
	}
	for i, c := range idx.letters {
		if c == prev {
			return gc.prec[i] == gc.total
		}
	}
	return false
}

// Distinct returns the number of distinct q-grams indexed.
func (idx *Index) Distinct() int {
	if idx.packer != nil {
		return len(idx.counts)
	}
	return len(idx.strCnts)
}

// SizeBytes reports the memory footprint of the index: the per-gram
// counters plus map overhead. This is the "dominate index" size curve
// of Figure 11.
func (idx *Index) SizeBytes() int {
	perGram := 4 + 4*(len(idx.letters)+1) // total + prec counters
	if idx.packer != nil {
		return len(idx.counts) * (perGram + 8 + 16)
	}
	return len(idx.strCnts) * (perGram + idx.q + 32)
}
