package qgram

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

var dnaLetters = []byte("ACGT")

// bruteGrams builds the reference inverted lists.
func bruteGrams(query []byte, q int) map[string][]int32 {
	out := make(map[string][]int32)
	for i := 0; i+q <= len(query); i++ {
		g := string(query[i : i+q])
		out[g] = append(out[g], int32(i))
	}
	return out
}

func TestIndexMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		query := make([]byte, n)
		for i := range query {
			query[i] = dnaLetters[rng.Intn(4)]
		}
		q := 1 + rng.Intn(6)
		idx, err := New(query, q, dnaLetters)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteGrams(query, q)
		if idx.Distinct() != len(want) {
			t.Fatalf("Distinct = %d, want %d", idx.Distinct(), len(want))
		}
		for g, pos := range want {
			got := idx.Positions([]byte(g))
			if len(got) != len(pos) {
				t.Fatalf("Positions(%q) = %v, want %v", g, got, pos)
			}
			for i := range pos {
				if got[i] != pos[i] {
					t.Fatalf("Positions(%q) = %v, want %v", g, got, pos)
				}
			}
		}
	}
}

func TestIndexAbsentAndWrongLength(t *testing.T) {
	idx, err := New([]byte("ACGTACGT"), 4, dnaLetters)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Positions([]byte("TTTT")) != nil {
		t.Error("absent gram returned positions")
	}
	if idx.Positions([]byte("ACG")) != nil {
		t.Error("wrong-length gram returned positions")
	}
	if idx.Positions([]byte("ACGN")) != nil {
		t.Error("foreign-byte gram returned positions")
	}
}

func TestIndexSkipsSeparators(t *testing.T) {
	idx, err := New([]byte("ACG#TACG"), 3, dnaLetters)
	if err != nil {
		t.Fatal(err)
	}
	// Grams overlapping '#' must not be indexed.
	for _, g := range []string{"CG#", "G#T", "#TA"} {
		if idx.Positions([]byte(g)) != nil {
			t.Errorf("separator gram %q indexed", g)
		}
	}
	if got := idx.Positions([]byte("ACG")); len(got) != 2 {
		t.Errorf("Positions(ACG) = %v, want two entries", got)
	}
}

func TestIndexRejectsBadQ(t *testing.T) {
	if _, err := New([]byte("ACGT"), 0, dnaLetters); err == nil {
		t.Error("q=0 accepted")
	}
}

func TestGramsEnumeration(t *testing.T) {
	query := []byte("ACGTACGA")
	idx, err := New(query, 3, dnaLetters)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteGrams(query, 3)
	var seen []string
	idx.Grams(func(gram []byte, pos []int32) {
		seen = append(seen, string(gram))
		ref := want[string(gram)]
		if len(pos) != len(ref) {
			t.Errorf("gram %q positions %v, want %v", gram, pos, ref)
		}
	})
	sort.Strings(seen)
	var wantKeys []string
	for k := range want {
		wantKeys = append(wantKeys, k)
	}
	sort.Strings(wantKeys)
	if len(seen) != len(wantKeys) {
		t.Fatalf("enumerated %v, want %v", seen, wantKeys)
	}
	for i := range seen {
		if seen[i] != wantKeys[i] {
			t.Fatalf("enumerated %v, want %v", seen, wantKeys)
		}
	}
	// Sorted enumeration yields lexicographic order.
	var sortedSeen []string
	idx.GramsSorted(func(gram []byte, _ []int32) {
		sortedSeen = append(sortedSeen, string(gram))
	})
	if !sort.StringsAreSorted(sortedSeen) {
		t.Errorf("GramsSorted not sorted: %v", sortedSeen)
	}
}

func TestPackerRoundTripAndNext(t *testing.T) {
	p := NewPacker(dnaLetters, 4)
	if p == nil {
		t.Fatal("packer unavailable for DNA q=4")
	}
	rng := rand.New(rand.NewSource(51))
	prevGram := []byte("ACGT")
	key, ok := p.Pack(prevGram)
	if !ok {
		t.Fatal("pack failed")
	}
	for step := 0; step < 100; step++ {
		c := dnaLetters[rng.Intn(4)]
		nextGram := append(append([]byte(nil), prevGram[1:]...), c)
		nk, ok := p.Next(key, c)
		if !ok {
			t.Fatal("Next failed")
		}
		direct, _ := p.Pack(nextGram)
		if nk != direct {
			t.Fatalf("sliding key %d != direct key %d for %q", nk, direct, nextGram)
		}
		key, prevGram = nk, nextGram
	}
	if _, ok := p.Pack([]byte("ACGN")); ok {
		t.Error("packed a foreign byte")
	}
	if _, ok := p.Next(key, 'N'); ok {
		t.Error("Next accepted a foreign byte")
	}
}

func TestPackerUnpackableFallsBack(t *testing.T) {
	// 62-byte alphabet with q=11 exceeds 62 bits: packer must be nil
	// and the index must fall back to string keys, still correct.
	letters := make([]byte, 62)
	for i := range letters {
		letters[i] = byte('!' + i)
	}
	if NewPacker(letters, 11) != nil {
		t.Fatal("packer should refuse 11 grams over 62 letters")
	}
	rng := rand.New(rand.NewSource(52))
	query := make([]byte, 500)
	for i := range query {
		query[i] = letters[rng.Intn(len(letters))]
	}
	idx, err := New(query, 11, letters)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteGrams(query, 11)
	if idx.Distinct() != len(want) {
		t.Fatalf("Distinct = %d, want %d", idx.Distinct(), len(want))
	}
	for g, pos := range want {
		got := idx.Positions([]byte(g))
		if len(got) != len(pos) {
			t.Fatalf("fallback Positions(%q) wrong", g)
		}
	}
	if idx.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
}

func TestProteinPacking(t *testing.T) {
	letters := []byte("ACDEFGHIKLMNPQRSTVWY")
	p := NewPacker(letters, 5) // 5 bits × 5 = 25 bits, packable
	if p == nil {
		t.Fatal("protein q=5 should pack")
	}
	a, _ := p.Pack([]byte("ACDEF"))
	b, _ := p.Pack([]byte("ACDEG"))
	if a == b {
		t.Error("distinct grams packed to the same key")
	}
}

func TestIndexQueryShorterThanQ(t *testing.T) {
	idx, err := New([]byte("AC"), 4, dnaLetters)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Distinct() != 0 {
		t.Error("short query should index nothing")
	}
}

func TestPositionsSharedSliceContract(t *testing.T) {
	query := bytes.Repeat([]byte("ACGT"), 10)
	idx, _ := New(query, 4, dnaLetters)
	p1 := idx.Positions([]byte("ACGT"))
	p2 := idx.Positions([]byte("ACGT"))
	if len(p1) != len(p2) || len(p1) != 10 {
		t.Fatalf("ACGT occurs 10 times, got %d/%d", len(p1), len(p2))
	}
}

// naiveLCP is the reference longest-common-prefix length.
func naiveLCP(a, b string) int {
	l := 0
	for l < len(a) && l < len(b) && a[l] == b[l] {
		l++
	}
	return l
}

// checkSortedLCP runs GramsSortedLCP and validates order, LCPs and
// position lists against the brute-force index.
func checkSortedLCP(t *testing.T, query []byte, q int, letters []byte) {
	t.Helper()
	idx, err := New(query, q, letters)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteGrams(query, q)
	prev := ""
	count := 0
	idx.GramsSortedLCP(func(gram []byte, lcp int, pos []int32) {
		g := string(gram)
		if count > 0 && g <= prev {
			t.Fatalf("GramsSortedLCP out of order: %q after %q", g, prev)
		}
		wantLCP := 0
		if count > 0 {
			wantLCP = naiveLCP(prev, g)
		}
		if lcp != wantLCP {
			t.Fatalf("LCP(%q, %q) = %d, want %d", prev, g, lcp, wantLCP)
		}
		ref := want[g]
		if len(pos) != len(ref) {
			t.Fatalf("gram %q positions %v, want %v", g, pos, ref)
		}
		prev = g
		count++
	})
	// Grams containing letters outside the alphabet are excluded from
	// the index, so count every brute gram that is alphabet-pure.
	pure := 0
	for g := range want {
		ok := true
		for i := 0; i < len(g); i++ {
			if bytes.IndexByte(letters, g[i]) < 0 {
				ok = false
				break
			}
		}
		if ok {
			pure++
		}
	}
	if count != pure {
		t.Fatalf("enumerated %d grams, want %d", count, pure)
	}
}

func TestGramsSortedLCPPacked(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	// Random DNA plus shapes that force every LCP value: homopolymer
	// runs (LCP = q−1) and letter-boundary jumps (LCP = 0).
	queries := [][]byte{
		[]byte("AAAAAAAACCCCCCCCGGGGGGGGTTTTTTTT"),
		[]byte("ACGTACGTACGT"),
	}
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(200)
		query := make([]byte, n)
		for i := range query {
			query[i] = dnaLetters[rng.Intn(4)]
		}
		queries = append(queries, query)
	}
	for _, query := range queries {
		for q := 1; q <= 5; q++ {
			checkSortedLCP(t, query, q, dnaLetters)
		}
	}
}

func TestGramsSortedLCPStringFallback(t *testing.T) {
	// 62 letters × q=11 exceeds 62 bits, forcing the string-keyed
	// fallback path of GramsSortedLCP.
	letters := make([]byte, 62)
	for i := range letters {
		letters[i] = byte('!' + i)
	}
	rng := rand.New(rand.NewSource(54))
	query := make([]byte, 400)
	for i := range query {
		// A small sub-alphabet so grams actually collide and share
		// prefixes.
		query[i] = letters[rng.Intn(4)]
	}
	checkSortedLCP(t, query, 11, letters)
}

// TestRearmMatchesFresh re-arms one Index across a stream of queries
// with varying lengths, gram lengths and alphabets and checks every
// state is indistinguishable from a freshly built index — the
// open-addressing slabs must not leak state between queries.
func TestRearmMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	protein := []byte("ACDEFGHIKLMNPQRSTVWY")
	var idx Index
	for trial := 0; trial < 60; trial++ {
		letters := dnaLetters
		if trial%3 == 2 {
			letters = protein
		}
		n := 1 + rng.Intn(400)
		query := make([]byte, n)
		for i := range query {
			if rng.Intn(20) == 0 {
				query[i] = '#' // separator: grams overlapping it are skipped
			} else {
				query[i] = letters[rng.Intn(len(letters))]
			}
		}
		q := 1 + rng.Intn(6)
		if err := idx.Rearm(query, q, letters); err != nil {
			t.Fatal(err)
		}
		fresh, err := New(query, q, letters)
		if err != nil {
			t.Fatal(err)
		}
		if idx.Distinct() != fresh.Distinct() {
			t.Fatalf("trial %d: Distinct %d after rearm, fresh %d", trial, idx.Distinct(), fresh.Distinct())
		}
		type entry struct {
			gram string
			lcp  int
			pos  string
		}
		collect := func(ix *Index) []entry {
			var out []entry
			ix.GramsSortedLCP(func(gram []byte, lcp int, pos []int32) {
				out = append(out, entry{string(gram), lcp, fmt.Sprint(pos)})
			})
			return out
		}
		got, want := collect(&idx), collect(fresh)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d grams after rearm, fresh %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d gram %d: rearm %+v, fresh %+v", trial, i, got[i], want[i])
			}
		}
		// Spot-check Positions through the probe path too.
		for probe := 0; probe < 5 && n >= q; probe++ {
			i := rng.Intn(n - q + 1)
			gram := query[i : i+q]
			g1, g2 := idx.Positions(gram), fresh.Positions(gram)
			if fmt.Sprint(g1) != fmt.Sprint(g2) {
				t.Fatalf("trial %d: Positions(%q) = %v after rearm, fresh %v", trial, gram, g1, g2)
			}
		}
	}
}

// TestRearmWarmAllocFree pins the point of the open-addressing layout:
// re-arming for a same-shape query (the serving loop's steady state)
// allocates nothing, including the sorted-key enumeration the engines
// run per query.
func TestRearmWarmAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	queries := make([][]byte, 4)
	for qi := range queries {
		queries[qi] = make([]byte, 3000)
		for i := range queries[qi] {
			queries[qi][i] = dnaLetters[rng.Intn(4)]
		}
	}
	var idx Index
	for _, q := range queries { // warm every slab at this shape
		if err := idx.Rearm(q, 11, dnaLetters); err != nil {
			t.Fatal(err)
		}
		idx.GramsSortedKeys(func([]byte, uint64, []int32) {})
	}
	qi := 0
	allocs := testing.AllocsPerRun(5, func() {
		qi++
		if err := idx.Rearm(queries[qi%len(queries)], 11, dnaLetters); err != nil {
			t.Fatal(err)
		}
		idx.GramsSortedKeys(func([]byte, uint64, []int32) {})
	})
	if allocs > 0 {
		t.Fatalf("warm Rearm+GramsSortedKeys allocated %.1f objects; must be 0", allocs)
	}
}
