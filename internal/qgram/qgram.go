// Package qgram builds the inverted lists of q-grams of the query that
// q-prefix filtering needs (§3.1.3 of the paper): "we decompose P into
// a set of q-grams by sliding a window of length q over the characters
// of P. For each q-gram in P, we generate an inverted list of its
// start positions in P. The time complexity of building inverted lists
// is O(m)."
//
// Keys are encoded as packed integers when the alphabet is small
// enough (⌈log2 σ⌉·q ≤ 62 bits), the common case for both DNA and
// protein q values; otherwise a string-keyed map is used.
package qgram

import (
	"fmt"
	"math/bits"
	"slices"
)

// Index is the inverted q-gram index of a query string.
type Index struct {
	q       int
	query   []byte
	lists   map[uint64][]int32 // packed-key lists
	strKeys map[string][]int32 // fallback for unpackable alphabets
	packer  *Packer
}

// Packer encodes fixed-length grams over a byte alphabet into uint64
// keys. The zero value is unusable; build one with NewPacker.
type Packer struct {
	q       int
	bits    uint
	mask    uint64 // low bits·q bits, the window of one packed gram
	code    [256]int16
	letters []byte
}

// NewPacker returns a packer for q-grams over the given letters, or
// nil when q grams of this alphabet do not fit into 62 bits.
func NewPacker(letters []byte, q int) *Packer {
	bits := uint(1)
	for 1<<bits < len(letters) {
		bits++
	}
	if uint(q)*bits > 62 {
		return nil
	}
	p := &Packer{q: q, bits: bits, letters: append([]byte(nil), letters...)}
	p.mask = uint64(1)<<(bits*uint(q)) - 1
	for i := range p.code {
		p.code[i] = -1
	}
	for i, c := range letters {
		p.code[c] = int16(i)
	}
	return p
}

// Pack encodes gram (which must have length q). ok is false when a
// byte is outside the alphabet.
func (p *Packer) Pack(gram []byte) (uint64, bool) {
	var key uint64
	for _, c := range gram {
		v := p.code[c]
		if v < 0 {
			return 0, false
		}
		key = key<<p.bits | uint64(v)
	}
	return key, true
}

// Next slides the packed key one character right: drop the leading
// character of the current gram and append c. prev must be the key of
// the previous window.
func (p *Packer) Next(prev uint64, c byte) (uint64, bool) {
	v := p.code[c]
	if v < 0 {
		return 0, false
	}
	return (prev<<p.bits | uint64(v)) & p.mask, true
}

// Q returns the gram length.
func (p *Packer) Q() int { return p.q }

// New builds the inverted index of the q-grams of query. letters is
// the alphabet of interest (grams containing other bytes are skipped,
// which is how separator bytes in concatenated databases are kept out
// of the filter).
func New(query []byte, q int, letters []byte) (*Index, error) {
	if q <= 0 {
		return nil, fmt.Errorf("qgram: q = %d must be positive", q)
	}
	idx := &Index{q: q, query: query, packer: NewPacker(letters, q)}
	if idx.packer != nil {
		idx.lists = make(map[uint64][]int32)
		for i := 0; i+q <= len(query); i++ {
			if key, ok := idx.packer.Pack(query[i : i+q]); ok {
				idx.lists[key] = append(idx.lists[key], int32(i))
			}
		}
		return idx, nil
	}
	idx.strKeys = make(map[string][]int32)
	valid := func(gram []byte) bool {
		for _, c := range gram {
			found := false
			for _, l := range letters {
				if c == l {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	for i := 0; i+q <= len(query); i++ {
		gram := query[i : i+q]
		if valid(gram) {
			idx.strKeys[string(gram)] = append(idx.strKeys[string(gram)], int32(i))
		}
	}
	return idx, nil
}

// Q returns the gram length of the index.
func (idx *Index) Q() int { return idx.q }

// Packer returns the packed-key encoder of the index, or nil when the
// alphabet does not pack (the string-keyed fallback is in use). The
// packed key of a gram is stable across queries over the same alphabet,
// which is what lets the search engines key cross-query caches by it.
func (idx *Index) Packer() *Packer { return idx.packer }

// Positions returns the 0-based starting positions of gram in the
// query, or nil when it does not occur. The returned slice is shared;
// callers must not modify it.
func (idx *Index) Positions(gram []byte) []int32 {
	if len(gram) != idx.q {
		return nil
	}
	if idx.packer != nil {
		key, ok := idx.packer.Pack(gram)
		if !ok {
			return nil
		}
		return idx.lists[key]
	}
	return idx.strKeys[string(gram)]
}

// Distinct returns the number of distinct q-grams indexed.
func (idx *Index) Distinct() int {
	if idx.packer != nil {
		return len(idx.lists)
	}
	return len(idx.strKeys)
}

// Decode writes the gram encoded by key into buf, which must have
// length q. The inverse of Pack.
func (p *Packer) Decode(key uint64, buf []byte) {
	for c := p.q - 1; c >= 0; c-- {
		buf[c] = p.letters[key&(1<<p.bits-1)]
		key >>= p.bits
	}
}

// Grams calls fn for every distinct gram with its sorted position
// list, in an unspecified gram order. fn must not retain the gram
// slice across calls.
func (idx *Index) Grams(fn func(gram []byte, positions []int32)) {
	buf := make([]byte, idx.q)
	if idx.packer != nil {
		for key, pos := range idx.lists {
			idx.packer.Decode(key, buf)
			fn(buf, pos)
		}
		return
	}
	for gram, pos := range idx.strKeys {
		copy(buf, gram)
		fn(buf, pos)
	}
}

// GramsSorted is Grams in lexicographic gram order, for deterministic
// traversal. Like Grams, fn must not retain the gram slice across
// calls (it is a reused buffer); copy it if it must outlive the
// callback.
func (idx *Index) GramsSorted(fn func(gram []byte, positions []int32)) {
	idx.GramsSortedLCP(func(gram []byte, _ int, positions []int32) {
		fn(gram, positions)
	})
}

// GramsSortedKeys is GramsSorted additionally passing each gram's
// packed key — the same keys Packer().Pack would produce, read off the
// index's own lists so callers keying caches by gram avoid re-packing.
// Packed keys sort in lexicographic gram order because dense codes are
// assigned in ascending byte order. Only valid when Packer() != nil
// (the packed layout is in use); it panics otherwise.
func (idx *Index) GramsSortedKeys(fn func(gram []byte, key uint64, positions []int32)) {
	if idx.packer == nil {
		panic("qgram: GramsSortedKeys needs the packed-key layout; check Packer() != nil")
	}
	keys := make([]uint64, 0, len(idx.lists))
	for key := range idx.lists {
		keys = append(keys, key)
	}
	// slices.Sort, not sort.Slice: on a protein query (~m distinct
	// grams) the reflection-based swapper dominated the whole
	// resolution pass.
	slices.Sort(keys)
	buf := make([]byte, idx.q)
	for _, key := range keys {
		idx.packer.Decode(key, buf)
		fn(buf, key, idx.lists[key])
	}
}

// GramsSortedLCP is GramsSorted extended with the length of the longest
// common prefix between each gram and its predecessor (0 for the first
// gram). Consecutive sorted grams share long prefixes — the shared
// backward-search steps prefix-shared resolution exploits. fn must not
// retain the gram slice across calls.
func (idx *Index) GramsSortedLCP(fn func(gram []byte, lcp int, positions []int32)) {
	if idx.packer != nil {
		// The LCP of two consecutive grams is read off the highest
		// differing bit of their packed keys.
		cbits := int(idx.packer.bits)
		first := true
		var prevKey uint64
		idx.GramsSortedKeys(func(gram []byte, key uint64, positions []int32) {
			lcp := 0
			if !first {
				if diff := prevKey ^ key; diff != 0 {
					lcp = idx.q - 1 - (63-bits.LeadingZeros64(diff))/cbits
				} else {
					lcp = idx.q
				}
			}
			first = false
			prevKey = key
			fn(gram, lcp, positions)
		})
		return
	}
	keys := make([]string, 0, len(idx.strKeys))
	for g := range idx.strKeys {
		keys = append(keys, g)
	}
	slices.Sort(keys)
	buf := make([]byte, idx.q)
	prev := ""
	for _, g := range keys {
		lcp := 0
		for lcp < len(prev) && lcp < len(g) && prev[lcp] == g[lcp] {
			lcp++
		}
		copy(buf, g)
		fn(buf, lcp, idx.strKeys[g])
		prev = g
	}
}

// SizeBytes estimates the index footprint (list headers plus
// positions), for completeness in space accounting.
func (idx *Index) SizeBytes() int {
	size := 0
	if idx.packer != nil {
		for _, l := range idx.lists {
			size += 8 + 4*len(l) + 24
		}
		return size
	}
	for g, l := range idx.strKeys {
		size += len(g) + 4*len(l) + 40
	}
	return size
}
