// Package qgram builds the inverted lists of q-grams of the query that
// q-prefix filtering needs (§3.1.3 of the paper): "we decompose P into
// a set of q-grams by sliding a window of length q over the characters
// of P. For each q-gram in P, we generate an inverted list of its
// start positions in P. The time complexity of building inverted lists
// is O(m)."
//
// Keys are encoded as packed integers when the alphabet is small
// enough (⌈log2 σ⌉·q ≤ 62 bits), the common case for both DNA and
// protein q values; otherwise a string-keyed map is used.
//
// The packed-key index is a flat open-addressing table over reusable
// slabs, not a Go map: Rearm re-fills the same storage for the next
// query, so a serving session that owns one Index stops allocating for
// warm query shapes — the last per-query allocation of the session
// path (the ROADMAP's "qgram index reuse" item).
package qgram

import (
	"bytes"
	"fmt"
	"math/bits"
	"slices"
)

// Index is the inverted q-gram index of a query string. The zero value
// is empty and re-armable: build with New, or re-arm an existing Index
// in place with Rearm.
// The index deliberately does NOT retain the query slice: everything
// it answers is read from its own slabs, so a pooled idle session
// holding a re-armable Index never pins a caller's query buffer.
type Index struct {
	q      int
	packer *Packer

	// Packed-key layout: an open-addressing table on the packed gram
	// key plus one flat position buffer, all re-armed in place. A
	// gram's inverted list is pos[starts[o]:starts[o+1]] where o is the
	// gram's ordinal (first-seen order).
	slotKeys []uint64 // packed key + 1; 0 marks an empty slot
	slotOrd  []int32  // slot → gram ordinal
	shift    uint     // 64 − log2(len(slotKeys)), the Fibonacci-hash shift
	keys     []uint64 // ordinal → packed key
	starts   []int32  // ordinal → range of pos (len = distinct + 1)
	pos      []int32  // every gram position, grouped by ordinal, ascending
	counts   []int32  // scratch: per-ordinal counts, then fill cursors
	sorted   []uint64 // scratch: keys in sorted order (GramsSorted*)
	buf      []byte   // scratch: decoded gram handed to callbacks

	strKeys map[string][]int32 // fallback for unpackable alphabets
}

// Packer encodes fixed-length grams over a byte alphabet into uint64
// keys. The zero value is unusable; build one with NewPacker.
type Packer struct {
	q       int
	bits    uint
	mask    uint64 // low bits·q bits, the window of one packed gram
	code    [256]int16
	letters []byte
}

// NewPacker returns a packer for q-grams over the given letters, or
// nil when q grams of this alphabet do not fit into 62 bits.
func NewPacker(letters []byte, q int) *Packer {
	bits := uint(1)
	for 1<<bits < len(letters) {
		bits++
	}
	if uint(q)*bits > 62 {
		return nil
	}
	p := &Packer{q: q, bits: bits, letters: append([]byte(nil), letters...)}
	p.mask = uint64(1)<<(bits*uint(q)) - 1
	for i := range p.code {
		p.code[i] = -1
	}
	for i, c := range letters {
		p.code[c] = int16(i)
	}
	return p
}

// Pack encodes gram (which must have length q). ok is false when a
// byte is outside the alphabet.
func (p *Packer) Pack(gram []byte) (uint64, bool) {
	var key uint64
	for _, c := range gram {
		v := p.code[c]
		if v < 0 {
			return 0, false
		}
		key = key<<p.bits | uint64(v)
	}
	return key, true
}

// Next slides the packed key one character right: drop the leading
// character of the current gram and append c. prev must be the key of
// the previous window.
func (p *Packer) Next(prev uint64, c byte) (uint64, bool) {
	v := p.code[c]
	if v < 0 {
		return 0, false
	}
	return (prev<<p.bits | uint64(v)) & p.mask, true
}

// Q returns the gram length.
func (p *Packer) Q() int { return p.q }

// fibMix is 2^64/φ, the Fibonacci-hashing multiplier: consecutive
// packed keys (grams sharing long prefixes) scatter across the table.
const fibMix = 0x9E3779B97F4A7C15

// New builds the inverted index of the q-grams of query. letters is
// the alphabet of interest (grams containing other bytes are skipped,
// which is how separator bytes in concatenated databases are kept out
// of the filter).
func New(query []byte, q int, letters []byte) (*Index, error) {
	idx := &Index{}
	if err := idx.Rearm(query, q, letters); err != nil {
		return nil, err
	}
	return idx, nil
}

// Rearm rebuilds the index in place for a new query, reusing every
// slab the previous query sized: in a serving loop over queries of a
// stable shape (same alphabet and length class) it allocates nothing.
// The packer is kept when (q, letters) are unchanged. Position slices
// previously returned by Positions/Grams are invalidated.
func (idx *Index) Rearm(query []byte, q int, letters []byte) error {
	if q <= 0 {
		return fmt.Errorf("qgram: q = %d must be positive", q)
	}
	if idx.packer == nil || idx.packer.q != q || !bytes.Equal(idx.packer.letters, letters) {
		idx.packer = NewPacker(letters, q)
	}
	idx.q = q
	idx.strKeys = nil
	if idx.packer == nil {
		return idx.rearmFallback(query, letters)
	}
	if cap(idx.buf) < q {
		idx.buf = make([]byte, q)
	} else {
		idx.buf = idx.buf[:q]
	}

	windows := len(query) - q + 1
	if windows < 0 {
		windows = 0
	}
	// Table capacity: next power of two holding every window at ≤ 50%
	// load. A larger table from an earlier query is kept as-is (a
	// clear is a memset; shrinking would only cost reallocation later).
	size := 64
	for size < 2*windows {
		size <<= 1
	}
	if len(idx.slotKeys) < size {
		idx.slotKeys = make([]uint64, size)
		idx.slotOrd = make([]int32, size)
	} else {
		size = len(idx.slotKeys)
		clear(idx.slotKeys)
	}
	idx.shift = uint(64 - bits.TrailingZeros(uint(size)))
	mask := uint64(size - 1)

	// Pass 1: slide the packed window across the query (O(m), invalid
	// bytes reset the run), assigning ordinals first-seen and counting
	// occurrences per gram.
	keys, counts := idx.keys[:0], idx.counts[:0]
	p := idx.packer
	total := 0
	var key uint64
	run := 0
	for j := 0; j < len(query); j++ {
		v := p.code[query[j]]
		if v < 0 {
			run = 0
			continue
		}
		key = (key<<p.bits | uint64(v)) & p.mask
		if run++; run < q {
			continue
		}
		total++
		k := key + 1
		s := (k * fibMix) >> idx.shift
		for {
			stored := idx.slotKeys[s]
			if stored == k {
				counts[idx.slotOrd[s]]++
				break
			}
			if stored == 0 {
				idx.slotKeys[s] = k
				idx.slotOrd[s] = int32(len(keys))
				keys = append(keys, key)
				counts = append(counts, 1)
				break
			}
			s = (s + 1) & mask
		}
	}

	// Prefix-sum the counts into list boundaries, then reuse counts as
	// the fill cursors of pass 2.
	n := len(keys)
	if cap(idx.starts) < n+1 {
		idx.starts = make([]int32, n+1)
	} else {
		idx.starts = idx.starts[:n+1]
	}
	off := int32(0)
	for o := 0; o < n; o++ {
		idx.starts[o] = off
		off += counts[o]
		counts[o] = idx.starts[o]
	}
	idx.starts[n] = off
	if cap(idx.pos) < total {
		idx.pos = make([]int32, total)
	} else {
		idx.pos = idx.pos[:total]
	}

	// Pass 2: the same slide, now writing each occurrence into its
	// gram's slice of the flat position buffer (ascending within a
	// gram, since windows are visited left to right).
	key, run = 0, 0
	for j := 0; j < len(query); j++ {
		v := p.code[query[j]]
		if v < 0 {
			run = 0
			continue
		}
		key = (key<<p.bits | uint64(v)) & p.mask
		if run++; run < q {
			continue
		}
		s := ((key + 1) * fibMix) >> idx.shift
		for idx.slotKeys[s] != key+1 {
			s = (s + 1) & mask
		}
		o := idx.slotOrd[s]
		idx.pos[counts[o]] = int32(j - q + 1)
		counts[o]++
	}
	idx.keys, idx.counts = keys, counts
	return nil
}

// rearmFallback is the string-keyed map path for alphabets whose grams
// do not pack into 62 bits. It rebuilds the map per call — the
// fallback never serves the hot DNA/protein configurations, so its
// allocations do not matter.
func (idx *Index) rearmFallback(query, letters []byte) error {
	idx.strKeys = make(map[string][]int32)
	valid := func(gram []byte) bool {
		for _, c := range gram {
			if bytes.IndexByte(letters, c) < 0 {
				return false
			}
		}
		return true
	}
	for i := 0; i+idx.q <= len(query); i++ {
		gram := query[i : i+idx.q]
		if valid(gram) {
			idx.strKeys[string(gram)] = append(idx.strKeys[string(gram)], int32(i))
		}
	}
	return nil
}

// ordPositions returns gram ordinal o's inverted list.
func (idx *Index) ordPositions(o int32) []int32 {
	return idx.pos[idx.starts[o]:idx.starts[o+1]]
}

// lookup probes the table for key; ok is false when the gram is not
// indexed.
func (idx *Index) lookup(key uint64) (ord int32, ok bool) {
	if len(idx.slotKeys) == 0 {
		return 0, false
	}
	mask := uint64(len(idx.slotKeys) - 1)
	k := key + 1
	s := (k * fibMix) >> idx.shift
	for {
		stored := idx.slotKeys[s]
		if stored == k {
			return idx.slotOrd[s], true
		}
		if stored == 0 {
			return 0, false
		}
		s = (s + 1) & mask
	}
}

// Q returns the gram length of the index.
func (idx *Index) Q() int { return idx.q }

// Packer returns the packed-key encoder of the index, or nil when the
// alphabet does not pack (the string-keyed fallback is in use). The
// packed key of a gram is stable across queries over the same alphabet,
// which is what lets the search engines key cross-query caches by it.
func (idx *Index) Packer() *Packer {
	if idx.strKeys != nil {
		return nil
	}
	return idx.packer
}

// Positions returns the 0-based starting positions of gram in the
// query, or nil when it does not occur. The returned slice is shared
// and only valid until the next Rearm; callers must not modify it.
func (idx *Index) Positions(gram []byte) []int32 {
	if len(gram) != idx.q {
		return nil
	}
	if idx.strKeys != nil {
		return idx.strKeys[string(gram)]
	}
	key, ok := idx.packer.Pack(gram)
	if !ok {
		return nil
	}
	o, ok := idx.lookup(key)
	if !ok {
		return nil
	}
	return idx.ordPositions(o)
}

// Distinct returns the number of distinct q-grams indexed.
func (idx *Index) Distinct() int {
	if idx.strKeys != nil {
		return len(idx.strKeys)
	}
	return len(idx.keys)
}

// Decode writes the gram encoded by key into buf, which must have
// length q. The inverse of Pack.
func (p *Packer) Decode(key uint64, buf []byte) {
	for c := p.q - 1; c >= 0; c-- {
		buf[c] = p.letters[key&(1<<p.bits-1)]
		key >>= p.bits
	}
}

// Grams calls fn for every distinct gram with its sorted position
// list, in an unspecified gram order. fn must not retain the gram
// slice across calls.
func (idx *Index) Grams(fn func(gram []byte, positions []int32)) {
	if idx.strKeys != nil {
		buf := make([]byte, idx.q)
		for gram, pos := range idx.strKeys {
			copy(buf, gram)
			fn(buf, pos)
		}
		return
	}
	for o, key := range idx.keys {
		idx.packer.Decode(key, idx.buf)
		fn(idx.buf, idx.ordPositions(int32(o)))
	}
}

// GramsSorted is Grams in lexicographic gram order, for deterministic
// traversal. Like Grams, fn must not retain the gram slice across
// calls (it is a reused buffer); copy it if it must outlive the
// callback.
func (idx *Index) GramsSorted(fn func(gram []byte, positions []int32)) {
	idx.GramsSortedLCP(func(gram []byte, _ int, positions []int32) {
		fn(gram, positions)
	})
}

// GramsSortedKeys is GramsSorted additionally passing each gram's
// packed key — the same keys Packer().Pack would produce, read off the
// index's own table so callers keying caches by gram avoid re-packing.
// Packed keys sort in lexicographic gram order because dense codes are
// assigned in ascending byte order. Only valid when Packer() != nil
// (the packed layout is in use); it panics otherwise.
func (idx *Index) GramsSortedKeys(fn func(gram []byte, key uint64, positions []int32)) {
	if idx.Packer() == nil {
		panic("qgram: GramsSortedKeys needs the packed-key layout; check Packer() != nil")
	}
	// slices.Sort over a reused scratch copy, not sort.Slice: on a
	// protein query (~m distinct grams) the reflection-based swapper
	// dominated the whole resolution pass.
	sorted := append(idx.sorted[:0], idx.keys...)
	slices.Sort(sorted)
	idx.sorted = sorted
	for _, key := range sorted {
		o, _ := idx.lookup(key)
		idx.packer.Decode(key, idx.buf)
		fn(idx.buf, key, idx.ordPositions(o))
	}
}

// GramsSortedLCP is GramsSorted extended with the length of the longest
// common prefix between each gram and its predecessor (0 for the first
// gram). Consecutive sorted grams share long prefixes — the shared
// backward-search steps prefix-shared resolution exploits. fn must not
// retain the gram slice across calls.
func (idx *Index) GramsSortedLCP(fn func(gram []byte, lcp int, positions []int32)) {
	if idx.Packer() != nil {
		// The LCP of two consecutive grams is read off the highest
		// differing bit of their packed keys.
		cbits := int(idx.packer.bits)
		first := true
		var prevKey uint64
		idx.GramsSortedKeys(func(gram []byte, key uint64, positions []int32) {
			lcp := 0
			if !first {
				if diff := prevKey ^ key; diff != 0 {
					lcp = idx.q - 1 - (63-bits.LeadingZeros64(diff))/cbits
				} else {
					lcp = idx.q
				}
			}
			first = false
			prevKey = key
			fn(gram, lcp, positions)
		})
		return
	}
	keys := make([]string, 0, len(idx.strKeys))
	for g := range idx.strKeys {
		keys = append(keys, g)
	}
	slices.Sort(keys)
	buf := make([]byte, idx.q)
	prev := ""
	for _, g := range keys {
		lcp := 0
		for lcp < len(prev) && lcp < len(g) && prev[lcp] == g[lcp] {
			lcp++
		}
		copy(buf, g)
		fn(buf, lcp, idx.strKeys[g])
		prev = g
	}
}

// SizeBytes estimates the index footprint (table slots, list headers
// and positions), for completeness in space accounting.
func (idx *Index) SizeBytes() int {
	if idx.strKeys != nil {
		size := 0
		for g, l := range idx.strKeys {
			size += len(g) + 4*len(l) + 40
		}
		return size
	}
	return 12*len(idx.slotKeys) + 12*len(idx.keys) + 4*len(idx.pos) + 4*len(idx.starts)
}
