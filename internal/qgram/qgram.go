// Package qgram builds the inverted lists of q-grams of the query that
// q-prefix filtering needs (§3.1.3 of the paper): "we decompose P into
// a set of q-grams by sliding a window of length q over the characters
// of P. For each q-gram in P, we generate an inverted list of its
// start positions in P. The time complexity of building inverted lists
// is O(m)."
//
// Keys are encoded as packed integers when the alphabet is small
// enough (⌈log2 σ⌉·q ≤ 62 bits), the common case for both DNA and
// protein q values; otherwise a string-keyed map is used.
package qgram

import (
	"fmt"
	"sort"
)

// Index is the inverted q-gram index of a query string.
type Index struct {
	q       int
	query   []byte
	lists   map[uint64][]int32 // packed-key lists
	strKeys map[string][]int32 // fallback for unpackable alphabets
	packer  *Packer
}

// Packer encodes fixed-length grams over a byte alphabet into uint64
// keys. The zero value is unusable; build one with NewPacker.
type Packer struct {
	q       int
	bits    uint
	code    [256]int16
	letters []byte
}

// NewPacker returns a packer for q-grams over the given letters, or
// nil when q grams of this alphabet do not fit into 62 bits.
func NewPacker(letters []byte, q int) *Packer {
	bits := uint(1)
	for 1<<bits < len(letters) {
		bits++
	}
	if uint(q)*bits > 62 {
		return nil
	}
	p := &Packer{q: q, bits: bits, letters: append([]byte(nil), letters...)}
	for i := range p.code {
		p.code[i] = -1
	}
	for i, c := range letters {
		p.code[c] = int16(i)
	}
	return p
}

// Pack encodes gram (which must have length q). ok is false when a
// byte is outside the alphabet.
func (p *Packer) Pack(gram []byte) (uint64, bool) {
	var key uint64
	for _, c := range gram {
		v := p.code[c]
		if v < 0 {
			return 0, false
		}
		key = key<<p.bits | uint64(v)
	}
	return key, true
}

// Next slides the packed key one character right: drop the leading
// character of the current gram and append c. prev must be the key of
// the previous window.
func (p *Packer) Next(prev uint64, c byte) (uint64, bool) {
	v := p.code[c]
	if v < 0 {
		return 0, false
	}
	mask := uint64(1)<<(p.bits*uint(p.q)) - 1
	return (prev<<p.bits | uint64(v)) & mask, true
}

// Q returns the gram length.
func (p *Packer) Q() int { return p.q }

// New builds the inverted index of the q-grams of query. letters is
// the alphabet of interest (grams containing other bytes are skipped,
// which is how separator bytes in concatenated databases are kept out
// of the filter).
func New(query []byte, q int, letters []byte) (*Index, error) {
	if q <= 0 {
		return nil, fmt.Errorf("qgram: q = %d must be positive", q)
	}
	idx := &Index{q: q, query: query, packer: NewPacker(letters, q)}
	if idx.packer != nil {
		idx.lists = make(map[uint64][]int32)
		for i := 0; i+q <= len(query); i++ {
			if key, ok := idx.packer.Pack(query[i : i+q]); ok {
				idx.lists[key] = append(idx.lists[key], int32(i))
			}
		}
		return idx, nil
	}
	idx.strKeys = make(map[string][]int32)
	valid := func(gram []byte) bool {
		for _, c := range gram {
			found := false
			for _, l := range letters {
				if c == l {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	for i := 0; i+q <= len(query); i++ {
		gram := query[i : i+q]
		if valid(gram) {
			idx.strKeys[string(gram)] = append(idx.strKeys[string(gram)], int32(i))
		}
	}
	return idx, nil
}

// Q returns the gram length of the index.
func (idx *Index) Q() int { return idx.q }

// Positions returns the 0-based starting positions of gram in the
// query, or nil when it does not occur. The returned slice is shared;
// callers must not modify it.
func (idx *Index) Positions(gram []byte) []int32 {
	if len(gram) != idx.q {
		return nil
	}
	if idx.packer != nil {
		key, ok := idx.packer.Pack(gram)
		if !ok {
			return nil
		}
		return idx.lists[key]
	}
	return idx.strKeys[string(gram)]
}

// Distinct returns the number of distinct q-grams indexed.
func (idx *Index) Distinct() int {
	if idx.packer != nil {
		return len(idx.lists)
	}
	return len(idx.strKeys)
}

// Grams calls fn for every distinct gram with its sorted position
// list, in an unspecified gram order. fn must not retain the gram
// slice across calls.
func (idx *Index) Grams(fn func(gram []byte, positions []int32)) {
	buf := make([]byte, idx.q)
	if idx.packer != nil {
		for key, pos := range idx.lists {
			k := key
			for i := idx.q - 1; i >= 0; i-- {
				buf[i] = idx.packer.letters[k&(1<<idx.packer.bits-1)]
				k >>= idx.packer.bits
			}
			fn(buf, pos)
		}
		return
	}
	for gram, pos := range idx.strKeys {
		copy(buf, gram)
		fn(buf, pos)
	}
}

// GramsSorted is Grams in lexicographic gram order, for deterministic
// traversal.
func (idx *Index) GramsSorted(fn func(gram []byte, positions []int32)) {
	var keys []string
	collect := func(gram []byte, _ []int32) { keys = append(keys, string(gram)) }
	idx.Grams(collect)
	sort.Strings(keys)
	for _, k := range keys {
		fn([]byte(k), idx.Positions([]byte(k)))
	}
}

// SizeBytes estimates the index footprint (list headers plus
// positions), for completeness in space accounting.
func (idx *Index) SizeBytes() int {
	size := 0
	if idx.packer != nil {
		for _, l := range idx.lists {
			size += 8 + 4*len(l) + 24
		}
		return size
	}
	for g, l := range idx.strKeys {
		size += len(g) + 4*len(l) + 40
	}
	return size
}
