package strie

import (
	"math/rand"
	"sort"
	"testing"
)

func randDNA(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	letters := []byte("ACGT")
	out := make([]byte, n)
	for i := range out {
		out[i] = letters[rng.Intn(4)]
	}
	return out
}

func TestWalkAndOccurrencesMatchRef(t *testing.T) {
	text := randDNA(300, 30)
	tr := New(text)
	ref := NewRef(text)
	rng := rand.New(rand.NewSource(31))

	for trial := 0; trial < 300; trial++ {
		// Half the probes are real substrings, half are random strings.
		var s []byte
		if trial%2 == 0 {
			start := rng.Intn(len(text))
			l := 1 + rng.Intn(min(10, len(text)-start))
			s = text[start : start+l]
		} else {
			s = randDNA(1+rng.Intn(8), int64(trial))
		}
		want := ref.WalkRef(s)
		node, ok := tr.Walk(s)
		if (want == nil) != !ok {
			t.Fatalf("Walk(%q): emulated ok=%v, ref found=%v", s, ok, want != nil)
		}
		if !ok {
			continue
		}
		got := tr.Occurrences(node)
		sort.Ints(got)
		wantSorted := append([]int(nil), want...)
		sort.Ints(wantSorted)
		if len(got) != len(wantSorted) {
			t.Fatalf("Walk(%q): got %v, want %v", s, got, wantSorted)
		}
		for i := range got {
			if got[i] != wantSorted[i] {
				t.Fatalf("Walk(%q): got %v, want %v", s, got, wantSorted)
			}
		}
		if tr.Count(node) != len(want) {
			t.Fatalf("Count(%q) = %d, want %d", s, tr.Count(node), len(want))
		}
	}
}

func TestChildEnumerationMatchesRef(t *testing.T) {
	text := randDNA(200, 32)
	tr := New(text)
	ref := NewRef(text)
	rng := rand.New(rand.NewSource(33))

	for trial := 0; trial < 100; trial++ {
		start := rng.Intn(len(text))
		l := rng.Intn(min(8, len(text)-start))
		s := text[start : start+l]
		node, ok := tr.Walk(s)
		if !ok {
			t.Fatalf("substring %q must be walkable", s)
		}
		wantLabels := ref.EdgeLabels(s)
		var gotLabels []byte
		for _, c := range tr.Letters() {
			if _, ok := tr.Child(node, c); ok {
				gotLabels = append(gotLabels, c)
			}
		}
		if string(gotLabels) != string(wantLabels) {
			t.Fatalf("children of %q: got %q, want %q", s, gotLabels, wantLabels)
		}
	}
}

func TestChildCodeAgreesWithChild(t *testing.T) {
	text := randDNA(100, 34)
	tr := New(text)
	node, _ := tr.Walk(text[10:14])
	for _, c := range tr.Letters() {
		byByte, ok1 := tr.Child(node, c)
		byCode, ok2 := tr.ChildCode(node, tr.Index().CodeOf(c))
		if ok1 != ok2 || byByte != byCode {
			t.Errorf("Child(%q) = %v/%v, ChildCode = %v/%v", c, byByte, ok1, byCode, ok2)
		}
	}
}

func TestRootCoversWholeText(t *testing.T) {
	text := randDNA(50, 35)
	tr := New(text)
	root := tr.Root()
	if tr.Count(root) != len(text)+1 { // +1 for the sentinel suffix
		t.Errorf("root count = %d, want %d", tr.Count(root), len(text)+1)
	}
	if root.Depth != 0 {
		t.Errorf("root depth = %d", root.Depth)
	}
}

func TestDeepWalkWholeText(t *testing.T) {
	text := randDNA(80, 36)
	tr := New(text)
	node, ok := tr.Walk(text)
	if !ok {
		t.Fatal("the whole text must be a root-to-leaf path")
	}
	occ := tr.Occurrences(node)
	if len(occ) != 1 || occ[0] != 0 {
		t.Errorf("whole-text occurrence = %v, want [0]", occ)
	}
}

func TestAbsentEdge(t *testing.T) {
	tr := New([]byte("ACGTACGT"))
	if _, ok := tr.Walk([]byte("AA")); ok {
		t.Error("AA does not occur in ACGTACGT")
	}
	if _, ok := tr.Child(tr.Root(), 'N'); ok {
		t.Error("N is not in the text alphabet")
	}
}
