package strie

// Ref is a literal pointer-based suffix trie, the structure of §2.3
// that the FM-emulation stands in for. It is O(n^2) space and only
// suitable for small texts; the test suite uses it as the oracle for
// the emulated trie, and it documents what the emulation means.
type Ref struct {
	root *refNode
	text []byte
}

type refNode struct {
	children map[byte]*refNode
	starts   []int // starting positions of the path substring
}

// NewRef builds the literal suffix trie of text.
func NewRef(text []byte) *Ref {
	r := &Ref{root: &refNode{children: map[byte]*refNode{}}, text: text}
	for s := 0; s < len(text); s++ {
		u := r.root
		u.starts = append(u.starts, s)
		for i := s; i < len(text); i++ {
			c := text[i]
			next, ok := u.children[c]
			if !ok {
				next = &refNode{children: map[byte]*refNode{}}
				u.children[c] = next
			}
			next.starts = append(next.starts, s)
			u = next
		}
	}
	return r
}

// WalkRef descends the path s. It returns the starting positions of s
// in the text, or nil when s does not occur.
func (r *Ref) WalkRef(s []byte) []int {
	u := r.root
	for _, c := range s {
		next, ok := u.children[c]
		if !ok {
			return nil
		}
		u = next
	}
	return u.starts
}

// EdgeLabels returns the sorted child labels of the node reached by s,
// or nil when s does not occur.
func (r *Ref) EdgeLabels(s []byte) []byte {
	u := r.root
	for _, c := range s {
		next, ok := u.children[c]
		if !ok {
			return nil
		}
		u = next
	}
	var out []byte
	for c := 0; c < 256; c++ {
		if _, ok := u.children[byte(c)]; ok {
			out = append(out, byte(c))
		}
	}
	return out
}
