// Package strie provides the suffix-trie view of a text that the
// alignment engines traverse (§2.3 and §5 of the paper). The trie is
// never materialised: a node is a suffix-array range of the FM-index
// built over the *reversed* text, so that descending an edge labelled c
// (appending c to the substring read so far) is one backward-search
// step, exactly the simulation §5 describes.
//
// A literal pointer-based suffix trie (Ref) is also provided for small
// texts; the tests cross-check the emulation against it.
package strie

import (
	"repro/internal/bwt"
)

// Trie is the emulated suffix trie of a text.
type Trie struct {
	text []byte       // the original (forward) text
	fm   *bwt.FMIndex // FM-index of the reversed text
}

// Node identifies a trie node: the set of occurrences of the substring
// spelled by the path from the root, as a half-open suffix-array row
// range of the reversed-text index. Depth is the substring length.
type Node struct {
	Lo, Hi int
	Depth  int
}

// New builds the emulated suffix trie of text.
func New(text []byte) *Trie {
	rev := make([]byte, len(text))
	for i, c := range text {
		rev[len(text)-1-i] = c
	}
	return &Trie{text: text, fm: bwt.New(rev)}
}

// NewFromIndex wraps an existing reversed-text FM-index. revFM must be
// the index of the reversal of text.
func NewFromIndex(text []byte, revFM *bwt.FMIndex) *Trie {
	return &Trie{text: text, fm: revFM}
}

// Text returns the forward text.
func (t *Trie) Text() []byte { return t.text }

// Index returns the underlying reversed-text FM-index.
func (t *Trie) Index() *bwt.FMIndex { return t.fm }

// Root returns the root node (the empty substring, all positions).
func (t *Trie) Root() Node {
	lo, hi := t.fm.InitRange()
	return Node{Lo: lo, Hi: hi, Depth: 0}
}

// Child descends the edge labelled c from node u. ok is false when the
// edge does not exist (the extended substring does not occur in the
// text).
func (t *Trie) Child(u Node, c byte) (Node, bool) {
	lo, hi := t.fm.Extend(u.Lo, u.Hi, c)
	if lo >= hi {
		return Node{}, false
	}
	return Node{Lo: lo, Hi: hi, Depth: u.Depth + 1}, true
}

// ChildCode is Child for a pre-encoded dense character code of the
// underlying index (see Index().CodeOf), avoiding the byte lookup in
// hot loops.
func (t *Trie) ChildCode(u Node, code int) (Node, bool) {
	lo, hi := t.fm.ExtendCode(u.Lo, u.Hi, code)
	if lo >= hi {
		return Node{}, false
	}
	return Node{Lo: lo, Hi: hi, Depth: u.Depth + 1}, true
}

// Children fills nodes with every existing child of u: nodes[k] is
// the child along the letter with dense code k, with Lo == Hi marking
// an absent edge. nodes must have length Index().Sigma(). One call
// costs ~one fused checkpoint scan total (bwt.FMIndex.ExtendAll
// answers both boundary rows of the range in one block visit when
// they are close, which they are at every node below the first few
// levels), versus two scans per letter for individual Child calls —
// the difference dominates trie-walking profiles.
func (t *Trie) Children(u Node, nodes []Node, los, his []int32) {
	t.fm.ExtendAll(u.Lo, u.Hi, los, his)
	for k := range nodes {
		nodes[k] = Node{Lo: int(los[k]), Hi: int(his[k]), Depth: u.Depth + 1}
	}
}

// SingleChild returns the unique child of a width-one node u together
// with the dense code of its edge letter, in one rank operation. ok is
// false when u has no child (its occurrence reaches the text end). u
// must satisfy Hi-Lo == 1.
func (t *Trie) SingleChild(u Node) (Node, int, bool) {
	code, next, ok := t.fm.LFStep(u.Lo)
	if !ok {
		return Node{}, 0, false
	}
	return Node{Lo: next, Hi: next + 1, Depth: u.Depth + 1}, code, true
}

// PathOccurrence returns the 0-based forward-text starting position of
// a width-one node's single occurrence, without the slice bookkeeping
// of Occurrences. u must satisfy Hi-Lo == 1.
func (t *Trie) PathOccurrence(u Node) int {
	return len(t.text) - t.fm.Position(u.Lo) - u.Depth
}

// Walk descends the path spelled by s from the root. ok is false when
// s does not occur in the text.
func (t *Trie) Walk(s []byte) (Node, bool) {
	u := t.Root()
	for _, c := range s {
		var ok bool
		u, ok = t.Child(u, c)
		if !ok {
			return Node{}, false
		}
	}
	return u, true
}

// Count returns the number of occurrences in the text of the substring
// represented by u.
func (t *Trie) Count(u Node) int { return u.Hi - u.Lo }

// Occurrences returns the 0-based starting positions in the forward
// text of the substring represented by u. Positions are not sorted.
func (t *Trie) Occurrences(u Node) []int {
	return t.OccurrencesAppend(u, make([]int, 0, u.Hi-u.Lo))
}

// OccurrencesAppend is Occurrences appending into buf, for callers that
// reuse a positions buffer (the alignment engines locate once per
// emitting trie node and must not allocate per node).
func (t *Trie) OccurrencesAppend(u Node, buf []int) []int {
	// A row holds a position p in the reversed text where the reversed
	// substring starts; in forward coordinates the substring starts at
	// n - p - depth.
	n := len(t.text)
	start := len(buf)
	buf = t.fm.LocateAppend(u.Lo, u.Hi, buf)
	for i := start; i < len(buf); i++ {
		buf[i] = n - buf[i] - u.Depth
	}
	return buf
}

// Letters returns the distinct bytes of the text in sorted order (the
// possible edge labels).
func (t *Trie) Letters() []byte { return t.fm.Letters() }
