// Package sais constructs suffix arrays in linear time with the SA-IS
// algorithm (Nong, Zhang, Chan 2009). The suffix array is the substrate
// under the BWT and the compressed suffix array that ALAE (and the
// BWT-SW baseline) use to emulate the suffix trie of the text (§2.3 and
// §5 of the paper).
package sais

// Build returns the suffix array of text: a permutation sa of
// [0, len(text)) such that text[sa[i]:] < text[sa[i+1]:] in
// lexicographic order. A virtual sentinel smaller than every byte is
// assumed at the end of the text (it is not included in the result).
func Build(text []byte) []int32 {
	n := len(text)
	sa := make([]int32, n)
	if n == 0 {
		return sa
	}
	if n == 1 {
		sa[0] = 0
		return sa
	}
	s := make([]int32, n)
	for i, c := range text {
		s[i] = int32(c)
	}
	saisRec(s, sa, 256)
	return sa
}

// saisRec computes the suffix array of s (whose values are in
// [0, sigma)) into sa. A virtual sentinel -1 is assumed at s[len(s)].
func saisRec(s []int32, sa []int32, sigma int) {
	n := len(s)
	if n == 1 {
		sa[0] = 0
		return
	}
	if n == 2 {
		if s[0] < s[1] {
			sa[0], sa[1] = 0, 1
		} else {
			sa[0], sa[1] = 1, 0
		}
		return
	}

	// Classify suffixes: true = S-type (suffix smaller than its right
	// neighbour), false = L-type. The virtual sentinel is S-type by
	// definition, so the last real position is L-type unless... it is
	// compared with the sentinel, which is smaller than everything,
	// making s[n-1] L-type always.
	typ := make([]bool, n)
	typ[n-1] = false
	for i := n - 2; i >= 0; i-- {
		switch {
		case s[i] < s[i+1]:
			typ[i] = true
		case s[i] > s[i+1]:
			typ[i] = false
		default:
			typ[i] = typ[i+1]
		}
	}
	isLMS := func(i int) bool { return i > 0 && typ[i] && !typ[i-1] }

	// Bucket sizes per character.
	bucket := make([]int32, sigma)
	for _, c := range s {
		bucket[c]++
	}
	bucketHeads := func(b []int32) {
		var sum int32
		for c := 0; c < sigma; c++ {
			b[c] = sum
			sum += bucket[c]
		}
	}
	bucketTails := func(b []int32) {
		var sum int32
		for c := 0; c < sigma; c++ {
			sum += bucket[c]
			b[c] = sum
		}
	}

	b := make([]int32, sigma)
	const empty = -1

	// induceSort places all suffixes given the LMS suffixes already
	// seeded in sa (everything else must be `empty`).
	induce := func() {
		// Left-to-right pass places L-type suffixes.
		bucketHeads(b)
		// The suffix following the (virtual) sentinel: position n-1 is
		// L-type and must be seeded first.
		if !typ[n-1] {
			sa[b[s[n-1]]] = int32(n - 1)
			b[s[n-1]]++
		}
		for i := 0; i < n; i++ {
			j := sa[i]
			if j <= 0 {
				continue
			}
			if !typ[j-1] {
				sa[b[s[j-1]]] = j - 1
				b[s[j-1]]++
			}
		}
		// Right-to-left pass places S-type suffixes.
		bucketTails(b)
		for i := n - 1; i >= 0; i-- {
			j := sa[i]
			if j <= 0 {
				continue
			}
			if typ[j-1] {
				b[s[j-1]]--
				sa[b[s[j-1]]] = j - 1
			}
		}
	}

	// Step 1: put LMS suffixes at their bucket tails in text order and
	// induce-sort to get LMS substrings in sorted order.
	for i := range sa {
		sa[i] = empty
	}
	bucketTails(b)
	numLMS := 0
	for i := 1; i < n; i++ {
		if isLMS(i) {
			b[s[i]]--
			sa[b[s[i]]] = int32(i)
			numLMS++
		}
	}
	induce()

	if numLMS == 0 {
		// The whole string is monotone; induce() already sorted it.
		return
	}

	// Step 2: compact the sorted LMS suffixes and name LMS substrings.
	sorted := make([]int32, 0, numLMS)
	for _, j := range sa {
		if j > 0 && isLMS(int(j)) {
			sorted = append(sorted, j)
		}
	}
	// names[i] = rank of the LMS substring starting at i.
	names := make([]int32, n)
	for i := range names {
		names[i] = empty
	}
	var curName int32
	names[sorted[0]] = 0
	prev := sorted[0]
	lmsEqual := func(a, b int32) bool {
		// Compare the LMS substrings starting at a and b (inclusive of
		// their terminating LMS position).
		for d := int32(0); ; d++ {
			ia, ib := int(a+d), int(b+d)
			if ia >= n || ib >= n {
				// Only the very last LMS substring touches the sentinel
				// and it is unique, so reaching the end means inequality.
				return false
			}
			aLMS, bLMS := d > 0 && isLMS(ia), d > 0 && isLMS(ib)
			if s[ia] != s[ib] || typ[ia] != typ[ib] {
				return false
			}
			if aLMS || bLMS {
				return aLMS && bLMS
			}
		}
	}
	for _, j := range sorted[1:] {
		if !lmsEqual(prev, j) {
			curName++
		}
		names[j] = curName
		prev = j
	}

	if int(curName)+1 < numLMS {
		// Names are not yet unique: recurse on the reduced string.
		reduced := make([]int32, 0, numLMS)
		lmsPos := make([]int32, 0, numLMS)
		for i := 1; i < n; i++ {
			if isLMS(i) {
				reduced = append(reduced, names[i])
				lmsPos = append(lmsPos, int32(i))
			}
		}
		subSA := make([]int32, numLMS)
		saisRec(reduced, subSA, int(curName)+1)
		for i, r := range subSA {
			sorted[i] = lmsPos[r]
		}
	}
	// else: `sorted` already holds the LMS suffixes in correct order.

	// Step 3: seed the exactly-sorted LMS suffixes and induce the rest.
	for i := range sa {
		sa[i] = empty
	}
	bucketTails(b)
	for i := numLMS - 1; i >= 0; i-- {
		j := sorted[i]
		b[s[j]]--
		sa[b[s[j]]] = j
	}
	induce()
}
