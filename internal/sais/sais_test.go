package sais

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// naive builds a suffix array by sorting, the O(n^2 log n) oracle.
func naive(text []byte) []int32 {
	sa := make([]int32, len(text))
	for i := range sa {
		sa[i] = int32(i)
	}
	sort.Slice(sa, func(a, b int) bool {
		return bytes.Compare(text[sa[a]:], text[sa[b]:]) < 0
	})
	return sa
}

func equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildKnown(t *testing.T) {
	cases := []struct {
		text string
		want []int32
	}{
		{"", []int32{}},
		{"A", []int32{0}},
		{"BA", []int32{1, 0}},
		{"AB", []int32{0, 1}},
		{"AAAA", []int32{3, 2, 1, 0}},
		{"banana", []int32{5, 3, 1, 0, 4, 2}},
		{"mississippi", []int32{10, 7, 4, 1, 0, 9, 8, 6, 3, 5, 2}},
		{"GCTAGC", []int32{3, 5, 1, 4, 0, 2}}, // the paper's running example text
	}
	for _, tc := range cases {
		got := Build([]byte(tc.text))
		if !equal(got, tc.want) {
			t.Errorf("Build(%q) = %v, want %v", tc.text, got, tc.want)
		}
	}
}

func TestBuildMatchesNaiveDNA(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	letters := []byte("ACGT")
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		text := make([]byte, n)
		for i := range text {
			text[i] = letters[rng.Intn(4)]
		}
		got, want := Build(text), naive(text)
		if !equal(got, want) {
			t.Fatalf("trial %d text %q:\n got %v\nwant %v", trial, text, got, want)
		}
	}
}

func TestBuildMatchesNaiveSmallAlphabet(t *testing.T) {
	// Tiny alphabets maximise LMS-substring collisions, stressing the
	// recursive renaming step.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(200)
		text := make([]byte, n)
		for i := range text {
			text[i] = byte('a' + rng.Intn(2))
		}
		got, want := Build(text), naive(text)
		if !equal(got, want) {
			t.Fatalf("trial %d text %q:\n got %v\nwant %v", trial, text, got, want)
		}
	}
}

func TestBuildMatchesNaiveFullByteRange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(150)
		text := make([]byte, n)
		rng.Read(text)
		got, want := Build(text), naive(text)
		if !equal(got, want) {
			t.Fatalf("trial %d text %v:\n got %v\nwant %v", trial, text, got, want)
		}
	}
}

func TestBuildRuns(t *testing.T) {
	// Long runs and periodic strings are classic SA-IS edge cases.
	for _, text := range []string{
		"aaaaaaaaaaaaaaaaaaaab",
		"baaaaaaaaaaaaaaaaaaaa",
		"abababababababababab",
		"abaabaaabaaaabaaaaab",
		"zyxwvutsrqponmlkjihgfedcba",
		"abcabcabcabcabcabc",
	} {
		got, want := Build([]byte(text)), naive([]byte(text))
		if !equal(got, want) {
			t.Errorf("Build(%q) = %v, want %v", text, got, want)
		}
	}
}

func TestBuildQuick(t *testing.T) {
	f := func(text []byte) bool {
		if len(text) > 500 {
			text = text[:500]
		}
		return equal(Build(text), naive(text))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestBuildIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	text := make([]byte, 10000)
	letters := []byte("ACGT")
	for i := range text {
		text[i] = letters[rng.Intn(4)]
	}
	sa := Build(text)
	seen := make([]bool, len(text))
	for _, v := range sa {
		if v < 0 || int(v) >= len(text) || seen[v] {
			t.Fatalf("sa is not a permutation: value %d", v)
		}
		seen[v] = true
	}
	// Spot-check sortedness with direct comparisons.
	for i := 0; i+1 < len(sa); i += 97 {
		if bytes.Compare(text[sa[i]:], text[sa[i+1]:]) >= 0 {
			t.Fatalf("sa not sorted at %d", i)
		}
	}
}

func BenchmarkBuild1M(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	text := make([]byte, 1<<20)
	letters := []byte("ACGT")
	for i := range text {
		text[i] = letters[rng.Intn(4)]
	}
	b.ResetTimer()
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		Build(text)
	}
}
