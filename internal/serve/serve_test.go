package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	alae "repro"
)

// The fault-injection suite: every test here wounds the serving path
// in a specific way — an expired deadline mid-search, a panicking
// handler, a corrupt store file at reload, a slow-reading client, an
// overload burst, a drain with requests in flight — and asserts the
// daemon degrades (an error response, a counter, a kept-old-store)
// without ever crashing or deadlocking.

// testStore builds a small random-DNA store. Deterministic per seed.
func testStore(t *testing.T, members, memberLen, shards int, cacheSize int) *alae.Store {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	letters := []byte("ACGT")
	records := make([]alae.SeqRecord, members)
	for i := range records {
		s := make([]byte, memberLen)
		for j := range s {
			s[j] = letters[rng.Intn(4)]
		}
		records[i] = alae.SeqRecord{Name: fmt.Sprintf("m%d", i), Seq: s}
	}
	st, err := alae.NewStore(records, alae.StoreOptions{Shards: shards, QueryCacheSize: cacheSize})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = testStore(t, 4, 3000, 2, 0)
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// postSearch POSTs one search request and decodes the response.
func postSearch(t *testing.T, url string, req SearchRequest) (int, *SearchResponse, map[string]string) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var sr SearchResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatalf("decoding /search response: %v", err)
		}
		return resp.StatusCode, &sr, nil
	}
	var errBody map[string]string
	json.NewDecoder(resp.Body).Decode(&errBody)
	return resp.StatusCode, nil, errBody
}

func TestServeSearchAndStats(t *testing.T) {
	srv := testServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A member's own prefix must hit.
	query := string(srv.Store().SampleQuery(200))
	code, res, _ := postSearch(t, ts.URL, SearchRequest{Query: query})
	if code != http.StatusOK {
		t.Fatalf("search returned %d", code)
	}
	if res.TotalHits == 0 {
		t.Fatal("a member-prefix query returned no hits")
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz returned %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.OK != 1 || stats.Admitted != 1 {
		t.Fatalf("stats counted ok=%d admitted=%d, want 1/1", stats.OK, stats.Admitted)
	}
	if stats.StoreShards != 2 {
		t.Fatalf("stats store shards %d, want 2", stats.StoreShards)
	}
}

// TestServeBadRequests: malformed and invalid inputs answer 4xx with a
// JSON error, never 5xx.
func TestServeBadRequests(t *testing.T) {
	srv := testServer(t, Config{MaxQueryLen: 512})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"empty body":     {"", http.StatusBadRequest},
		"not json":       {"ACGTACGT", http.StatusBadRequest},
		"no query":       {"{}", http.StatusBadRequest},
		"separator byte": {`{"query":"ACGT#ACGT"}`, http.StatusBadRequest},
		"oversized":      {`{"query":"` + strings.Repeat("A", 600) + `"}`, http.StatusBadRequest},
		"short query":    {`{"query":"A"}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/search", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: got %d, want %d", name, resp.StatusCode, tc.want)
		}
	}
	if n := srv.nPanics.Load(); n != 0 {
		t.Fatalf("bad requests caused %d panics", n)
	}
}

// TestServeDeadlineExpiry: a deadline that lands mid-search answers
// 504 — and the abort is real, bounded by the core's entry budget, so
// the lane frees without finishing the traversal.
func TestServeDeadlineExpiry(t *testing.T) {
	store := testStore(t, 4, 15_000, 2, -1) // big enough that a search outlives 1ms
	srv := testServer(t, Config{Store: store})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	query := string(store.SampleQuery(1200))
	code, _, errBody := postSearch(t, ts.URL, SearchRequest{Query: query, TimeoutMS: 1})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("1ms-deadline search returned %d (%v), want 504", code, errBody)
	}
	if n := srv.nTimeouts.Load(); n != 1 {
		t.Fatalf("timeout counter is %d, want 1", n)
	}

	// The daemon keeps serving: the same query without the deadline
	// completes.
	code, res, _ := postSearch(t, ts.URL, SearchRequest{Query: query})
	if code != http.StatusOK || res.TotalHits == 0 {
		t.Fatalf("post-timeout search: code %d, hits %v", code, res)
	}
}

// TestServePanicIsolation: a panicking request answers 500; the daemon
// and its other lanes keep serving.
func TestServePanicIsolation(t *testing.T) {
	srv := testServer(t, Config{})
	srv.hooks.preSearch = func(query []byte) {
		if bytes.HasPrefix(query, []byte("PANIC")) {
			panic("injected request fault")
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, _, _ := postSearch(t, ts.URL, SearchRequest{Query: "PANICAAAA"})
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking request returned %d, want 500", code)
	}
	if n := srv.nPanics.Load(); n != 1 {
		t.Fatalf("panic counter is %d, want 1", n)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after a panic returned %d", resp.StatusCode)
	}
	query := string(srv.Store().SampleQuery(200))
	if code, res, _ := postSearch(t, ts.URL, SearchRequest{Query: query}); code != http.StatusOK || res.TotalHits == 0 {
		t.Fatalf("search after a panic: code %d", code)
	}
}

// TestServeOverload: with one lane held and no queue, the next request
// is rejected immediately with 429 and a Retry-After hint — and once
// the lane frees, service resumes.
func TestServeOverload(t *testing.T) {
	srv := testServer(t, Config{Lanes: 1, QueueDepth: -1, SearchTimeout: 10 * time.Second})
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.hooks.preSearch = func(query []byte) {
		if bytes.HasPrefix(query, []byte("SLOW")) {
			close(entered)
			<-release
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postSearch(t, ts.URL, SearchRequest{Query: "SLOWAAAAA"})
	}()
	<-entered // the one lane is held

	body, _ := json.Marshal(SearchRequest{Query: string(srv.Store().SampleQuery(100))})
	resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded search returned %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without a Retry-After header")
	}
	if n := srv.nRejected.Load(); n != 1 {
		t.Fatalf("rejected counter is %d, want 1", n)
	}

	close(release)
	wg.Wait()
	if code, _, _ := postSearch(t, ts.URL, SearchRequest{Query: string(srv.Store().SampleQuery(100))}); code != http.StatusOK {
		t.Fatalf("search after the burst returned %d", code)
	}
}

// TestServeQueue: with a queue, a request beyond the lanes waits for a
// free lane instead of being rejected, and completes.
func TestServeQueue(t *testing.T) {
	srv := testServer(t, Config{Lanes: 1, QueueDepth: 4})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.hooks.preSearch = func(query []byte) {
		if bytes.HasPrefix(query, []byte("SLOW")) {
			once.Do(func() { close(entered) })
			<-release
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postSearch(t, ts.URL, SearchRequest{Query: "SLOWAAAAA"})
	}()
	<-entered

	codeCh := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		code, _, _ := postSearch(t, ts.URL, SearchRequest{Query: string(srv.Store().SampleQuery(100))})
		codeCh <- code
	}()
	// Give the queued request time to join the queue, then free the
	// lane; the queued request must then run and succeed.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if code := <-codeCh; code != http.StatusOK {
		t.Fatalf("queued search returned %d, want 200", code)
	}
}

// TestServeDrain: the drain refuses new work, flips healthz, waits for
// the in-flight search, and completes it successfully.
func TestServeDrain(t *testing.T) {
	srv := testServer(t, Config{Lanes: 2})
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.hooks.preSearch = func(query []byte) {
		if bytes.HasPrefix(query, []byte("SLOW")) {
			close(entered)
			<-release
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	codeCh := make(chan int, 1)
	go func() {
		code, _, _ := postSearch(t, ts.URL, SearchRequest{Query: "SLOWAAAAA"})
		codeCh <- code
	}()
	<-entered // one search in flight

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(t.Context()) }()

	// Drain must be observable quickly: healthz 503, new searches 503.
	deadline := time.Now().Add(2 * time.Second)
	for !srv.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining returned %d, want 503", resp.StatusCode)
	}
	if code, _, _ := postSearch(t, ts.URL, SearchRequest{Query: "ACGTACGTACGT"}); code != http.StatusServiceUnavailable {
		t.Fatalf("search while draining returned %d, want 503", code)
	}

	// The drain must wait for the in-flight search...
	select {
	case err := <-drained:
		t.Fatalf("drain returned (%v) with a search still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	// ...and finish once it completes — with the in-flight search
	// having been answered normally.
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	if code := <-codeCh; code != http.StatusOK {
		t.Fatalf("in-flight search during drain returned %d, want 200", code)
	}
}

// TestServeCorruptReload: the reload job swaps in a good store and
// keeps the old one on every flavour of corrupt file.
func TestServeCorruptReload(t *testing.T) {
	store := testStore(t, 4, 2000, 2, 0)
	srv := testServer(t, Config{Store: store})
	path := filepath.Join(t.TempDir(), "db.alae")
	if err := store.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	job := &ReloadJob{Server: srv, Path: path, Every: time.Hour}
	srv.AddJob(job)

	// A good file swaps the store pointer.
	before := srv.Store()
	if err := srv.RunJobOnce(t.Context(), "reload"); err != nil {
		t.Fatalf("reload of a good store failed: %v", err)
	}
	good := srv.Store()
	if good == before {
		t.Fatal("reload did not swap the store")
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		if err := os.WriteFile(path, mutate(append([]byte(nil), raw...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := srv.RunJobOnce(t.Context(), "reload"); err == nil {
			t.Fatalf("%s: reload of a corrupt store succeeded", name)
		}
		if srv.Store() != good {
			t.Fatalf("%s: corrupt reload replaced the serving store", name)
		}
	}
	corrupt("truncated", func(b []byte) []byte { return b[:len(b)/3] })
	corrupt("bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b })
	corrupt("flipped payload bit", func(b []byte) []byte { b[len(b)-len(b)/4] ^= 0x40; return b })
	corrupt("empty", func(b []byte) []byte { return nil })

	// The failures are visible in the job's counters, and the old store
	// still answers searches.
	var status JobStatus
	for _, js := range srv.JobStatuses() {
		if js.Name == "reload" {
			status = js
		}
	}
	if status.Runs != 5 || status.Failures != 4 || status.LastError == "" {
		t.Fatalf("reload status = %+v, want 5 runs / 4 failures with a last error", status)
	}
	res, err := srv.Store().Search(srv.Store().SampleQuery(100), srv.cfg.Options)
	if err != nil || len(res.Hits) == 0 {
		t.Fatalf("store after corrupt reloads cannot search: %v", err)
	}
}

// TestServeReloadStampSkip: on a directory-backed store the reload
// job watches the MANIFEST's mutation stamp — an unchanged stamp skips
// the reload entirely (the serving store pointer survives), and a
// mutation published by another process (stamp advance) triggers a
// real swap that serves the new member.
func TestServeReloadStampSkip(t *testing.T) {
	store := testStore(t, 4, 2000, 2, 0)
	dir := filepath.Join(t.TempDir(), "db")
	if err := store.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	srv := testServer(t, Config{Store: store})
	job := &ReloadJob{Server: srv, Path: dir, Every: time.Hour}
	srv.AddJob(job)

	// The serving store already carries the directory's stamp: the job
	// must skip the load and keep the exact store pointer.
	before := srv.Store()
	for i := 0; i < 3; i++ {
		if err := srv.RunJobOnce(t.Context(), "reload"); err != nil {
			t.Fatalf("reload over an unchanged manifest failed: %v", err)
		}
		if srv.Store() != before {
			t.Fatal("reload swapped the store although the manifest stamp was unchanged")
		}
	}

	// The rebuild process publishes a mutation through its own handle
	// on the same directory: the stamp advances, the next run reloads.
	other, err := alae.LoadStoreFile(dir, alae.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	extra := alae.SeqRecord{Name: "extra", Seq: bytes.Repeat([]byte("ACGT"), 50)}
	if err := other.Append([]alae.SeqRecord{extra}); err != nil {
		t.Fatal(err)
	}
	if err := srv.RunJobOnce(t.Context(), "reload"); err != nil {
		t.Fatalf("reload after a published mutation failed: %v", err)
	}
	after := srv.Store()
	if after == before {
		t.Fatal("reload did not swap the store after the manifest stamp advanced")
	}
	if after.Sequences().Len() != before.Sequences().Len()+1 {
		t.Fatalf("reloaded store has %d members, want %d", after.Sequences().Len(), before.Sequences().Len()+1)
	}
	if after.Stamp() != other.Stamp() {
		t.Fatalf("reloaded store stamp %d, directory stamp %d", after.Stamp(), other.Stamp())
	}

	// And the swap settles: the next run skips again.
	if err := srv.RunJobOnce(t.Context(), "reload"); err != nil {
		t.Fatal(err)
	}
	if srv.Store() != after {
		t.Fatal("reload swapped the store again without a stamp change")
	}
}

// TestServeJobPanicIsolated: a panicking job run is counted as a
// failure, not a crash.
func TestServeJobPanicIsolated(t *testing.T) {
	srv := testServer(t, Config{})
	srv.AddJob(&panicJob{})
	if err := srv.RunJobOnce(t.Context(), "panic-job"); err == nil {
		t.Fatal("panicking job reported success")
	}
	st := srv.JobStatuses()[0]
	if st.Failures != 1 || !strings.Contains(st.LastError, "injected job fault") {
		t.Fatalf("panicking job status = %+v", st)
	}
}

type panicJob struct{}

func (*panicJob) Name() string            { return "panic-job" }
func (*panicJob) Interval() time.Duration { return time.Hour }
func (*panicJob) Run(context.Context) error {
	panic("injected job fault")
}

// TestServeSweepAndProbeJobs: the cache sweep sheds pressure and the
// self-probe passes against a healthy store.
func TestServeSweepAndProbeJobs(t *testing.T) {
	store := testStore(t, 4, 3000, 2, 64)
	srv := testServer(t, Config{Store: store})
	srv.AddJob(&SweepJob{Server: srv, MaxCachedHits: 0, Every: time.Hour})
	srv.AddJob(&ProbeJob{Server: srv, QueryLen: 100, Every: time.Hour})

	// Populate the cache, then sweep it empty (budget 0).
	if _, err := store.Search(store.SampleQuery(100), srv.cfg.Options); err != nil {
		t.Fatal(err)
	}
	if results, _ := store.QueryCachePressure(); results == 0 {
		t.Fatal("search did not populate the query cache")
	}
	if err := srv.RunJobOnce(t.Context(), "cache-sweep"); err != nil {
		t.Fatal(err)
	}
	if results, hits := store.QueryCachePressure(); results != 0 || hits != 0 {
		t.Fatalf("after the sweep the cache still pins %d results / %d hits", results, hits)
	}

	if err := srv.RunJobOnce(t.Context(), "probe"); err != nil {
		t.Fatalf("self-probe failed on a healthy store: %v", err)
	}
}

// TestServeSlowClient: a client that connects and never finishes its
// request headers is cut off by the server's read-header deadline
// instead of occupying a connection forever, and normal clients are
// unaffected.
func TestServeSlowClient(t *testing.T) {
	srv := testServer(t, Config{})
	hs := srv.HTTPServer("127.0.0.1:0")
	if hs.ReadHeaderTimeout <= 0 {
		t.Fatal("HTTPServer has no read-header deadline")
	}
	hs.ReadHeaderTimeout = 150 * time.Millisecond // scaled down for the test
	ln, err := net.Listen("tcp", hs.Addr)
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	defer hs.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a request line, then silence: the server must hang up.
	if _, err := conn.Write([]byte("POST /search HTTP/1.1\r\nHost: x\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server answered a half-sent request")
	}

	// A well-behaved client on the same server still gets served.
	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after a slow client returned %d", resp.StatusCode)
	}
}

// postSearchAs is postSearch with an X-API-Key header, for the
// per-client fairness tests.
func postSearchAs(t *testing.T, url, apiKey string, req SearchRequest) (int, http.Header) {
	t.Helper()
	body, _ := json.Marshal(req)
	httpReq, err := http.NewRequest(http.MethodPost, url+"/search", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if apiKey != "" {
		httpReq.Header.Set("X-API-Key", apiKey)
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header
}

// TestServePerClientCap: one client at its concurrency cap is rejected
// with 429 + Retry-After WITHOUT consuming global lanes, other clients
// keep being served, and the cap releases when the client's search
// finishes.
func TestServePerClientCap(t *testing.T) {
	srv := testServer(t, Config{Lanes: 4, PerClientLanes: 1, SearchTimeout: 10 * time.Second})
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.hooks.preSearch = func(query []byte) {
		if bytes.HasPrefix(query, []byte("SLOW")) {
			close(entered)
			<-release
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	probe := string(srv.Store().SampleQuery(100))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postSearchAs(t, ts.URL, "greedy", SearchRequest{Query: "SLOWAAAAA"})
	}()
	<-entered // "greedy" now holds its one allowed slot

	code, hdr := postSearchAs(t, ts.URL, "greedy", SearchRequest{Query: probe})
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-cap client got %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("per-client 429 without a Retry-After header")
	}
	if n := srv.nClientRejected.Load(); n != 1 {
		t.Fatalf("client_rejected counter is %d, want 1", n)
	}
	if n := srv.nRejected.Load(); n != 0 {
		t.Fatalf("per-client rejection leaked into the global rejected counter (%d)", n)
	}

	// A DIFFERENT client is untouched by greedy's cap: 3 of 4 global
	// lanes are still free.
	if code, _ := postSearchAs(t, ts.URL, "patient", SearchRequest{Query: probe}); code != http.StatusOK {
		t.Fatalf("other client got %d while greedy was capped", code)
	}

	close(release)
	wg.Wait()
	// Greedy's slot is released with its search: it can search again.
	if code, _ := postSearchAs(t, ts.URL, "greedy", SearchRequest{Query: probe}); code != http.StatusOK {
		t.Fatalf("capped client still rejected after its search finished: %d", code)
	}
	srv.clientMu.Lock()
	leaked := len(srv.clientActive)
	srv.clientMu.Unlock()
	if leaked != 0 {
		t.Fatalf("client accounting map leaked %d entries", leaked)
	}
}

// TestServePerClientRateLimit: a client burning through its token
// bucket is rejected with 429 and a Retry-After hint, other clients
// and the concurrency counters are untouched, and the bucket refills
// with the (injected) clock — both gradually and back to a full burst.
func TestServePerClientRateLimit(t *testing.T) {
	srv := testServer(t, Config{Lanes: 4, PerClientRate: 3, PerClientWindow: time.Second})
	clock := time.Now()
	srv.hooks.now = func() time.Time { return clock }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	probe := string(srv.Store().SampleQuery(100))

	// The full burst is admitted; the next request inside the window
	// is rejected with the sharper next-token Retry-After hint.
	for i := 0; i < 3; i++ {
		if code, _ := postSearchAs(t, ts.URL, "burst", SearchRequest{Query: probe}); code != http.StatusOK {
			t.Fatalf("request %d of the burst got %d, want 200", i, code)
		}
	}
	code, hdr := postSearchAs(t, ts.URL, "burst", SearchRequest{Query: probe})
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-rate request got %d, want 429", code)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("rate-limit 429 Retry-After = %q, want a positive integer", hdr.Get("Retry-After"))
	}
	if n := srv.nRateLimited.Load(); n != 1 {
		t.Fatalf("rate_limited counter is %d, want 1", n)
	}
	if n := srv.nClientRejected.Load() + srv.nRejected.Load(); n != 0 {
		t.Fatalf("rate rejection leaked into the concurrency counters (%d)", n)
	}

	// A different client has its own bucket.
	if code, _ := postSearchAs(t, ts.URL, "other", SearchRequest{Query: probe}); code != http.StatusOK {
		t.Fatalf("other client got %d while burst was limited", code)
	}

	// A third of the window refills exactly one token...
	clock = clock.Add(time.Second / 3)
	if code, _ := postSearchAs(t, ts.URL, "burst", SearchRequest{Query: probe}); code != http.StatusOK {
		t.Fatalf("request after a one-token refill got %d, want 200", code)
	}
	if code, _ := postSearchAs(t, ts.URL, "burst", SearchRequest{Query: probe}); code != http.StatusTooManyRequests {
		t.Fatalf("second request after a one-token refill got %d, want 429", code)
	}

	// ...and a full idle window restores the whole burst.
	clock = clock.Add(2 * time.Second)
	for i := 0; i < 3; i++ {
		if code, _ := postSearchAs(t, ts.URL, "burst", SearchRequest{Query: probe}); code != http.StatusOK {
			t.Fatalf("request %d after a full refill got %d, want 200", i, code)
		}
	}

	// /stats reports the rejections.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.RateLimited != 2 {
		t.Fatalf("/stats rate_limited = %d, want 2", sr.RateLimited)
	}
}

// TestServeCompactJob: the compaction job folds an appended-and-
// deleted store back to one clean generation on the serving path, and
// /stats reports the generational state before and after.
func TestServeCompactJob(t *testing.T) {
	store := testStore(t, 4, 2000, 2, 64)
	srv := testServer(t, Config{Store: store})
	srv.AddJob(&CompactJob{Server: srv, Every: time.Hour})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := store.Append([]alae.SeqRecord{{Name: "late", Seq: bytes.Repeat([]byte("ACGT"), 300)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Delete("m1"); err != nil {
		t.Fatal(err)
	}
	stats := func() StatsResponse {
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sr StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}
	before := stats()
	if before.StoreGenerations != 2 || before.StoreTombstones != 1 {
		t.Fatalf("/stats before compaction: %d generations / %d tombstones, want 2 / 1",
			before.StoreGenerations, before.StoreTombstones)
	}
	if err := srv.RunJobOnce(t.Context(), "compact"); err != nil {
		t.Fatal(err)
	}
	after := stats()
	if after.StoreGenerations != 1 || after.StoreTombstones != 0 {
		t.Fatalf("/stats after compaction: %d generations / %d tombstones, want 1 / 0",
			after.StoreGenerations, after.StoreTombstones)
	}
	if after.StoreStamp <= before.StoreStamp {
		t.Fatalf("compaction did not advance the stamp (%d -> %d)", before.StoreStamp, after.StoreStamp)
	}
	// The appended member serves, the deleted one does not.
	code, res, _ := postSearch(t, ts.URL, SearchRequest{Query: "ACGT" + strings.Repeat("ACGT", 40), Threshold: 120})
	if code != http.StatusOK {
		t.Fatalf("post-compaction search returned %d", code)
	}
	for _, h := range res.Hits {
		if h.Name == "m1" {
			t.Fatal("deleted member still serving after compaction")
		}
	}
}
