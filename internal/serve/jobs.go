package serve

import (
	"context"
	"fmt"
	"os"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	alae "repro"
)

// The scheduled-job runner: background maintenance that a serving
// daemon needs but that must never be able to take the daemon down.
// Each job runs on its own ticker goroutine; a run that returns an
// error is counted and logged (the next tick retries), and a run that
// PANICS is recovered to an error — a bad store file or a bug in a
// sweep degrades that job, not the process. Jobs stop with the drain.

// Job is one scheduled maintenance task.
type Job interface {
	// Name labels the job in /stats and logs.
	Name() string
	// Interval is the tick period; runs are skipped, not stacked, when
	// a run overlaps its next tick.
	Interval() time.Duration
	// Run does one unit of work under ctx; ctx dies when the server
	// drains, so long runs should honour it.
	Run(ctx context.Context) error
}

// JobStatus is one job's counters, reported by /stats.
type JobStatus struct {
	Name       string  `json:"name"`
	Runs       int64   `json:"runs"`
	Failures   int64   `json:"failures"`
	LastError  string  `json:"last_error,omitempty"`
	LastMS     float64 `json:"last_ms"`
	IntervalMS float64 `json:"interval_ms"`
}

type jobState struct {
	job      Job
	runs     atomic.Int64
	failures atomic.Int64
	lastMS   atomic.Int64 // microseconds, reported as ms

	mu      sync.Mutex
	lastErr string
}

// AddJob registers a job. Must be called before StartJobs.
func (s *Server) AddJob(j Job) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	s.jobs = append(s.jobs, &jobState{job: j})
}

// StartJobs launches one ticker goroutine per registered job. The
// goroutines stop when StopJobs runs (Drain calls it). Idempotent.
func (s *Server) StartJobs() {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	if s.jobsCtx != nil {
		return
	}
	s.jobsCtx, s.jobsStop = context.WithCancel(context.Background())
	for _, js := range s.jobs {
		go s.runJob(s.jobsCtx, js)
	}
}

// StopJobs cancels every job goroutine's context. Idempotent.
func (s *Server) StopJobs() {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	if s.jobsStop != nil {
		s.jobsStop()
	}
}

// RunJobOnce drives one registered job synchronously (tests and the
// -probe-now startup check): the same panic isolation as the ticker
// path, returning the run's error.
func (s *Server) RunJobOnce(ctx context.Context, name string) error {
	s.jobsMu.Lock()
	var target *jobState
	for _, js := range s.jobs {
		if js.job.Name() == name {
			target = js
			break
		}
	}
	s.jobsMu.Unlock()
	if target == nil {
		return fmt.Errorf("serve: no job named %q", name)
	}
	return s.runOnce(ctx, target)
}

// JobStatuses snapshots every job's counters for /stats.
func (s *Server) JobStatuses() []JobStatus {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	out := make([]JobStatus, len(s.jobs))
	for i, js := range s.jobs {
		js.mu.Lock()
		lastErr := js.lastErr
		js.mu.Unlock()
		out[i] = JobStatus{
			Name:       js.job.Name(),
			Runs:       js.runs.Load(),
			Failures:   js.failures.Load(),
			LastError:  lastErr,
			LastMS:     float64(js.lastMS.Load()) / 1000,
			IntervalMS: float64(js.job.Interval().Milliseconds()),
		}
	}
	return out
}

func (s *Server) runJob(ctx context.Context, js *jobState) {
	t := time.NewTicker(js.job.Interval())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := s.runOnce(ctx, js); err != nil {
				s.logf("serve: job %s: %v", js.job.Name(), err)
			}
		}
	}
}

// runOnce is one isolated job run: panics become errors, and every
// outcome lands in the job's counters.
func (s *Server) runOnce(ctx context.Context, js *jobState) (err error) {
	begin := time.Now()
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v\n%s", p, debug.Stack())
		}
		js.runs.Add(1)
		js.lastMS.Store(time.Since(begin).Microseconds())
		if err != nil {
			js.failures.Add(1)
			js.mu.Lock()
			js.lastErr = err.Error()
			js.mu.Unlock()
		} else {
			js.mu.Lock()
			js.lastErr = ""
			js.mu.Unlock()
		}
	}()
	return js.job.Run(ctx)
}

// ---------------------------------------------------------------------
// The standard jobs a serving daemon runs.

// ReloadJob re-reads the store from disk and swaps it in atomically.
// This is how a daemon picks up a rebuilt database without restarting:
// alae's SaveFile publishes by atomic rename, so the file here is
// always a complete store — and if it is nonetheless corrupt (torn by
// a non-atomic copy, truncated by a full disk), the load fails, the
// failure is counted, and the daemon KEEPS SERVING THE OLD STORE.
//
// When Path is a generation directory, the job first reads only the
// MANIFEST's mutation stamp (alae.StoreDirStamp): the manifest rename
// is the commit point of every mutation, so a stamp equal to the
// serving store's means nothing changed and the expensive reload is
// skipped. Single-file stores carry no separately readable stamp and
// reload unconditionally.
type ReloadJob struct {
	Server *Server
	Path   string
	Opts   alae.StoreOptions
	Every  time.Duration
}

func (j *ReloadJob) Name() string            { return "reload" }
func (j *ReloadJob) Interval() time.Duration { return j.Every }
func (j *ReloadJob) Run(ctx context.Context) error {
	if fi, err := os.Stat(j.Path); err == nil && fi.IsDir() {
		stamp, err := alae.StoreDirStamp(j.Path)
		if err != nil {
			return fmt.Errorf("keeping the previous store: %w", err)
		}
		if cur := j.Server.Store(); cur != nil && cur.Stamp() == stamp {
			return nil
		}
	}
	st, err := alae.LoadStoreFile(j.Path, j.Opts)
	if err != nil {
		return fmt.Errorf("keeping the previous store: %w", err)
	}
	j.Server.store.Store(st)
	return nil
}

// SweepJob bounds the query cache's footprint between requests: when
// the cache pins more than MaxCachedHits hits, the coldest results are
// shed (CLOCK order) until it fits. Serving keeps its hot set; the
// long tail of one-off large results stops accumulating.
type SweepJob struct {
	Server        *Server
	MaxCachedHits int64
	Every         time.Duration
}

func (j *SweepJob) Name() string            { return "cache-sweep" }
func (j *SweepJob) Interval() time.Duration { return j.Every }
func (j *SweepJob) Run(ctx context.Context) error {
	st := j.Server.Store()
	if _, hits := st.QueryCachePressure(); hits > j.MaxCachedHits {
		evicted := st.ShedQueryCache(j.MaxCachedHits)
		j.Server.logf("serve: cache-sweep evicted %d cached results (over %d pinned hits)", evicted, j.MaxCachedHits)
	}
	return nil
}

// CompactJob runs the generational store's compaction on a schedule:
// appended generations fold together and tombstoned members' bytes are
// purged (see alae.Store.Compact). A pass with nothing to merge is a
// cheap no-op, so a short interval is safe; on a directory-backed
// store each pass persists crash-safely before it is visible.
type CompactJob struct {
	Server *Server
	Every  time.Duration
}

func (j *CompactJob) Name() string            { return "compact" }
func (j *CompactJob) Interval() time.Duration { return j.Every }
func (j *CompactJob) Run(ctx context.Context) error {
	st := j.Server.Store()
	stats, err := st.Compact()
	if err != nil {
		return fmt.Errorf("compaction failed (store unchanged): %w", err)
	}
	if stats.Before != stats.After || stats.PurgedMembers > 0 {
		j.Server.logf("serve: compact merged %d generations into %d, purged %d members (%d bytes)",
			stats.Before, stats.After, stats.PurgedMembers, stats.PurgedBytes)
	}
	return nil
}

// ProbeJob is the bench self-probe: it searches the serving path with
// a query sampled from the store's own data (a member prefix, which
// must hit) and fails if the answer comes back empty or slow. A
// failing probe in /stats is the early signal that serving — not the
// data — has degraded.
type ProbeJob struct {
	Server   *Server
	QueryLen int           // sampled prefix length; 0 means 64
	Timeout  time.Duration // per-probe deadline; 0 means 30s
	Every    time.Duration
}

func (j *ProbeJob) Name() string            { return "probe" }
func (j *ProbeJob) Interval() time.Duration { return j.Every }
func (j *ProbeJob) Run(ctx context.Context) error {
	n := j.QueryLen
	if n <= 0 {
		n = 64
	}
	timeout := j.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	st := j.Server.Store()
	query := st.SampleQuery(n)
	if len(query) == 0 {
		return fmt.Errorf("store has no bytes to sample a probe query from")
	}
	begin := time.Now()
	res, err := st.SearchContext(ctx, query, j.Server.cfg.Options)
	if err != nil {
		return fmt.Errorf("probe search failed after %s: %w", time.Since(begin).Round(time.Millisecond), err)
	}
	if len(res.Hits) == 0 {
		// A member's own prefix always aligns to itself above any sane
		// threshold; an empty answer means the pipeline is broken.
		return fmt.Errorf("probe query (a member prefix of length %d) returned no hits at threshold %d", len(query), res.Threshold)
	}
	return nil
}
