// Package serve is the HTTP/JSON serving daemon over a sharded
// alae.Store: the layer that turns the library's exact-search core
// into a process that survives production traffic. Its job is
// graceful degradation — every failure mode an open port invites
// (deadline expiry mid-search, disconnecting clients, overload bursts,
// panicking requests, a corrupt store file appearing mid-reload) must
// degrade to an error response or a skipped background run, never to
// a crash or an unbounded queue.
//
// The degradation model, layer by layer:
//
//   - Admission control. Concurrent searches are bounded by a fixed
//     number of lanes (default GOMAXPROCS) — each admitted request
//     holds one lane token, which maps one-to-one onto a pooled
//     StoreSession's scatter. Behind the lanes sits a bounded wait
//     queue; a request that finds both full is rejected immediately
//     with 429 and a Retry-After hint, so overload sheds load at the
//     door instead of stacking goroutines until memory runs out.
//
//   - Cancellation. Every search runs under the request's context
//     plus the configured per-search deadline, plumbed down into the
//     core traversal loops (core's entry-budget checkpoints), so a
//     slow query or a gone client stops burning CPU within a bounded
//     number of DP entries. Deadline expiry maps to 504, a client
//     disconnect to a logged abort.
//
//   - Isolation. Each request handler runs under its own recover():
//     a panic becomes a 500 and a counter increment; the daemon and
//     its other lanes keep serving.
//
//   - Lifecycle. SIGTERM (wired in cmd/alae-serve) starts a drain:
//     /healthz flips to 503 so load balancers stop routing here, new
//     searches are refused, in-flight searches finish, then the
//     process exits 0. Background jobs (store reload, cache-pressure
//     sweeps, the bench self-probe) run on their own tickers with the
//     same panic isolation, and a failed job run — a corrupt store
//     file, most importantly — keeps the last good state.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	alae "repro"
)

// Config configures a Server. Store is required; everything else has
// serving defaults.
type Config struct {
	// Store is the initial store to serve. Required.
	Store *alae.Store
	// StorePath, when set, is the file the reload job re-reads the
	// store from (see Jobs); it is not read at construction.
	StorePath string
	// Options is the search configuration every request uses as its
	// base. Per-request JSON fields override Threshold and EValue only.
	Options alae.SearchOptions
	// Lanes bounds concurrent searches; 0 means GOMAXPROCS.
	Lanes int
	// QueueDepth bounds requests waiting for a lane beyond Lanes;
	// 0 means 2×Lanes, negative means no queue (reject when all lanes
	// are busy).
	QueueDepth int
	// PerClientLanes bounds the searches ONE client may have admitted
	// or queued at once, keyed by X-API-Key (when sent) or the remote
	// address; overflow is rejected immediately with 429 + Retry-After
	// before the global lanes are touched, so one greedy client cannot
	// monopolise the lane pool. 0 disables per-client fairness.
	PerClientLanes int
	// PerClientRate bounds one client's request RATE, keyed exactly
	// like PerClientLanes: each client owns a token bucket holding
	// PerClientRate tokens that refills continuously over
	// PerClientWindow, so up to PerClientRate requests are admitted in
	// any sliding window and a burst above it is rejected with 429 and
	// a Retry-After sized to the next token. 0 disables rate limiting.
	PerClientRate int
	// PerClientWindow is the refill window for PerClientRate; 0 means
	// one second.
	PerClientWindow time.Duration
	// SearchTimeout is the per-search deadline; 0 means none beyond
	// the client's own. Requests may ask for a SHORTER deadline via
	// the timeout_ms field, never a longer one.
	SearchTimeout time.Duration
	// MaxQueryLen rejects oversized queries before they reach a lane;
	// 0 means 1 MiB.
	MaxQueryLen int
	// MaxHits caps the hits returned in one response (the full count
	// is always reported); 0 means 1000, negative means unlimited.
	MaxHits int
	// Logf receives the daemon's log lines; nil means log.Printf.
	Logf func(format string, args ...any)
}

// serveHooks is the fault-injection surface: test-only observation
// points on the serving path. Production code never sets them.
type serveHooks struct {
	// preSearch runs on the request goroutine after admission, before
	// the search. Tests use it to panic (isolation), block (overload)
	// or coordinate cancellation.
	preSearch func(query []byte)
	// now replaces time.Now on the rate-limit path so tests can walk
	// the token buckets through a window deterministically.
	now func() time.Time
}

// Server is the serving daemon state. Create with New, mount Handler
// on an http.Server (or use HTTPServer), stop with Drain.
type Server struct {
	cfg   Config
	logf  func(format string, args ...any)
	store atomic.Pointer[alae.Store]

	lanes    chan struct{} // lane tokens; holding one = searching
	queueCap int64
	waiting  atomic.Int64 // requests blocked on a lane

	clientMu     sync.Mutex     // guards clientActive
	clientActive map[string]int // client key → searches admitted or queued

	rateMu      sync.Mutex             // guards rateBuckets
	rateBuckets map[string]*rateBucket // client key → token bucket

	draining atomic.Bool
	drainCh  chan struct{} // closed when the drain starts
	inflight sync.WaitGroup

	jobsMu   sync.Mutex
	jobs     []*jobState
	jobsCtx  context.Context
	jobsStop context.CancelFunc

	started time.Time

	// Counters for /stats; atomics so handlers never share locks.
	nAdmitted       atomic.Int64 // searches that got a lane
	nOK             atomic.Int64 // searches answered 200
	nRejected       atomic.Int64 // 429s (queue full)
	nClientRejected atomic.Int64 // 429s (one client over its cap)
	nRateLimited    atomic.Int64 // 429s (one client over its rate)
	nTimeouts       atomic.Int64 // 504s (deadline expired mid-search)
	nCancelled      atomic.Int64 // client gone mid-search
	nBadReq         atomic.Int64 // 400s
	nPanics         atomic.Int64 // recovered handler panics
	nErrors         atomic.Int64 // other 500s

	// Emission-path totals across answered searches: cells forwarded to
	// the collectors, duplicates the dominance filter suppressed, and
	// cells the hybrid vertical phase skipped as already forwarded by an
	// earlier branch (copy reuse).
	nEmitted    atomic.Int64
	nSuppressed atomic.Int64
	nCopied     atomic.Int64

	hooks serveHooks
}

// New builds a Server around cfg.Store. Background jobs are not
// started here — call StartJobs (cmd/alae-serve does) so tests can
// drive jobs synchronously instead.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: Config.Store is required")
	}
	if cfg.Lanes <= 0 {
		cfg.Lanes = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.QueueDepth == 0:
		cfg.QueueDepth = 2 * cfg.Lanes
	case cfg.QueueDepth < 0:
		cfg.QueueDepth = 0
	}
	if cfg.MaxQueryLen <= 0 {
		cfg.MaxQueryLen = 1 << 20
	}
	if cfg.PerClientWindow <= 0 {
		cfg.PerClientWindow = time.Second
	}
	switch {
	case cfg.MaxHits == 0:
		cfg.MaxHits = 1000
	case cfg.MaxHits < 0:
		cfg.MaxHits = int(^uint(0) >> 1)
	}
	s := &Server{
		cfg:          cfg,
		logf:         cfg.Logf,
		lanes:        make(chan struct{}, cfg.Lanes),
		queueCap:     int64(cfg.QueueDepth),
		clientActive: make(map[string]int),
		rateBuckets:  make(map[string]*rateBucket),
		drainCh:      make(chan struct{}),
		started:      time.Now(),
	}
	if s.logf == nil {
		s.logf = log.Printf
	}
	s.store.Store(cfg.Store)
	return s, nil
}

// Store returns the store currently being served (the reload job swaps
// it atomically).
func (s *Server) Store() *alae.Store { return s.store.Load() }

// Handler returns the daemon's HTTP mux: POST /search, GET /healthz,
// GET /stats.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// HTTPServer returns an http.Server serving Handler on addr with the
// timeouts a public port needs: a header-read deadline (slow-loris
// clients are cut off, not accumulated) and a write deadline sized to
// the search deadline.
func (s *Server) HTTPServer(addr string) *http.Server {
	write := 2 * time.Minute
	if s.cfg.SearchTimeout > 0 {
		write = s.cfg.SearchTimeout + 30*time.Second
	}
	return &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      write,
		IdleTimeout:       2 * time.Minute,
	}
}

// Drain performs the graceful half of shutdown: stop admitting
// searches (healthz flips to 503, /search refuses), stop the job
// runners, then wait — bounded by ctx — for in-flight searches to
// finish. The HTTP listener itself is the caller's to close
// (http.Server.Shutdown); cmd/alae-serve runs both.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.Swap(true) {
		close(s.drainCh)
	}
	s.StopJobs()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain abandoned with searches in flight: %w", ctx.Err())
	}
}

// Draining reports whether the drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// clientKey identifies one client for the per-client concurrency cap:
// the X-API-Key header when the client sends one (keys survive NAT and
// load-balancer hops; the header is however the client's own claim),
// the remote host otherwise. The two namespaces are prefixed so a key
// can never collide with an address.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return "key:" + k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "addr:" + host
}

// acquireClient charges one in-flight search to the client's cap,
// returning false when the client is already at it. The charge covers
// queue time too — a client flooding the WAIT QUEUE is exactly the
// monopolisation the cap exists to stop.
func (s *Server) acquireClient(key string) (release func(), ok bool) {
	if s.cfg.PerClientLanes <= 0 {
		return func() {}, true
	}
	s.clientMu.Lock()
	defer s.clientMu.Unlock()
	if s.clientActive[key] >= s.cfg.PerClientLanes {
		return nil, false
	}
	s.clientActive[key]++
	var once sync.Once
	return func() {
		once.Do(func() {
			s.clientMu.Lock()
			defer s.clientMu.Unlock()
			if s.clientActive[key] <= 1 {
				delete(s.clientActive, key) // keep the map from growing one entry per client ever seen
			} else {
				s.clientActive[key]--
			}
		})
	}, true
}

// rateBucket is one client's token bucket: tokens refill continuously
// at PerClientRate per PerClientWindow up to a capacity of
// PerClientRate, so the bucket admits at most PerClientRate requests
// in any sliding window while letting an idle client burst back up to
// the full allowance.
type rateBucket struct {
	tokens float64
	last   time.Time
}

// rateSweepSize bounds the bucket map: past this many clients, fully
// refilled (idle) buckets are dropped before a new one is inserted. A
// dropped bucket is indistinguishable from a fresh one, so eviction
// never grants or steals tokens.
const rateSweepSize = 4096

func (s *Server) rateNow() time.Time {
	if s.hooks.now != nil {
		return s.hooks.now()
	}
	return time.Now()
}

// allowClient charges one request to the client's rate bucket. When
// the bucket is empty it reports the wait until the next token — the
// Retry-After hint — and the request is rejected without touching the
// concurrency accounting or the lanes.
func (s *Server) allowClient(key string) (wait time.Duration, ok bool) {
	if s.cfg.PerClientRate <= 0 {
		return 0, true
	}
	burst := float64(s.cfg.PerClientRate)
	perToken := s.cfg.PerClientWindow / time.Duration(s.cfg.PerClientRate)
	now := s.rateNow()
	s.rateMu.Lock()
	defer s.rateMu.Unlock()
	b := s.rateBuckets[key]
	if b == nil {
		if len(s.rateBuckets) >= rateSweepSize {
			for k, old := range s.rateBuckets {
				if now.Sub(old.last) >= s.cfg.PerClientWindow {
					delete(s.rateBuckets, k)
				}
			}
		}
		b = &rateBucket{tokens: burst, last: now}
		s.rateBuckets[key] = b
	} else {
		b.tokens = min(burst, b.tokens+float64(now.Sub(b.last))/float64(perToken))
		b.last = now
	}
	if b.tokens < 1 {
		return time.Duration((1 - b.tokens) * float64(perToken)), false
	}
	b.tokens--
	return 0, true
}

// acquireLane admits one request: the fast path takes a free lane
// token; otherwise the request joins the bounded wait queue until a
// lane frees, the client gives up, or the drain starts. A full queue
// rejects immediately — that is the overload contract.
func (s *Server) acquireLane(ctx context.Context) (release func(), errStatus int, errMsg string) {
	select {
	case s.lanes <- struct{}{}:
	default:
		// All lanes busy: queue, bounded.
		if s.waiting.Add(1) > s.queueCap {
			s.waiting.Add(-1)
			return nil, http.StatusTooManyRequests, "all lanes busy and the wait queue is full"
		}
		defer s.waiting.Add(-1)
		select {
		case s.lanes <- struct{}{}:
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return nil, http.StatusGatewayTimeout, "deadline expired while waiting for a lane"
			}
			return nil, 499, "client went away while waiting for a lane"
		case <-s.drainCh:
			return nil, http.StatusServiceUnavailable, "server is draining"
		}
	}
	// The lane is held; in-flight from here until release.
	s.inflight.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			<-s.lanes
			s.inflight.Done()
		})
	}, 0, ""
}

// SearchRequest is the POST /search body. Query is required;
// Threshold/EValue override the server's base options for this request
// (same semantics as alae.SearchOptions: Threshold 0 derives from the
// E-value); TimeoutMS may shorten — never lengthen — the server's
// search deadline.
type SearchRequest struct {
	Query     string  `json:"query"`
	Threshold int     `json:"threshold,omitempty"`
	EValue    float64 `json:"evalue,omitempty"`
	TimeoutMS int     `json:"timeout_ms,omitempty"`
	MaxHits   int     `json:"max_hits,omitempty"`
}

// SearchHit is one hit of a /search response, in member coordinates.
type SearchHit struct {
	Name      string `json:"name"`
	Member    int    `json:"member"`
	TEnd      int    `json:"t_end"`
	LocalTEnd int    `json:"local_t_end"`
	QEnd      int    `json:"q_end"`
	Score     int    `json:"score"`
}

// SearchResponse is the POST /search response body.
type SearchResponse struct {
	Threshold int         `json:"threshold"`
	Algorithm string      `json:"algorithm"`
	TotalHits int         `json:"total_hits"`
	Truncated bool        `json:"truncated,omitempty"`
	Hits      []SearchHit `json:"hits"`
	ElapsedMS float64     `json:"elapsed_ms"`
	Cached    bool        `json:"cached,omitempty"`
}

// errorBody is every non-200 response: a JSON object, so clients parse
// one shape for both outcomes.
func (s *Server) errorBody(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		if w.Header().Get("Retry-After") == "" { // a caller may have set a sharper hint
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		}
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// retryAfterSeconds sizes the Retry-After hint from the configured
// search deadline: by then at least one lane's current occupant is
// gone. Without a deadline, a small constant.
func (s *Server) retryAfterSeconds() int {
	if s.cfg.SearchTimeout > 0 {
		secs := int((s.cfg.SearchTimeout + time.Second - 1) / time.Second)
		return max(secs, 1)
	}
	return 5
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	// Panic isolation: one bad request must not take the daemon down.
	// net/http would also recover, but silently killing the connection;
	// here the client gets a 500 and /stats counts it.
	defer func() {
		if p := recover(); p != nil {
			s.nPanics.Add(1)
			s.logf("serve: panic in /search: %v\n%s", p, debug.Stack())
			s.errorBody(w, http.StatusInternalServerError, "internal error")
		}
	}()
	if r.Method != http.MethodPost {
		s.nBadReq.Add(1)
		s.errorBody(w, http.StatusMethodNotAllowed, "POST a JSON body to /search")
		return
	}
	if s.draining.Load() {
		s.errorBody(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req SearchRequest
	body := io.LimitReader(r.Body, int64(s.cfg.MaxQueryLen)+4096)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.nBadReq.Add(1)
		s.errorBody(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Query == "" {
		s.nBadReq.Add(1)
		s.errorBody(w, http.StatusBadRequest, "query is required")
		return
	}
	if len(req.Query) > s.cfg.MaxQueryLen {
		s.nBadReq.Add(1)
		s.errorBody(w, http.StatusBadRequest,
			fmt.Sprintf("query length %d exceeds the limit %d", len(req.Query), s.cfg.MaxQueryLen))
		return
	}

	// Per-client fairness first: the rate bucket, then the concurrency
	// cap — a client over either is rejected without touching (or
	// queueing for) the shared lanes.
	key := clientKey(r)
	if wait, ok := s.allowClient(key); !ok {
		s.nRateLimited.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(max(1, int((wait+time.Second-1)/time.Second))))
		s.errorBody(w, http.StatusTooManyRequests,
			fmt.Sprintf("client rate limit (%d per %s) reached", s.cfg.PerClientRate, s.cfg.PerClientWindow))
		return
	}
	releaseClient, ok := s.acquireClient(key)
	if !ok {
		s.nClientRejected.Add(1)
		s.errorBody(w, http.StatusTooManyRequests,
			fmt.Sprintf("client concurrency limit (%d in flight) reached", s.cfg.PerClientLanes))
		return
	}
	defer releaseClient()

	release, errStatus, errMsg := s.acquireLane(r.Context())
	if release == nil {
		if errStatus == http.StatusTooManyRequests {
			s.nRejected.Add(1)
		} else if errStatus == http.StatusGatewayTimeout {
			s.nTimeouts.Add(1)
		}
		s.errorBody(w, errStatus, errMsg)
		return
	}
	defer release()
	s.nAdmitted.Add(1)

	query := []byte(req.Query)
	if s.hooks.preSearch != nil {
		s.hooks.preSearch(query)
	}

	// The search context: the client's own (disconnect aborts the
	// scatter) bounded by the server deadline, optionally shortened by
	// the request.
	ctx := r.Context()
	timeout := s.cfg.SearchTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; timeout == 0 || t < timeout {
			timeout = t
		}
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	opts := s.cfg.Options
	if req.Threshold > 0 {
		opts.Threshold, opts.EValue = req.Threshold, 0
	} else if req.EValue > 0 {
		opts.Threshold, opts.EValue = 0, req.EValue
	}

	begin := time.Now()
	res, err := s.Store().SearchContext(ctx, query, opts)
	elapsed := time.Since(begin)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.nTimeouts.Add(1)
			s.errorBody(w, http.StatusGatewayTimeout,
				fmt.Sprintf("search exceeded its deadline after %s", elapsed.Round(time.Millisecond)))
		case errors.Is(err, context.Canceled):
			// The client is gone; the write below goes nowhere, but the
			// abort itself is the point — the lane freed early.
			s.nCancelled.Add(1)
			s.errorBody(w, 499, "client closed the request")
		default:
			// Validation errors (separator bytes, short queries, bad
			// options) are the client's fault; anything else is ours.
			s.nBadReq.Add(1)
			s.errorBody(w, http.StatusBadRequest, err.Error())
		}
		return
	}

	maxHits := s.cfg.MaxHits
	if req.MaxHits > 0 && req.MaxHits < maxHits {
		maxHits = req.MaxHits
	}
	hits := res.Hits
	truncated := false
	if len(hits) > maxHits {
		hits, truncated = alae.TopKSeq(hits, maxHits), true
	}
	resp := SearchResponse{
		Threshold: res.Threshold,
		Algorithm: res.Algorithm.String(),
		TotalHits: len(res.Hits),
		Truncated: truncated,
		Hits:      make([]SearchHit, len(hits)),
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		Cached:    res.Stats.QueryCacheHits > 0,
	}
	for i, h := range hits {
		resp.Hits[i] = SearchHit{
			Name: h.Name, Member: h.Member,
			TEnd: h.TEnd, LocalTEnd: h.LocalTEnd,
			QEnd: h.QEnd, Score: h.Score,
		}
	}
	s.nOK.Add(1)
	s.nEmitted.Add(res.Stats.EmittedHits)
	s.nSuppressed.Add(res.Stats.SuppressedEmissions)
	s.nCopied.Add(res.Stats.CopiedEmissions)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&resp)
}

// handleHealthz is the load-balancer probe: 200 while serving, 503
// once the drain starts (so traffic routes away before the listener
// closes).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.errorBody(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// StatsResponse is the GET /stats body.
type StatsResponse struct {
	UptimeSec float64 `json:"uptime_sec"`
	Draining  bool    `json:"draining"`

	Lanes   int   `json:"lanes"`
	Busy    int   `json:"busy"`
	Waiting int64 `json:"waiting"`

	Admitted       int64 `json:"admitted"`
	OK             int64 `json:"ok"`
	Rejected       int64 `json:"rejected"`
	ClientRejected int64 `json:"client_rejected"`
	RateLimited    int64 `json:"rate_limited"`
	Timeouts       int64 `json:"timeouts"`
	Cancelled      int64 `json:"cancelled"`
	BadReq         int64 `json:"bad_requests"`
	Panics         int64 `json:"panics"`
	Errors         int64 `json:"errors"`

	EmittedHits         int64 `json:"emitted_hits"`
	SuppressedEmissions int64 `json:"suppressed_emissions"`
	CopiedEmissions     int64 `json:"copied_emissions"`

	StoreMembers     int    `json:"store_members"`
	StoreShards      int    `json:"store_shards"` // scatter lanes per search (a parallelism knob, not a data partition)
	StoreBytes       int    `json:"store_bytes"`
	StoreGenerations int    `json:"store_generations"`
	StoreTombstones  int    `json:"store_tombstones"`
	StoreStamp       uint64 `json:"store_stamp"`
	CacheHits        int64  `json:"cache_hits"`
	CacheMisses      int64  `json:"cache_misses"`
	CacheResults     int    `json:"cache_results"`
	CacheTotalHits   int64  `json:"cache_total_hits"`

	Jobs []JobStatus `json:"jobs,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.Store()
	ch, cm := st.QueryCacheStats()
	cr, cth := st.QueryCachePressure()
	resp := StatsResponse{
		UptimeSec: time.Since(s.started).Seconds(),
		Draining:  s.draining.Load(),
		Lanes:     cap(s.lanes),
		Busy:      len(s.lanes),
		Waiting:   s.waiting.Load(),

		Admitted:       s.nAdmitted.Load(),
		OK:             s.nOK.Load(),
		Rejected:       s.nRejected.Load(),
		ClientRejected: s.nClientRejected.Load(),
		RateLimited:    s.nRateLimited.Load(),
		Timeouts:       s.nTimeouts.Load(),
		Cancelled:      s.nCancelled.Load(),
		BadReq:         s.nBadReq.Load(),
		Panics:         s.nPanics.Load(),
		Errors:         s.nErrors.Load(),

		EmittedHits:         s.nEmitted.Load(),
		SuppressedEmissions: s.nSuppressed.Load(),
		CopiedEmissions:     s.nCopied.Load(),

		StoreMembers:     st.Sequences().Len(),
		StoreShards:      st.Shards(),
		StoreBytes:       st.Sequences().TotalLen(),
		StoreGenerations: st.Generations(),
		StoreTombstones:  st.Tombstones(),
		StoreStamp:       st.Stamp(),
		CacheHits:        ch,
		CacheMisses:      cm,
		CacheResults:     cr,
		CacheTotalHits:   cth,

		Jobs: s.JobStatuses(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&resp)
}
