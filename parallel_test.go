package alae_test

import (
	"sync"
	"testing"

	"repro"
	"repro/internal/align"
	"repro/internal/exp"
)

// TestParallelSearchIdenticalHits is the acceptance check of the
// parallel fork-family scheduler on the Table 2 workload: for both
// ALAE modes, a parallel search must produce exactly the sequential
// engine's hit set (after the collector's canonical sort) and the same
// CalculatedEntries.
func TestParallelSearchIdenticalHits(t *testing.T) {
	wl := exp.DNAWorkload(200_000, 1_000, 2, 42)
	ix := alae.NewIndex(wl.Text)
	for _, alg := range []alae.Algorithm{alae.ALAE, alae.ALAEHybrid} {
		for _, query := range wl.Queries {
			seq, err := ix.Search(query, alae.SearchOptions{Algorithm: alg, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []int{0, 4} {
				par, err := ix.Search(query, alae.SearchOptions{Algorithm: alg, Parallelism: p})
				if err != nil {
					t.Fatal(err)
				}
				if !align.EqualHits(par.Hits, seq.Hits) {
					t.Fatalf("%v parallelism %d: %d hits vs %d sequential",
						alg, p, len(par.Hits), len(seq.Hits))
				}
				if par.Stats.CalculatedEntries != seq.Stats.CalculatedEntries {
					t.Fatalf("%v parallelism %d: CalculatedEntries %d vs %d",
						alg, p, par.Stats.CalculatedEntries, seq.Stats.CalculatedEntries)
				}
			}
		}
	}
}

// TestConcurrentParallelSearches runs concurrent Search calls — each
// itself multi-worker — against one shared Index. Run under -race in
// CI, this is the data-race check for the shared trie, domination
// index, engine cache and workspace pool.
func TestConcurrentParallelSearches(t *testing.T) {
	wl := exp.DNAWorkload(30_000, 400, 6, 9)
	ix := alae.NewIndex(wl.Text)
	want, err := ix.Search(wl.Queries[0], alae.SearchOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				alg := alae.ALAE
				if (g+i)%2 == 1 {
					alg = alae.ALAEHybrid
				}
				res, err := ix.Search(wl.Queries[(g+i)%len(wl.Queries)],
					alae.SearchOptions{Algorithm: alg, Parallelism: g % 4})
				if err != nil {
					errs <- err
					return
				}
				if (g+i)%len(wl.Queries) == 0 && alg == alae.ALAE && !align.EqualHits(res.Hits, want.Hits) {
					errs <- errMismatch
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent search diverged from sequential result" }

// TestNegativeOptionsRejected pins the validation of Threshold and
// EValue: negatives must error out instead of silently falling back to
// the defaults.
func TestNegativeOptionsRejected(t *testing.T) {
	ix := alae.NewIndex([]byte("ACGTACGTACGTACGTACGT"))
	if _, err := ix.Search([]byte("ACGTACGT"), alae.SearchOptions{Threshold: -5}); err == nil {
		t.Error("negative Threshold accepted")
	}
	if _, err := ix.Search([]byte("ACGTACGT"), alae.SearchOptions{EValue: -1}); err == nil {
		t.Error("negative EValue accepted")
	}
	if _, err := ix.ResolveThreshold(8, alae.SearchOptions{Threshold: -1}); err == nil {
		t.Error("ResolveThreshold accepted a negative threshold")
	}
	if _, err := ix.ResolveThreshold(8, alae.SearchOptions{EValue: -0.5}); err == nil {
		t.Error("ResolveThreshold accepted a negative E-value")
	}
}

// TestAblationEnginesCached checks the engine cache satellite: twice
// searching with the same ablation flags must hit the same cached
// engine, which shows up as the second search reusing the lazily built
// structures (no error, identical results), and distinct flag sets
// must not interfere with the default configuration's results.
func TestAblationEnginesCached(t *testing.T) {
	wl := exp.DNAWorkload(20_000, 300, 1, 5)
	ix := alae.NewIndex(wl.Text)
	base, err := ix.Search(wl.Queries[0], alae.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []alae.SearchOptions{
		{DisableScoreFilter: true},
		{DisableLengthFilter: true},
		{DisableDomination: true},
		{DisableScoreFilter: true, DisableDomination: true},
	} {
		first, err := ix.Search(wl.Queries[0], opts)
		if err != nil {
			t.Fatal(err)
		}
		second, err := ix.Search(wl.Queries[0], opts)
		if err != nil {
			t.Fatal(err)
		}
		if !align.EqualHits(first.Hits, second.Hits) || !align.EqualHits(first.Hits, base.Hits) {
			t.Fatalf("ablation %+v: hits diverge across cached engines", opts)
		}
	}
	again, err := ix.Search(wl.Queries[0], alae.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !align.EqualHits(again.Hits, base.Hits) {
		t.Fatal("default engine results changed after ablation searches")
	}
}
