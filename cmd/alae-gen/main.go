// Command alae-gen synthesises benchmark datasets: a genome-like text
// and a set of homologous queries, written as FASTA. It is the
// stand-in for downloading GRCh37 / MGSCv37 / UniParc (see DESIGN.md).
//
// Usage:
//
//	alae-gen -kind dna -n 1000000 -m 10000 -queries 10 -out data/
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/seq"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "alae-gen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind    = flag.String("kind", "dna", "alphabet: dna or protein")
		n       = flag.Int("n", 1_000_000, "text length")
		m       = flag.Int("m", 10_000, "query length")
		queries = flag.Int("queries", 10, "number of queries")
		seed    = flag.Int64("seed", 42, "RNG seed")
		subRate = flag.Float64("sub", 0.05, "substitution rate of homologous segments")
		segLen  = flag.Int("seglen", 100, "conserved segment length")
		segGap  = flag.Int("segevery", 2500, "conserved segment spacing")
		repeats = flag.Float64("repeats", 0.08, "repeat fraction of the text")
		outDir  = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	var alphabet *seq.Alphabet
	switch *kind {
	case "dna":
		alphabet = seq.DNA
	case "protein":
		alphabet = seq.Protein
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}

	rng := rand.New(rand.NewSource(*seed))
	text := seq.RandomGenome(alphabet, seq.GenomeConfig{
		Length: *n, GC: 0.41, RepeatFraction: *repeats, RepeatMutationRate: 0.05,
	}, rng)
	qs := seq.HomologousQueries(alphabet, text, *queries, *m, *segLen, *segGap,
		seq.MutationConfig{SubstitutionRate: *subRate, IndelRate: 0.01}, rng)

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	textPath := filepath.Join(*outDir, fmt.Sprintf("%s_text_%d.fa", *kind, *n))
	if err := writeFASTA(textPath, []seq.Record{{
		Header: fmt.Sprintf("synthetic %s text n=%d seed=%d", *kind, *n, *seed),
		Seq:    text,
	}}); err != nil {
		return err
	}
	queryRecs := make([]seq.Record, len(qs))
	for i, q := range qs {
		queryRecs[i] = seq.Record{
			Header: fmt.Sprintf("query_%03d m=%d", i, *m),
			Seq:    q,
		}
	}
	queryPath := filepath.Join(*outDir, fmt.Sprintf("%s_queries_%d.fa", *kind, *m))
	if err := writeFASTA(queryPath, queryRecs); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d chars) and %s (%d queries)\n",
		textPath, len(text), queryPath, len(qs))
	return nil
}

func writeFASTA(path string, recs []seq.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return seq.WriteFASTA(f, recs, 70)
}
