// Command alae runs local-alignment searches: it indexes a FASTA text
// (a genome or a sequence database) and aligns every record of a FASTA
// query file against it, printing hits and, optionally, full
// alignments.
//
// Usage:
//
//	alae -text genome.fa -query reads.fa [flags]
//
// Flags select the engine (alae, alae-hybrid, bwtsw, blast, sw), the
// scoring scheme ⟨sa,sb,sg,ss⟩ and either a raw score threshold or an
// E-value. Exit status is non-zero on any error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/seq"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "alae:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		textPath  = flag.String("text", "", "FASTA file with the text/database sequences (required)")
		queryPath = flag.String("query", "", "FASTA file with the query sequences (required)")
		algorithm = flag.String("algorithm", "alae", "engine: alae, alae-hybrid, bwtsw, blast, sw")
		schemeStr = flag.String("scheme", "1,-3,-5,-2", "scoring scheme sa,sb,sg,ss")
		threshold = flag.Int("threshold", 0, "raw score threshold H (0 = derive from -evalue)")
		eValue    = flag.Float64("evalue", 10, "expectation value used when -threshold is 0")
		parallel  = flag.Int("p", 0, "ALAE worker goroutines per search (0 = all cores, 1 = sequential)")
		showAlign = flag.Bool("align", false, "print the best alignment per query")
		maxHits   = flag.Int("max-hits", 10, "hits printed per query (0 = all)")
		stats     = flag.Bool("stats", false, "print work statistics per query")
		saveIndex = flag.String("save-index", "", "write the built index to this file and exit")
		loadIndex = flag.String("load-index", "", "load a previously saved index instead of -text")
		strands   = flag.Bool("both-strands", false, "also search the reverse complement (DNA)")
	)
	flag.Parse()
	if *loadIndex == "" && *textPath == "" {
		flag.Usage()
		return fmt.Errorf("-text (or -load-index) is required")
	}
	if *saveIndex == "" && *queryPath == "" {
		flag.Usage()
		return fmt.Errorf("-query is required unless only building an index with -save-index")
	}

	scheme, err := parseScheme(*schemeStr)
	if err != nil {
		return err
	}
	alg, err := parseAlgorithm(*algorithm)
	if err != nil {
		return err
	}

	var ix *alae.Index
	var coll *seq.Collection
	if *loadIndex != "" {
		f, err := os.Open(*loadIndex)
		if err != nil {
			return err
		}
		defer f.Close()
		if ix, err = alae.Load(f); err != nil {
			return fmt.Errorf("loading %s: %w", *loadIndex, err)
		}
		coll = seq.NewCollection([]seq.Record{{Header: *loadIndex, Seq: ix.Text()}})
		fmt.Printf("loaded index of %d characters from %s\n", ix.Len(), *loadIndex)
	} else {
		textFile, err := os.Open(*textPath)
		if err != nil {
			return err
		}
		defer textFile.Close()
		textRecs, err := seq.ReadFASTA(textFile)
		if err != nil {
			return fmt.Errorf("reading %s: %w", *textPath, err)
		}
		if len(textRecs) == 0 {
			return fmt.Errorf("%s contains no sequences", *textPath)
		}
		coll = seq.NewCollection(textRecs)
		fmt.Printf("indexing %d sequence(s), %d characters\n", coll.Len(), len(coll.Text()))
		ix = alae.NewIndex(coll.Text())
	}
	if *saveIndex != "" {
		f, err := os.Create(*saveIndex)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := ix.Save(f); err != nil {
			return fmt.Errorf("saving index: %w", err)
		}
		fmt.Printf("index written to %s\n", *saveIndex)
		if *queryPath == "" {
			return nil
		}
	}

	queryFile, err := os.Open(*queryPath)
	if err != nil {
		return err
	}
	defer queryFile.Close()
	queryRecs, err := seq.ReadFASTA(queryFile)
	if err != nil {
		return fmt.Errorf("reading %s: %w", *queryPath, err)
	}

	for _, rec := range queryRecs {
		searchOpts := alae.SearchOptions{
			Algorithm:   alg,
			Scheme:      scheme,
			Threshold:   *threshold,
			EValue:      *eValue,
			Parallelism: *parallel,
		}
		res, err := ix.Search(rec.Seq, searchOpts)
		if err != nil {
			return fmt.Errorf("query %s: %w", rec.Header, err)
		}
		if *strands {
			sh, err := ix.SearchBothStrands(rec.Seq, searchOpts)
			if err != nil {
				return fmt.Errorf("query %s (both strands): %w", rec.Header, err)
			}
			reverse := 0
			for _, h := range sh {
				if h.Strand == alae.Reverse {
					reverse++
				}
			}
			fmt.Printf("query %s: %d reverse-strand hit(s)\n", rec.Header, reverse)
		}
		fmt.Printf("query %s: %d hit(s) at H=%d [%v]\n",
			rec.Header, len(res.Hits), res.Threshold, res.Algorithm)
		printed := 0
		var best alae.Hit
		for _, h := range res.Hits {
			if h.Score > best.Score {
				best = h
			}
			if *maxHits == 0 || printed < *maxHits {
				member, local, ok := coll.Locate(h.TEnd, h.TEnd+1)
				where := fmt.Sprintf("pos %d", h.TEnd)
				if ok {
					where = fmt.Sprintf("%s:%d", coll.Name(member), local)
				}
				fmt.Printf("  text %s  query end %d  score %d\n", where, h.QEnd, h.Score)
				printed++
			}
		}
		if printed < len(res.Hits) {
			fmt.Printf("  ... %d more\n", len(res.Hits)-printed)
		}
		if *showAlign && best.Score > 0 {
			a, err := ix.Align(rec.Seq, scheme, best)
			if err != nil {
				return err
			}
			fmt.Println(ix.FormatAlignment(a, rec.Seq, 60))
		}
		if *stats {
			fmt.Printf("  stats: %+v\n", res.Stats)
		}
	}
	return nil
}

func parseScheme(s string) (alae.Scheme, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return alae.Scheme{}, fmt.Errorf("scheme %q: want sa,sb,sg,ss", s)
	}
	var vals [4]int
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &vals[i]); err != nil {
			return alae.Scheme{}, fmt.Errorf("scheme %q: %w", s, err)
		}
	}
	sch := alae.Scheme{Match: vals[0], Mismatch: vals[1], GapOpen: vals[2], GapExtend: vals[3]}
	return sch, sch.Validate()
}

func parseAlgorithm(s string) (alae.Algorithm, error) {
	switch strings.ToLower(s) {
	case "alae":
		return alae.ALAE, nil
	case "alae-hybrid", "hybrid":
		return alae.ALAEHybrid, nil
	case "bwtsw", "bwt-sw":
		return alae.BWTSW, nil
	case "blast":
		return alae.BLAST, nil
	case "sw", "smith-waterman":
		return alae.SmithWaterman, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}
