// Command alae runs local-alignment searches: it builds a serving
// store over one or more FASTA database files and aligns every record
// of a FASTA query file against it, printing hits mapped to their
// member sequences and, optionally, full alignments.
//
// Usage:
//
//	alae -text genome.fa -query reads.fa [flags]
//	alae -text chr1.fa,chr2.fa -shards 4 -query reads.fa
//
// -text accepts a comma-separated list of FASTA files; every record of
// every file becomes one named member of the store, indexed together
// in one shared index per generation. -shards is a pure parallelism
// knob: each search's fork families are cut into that many
// cost-balanced lanes over the shared index, and the answers — hits
// AND work counters — are byte-identical at every value. It applies
// to -load-store too (the lane count is never persisted). Repeated
// identical queries are answered from the store's result cache. Flags select the engine (alae, alae-hybrid, bwtsw, blast,
// sw), the scoring scheme ⟨sa,sb,sg,ss⟩ and either a raw score
// threshold or an E-value. Exit status is non-zero on any error.
//
// The store is generational and mutable in place:
//
//	alae -text genome.fa -save-store-dir db/          # build a directory store
//	alae -load-store db/ -append extra.fa             # append a generation
//	alae -load-store db/ -delete chr3,chr7            # tombstone members
//	alae -load-store db/ -compact                     # merge + purge
//
// When the store is directory-backed (-save-store-dir, or -load-store
// pointed at a directory), every mutation persists crash-safely before
// it becomes visible: a kill at any point leaves a directory that
// reloads as either the pre- or post-mutation store. Mutations on a
// store loaded from a single file stay in memory unless -save-store
// rewrites the file.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/seq"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "alae:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		textPath  = flag.String("text", "", "comma-separated FASTA file(s) with the database sequences (required)")
		queryPath = flag.String("query", "", "FASTA file with the query sequences (required)")
		algorithm = flag.String("algorithm", "alae", "engine: alae, alae-hybrid, bwtsw, blast, sw")
		schemeStr = flag.String("scheme", "1,-3,-5,-2", "scoring scheme sa,sb,sg,ss")
		threshold = flag.Int("threshold", 0, "raw score threshold H (0 = derive from -evalue)")
		eValue    = flag.Float64("evalue", 10, "expectation value used when -threshold is 0")
		parallel  = flag.Int("p", 0, "ALAE worker goroutines per search (0 = all cores, 1 = sequential)")
		shards    = flag.Int("shards", 1, "scatter lanes per search over the store's shared index (parallelism only; answers are identical at every value)")
		cacheSize = flag.Int("query-cache", 0, "result-cache capacity in queries (0 = default, -1 = disabled)")
		showAlign = flag.Bool("align", false, "print the best alignment per query")
		maxHits   = flag.Int("max-hits", 10, "hits printed per query (0 = all)")
		stats     = flag.Bool("stats", false, "print work statistics per query")
		saveStore = flag.String("save-store", "", "write the store (manifest + generation indexes) to this single file")
		saveDir   = flag.String("save-store-dir", "", "write the store as a generation directory; mutations then persist there crash-safely")
		loadStore = flag.String("load-store", "", "load a previously saved store (file or directory) instead of -text")
		strands   = flag.Bool("both-strands", false, "also search the reverse complement (DNA)")

		appendPath  = flag.String("append", "", "comma-separated FASTA file(s) appended to the store as a fresh generation")
		deleteNames = flag.String("delete", "", "comma-separated member names to delete (tombstoned until compaction)")
		compact     = flag.Bool("compact", false, "run one compaction pass: merge small generations, purge tombstoned bytes")
	)
	flag.Parse()
	if *loadStore == "" && *textPath == "" {
		flag.Usage()
		return fmt.Errorf("-text (or -load-store) is required")
	}
	mutates := *appendPath != "" || *deleteNames != "" || *compact
	if *saveStore == "" && *saveDir == "" && !mutates && *queryPath == "" {
		flag.Usage()
		return fmt.Errorf("-query is required unless building or mutating a store")
	}

	scheme, err := parseScheme(*schemeStr)
	if err != nil {
		return err
	}
	alg, err := parseAlgorithm(*algorithm)
	if err != nil {
		return err
	}

	var store *alae.Store
	if *loadStore != "" {
		if store, err = alae.LoadStoreFile(*loadStore, alae.StoreOptions{Shards: *shards, QueryCacheSize: *cacheSize}); err != nil {
			return fmt.Errorf("loading %s: %w", *loadStore, err)
		}
		fmt.Printf("loaded store: %d member(s), %d scatter lane(s), %d characters\n",
			store.Sequences().Len(), store.Shards(), store.Sequences().TotalLen())
	} else {
		records, err := readFASTARecords(*textPath)
		if err != nil {
			return err
		}
		if len(records) == 0 {
			return fmt.Errorf("%s contains no sequences", *textPath)
		}
		total := 0
		for _, r := range records {
			total += len(r.Seq)
		}
		fmt.Printf("indexing %d sequence(s), %d characters, %d scatter lane(s)\n", len(records), total, *shards)
		if store, err = alae.NewStore(records, alae.StoreOptions{Shards: *shards, QueryCacheSize: *cacheSize}); err != nil {
			return err
		}
	}
	if *saveDir != "" {
		// SaveDir writes the generation directory and attaches the store
		// to it, so the mutations below persist crash-safely as they run.
		if err := store.SaveDir(*saveDir); err != nil {
			return fmt.Errorf("saving store directory: %w", err)
		}
		fmt.Printf("store directory written to %s\n", *saveDir)
	}
	if *appendPath != "" {
		records, err := readFASTARecords(*appendPath)
		if err != nil {
			return err
		}
		if err := store.Append(records); err != nil {
			return fmt.Errorf("appending: %w", err)
		}
		fmt.Printf("appended %d member(s) as a fresh generation\n", len(records))
	}
	if *deleteNames != "" {
		var names []string
		for _, name := range strings.Split(*deleteNames, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
		n, err := store.Delete(names...)
		if err != nil {
			return fmt.Errorf("deleting: %w", err)
		}
		fmt.Printf("deleted %d member(s) (tombstoned; compaction purges the bytes)\n", n)
	}
	if *compact {
		cs, err := store.Compact()
		if err != nil {
			return fmt.Errorf("compacting: %w", err)
		}
		fmt.Printf("compacted %d generation(s) into %d, purged %d member(s) (%d bytes)\n",
			cs.Before, cs.After, cs.PurgedMembers, cs.PurgedBytes)
	}
	if mutates {
		fmt.Printf("store now: %d live member(s), %d generation(s), %d tombstone(s), stamp %d\n",
			store.Sequences().Len(), store.Generations(), store.Tombstones(), store.Stamp())
		if store.Dir() == "" && *saveStore == "" {
			fmt.Println("note: store is not directory-backed; mutations live in memory only (use -save-store or -save-store-dir)")
		}
	}
	if *saveStore != "" {
		// SaveFile is crash-safe: the store lands under a temp name and
		// renames into place, so an interrupted build never leaves a torn
		// file where a serving daemon's reload loop would find it.
		if err := store.SaveFile(*saveStore); err != nil {
			return fmt.Errorf("saving store: %w", err)
		}
		fmt.Printf("store written to %s\n", *saveStore)
	}
	if *queryPath == "" {
		return nil
	}

	queryFile, err := os.Open(*queryPath)
	if err != nil {
		return err
	}
	defer queryFile.Close()
	queryRecs, err := seq.ReadFASTA(queryFile)
	if err != nil {
		return fmt.Errorf("reading %s: %w", *queryPath, err)
	}

	searchOpts := alae.SearchOptions{
		Algorithm:   alg,
		Scheme:      scheme,
		Threshold:   *threshold,
		EValue:      *eValue,
		Parallelism: *parallel,
	}
	for _, rec := range queryRecs {
		res, err := store.Search(rec.Seq, searchOpts)
		if err != nil {
			return fmt.Errorf("query %s: %w", rec.Header, err)
		}
		if *strands {
			rev, err := store.Search(alae.ReverseComplement(rec.Seq), searchOpts)
			if err != nil {
				return fmt.Errorf("query %s (both strands): %w", rec.Header, err)
			}
			fmt.Printf("query %s: %d reverse-strand hit(s)\n", rec.Header, len(rev.Hits))
		}
		fmt.Printf("query %s: %d hit(s) at H=%d [%v]\n",
			rec.Header, len(res.Hits), res.Threshold, res.Algorithm)
		printed := 0
		var best alae.SeqHit
		for _, h := range res.Hits {
			if h.Score > best.Score {
				best = h
			}
			if *maxHits == 0 || printed < *maxHits {
				fmt.Printf("  text %s:%d  query end %d  score %d\n", h.Name, h.LocalTEnd, h.QEnd, h.Score)
				printed++
			}
		}
		if printed < len(res.Hits) {
			fmt.Printf("  ... %d more\n", len(res.Hits)-printed)
		}
		if *showAlign && best.Score > 0 {
			a, err := store.Align(rec.Seq, scheme, best)
			if err != nil {
				return err
			}
			fmt.Println(store.FormatAlignment(a, best, rec.Seq, 60))
		}
		if *stats {
			fmt.Printf("  stats: %+v\n", res.Stats)
		}
	}
	return nil
}

// readFASTARecords reads every record of a comma-separated list of
// FASTA files into store members named by their headers.
func readFASTARecords(paths string) ([]alae.SeqRecord, error) {
	var records []alae.SeqRecord
	for _, path := range strings.Split(paths, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		recs, err := seq.ReadFASTA(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", path, err)
		}
		for _, rec := range recs {
			records = append(records, alae.SeqRecord{Name: rec.Header, Seq: rec.Seq})
		}
	}
	return records, nil
}

func parseScheme(s string) (alae.Scheme, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return alae.Scheme{}, fmt.Errorf("scheme %q: want sa,sb,sg,ss", s)
	}
	var vals [4]int
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &vals[i]); err != nil {
			return alae.Scheme{}, fmt.Errorf("scheme %q: %w", s, err)
		}
	}
	sch := alae.Scheme{Match: vals[0], Mismatch: vals[1], GapOpen: vals[2], GapExtend: vals[3]}
	return sch, sch.Validate()
}

func parseAlgorithm(s string) (alae.Algorithm, error) {
	switch strings.ToLower(s) {
	case "alae":
		return alae.ALAE, nil
	case "alae-hybrid", "hybrid":
		return alae.ALAEHybrid, nil
	case "bwtsw", "bwt-sw":
		return alae.BWTSW, nil
	case "blast":
		return alae.BLAST, nil
	case "sw", "smith-waterman":
		return alae.SmithWaterman, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}
