// Command alae-exp regenerates the paper's evaluation artifacts: every
// table and figure of §7 plus the §6 analytic bounds, on synthetic
// workloads (see DESIGN.md for the substitutions and EXPERIMENTS.md
// for paper-vs-measured commentary).
//
// Usage:
//
//	alae-exp                 # run everything at the default scale
//	alae-exp -exp table2     # one experiment
//	alae-exp -scale 2 -queries 10
//	alae-exp -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

func main() {
	var (
		expID    = flag.String("exp", "", "experiment id (empty = all); see -list")
		scale    = flag.Float64("scale", 1, "workload scale factor (1 = laptop defaults)")
		seed     = flag.Int64("seed", 42, "RNG seed")
		queries  = flag.Int("queries", 3, "queries per workload point (paper used 100)")
		parallel = flag.Int("p", 0, "ALAE worker goroutines per search (0 = all cores, 1 = sequential)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Experiments {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}
	cfg := exp.Config{Scale: *scale, Seed: *seed, NumQueries: *queries, Parallelism: *parallel}
	var err error
	if *expID == "" {
		err = exp.RunAll(os.Stdout, cfg)
	} else {
		err = exp.Run(*expID, os.Stdout, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "alae-exp:", err)
		os.Exit(1)
	}
}
