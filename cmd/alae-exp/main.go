// Command alae-exp regenerates the paper's evaluation artifacts: every
// table and figure of §7 plus the §6 analytic bounds, on synthetic
// workloads (see DESIGN.md for the substitutions and EXPERIMENTS.md
// for paper-vs-measured commentary).
//
// Usage:
//
//	alae-exp                 # run everything at the default scale
//	alae-exp -exp table2     # one experiment
//	alae-exp -scale 2 -queries 10
//	alae-exp -list
//	alae-exp -bench-json out.json   # machine-readable perf numbers
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

func main() {
	var (
		expID     = flag.String("exp", "", "experiment id (empty = all); see -list")
		scale     = flag.Float64("scale", 1, "workload scale factor (1 = laptop defaults)")
		seed      = flag.Int64("seed", 42, "RNG seed")
		queries   = flag.Int("queries", 3, "queries per workload point (paper used 100)")
		parallel  = flag.Int("p", 0, "ALAE worker goroutines per search (0 = all cores, 1 = sequential)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		benchJSON = flag.String("bench-json", "", "time the Table 2 workload point and write machine-readable JSON to this file ('-' = stdout)")
		benchReps = flag.Int("bench-reps", 5, "repetitions per configuration for -bench-json (best wall-clock wins)")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Experiments {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}
	cfg := exp.Config{Scale: *scale, Seed: *seed, NumQueries: *queries, Parallelism: *parallel}
	if *benchJSON != "" {
		// The bench-json workload is pinned to the Table 2 point
		// (2 queries, p=1 and p=max) so BENCH_*.json numbers stay
		// comparable across PRs; reject flags that would silently have
		// no effect.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "p" || f.Name == "queries" || f.Name == "exp" {
				fmt.Fprintf(os.Stderr, "alae-exp: -%s has no effect with -bench-json (configuration is pinned for trajectory comparability)\n", f.Name)
				os.Exit(1)
			}
		})
		out := os.Stdout
		if *benchJSON != "-" {
			f, err := os.Create(*benchJSON)
			if err != nil {
				fmt.Fprintln(os.Stderr, "alae-exp:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := exp.RunBenchJSON(out, cfg, *benchReps); err != nil {
			fmt.Fprintln(os.Stderr, "alae-exp:", err)
			os.Exit(1)
		}
		return
	}
	var err error
	if *expID == "" {
		err = exp.RunAll(os.Stdout, cfg)
	} else {
		err = exp.Run(*expID, os.Stdout, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "alae-exp:", err)
		os.Exit(1)
	}
}
