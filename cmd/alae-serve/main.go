// Command alae-serve is the serving daemon: it loads a store built by
// `alae -save-store` and serves local-alignment searches over
// HTTP/JSON until told to stop.
//
// Usage:
//
//	alae -text genome.fa -save-store db.alae
//	alae-serve -store db.alae -shards 4 -addr :7734
//
//	curl -s localhost:7734/healthz
//	curl -s -d '{"query":"ACGT...","timeout_ms":2000}' localhost:7734/search
//	curl -s localhost:7734/stats
//
// Endpoints: POST /search (JSON in, JSON out), GET /healthz (200
// serving / 503 draining), GET /stats (counters, cache pressure, job
// states). Concurrency is bounded by -lanes with a -queue-depth wait
// queue behind it; overload answers 429 with a Retry-After hint, a
// search that outlives -search-timeout answers 504 with the work
// actually aborted mid-traversal. -per-client additionally caps each
// client's in-flight searches (keyed by X-API-Key, else remote addr)
// so one greedy client cannot starve the lanes, and -per-client-rate
// bounds each client's request rate with a token bucket over
// -per-client-window (429 + Retry-After sized to the next token).
// -shards sets the store's scatter width: the number of lanes each
// search's fork families fan out over inside the one shared index (a
// pure parallelism knob — answers and work are identical at every
// value, and nothing is persisted). Background jobs —
// periodic store reload from -store (-reload), generational store
// compaction (-compact), query-cache pressure sweeps (-sweep), and a
// self-probe that searches the store's own data (-probe) — run with
// panic isolation and never take the daemon down; a failed reload
// keeps the previous store serving.
//
// -pprof serves net/http/pprof on a separate loopback-only listener
// (off by default), so live daemons can be profiled without exposing
// the profiler on the serving address.
//
// On SIGTERM or SIGINT the daemon drains: /healthz flips to 503, new
// searches are refused, in-flight searches finish (bounded by
// -drain-timeout), and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "alae-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		storePath = flag.String("store", "", "store file written by `alae -save-store` (required)")
		addr      = flag.String("addr", ":7734", "listen address")
		algorithm = flag.String("algorithm", "alae", "engine: alae, alae-hybrid, bwtsw, blast, sw")
		schemeStr = flag.String("scheme", "1,-3,-5,-2", "scoring scheme sa,sb,sg,ss")
		threshold = flag.Int("threshold", 0, "raw score threshold H (0 = derive from -evalue)")
		eValue    = flag.Float64("evalue", 10, "expectation value used when -threshold is 0")
		parallel  = flag.Int("p", 1, "ALAE worker goroutines per search (serving default 1: lanes are the concurrency)")
		cacheSize = flag.Int("query-cache", 0, "result-cache capacity in queries (0 = default, -1 = disabled)")

		lanes      = flag.Int("lanes", 0, "max concurrent searches (0 = GOMAXPROCS)")
		queueDepth = flag.Int("queue-depth", 0, "requests waiting beyond the lanes before 429 (0 = 2x lanes)")
		searchTO   = flag.Duration("search-timeout", 30*time.Second, "per-search deadline (0 = none)")
		maxHits    = flag.Int("max-hits", 1000, "hits returned per response (-1 = unlimited)")
		maxQuery   = flag.Int("max-query", 1<<20, "max query length in bytes")
		drainTO    = flag.Duration("drain-timeout", time.Minute, "max wait for in-flight searches on shutdown")

		perClient       = flag.Int("per-client", 0, "max in-flight searches per client (X-API-Key or remote addr); overflow answers 429 (0 = off)")
		perClientRate   = flag.Int("per-client-rate", 0, "max requests per client per -per-client-window; overflow answers 429 + Retry-After (0 = off)")
		perClientWindow = flag.Duration("per-client-window", time.Second, "refill window for -per-client-rate")
		shards          = flag.Int("shards", 0, "scatter lanes per search over the store's shared index (parallelism only; 0 = 1)")

		reloadEvery  = flag.Duration("reload", 0, "re-read -store on this period and swap it in (0 = off)")
		compactEvery = flag.Duration("compact", 0, "run store compaction on this period: merge generations, purge tombstones (0 = off)")
		sweepEvery   = flag.Duration("sweep", time.Minute, "query-cache pressure sweep period (0 = off)")
		sweepHits    = flag.Int64("sweep-hits", 1_000_000, "max total hits the query cache may pin between sweeps")
		probeEvery   = flag.Duration("probe", time.Minute, "self-probe period: search a member prefix, fail loudly if it misses (0 = off)")
		probeLen     = flag.Int("probe-len", 64, "self-probe query length")

		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this loopback address (e.g. 127.0.0.1:6060; empty = off)")
	)
	flag.Parse()
	if *storePath == "" {
		flag.Usage()
		return fmt.Errorf("-store is required")
	}

	scheme, err := parseScheme(*schemeStr)
	if err != nil {
		return err
	}
	alg, err := parseAlgorithm(*algorithm)
	if err != nil {
		return err
	}

	storeOpts := alae.StoreOptions{Shards: *shards, QueryCacheSize: *cacheSize}
	store, err := alae.LoadStoreFile(*storePath, storeOpts)
	if err != nil {
		return err
	}
	fmt.Printf("loaded store: %d member(s), %d scatter lane(s), %d characters\n",
		store.Sequences().Len(), store.Shards(), store.Sequences().TotalLen())

	srv, err := serve.New(serve.Config{
		Store:     store,
		StorePath: *storePath,
		Options: alae.SearchOptions{
			Scheme:      scheme,
			Threshold:   *threshold,
			EValue:      *eValue,
			Algorithm:   alg,
			Parallelism: *parallel,
		},
		Lanes:           *lanes,
		QueueDepth:      *queueDepth,
		PerClientLanes:  *perClient,
		PerClientRate:   *perClientRate,
		PerClientWindow: *perClientWindow,
		SearchTimeout:   *searchTO,
		MaxQueryLen:     *maxQuery,
		MaxHits:         *maxHits,
	})
	if err != nil {
		return err
	}
	if *reloadEvery > 0 {
		srv.AddJob(&serve.ReloadJob{Server: srv, Path: *storePath, Opts: storeOpts, Every: *reloadEvery})
	}
	if *compactEvery > 0 {
		srv.AddJob(&serve.CompactJob{Server: srv, Every: *compactEvery})
	}
	if *sweepEvery > 0 {
		srv.AddJob(&serve.SweepJob{Server: srv, MaxCachedHits: *sweepHits, Every: *sweepEvery})
	}
	if *probeEvery > 0 {
		srv.AddJob(&serve.ProbeJob{Server: srv, QueryLen: *probeLen, Timeout: *searchTO, Every: *probeEvery})
	}
	srv.StartJobs()

	if *pprofAddr != "" {
		// Profiling stays off the serving mux: a separate listener, and
		// loopback-only so -pprof can never expose the profiler to the
		// daemon's clients by accident.
		ln, err := listenLoopback(*pprofAddr)
		if err != nil {
			return fmt.Errorf("-pprof %s: %w", *pprofAddr, err)
		}
		go func() {
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			if err := http.Serve(ln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "alae-serve: pprof listener:", err)
			}
		}()
		defer ln.Close()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", ln.Addr())
	}

	hs := srv.HTTPServer(*addr)
	errCh := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	fmt.Printf("serving on %s (lanes %d, queue %d, search timeout %s)\n",
		*addr, *lanes, *queueDepth, *searchTO)

	// Wait for a shutdown signal or a listener failure, then drain:
	// stop admitting, let in-flight searches finish, exit 0.
	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-sigCtx.Done():
	}
	fmt.Println("draining: refusing new searches, finishing in-flight")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	// Close the listener (bounded by the same drain deadline) and wait
	// out the in-flight lanes; either failing still exits through the
	// error path rather than hanging.
	shutdownErr := hs.Shutdown(drainCtx)
	if err := srv.Drain(drainCtx); err != nil {
		return err
	}
	if shutdownErr != nil {
		return shutdownErr
	}
	fmt.Println("drained, exiting")
	return nil
}

// listenLoopback binds addr, refusing any host that does not resolve
// to a loopback interface. The profiler exposes heap contents and must
// never ride on a routable address.
func listenLoopback(addr string) (net.Listener, error) {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, err
	}
	if host == "" || host == "localhost" {
		// net.Listen would bind every interface for an empty host.
	} else if ip := net.ParseIP(host); ip == nil || !ip.IsLoopback() {
		return nil, fmt.Errorf("not a loopback address (use 127.0.0.1:port or localhost:port)")
	}
	if host == "" {
		addr = net.JoinHostPort("127.0.0.1", addr[strings.LastIndex(addr, ":")+1:])
	}
	return net.Listen("tcp", addr)
}

func parseScheme(s string) (alae.Scheme, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return alae.Scheme{}, fmt.Errorf("scheme %q: want sa,sb,sg,ss", s)
	}
	var vals [4]int
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &vals[i]); err != nil {
			return alae.Scheme{}, fmt.Errorf("scheme %q: %w", s, err)
		}
	}
	sch := alae.Scheme{Match: vals[0], Mismatch: vals[1], GapOpen: vals[2], GapExtend: vals[3]}
	return sch, sch.Validate()
}

func parseAlgorithm(s string) (alae.Algorithm, error) {
	switch strings.ToLower(s) {
	case "alae":
		return alae.ALAE, nil
	case "alae-hybrid", "hybrid":
		return alae.ALAEHybrid, nil
	case "bwtsw", "bwt-sw":
		return alae.BWTSW, nil
	case "blast":
		return alae.BLAST, nil
	case "sw", "smith-waterman":
		return alae.SmithWaterman, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}
