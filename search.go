package alae

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/bwt"
	"repro/internal/core"
	"repro/internal/strie"
)

// This file holds the production conveniences around the core Search:
// index persistence (build once, reload instantly — the first step of
// the paper's external-memory future work), both-strand DNA search,
// and parallel multi-query search.

// Save serialises the index (text plus compressed suffix array) so a
// later process can Load it instead of rebuilding. The format is
// versioned and validated on load.
func (ix *Index) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(ix.text))); err != nil {
		return err
	}
	if _, err := bw.Write(ix.text); err != nil {
		return err
	}
	if _, err := ix.trie.Index().WriteTo(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads an index written by Save.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("alae: reading index: %w", err)
	}
	if n > 1<<40 {
		return nil, fmt.Errorf("alae: implausible text length %d", n)
	}
	text, err := bwt.ReadExact(br, n)
	if err != nil {
		return nil, fmt.Errorf("alae: reading text: %w", err)
	}
	fm, err := bwt.ReadFMIndex(br)
	if err != nil {
		return nil, err
	}
	if fm.Len() != len(text) {
		return nil, fmt.Errorf("alae: index length %d does not match text length %d", fm.Len(), len(text))
	}
	return &Index{
		text: text,
		trie: strie.NewFromIndex(text, fm),
		alae: make(map[engineKey]*core.Engine),
	}, nil
}

// complementTable maps each DNA base to its complement — upper AND
// lower case, plus the IUPAC ambiguity codes — and every other byte to
// itself. Built once so ReverseComplement is a table walk rather than
// a per-byte switch.
//
// The original table only complemented uppercase ACGT, so soft-masked
// (lowercase) or ambiguity-coded FASTA input passed through unchanged
// and SearchBothStrands silently searched a *reversed but
// uncomplemented* strand — wrong answers, no diagnostic.
var complementTable = func() [256]byte {
	var t [256]byte
	for i := range t {
		t[i] = byte(i)
	}
	// Watson–Crick pairs and the paired IUPAC ambiguity codes:
	// R(AG)↔Y(CT), K(GT)↔M(AC), B(CGT)↔V(ACG), D(AGT)↔H(ACT).
	// S(CG), W(AT) and N are their own complements and stay identity.
	for _, p := range [...][2]byte{
		{'A', 'T'}, {'C', 'G'},
		{'R', 'Y'}, {'K', 'M'}, {'B', 'V'}, {'D', 'H'},
	} {
		a, b := p[0], p[1]
		t[a], t[b] = b, a
		t[a|0x20], t[b|0x20] = b|0x20, a|0x20 // lowercase, case-preserving
	}
	return t
}()

// ReverseComplement returns the reverse complement of a DNA sequence.
// Lowercase (soft-masked) bases complement case-preservingly, and the
// IUPAC ambiguity codes map to their complements (R↔Y, K↔M, B↔V, D↔H;
// S, W and N are self-complementary). Bytes outside the DNA alphabet
// (e.g. collection separators) are preserved in place so coordinates
// stay meaningful. Note that Index matching is byte-exact: soft-masked
// input should be case-normalised to the index's case before
// searching, and N never matches an ACGT text (it can still sit inside
// a hit as a mismatch).
func ReverseComplement(s []byte) []byte {
	out := make([]byte, len(s))
	for i, c := range s {
		out[len(s)-1-i] = complementTable[c]
	}
	return out
}

// Strand labels a hit's query orientation.
type Strand int

const (
	// Forward means the query aligned as given.
	Forward Strand = iota
	// Reverse means the reverse complement of the query aligned.
	Reverse
)

// StrandHit is a hit annotated with its strand. For Reverse hits, QEnd
// is a position in the reverse-complemented query.
type StrandHit struct {
	Hit
	Strand Strand
}

// SearchBothStrands runs the query and its reverse complement — how
// nucleotide searches are actually performed, since a homologous
// region can sit on either strand of the genome.
func (ix *Index) SearchBothStrands(query []byte, opts SearchOptions) ([]StrandHit, error) {
	fwd, err := ix.Search(query, opts)
	if err != nil {
		return nil, err
	}
	rev, err := ix.Search(ReverseComplement(query), opts)
	if err != nil {
		return nil, err
	}
	out := make([]StrandHit, 0, len(fwd.Hits)+len(rev.Hits))
	for _, h := range fwd.Hits {
		out = append(out, StrandHit{Hit: h, Strand: Forward})
	}
	for _, h := range rev.Hits {
		out = append(out, StrandHit{Hit: h, Strand: Reverse})
	}
	return out, nil
}

// searchAllStarted, when non-nil, observes each query index a
// SearchAll worker picks up. Test hook for the cancellation contract;
// never set in production code.
var searchAllStarted func(qi int)

// SearchAll runs many queries concurrently over the shared index with
// the given parallelism (0 means one worker per query up to 8).
// Results are returned in query order; the first error cancels the
// remaining work — queries not yet started are never launched (their
// result slots stay nil) and exactly the first error in query order is
// returned, wrapped with its query index.
//
// First-error determinism: workers claim query indexes from an atomic
// cursor in ascending order, so when any query fails, every
// lower-indexed query has already been claimed and runs to completion
// on its worker. Each failure CAS-min's its index into a shared slot;
// after the pool drains, that slot therefore holds the globally lowest
// failing index among the queries that ran — the same error every
// time, however the workers interleave. (The previous implementation
// raced two same-window failures on a boolean flag and could both
// report the later error and, on a configuration error, drop the
// error entirely while returning nil result slots.)
//
// Warm-up contract: before any worker starts, SearchAll builds the
// shared lazy structures once — the engine for the requested
// configuration and (for the ALAE engines) the domination index of the
// scheme's q — so workers never race to build them redundantly; from
// then on those structures are read-only and shared. Each worker then
// holds ONE Session for its whole run: per-query state (q-gram
// inverted index, δ score table, bound tables, collector, traversal
// workspace) is re-armed in place between queries instead of rebuilt,
// and the engine's cross-query gram cache is shared read-mostly across
// the workers, so repeated or overlapping queries resolve their hot
// grams by hash probe.
func (ix *Index) SearchAll(queries [][]byte, opts SearchOptions, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = 8
	}
	workers = min(workers, len(queries))
	if workers == 0 {
		return nil, nil
	}
	// Warm the shared lazy structures (domination index, engine
	// caches) once so workers don't race to build them redundantly.
	if len(queries) > 0 {
		s := opts.Scheme
		if s == (Scheme{}) {
			s = DefaultDNAScheme
		}
		if opts.Algorithm == ALAE || opts.Algorithm == ALAEHybrid {
			if _, err := ix.DominationIndexSize(s); err != nil {
				return nil, err
			}
		}
	}
	results := make([]*Result, len(queries))
	errs := make([]error, len(queries))
	var (
		wg       sync.WaitGroup
		cursor   atomic.Int64
		failedAt atomic.Int64 // lowest failing query index; len(queries) = none
		openOnce sync.Once
		openErr  error // configuration error, when no query owns one
	)
	failedAt.Store(int64(len(queries)))
	// markFailed CAS-min's qi into failedAt. errs[qi] must be written
	// before the call; wg.Wait() publishes both to the final read.
	markFailed := func(qi int) {
		for {
			cur := failedAt.Load()
			if int64(qi) >= cur || failedAt.CompareAndSwap(cur, int64(qi)) {
				return
			}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ses, err := ix.OpenSession(opts)
			if err != nil {
				// Configuration errors apply to every query, not any
				// particular one: keep the error in its own slot (so it
				// is never misreported as "query N") and claim the next
				// index only to stop later queries from launching. A
				// genuine per-query failure at a lower index still wins
				// the CAS-min and is reported instead.
				openOnce.Do(func() { openErr = err })
				qi := int(cursor.Add(1)) - 1
				markFailed(min(qi, len(queries)-1))
				return
			}
			defer ses.Close()
			for {
				if failedAt.Load() < int64(len(queries)) {
					return
				}
				qi := int(cursor.Add(1)) - 1
				if qi >= len(queries) {
					return
				}
				if searchAllStarted != nil {
					searchAllStarted(qi)
				}
				results[qi], errs[qi] = ses.Search(queries[qi])
				if errs[qi] != nil {
					markFailed(qi)
					return
				}
			}
		}()
	}
	wg.Wait()
	if fa := int(failedAt.Load()); fa < len(queries) {
		if errs[fa] != nil {
			return nil, fmt.Errorf("alae: query %d: %w", fa, errs[fa])
		}
		// The failure mark came from a configuration error, which no
		// query owns; report it unwrapped.
		return nil, openErr
	}
	return results, nil
}
