package alae

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/seq"
)

// Generational-store acceptance tests: mutations must be invisible to
// the search semantics (a mutated store answers exactly like a fresh
// store built over its live members), tombstones must suppress hits
// immediately, compaction must never change answers, and the query
// cache must never serve a pre-mutation result.

// storeHits runs queries against st with opts and returns the results,
// failing the test on any error.
func storeHits(t *testing.T, st *Store, queries [][]byte, opts SearchOptions) []*StoreResult {
	t.Helper()
	out := make([]*StoreResult, len(queries))
	for i, q := range queries {
		res, err := st.Search(q, opts)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		out[i] = res
	}
	return out
}

// storeResultsEqual compares thresholds and full SeqHit slices.
func storeResultsEqual(a, b []*StoreResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Threshold != b[i].Threshold || !seqHitsEqual(a[i].Hits, b[i].Hits) {
			return false
		}
	}
	return true
}

// mutatedStore builds the canonical mutation scenario used across the
// generational tests: a base store over members 0–3, two appends
// (members 4–5, then 6), and a delete of members 1 and 5. The live set
// is {0, 2, 3, 4, 6}, spread over three generations with tombstones in
// two of them.
func mutatedStore(t *testing.T, wl storeWorkload, opts StoreOptions) (*Store, []SeqRecord) {
	t.Helper()
	st, err := NewStore(wl.records[:4], opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(wl.records[4:6]); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(wl.records[6:7]); err != nil {
		t.Fatal(err)
	}
	if n, err := st.Delete(wl.records[1].Name, wl.records[5].Name); err != nil || n != 2 {
		t.Fatalf("Delete = (%d, %v), want (2, nil)", n, err)
	}
	live := []SeqRecord{wl.records[0], wl.records[2], wl.records[3], wl.records[4], wl.records[6]}
	return st, live
}

// TestStoreGenerationalParity is the tentpole acceptance gate: a store
// that grew through appends and deletes answers every query exactly
// like a fresh store built over its live members — same thresholds
// (derived from the live concatenation's (n, σ), PR 5's invariant
// extended across generations), same hit sets byte for byte, same
// member numbering — and compaction changes none of it.
func TestStoreGenerationalParity(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts SearchOptions
	}{
		{"threshold", SearchOptions{}},
		{"evalue", SearchOptions{EValue: 1e-5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			wl := buildStoreWorkload(seq.DNA, 7, 2000, 250, 914)
			st, live := mutatedStore(t, wl, StoreOptions{Shards: 2})
			if g := st.Generations(); g != 3 {
				t.Fatalf("Generations() = %d, want 3", g)
			}
			if n := st.Tombstones(); n != 2 {
				t.Fatalf("Tombstones() = %d, want 2", n)
			}
			fresh, err := NewStore(live, StoreOptions{Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			if st.Sequences().Len() != len(live) || st.Sequences().TotalLen() != fresh.Sequences().TotalLen() {
				t.Fatalf("live directory: %d members / %d bytes, want %d / %d",
					st.Sequences().Len(), st.Sequences().TotalLen(), len(live), fresh.Sequences().TotalLen())
			}
			for i, r := range live {
				if st.Sequences().Name(i) != r.Name {
					t.Fatalf("live member %d is %q, want %q", i, st.Sequences().Name(i), r.Name)
				}
			}
			want := storeHits(t, fresh, wl.queries, tc.opts)
			got := storeHits(t, st, wl.queries, tc.opts)
			if !storeResultsEqual(got, want) {
				t.Fatal("mutated store disagrees with fresh store over its live members")
			}
			stats, err := st.Compact()
			if err != nil {
				t.Fatal(err)
			}
			if stats.PurgedMembers != 2 {
				t.Fatalf("compaction purged %d members, want 2", stats.PurgedMembers)
			}
			if st.Tombstones() != 0 {
				t.Fatalf("tombstones survive compaction: %d", st.Tombstones())
			}
			if !storeResultsEqual(storeHits(t, st, wl.queries, tc.opts), want) {
				t.Fatal("compaction changed answers")
			}
			// A second pass with nothing to purge and one generation must
			// be a no-op that does not bump the stamp.
			before := st.Stamp()
			again, err := st.Compact()
			if err != nil {
				t.Fatal(err)
			}
			if again.Before != again.After || st.Stamp() != before {
				t.Fatalf("idle compaction did work: %+v (stamp %d -> %d)", again, before, st.Stamp())
			}
		})
	}
}

// TestStoreMutationSemantics covers the mutation API's edges: empty
// and separator-carrying appends are rejected, deleting nothing is a
// no-op, deleting everything is refused, appended members are
// searchable immediately, and the stamp tracks every published
// mutation.
func TestStoreMutationSemantics(t *testing.T) {
	wl := buildStoreWorkload(seq.DNA, 4, 1500, 200, 915)
	st, err := NewStore(wl.records[:2], StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Stamp() != 1 {
		t.Fatalf("fresh store stamp = %d, want 1", st.Stamp())
	}
	if err := st.Append(nil); err == nil {
		t.Fatal("empty Append accepted")
	}
	if err := st.Append([]SeqRecord{{Name: "bad", Seq: []byte("ACGT#ACGT")}}); err == nil {
		t.Fatal("separator-carrying record accepted by Append")
	}
	if _, err := NewStore([]SeqRecord{{Name: "bad", Seq: []byte("AC#GT")}}, StoreOptions{}); err == nil {
		t.Fatal("separator-carrying record accepted by NewStore")
	}
	if n, err := st.Delete("no-such-member"); n != 0 || err != nil {
		t.Fatalf("Delete of absent member = (%d, %v), want (0, nil)", n, err)
	}
	if st.Stamp() != 1 {
		t.Fatalf("no-op mutations moved the stamp to %d", st.Stamp())
	}
	if _, err := st.Delete(wl.records[0].Name, wl.records[1].Name); err == nil {
		t.Fatal("deleting every live member accepted")
	}
	if err := st.Append(wl.records[2:3]); err != nil {
		t.Fatal(err)
	}
	if st.Stamp() != 2 {
		t.Fatalf("stamp after append = %d, want 2", st.Stamp())
	}
	// The appended member must hit immediately: search its own prefix.
	probe := append([]byte(nil), wl.records[2].Seq[:200]...)
	res, err := st.Search(probe, SearchOptions{Threshold: 150})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range res.Hits {
		found = found || h.Name == wl.records[2].Name
	}
	if !found {
		t.Fatal("appended member invisible to search")
	}
	// Deleting it must silence it immediately, same probe.
	if n, err := st.Delete(wl.records[2].Name); n != 1 || err != nil {
		t.Fatalf("Delete = (%d, %v), want (1, nil)", n, err)
	}
	res, err = st.Search(probe, SearchOptions{Threshold: 150})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.Hits {
		if h.Name == wl.records[2].Name {
			t.Fatal("tombstoned member still produces hits")
		}
	}
	// SampleQuery must never sample a tombstoned member: delete the
	// longest member and check the probe comes from a live one.
	if q := st.SampleQuery(64); bytes.Contains(wl.records[2].Seq, q) &&
		!bytes.Contains(wl.records[0].Seq, q) && !bytes.Contains(wl.records[1].Seq, q) {
		t.Fatal("SampleQuery drew from a tombstoned member")
	}
}

// TestStoreMutationInvalidatesCache is the generation-stamp gate: a
// cached result must never be served after a mutation changed what the
// right answer is.
func TestStoreMutationInvalidatesCache(t *testing.T) {
	wl := buildStoreWorkload(seq.DNA, 4, 1500, 200, 916)
	st, err := NewStore(wl.records, StoreOptions{QueryCacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	query := wl.queries[0]
	first, err := st.Search(query, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := st.Search(query, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cached.Stats.QueryCacheHits != 1 {
		t.Fatal("repeat against the unmutated store missed the cache")
	}
	// Delete a member the query hits, so the cached answer is now
	// WRONG, not merely stale-but-equal.
	victim := ""
	for _, h := range first.Hits {
		if h.Name != wl.records[0].Name {
			victim = h.Name
			break
		}
	}
	if victim == "" {
		t.Fatal("workload query hits only one member; cannot stage the scenario")
	}
	if _, err := st.Delete(victim); err != nil {
		t.Fatal(err)
	}
	after, err := st.Search(query, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if after.Stats.QueryCacheHits != 0 {
		t.Fatal("post-mutation search was served from the pre-mutation cache")
	}
	for _, h := range after.Hits {
		if h.Name == victim {
			t.Fatal("post-mutation result still carries the deleted member")
		}
	}
	if seqHitsEqual(first.Hits, after.Hits) {
		t.Fatal("scenario vacuous: deletion did not change the answer")
	}
	// The post-mutation result is itself cacheable under the new stamp.
	repeat, err := st.Search(query, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if repeat.Stats.QueryCacheHits != 1 || !seqHitsEqual(repeat.Hits, after.Hits) {
		t.Fatal("post-mutation repeat not served from the re-stamped cache")
	}
}

// TestStoreMutatedRoundTrip: both persistence layouts — the one-file
// snapshot (Save/SaveFile, with tombstone flags) and the generation
// directory (SaveDir, with the manifest owning tombstones) — must
// round-trip a mutated multi-generation store answer-for-answer, stamp
// included.
func TestStoreMutatedRoundTrip(t *testing.T) {
	wl := buildStoreWorkload(seq.DNA, 7, 1500, 200, 917)
	st, _ := mutatedStore(t, wl, StoreOptions{Shards: 2})
	want := storeHits(t, st, wl.queries, SearchOptions{})

	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fromFile, err := LoadStore(bytes.NewReader(buf.Bytes()), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.Stamp() != st.Stamp() || fromFile.Generations() != st.Generations() || fromFile.Tombstones() != st.Tombstones() {
		t.Fatalf("snapshot round-trip: stamp/gens/tombs = %d/%d/%d, want %d/%d/%d",
			fromFile.Stamp(), fromFile.Generations(), fromFile.Tombstones(),
			st.Stamp(), st.Generations(), st.Tombstones())
	}
	if !storeResultsEqual(storeHits(t, fromFile, wl.queries, SearchOptions{}), want) {
		t.Fatal("snapshot round-trip changed answers")
	}

	dir := filepath.Join(t.TempDir(), "db")
	if err := st.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	fromDir, err := LoadStoreFile(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fromDir.Dir() != dir {
		t.Fatalf("loaded store not attached to its directory (%q)", fromDir.Dir())
	}
	if fromDir.Stamp() != st.Stamp() || fromDir.Tombstones() != st.Tombstones() {
		t.Fatalf("directory round-trip lost state: stamp %d tombs %d", fromDir.Stamp(), fromDir.Tombstones())
	}
	if !storeResultsEqual(storeHits(t, fromDir, wl.queries, SearchOptions{}), want) {
		t.Fatal("directory round-trip changed answers")
	}
	// Mutations against the RELOADED store must persist and reload too:
	// compact, then load a third copy and compare.
	if _, err := fromDir.Compact(); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadStoreFile(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Tombstones() != 0 {
		t.Fatalf("compaction's persisted state still has %d tombstones", reloaded.Tombstones())
	}
	if !storeResultsEqual(storeHits(t, reloaded, wl.queries, SearchOptions{}), want) {
		t.Fatal("persisted compaction changed answers")
	}
}

// TestStoreMutateWhileSearching races concurrent searches against the
// full mutation lifecycle. Every search must come back either as a
// pre-mutation answer or a post-mutation answer — never an error,
// never a torn hybrid (asserted by checking hits only name members
// that were live in SOME published view).
func TestStoreMutateWhileSearching(t *testing.T) {
	wl := buildStoreWorkload(seq.DNA, 6, 1200, 200, 918)
	st, err := NewStore(wl.records[:4], StoreOptions{Shards: 2, QueryCacheSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := wl.queries[w%len(wl.queries)]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, err := st.Search(q, SearchOptions{})
				if err != nil {
					t.Errorf("worker %d search %d: %v", w, i, err)
					return
				}
				for _, h := range res.Hits {
					if h.Name == "" {
						t.Errorf("worker %d: hit with empty member name", w)
						return
					}
				}
			}
		}(w)
	}
	for round := 0; round < 3; round++ {
		if err := st.Append([]SeqRecord{wl.records[4], wl.records[5]}); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Delete(wl.records[4].Name, wl.records[5].Name); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestStoreMutateWhileSearchAll races SearchAll batches — whose every
// query scatters over the shared index through the family-slice lane
// dispatch (Shards > 1) — against the full mutation lifecycle. The
// batch contract under mutation: each result is a complete answer from
// SOME published view (no errors, no torn hybrids), and the lane
// dispatch never trips the race detector against Append/Delete/Compact
// republishing the view underneath it.
func TestStoreMutateWhileSearchAll(t *testing.T) {
	wl := buildStoreWorkload(seq.DNA, 6, 1200, 200, 921)
	st, err := NewStore(wl.records[:4], StoreOptions{Shards: 3, QueryCacheSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([][]byte, 4)
	for i := range batch {
		batch[i] = wl.queries[i%len(wl.queries)]
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				results, err := st.SearchAll(batch, SearchOptions{}, 2)
				if err != nil {
					t.Errorf("worker %d batch %d: %v", w, i, err)
					return
				}
				for qi, res := range results {
					if res == nil {
						t.Errorf("worker %d batch %d: query %d has no result", w, i, qi)
						return
					}
					for _, h := range res.Hits {
						if h.Name == "" {
							t.Errorf("worker %d: hit with empty member name", w)
							return
						}
					}
				}
			}
		}(w)
	}
	for round := 0; round < 3; round++ {
		if err := st.Append([]SeqRecord{wl.records[4], wl.records[5]}); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Delete(wl.records[4].Name, wl.records[5].Name); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestStoreCompactionFoldsTail: past four generations, compaction must
// fold the small-generation tail back down even with no tombstones.
func TestStoreCompactionFoldsTail(t *testing.T) {
	wl := buildStoreWorkload(seq.DNA, 7, 1200, 200, 919)
	st, err := NewStore(wl.records[:1], StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 6; i++ {
		if err := st.Append(wl.records[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if st.Generations() != 6 {
		t.Fatalf("Generations() = %d, want 6", st.Generations())
	}
	want := storeHits(t, st, wl.queries, SearchOptions{})
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if g := st.Generations(); g > 2 {
		t.Fatalf("compaction left %d generations", g)
	}
	if !storeResultsEqual(storeHits(t, st, wl.queries, SearchOptions{}), want) {
		t.Fatal("tail-folding compaction changed answers")
	}
}

// FuzzLoadStoreDir hammers the directory manifest loader: arbitrary
// MANIFEST bytes over a directory of REAL generation files must be
// rejected cleanly or produce a searchable store — and must never make
// the sweeper delete files a hostile manifest merely fails to mention
// properly. The generation files are built once; each fuzz case gets a
// fresh directory of hard links to them.
func FuzzLoadStoreDir(f *testing.F) {
	st, err := NewStore([]SeqRecord{
		{Name: "alpha", Seq: []byte("ACGTACGTACGTACGTACGT")},
		{Name: "beta", Seq: []byte("TTTTACGTACGTGGGG")},
	}, StoreOptions{})
	if err != nil {
		f.Fatal(err)
	}
	if err := st.Append([]SeqRecord{{Name: "gamma", Seq: []byte("ACACACACACACAC")}}); err != nil {
		f.Fatal(err)
	}
	if _, err := st.Delete("beta"); err != nil {
		f.Fatal(err)
	}
	src := filepath.Join(f.TempDir(), "db")
	if err := st.SaveDir(src); err != nil {
		f.Fatal(err)
	}
	goodManifest, err := readFileBytes(filepath.Join(src, manifestName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(goodManifest)
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	for pos := 0; pos < len(goodManifest); pos++ {
		flipped := append([]byte(nil), goodManifest...)
		flipped[pos] ^= 1 << (pos % 8)
		f.Add(flipped)
	}
	for n := 0; n < len(goodManifest); n += 1 + len(goodManifest)/8 {
		f.Add(append([]byte(nil), goodManifest[:n]...))
	}
	f.Fuzz(func(t *testing.T, manifest []byte) {
		dir := t.TempDir()
		linkStoreDir(t, src, dir)
		if err := writeFileBytes(filepath.Join(dir, manifestName), manifest); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadStoreFile(dir, StoreOptions{})
		if err != nil {
			return
		}
		tab := loaded.Sequences()
		for i := 0; i < tab.Len(); i++ {
			_ = tab.Name(i)
		}
		if _, err := loaded.Search([]byte("ACGTACGT"), SearchOptions{Threshold: 8}); err != nil {
			t.Fatalf("search on loaded store: %v", err)
		}
	})
}
