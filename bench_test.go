// Benchmarks regenerating every table and figure of the paper's
// evaluation (§7) plus the §6 bounds and the §7.1 Smith-Waterman
// anchor. Workload sizes are laptop-scaled (see DESIGN.md); the
// paper's absolute numbers are not reproducible on its 2012 testbed,
// but the shapes — who wins, by what factor, where the crossovers
// fall — are asserted in EXPERIMENTS.md from these benchmarks'
// custom metrics (hits/op, entries/op, ratios).
//
// Run with: go test -bench=. -benchmem
package alae_test

import (
	"bytes"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro"
	"repro/internal/align"
	"repro/internal/analysis"
	"repro/internal/bwt"
	"repro/internal/exp"
)

// workloadCache shares built indexes across sub-benchmark invocations
// (the testing package re-runs benchmark functions with growing b.N).
var workloadCache sync.Map

type cachedWorkload struct {
	wl exp.Workload
	ix *alae.Index
}

type wlKey struct {
	kind    string
	n, m    int
	queries int
	seed    int64
}

func getWorkload(b *testing.B, k wlKey) cachedWorkload {
	b.Helper()
	if v, ok := workloadCache.Load(k); ok {
		return v.(cachedWorkload)
	}
	var wl exp.Workload
	switch k.kind {
	case "dna":
		wl = exp.DNAWorkload(k.n, k.m, k.queries, k.seed)
	case "protein":
		wl = exp.ProteinWorkload(k.n, k.m, k.queries, k.seed)
	case "protein-emit":
		wl = exp.ProteinEmissionWorkload(k.n, k.m, k.queries, k.seed)
	default:
		b.Fatalf("unknown workload kind %q", k.kind)
	}
	cw := cachedWorkload{wl: wl, ix: alae.NewIndex(wl.Text)}
	workloadCache.Store(k, cw)
	return cw
}

// benchSearch times one algorithm over a workload and reports the
// paper's per-table metrics.
func benchSearch(b *testing.B, cw cachedWorkload, opts alae.SearchOptions) {
	b.Helper()
	b.ResetTimer()
	var last exp.Measurement
	for i := 0; i < b.N; i++ {
		last = exp.Measure(cw.ix, cw.wl, opts)
		if last.Err != nil {
			b.Fatal(last.Err)
		}
	}
	b.ReportMetric(float64(last.Hits), "hits")
	b.ReportMetric(float64(last.Stats.CalculatedEntries), "entries")
	if last.Stats.ReusedEntries > 0 {
		b.ReportMetric(float64(last.Stats.ReusedEntries), "reused")
	}
}

// --- Table 2: time and result counts vs query length m ---

func BenchmarkTable2(b *testing.B) {
	const n = 200_000
	for _, m := range []int{1_000, 5_000, 20_000} {
		k := wlKey{kind: "dna", n: n, m: m, queries: 2, seed: 42}
		for _, alg := range []alae.Algorithm{alae.ALAE, alae.BLAST, alae.BWTSW} {
			b.Run(alg.String()+"/m="+itoa(m), func(b *testing.B) {
				benchSearch(b, getWorkload(b, k), alae.SearchOptions{Algorithm: alg})
			})
		}
	}
}

// --- Table 3: time and result counts vs text length n ---

func BenchmarkTable3(b *testing.B) {
	const m = 5_000
	for _, n := range []int{100_000, 200_000, 400_000} {
		k := wlKey{kind: "dna", n: n, m: m, queries: 2, seed: 43}
		for _, alg := range []alae.Algorithm{alae.ALAE, alae.BLAST, alae.BWTSW} {
			b.Run(alg.String()+"/n="+itoa(n), func(b *testing.B) {
				benchSearch(b, getWorkload(b, k), alae.SearchOptions{Algorithm: alg})
			})
		}
	}
}

// --- Table 4: calculated entries and weighted cost, ALAE vs BWT-SW ---

func BenchmarkTable4(b *testing.B) {
	k := wlKey{kind: "dna", n: 200_000, m: 5_000, queries: 2, seed: 44}
	cw := getWorkload(b, k)
	for _, alg := range []alae.Algorithm{alae.ALAE, alae.BWTSW} {
		b.Run(alg.String(), func(b *testing.B) {
			var last exp.Measurement
			for i := 0; i < b.N; i++ {
				last = exp.Measure(cw.ix, cw.wl, alae.SearchOptions{Algorithm: alg})
				if last.Err != nil {
					b.Fatal(last.Err)
				}
			}
			b.ReportMetric(float64(last.Stats.CalculatedEntries), "entries")
			b.ReportMetric(float64(last.Stats.ComputationCost), "cost")
		})
	}
}

// --- Table 5: reuse accounting for the extreme schemes ---

func BenchmarkTable5(b *testing.B) {
	k := wlKey{kind: "dna", n: 100_000, m: 5_000, queries: 2, seed: 45}
	cw := getWorkload(b, k)
	schemes := []alae.Scheme{
		{Match: 1, Mismatch: -1, GapOpen: -5, GapExtend: -2},
		{Match: 1, Mismatch: -3, GapOpen: -2, GapExtend: -2},
	}
	for _, s := range schemes {
		b.Run(s.String(), func(b *testing.B) {
			var last exp.Measurement
			for i := 0; i < b.N; i++ {
				last = exp.Measure(cw.ix, cw.wl,
					alae.SearchOptions{Algorithm: alae.ALAEHybrid, Scheme: s})
				if last.Err != nil {
					b.Fatal(last.Err)
				}
			}
			b.ReportMetric(float64(last.Stats.ReusedEntries), "reused")
			b.ReportMetric(float64(last.Stats.AccessedEntries), "accessed")
			b.ReportMetric(float64(last.Stats.CalculatedEntries), "entries")
		})
	}
}

// --- Figure 7: filtering and reusing ratios vs m and n ---

func BenchmarkFig7(b *testing.B) {
	cases := []struct {
		name string
		n, m int
	}{
		{"m=1000", 200_000, 1_000},
		{"m=5000", 200_000, 5_000},
		{"m=20000", 200_000, 20_000},
		{"n=100000", 100_000, 5_000},
		{"n=400000", 400_000, 5_000},
	}
	for _, tc := range cases {
		k := wlKey{kind: "dna", n: tc.n, m: tc.m, queries: 2, seed: 46}
		b.Run(tc.name, func(b *testing.B) {
			cw := getWorkload(b, k)
			var filtering, reusing float64
			for i := 0; i < b.N; i++ {
				a := exp.Measure(cw.ix, cw.wl, alae.SearchOptions{Algorithm: alae.ALAE})
				bw := exp.Measure(cw.ix, cw.wl, alae.SearchOptions{Algorithm: alae.BWTSW})
				hy := exp.Measure(cw.ix, cw.wl, alae.SearchOptions{Algorithm: alae.ALAEHybrid})
				for _, m := range []exp.Measurement{a, bw, hy} {
					if m.Err != nil {
						b.Fatal(m.Err)
					}
				}
				filtering = exp.FilteringRatio(a.Stats.CalculatedEntries, bw.Stats.CalculatedEntries)
				reusing = float64(hy.Stats.ReusedEntries) / float64(max(hy.Stats.AccessedEntries, 1))
			}
			b.ReportMetric(100*filtering, "filtering%")
			b.ReportMetric(100*reusing, "reusing%")
		})
	}
}

// --- Figure 8: ALAE vs E-value ---

func BenchmarkFig8(b *testing.B) {
	k := wlKey{kind: "dna", n: 200_000, m: 5_000, queries: 2, seed: 47}
	for _, tc := range []struct {
		name string
		e    float64
	}{{"E=1e-15", 1e-15}, {"E=1e-5", 1e-5}, {"E=10", 10}} {
		b.Run(tc.name, func(b *testing.B) {
			benchSearch(b, getWorkload(b, k),
				alae.SearchOptions{Algorithm: alae.ALAE, EValue: tc.e})
		})
	}
}

// --- Figure 9: schemes × algorithms ---

func BenchmarkFig9(b *testing.B) {
	k := wlKey{kind: "dna", n: 100_000, m: 5_000, queries: 2, seed: 48}
	for _, s := range align.Fig9Schemes {
		for _, alg := range []alae.Algorithm{alae.ALAE, alae.BLAST, alae.BWTSW} {
			if alg == alae.BWTSW && !s.BWTSWCompatible() {
				continue // the paper omits BWT-SW on <1,-1,-5,-2> too
			}
			b.Run(s.String()+"/"+alg.String(), func(b *testing.B) {
				benchSearch(b, getWorkload(b, k),
					alae.SearchOptions{Algorithm: alg, Scheme: alae.Scheme(s)})
			})
		}
	}
}

// --- Figure 10: per-scheme ratios ---

func BenchmarkFig10(b *testing.B) {
	k := wlKey{kind: "dna", n: 100_000, m: 5_000, queries: 2, seed: 49}
	for _, s := range align.Fig9Schemes {
		if !s.BWTSWCompatible() {
			continue
		}
		b.Run(s.String(), func(b *testing.B) {
			cw := getWorkload(b, k)
			var filtering, reusing float64
			for i := 0; i < b.N; i++ {
				a := exp.Measure(cw.ix, cw.wl, alae.SearchOptions{Algorithm: alae.ALAE, Scheme: alae.Scheme(s)})
				bw := exp.Measure(cw.ix, cw.wl, alae.SearchOptions{Algorithm: alae.BWTSW, Scheme: alae.Scheme(s)})
				hy := exp.Measure(cw.ix, cw.wl, alae.SearchOptions{Algorithm: alae.ALAEHybrid, Scheme: alae.Scheme(s)})
				for _, m := range []exp.Measurement{a, bw, hy} {
					if m.Err != nil {
						b.Fatal(m.Err)
					}
				}
				filtering = exp.FilteringRatio(a.Stats.CalculatedEntries, bw.Stats.CalculatedEntries)
				reusing = float64(hy.Stats.ReusedEntries) / float64(max(hy.Stats.AccessedEntries, 1))
			}
			b.ReportMetric(100*filtering, "filtering%")
			b.ReportMetric(100*reusing, "reusing%")
		})
	}
}

// --- Figure 11: index construction and sizes ---

func BenchmarkFig11(b *testing.B) {
	for _, tc := range []struct {
		kind string
		n    int
	}{
		{"dna", 250_000}, {"dna", 500_000},
		{"protein", 100_000}, {"protein", 200_000},
	} {
		b.Run(tc.kind+"/n="+itoa(tc.n), func(b *testing.B) {
			k := wlKey{kind: tc.kind, n: tc.n, m: 64, queries: 1, seed: 50}
			cw := getWorkload(b, k)
			scheme := alae.DefaultDNAScheme
			if tc.kind == "protein" {
				scheme = alae.DefaultProteinScheme
			}
			var bwtSize, domSize int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix := alae.NewIndex(cw.wl.Text)
				bwtSize = ix.PackedSizeBytes()
				var err error
				domSize, err = ix.DominationIndexSize(scheme)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(tc.n))
			b.ReportMetric(float64(bwtSize), "bwt-bytes")
			b.ReportMetric(float64(domSize), "dominate-bytes")
		})
	}
}

// --- §6: closed-form bounds ---

func BenchmarkSection6Bounds(b *testing.B) {
	var coeff float64
	for i := 0; i < b.N; i++ {
		bound, err := analysis.Compute(align.DefaultDNA, 4)
		if err != nil {
			b.Fatal(err)
		}
		coeff = bound.Coefficient
	}
	b.ReportMetric(coeff, "coefficient")
}

// --- §7.1: the Smith-Waterman anchor ("too slow to be considered") ---

func BenchmarkSmithWaterman(b *testing.B) {
	k := wlKey{kind: "dna", n: 200_000, m: 5_000, queries: 2, seed: 42}
	b.Run("n=200000/m=5000", func(b *testing.B) {
		benchSearch(b, getWorkload(b, k),
			alae.SearchOptions{Algorithm: alae.SmithWaterman})
	})
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// --- Ablations: what each filter buys (DESIGN.md's design-choice benches) ---

func BenchmarkAblation(b *testing.B) {
	k := wlKey{kind: "dna", n: 200_000, m: 5_000, queries: 2, seed: 51}
	cw := getWorkload(b, k)
	h, err := cw.ix.ResolveThreshold(5_000, alae.SearchOptions{})
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		opts alae.SearchOptions
	}{
		{"all-filters", alae.SearchOptions{Threshold: h}},
		{"no-score-filter", alae.SearchOptions{Threshold: h, DisableScoreFilter: true}},
		{"no-length-filter", alae.SearchOptions{Threshold: h, DisableLengthFilter: true}},
		{"no-domination", alae.SearchOptions{Threshold: h, DisableDomination: true}},
		{"no-filters", alae.SearchOptions{Threshold: h,
			DisableScoreFilter: true, DisableLengthFilter: true, DisableDomination: true}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var last exp.Measurement
			for i := 0; i < b.N; i++ {
				last = exp.Measure(cw.ix, cw.wl, tc.opts)
				if last.Err != nil {
					b.Fatal(last.Err)
				}
			}
			b.ReportMetric(float64(last.Stats.CalculatedEntries), "entries")
			b.ReportMetric(float64(last.Stats.ForksDominated), "dominated")
		})
	}
}

// --- Rank core: bit-parallel packed layout vs the byte-scan layout ---

// benchRank times single-code ranks and batched all-code ranks at
// pseudo-random rows, the access pattern of backward search.
func benchRank(b *testing.B, fm *bwt.FMIndex) {
	rows := make([]int, 4096)
	rng := rand.New(rand.NewSource(7))
	for i := range rows {
		rows[i] = rng.Intn(fm.Rows() + 1)
	}
	b.Run("rank", func(b *testing.B) {
		var sink int32
		for i := 0; i < b.N; i++ {
			sink += fm.Rank(i&(fm.Sigma()-1), rows[i&4095])
		}
		_ = sink
	})
	b.Run("ranksAll", func(b *testing.B) {
		counts := make([]int32, fm.Sigma())
		for i := 0; i < b.N; i++ {
			fm.RanksAll(rows[i&4095], counts)
		}
	})
}

// BenchmarkRankDNA compares the two rank layouts on a DNA-sized
// alphabet; the packed sub-benchmarks should run several times faster
// than the byte ones.
func BenchmarkRankDNA(b *testing.B) {
	letters := []byte("ACGT")
	text := make([]byte, 1<<20)
	rng := rand.New(rand.NewSource(3))
	for i := range text {
		text[i] = letters[rng.Intn(4)]
	}
	b.Run("packed", func(b *testing.B) { benchRank(b, bwt.New(text)) })
	b.Run("byte", func(b *testing.B) {
		benchRank(b, bwt.NewWithOptions(text, bwt.Options{ForceByteRank: true}))
	})
}

// BenchmarkRankProtein exercises the σ=20 byte fallback (its
// checkpoint scan is a single pass since the packed-rank change).
func BenchmarkRankProtein(b *testing.B) {
	letters := []byte("ACDEFGHIKLMNPQRSTVWY")
	text := make([]byte, 1<<20)
	rng := rand.New(rand.NewSource(4))
	for i := range text {
		text[i] = letters[rng.Intn(len(letters))]
	}
	benchRank(b, bwt.New(text))
}

// --- Parallel fork-family scheduling: sequential vs all cores ---

func BenchmarkParallelSearch(b *testing.B) {
	// The Table 2 workload point (n=200k, m=5000).
	k := wlKey{kind: "dna", n: 200_000, m: 5_000, queries: 2, seed: 42}
	cw := getWorkload(b, k)
	cases := []struct {
		name string
		p    int
	}{{"p=1", 1}, {"p=max", 0}}
	if runtime.NumCPU() == 1 {
		b.Logf("NumCPU=1: p=max degenerates to the sequential engine")
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			benchSearch(b, cw, alae.SearchOptions{Algorithm: alae.ALAE, Parallelism: tc.p})
		})
	}
}

// --- Emission path: homologous protein, the emission-heavy point ---

// BenchmarkProteinEmission times the workload the emit-path overhaul
// targets: homologous protein queries whose wide surviving bands make
// collector traffic (not rank) the wall. Sizing follows the ROADMAP
// finding (homologous queries ≤ ~1200 on ≤ 60 kb texts).
func BenchmarkProteinEmission(b *testing.B) {
	k := wlKey{kind: "protein-emit", n: 30_000, m: 300, queries: 2, seed: 53}
	cw := getWorkload(b, k)
	for _, alg := range []alae.Algorithm{alae.ALAE, alae.ALAEHybrid} {
		b.Run(alg.String(), func(b *testing.B) {
			benchSearch(b, cw, alae.SearchOptions{Algorithm: alg, Parallelism: 1})
		})
	}
}

// --- Index persistence: save/load throughput ---

func BenchmarkIndexSaveLoad(b *testing.B) {
	k := wlKey{kind: "dna", n: 500_000, m: 64, queries: 1, seed: 52}
	cw := getWorkload(b, k)
	var buf bytes.Buffer
	if err := cw.ix.Save(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("save", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			if err := cw.ix.Save(&w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := alae.Load(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		b.SetBytes(int64(len(cw.wl.Text)))
		for i := 0; i < b.N; i++ {
			alae.NewIndex(cw.wl.Text)
		}
	})
}

// --- Serving store: sharded scatter-gather and the result cache ---

// storeCache shares built stores across sub-benchmark invocations.
var storeCache sync.Map

func getStore(b *testing.B, text []byte, shards, cacheSize int) *alae.Store {
	b.Helper()
	type key struct{ shards, cacheSize int }
	k := key{shards, cacheSize}
	if v, ok := storeCache.Load(k); ok {
		return v.(*alae.Store)
	}
	const chunks = 8
	recs := make([]alae.SeqRecord, 0, chunks)
	for i := 0; i < chunks; i++ {
		lo, hi := i*len(text)/chunks, (i+1)*len(text)/chunks
		recs = append(recs, alae.SeqRecord{Name: itoa(i), Seq: text[lo:hi]})
	}
	st, err := alae.NewStore(recs, alae.StoreOptions{Shards: shards, QueryCacheSize: cacheSize})
	if err != nil {
		b.Fatal(err)
	}
	storeCache.Store(k, st)
	return st
}

// BenchmarkStoreSearch serves the Table 2 workload (8 named chunks)
// through stores scattering over 1, 2 and 4 lanes of the shared index
// with the result cache disabled — the scatter-gather cost — plus the
// cache-hot exact-repeat point. Both metrics must be identical across
// lane counts (the shared-index scatter is exact — see DESIGN.md);
// the bench-json suite gates them, here they are reported.
func BenchmarkStoreSearch(b *testing.B) {
	k := wlKey{kind: "dna", n: 200_000, m: 5_000, queries: 2, seed: 42}
	cw := getWorkload(b, k)
	opts := alae.SearchOptions{Algorithm: alae.ALAE, Parallelism: 1}
	for _, shards := range []int{1, 2, 4} {
		b.Run("k="+itoa(shards), func(b *testing.B) {
			st := getStore(b, cw.wl.Text, shards, -1)
			run := func() (entries int64, hits int) {
				results, err := st.SearchAll(cw.wl.Queries, opts, 1)
				if err != nil {
					b.Fatal(err)
				}
				for _, res := range results {
					entries += res.Stats.CalculatedEntries
					hits += len(res.Hits)
				}
				return entries, hits
			}
			run() // warm sessions and lazy structures
			b.ResetTimer()
			var entries int64
			var hits int
			for i := 0; i < b.N; i++ {
				entries, hits = run()
			}
			b.ReportMetric(float64(hits), "hits")
			b.ReportMetric(float64(entries), "entries")
		})
	}
	b.Run("cache-hot", func(b *testing.B) {
		st := getStore(b, cw.wl.Text, 4, 0)
		query := cw.wl.Queries[0]
		if _, err := st.Search(query, opts); err != nil { // populate the cache
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		var res *alae.StoreResult
		for i := 0; i < b.N; i++ {
			var err error
			if res, err = st.Search(query, opts); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(res.Hits)), "hits")
		if res.Stats.QueryCacheHits != 1 {
			b.Fatal("cache-hot point missed the cache")
		}
	})
}
