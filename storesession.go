package alae

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/seq"
)

// validateStoreQuery rejects queries containing the member separator
// byte. The store's texts are T1 # T2 # … # Tn: a query holding the
// separator can align its '#' against a separator row of the text and
// match "across" members — a hit with no biological meaning that the
// gather step cannot distinguish from a genuine one (it rejects hits
// ENDING on separator rows, not hits crossing them mid-alignment).
// Such queries are always ingestion bugs (an unsplit multi-record
// FASTA, a stray formatting byte), so they are rejected at the search
// boundary with a descriptive error rather than answered wrongly.
func validateStoreQuery(query []byte) error {
	if i := bytes.IndexByte(query, seq.Separator); i >= 0 {
		return fmt.Errorf("alae: query byte %d is the member separator %q; a query must be a single sequence with no separator bytes", i, seq.Separator)
	}
	return nil
}

// StoreSession is a reusable scatter-gather serving lane over a Store:
// one search configuration answering query after query, holding one
// Session per shard (each of which owns pooled per-query state from
// the shard engine's session pool — see Session). Like Session, a
// StoreSession is NOT safe for concurrent use; concurrency comes from
// many sessions over the shared store, which Store.Search manages
// automatically through per-configuration pools.
type StoreSession struct {
	st     *Store
	opts   SearchOptions
	s      Scheme
	lanes  []*Session // one per shard, opened eagerly
	ress   []*Result  // per-shard scatter results, reused
	errs   []error    // per-shard scatter errors, reused
	closed bool
}

// OpenSession returns a scatter-gather session for one search
// configuration. Configuration errors surface here (see
// Index.OpenSession); one lane is opened per shard.
func (st *Store) OpenSession(opts SearchOptions) (*StoreSession, error) {
	s := opts.Scheme
	if s == (Scheme{}) {
		s = DefaultDNAScheme
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := validateSearchOptions(opts, s); err != nil {
		return nil, err
	}
	ss := &StoreSession{
		st: st, opts: opts, s: s,
		lanes: make([]*Session, 0, len(st.shards)),
		ress:  make([]*Result, len(st.shards)),
		errs:  make([]error, len(st.shards)),
	}
	for _, sh := range st.shards {
		lane, err := sh.ix.OpenSession(opts)
		if err != nil {
			ss.Close()
			return nil, err
		}
		ss.lanes = append(ss.lanes, lane)
	}
	return ss, nil
}

// Search scatter-gathers one query across the shards. The threshold is
// resolved once against the WHOLE store (length and alphabet of the
// virtual concatenation), every shard searches at that same H in
// parallel, and the gather maps each shard's hits into global
// coordinates — dropping hits that end on separator rows — in shard
// order, which is global (TEnd, QEnd) order. Results are identical to
// a monolithic index over the same concatenation, hit for hit, except
// for alignments that would cross a shard boundary's separator (the
// separator scores as a mismatch in the monolithic text; it does not
// exist between shards).
//
// StoreSession.Search does not consult the store's query cache — that
// is Store.Search's job — so it is also the cache-bypass path.
func (ss *StoreSession) Search(query []byte) (*StoreResult, error) {
	return ss.SearchContext(context.Background(), query)
}

// SearchContext is Search under a context: the context is shared by
// every shard lane of the scatter, so a deadline or cancellation
// aborts ALL shards within their entry budgets and the context's own
// error is returned (never a per-shard wrapping — a cancelled scatter
// is the caller's doing, not any shard's). The session remains fully
// reusable after a cancelled search.
func (ss *StoreSession) SearchContext(cx context.Context, query []byte) (*StoreResult, error) {
	if ss.closed {
		return nil, fmt.Errorf("alae: Search on a closed StoreSession")
	}
	if err := validateStoreQuery(query); err != nil {
		return nil, err
	}
	h, err := ss.st.resolveThreshold(len(query), ss.opts, ss.s)
	if err != nil {
		return nil, err
	}
	// Scatter: every shard at the same pinned threshold, in parallel
	// when there is more than one shard.
	if len(ss.lanes) == 1 {
		ss.ress[0], ss.errs[0] = ss.lanes[0].searchThreshold(cx, query, h)
	} else {
		var wg sync.WaitGroup
		for k, lane := range ss.lanes {
			wg.Add(1)
			go func(k int, lane *Session) {
				defer wg.Done()
				ss.ress[k], ss.errs[k] = lane.searchThreshold(cx, query, h)
			}(k, lane)
		}
		wg.Wait()
	}
	if err := cx.Err(); err != nil {
		// The context died during the scatter: report ITS error, bare,
		// whatever subset of shards happened to observe it. Partial
		// results must not outlive the error path.
		clear(ss.ress)
		return nil, err
	}
	for k, err := range ss.errs {
		if err != nil {
			// Drop every shard's result before the session goes back to
			// a pool: the gather below nils them as it goes, and the
			// error path must not pin the successful shards' hit tables
			// either.
			clear(ss.ress)
			return nil, fmt.Errorf("alae: shard %d: %w", k, err)
		}
	}
	// Gather: map in shard order. Shards are contiguous in global
	// coordinates and each shard's hits arrive (TEnd, QEnd)-sorted, so
	// appending preserves the global order a monolithic search returns.
	out := &StoreResult{Threshold: h, Algorithm: ss.opts.Algorithm}
	nhits := 0
	for _, res := range ss.ress {
		nhits += len(res.Hits)
	}
	out.Hits = make([]SeqHit, 0, nhits)
	for k := range ss.ress {
		sh := &ss.st.shards[k]
		res := ss.ress[k]
		for _, hh := range res.Hits {
			lm, local, ok := sh.tab.Locate(hh.TEnd, hh.TEnd+1)
			if !ok {
				continue // ends on a separator row: rejected here, at the gather
			}
			g := sh.base + lm
			out.Hits = append(out.Hits, SeqHit{
				Hit: Hit{
					TEnd:  ss.st.seqs.Start(g) + local,
					QEnd:  hh.QEnd,
					Score: hh.Score,
				},
				Member:    g,
				Name:      ss.st.seqs.Name(g),
				LocalTEnd: local,
			})
		}
		out.Stats.add(res.Stats)
		ss.ress[k] = nil // do not pin shard results past the gather
	}
	return out, nil
}

// Close closes every shard lane, handing their pooled state back to
// the shard engines. Idempotent; the session must not be used after.
func (ss *StoreSession) Close() {
	for _, lane := range ss.lanes {
		lane.Close()
	}
	ss.closed = true
}

// storeSearchAllStarted mirrors searchAllStarted for Store.SearchAll;
// test hook only.
var storeSearchAllStarted func(qi int)

// SearchAll runs many queries concurrently over the store with the
// given worker count (0 means one worker per query up to 8). Results
// come back in query order; the first error (lowest query index, same
// determinism contract as Index.SearchAll) cancels the remaining work
// and is returned wrapped with its query index. Each worker holds one
// StoreSession for its whole run, and every query goes through the
// query cache, so batches with repeated queries collapse into probes.
func (st *Store) SearchAll(queries [][]byte, opts SearchOptions, workers int) ([]*StoreResult, error) {
	return st.SearchAllContext(context.Background(), queries, opts, workers)
}

// SearchAllContext is SearchAll under a context: the context is shared
// by every worker, so a deadline or cancellation stops in-flight
// queries within their entry budgets, prevents unstarted queries from
// launching, and returns the context's own error (result slots of
// unfinished queries stay nil).
func (st *Store) SearchAllContext(cx context.Context, queries [][]byte, opts SearchOptions, workers int) ([]*StoreResult, error) {
	if workers <= 0 {
		workers = 8
	}
	workers = min(workers, len(queries))
	if workers == 0 {
		return nil, nil
	}
	// Warm the shared lazy structures once (domination indexes for the
	// ALAE engines) so workers do not race to build them redundantly.
	s := opts.Scheme
	if s == (Scheme{}) {
		s = DefaultDNAScheme
	}
	if opts.Algorithm == ALAE || opts.Algorithm == ALAEHybrid {
		for _, sh := range st.shards {
			if _, err := sh.ix.DominationIndexSize(s); err != nil {
				return nil, err
			}
		}
	}
	fp := optionsFingerprint(opts)
	pool := st.sessionPool(fp)
	results := make([]*StoreResult, len(queries))
	errs := make([]error, len(queries))
	var (
		wg       sync.WaitGroup
		cursor   atomic.Int64
		failedAt atomic.Int64 // lowest failing query index; len(queries) = none
		openOnce sync.Once
		openErr  error
	)
	failedAt.Store(int64(len(queries)))
	markFailed := func(qi int) {
		for {
			cur := failedAt.Load()
			if int64(qi) >= cur || failedAt.CompareAndSwap(cur, int64(qi)) {
				return
			}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ss *StoreSession
			if v := pool.Get(); v != nil {
				ss = v.(*StoreSession)
			} else {
				var err error
				if ss, err = st.OpenSession(opts); err != nil {
					// Configuration errors apply to every query; see
					// Index.SearchAll for the claim-and-mark rationale.
					openOnce.Do(func() { openErr = err })
					qi := int(cursor.Add(1)) - 1
					markFailed(min(qi, len(queries)-1))
					return
				}
			}
			defer pool.Put(ss)
			for {
				if failedAt.Load() < int64(len(queries)) {
					return
				}
				qi := int(cursor.Add(1)) - 1
				if qi >= len(queries) {
					return
				}
				if storeSearchAllStarted != nil {
					storeSearchAllStarted(qi)
				}
				results[qi], errs[qi] = st.cachedSearch(cx, ss, fp, queries[qi])
				if errs[qi] != nil {
					markFailed(qi)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := cx.Err(); err != nil {
		// The batch was cancelled: the context's error outranks any
		// per-query failure it induced.
		return nil, err
	}
	if fa := int(failedAt.Load()); fa < len(queries) {
		if errs[fa] != nil {
			return nil, fmt.Errorf("alae: store query %d: %w", fa, errs[fa])
		}
		return nil, openErr
	}
	return results, nil
}
