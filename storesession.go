package alae

import (
	"bytes"
	"context"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/seq"
)

// validateStoreQuery rejects queries containing the member separator
// byte. The store's texts are T1 # T2 # … # Tn: a query holding the
// separator can align its '#' against a separator row of the text and
// match "across" members — a hit with no biological meaning that the
// gather step cannot distinguish from a genuine one (it rejects hits
// ENDING on separator rows, not hits crossing them mid-alignment).
// Such queries are always ingestion bugs (an unsplit multi-record
// FASTA, a stray formatting byte), so they are rejected at the search
// boundary with a descriptive error rather than answered wrongly.
func validateStoreQuery(query []byte) error {
	if i := bytes.IndexByte(query, seq.Separator); i >= 0 {
		return fmt.Errorf("alae: query byte %d is the member separator %q; a query must be a single sequence with no separator bytes", i, seq.Separator)
	}
	return nil
}

// storeLane is one scatter lane of a StoreSession: a Session over one
// generation's monolithic index. The K-way parallelism WITHIN a lane
// comes from the family-slice dispatch (core.Session.SearchLanes), not
// from more lanes: the query's grams are resolved once per generation,
// and the resolved families are cut into K cost-balanced slices.
type storeLane struct {
	gen  int // index into the bound view's generation list
	ix   *Index
	sess *Session
}

// StoreSession is a reusable scatter-gather serving lane over a Store:
// one search configuration answering query after query, holding one
// Session per generation (each of which owns pooled per-query state
// from the generation engine's session pool — see Session). The
// session binds to the store view current at each search and re-syncs
// itself after a mutation, reusing the lanes of every generation that
// survived (mutations never modify an existing generation's index, so
// surviving lanes stay valid). Like Session, a StoreSession is NOT
// safe for concurrent use; concurrency comes from many sessions over
// the shared store, which Store.Search manages automatically through
// per-configuration pools.
type StoreSession struct {
	st    *Store
	opts  SearchOptions
	s     Scheme
	view  *storeView  // the bound view; searches run against it
	lanes []storeLane // one per generation of the bound view
	stats []Stats     // per-lane scatter stats, reused
	ress  []*Result   // per-lane baseline fallback results, reused
	errs  []error     // per-lane scatter errors, reused

	// Streaming-gather state, reused across searches: one SeqHit
	// bucket per live member of the bound view, plus the list of
	// buckets the current gather touched (so resetting is O(touched),
	// not O(members)).
	buckets [][]SeqHit
	touched []int
	closed  bool
}

// OpenSession returns a scatter-gather session for one search
// configuration. Configuration errors surface here (see
// Index.OpenSession); one lane is opened per generation.
func (st *Store) OpenSession(opts SearchOptions) (*StoreSession, error) {
	s := opts.Scheme
	if s == (Scheme{}) {
		s = DefaultDNAScheme
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := validateSearchOptions(opts, s); err != nil {
		return nil, err
	}
	ss := &StoreSession{st: st, opts: opts, s: s}
	if err := ss.syncView(); err != nil {
		return nil, err
	}
	return ss, nil
}

// syncView binds the session to the store's current view, opening and
// closing lanes as the generation list demands. Lanes whose generation
// index survived the mutation (the common case: appends add
// generations, deletes only flip tombstones) are kept warm — matched
// by Index identity — so pooled sessions pay only for genuinely new or
// compacted-away generations. On error the session is left empty but
// reusable (the next sync retries from scratch).
func (ss *StoreSession) syncView() error {
	v := ss.st.currentView()
	if v == ss.view {
		return nil
	}
	old := make(map[*Index]*Session, len(ss.lanes))
	for _, ln := range ss.lanes {
		old[ln.ix] = ln.sess
	}
	lanes := make([]storeLane, 0, len(v.gens))
	var err error
	for gi, g := range v.gens {
		ix := g.ix
		sess := old[ix]
		if sess != nil {
			delete(old, ix)
		} else if sess, err = ix.OpenSession(ss.opts); err != nil {
			break
		}
		lanes = append(lanes, storeLane{gen: gi, ix: ix, sess: sess})
	}
	for _, sess := range old {
		sess.Close() // generations compacted away (or error path below)
	}
	if err != nil {
		for _, ln := range lanes {
			ln.sess.Close()
		}
		ss.lanes, ss.view, ss.stats, ss.ress, ss.errs = nil, nil, nil, nil, nil
		ss.buckets, ss.touched = nil, nil
		return err
	}
	ss.lanes, ss.view = lanes, v
	ss.stats = make([]Stats, len(lanes))
	ss.ress = make([]*Result, len(lanes))
	ss.errs = make([]error, len(lanes))
	// The gather buckets are keyed by live member index, which a
	// mutation renumbers; they are always empty between searches, so a
	// resync only needs to fix their count.
	if cap(ss.buckets) < len(v.loc) {
		buckets := make([][]SeqHit, len(v.loc))
		copy(buckets, ss.buckets)
		ss.buckets = buckets
	} else {
		ss.buckets = ss.buckets[:len(v.loc)]
	}
	return nil
}

// Search scatter-gathers one query across the store's generations. The
// threshold is resolved once against the WHOLE live store (length and
// alphabet of the live virtual concatenation); each generation
// resolves the query's grams ONCE against its monolithic index and
// dispatches the resolved fork families across K cost-balanced lanes
// at that same H; and the gather streams every generation's collector
// table straight into per-member SeqHit buckets — dropping hits that
// end on separator rows, inside tombstoned members, or whose score
// proves the alignment crossed in from another member (bucketHit) —
// then emits the buckets in live-member order, which is global
// (TEnd, QEnd) order.
// Results are identical to a monolithic index over the live
// concatenation, hit for hit and entry for entry, for EVERY K — K only
// partitions the resolved work, never the text — except for alignments
// that would cross a generation boundary's separator (the separator
// scores as a mismatch in the monolithic text; it does not exist
// between generations).
//
// StoreSession.Search does not consult the store's query cache — that
// is Store.Search's job — so it is also the cache-bypass path.
func (ss *StoreSession) Search(query []byte) (*StoreResult, error) {
	return ss.SearchContext(context.Background(), query)
}

// SearchContext is Search under a context: the context is shared by
// every lane of the scatter, so a deadline or cancellation aborts ALL
// lanes within their entry budgets and the context's own error is
// returned (never a per-lane wrapping — a cancelled scatter is the
// caller's doing, not any lane's). The session remains fully reusable
// after a cancelled search, and re-syncs to the store's current view
// first, so a session opened before a mutation searches the
// post-mutation store.
func (ss *StoreSession) SearchContext(cx context.Context, query []byte) (*StoreResult, error) {
	if ss.closed {
		return nil, fmt.Errorf("alae: Search on a closed StoreSession")
	}
	if err := ss.syncView(); err != nil {
		return nil, err
	}
	return ss.searchCurrent(cx, query)
}

// laneWorkers is the family-slice fan-out each generation search runs
// at: the store's K when set above 1, else the engine-level
// SearchOptions.Parallelism (which keeps the pre-refactor behaviour
// for unsharded stores, including its 0 = NumCPU default).
func (ss *StoreSession) laneWorkers() int {
	if k := ss.st.k; k > 1 {
		return k
	}
	return ss.opts.Parallelism
}

// bucketHit maps one collector hit into its per-member gather bucket,
// returning 1 if it survived (0 for separator-row, cross-member and
// tombstone rejections). gi/g are the lane's generation.
func (ss *StoreSession) bucketHit(v *storeView, g *generation, gi, tEnd, qEnd, score int) int {
	lm, local, ok := g.tab.Locate(tEnd, tEnd+1)
	if !ok {
		return 0 // ends on a separator row: rejected here, at the gather
	}
	// Cross-member backstop: every aligned text row contributes at most
	// sa, so an alignment scoring `score` spans at least ⌈score/sa⌉ text
	// rows — if fewer rows fit between the member's start and the hit's
	// end, the alignment provably started in an earlier member across a
	// separator. The exact engines make such hits structurally
	// impossible (the separator is a trie barrier, core.Options), so
	// this only catches the baseline algorithms, which sweep the
	// concatenation without the barrier.
	if minLen := (score + ss.s.Match - 1) / ss.s.Match; local+1 < minLen {
		return 0
	}
	gm := v.live[gi][lm]
	if gm < 0 {
		return 0 // tombstoned member: deleted, awaiting compaction
	}
	if len(ss.buckets[gm]) == 0 {
		ss.touched = append(ss.touched, gm)
	}
	ss.buckets[gm] = append(ss.buckets[gm], SeqHit{
		Hit: Hit{
			TEnd:  v.seqs.Start(gm) + local,
			QEnd:  qEnd,
			Score: score,
		},
		Member:    gm,
		Name:      v.seqs.Name(gm),
		LocalTEnd: local,
	})
	return 1
}

// searchCurrent runs the scatter-gather against the already-bound
// view. Store.cachedSearch calls it directly after its own sync so the
// cache key's stamp and the computation describe the same view.
func (ss *StoreSession) searchCurrent(cx context.Context, query []byte) (*StoreResult, error) {
	if ss.closed {
		return nil, fmt.Errorf("alae: Search on a closed StoreSession")
	}
	if err := validateStoreQuery(query); err != nil {
		return nil, err
	}
	v := ss.view
	h, err := v.resolveThreshold(len(query), ss.opts, ss.s)
	if err != nil {
		return nil, err
	}
	// Scatter: every generation lane at the same pinned threshold, in
	// parallel when there is more than one generation. Each lane leaves
	// its hits resident in its session's collector (searchCollect);
	// baselines, which have no collector, fall back to a materialised
	// per-lane Result.
	lanes := ss.laneWorkers()
	if len(ss.lanes) == 1 {
		ss.stats[0], ss.ress[0], ss.errs[0] = ss.lanes[0].sess.searchCollect(cx, query, h, lanes)
	} else {
		var wg sync.WaitGroup
		for k := range ss.lanes {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				ss.stats[k], ss.ress[k], ss.errs[k] = ss.lanes[k].sess.searchCollect(cx, query, h, lanes)
			}(k)
		}
		wg.Wait()
	}
	if err := cx.Err(); err != nil {
		// The context died during the scatter: report ITS error, bare,
		// whatever subset of lanes happened to observe it. Partial
		// fallback results must not outlive the error path (collectors
		// are session-owned and reset by the next search).
		clear(ss.ress)
		return nil, err
	}
	for k, err := range ss.errs {
		if err != nil {
			clear(ss.ress)
			return nil, fmt.Errorf("alae: shard %d: %w", k, err)
		}
	}
	// Gather, streaming: each lane's collector table flows straight
	// into per-member SeqHit buckets — no intermediate per-lane sorted
	// hit slice is ever built. Tombstoned members are dropped HERE:
	// their bytes are still indexed until a compaction purges them, but
	// no hit inside one survives the gather. The buckets then emit in
	// live-member order; member coordinate ranges ascend in that order,
	// so after the per-bucket sort the output is exactly the global
	// (TEnd, QEnd) order a monolithic search over the live
	// concatenation returns.
	out := &StoreResult{Threshold: h, Algorithm: ss.opts.Algorithm}
	total := 0
	for k := range ss.lanes {
		ln := &ss.lanes[k]
		g := v.gens[ln.gen]
		if res := ss.ress[k]; res != nil {
			for _, hh := range res.Hits {
				total += ss.bucketHit(v, g, ln.gen, hh.TEnd, hh.QEnd, hh.Score)
			}
			ss.ress[k] = nil // do not pin fallback results past the gather
		} else {
			coll := ln.sess.coll
			coll.ForEach(func(tEnd, qEnd, score int) {
				total += ss.bucketHit(v, g, ln.gen, tEnd, qEnd, score)
			})
		}
		out.Stats.add(ss.stats[k])
	}
	slices.Sort(ss.touched) // bucket emission must follow live-member order
	out.Hits = make([]SeqHit, 0, total)
	for _, gm := range ss.touched {
		b := ss.buckets[gm]
		slices.SortFunc(b, func(a, c SeqHit) int {
			if a.TEnd != c.TEnd {
				return a.TEnd - c.TEnd
			}
			return a.QEnd - c.QEnd
		})
		out.Hits = append(out.Hits, b...)
		ss.buckets[gm] = b[:0] // keep capacity warm, never pin hits
	}
	ss.touched = ss.touched[:0]
	return out, nil
}

// Close closes every generation lane, handing their pooled state back
// to the engines. Idempotent; the session must not be used after.
func (ss *StoreSession) Close() {
	for _, ln := range ss.lanes {
		ln.sess.Close()
	}
	ss.lanes = nil
	ss.closed = true
}

// storeSearchAllStarted mirrors searchAllStarted for Store.SearchAll;
// test hook only.
var storeSearchAllStarted func(qi int)

// SearchAll runs many queries concurrently over the store with the
// given worker count (0 means one worker per query up to 8). Results
// come back in query order; the first error (lowest query index, same
// determinism contract as Index.SearchAll) cancels the remaining work
// and is returned wrapped with its query index. Each worker holds one
// StoreSession for its whole run, and every query goes through the
// query cache, so batches with repeated queries collapse into probes.
func (st *Store) SearchAll(queries [][]byte, opts SearchOptions, workers int) ([]*StoreResult, error) {
	return st.SearchAllContext(context.Background(), queries, opts, workers)
}

// SearchAllContext is SearchAll under a context: the context is shared
// by every worker, so a deadline or cancellation stops in-flight
// queries within their entry budgets, prevents unstarted queries from
// launching, and returns the context's own error (result slots of
// unfinished queries stay nil).
func (st *Store) SearchAllContext(cx context.Context, queries [][]byte, opts SearchOptions, workers int) ([]*StoreResult, error) {
	if workers <= 0 {
		workers = 8
	}
	workers = min(workers, len(queries))
	if workers == 0 {
		return nil, nil
	}
	// Warm the shared lazy structures once (domination indexes for the
	// ALAE engines) so workers do not race to build them redundantly.
	s := opts.Scheme
	if s == (Scheme{}) {
		s = DefaultDNAScheme
	}
	if opts.Algorithm == ALAE || opts.Algorithm == ALAEHybrid {
		for _, g := range st.currentView().gens {
			if _, err := g.ix.DominationIndexSize(s); err != nil {
				return nil, err
			}
		}
	}
	fp := optionsFingerprint(opts)
	pool := st.sessionPool(fp)
	results := make([]*StoreResult, len(queries))
	errs := make([]error, len(queries))
	var (
		wg       sync.WaitGroup
		cursor   atomic.Int64
		failedAt atomic.Int64 // lowest failing query index; len(queries) = none
		openOnce sync.Once
		openErr  error
	)
	failedAt.Store(int64(len(queries)))
	markFailed := func(qi int) {
		for {
			cur := failedAt.Load()
			if int64(qi) >= cur || failedAt.CompareAndSwap(cur, int64(qi)) {
				return
			}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ss *StoreSession
			if v := pool.Get(); v != nil {
				ss = v.(*StoreSession)
			} else {
				var err error
				if ss, err = st.OpenSession(opts); err != nil {
					// Configuration errors apply to every query; see
					// Index.SearchAll for the claim-and-mark rationale.
					openOnce.Do(func() { openErr = err })
					qi := int(cursor.Add(1)) - 1
					markFailed(min(qi, len(queries)-1))
					return
				}
			}
			defer pool.Put(ss)
			for {
				if failedAt.Load() < int64(len(queries)) {
					return
				}
				qi := int(cursor.Add(1)) - 1
				if qi >= len(queries) {
					return
				}
				if storeSearchAllStarted != nil {
					storeSearchAllStarted(qi)
				}
				results[qi], errs[qi] = st.cachedSearch(cx, ss, fp, queries[qi])
				if errs[qi] != nil {
					markFailed(qi)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := cx.Err(); err != nil {
		// The batch was cancelled: the context's error outranks any
		// per-query failure it induced.
		return nil, err
	}
	if fa := int(failedAt.Load()); fa < len(queries) {
		if errs[fa] != nil {
			return nil, fmt.Errorf("alae: store query %d: %w", fa, errs[fa])
		}
		return nil, openErr
	}
	return results, nil
}
