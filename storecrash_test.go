package alae

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/seq"
)

// The crash-injection matrix: every durable step of every mutation is
// a potential crash point, and the recovery contract is binary — a
// store directory captured at ANY step must reload as a store whose
// answers are byte-identical to either the pre-mutation or the
// post-mutation store. storeFSHook (storegen.go) is the seam: the
// matrix snapshots the directory after each step (exactly the on-disk
// state a crash there would leave, leftover temp files included) and
// replays every snapshot through LoadStoreFile.

func readFileBytes(path string) ([]byte, error) { return os.ReadFile(path) }

func writeFileBytes(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }

// linkStoreDir populates dst with hard links to every regular file of
// src (cheap per-case directory copies for the fuzzer and the matrix).
func linkStoreDir(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if err := os.Link(filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())); err != nil {
			t.Fatal(err)
		}
	}
}

// copyDirBytes snapshots every regular file of src into a fresh
// directory under parent (real copies: snapshots must not alias files
// a later step will rename or remove).
func copyDirBytes(t *testing.T, src, parent, name string) string {
	t.Helper()
	dst := filepath.Join(parent, name)
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestStoreCrashMatrix drives the canonical mutation sequence —
// append, delete, compact — over a directory-backed store, snapshotting
// the directory at every durable step of every mutation, and asserts
// each snapshot reloads as exactly the pre- or post-mutation store.
func TestStoreCrashMatrix(t *testing.T) {
	wl := buildStoreWorkload(seq.DNA, 6, 1500, 200, 920)
	dir := filepath.Join(t.TempDir(), "db")
	st, err := NewStore(wl.records[:4], StoreOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveDir(dir); err != nil {
		t.Fatal(err)
	}

	mutations := []struct {
		name string
		run  func() error
	}{
		{"append", func() error { return st.Append(wl.records[4:6]) }},
		{"delete", func() error { _, err := st.Delete(wl.records[1].Name, wl.records[4].Name); return err }},
		{"compact", func() error { _, err := st.Compact(); return err }},
	}
	for _, mut := range mutations {
		t.Run(mut.name, func(t *testing.T) {
			pre := storeHits(t, st, wl.queries, SearchOptions{})
			snapParent := t.TempDir()
			var snaps []string
			var steps []string
			storeFSHook = func(step, path string) error {
				name := fmt.Sprintf("snap-%02d", len(snaps))
				snaps = append(snaps, copyDirBytes(t, dir, snapParent, name))
				steps = append(steps, step+" "+filepath.Base(path))
				return nil
			}
			err := mut.run()
			storeFSHook = nil
			if err != nil {
				t.Fatal(err)
			}
			post := storeHits(t, st, wl.queries, SearchOptions{})
			if len(snaps) < 4 {
				t.Fatalf("matrix vacuous: only %d durable steps snapshotted", len(snaps))
			}
			for i, snap := range snaps {
				loaded, err := LoadStoreFile(snap, StoreOptions{})
				if err != nil {
					t.Fatalf("snapshot %d (%s) does not load: %v", i, steps[i], err)
				}
				got := storeHits(t, loaded, wl.queries, SearchOptions{})
				matchPre := storeResultsEqual(got, pre)
				matchPost := storeResultsEqual(got, post)
				if !matchPre && !matchPost {
					t.Fatalf("snapshot %d (%s) reloads as NEITHER the pre- nor post-%s store", i, steps[i], mut.name)
				}
				// A committed manifest (post-rename) must recover as the
				// post-mutation store even if later steps never ran —
				// unless pre and post answer identically (compaction).
				if i == len(snaps)-1 && !matchPost {
					t.Fatalf("final snapshot (%s) does not reload as the post-%s store", steps[i], mut.name)
				}
				// Recovery must also sweep the debris the crash left.
				ents, err := os.ReadDir(snap)
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range ents {
					if strings.Contains(e.Name(), ".tmp-") {
						t.Fatalf("snapshot %d (%s): temp file %s survives recovery", i, steps[i], e.Name())
					}
				}
			}
		})
	}
	// The store that ran the whole gauntlet still matches a clean load.
	final, err := LoadStoreFile(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !storeResultsEqual(storeHits(t, final, wl.queries, SearchOptions{}), storeHits(t, st, wl.queries, SearchOptions{})) {
		t.Fatal("post-gauntlet reload disagrees with the live store")
	}
}

// TestStoreMutationAbortsCleanly injects hard failures (not crashes:
// the mutation SEES the error) at each pre-commit step and asserts the
// mutation reports it, the in-memory store still serves the pre-state,
// no temp debris is left, and the directory still reloads as the
// pre-state.
func TestStoreMutationAbortsCleanly(t *testing.T) {
	wl := buildStoreWorkload(seq.DNA, 5, 1200, 200, 921)
	for _, failAt := range []string{"temp-created", "temp-written", "temp-synced"} {
		t.Run(failAt, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "db")
			st, err := NewStore(wl.records[:3], StoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if err := st.SaveDir(dir); err != nil {
				t.Fatal(err)
			}
			pre := storeHits(t, st, wl.queries, SearchOptions{})
			preStamp := st.Stamp()
			boom := errors.New("injected failure")
			storeFSHook = func(step, path string) error {
				if step == failAt {
					return boom
				}
				return nil
			}
			err = st.Append(wl.records[3:5])
			storeFSHook = nil
			if !errors.Is(err, boom) {
				t.Fatalf("Append error = %v, want the injected failure", err)
			}
			if st.Stamp() != preStamp {
				t.Fatalf("failed mutation moved the stamp %d -> %d", preStamp, st.Stamp())
			}
			if !storeResultsEqual(storeHits(t, st, wl.queries, SearchOptions{}), pre) {
				t.Fatal("failed mutation changed the in-memory store")
			}
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ents {
				if strings.Contains(e.Name(), ".tmp-") {
					t.Fatalf("failed mutation left temp file %s", e.Name())
				}
			}
			reloaded, err := LoadStoreFile(dir, StoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !storeResultsEqual(storeHits(t, reloaded, wl.queries, SearchOptions{}), pre) {
				t.Fatal("directory after failed mutation does not reload as the pre-state")
			}
		})
	}
}

// TestStoreDirSweep plants the debris an interrupted compaction leaves
// — an orphan generation file and a stale temp file — and asserts a
// load serves the manifest's store and removes the debris, while
// leaving foreign files alone.
func TestStoreDirSweep(t *testing.T) {
	wl := buildStoreWorkload(seq.DNA, 4, 1200, 200, 922)
	dir := filepath.Join(t.TempDir(), "db")
	st, err := NewStore(wl.records, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	want := storeHits(t, st, wl.queries, SearchOptions{})
	orphan := filepath.Join(dir, genFileName(99))
	if err := os.WriteFile(orphan, []byte("interrupted compaction output"), 0o644); err != nil {
		t.Fatal(err)
	}
	temp := filepath.Join(dir, manifestName+".tmp-1234")
	if err := os.WriteFile(temp, []byte("torn manifest"), 0o644); err != nil {
		t.Fatal(err)
	}
	foreign := filepath.Join(dir, "README")
	if err := os.WriteFile(foreign, []byte("not ours"), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStoreFile(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !storeResultsEqual(storeHits(t, loaded, wl.queries, SearchOptions{}), want) {
		t.Fatal("debris changed the loaded store")
	}
	for _, path := range []string{orphan, temp} {
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("%s survived the load sweep", filepath.Base(path))
		}
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatal("the sweep removed a foreign file")
	}
}
