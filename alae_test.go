package alae

import (
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/seq"
)

func randDNA(n int, rng *rand.Rand) []byte {
	letters := []byte("ACGT")
	out := make([]byte, n)
	for i := range out {
		out[i] = letters[rng.Intn(4)]
	}
	return out
}

// workload builds a text with a mutated copy of part of it as query.
func workload(seed int64, n, qlen int) (text, query []byte) {
	rng := rand.New(rand.NewSource(seed))
	text = randDNA(n, rng)
	query = seq.Mutate(seq.DNA, text[n/4:n/4+qlen],
		seq.MutationConfig{SubstitutionRate: 0.05, IndelRate: 0.01}, rng)
	return text, query
}

func TestAllExactAlgorithmsAgree(t *testing.T) {
	text, query := workload(200, 2000, 400)
	ix := NewIndex(text)
	var ref []Hit
	for _, alg := range []Algorithm{SmithWaterman, ALAE, ALAEHybrid, BWTSW} {
		res, err := ix.Search(query, SearchOptions{Algorithm: alg, Threshold: 20})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Threshold != 20 {
			t.Fatalf("%v: threshold %d", alg, res.Threshold)
		}
		if ref == nil {
			ref = res.Hits
			if len(ref) == 0 {
				t.Fatal("vacuous workload")
			}
			continue
		}
		if !align.EqualHits(res.Hits, ref) {
			t.Fatalf("%v disagrees with Smith-Waterman: %d vs %d hits",
				alg, len(res.Hits), len(ref))
		}
	}
}

func TestBLASTFindsSubset(t *testing.T) {
	text, query := workload(201, 5000, 800)
	ix := NewIndex(text)
	exact, err := ix.Search(query, SearchOptions{Algorithm: ALAE, Threshold: 25})
	if err != nil {
		t.Fatal(err)
	}
	heur, err := ix.Search(query, SearchOptions{Algorithm: BLAST, Threshold: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(heur.Hits) > len(exact.Hits) {
		t.Errorf("BLAST found %d > exact %d", len(heur.Hits), len(exact.Hits))
	}
	if heur.Stats.Seeds == 0 {
		t.Error("BLAST reported no seeds")
	}
}

func TestEValueThresholdDerivation(t *testing.T) {
	text, query := workload(202, 3000, 500)
	ix := NewIndex(text)
	res, err := ix.Search(query, SearchOptions{}) // all defaults: ALAE, E=10
	if err != nil {
		t.Fatal(err)
	}
	if res.Threshold <= DefaultDNAScheme.MinThreshold() {
		t.Errorf("derived threshold %d suspiciously low", res.Threshold)
	}
	// A stricter E-value must not lower the threshold.
	strict, err := ix.Search(query, SearchOptions{EValue: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Threshold <= res.Threshold {
		t.Errorf("E=1e-10 threshold %d not above E=10 threshold %d",
			strict.Threshold, res.Threshold)
	}
	if len(strict.Hits) > len(res.Hits) {
		t.Error("stricter threshold produced more hits")
	}
}

func TestBWTSWRejectsIncompatibleScheme(t *testing.T) {
	ix := NewIndex([]byte("ACGTACGTACGT"))
	_, err := ix.Search([]byte("ACGTACGT"), SearchOptions{
		Algorithm: BWTSW,
		Scheme:    Scheme{Match: 1, Mismatch: -1, GapOpen: -5, GapExtend: -2},
		Threshold: 10,
	})
	if err == nil {
		t.Error("BWT-SW accepted |sb| < 3|sa| (§2.4 forbids it)")
	}
}

func TestHybridReportsReuse(t *testing.T) {
	// A query with heavy internal repetition produces duplicated fork
	// suffixes, which is what the reuse technique exploits.
	rng := rand.New(rand.NewSource(203))
	unit := randDNA(60, rng)
	text := append(append(append([]byte(nil), unit...), randDNA(100, rng)...), unit...)
	var query []byte
	for i := 0; i < 6; i++ {
		query = append(query, unit...)
	}
	ix := NewIndex(text)
	res, err := ix.Search(query, SearchOptions{Algorithm: ALAEHybrid, Threshold: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.AccessedEntries != res.Stats.CalculatedEntries+res.Stats.ReusedEntries {
		t.Error("accessed != calculated + reused")
	}
	if res.Stats.ReusedEntries == 0 {
		t.Log("note: no reuse on this workload (acceptable but unexpected)")
	}
}

func TestAlignTraceback(t *testing.T) {
	text, query := workload(204, 1500, 300)
	ix := NewIndex(text)
	res, err := ix.Search(query, SearchOptions{Threshold: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits")
	}
	best := res.Hits[0]
	for _, h := range res.Hits {
		if h.Score > best.Score {
			best = h
		}
	}
	a, err := ix.Align(query, Scheme{}, best)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != best.Score || a.TEnd != best.TEnd {
		t.Errorf("alignment %+v does not match hit %+v", a, best)
	}
	if out := ix.FormatAlignment(a, query, 60); out == "" {
		t.Error("empty formatted alignment")
	}
}

func TestIndexAccessors(t *testing.T) {
	text := []byte("ACGTACGTACGTACGT")
	ix := NewIndex(text)
	if ix.Len() != len(text) {
		t.Errorf("Len = %d", ix.Len())
	}
	if ix.SizeBytes() <= 0 || ix.PackedSizeBytes() <= 0 {
		t.Error("index sizes must be positive")
	}
	if ds, err := ix.DominationIndexSize(DefaultDNAScheme); err != nil || ds <= 0 {
		t.Errorf("domination index size %d, err %v", ds, err)
	}
}

func TestUnknownAlgorithmAndBadScheme(t *testing.T) {
	ix := NewIndex([]byte("ACGTACGT"))
	if _, err := ix.Search([]byte("ACGT"), SearchOptions{Algorithm: Algorithm(99), Threshold: 5}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := ix.Search([]byte("ACGT"), SearchOptions{Scheme: Scheme{Match: -1, Mismatch: 1, GapOpen: 1, GapExtend: 1}}); err == nil {
		t.Error("invalid scheme accepted")
	}
	for _, alg := range []Algorithm{ALAE, ALAEHybrid, BWTSW, BLAST, SmithWaterman, Algorithm(99)} {
		if alg.String() == "" {
			t.Error("empty algorithm name")
		}
	}
}

func TestAblationOptionsStayExact(t *testing.T) {
	text, query := workload(205, 1200, 250)
	ix := NewIndex(text)
	ref, err := ix.Search(query, SearchOptions{Threshold: 18})
	if err != nil {
		t.Fatal(err)
	}
	abl, err := ix.Search(query, SearchOptions{
		Threshold:           18,
		DisableScoreFilter:  true,
		DisableDomination:   true,
		DisableLengthFilter: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !align.EqualHits(ref.Hits, abl.Hits) {
		t.Error("ablated filters changed the answer set")
	}
	if abl.Stats.CalculatedEntries < ref.Stats.CalculatedEntries {
		t.Error("filters increased the work")
	}
}

func TestConcurrentSearches(t *testing.T) {
	text, _ := workload(206, 3000, 1)
	ix := NewIndex(text)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			q := seq.Mutate(seq.DNA, text[100:400],
				seq.MutationConfig{SubstitutionRate: 0.04}, rng)
			_, err := ix.Search(q, SearchOptions{Threshold: 20})
			done <- err
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
