// Multi-sequence database search through the serving store: §2.2's
// "given all the sequences T1..Tn in the database, we concatenate them
// into a single sequence T", productionised — the store partitions the
// twenty chromosomes into byte-balanced index shards, scatter-gathers
// each search across them, and hands back hits already mapped to their
// member sequences, so the manual Locate loop this example used to
// carry is gone. A repeated query demonstrates the result-level query
// cache: the second run is a hash probe.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
	"repro/internal/seq"
)

func main() {
	rng := rand.New(rand.NewSource(23))

	// Twenty database chromosomes; the query shares segments with
	// three specific ones.
	var records []alae.SeqRecord
	for i := 0; i < 20; i++ {
		records = append(records, alae.SeqRecord{
			Name: fmt.Sprintf("chr%02d", i),
			Seq:  seq.RandomSeq(seq.DNA, 20_000, nil, rng),
		})
	}
	query := seq.RandomSeq(seq.DNA, 4_000, nil, rng)
	for k, src := range []int{2, 7, 13} {
		seg := seq.Mutate(seq.DNA, records[src].Seq[5_000:5_250],
			seq.MutationConfig{SubstitutionRate: 0.05, IndelRate: 0.005}, rng)
		copy(query[600+k*1200:], seg)
	}

	total := 0
	for _, r := range records {
		total += len(r.Seq)
	}
	const shards = 4
	fmt.Printf("indexing %d sequences (%d bp total) into %d shards...\n",
		len(records), total, shards)
	db, err := alae.NewStore(records, alae.StoreOptions{Shards: shards})
	if err != nil {
		log.Fatal(err)
	}

	for _, alg := range []alae.Algorithm{alae.ALAE, alae.BWTSW, alae.BLAST} {
		start := time.Now()
		res, err := db.Search(query, alae.SearchOptions{Algorithm: alg, EValue: 1e-10})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)

		// Hits arrive mapped: count them per member directly.
		perMember := map[int]int{}
		best := map[int]alae.SeqHit{}
		for _, h := range res.Hits {
			perMember[h.Member]++
			if old, seen := best[h.Member]; !seen || h.Score > old.Score {
				best[h.Member] = h
			}
		}
		fmt.Printf("\n%v: %d hits in %v (H=%d), matching sequences:\n",
			alg, len(res.Hits), elapsed.Round(time.Microsecond), res.Threshold)
		for member, count := range perMember {
			b := best[member]
			fmt.Printf("  %s: %4d hits, best score %d ending at local %d (global %d)\n",
				b.Name, count, b.Score, b.LocalTEnd, b.TEnd)
		}
	}

	// The result-level query cache: an exact repeat is one hash probe.
	// (A configuration not searched above, so the first run really
	// computes.)
	opts := alae.SearchOptions{Algorithm: alae.ALAE, EValue: 1e-8}
	start := time.Now()
	if _, err := db.Search(query, opts); err != nil {
		log.Fatal(err)
	}
	warm := time.Since(start)
	start = time.Now()
	hot, err := db.Search(query, opts)
	if err != nil {
		log.Fatal(err)
	}
	cached := time.Since(start)
	fmt.Printf("\nrepeat query: %v computed, %v from the result cache (cache hit: %v)\n",
		warm.Round(time.Microsecond), cached.Round(time.Microsecond), hot.Stats.QueryCacheHits == 1)
	fmt.Println("\nALAE and BWT-SW agree exactly; BLAST may drop weak regions.")
}
