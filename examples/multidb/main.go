// Multi-sequence database search: §2.2's "given all the sequences
// T1..Tn in the database, we concatenate them into a single sequence
// T" — one index over a whole collection, hits mapped back to member
// sequences, and a comparison of all three engines on the same search.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
	"repro/internal/seq"
)

func main() {
	rng := rand.New(rand.NewSource(23))

	// Twenty database chromosomes; the query shares segments with
	// three specific ones.
	var recs []seq.Record
	for i := 0; i < 20; i++ {
		recs = append(recs, seq.Record{
			Header: fmt.Sprintf("chr%02d", i),
			Seq:    seq.RandomSeq(seq.DNA, 20_000, nil, rng),
		})
	}
	query := seq.RandomSeq(seq.DNA, 4_000, nil, rng)
	for k, src := range []int{2, 7, 13} {
		seg := seq.Mutate(seq.DNA, recs[src].Seq[5_000:5_250],
			seq.MutationConfig{SubstitutionRate: 0.05, IndelRate: 0.005}, rng)
		copy(query[600+k*1200:], seg)
	}

	db := seq.NewCollection(recs)
	fmt.Printf("indexing %d sequences (%d bp total)...\n", db.Len(), len(db.Text()))
	ix := alae.NewIndex(db.Text())

	for _, alg := range []alae.Algorithm{alae.ALAE, alae.BWTSW, alae.BLAST} {
		start := time.Now()
		res, err := ix.Search(query, alae.SearchOptions{Algorithm: alg, EValue: 1e-10})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)

		// Count hits per member sequence.
		perMember := map[int]int{}
		best := map[int]alae.Hit{}
		for _, h := range res.Hits {
			member, _, ok := db.Locate(h.TEnd, h.TEnd+1)
			if !ok {
				continue // alignment ends on a separator boundary
			}
			perMember[member]++
			if old, seen := best[member]; !seen || h.Score > old.Score {
				best[member] = h
			}
		}
		fmt.Printf("\n%v: %d hits in %v (H=%d), matching sequences:\n",
			alg, len(res.Hits), elapsed.Round(time.Microsecond), res.Threshold)
		for member, count := range perMember {
			b := best[member]
			fmt.Printf("  %s: %4d hits, best score %d ending at %d\n",
				db.Name(member), count, b.Score, b.TEnd)
		}
	}
	fmt.Println("\nALAE and BWT-SW agree exactly; BLAST may drop weak regions.")
}
