// Protein motif search: find every occurrence of a short conserved
// motif family in a protein database (Σ = 20), the "short queries
// find motifs from very different protein families" use case of the
// paper's introduction. Uses the protein scheme ⟨1,−3,−11,−1⟩ from
// the paper's index experiments and a strict E-value.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/seq"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// A synthetic protein database of 200 sequences. A zinc-finger-like
	// motif (with point variants) is planted into a third of them.
	motif := []byte("CHHCPAGCKYVFE")
	var recs []seq.Record
	planted := 0
	for i := 0; i < 200; i++ {
		s := seq.RandomSeq(seq.Protein, 150+rng.Intn(350), nil, rng)
		if i%3 == 0 {
			variant := seq.Mutate(seq.Protein, motif,
				seq.MutationConfig{SubstitutionRate: 0.12}, rng)
			pos := rng.Intn(len(s) - len(variant))
			copy(s[pos:], variant)
			planted++
		}
		recs = append(recs, seq.Record{Header: fmt.Sprintf("prot%03d", i), Seq: s})
	}
	db := seq.NewCollection(recs)
	fmt.Printf("database: %d sequences, %d residues, %d with the motif planted\n",
		db.Len(), len(db.Text()), planted)

	ix := alae.NewIndex(db.Text())
	res, err := ix.Search(motif, alae.SearchOptions{
		Scheme:       alae.DefaultProteinScheme,
		Threshold:    9, // ≥ 9 matching residues net of mismatches
		AlphabetSize: 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One best hit per database sequence.
	bestPer := map[int]alae.Hit{}
	for _, h := range res.Hits {
		member, _, ok := db.Locate(h.TEnd, h.TEnd+1)
		if !ok {
			continue
		}
		if old, seen := bestPer[member]; !seen || h.Score > old.Score {
			bestPer[member] = h
		}
	}
	fmt.Printf("motif found in %d sequence(s) (threshold H=%d):\n",
		len(bestPer), res.Threshold)
	shown := 0
	for member, h := range bestPer {
		if shown >= 8 {
			fmt.Printf("  ... and %d more\n", len(bestPer)-shown)
			break
		}
		a, err := ix.Align(motif, alae.DefaultProteinScheme, h)
		if err != nil {
			log.Fatal(err)
		}
		_, local, _ := db.Locate(a.TStart, a.TEnd+1)
		fmt.Printf("  %s at %3d  score %2d  identity %.0f%%\n",
			db.Name(member), local, a.Score, 100*a.Identity())
		shown++
	}
	if len(bestPer) < planted {
		fmt.Printf("note: %d planted variants diverged below the threshold\n",
			planted-len(bestPer))
	}
}
