// Quickstart: index a small DNA text and find all local alignments of
// a query, then print the best one — the thirty-line tour of the
// public API.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	text := []byte("TTGACGGTAACCGGTTACCATGATCGGGCTAAGCTAGCTTGACGGTAACC" +
		"GGTTACCATGCCCGGGAAATTTGGGCCCAAATTTGCATGCATGCATGCAT")
	query := []byte("GGTAACCGGTTACCATG")

	ix := alae.NewIndex(text)
	res, err := ix.Search(query, alae.SearchOptions{Threshold: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d hit(s) with score ≥ %d\n", len(res.Hits), res.Threshold)

	best := res.Hits[0]
	for _, h := range res.Hits {
		if h.Score > best.Score {
			best = h
		}
	}
	a, err := ix.Align(query, alae.DefaultDNAScheme, best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ix.FormatAlignment(a, query, 60))
}
