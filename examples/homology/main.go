// Homology scan: the paper's motivating workload (§1, §7) — align
// long queries from one genome against another genome to find
// conserved regions. Here both genomes are synthetic: a "human-like"
// text and "mouse-like" queries that share mutated segments with it
// (the substitution documented in DESIGN.md). The example runs the
// same search through ALAE and through the BLAST-like heuristic and
// shows what the heuristic misses — the accuracy gap that motivates
// exact methods.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/seq"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// A 300 kb "human" text with repeat structure.
	human := seq.RandomGenome(seq.DNA, seq.GenomeConfig{
		Length: 300_000, GC: 0.41, RepeatFraction: 0.1, RepeatMutationRate: 0.05,
	}, rng)
	// Three 10 kb "mouse" queries: random background carrying
	// conserved segments sampled from the human text at ~7% divergence.
	queries := seq.HomologousQueries(seq.DNA, human, 3, 10_000, 200, 1800,
		seq.MutationConfig{SubstitutionRate: 0.07, IndelRate: 0.01}, rng)

	fmt.Printf("indexing %d bp...\n", len(human))
	ix := alae.NewIndex(human)

	for qi, query := range queries {
		exact, err := ix.Search(query, alae.SearchOptions{EValue: 1e-5})
		if err != nil {
			log.Fatal(err)
		}
		heur, err := ix.Search(query, alae.SearchOptions{
			Algorithm: alae.BLAST, EValue: 1e-5,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nquery %d (m=%d, H=%d): ALAE %d hits, BLAST %d hits (missed %d)\n",
			qi, len(query), exact.Threshold, len(exact.Hits), len(heur.Hits),
			len(exact.Hits)-len(heur.Hits))

		// Report the distinct conserved regions with their best
		// alignment each.
		regions := alae.MergeRegions(exact.Hits, 100)
		fmt.Printf("  %d conserved region(s):\n", len(regions))
		for _, r := range regions {
			a, err := ix.Align(query, alae.DefaultDNAScheme, r.Best)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("   text %6d..%-6d query %5d..%-5d score %3d identity %.0f%%\n",
				a.TStart, a.TEnd, a.QStart, a.QEnd, a.Score, 100*a.Identity())
		}
	}
}
