package alae

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/seq"
)

// Store persistence: a versioned manifest — generations, member names
// and lengths, tombstone flags — framing the existing per-index
// serialization, so a saved store round-trips through the Index.Save
// format (including its own versioning and rank-layout tags). Each
// index payload is length-prefixed, which keeps the indexes' internal
// buffered readers from consuming past their own frame.
//
// Version history:
//   1 — single implicit generation, no tombstones, per-shard index
//       payloads (still readable).
//   2 — generational: mutation stamp, per-generation id and member
//       flags (bit 0 = tombstoned); per-shard index payloads.
//   3 — shared-index scatter: ONE index payload per generation, no
//       shard list. Shards became search-time work partitions, so the
//       persisted layout is always the monolithic one; loading a v1/v2
//       file still works by joining its shard texts and rebuilding one
//       index per generation (a one-time migration cost paid at load).
//
// The same format also serves as the per-generation file of a
// directory-backed store (storegen.go), where each generation is
// written as a single-generation store file and the MANIFEST file owns
// the tombstones.

// storeMagic opens every serialised store.
var storeMagic = [8]byte{'A', 'L', 'A', 'E', 'S', 'T', 'O', 'R'}

// storeVersion is the manifest format version this build writes.
const storeVersion uint32 = 3

// sane upper bounds for manifest fields: a reload of hostile or
// corrupt bytes must fail with a message, not an allocation storm.
const (
	maxStoreMembers = 1 << 28
	maxStoreNameLen = 1 << 20
	maxStoreSeqLen  = 1 << 40
)

// byteWriter is a sticky-error little-endian writer for manifest
// framing: callers emit fields unconditionally and check once at
// flush.
type byteWriter struct {
	w   *bufio.Writer
	err error
}

func newByteWriter(w io.Writer) *byteWriter { return &byteWriter{w: bufio.NewWriter(w)} }

func (b *byteWriter) bytes(p []byte) {
	if b.err == nil {
		_, b.err = b.w.Write(p)
	}
}

func (b *byteWriter) str(s string) {
	if b.err == nil {
		_, b.err = b.w.WriteString(s)
	}
}

func (b *byteWriter) u8(v uint8) {
	if b.err == nil {
		b.err = b.w.WriteByte(v)
	}
}

func (b *byteWriter) u32(v uint32) {
	var p [4]byte
	binary.LittleEndian.PutUint32(p[:], v)
	b.bytes(p[:])
}

func (b *byteWriter) u64(v uint64) {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], v)
	b.bytes(p[:])
}

func (b *byteWriter) flush() error {
	if b.err != nil {
		return b.err
	}
	return b.w.Flush()
}

// byteReader is byteWriter's in-memory counterpart for small fixed
// records (the directory manifest). Short input surfaces as a sticky
// io.ErrUnexpectedEOF.
type byteReader struct {
	data []byte
	err  error
}

func newByteReader(data []byte) *byteReader { return &byteReader{data: data} }

func (b *byteReader) take(n int) []byte {
	if b.err != nil {
		return nil
	}
	if len(b.data) < n {
		b.err = io.ErrUnexpectedEOF
		return nil
	}
	p := b.data[:n]
	b.data = b.data[n:]
	return p
}

func (b *byteReader) bytes(p []byte) { copy(p, b.take(len(p))) }

func (b *byteReader) u32() uint32 {
	if p := b.take(4); p != nil {
		return binary.LittleEndian.Uint32(p)
	}
	return 0
}

func (b *byteReader) u64() uint64 {
	if p := b.take(8); p != nil {
		return binary.LittleEndian.Uint64(p)
	}
	return 0
}

// countingSink measures a serialization without holding it: the
// pre-pass of the streaming save.
type countingSink struct{ n int64 }

func (c *countingSink) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// countingTee writes through while counting, so the second pass can
// verify it produced exactly the bytes the pre-pass declared.
type countingTee struct {
	w io.Writer
	n int64
}

func (c *countingTee) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Save serialises the store: the manifest followed by each
// generation's index (text plus compressed suffix array). The format
// is versioned and validated on load. Index payloads STREAM to w in
// two passes — a counting pre-pass derives each length prefix, then
// the serialization runs again writing through — so saving never
// materialises a generation's payload in memory (the old single-pass
// save buffered each payload whole, roughly doubling peak memory on
// large stores).
func (st *Store) Save(w io.Writer) error {
	v := st.currentView()
	return saveGenerations(w, v.gens, v.stamp)
}

// saveGenerations writes gens in the version-3 format: one index
// payload per generation, no shard list. Index serialization is
// deterministic, so the counting pre-pass's size is exact; the tee's
// post-check turns any violation of that assumption into a save error
// instead of a corrupt file.
func saveGenerations(w io.Writer, gens []*generation, stamp uint64) error {
	bw := newByteWriter(w)
	bw.bytes(storeMagic[:])
	bw.u32(storeVersion)
	bw.u64(stamp)
	bw.u64(uint64(len(gens)))
	for _, g := range gens {
		bw.u64(g.id)
		bw.u64(uint64(g.tab.Len()))
		for m := 0; m < g.tab.Len(); m++ {
			name := g.tab.Name(m)
			bw.u64(uint64(len(name)))
			bw.str(name)
			bw.u64(uint64(g.tab.SeqLen(m)))
			var flags uint8
			if g.isDead(m) {
				flags |= 1
			}
			bw.u8(flags)
		}
	}
	if err := bw.flush(); err != nil {
		return err
	}
	for _, g := range gens {
		ix := g.ix
		var cnt countingSink
		if err := ix.Save(&cnt); err != nil {
			return err
		}
		var pfx [8]byte
		binary.LittleEndian.PutUint64(pfx[:], uint64(cnt.n))
		if _, err := w.Write(pfx[:]); err != nil {
			return err
		}
		tee := countingTee{w: w}
		if err := ix.Save(&tee); err != nil {
			return err
		}
		if tee.n != cnt.n {
			return fmt.Errorf("alae: saving store: generation payload measured %d bytes but wrote %d", cnt.n, tee.n)
		}
	}
	return nil
}

// atomicWriteFile publishes bytes at path crash-safely: write writes
// them to a temporary file in path's directory, the temp file is
// fsynced and atomically renamed over path, and the directory is
// synced best-effort so the rename itself survives a crash. Whatever
// happens mid-write — a crash, a kill, a full disk — path holds either
// its previous complete content or the new complete content, never a
// torn prefix; a failed temp file is removed. storeFSHook (tests only)
// interposes after each durable step.
func atomicWriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("alae: saving store: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = fsStep("temp-created", tmp); err != nil {
		return err
	}
	if err = write(f); err != nil {
		return err
	}
	if err = fsStep("temp-written", tmp); err != nil {
		return err
	}
	// The data must be durable BEFORE the rename makes it visible:
	// rename-then-sync can leave path pointing at zero-length garbage
	// after a power cut.
	if err = f.Sync(); err != nil {
		return fmt.Errorf("alae: syncing store: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("alae: closing store: %w", err)
	}
	if err = fsStep("temp-synced", tmp); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("alae: publishing store: %w", err)
	}
	// Best-effort directory sync; some filesystems reject directory
	// fsync, which is not worth failing a completed publish over.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return fsStep("renamed", path)
}

// SaveFile writes the store to path as one crash-safe snapshot file
// (temp + fsync + atomic rename): whatever happens mid-write, path
// holds either the previous complete store or the new complete store.
// A server's periodic reload (LoadStoreFile) therefore never observes
// a partially-written store from a concurrent SaveFile. For a MUTABLE
// serving store, SaveDir's generation-directory layout persists each
// Append/Delete/Compact incrementally instead of rewriting the world.
func (st *Store) SaveFile(path string) error {
	return atomicWriteFile(path, func(w io.Writer) error { return st.Save(w) })
}

// LoadStoreFile reads a store written by SaveFile (or any file holding
// Save's format). A directory path loads the generation-directory
// layout written by SaveDir, sweeping any debris an interrupted
// mutation left behind.
func LoadStoreFile(path string, opts StoreOptions) (*Store, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("alae: loading store: %w", err)
	}
	if fi.IsDir() {
		return loadStoreDir(path, opts)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("alae: loading store: %w", err)
	}
	defer f.Close()
	return LoadStore(f, opts)
}

// LoadStore reads a store written by Save (any format version). The
// generation list comes from the manifest; opts.Shards sets only the
// loaded store's search-time lane count (it is a parallelism knob —
// see StoreOptions — and is never persisted), while opts.QueryCacheSize
// configures the (runtime-only, never persisted) query cache.
func LoadStore(r io.Reader, opts StoreOptions) (*Store, error) {
	gens, stamp, err := loadGenerations(r)
	if err != nil {
		return nil, err
	}
	return newStoreFromGens(gens, stamp, opts)
}

// genManifest is one generation's parsed manifest block, pre-payload.
// shardMembers is only set for legacy (version < 3) files, whose
// payloads are per-shard; version-3 generations carry one payload.
type genManifest struct {
	id           uint64
	names        []string
	lengths      []int
	dead         []bool // nil when no tombstones
	ndead        int
	shardMembers []int // legacy per-shard member counts; nil for v3
}

// loadGenerations parses Save's format: magic, version, the manifest
// of every generation, then every generation's index payloads in
// order (one per generation for v3, one per shard for v1/v2).
func loadGenerations(r io.Reader) ([]*generation, uint64, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, 0, fmt.Errorf("alae: reading store: %w", err)
	}
	if magic != storeMagic {
		return nil, 0, fmt.Errorf("alae: not a store file (bad magic %q)", magic[:])
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, 0, fmt.Errorf("alae: reading store version: %w", err)
	}
	if version < 1 || version > storeVersion {
		return nil, 0, fmt.Errorf("alae: unsupported store version %d (this build reads versions 1 through %d)", version, storeVersion)
	}
	u64 := func(what string, limit uint64) (uint64, error) {
		var v uint64
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return 0, fmt.Errorf("alae: reading store %s: %w", what, err)
		}
		if v > limit {
			return 0, fmt.Errorf("alae: implausible store %s %d", what, v)
		}
		return v, nil
	}
	stamp, genCount := uint64(1), uint64(1)
	if version >= 2 {
		var err error
		if stamp, err = u64("stamp", 1<<62); err != nil {
			return nil, 0, err
		}
		if genCount, err = u64("generation count", maxStoreMembers); err != nil {
			return nil, 0, err
		}
		if genCount == 0 {
			return nil, 0, fmt.Errorf("alae: store holds no generations")
		}
	}
	total := uint64(0) // declared concatenation length, overflow-guarded
	manifests := make([]*genManifest, 0, min(int(genCount), 1024))
	seen := make(map[uint64]bool)
	for gi := uint64(0); gi < genCount; gi++ {
		gm := &genManifest{id: gi + 1}
		if version >= 2 {
			id, err := u64("generation id", 1<<62)
			if err != nil {
				return nil, 0, err
			}
			if seen[id] {
				return nil, 0, fmt.Errorf("alae: store holds generation %d twice", id)
			}
			seen[id] = true
			gm.id = id
		}
		members, err := u64("member count", maxStoreMembers)
		if err != nil {
			return nil, 0, err
		}
		if members == 0 {
			return nil, 0, fmt.Errorf("alae: store generation %d has no members", gm.id)
		}
		// Grow the directory incrementally rather than pre-allocating
		// from the untrusted count: every member read consumes manifest
		// bytes, so a truncated or hostile header fails on a short read
		// instead of committing gigabytes up front.
		gm.names = make([]string, 0, min(int(members), 4096))
		gm.lengths = make([]int, 0, min(int(members), 4096))
		for i := 0; i < int(members); i++ {
			nameLen, err := u64("name length", maxStoreNameLen)
			if err != nil {
				return nil, 0, err
			}
			name := make([]byte, nameLen)
			if _, err := io.ReadFull(br, name); err != nil {
				return nil, 0, fmt.Errorf("alae: reading store member name: %w", err)
			}
			gm.names = append(gm.names, string(name))
			seqLen, err := u64("member length", maxStoreSeqLen)
			if err != nil {
				return nil, 0, err
			}
			gm.lengths = append(gm.lengths, int(seqLen))
			if total += seqLen + 1; total > maxStoreSeqLen {
				// Individually-plausible member lengths must also sum to a
				// plausible database: this is what keeps every later
				// length computation (seq.NewTable's offsets, the payload
				// bound below) inside int range on hostile manifests.
				return nil, 0, fmt.Errorf("alae: implausible store total length (> %d)", int64(maxStoreSeqLen))
			}
			if version >= 2 {
				flags, err := br.ReadByte()
				if err != nil {
					return nil, 0, fmt.Errorf("alae: reading store member flags: %w", err)
				}
				if flags&^1 != 0 {
					return nil, 0, fmt.Errorf("alae: unknown store member flags %#x", flags)
				}
				if flags&1 != 0 {
					if gm.dead == nil {
						gm.dead = make([]bool, int(members))
					}
					gm.dead[i] = true
					gm.ndead++
				}
			}
		}
		if version < 3 {
			// Legacy files partition each generation's text into shard
			// payloads; the list is read (and validated) so the payload
			// loop can reassemble the monolithic text.
			shardCount, err := u64("shard count", maxStoreMembers)
			if err != nil {
				return nil, 0, err
			}
			if shardCount == 0 || shardCount > members {
				return nil, 0, fmt.Errorf("alae: store generation %d has %d shards for %d members", gm.id, shardCount, members)
			}
			gm.shardMembers = make([]int, shardCount)
			sum := 0
			for s := range gm.shardMembers {
				n, err := u64("shard member count", members)
				if err != nil {
					return nil, 0, err
				}
				if n == 0 {
					return nil, 0, fmt.Errorf("alae: store shard %d is empty", s)
				}
				gm.shardMembers[s] = int(n)
				sum += int(n)
			}
			if sum != int(members) {
				return nil, 0, fmt.Errorf("alae: store shard boundaries cover %d members, manifest has %d", sum, members)
			}
		}
		manifests = append(manifests, gm)
	}
	gens := make([]*generation, len(manifests))
	for gi, gm := range manifests {
		g, err := loadGenPayloads(br, gm)
		if err != nil {
			return nil, 0, err
		}
		gens[gi] = g
	}
	return gens, stamp, nil
}

// readIndexPayload reads one length-prefixed index payload whose text
// must be exactly textLen bytes. The manifest already says how long
// the text is, so the payload frame gets a tight plausibility bound
// (the index serialization is a small multiple of its text) instead of
// a blanket huge one.
func readIndexPayload(br *bufio.Reader, textLen int, what string) (*Index, error) {
	maxPayload := 64*uint64(textLen) + (1 << 20)
	var payloadLen uint64
	if err := binary.Read(br, binary.LittleEndian, &payloadLen); err != nil {
		return nil, fmt.Errorf("alae: reading store %s payload length: %w", what, err)
	}
	if payloadLen > maxPayload {
		return nil, fmt.Errorf("alae: implausible store %s payload length %d", what, payloadLen)
	}
	// Grow the payload buffer as bytes actually arrive (CopyN reads
	// in chunks) rather than trusting the declared length with one
	// up-front allocation: a crafted header pointing at a short file
	// fails with an EOF after consuming what exists.
	var payload bytes.Buffer
	if _, err := io.CopyN(&payload, br, int64(payloadLen)); err != nil {
		return nil, fmt.Errorf("alae: reading store %s: %w", what, err)
	}
	ix, err := Load(bytes.NewReader(payload.Bytes()))
	if err != nil {
		return nil, fmt.Errorf("alae: store %s: %w", what, err)
	}
	if ix.Len() != textLen {
		return nil, fmt.Errorf("alae: store %s text length %d does not match manifest length %d",
			what, ix.Len(), textLen)
	}
	return ix, nil
}

// loadGenPayloads reads and validates one generation's index payload —
// or, for legacy v1/v2 files, its per-shard payloads, whose texts are
// rejoined with the member separator and reindexed as one monolithic
// index (shards are search-time work partitions now, not persisted
// layout; the rebuild is the one-time migration cost of loading an old
// file) — and assembles the generation.
func loadGenPayloads(br *bufio.Reader, gm *genManifest) (*generation, error) {
	g := &generation{
		id:    gm.id,
		tab:   seq.NewTable(gm.names, gm.lengths),
		masks: make([]byteMask, len(gm.names)),
		dead:  gm.dead,
		ndead: gm.ndead,
	}
	if gm.shardMembers == nil {
		ix, err := readIndexPayload(br, g.tab.TotalLen(), fmt.Sprintf("generation %d", gm.id))
		if err != nil {
			return nil, err
		}
		// The payload is the plain serialized index; the barrier is an
		// engine option, not persisted state, so re-arm it here exactly
		// as buildGeneration would have (engines build lazily at search
		// time, after this).
		ix.barrier = seq.Separator
		g.ix = ix
	} else {
		// Legacy layout: one payload per shard. Each shard index is
		// loaded (validating its own frame), its text is taken, and the
		// monolithic generation index is rebuilt over the rejoined
		// concatenation — byte-identical to what building the
		// generation from its records would have produced, because
		// shard texts were themselves separator-framed member runs.
		joined := make([]byte, 0, g.tab.TotalLen())
		base := 0
		for s, n := range gm.shardMembers {
			lo, hi := base, base+n
			tab := seq.NewTable(gm.names[lo:hi], gm.lengths[lo:hi])
			ix, err := readIndexPayload(br, tab.TotalLen(), fmt.Sprintf("shard %d", s))
			if err != nil {
				return nil, err
			}
			if s > 0 {
				joined = append(joined, seq.Separator)
			}
			joined = append(joined, ix.Text()...)
			base = hi
		}
		if len(joined) != g.tab.TotalLen() {
			return nil, fmt.Errorf("alae: store generation %d shards join to %d bytes, manifest says %d",
				gm.id, len(joined), g.tab.TotalLen())
		}
		g.ix = newBarrierIndex(joined, seq.Separator)
	}
	// Spot-check the separator layout the manifest promises, and
	// recover each member's byte mask from its text slice (σ after a
	// future delete needs per-member masks, not one global set).
	text := g.ix.Text()
	for m := 0; m < g.tab.Len(); m++ {
		if m > 0 && text[g.tab.Start(m)-1] != seq.Separator {
			return nil, fmt.Errorf("alae: store generation %d member %d is not separator-framed", gm.id, m)
		}
		start := g.tab.Start(m)
		g.masks[m] = maskOf(text[start : start+g.tab.SeqLen(m)])
	}
	return g, nil
}
