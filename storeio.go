package alae

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/seq"
)

// Store persistence: a versioned manifest — member names and lengths,
// shard boundaries — framing the existing per-index serialization, so
// a saved store reloads with the exact partition it was built with and
// every shard index round-trips through the Index.Save format
// (including its own versioning and rank-layout tags). Each shard
// payload is length-prefixed, which keeps the indexes' internal
// buffered readers from consuming past their own frame.

// storeMagic opens every serialised store.
var storeMagic = [8]byte{'A', 'L', 'A', 'E', 'S', 'T', 'O', 'R'}

// storeVersion is the manifest format version.
const storeVersion uint32 = 1

// sane upper bounds for manifest fields: a reload of hostile or
// corrupt bytes must fail with a message, not an allocation storm.
const (
	maxStoreMembers = 1 << 28
	maxStoreNameLen = 1 << 20
	maxStoreSeqLen  = 1 << 40
)

// Save serialises the store: the manifest followed by each shard's
// index (text plus compressed suffix array). The format is versioned
// and validated on load.
func (st *Store) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(storeMagic[:]); err != nil {
		return err
	}
	u32 := func(v uint32) error { return binary.Write(bw, binary.LittleEndian, v) }
	u64 := func(v uint64) error { return binary.Write(bw, binary.LittleEndian, v) }
	if err := u32(storeVersion); err != nil {
		return err
	}
	if err := u64(uint64(st.seqs.Len())); err != nil {
		return err
	}
	for i := 0; i < st.seqs.Len(); i++ {
		name := st.seqs.Name(i)
		if err := u64(uint64(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
		if err := u64(uint64(st.seqs.SeqLen(i))); err != nil {
			return err
		}
	}
	if err := u64(uint64(len(st.shards))); err != nil {
		return err
	}
	for _, sh := range st.shards {
		if err := u64(uint64(sh.tab.Len())); err != nil {
			return err
		}
	}
	// Shard payloads, length-prefixed. Each is serialised to memory
	// first: Index.Save/Load use their own buffered streams, and the
	// frame keeps those buffers from reading into the next shard.
	var buf bytes.Buffer
	for _, sh := range st.shards {
		buf.Reset()
		if err := sh.ix.Save(&buf); err != nil {
			return err
		}
		if err := u64(uint64(buf.Len())); err != nil {
			return err
		}
		if _, err := bw.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveFile writes the store to path crash-safely: the bytes stream to
// a temporary file in path's directory, are fsynced, and the temp file
// is atomically renamed over path. Whatever happens mid-write — a
// crash, a kill, a full disk — path holds either the previous complete
// store or the new complete store, never a torn prefix; the failed
// temp file is removed. A server's periodic reload (LoadStoreFile)
// therefore never observes a partially-written store from a concurrent
// SaveFile.
func (st *Store) SaveFile(path string) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("alae: saving store: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = st.Save(f); err != nil {
		return err
	}
	// The data must be durable BEFORE the rename makes it visible:
	// rename-then-sync can leave path pointing at zero-length garbage
	// after a power cut.
	if err = f.Sync(); err != nil {
		return fmt.Errorf("alae: syncing store: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("alae: closing store: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("alae: publishing store: %w", err)
	}
	// Best-effort directory sync so the rename itself survives a crash;
	// some filesystems reject directory fsync, which is not worth
	// failing a completed save over.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadStoreFile reads a store written by SaveFile (or any file holding
// Save's format). Pairs with SaveFile for crash-safe reload loops.
func LoadStoreFile(path string, opts StoreOptions) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("alae: loading store: %w", err)
	}
	defer f.Close()
	return LoadStore(f, opts)
}

// LoadStore reads a store written by Save. The shard partition comes
// from the manifest; opts.Shards is ignored, while opts.QueryCacheSize
// configures the (runtime-only, never persisted) query cache of the
// loaded store.
func LoadStore(r io.Reader, opts StoreOptions) (*Store, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("alae: reading store: %w", err)
	}
	if magic != storeMagic {
		return nil, fmt.Errorf("alae: not a store file (bad magic %q)", magic[:])
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("alae: reading store version: %w", err)
	}
	if version != storeVersion {
		return nil, fmt.Errorf("alae: unsupported store version %d (this build reads version %d)", version, storeVersion)
	}
	u64 := func(what string, limit uint64) (uint64, error) {
		var v uint64
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return 0, fmt.Errorf("alae: reading store %s: %w", what, err)
		}
		if v > limit {
			return 0, fmt.Errorf("alae: implausible store %s %d", what, v)
		}
		return v, nil
	}
	members, err := u64("member count", maxStoreMembers)
	if err != nil {
		return nil, err
	}
	// Grow the directory incrementally rather than pre-allocating from
	// the untrusted count: every member read consumes manifest bytes,
	// so a truncated or hostile header fails on a short read instead
	// of committing gigabytes up front.
	names := make([]string, 0, min(int(members), 4096))
	lengths := make([]int, 0, min(int(members), 4096))
	total := uint64(0) // declared concatenation length, overflow-guarded
	for i := 0; i < int(members); i++ {
		nameLen, err := u64("name length", maxStoreNameLen)
		if err != nil {
			return nil, err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("alae: reading store member name: %w", err)
		}
		names = append(names, string(name))
		seqLen, err := u64("member length", maxStoreSeqLen)
		if err != nil {
			return nil, err
		}
		lengths = append(lengths, int(seqLen))
		if total += seqLen + 1; total > maxStoreSeqLen {
			// Individually-plausible member lengths must also sum to a
			// plausible database: this is what keeps every later length
			// computation (seq.NewTable's offsets, the payload bound
			// below) inside int range on hostile manifests.
			return nil, fmt.Errorf("alae: implausible store total length (> %d)", int64(maxStoreSeqLen))
		}
	}
	shardCount, err := u64("shard count", maxStoreMembers)
	if err != nil {
		return nil, err
	}
	if shardCount == 0 || shardCount > members {
		return nil, fmt.Errorf("alae: store has %d shards for %d members", shardCount, members)
	}
	shardMembers := make([]int, shardCount)
	sum := 0
	for s := range shardMembers {
		n, err := u64("shard member count", members)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, fmt.Errorf("alae: store shard %d is empty", s)
		}
		shardMembers[s] = int(n)
		sum += int(n)
	}
	if sum != int(members) {
		return nil, fmt.Errorf("alae: store shard boundaries cover %d members, manifest has %d", sum, members)
	}

	st := &Store{
		seqs:   seq.NewTable(names, lengths),
		shards: make([]storeShard, shardCount),
		pools:  make(map[string]*sync.Pool),
	}
	var present [256]bool
	base := 0
	for s := range st.shards {
		lo, hi := base, base+shardMembers[s]
		tab := seq.NewTable(names[lo:hi], lengths[lo:hi])
		// The manifest already says how long this shard's text is, so
		// the payload frame gets a tight plausibility bound (the index
		// serialization is a small multiple of its text) instead of a
		// blanket huge one.
		maxPayload := 64*uint64(tab.TotalLen()) + (1 << 20)
		payloadLen, err := u64("shard payload length", maxPayload)
		if err != nil {
			return nil, err
		}
		// Grow the payload buffer as bytes actually arrive (CopyN reads
		// in chunks) rather than trusting the declared length with one
		// up-front allocation: a crafted header pointing at a short
		// file fails with an EOF after consuming what exists.
		var payload bytes.Buffer
		if _, err := io.CopyN(&payload, br, int64(payloadLen)); err != nil {
			return nil, fmt.Errorf("alae: reading store shard %d: %w", s, err)
		}
		ix, err := Load(bytes.NewReader(payload.Bytes()))
		if err != nil {
			return nil, fmt.Errorf("alae: store shard %d: %w", s, err)
		}
		if ix.Len() != tab.TotalLen() {
			return nil, fmt.Errorf("alae: store shard %d text length %d does not match manifest length %d",
				s, ix.Len(), tab.TotalLen())
		}
		// Spot-check the separator layout the manifest promises.
		for m := 1; m < tab.Len(); m++ {
			if ix.Text()[tab.Start(m)-1] != seq.Separator {
				return nil, fmt.Errorf("alae: store shard %d member %d is not separator-framed", s, m)
			}
		}
		for _, b := range ix.Text() {
			present[b] = true
		}
		st.shards[s] = storeShard{ix: ix, tab: tab, base: lo}
		base = hi
	}
	st.sigma = storeSigma(present, int(members))
	st.cache = newQueryCache(opts.QueryCacheSize)
	return st, nil
}
