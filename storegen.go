package alae

import (
	"bytes"
	"fmt"
	"io"
	"math/bits"
	"os"
	"path/filepath"
	"slices"
	"strings"

	"repro/internal/seq"
)

// The generational store: append, delete and compact without a full
// rebuild, every mutation crash-safe. The paper's §2.2 model assumes a
// frozen concatenation T = T1 # T2 # … # Tn; a serving deployment does
// not — records arrive and retire continuously while a daemon keeps
// the store resident for days. So a Store is now an ordered list of
// immutable GENERATIONS, each a cohort of members with ONE monolithic
// index over its concatenation (shards are work partitions of that
// index at search time, not separate texts — see storesession.go):
//
//   - Append builds a small fresh generation over just the new records
//     (fast — a few MB of index, not the whole database) and adds it
//     to the end of the list.
//   - Delete flips tombstone bits. The dead member's bytes stay in its
//     generation's index, but the gather drops its hits, SampleQuery
//     skips it, and the live directory (Sequences) no longer lists it.
//   - Compact merges tombstone-carrying and small generations into one
//     rebuilt generation LSM-style, purging dead members' bytes.
//
// Searches see an immutable VIEW (generation list + tombstones + the
// live directory) swapped atomically by each mutation, so readers are
// never torn across a mutation, and the threshold of every search is
// still derived once from the WHOLE logical store's (n, σ) — the live
// concatenation's — exactly as the sharding layer pins it (PR 5's
// invariant, extended across generations). Each view carries a
// mutation stamp; the query cache keys on it, so a mutation strands
// exactly the stale entries instead of returning pre-mutation answers.
//
// Durability: a directory-backed store (LoadStoreFile on a directory,
// or SaveDir) publishes every mutation as temp-write + fsync + atomic
// rename — generation files first, then the manifest, which is the
// commit point. A crash at ANY step leaves a directory that loads as
// either the pre- or the post-mutation store, never a torn one;
// orphaned generation files and leftover temp files are swept on load.

// byteMask is a 256-bit presence set over byte values: which bytes a
// member sequence contains. Masks are what let a mutation recompute
// the live alphabet size σ without rescanning any text.
type byteMask [4]uint64

func (m *byteMask) add(b byte) { m[b>>6] |= 1 << (b & 63) }

func (m *byteMask) or(o byteMask) {
	for i := range m {
		m[i] |= o[i]
	}
}

func (m byteMask) count() int {
	n := 0
	for _, w := range m {
		n += bits.OnesCount64(w)
	}
	return n
}

func maskOf(s []byte) byteMask {
	var m byteMask
	for _, b := range s {
		m.add(b)
	}
	return m
}

// generation is one immutable cohort of members: its own directory,
// one index over its concatenation and per-member byte masks, plus the
// tombstone flags. Mutations never modify a generation in place —
// Delete publishes a copy with new tombstone flags sharing everything
// else.
type generation struct {
	id    uint64
	tab   *seq.Table // ALL the generation's members, tombstoned included
	ix    *Index     // one index over the generation's concatenation
	masks []byteMask // per-member byte presence
	dead  []bool     // tombstone flags; nil when none
	ndead int
}

func (g *generation) isDead(m int) bool { return g.dead != nil && g.dead[m] }

// withTombstones returns a copy of g carrying the given tombstone
// flags, sharing the directory, index and masks.
func (g *generation) withTombstones(dead []bool, ndead int) *generation {
	return &generation{id: g.id, tab: g.tab, ix: g.ix, masks: g.masks, dead: dead, ndead: ndead}
}

// liveBytes is the generation's contribution to the logical store:
// the summed length of its live members.
func (g *generation) liveBytes() int {
	n := 0
	for m := 0; m < g.tab.Len(); m++ {
		if !g.isDead(m) {
			n += g.tab.SeqLen(m)
		}
	}
	return n
}

// memberBytes copies member m's sequence out of the generation's text
// (compaction rebuilds merged generations from these).
func (g *generation) memberBytes(m int) []byte {
	start := g.tab.Start(m)
	return append([]byte(nil), g.ix.Text()[start:start+g.tab.SeqLen(m)]...)
}

// buildGeneration builds ONE index over the records' separator-framed
// concatenation. There is deliberately no shard count here any more:
// shards are work partitions of this one index at search time
// (family-slice lanes, storesession.go), so the on-disk and in-memory
// layout is always the monolithic one the paper's §2.2 model assumes,
// whatever parallelism later searches pick.
func buildGeneration(id uint64, records []SeqRecord) *generation {
	masks := make([]byteMask, len(records))
	recs := make([]seq.Record, len(records))
	for i, r := range records {
		masks[i] = maskOf(r.Seq)
		recs[i] = seq.Record{Header: r.Name, Seq: r.Seq}
	}
	col := seq.NewCollection(recs)
	// The generation index carries the member separator as a hard
	// barrier: the exact engines never descend a separator edge, so no
	// hit can bridge two members (the gather additionally rejects
	// separator-row hits and, as a backstop, hits provably too long for
	// their member — storesession.go).
	return &generation{id: id, tab: col.Table(), ix: newBarrierIndex(col.Text(), seq.Separator), masks: masks}
}

// genLoc places a live member: which generation, which member within
// it.
type genLoc struct{ gen, member int }

// storeView is one immutable snapshot of the logical store. Every
// mutation builds a new view and swaps it in atomically; searches,
// sessions and the query cache all work against a captured view, so a
// reader is never torn across a mutation.
type storeView struct {
	stamp uint64        // mutation stamp; the query cache keys on it
	gens  []*generation // in logical (member-order) sequence
	seqs  *seq.Table    // the LIVE members' global directory
	sigma int           // distinct bytes of the live concatenation
	loc   []genLoc      // live member -> (generation, member within it)
	live  [][]int       // per generation: member -> live index, or -1 when tombstoned
}

// buildView derives the live directory, alphabet and member mappings
// from a generation list. It fails on a store with no live members —
// a Store, like NewStore, always holds at least one sequence.
func buildView(gens []*generation, stamp uint64) (*storeView, error) {
	v := &storeView{stamp: stamp, gens: gens}
	var names []string
	var lengths []int
	var mask byteMask
	for gi, g := range gens {
		liveIdx := make([]int, g.tab.Len())
		for m := 0; m < g.tab.Len(); m++ {
			if g.isDead(m) {
				liveIdx[m] = -1
				continue
			}
			liveIdx[m] = len(names)
			v.loc = append(v.loc, genLoc{gi, m})
			names = append(names, g.tab.Name(m))
			lengths = append(lengths, g.tab.SeqLen(m))
			mask.or(g.masks[m])
		}
		v.live = append(v.live, liveIdx)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("alae: store has no live members")
	}
	if len(names) > 1 {
		mask.add(seq.Separator)
	}
	v.seqs = seq.NewTable(names, lengths)
	v.sigma = mask.count()
	return v, nil
}

// currentView returns the serving snapshot.
func (st *Store) currentView() *storeView { return st.view.Load() }

// Generations reports how many generations the store currently holds
// (1 until the first Append; compaction merges them back down).
func (st *Store) Generations() int { return len(st.currentView().gens) }

// Tombstones reports how many members are tombstoned — deleted but not
// yet purged by compaction.
func (st *Store) Tombstones() int {
	n := 0
	for _, g := range st.currentView().gens {
		n += g.ndead
	}
	return n
}

// Stamp returns the store's mutation stamp: it increases by one on
// every published Append/Delete/Compact, and two results carry the
// same logical store state only if their stamps match. The query cache
// keys on it.
func (st *Store) Stamp() uint64 { return st.currentView().stamp }

// Dir returns the backing directory mutations persist to, or "" for a
// memory-only store (see SaveDir).
func (st *Store) Dir() string { return st.dir }

// validateRecords rejects member sequences containing the separator
// byte: such a record would break the concatenation framing — Locate
// would misattribute every hit after the stray separator — so it is an
// ingestion bug diagnosed at the boundary, not indexed wrongly.
func validateRecords(records []SeqRecord) error {
	for i, r := range records {
		if j := bytes.IndexByte(r.Seq, seq.Separator); j >= 0 {
			return fmt.Errorf("alae: record %d (%q) contains the member separator %q at byte %d; records must be single sequences with no separator bytes",
				i, r.Name, seq.Separator, j)
		}
	}
	return nil
}

// Append adds records to the store as one fresh generation — a small
// index built over just the new records, not a rebuild of the world.
// The new members join the end of the logical concatenation, so
// existing members keep their coordinates. On a directory-backed store
// the mutation is crash-safe: the generation file lands first, then
// the manifest commit; a crash between them leaves the pre-append
// store (the orphaned generation file is swept on the next load).
func (st *Store) Append(records []SeqRecord) error {
	if len(records) == 0 {
		return fmt.Errorf("alae: Append needs at least one record")
	}
	if err := validateRecords(records); err != nil {
		return err
	}
	st.mutMu.Lock()
	defer st.mutMu.Unlock()
	cur := st.currentView()
	g := buildGeneration(st.nextGenID, records)
	gens := append(slices.Clip(slices.Clone(cur.gens)), g)
	next, err := buildView(gens, cur.stamp+1)
	if err != nil {
		return err
	}
	if err := st.persistMutation(next, []*generation{g}, nil); err != nil {
		return err
	}
	st.nextGenID++
	st.view.Store(next)
	return nil
}

// Delete tombstones every live member whose name matches one of names
// and reports how many members it retired. The members' bytes stay in
// their generations' indexes until a compaction purges them, but they
// produce no hits, disappear from Sequences, and stop contributing to
// threshold derivation immediately. Deleting nothing is not an error
// (0, nil); deleting the last live member is (a store always holds at
// least one sequence). On a directory-backed store the tombstone flush
// is one atomic manifest rewrite.
func (st *Store) Delete(names ...string) (int, error) {
	doomed := make(map[string]bool, len(names))
	for _, n := range names {
		doomed[n] = true
	}
	st.mutMu.Lock()
	defer st.mutMu.Unlock()
	cur := st.currentView()
	gens := slices.Clone(cur.gens)
	deleted, liveLeft := 0, 0
	for gi, g := range gens {
		var dead []bool
		nd := g.ndead
		for m := 0; m < g.tab.Len(); m++ {
			if g.isDead(m) {
				continue
			}
			if doomed[g.tab.Name(m)] {
				if dead == nil {
					if g.dead != nil {
						dead = slices.Clone(g.dead)
					} else {
						dead = make([]bool, g.tab.Len())
					}
				}
				dead[m] = true
				nd++
				deleted++
			} else {
				liveLeft++
			}
		}
		if dead != nil {
			gens[gi] = g.withTombstones(dead, nd)
		}
	}
	if deleted == 0 {
		return 0, nil
	}
	if liveLeft == 0 {
		return 0, fmt.Errorf("alae: deleting %s would leave the store with no live members", strings.Join(names, ", "))
	}
	next, err := buildView(gens, cur.stamp+1)
	if err != nil {
		return 0, err
	}
	if err := st.persistMutation(next, nil, nil); err != nil {
		return 0, err
	}
	st.view.Store(next)
	return deleted, nil
}

// CompactStats reports what one compaction pass did.
type CompactStats struct {
	Before        int // generations before the pass
	After         int // generations after the pass
	PurgedMembers int // tombstoned members whose bytes were dropped
	PurgedBytes   int // their summed sequence length
}

// Compact merges generations LSM-style and purges tombstones: every
// generation carrying tombstones is rewritten (that is the only way to
// drop a dead member's bytes), small generations — under half the
// largest generation's live bytes — fold into the merge so appends do
// not accumulate an unbounded tail of tiny indexes, and when more than
// four generations exist everything but the largest is folded. Clean
// big generations are left alone. The merged generation keeps the live
// members in their current order, so the logical concatenation — and
// with it every global coordinate and the search threshold — is
// unchanged by compaction. A pass with nothing to do is a no-op that
// does not bump the mutation stamp. On a directory-backed store the
// pass is crash-safe: merged generation file, then manifest commit,
// then best-effort removal of the superseded files (leftovers are
// swept on the next load).
func (st *Store) Compact() (CompactStats, error) {
	st.mutMu.Lock()
	defer st.mutMu.Unlock()
	cur := st.currentView()
	cs := CompactStats{Before: len(cur.gens), After: len(cur.gens)}
	victims := compactionVictims(cur.gens)
	if len(victims) == 0 {
		return cs, nil
	}
	isVictim := make(map[int]bool, len(victims))
	for _, gi := range victims {
		isVictim[gi] = true
	}
	var recs []SeqRecord
	for _, gi := range victims {
		g := cur.gens[gi]
		for m := 0; m < g.tab.Len(); m++ {
			if g.isDead(m) {
				cs.PurgedMembers++
				cs.PurgedBytes += g.tab.SeqLen(m)
				continue
			}
			recs = append(recs, SeqRecord{Name: g.tab.Name(m), Seq: g.memberBytes(m)})
		}
	}
	var merged *generation
	if len(recs) > 0 {
		merged = buildGeneration(st.nextGenID, recs)
	}
	// The merged generation takes the first victim's position, so the
	// surviving live order is exactly the pre-compaction live order.
	gens := make([]*generation, 0, len(cur.gens)-len(victims)+1)
	for gi, g := range cur.gens {
		if isVictim[gi] {
			if gi == victims[0] && merged != nil {
				gens = append(gens, merged)
			}
			continue
		}
		gens = append(gens, g)
	}
	next, err := buildView(gens, cur.stamp+1)
	if err != nil {
		return cs, err
	}
	var write []*generation
	if merged != nil {
		write = append(write, merged)
	}
	removed := make([]uint64, len(victims))
	for i, gi := range victims {
		removed[i] = cur.gens[gi].id
	}
	if err := st.persistMutation(next, write, removed); err != nil {
		return cs, err
	}
	if merged != nil {
		st.nextGenID++
	}
	st.view.Store(next)
	cs.After = len(gens)
	return cs, nil
}

// compactionVictims picks which generations a compaction pass merges.
// Tombstone carriers are always victims; generations under half the
// largest generation's live bytes fold in alongside; and past four
// generations everything but the largest folds, bounding the scatter
// fan-out a long append history can build up. A single clean victim
// with nothing to purge is no work at all, so it is left alone.
func compactionVictims(gens []*generation) []int {
	if len(gens) == 0 {
		return nil
	}
	maxLive, biggest := -1, 0
	for gi, g := range gens {
		if lb := g.liveBytes(); lb > maxLive {
			maxLive, biggest = lb, gi
		}
	}
	foldAll := len(gens) > 4
	var victims []int
	tomb := false
	for gi, g := range gens {
		if g.ndead > 0 || 2*g.liveBytes() < maxLive || (foldAll && gi != biggest) {
			victims = append(victims, gi)
			tomb = tomb || g.ndead > 0
		}
	}
	if !tomb && len(victims) < 2 {
		return nil
	}
	return victims
}

// ---------------------------------------------------------------------
// Directory persistence: the generation manifest.

// manifestName is the commit record of a directory-backed store: which
// generation files are current and which members are tombstoned. It is
// always replaced by atomic rename, so it is the mutation commit point.
const manifestName = "MANIFEST"

var manifestMagic = [8]byte{'A', 'L', 'A', 'E', 'M', 'A', 'N', 'F'}

const manifestVersion uint32 = 1

// genFileName names generation id's file within a store directory.
func genFileName(id uint64) string { return fmt.Sprintf("gen-%08d.alae", id) }

// storeFSHook is the failure-injection seam of the mutation
// persistence path: when set (tests only), it runs after every durable
// step — temp created, temp written, temp synced, renamed into place,
// superseded file removed — with the step name and the file involved.
// The crash matrix snapshots the directory at each step (the on-disk
// state a crash there would leave) and asserts every snapshot reloads
// as the pre- or post-mutation store; returning an error aborts the
// mutation at that step, exercising the clean failure paths.
// Production code never sets it.
var storeFSHook func(step, path string) error

func fsStep(step, path string) error {
	if storeFSHook != nil {
		return storeFSHook(step, path)
	}
	return nil
}

// persistMutation writes one mutation's durable footprint to the
// backing directory (no-op for memory-only stores): new generation
// files first, then the manifest — the commit point — then best-effort
// removal of superseded generation files. An interruption before the
// manifest rename leaves the previous store plus debris the next load
// sweeps; after it, the new store plus debris. Never a torn state.
func (st *Store) persistMutation(next *storeView, write []*generation, removed []uint64) error {
	if st.dir == "" {
		return nil
	}
	for _, g := range write {
		if err := writeGenerationFile(st.dir, g); err != nil {
			return err
		}
	}
	if err := writeManifest(st.dir, next); err != nil {
		return err
	}
	for _, id := range removed {
		path := filepath.Join(st.dir, genFileName(id))
		os.Remove(path)
		fsStep("gen-removed", path) // post-commit: outcome cannot abort the mutation
	}
	return nil
}

// writeGenerationFile publishes one generation as a single-generation
// store file. Tombstones are NOT written here — in the directory
// layout the manifest owns them, so a delete is one small manifest
// rewrite instead of a generation rewrite.
func writeGenerationFile(dir string, g *generation) error {
	clean := g
	if g.dead != nil {
		clean = g.withTombstones(nil, 0)
	}
	return atomicWriteFile(filepath.Join(dir, genFileName(g.id)), func(w io.Writer) error {
		return saveGenerations(w, []*generation{clean}, 0)
	})
}

// writeManifest publishes the commit record for view v.
func writeManifest(dir string, v *storeView) error {
	return atomicWriteFile(filepath.Join(dir, manifestName), func(w io.Writer) error {
		bw := newByteWriter(w)
		bw.bytes(manifestMagic[:])
		bw.u32(manifestVersion)
		bw.u64(v.stamp)
		bw.u64(uint64(len(v.gens)))
		for _, g := range v.gens {
			bw.u64(g.id)
			bw.u64(uint64(g.tab.Len()))
			bw.u64(uint64(g.ndead))
			for m := 0; m < g.tab.Len(); m++ {
				if g.isDead(m) {
					bw.u64(uint64(m))
				}
			}
		}
		return bw.flush()
	})
}

// manifestGen is one generation's manifest entry.
type manifestGen struct {
	id      uint64
	members int
	dead    []int
}

// readManifest parses and validates a manifest file.
func readManifest(path string) (stamp uint64, gens []manifestGen, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, fmt.Errorf("alae: reading store manifest: %w", err)
	}
	br := newByteReader(data)
	var magic [8]byte
	br.bytes(magic[:])
	if br.err == nil && magic != manifestMagic {
		return 0, nil, fmt.Errorf("alae: not a store manifest (bad magic %q)", magic[:])
	}
	if v := br.u32(); br.err == nil && v != manifestVersion {
		return 0, nil, fmt.Errorf("alae: unsupported store manifest version %d (this build reads version %d)", v, manifestVersion)
	}
	stamp = br.u64()
	count := br.u64()
	if br.err == nil && count > maxStoreMembers {
		return 0, nil, fmt.Errorf("alae: implausible manifest generation count %d", count)
	}
	seen := make(map[uint64]bool)
	for i := uint64(0); i < count && br.err == nil; i++ {
		var g manifestGen
		g.id = br.u64()
		if br.err == nil && seen[g.id] {
			return 0, nil, fmt.Errorf("alae: manifest lists generation %d twice", g.id)
		}
		seen[g.id] = true
		members := br.u64()
		if br.err == nil && members > maxStoreMembers {
			return 0, nil, fmt.Errorf("alae: implausible manifest member count %d", members)
		}
		g.members = int(members)
		tombs := br.u64()
		if br.err == nil && tombs > members {
			return 0, nil, fmt.Errorf("alae: manifest generation %d tombstones %d of %d members", g.id, tombs, members)
		}
		last := -1
		for t := uint64(0); t < tombs && br.err == nil; t++ {
			m := br.u64()
			if br.err != nil {
				break
			}
			if m >= members || int(m) <= last {
				return 0, nil, fmt.Errorf("alae: manifest generation %d has an invalid tombstone index %d", g.id, m)
			}
			last = int(m)
			g.dead = append(g.dead, int(m))
		}
		gens = append(gens, g)
	}
	if br.err != nil {
		return 0, nil, fmt.Errorf("alae: reading store manifest: %w", br.err)
	}
	if len(gens) == 0 {
		return 0, nil, fmt.Errorf("alae: store manifest lists no generations")
	}
	return stamp, gens, nil
}

// StoreDirStamp reads the mutation stamp of a directory-backed store
// from its manifest alone, without loading any generation index. A
// serving daemon's reload job polls this: when the stamp matches the
// store it is already serving, the (expensive) reload is skipped —
// the manifest rename is the commit point of every mutation, so an
// unchanged stamp means an unchanged store.
func StoreDirStamp(dir string) (uint64, error) {
	stamp, _, err := readManifest(filepath.Join(dir, manifestName))
	return stamp, err
}

// loadStoreDir loads a directory-backed store: manifest, then each
// generation file it references, with the manifest's tombstones
// overlaid. Debris from interrupted mutations — generation files the
// manifest does not reference, leftover temp files — is swept after a
// successful load.
func loadStoreDir(dir string, opts StoreOptions) (*Store, error) {
	stamp, entries, err := readManifest(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	gens := make([]*generation, len(entries))
	keep := make(map[string]bool, len(entries)+1)
	for i, e := range entries {
		name := genFileName(e.id)
		keep[name] = true
		g, err := loadGenerationFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("alae: store generation %d: %w", e.id, err)
		}
		if g.id != e.id {
			return nil, fmt.Errorf("alae: generation file %s holds generation %d", name, g.id)
		}
		if g.tab.Len() != e.members {
			return nil, fmt.Errorf("alae: generation %d has %d members, manifest says %d", e.id, g.tab.Len(), e.members)
		}
		if len(e.dead) > 0 {
			dead := make([]bool, g.tab.Len())
			for _, m := range e.dead {
				dead[m] = true
			}
			g = g.withTombstones(dead, len(e.dead))
		}
		gens[i] = g
	}
	st, err := newStoreFromGens(gens, stamp, opts)
	if err != nil {
		return nil, err
	}
	st.dir = dir
	sweepStoreDir(dir, keep)
	return st, nil
}

// loadGenerationFile reads one generation file (a single-generation
// store file).
func loadGenerationFile(path string) (*generation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	gens, _, err := loadGenerations(f)
	if err != nil {
		return nil, err
	}
	if len(gens) != 1 {
		return nil, fmt.Errorf("holds %d generations, want exactly 1", len(gens))
	}
	return gens[0], nil
}

// sweepStoreDir removes the debris an interrupted mutation can leave:
// generation files the manifest no longer (or does not yet) reference
// and temp files that never got renamed. Only files matching the
// store's own naming patterns are touched; removal is best-effort —
// sweeping is hygiene, not correctness, because the loader never reads
// unreferenced files in the first place.
func sweepStoreDir(dir string, keep map[string]bool) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || name == manifestName || keep[name] {
			continue
		}
		orphanGen := strings.HasPrefix(name, "gen-") && strings.HasSuffix(name, ".alae")
		leftoverTemp := strings.Contains(name, ".tmp-")
		if orphanGen || leftoverTemp {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// SaveDir writes the store as a generation directory — one file per
// generation plus the manifest — and attaches the store to it: every
// later Append/Delete/Compact persists there crash-safely. This is the
// durable layout for mutable serving stores; SaveFile remains the
// one-file snapshot.
func (st *Store) SaveDir(dir string) error {
	st.mutMu.Lock()
	defer st.mutMu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("alae: creating store directory: %w", err)
	}
	v := st.currentView()
	keep := make(map[string]bool, len(v.gens)+1)
	for _, g := range v.gens {
		if err := writeGenerationFile(dir, g); err != nil {
			return err
		}
		keep[genFileName(g.id)] = true
	}
	if err := writeManifest(dir, v); err != nil {
		return err
	}
	st.dir = dir
	sweepStoreDir(dir, keep)
	return nil
}
