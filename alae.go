// Package alae is a reproduction of "ALAE: Accelerating Local
// Alignment with Affine Gap Exactly in Biosequence Databases"
// (Yang, Liu, Wang — PVLDB 5(11), 2012).
//
// ALAE answers local-alignment searches exactly: given a text (a
// genome or a concatenated sequence database), a query, an affine-gap
// scoring scheme ⟨sa,sb,sg,ss⟩ and a score threshold (or an E-value),
// it reports every end-position pair whose best local-alignment score
// reaches the threshold — the same answer a full Smith-Waterman sweep
// produces — using a compressed suffix array, a family of pruning
// filters, and cross-fork score reuse.
//
// Basic use:
//
//	ix := alae.NewIndex(text)
//	res, err := ix.Search(query, alae.SearchOptions{EValue: 10})
//	for _, hit := range res.Hits { ... }
//
// The same Index also serves the paper's baselines (BWT-SW, a
// BLAST-like heuristic, and plain Smith-Waterman) through
// SearchOptions.Algorithm, which is how the evaluation harness
// compares them.
package alae

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/align"
	"repro/internal/blast"
	"repro/internal/bwtsw"
	"repro/internal/core"
	"repro/internal/evalue"
	"repro/internal/strie"
)

// Scheme is the affine-gap scoring scheme ⟨sa, sb, sg, ss⟩.
type Scheme = align.Scheme

// Hit is one result: 0-based inclusive end positions in the text and
// the query, with the best score of any alignment ending there.
type Hit = align.Hit

// Alignment is a fully resolved alignment with its operation list.
type Alignment = align.Alignment

// Canonical schemes.
var (
	// DefaultDNAScheme is ⟨1,−3,−5,−2⟩, the default of BLAST, BWT-SW
	// and the paper.
	DefaultDNAScheme = align.DefaultDNA
	// DefaultProteinScheme is ⟨1,−3,−11,−1⟩, used by the paper's
	// protein experiments.
	DefaultProteinScheme = align.DefaultProtein
)

// Algorithm selects the search engine.
type Algorithm int

const (
	// ALAE is the paper's contribution (DFS engine mode): exact, with
	// all filters enabled.
	ALAE Algorithm = iota
	// ALAEHybrid is ALAE's Algorithm 3 mode with cross-fork score
	// reuse; exact, and the mode that reports reuse statistics.
	ALAEHybrid
	// BWTSW is the exact baseline of Lam et al. 2008.
	BWTSW
	// BLAST is the heuristic seed-and-extend baseline; fast but may
	// miss results.
	BLAST
	// SmithWaterman is the full O(n·m) Gotoh sweep.
	SmithWaterman
)

func (a Algorithm) String() string {
	switch a {
	case ALAE:
		return "ALAE"
	case ALAEHybrid:
		return "ALAE-hybrid"
	case BWTSW:
		return "BWT-SW"
	case BLAST:
		return "BLAST"
	case SmithWaterman:
		return "Smith-Waterman"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// SearchOptions configures one search. The zero value means: ALAE
// engine, default DNA scheme, threshold derived from E-value 10 (the
// BLAST/BWT-SW default, §7).
type SearchOptions struct {
	// Scheme is the scoring scheme; zero means DefaultDNAScheme.
	Scheme Scheme
	// Threshold is the raw score threshold H. When 0 it is derived
	// from EValue via the Karlin-Altschul statistics of §7.
	Threshold int
	// EValue is the expectation value used when Threshold is 0.
	// 0 means 10, the default of BLAST and BWT-SW.
	EValue float64
	// Algorithm selects the engine (default ALAE).
	Algorithm Algorithm
	// AlphabetSize is σ for the E-value statistics; 0 means the
	// number of distinct bytes in the indexed text.
	AlphabetSize int
	// Parallelism is the number of worker goroutines the ALAE engines
	// spread a single search's fork families over: 0 means
	// runtime.NumCPU(), 1 is the sequential engine. Any value yields
	// exactly the sequential hit set and work statistics. The baseline
	// engines (BWT-SW, BLAST, Smith-Waterman) ignore it.
	Parallelism int
	// DisableFilters switches off ALAE's length/score/domination
	// filters (ablation runs; exactness is unaffected).
	DisableLengthFilter, DisableScoreFilter, DisableDomination bool
}

// Stats summarises the work a search performed, in the units the
// paper's evaluation uses.
type Stats struct {
	CalculatedEntries int64 // DP cells computed
	ReusedEntries     int64 // cells copied by the reuse technique (§4)
	AccessedEntries   int64 // calculated + reused
	ComputationCost   int64 // weighted cost (§7.2 Table 4 accounting)
	NodesVisited      int64 // emulated suffix-trie nodes entered with live state
	ForksStarted      int64
	ForksDominated    int64 // forks pruned by q-prefix domination
	GramCacheHits     int64 // distinct q-grams resolved from the cross-query cache
	GramCacheMisses   int64 // distinct q-grams resolved by trie walk
	QueryCacheHits    int64 // Store only: whole results served from the query cache
	QueryCacheMisses  int64 // Store only: results computed and published to the cache
	Seeds             int64 // BLAST only: word hits examined

	// EmittedHits counts the occurrence-resolved (tEnd, qEnd) cells the
	// ALAE engines forwarded to the result collector;
	// SuppressedEmissions counts the duplicates the diagonal dominance
	// filter dropped before the collector; CopiedEmissions counts the
	// cells the hybrid vertical phase recognised as already forwarded
	// by an earlier branch of the same fork family and skipped (both
	// are provable no-ops, so hit sets are unaffected). All three are
	// invariant under Parallelism.
	EmittedHits         int64
	SuppressedEmissions int64
	CopiedEmissions     int64
}

// add accumulates another search's counters into st — the gather step
// of the sharded store sums its per-shard statistics with it.
func (st *Stats) add(o Stats) {
	st.CalculatedEntries += o.CalculatedEntries
	st.ReusedEntries += o.ReusedEntries
	st.AccessedEntries += o.AccessedEntries
	st.ComputationCost += o.ComputationCost
	st.NodesVisited += o.NodesVisited
	st.ForksStarted += o.ForksStarted
	st.ForksDominated += o.ForksDominated
	st.GramCacheHits += o.GramCacheHits
	st.GramCacheMisses += o.GramCacheMisses
	st.QueryCacheHits += o.QueryCacheHits
	st.QueryCacheMisses += o.QueryCacheMisses
	st.Seeds += o.Seeds
	st.EmittedHits += o.EmittedHits
	st.SuppressedEmissions += o.SuppressedEmissions
	st.CopiedEmissions += o.CopiedEmissions
}

// Result is one search's outcome.
type Result struct {
	Hits      []Hit
	Threshold int // the H actually used
	Algorithm Algorithm
	Stats     Stats
}

// engineKey identifies one ALAE engine configuration: the search mode
// plus the ablation filter switches. Every configuration is cached, so
// repeated searches — ablation sweeps included — reuse engines instead
// of rebuilding them per call.
type engineKey struct {
	mode                            core.Mode
	noLength, noScore, noDomination bool
}

// Index is a searchable text. Building it costs O(n) time and memory;
// afterwards any number of concurrent searches can run against it.
type Index struct {
	text    []byte
	trie    *strie.Trie
	barrier byte // core.Options.BarrierByte for the ALAE engines; 0 = none

	mu    sync.Mutex
	alae  map[engineKey]*core.Engine
	bwtsw *bwtsw.Engine
	blast *blast.Engine
}

// NewIndex builds the compressed-suffix-array index of text (the BWT
// of the reversed text plus occurrence checkpoints and position
// samples, §5).
func NewIndex(text []byte) *Index {
	return &Index{
		text: text,
		trie: strie.New(text),
		alae: make(map[engineKey]*core.Engine),
	}
}

// newBarrierIndex is NewIndex with the ALAE engines' barrier byte set:
// trie edges labelled barrier are never descended, so no reported
// alignment can span an occurrence of that byte (core.Options,
// BarrierByte). The store builds its generation indexes this way with
// the member separator, making cross-member hits structurally
// impossible for the exact engines; plain NewIndex stays barrier-free
// so single-text indexes (and the paper-parity experiments over them)
// are untouched. Callers must reject queries containing the byte — the
// store's query validation does.
func newBarrierIndex(text []byte, barrier byte) *Index {
	ix := NewIndex(text)
	ix.barrier = barrier
	return ix
}

// Text returns the indexed text. Callers must not modify it.
func (ix *Index) Text() []byte { return ix.text }

// Len returns the text length n.
func (ix *Index) Len() int { return len(ix.text) }

// SizeBytes reports the index's in-memory footprint (the BWT index of
// Figure 11).
func (ix *Index) SizeBytes() int { return ix.trie.Index().SizeBytes() }

// PackedSizeBytes reports the footprint with the BWT packed at
// ⌈log2 σ⌉ bits per character, the paper's accounting.
func (ix *Index) PackedSizeBytes() int { return ix.trie.Index().PackedSizeBytes() }

// DominationIndexSize reports the size of the q-prefix domination
// index for the given scheme (the "dominate index" of Figure 11),
// building it if needed.
func (ix *Index) DominationIndexSize(s Scheme) (int, error) {
	e, err := ix.alaeEngine(core.ModeDFS, SearchOptions{})
	if err != nil {
		return 0, err
	}
	dom, err := e.DominationIndex(s.Q())
	if err != nil {
		return 0, err
	}
	return dom.SizeBytes(), nil
}

func (ix *Index) alaeEngine(mode core.Mode, opts SearchOptions) (*core.Engine, error) {
	key := engineKey{
		mode:         mode,
		noLength:     opts.DisableLengthFilter,
		noScore:      opts.DisableScoreFilter,
		noDomination: opts.DisableDomination,
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if e, ok := ix.alae[key]; ok {
		return e, nil
	}
	e := core.NewFromTrie(ix.trie, core.Options{
		Mode:                mode,
		DisableLengthFilter: opts.DisableLengthFilter,
		DisableScoreFilter:  opts.DisableScoreFilter,
		DisableDomination:   opts.DisableDomination,
		BarrierByte:         ix.barrier,
	})
	ix.alae[key] = e
	return e, nil
}

// resolveThresholdOver derives the raw score threshold for a query of
// length m against a database of length n and alphabet size dbSigma —
// the one shared derivation behind Index.ResolveThreshold and the
// store's global-threshold resolution, so the two can never diverge
// (the store's shard-parity gates depend on them agreeing). Negative
// thresholds and negative E-values are rejected: both are always
// caller bugs, and silently falling back to the defaults would hide
// them.
func resolveThresholdOver(s Scheme, opts SearchOptions, m, n, dbSigma int) (int, error) {
	if opts.Threshold < 0 {
		return 0, fmt.Errorf("alae: negative threshold %d; use 0 to derive the threshold from the E-value", opts.Threshold)
	}
	if opts.EValue < 0 {
		return 0, fmt.Errorf("alae: negative E-value %g; use 0 for the default of 10", opts.EValue)
	}
	if opts.Threshold > 0 {
		return opts.Threshold, nil
	}
	ev := opts.EValue
	if ev == 0 {
		ev = 10
	}
	sigma := opts.AlphabetSize
	if sigma == 0 {
		sigma = dbSigma
		if sigma < 2 {
			sigma = 4
		}
	}
	return evalue.ThresholdFor(s, sigma, m, max(n, 1), ev)
}

// ResolveThreshold returns the raw score threshold a search with
// these options would use for a query of length m; see
// resolveThresholdOver for the derivation and rejection rules.
func (ix *Index) ResolveThreshold(m int, opts SearchOptions) (int, error) {
	s := opts.Scheme
	if s == (Scheme{}) {
		s = DefaultDNAScheme
	}
	return resolveThresholdOver(s, opts, m, ix.Len(), ix.trie.Index().Sigma())
}

// validateSearchOptions rejects search configurations that are always
// caller bugs, independently of any query: negative thresholds and
// E-values (silently falling back to the defaults would hide them),
// negative parallelism, unknown algorithms, and schemes the selected
// baseline cannot run. Index.Search applies it per call; OpenSession
// applies it eagerly so a misconfigured serving lane fails at open —
// for every algorithm, not only the ALAE engines — instead of on its
// first query.
func validateSearchOptions(opts SearchOptions, s Scheme) error {
	if opts.Threshold < 0 {
		return fmt.Errorf("alae: negative threshold %d; use 0 to derive the threshold from the E-value", opts.Threshold)
	}
	if opts.EValue < 0 {
		return fmt.Errorf("alae: negative E-value %g; use 0 for the default of 10", opts.EValue)
	}
	if opts.Parallelism < 0 {
		return fmt.Errorf("alae: negative parallelism %d; use 0 for all cores, 1 for the sequential engine", opts.Parallelism)
	}
	switch opts.Algorithm {
	case ALAE, ALAEHybrid, BLAST, SmithWaterman:
	case BWTSW:
		if !s.BWTSWCompatible() {
			return fmt.Errorf("alae: BWT-SW requires |sb| ≥ 3·|sa| (scheme %v); see §2.4", s)
		}
	default:
		return fmt.Errorf("alae: unknown algorithm %v", opts.Algorithm)
	}
	return nil
}

// Search runs a local-alignment search for query against the index.
//
// For the ALAE engines (the q-gram-based modes), queries shorter than
// the scheme's gram length q are rejected with a descriptive error: no
// q-gram window fits, so the engines would otherwise return a silently
// empty hit set — almost always a caller bug (truncated input, wrong
// scheme). The Smith-Waterman baseline has no such floor.
func (ix *Index) Search(query []byte, opts SearchOptions) (*Result, error) {
	return ix.SearchContext(context.Background(), query, opts)
}

// SearchContext is Search under a context. The ALAE engines poll the
// context's done channel at entry-budget checkpoints inside the
// traversal loops, so a deadline or cancellation aborts a running
// search with the context's error within a bounded number of DP
// entries per worker; the index and its pooled sessions remain fully
// usable afterwards. The baseline algorithms (BWT-SW, BLAST,
// Smith-Waterman) only check the context at admission — once running
// they complete; they exist for offline evaluation, not serving. A
// background context adds no measurable overhead to any path.
func (ix *Index) SearchContext(cx context.Context, query []byte, opts SearchOptions) (*Result, error) {
	s := opts.Scheme
	if s == (Scheme{}) {
		s = DefaultDNAScheme
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := validateSearchOptions(opts, s); err != nil {
		return nil, err
	}
	if err := cx.Err(); err != nil {
		return nil, err // admission check; the only one the baselines get
	}
	h, err := ix.ResolveThreshold(len(query), opts)
	if err != nil {
		return nil, err
	}
	c := align.NewCollector()
	res := &Result{Threshold: h, Algorithm: opts.Algorithm}

	switch opts.Algorithm {
	case ALAE, ALAEHybrid:
		mode := core.ModeDFS
		if opts.Algorithm == ALAEHybrid {
			mode = core.ModeHybrid
		}
		e, err := ix.alaeEngine(mode, opts)
		if err != nil {
			return nil, err
		}
		ses := e.AcquireSession()
		st, err := ses.SearchContext(cx, query, s, h, c, opts.Parallelism)
		ses.Release()
		if err != nil {
			return nil, err
		}
		res.Stats = statsFromCore(st)
	case BWTSW:
		// Scheme compatibility was vetted by validateSearchOptions.
		ix.mu.Lock()
		if ix.bwtsw == nil {
			ix.bwtsw = bwtsw.NewFromTrie(ix.trie)
		}
		e := ix.bwtsw
		ix.mu.Unlock()
		st := e.Search(query, s, h, c)
		res.Stats = Stats{
			CalculatedEntries: st.CalculatedEntries,
			AccessedEntries:   st.CalculatedEntries,
			ComputationCost:   st.ComputationCost(),
			NodesVisited:      st.NodesVisited,
		}
	case BLAST:
		ix.mu.Lock()
		if ix.blast == nil {
			ix.blast = blast.New(ix.text, ix.trie.Letters(), blast.Options{})
		}
		e := ix.blast
		ix.mu.Unlock()
		st := e.Search(query, s, h, c)
		res.Stats = Stats{
			CalculatedEntries: st.CalculatedEntries,
			AccessedEntries:   st.CalculatedEntries,
			Seeds:             st.Seeds,
		}
	case SmithWaterman:
		cells := align.LocalAllInto(ix.text, query, s, h, c)
		res.Stats = Stats{
			CalculatedEntries: int64(cells),
			AccessedEntries:   int64(cells),
			ComputationCost:   3 * int64(cells),
		}
	default:
		return nil, fmt.Errorf("alae: unknown algorithm %v", opts.Algorithm)
	}
	res.Hits = c.Hits()
	return res, nil
}

// Align reconstructs the best alignment ending at a hit, for display.
func (ix *Index) Align(query []byte, s Scheme, hit Hit) (Alignment, error) {
	if s == (Scheme{}) {
		s = DefaultDNAScheme
	}
	return align.Traceback(ix.text, query, s, hit)
}

// FormatAlignment renders an alignment against this index's text.
func (ix *Index) FormatAlignment(a Alignment, query []byte, width int) string {
	return a.Format(ix.text, query, width)
}

// Region is a cluster of nearby hits summarised by its best one; see
// MergeRegions.
type Region = align.Region

// MergeRegions collapses the exact engines' dense per-end-pair hits
// into distinct alignment regions: hits within slack of an anchored
// best hit (same diagonal neighbourhood) merge into one region.
// Regions come back ordered by descending best score.
func MergeRegions(hits []Hit, slack int) []Region { return align.MergeRegions(hits, slack) }

// TopK returns the k highest-scoring hits (all when k ≤ 0), with a
// deterministic positional tiebreak.
func TopK(hits []Hit, k int) []Hit { return align.TopK(hits, k) }
