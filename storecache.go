package alae

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// The result-level query cache of the serving store. A server replays
// identical queries — health checks, popular reads, retried requests —
// and even with warm sessions and the cross-query gram cache each
// replay re-runs the whole traversal. This cache closes that gap:
// results are keyed by (mutation stamp, options fingerprint, query
// bytes). The stamp is the invalidation story: a store mutation
// (Append/Delete/Compact) bumps it, which makes every pre-mutation
// entry unreachable — stale entries are never answered, they just age
// out through normal CLOCK eviction as post-mutation traffic claims
// their slots. Against one store state an exact repeat is one hash
// probe and eviction (CLOCK, approximately LRU) is pure capacity
// management.
//
// Concurrency mirrors the gram cache: hits are an RLock-guarded map
// probe plus one atomic reference-bit store. Population is NOT
// single-flight — two sessions racing on the same cold query both
// compute it and the last insert wins, which is sound (both computed
// the same result against the same stamped view) and keeps misses
// lock-free while the search runs.

// cacheKey builds the cache key for one (store state, options, query)
// triple. The query bytes are copied into the key string, so cached
// entries never alias caller buffers.
func cacheKey(stamp uint64, fp string, query []byte) string {
	b := make([]byte, 0, binary.MaxVarintLen64+1+len(fp)+1+len(query))
	b = binary.AppendUvarint(b, stamp)
	b = append(b, 0)
	b = append(b, fp...)
	b = append(b, 0)
	b = append(b, query...)
	return string(b)
}

// queryEntry is one cached result. res is immutable once inserted.
type queryEntry struct {
	key  string
	used atomic.Bool // CLOCK reference bit
	res  *StoreResult
}

// queryCache is the table. One exists per Store.
type queryCache struct {
	mu        sync.RWMutex
	capacity  int
	m         map[string]*queryEntry
	ring      []*queryEntry // CLOCK ring over the live entries
	hand      int
	totalHits int64 // Σ len(res.Hits) over the live entries: the footprint proxy

	hits, misses atomic.Int64 // store-lifetime counters
}

// newQueryCache returns a cache of the given capacity; 0 means the
// default and a negative size disables caching (nil cache).
func newQueryCache(size int) *queryCache {
	if size < 0 {
		return nil
	}
	if size == 0 {
		size = defaultQueryCacheSize
	}
	return &queryCache{capacity: size, m: make(map[string]*queryEntry, min(size, 1024))}
}

// get returns the cached result for key, counting the probe.
func (qc *queryCache) get(key string) (*StoreResult, bool) {
	qc.mu.RLock()
	e := qc.m[key]
	qc.mu.RUnlock()
	if e == nil {
		qc.misses.Add(1)
		return nil, false
	}
	e.used.Store(true)
	qc.hits.Add(1)
	return e.res, true
}

// put publishes a result, evicting one CLOCK victim when the cache is
// full. Racing puts of the same key keep the first entry (the results
// are identical).
func (qc *queryCache) put(key string, res *StoreResult) {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	if _, ok := qc.m[key]; ok {
		return
	}
	e := &queryEntry{key: key, res: res}
	qc.m[key] = e
	qc.totalHits += int64(len(res.Hits))
	if len(qc.ring) < qc.capacity {
		qc.ring = append(qc.ring, e)
		return
	}
	victim := qc.clockVictim()
	old := qc.ring[victim]
	delete(qc.m, old.key)
	qc.totalHits -= int64(len(old.res.Hits))
	qc.ring[victim] = e
	qc.hand = (victim + 1) % len(qc.ring)
}

// clockVictim runs one CLOCK sweep under qc.mu: clear reference bits
// until an unreferenced entry turns up; bounded, falling back to the
// hand's current slot. The ring must be non-empty.
func (qc *queryCache) clockVictim() int {
	for i := 0; i < 2*len(qc.ring); i++ {
		if !qc.ring[qc.hand].used.Swap(false) {
			return qc.hand
		}
		qc.hand = (qc.hand + 1) % len(qc.ring)
	}
	return qc.hand
}

// pressure reports the cache's current footprint: live results and the
// total hit count they pin. Hit count is the footprint proxy — a Hit
// is fixed-size, and the variable-size balance of an entry (key bytes,
// counters) is bounded per result.
func (qc *queryCache) pressure() (results int, totalHits int64) {
	qc.mu.RLock()
	defer qc.mu.RUnlock()
	return len(qc.m), qc.totalHits
}

// shed evicts CLOCK victims until the cache pins at most maxHits total
// hits, compacting the ring as it goes, and reports how many results
// were evicted. Recently-used entries survive longest (their reference
// bits absorb sweep passes), so a pressure sweep degrades the cache
// toward its hot set instead of clearing it.
func (qc *queryCache) shed(maxHits int64) (evicted int) {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	for qc.totalHits > maxHits && len(qc.ring) > 0 {
		victim := qc.clockVictim()
		e := qc.ring[victim]
		delete(qc.m, e.key)
		qc.totalHits -= int64(len(e.res.Hits))
		last := len(qc.ring) - 1
		qc.ring[victim] = qc.ring[last]
		qc.ring[last] = nil
		qc.ring = qc.ring[:last]
		if last == 0 {
			qc.hand = 0
		} else {
			qc.hand = victim % len(qc.ring)
		}
		evicted++
	}
	return evicted
}

// len reports the number of cached results (tests and diagnostics).
func (qc *queryCache) len() int {
	qc.mu.RLock()
	defer qc.mu.RUnlock()
	return len(qc.m)
}
