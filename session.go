package alae

import (
	"context"
	"fmt"

	"repro/internal/align"
	"repro/internal/core"
)

// Session is a reusable serving lane over an Index: one configuration
// (algorithm, scheme, filters, parallelism) answering query after
// query. The session owns every query-specific structure — the q-gram
// inverted index, δ score table, bound tables, traversal workspace,
// result collector and (for parallel searches) the per-worker
// collector shards — and re-arms them in place per call, so a serving
// loop stops allocating once the buffers are warm. The heavy shared
// structures (trie, domination index, cross-query gram cache) belong
// to the Index's engines and are only read.
//
// A Session is NOT safe for concurrent use. Open one per serving
// goroutine; sessions of the same Index share the engines and their
// caches, which are concurrency-safe. Close returns the underlying
// pooled state so later sessions (and plain Index.Search calls, which
// draw from the same pool) reuse it.
type Session struct {
	ix     *Index
	opts   SearchOptions
	s      Scheme
	cs     *core.Session    // nil for the baseline algorithms
	coll   *align.Collector // reused result table
	closed bool
}

// OpenSession returns a session for the given search configuration.
// Configuration errors — an invalid scheme, negative Threshold, EValue
// or Parallelism, an unknown algorithm, a baseline-incompatible scheme
// — surface here for every algorithm, not on the first query; for the
// ALAE engines the engine is additionally bound eagerly. Baseline
// algorithms (BWT-SW, BLAST, Smith-Waterman) are stateless per query;
// their sessions simply forward to Index.Search.
func (ix *Index) OpenSession(opts SearchOptions) (*Session, error) {
	s := opts.Scheme
	if s == (Scheme{}) {
		s = DefaultDNAScheme
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := validateSearchOptions(opts, s); err != nil {
		return nil, err
	}
	ses := &Session{ix: ix, opts: opts, s: s}
	switch opts.Algorithm {
	case ALAE, ALAEHybrid:
		mode := core.ModeDFS
		if opts.Algorithm == ALAEHybrid {
			mode = core.ModeHybrid
		}
		e, err := ix.alaeEngine(mode, opts)
		if err != nil {
			return nil, err
		}
		ses.cs = e.AcquireSession()
		ses.coll = align.NewCollector()
	}
	return ses, nil
}

// Search runs one query through the session; results are identical to
// Index.Search with the session's options, whether the session is
// fresh or re-armed and whatever ran through it before — including the
// rejection of queries shorter than the scheme's gram length (see
// Index.Search). A closed session errors rather than silently
// degrading to one-shot searches.
func (ses *Session) Search(query []byte) (*Result, error) {
	return ses.SearchContext(context.Background(), query)
}

// SearchContext is Search under a context: an ALAE-engine search polls
// the context at entry-budget checkpoints and aborts with the
// context's error within a bounded number of DP entries (see
// Index.SearchContext for the contract, including the baseline
// algorithms' admission-only cancellation). The session remains fully
// reusable after a cancelled search.
func (ses *Session) SearchContext(cx context.Context, query []byte) (*Result, error) {
	if ses.closed {
		return nil, fmt.Errorf("alae: Search on a closed Session")
	}
	if ses.cs == nil {
		return ses.ix.SearchContext(cx, query, ses.opts)
	}
	h, err := ses.ix.ResolveThreshold(len(query), ses.opts)
	if err != nil {
		return nil, err
	}
	return ses.searchThreshold(cx, query, h)
}

// searchThreshold is SearchContext with the score threshold pinned by
// the caller instead of derived from the session's options. The
// sharded store's scatter step needs it: E-value statistics depend on
// the database length n, so every shard must search at the threshold
// of the WHOLE store — per-shard re-derivation over the shard's
// smaller n would loosen thresholds and break parity with a monolithic
// index.
func (ses *Session) searchThreshold(cx context.Context, query []byte, h int) (*Result, error) {
	if ses.closed {
		return nil, fmt.Errorf("alae: Search on a closed Session")
	}
	if ses.cs == nil {
		o := ses.opts
		o.Threshold, o.EValue = h, 0
		return ses.ix.SearchContext(cx, query, o)
	}
	ses.coll.Reset()
	st, err := ses.cs.SearchContext(cx, query, ses.s, h, ses.coll, ses.opts.Parallelism)
	if err != nil {
		return nil, err
	}
	return &Result{
		Threshold: h,
		Algorithm: ses.opts.Algorithm,
		Stats:     statsFromCore(st),
		Hits:      ses.coll.Hits(),
	}, nil
}

// searchCollect is the store's collector-resident search: one query at
// a pinned threshold, dispatched across lanes cost-balanced family
// slices of the shared index (core.Session.SearchLanes), with the hits
// left IN the session's collector for the caller to stream (see
// align.Collector.ForEach) instead of materialised into a sorted
// Result.Hits slice. This is what makes the store's gather streaming:
// no per-lane intermediate hit slice ever exists. Baseline algorithms
// (cs == nil) have no collector; they fall back to searchThreshold and
// return the materialised *Result as res instead.
func (ses *Session) searchCollect(cx context.Context, query []byte, h, lanes int) (st Stats, res *Result, err error) {
	if ses.closed {
		return Stats{}, nil, fmt.Errorf("alae: Search on a closed Session")
	}
	if ses.cs == nil {
		r, err := ses.searchThreshold(cx, query, h)
		if err != nil {
			return Stats{}, nil, err
		}
		return r.Stats, r, nil
	}
	ses.coll.Reset()
	cst, err := ses.cs.SearchLanes(cx, query, ses.s, h, ses.coll, lanes)
	if err != nil {
		return Stats{}, nil, err
	}
	return statsFromCore(cst), nil, nil
}

// Close hands the session's pooled state back to the engine. The
// session must not be used afterwards; Close is idempotent.
func (ses *Session) Close() {
	if ses.cs != nil {
		ses.cs.Release()
		ses.cs = nil
	}
	ses.closed = true
}

// statsFromCore converts the core engine's counters to the public
// Stats shape.
func statsFromCore(st core.Stats) Stats {
	return Stats{
		CalculatedEntries:   st.CalculatedEntries(),
		ReusedEntries:       st.ReusedEntries,
		AccessedEntries:     st.AccessedEntries(),
		ComputationCost:     st.ComputationCost(),
		NodesVisited:        st.NodesVisited,
		ForksStarted:        st.ForksStarted,
		ForksDominated:      st.ForksDominated,
		GramCacheHits:       st.GramCacheHits,
		GramCacheMisses:     st.GramCacheMisses,
		EmittedHits:         st.EmittedHits,
		SuppressedEmissions: st.SuppressedEmissions,
		CopiedEmissions:     st.CopiedEmissions,
	}
}
