package alae

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/seq"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	text, query := workload(300, 3000, 400)
	ix := NewIndex(text)
	want, err := ix.Search(query, SearchOptions{Threshold: 20})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(loaded.Text(), text) {
		t.Fatal("text changed through save/load")
	}
	got, err := loaded.Search(query, SearchOptions{Threshold: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !align.EqualHits(got.Hits, want.Hits) {
		t.Fatalf("loaded index returns %d hits, original %d", len(got.Hits), len(want.Hits))
	}
	// Every algorithm must work on a loaded index, including ones that
	// lazily build engines.
	for _, alg := range []Algorithm{ALAEHybrid, BWTSW, BLAST} {
		if _, err := loaded.Search(query, SearchOptions{Algorithm: alg, Threshold: 20}); err != nil {
			t.Fatalf("%v on loaded index: %v", alg, err)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Load(bytes.NewReader([]byte("not an index at all, definitely"))); err == nil {
		t.Error("garbage accepted")
	}
	// A huge claimed length must fail fast, not allocate terabytes.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, err := Load(bytes.NewReader(huge)); err == nil {
		t.Error("implausible length accepted")
	}
}

func TestReverseComplement(t *testing.T) {
	if got := ReverseComplement([]byte("ACGT")); string(got) != "ACGT" {
		t.Errorf("RC(ACGT) = %s (ACGT is its own reverse complement)", got)
	}
	if got := ReverseComplement([]byte("AACG")); string(got) != "CGTT" {
		t.Errorf("RC(AACG) = %s, want CGTT", got)
	}
	// Involution.
	rng := rand.New(rand.NewSource(301))
	s := randDNA(500, rng)
	if !bytes.Equal(ReverseComplement(ReverseComplement(s)), s) {
		t.Error("RC is not an involution")
	}
	// Non-ACGT bytes survive.
	if got := ReverseComplement([]byte("A#T")); string(got) != "A#T" {
		t.Errorf("RC(A#T) = %s", got)
	}
}

func TestSearchBothStrands(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	text := randDNA(5000, rng)
	// Plant a reverse-complement copy: a forward-only search misses it.
	segment := text[1000:1100]
	query := append(randDNA(50, rng), append(ReverseComplement(segment), randDNA(50, rng)...)...)

	ix := NewIndex(text)
	fwd, err := ix.Search(query, SearchOptions{Threshold: 40})
	if err != nil {
		t.Fatal(err)
	}
	both, err := ix.SearchBothStrands(query, SearchOptions{Threshold: 40})
	if err != nil {
		t.Fatal(err)
	}
	reverse := 0
	for _, h := range both {
		if h.Strand == Reverse {
			reverse++
		}
	}
	if reverse == 0 {
		t.Error("planted reverse-strand homology not found")
	}
	if len(both) <= len(fwd.Hits) {
		t.Errorf("both-strand search found %d ≤ forward-only %d", len(both), len(fwd.Hits))
	}
}

func TestSearchAllMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	text := randDNA(10000, rng)
	queries := seq.HomologousQueries(seq.DNA, text, 6, 800, 100, 400,
		seq.MutationConfig{SubstitutionRate: 0.04}, rng)
	ix := NewIndex(text)
	opts := SearchOptions{Threshold: 25}

	parallel, err := ix.SearchAll(queries, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(parallel), len(queries))
	}
	for qi, q := range queries {
		seqRes, err := ix.Search(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !align.EqualHits(parallel[qi].Hits, seqRes.Hits) {
			t.Fatalf("query %d: parallel and sequential disagree", qi)
		}
	}
}

func TestSearchAllEdgeCases(t *testing.T) {
	ix := NewIndex([]byte("ACGTACGTACGT"))
	res, err := ix.SearchAll(nil, SearchOptions{}, 0)
	if err != nil || res != nil {
		t.Errorf("empty query set: %v, %v", res, err)
	}
	// Errors propagate (BWT-SW + incompatible scheme).
	_, err = ix.SearchAll([][]byte{[]byte("ACGTACGT")}, SearchOptions{
		Algorithm: BWTSW,
		Scheme:    Scheme{Match: 1, Mismatch: -1, GapOpen: -5, GapExtend: -2},
		Threshold: 10,
	}, 2)
	if err == nil {
		t.Error("worker error not propagated")
	}
}
