package alae

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/align"
	"repro/internal/seq"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	text, query := workload(300, 3000, 400)
	ix := NewIndex(text)
	want, err := ix.Search(query, SearchOptions{Threshold: 20})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(loaded.Text(), text) {
		t.Fatal("text changed through save/load")
	}
	got, err := loaded.Search(query, SearchOptions{Threshold: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !align.EqualHits(got.Hits, want.Hits) {
		t.Fatalf("loaded index returns %d hits, original %d", len(got.Hits), len(want.Hits))
	}
	// Every algorithm must work on a loaded index, including ones that
	// lazily build engines.
	for _, alg := range []Algorithm{ALAEHybrid, BWTSW, BLAST} {
		if _, err := loaded.Search(query, SearchOptions{Algorithm: alg, Threshold: 20}); err != nil {
			t.Fatalf("%v on loaded index: %v", alg, err)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Load(bytes.NewReader([]byte("not an index at all, definitely"))); err == nil {
		t.Error("garbage accepted")
	}
	// A huge claimed length must fail fast, not allocate terabytes.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, err := Load(bytes.NewReader(huge)); err == nil {
		t.Error("implausible length accepted")
	}
}

func TestReverseComplement(t *testing.T) {
	if got := ReverseComplement([]byte("ACGT")); string(got) != "ACGT" {
		t.Errorf("RC(ACGT) = %s (ACGT is its own reverse complement)", got)
	}
	if got := ReverseComplement([]byte("AACG")); string(got) != "CGTT" {
		t.Errorf("RC(AACG) = %s, want CGTT", got)
	}
	// Involution.
	rng := rand.New(rand.NewSource(301))
	s := randDNA(500, rng)
	if !bytes.Equal(ReverseComplement(ReverseComplement(s)), s) {
		t.Error("RC is not an involution")
	}
	// Non-DNA bytes survive.
	if got := ReverseComplement([]byte("A#T")); string(got) != "A#T" {
		t.Errorf("RC(A#T) = %s", got)
	}
	// Lowercase (soft-masked) bases complement case-preservingly: the
	// original table left them untouched, silently searching a wrong
	// reverse strand on soft-masked FASTA input.
	if got := ReverseComplement([]byte("acgt")); string(got) != "acgt" {
		t.Errorf("RC(acgt) = %s, want acgt", got)
	}
	if got := ReverseComplement([]byte("AAcg")); string(got) != "cgTT" {
		t.Errorf("RC(AAcg) = %s, want cgTT", got)
	}
	// IUPAC ambiguity codes map to their complements, both cases;
	// S, W, N are self-complementary.
	if got := ReverseComplement([]byte("RYKMBVDHSWN")); string(got) != "NWSDHBVKMRY" {
		t.Errorf("RC(RYKMBVDHSWN) = %s, want NWSDHBVKMRY", got)
	}
	if got := ReverseComplement([]byte("ANa")); string(got) != "tNT" {
		t.Errorf("RC(ANa) = %s, want tNT", got)
	}
	// Involution over the full IUPAC alphabet, mixed case.
	iupac := []byte("ACGTRYKMBVDHSWNacgtrykmbvdhswn")
	if !bytes.Equal(ReverseComplement(ReverseComplement(iupac)), iupac) {
		t.Error("RC is not an involution over IUPAC codes")
	}
	// Case-preservation commutes with case-folding.
	lower := bytes.ToLower(s)
	if !bytes.Equal(ReverseComplement(lower), bytes.ToLower(ReverseComplement(s))) {
		t.Error("lowercase RC diverges from case-folded RC")
	}
}

func TestSearchBothStrands(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	text := randDNA(5000, rng)
	// Plant a reverse-complement copy: a forward-only search misses it.
	segment := text[1000:1100]
	query := append(randDNA(50, rng), append(ReverseComplement(segment), randDNA(50, rng)...)...)

	ix := NewIndex(text)
	fwd, err := ix.Search(query, SearchOptions{Threshold: 40})
	if err != nil {
		t.Fatal(err)
	}
	both, err := ix.SearchBothStrands(query, SearchOptions{Threshold: 40})
	if err != nil {
		t.Fatal(err)
	}
	reverse := 0
	for _, h := range both {
		if h.Strand == Reverse {
			reverse++
		}
	}
	if reverse == 0 {
		t.Error("planted reverse-strand homology not found")
	}
	if len(both) <= len(fwd.Hits) {
		t.Errorf("both-strand search found %d ≤ forward-only %d", len(both), len(fwd.Hits))
	}
}

// TestSearchBothStrandsSoftMaskedAndN is the regression test for the
// complement-table bug: lowercase (soft-masked) and N-containing
// queries must still find reverse-strand homology. Before the fix,
// lowercase bases passed through ReverseComplement unchanged, so the
// reverse search ran against a reversed-but-uncomplemented strand and
// silently found nothing.
func TestSearchBothStrandsSoftMaskedAndN(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	text := randDNA(4000, rng)
	// Soft-mask a region, as repeat maskers emit it.
	for i := 1000; i < 1120; i++ {
		text[i] |= 0x20
	}
	ix := NewIndex(text) // σ=8: upper and lower case letters

	// A lowercase query homologous to the soft-masked region's reverse
	// strand: RC must complement case-preservingly for this to match.
	segment := text[1010:1110]
	query := append(randDNA(40, rng), append(ReverseComplement(segment), randDNA(40, rng)...)...)
	hits, err := ix.SearchBothStrands(query, SearchOptions{Threshold: 40})
	if err != nil {
		t.Fatal(err)
	}
	reverse := 0
	for _, h := range hits {
		if h.Strand == Reverse {
			reverse++
		}
	}
	if reverse == 0 {
		t.Error("soft-masked reverse-strand homology not found")
	}

	// An N-containing query: N matches nothing (it is absent from the
	// text), but behaves as a mismatch inside an otherwise strong
	// reverse-strand alignment.
	nQuery := ReverseComplement(text[2000:2100])
	for _, p := range []int{20, 50, 80} {
		nQuery[p] = 'N'
	}
	hits, err = ix.SearchBothStrands(nQuery, SearchOptions{Threshold: 40})
	if err != nil {
		t.Fatal(err)
	}
	reverse = 0
	for _, h := range hits {
		if h.Strand == Reverse {
			reverse++
		}
	}
	if reverse == 0 {
		t.Error("N-containing reverse-strand homology not found")
	}
}

func TestSearchAllMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	text := randDNA(10000, rng)
	queries := seq.HomologousQueries(seq.DNA, text, 6, 800, 100, 400,
		seq.MutationConfig{SubstitutionRate: 0.04}, rng)
	ix := NewIndex(text)
	opts := SearchOptions{Threshold: 25}

	parallel, err := ix.SearchAll(queries, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(parallel), len(queries))
	}
	for qi, q := range queries {
		seqRes, err := ix.Search(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !align.EqualHits(parallel[qi].Hits, seqRes.Hits) {
			t.Fatalf("query %d: parallel and sequential disagree", qi)
		}
	}
}

// TestSearchAllFirstErrorDeterministic pins first-error determinism:
// when several queries fail in the same scheduling window on different
// workers, exactly the lowest-indexed failure is reported, every time.
// (The pre-fix implementation raced the failures on a boolean flag and
// could report whichever worker lost the race.) Run under -race this
// also exercises the CAS-min path concurrently.
func TestSearchAllFirstErrorDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	text := randDNA(2000, rng)
	ix := NewIndex(text)
	queries := make([][]byte, 24)
	for i := range queries {
		queries[i] = randDNA(60, rng)
	}
	// A block of adjacent failing queries (shorter than q): several
	// workers hit their errors in the same window.
	q := DefaultDNAScheme.Q()
	for _, bad := range []int{7, 8, 9, 10} {
		queries[bad] = randDNA(q-1, rng)
	}
	opts := SearchOptions{Threshold: 25}
	for round := 0; round < 8; round++ {
		res, err := ix.SearchAll(queries, opts, 4)
		if err == nil {
			t.Fatal("failing queries reported no error")
		}
		if res != nil {
			t.Fatal("results returned alongside an error")
		}
		if !strings.Contains(err.Error(), "query 7:") {
			t.Fatalf("round %d: reported %q, want the first failing query (7)", round, err)
		}
	}

	// A configuration error (invalid scheme fails OpenSession) applies
	// to every query: it must come back raw, not misattributed to a
	// "query N".
	bad := SearchOptions{Scheme: Scheme{Match: -1}, Threshold: 25}
	if _, err := ix.SearchAll(queries[:4], bad, 2); err == nil {
		t.Fatal("invalid scheme reported no error")
	} else if strings.Contains(err.Error(), "query ") {
		t.Fatalf("configuration error misattributed to a query: %q", err)
	}
}

func TestSearchAllEdgeCases(t *testing.T) {
	ix := NewIndex([]byte("ACGTACGTACGT"))
	res, err := ix.SearchAll(nil, SearchOptions{}, 0)
	if err != nil || res != nil {
		t.Errorf("empty query set: %v, %v", res, err)
	}
	// Errors propagate (BWT-SW + incompatible scheme).
	_, err = ix.SearchAll([][]byte{[]byte("ACGTACGT")}, SearchOptions{
		Algorithm: BWTSW,
		Scheme:    Scheme{Match: 1, Mismatch: -1, GapOpen: -5, GapExtend: -2},
		Threshold: 10,
	}, 2)
	if err == nil {
		t.Error("worker error not propagated")
	}
}
