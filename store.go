package alae

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"

	"repro/internal/seq"
)

// This file is the serving store: the paper's §2.2 database model
// (concatenate the sequences T1..Tn, search one index, map hits back
// to members) productionised as a first-class subsystem. A Store
// partitions a named sequence collection into K byte-balanced shards,
// builds one Index per shard, and serves searches by scatter-gather:
// every shard is searched at the threshold of the whole database, the
// per-shard hit tables are gathered in shard order, hits ending on
// separator rows are rejected once at the gather (no caller-side
// Locate loops), and every surviving hit is mapped to global
// coordinates plus a member-level SeqHit view through the store's
// sequence table. On top sits a result-level query cache: the indexes
// are immutable, so a repeated (query, options) pair is answered by
// one hash probe.

// SeqRecord is one named input sequence of a Store.
type SeqRecord struct {
	Name string
	Seq  []byte
}

// SeqTable is the name/offset directory of a concatenated sequence
// database: it maps global text intervals to (member, local offset)
// pairs and rejects intervals that touch the separator byte between
// members. Store.Sequences exposes the store's global directory; the
// same type serves single-index collections.
type SeqTable = seq.Table

// NewSeqTable builds the directory for members with the given names
// and sequence lengths, laid out in input order with one separator
// byte between consecutive members (§2.2's T = T1 # T2 # … # Tn).
func NewSeqTable(names []string, lengths []int) *SeqTable {
	return seq.NewTable(names, lengths)
}

// SeqHit is a hit mapped to a member sequence of a Store. The embedded
// Hit carries global coordinates — TEnd is a position in the virtual
// concatenation T1 # T2 # … # Tn, comparable across shard counts —
// while Member, Name and LocalTEnd give the member-level view.
type SeqHit struct {
	Hit
	Member    int    // index of the member sequence, in input order
	Name      string // the member's name
	LocalTEnd int    // TEnd in the member's own coordinates
}

// StoreResult is one Store search's outcome. Results may be shared
// with the store's query cache: callers must not modify Hits.
type StoreResult struct {
	Hits      []SeqHit
	Threshold int // the H actually used, derived from the WHOLE store's length
	Algorithm Algorithm
	Stats     Stats // summed over shards; QueryCacheHits/Misses are per-call
}

// StoreOptions configures NewStore.
type StoreOptions struct {
	// Shards is K, the number of index shards the records are
	// partitioned into (byte-balanced, contiguous in input order).
	// 0 means 1; values above the record count are clamped.
	Shards int
	// QueryCacheSize is the capacity, in cached results, of the
	// result-level query cache. 0 means the default (1024 results);
	// negative disables the cache. The cache never changes results —
	// the shard indexes are immutable, so a cached entry is valid for
	// the store's whole lifetime and eviction is pure capacity
	// management.
	QueryCacheSize int
}

// defaultQueryCacheSize is the default query-cache capacity in cached
// results. An entry holds the mapped hit slice of one search, so the
// footprint is workload-dependent; serving workloads that cache large
// result sets should size this deliberately.
const defaultQueryCacheSize = 1024

// Store is a sharded, multi-sequence serving layer above Index.
// Building one costs K index builds (run in parallel); afterwards any
// number of concurrent searches can run against it. See the file
// comment for the search pipeline.
type Store struct {
	seqs   *SeqTable
	shards []storeShard
	sigma  int         // distinct bytes of the virtual concatenation
	cache  *queryCache // nil when disabled

	mu    sync.Mutex
	pools map[string]*sync.Pool // options fingerprint → *StoreSession pool
}

// storeShard is one shard: an Index over the concatenation of a
// contiguous run of members, plus the run's local directory.
type storeShard struct {
	ix   *Index
	tab  *seq.Table // directory local to the shard's own text
	base int        // global index of the shard's first member
}

// NewStore partitions the records into byte-balanced shards and builds
// one Index per shard (in parallel). The records' sequences are copied
// into the shard texts; the inputs are not retained.
func NewStore(records []SeqRecord, opts StoreOptions) (*Store, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("alae: NewStore needs at least one record")
	}
	k := opts.Shards
	if k <= 0 {
		k = 1
	}
	if k > len(records) {
		k = len(records)
	}
	names := make([]string, len(records))
	lengths := make([]int, len(records))
	var present [256]bool
	for i, r := range records {
		names[i], lengths[i] = r.Name, len(r.Seq)
		for _, b := range r.Seq {
			present[b] = true
		}
	}
	st := &Store{
		seqs:  seq.NewTable(names, lengths),
		sigma: storeSigma(present, len(records)),
		pools: make(map[string]*sync.Pool),
	}
	cuts := partitionRecords(lengths, k)
	st.shards = make([]storeShard, k)
	var wg sync.WaitGroup
	for s := 0; s < k; s++ {
		lo, hi := cuts[s], cuts[s+1]
		recs := make([]seq.Record, hi-lo)
		for i, r := range records[lo:hi] {
			recs[i] = seq.Record{Header: r.Name, Seq: r.Seq}
		}
		wg.Add(1)
		go func(s, lo int, recs []seq.Record) {
			defer wg.Done()
			col := seq.NewCollection(recs)
			st.shards[s] = storeShard{ix: NewIndex(col.Text()), tab: col.Table(), base: lo}
		}(s, lo, recs)
	}
	wg.Wait()
	st.cache = newQueryCache(opts.QueryCacheSize)
	return st, nil
}

// storeSigma counts the distinct bytes of the virtual concatenation:
// the members' bytes plus, when there is more than one member, the
// separator. This matches what a monolithic index over the same
// concatenation reports as its alphabet size, so E-value-derived
// thresholds agree between a Store and a single Index regardless of K.
func storeSigma(present [256]bool, members int) int {
	if members > 1 {
		present[seq.Separator] = true
	}
	sigma := 0
	for _, p := range present {
		if p {
			sigma++
		}
	}
	return sigma
}

// partitionRecords chooses contiguous byte-balanced shard boundaries:
// cuts[s] is the first record of shard s, cuts[k] = len(lengths).
// Greedy with a half-record overshoot rule — a record joins the
// current shard while that lands the shard closer to the remaining
// average — while always leaving at least one record for every
// remaining shard.
func partitionRecords(lengths []int, k int) []int {
	cuts := make([]int, 1, k+1)
	remaining := 0
	for _, n := range lengths {
		remaining += n
	}
	idx := 0
	for s := 0; s < k; s++ {
		target := remaining / (k - s)
		maxEnd := len(lengths) - (k - s - 1)
		end, acc := idx, 0
		for end < maxEnd && (end == idx || acc+lengths[end]/2 <= target) {
			acc += lengths[end]
			end++
		}
		remaining -= acc
		idx = end
		cuts = append(cuts, end)
	}
	return cuts
}

// Sequences returns the store's global sequence directory: member
// names, lengths, and the global offsets hits are mapped through.
func (st *Store) Sequences() *SeqTable { return st.seqs }

// Shards returns the number of index shards.
func (st *Store) Shards() int { return len(st.shards) }

// shardFor returns the shard holding global member g.
func (st *Store) shardFor(g int) *storeShard {
	lo, hi := 0, len(st.shards)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if st.shards[mid].base <= g {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return &st.shards[lo]
}

// resolveThreshold derives the score threshold for a query of length m
// exactly as a monolithic Index over the whole concatenation would
// (resolveThresholdOver with the store's TOTAL length and alphabet).
// Sharding must never change thresholds — that is what keeps the K>1
// hit sets byte-identical to the K=1 ones.
func (st *Store) resolveThreshold(m int, opts SearchOptions, s Scheme) (int, error) {
	return resolveThresholdOver(s, opts, m, st.seqs.TotalLen(), st.sigma)
}

// optionsFingerprint canonically serialises every SearchOptions field.
// It keys both the per-options session pools and the query cache: two
// options values with equal fingerprints are interchangeable.
func optionsFingerprint(o SearchOptions) string {
	b := make([]byte, 0, 64)
	for _, v := range [...]int64{
		int64(o.Scheme.Match), int64(o.Scheme.Mismatch),
		int64(o.Scheme.GapOpen), int64(o.Scheme.GapExtend),
		int64(o.Threshold), int64(o.Algorithm),
		int64(o.AlphabetSize), int64(o.Parallelism),
	} {
		b = strconv.AppendInt(b, v, 10)
		b = append(b, ',')
	}
	b = strconv.AppendUint(b, math.Float64bits(o.EValue), 16)
	for _, f := range [...]bool{o.DisableLengthFilter, o.DisableScoreFilter, o.DisableDomination} {
		if f {
			b = append(b, '1')
		} else {
			b = append(b, '0')
		}
	}
	return string(b)
}

// sessionPool returns (building if needed) the StoreSession pool for
// one options fingerprint. Pools hold warm sessions — per-shard lanes
// whose core sessions, collectors and gram tables are already sized —
// so bursty Store.Search traffic reuses lanes instead of opening per
// call.
func (st *Store) sessionPool(fp string) *sync.Pool {
	st.mu.Lock()
	defer st.mu.Unlock()
	p := st.pools[fp]
	if p == nil {
		p = &sync.Pool{}
		st.pools[fp] = p
	}
	return p
}

// Search runs one query through the store: a query-cache probe, then —
// on a miss — a pooled scatter-gather session (see StoreSession). The
// returned result may be shared with the cache; callers must not
// modify its Hits.
func (st *Store) Search(query []byte, opts SearchOptions) (*StoreResult, error) {
	return st.SearchContext(context.Background(), query, opts)
}

// SearchContext is Search under a context: a deadline or cancellation
// aborts the scatter across every shard within a bounded number of DP
// entries per worker and returns the context's error (see
// Index.SearchContext). An already-dead context is rejected before the
// cache probe, so a cached result never masks a cancelled request, and
// a cancelled search is never published to the cache.
func (st *Store) SearchContext(cx context.Context, query []byte, opts SearchOptions) (*StoreResult, error) {
	s := opts.Scheme
	if s == (Scheme{}) {
		s = DefaultDNAScheme
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := validateSearchOptions(opts, s); err != nil {
		return nil, err
	}
	if err := cx.Err(); err != nil {
		return nil, err
	}
	fp := optionsFingerprint(opts)
	pool := st.sessionPool(fp)
	var ss *StoreSession
	if v := pool.Get(); v != nil {
		ss = v.(*StoreSession)
	} else {
		var err error
		if ss, err = st.OpenSession(opts); err != nil {
			return nil, err
		}
	}
	res, err := st.cachedSearch(cx, ss, fp, query)
	pool.Put(ss)
	return res, err
}

// cachedSearch answers query through the cache when possible,
// computing and publishing through ss otherwise. fp must be the
// fingerprint of ss's options. Errors — cancellation included — are
// never cached: only a completed result is ever published.
func (st *Store) cachedSearch(cx context.Context, ss *StoreSession, fp string, query []byte) (*StoreResult, error) {
	if st.cache == nil {
		return ss.SearchContext(cx, query)
	}
	key := cacheKey(fp, query)
	if cached, ok := st.cache.get(key); ok {
		// A shallow copy shares the immutable hit slice but gives the
		// caller its own counters.
		cp := *cached
		cp.Stats.QueryCacheHits = 1
		return &cp, nil
	}
	res, err := ss.SearchContext(cx, query)
	if err != nil {
		return nil, err
	}
	canon := *res
	canon.Stats.QueryCacheHits, canon.Stats.QueryCacheMisses = 0, 0
	st.cache.put(key, &canon)
	res.Stats.QueryCacheMisses = 1
	return res, nil
}

// QueryCacheStats reports the store-lifetime query-cache hit and miss
// totals (both zero when the cache is disabled).
func (st *Store) QueryCacheStats() (hits, misses int64) {
	if st.cache == nil {
		return 0, 0
	}
	return st.cache.hits.Load(), st.cache.misses.Load()
}

// QueryCachePressure reports the query cache's current footprint: live
// cached results and the total number of hits they pin (the dominant,
// workload-dependent part of the cache's memory). Both are zero when
// the cache is disabled.
func (st *Store) QueryCachePressure() (results int, totalHits int64) {
	if st.cache == nil {
		return 0, 0
	}
	return st.cache.pressure()
}

// ShedQueryCache evicts cached results (approximately least recently
// used first) until the cache pins at most maxHits total hits, and
// reports how many results were evicted. Serving sweeps call it on a
// schedule to bound the cache's worst-case footprint between requests;
// maxHits ≤ 0 empties the cache. No-op when the cache is disabled.
func (st *Store) ShedQueryCache(maxHits int64) (evicted int) {
	if st.cache == nil {
		return 0
	}
	return st.cache.shed(maxHits)
}

// Align reconstructs the best alignment ending at a store hit, for
// display. The traceback runs inside the hit's member shard.
func (st *Store) Align(query []byte, s Scheme, hit SeqHit) (Alignment, error) {
	sh := st.shardFor(hit.Member)
	local := Hit{
		TEnd:  sh.tab.Start(hit.Member-sh.base) + hit.LocalTEnd,
		QEnd:  hit.QEnd,
		Score: hit.Score,
	}
	return sh.ix.Align(query, s, local)
}

// FormatAlignment renders an alignment produced by Store.Align for the
// given hit.
func (st *Store) FormatAlignment(a Alignment, hit SeqHit, query []byte, width int) string {
	return st.shardFor(hit.Member).ix.FormatAlignment(a, query, width)
}

// TopKSeq returns the k highest-scoring store hits (all when k ≤ 0),
// with the same deterministic positional tiebreak as TopK: equal
// scores order by (TEnd, QEnd). The input is not modified; serving
// layers use this to truncate large responses to the best hits.
func TopKSeq(hits []SeqHit, k int) []SeqHit {
	out := append([]SeqHit(nil), hits...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].TEnd != out[j].TEnd {
			return out[i].TEnd < out[j].TEnd
		}
		return out[i].QEnd < out[j].QEnd
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// SampleQuery returns a copy of up to n leading bytes of the store's
// longest member sequence — a guaranteed-hit probe query drawn from
// the store's own data. Serving self-checks use it: a search for a
// member's own prefix must come back with hits, whatever the store
// holds, so an empty answer means the serving path (not the data) is
// broken. The copy never aliases shard texts and never contains a
// separator byte.
func (st *Store) SampleQuery(n int) []byte {
	best := 0
	for g := 1; g < st.seqs.Len(); g++ {
		if st.seqs.SeqLen(g) > st.seqs.SeqLen(best) {
			best = g
		}
	}
	if n > st.seqs.SeqLen(best) {
		n = st.seqs.SeqLen(best)
	}
	if n <= 0 {
		return nil
	}
	sh := st.shardFor(best)
	start := sh.tab.Start(best - sh.base)
	return append([]byte(nil), sh.ix.Text()[start:start+n]...)
}
