package alae

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/seq"
)

// This file is the serving store: the paper's §2.2 database model
// (concatenate the sequences T1..Tn, search one index, map hits back
// to members) productionised as a first-class subsystem. A Store
// builds ONE monolithic index per generation over the members'
// separator-framed concatenation and serves searches by a shared-index
// scatter-gather: the query's grams are resolved ONCE against each
// generation's trie, the resolved fork families are dispatched across
// K work lanes (contiguous family slices load-balanced by estimated
// band cost — see core.Session.SearchLanes), every lane runs at the
// threshold of the whole database, and the gather streams each
// generation's collector table straight into per-member SeqHit buckets
// — rejecting hits ending on separator rows and hits inside tombstoned
// members — with no intermediate per-shard sorted hit slice. K is
// therefore a parallelism knob, not a layout knob: CalculatedEntries
// and the hit set are byte-identical for every K. On top sits a
// result-level query cache: search results are immutable per store
// state, so a repeated (query, options) pair against an unmutated
// store is answered by one hash probe.
//
// The store is MUTABLE: Append, Delete and Compact (storegen.go) give
// it generational LSM-style incremental maintenance, with every search
// running against an immutable atomically-swapped view.

// SeqRecord is one named input sequence of a Store.
type SeqRecord struct {
	Name string
	Seq  []byte
}

// SeqTable is the name/offset directory of a concatenated sequence
// database: it maps global text intervals to (member, local offset)
// pairs and rejects intervals that touch the separator byte between
// members. Store.Sequences exposes the store's global directory; the
// same type serves single-index collections.
type SeqTable = seq.Table

// NewSeqTable builds the directory for members with the given names
// and sequence lengths, laid out in input order with one separator
// byte between consecutive members (§2.2's T = T1 # T2 # … # Tn).
func NewSeqTable(names []string, lengths []int) *SeqTable {
	return seq.NewTable(names, lengths)
}

// SeqHit is a hit mapped to a member sequence of a Store. The embedded
// Hit carries global coordinates — TEnd is a position in the virtual
// concatenation T1 # T2 # … # Tn of the LIVE members, comparable
// across shard counts — while Member, Name and LocalTEnd give the
// member-level view. Member indexes the live directory of the store
// state the search ran against (see Store.Stamp): a mutation can
// renumber members, so hits must not be held across mutations.
type SeqHit struct {
	Hit
	Member    int    // index of the member sequence, in live order
	Name      string // the member's name
	LocalTEnd int    // TEnd in the member's own coordinates
}

// StoreResult is one Store search's outcome. Results may be shared
// with the store's query cache: callers must not modify Hits.
type StoreResult struct {
	Hits      []SeqHit
	Threshold int // the H actually used, derived from the WHOLE store's length
	Algorithm Algorithm
	Stats     Stats // summed over shards; QueryCacheHits/Misses are per-call
}

// StoreOptions configures NewStore.
type StoreOptions struct {
	// Shards is K, the number of work lanes each search's resolved
	// fork families are dispatched across per generation. It is a
	// PARALLELISM knob, not a layout knob: the store always builds one
	// monolithic index per generation, K slices that index's resolved
	// work at search time, and the hit set and CalculatedEntries are
	// byte-identical for every K. 0 means 1; when K ≤ 1 the
	// engine-level SearchOptions.Parallelism governs the fan-out
	// instead (the pre-refactor default).
	Shards int
	// QueryCacheSize is the capacity, in cached results, of the
	// result-level query cache. 0 means the default (1024 results);
	// negative disables the cache. The cache never changes results:
	// keys carry the store's mutation stamp, so an Append/Delete/
	// Compact strands every pre-mutation entry (they age out through
	// normal eviction) instead of ever answering for the wrong store
	// state.
	QueryCacheSize int
}

// defaultQueryCacheSize is the default query-cache capacity in cached
// results. An entry holds the mapped hit slice of one search, so the
// footprint is workload-dependent; serving workloads that cache large
// result sets should size this deliberately.
const defaultQueryCacheSize = 1024

// Store is a sharded, multi-sequence serving layer above Index.
// Building one costs K index builds (run in parallel); afterwards any
// number of concurrent searches can run against it, interleaved with
// mutations: searches read an immutable view swapped atomically by
// Append/Delete/Compact, which serialise among themselves. See the
// file comment for the search pipeline and storegen.go for the
// generational machinery.
type Store struct {
	view  atomic.Pointer[storeView]
	cache *queryCache // nil when disabled

	mu    sync.Mutex
	pools map[string]*sync.Pool // options fingerprint → *StoreSession pool

	mutMu     sync.Mutex // serialises mutations and their persistence
	dir       string     // backing directory; "" = memory-only
	nextGenID uint64
	k         int // K: family-slice lanes per generation search
}

// NewStore builds one monolithic index over the records'
// separator-framed concatenation as the store's first generation. The
// records' sequences are copied into the generation text; the inputs
// are not retained. opts.Shards only sets the search-time lane count —
// see StoreOptions.
func NewStore(records []SeqRecord, opts StoreOptions) (*Store, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("alae: NewStore needs at least one record")
	}
	if err := validateRecords(records); err != nil {
		return nil, err
	}
	g := buildGeneration(1, records)
	return newStoreFromGens([]*generation{g}, 1, opts)
}

// newStoreFromGens assembles a Store around a generation list — the
// shared constructor behind NewStore, LoadStore and loadStoreDir.
func newStoreFromGens(gens []*generation, stamp uint64, opts StoreOptions) (*Store, error) {
	v, err := buildView(gens, stamp)
	if err != nil {
		return nil, err
	}
	st := &Store{
		pools: make(map[string]*sync.Pool),
		cache: newQueryCache(opts.QueryCacheSize),
		k:     max(opts.Shards, 1),
	}
	for _, g := range gens {
		if g.id >= st.nextGenID {
			st.nextGenID = g.id + 1
		}
	}
	st.view.Store(v)
	return st, nil
}

// Sequences returns the store's global sequence directory: the LIVE
// member names, lengths, and the global offsets hits are mapped
// through. The returned table is an immutable snapshot of the current
// store state; a mutation publishes a new one.
func (st *Store) Sequences() *SeqTable { return st.currentView().seqs }

// Shards returns K, the number of work lanes each search's resolved
// fork families are dispatched across per generation (StoreOptions.
// Shards, floor 1). A parallelism knob only: results are byte-
// identical for every K, and the value is constant across mutations.
func (st *Store) Shards() int { return st.k }

// resolveThreshold derives the score threshold for a query of length m
// exactly as a monolithic Index over the whole live concatenation
// would (resolveThresholdOver with the view's TOTAL length and
// alphabet). Neither sharding nor generations may change thresholds —
// that is what keeps the sharded and generational hit sets
// byte-identical to the monolithic ones.
func (v *storeView) resolveThreshold(m int, opts SearchOptions, s Scheme) (int, error) {
	return resolveThresholdOver(s, opts, m, v.seqs.TotalLen(), v.sigma)
}

// optionsFingerprint canonically serialises every SearchOptions field.
// It keys both the per-options session pools and (with the mutation
// stamp) the query cache: two options values with equal fingerprints
// are interchangeable.
func optionsFingerprint(o SearchOptions) string {
	b := make([]byte, 0, 64)
	for _, v := range [...]int64{
		int64(o.Scheme.Match), int64(o.Scheme.Mismatch),
		int64(o.Scheme.GapOpen), int64(o.Scheme.GapExtend),
		int64(o.Threshold), int64(o.Algorithm),
		int64(o.AlphabetSize), int64(o.Parallelism),
	} {
		b = strconv.AppendInt(b, v, 10)
		b = append(b, ',')
	}
	b = strconv.AppendUint(b, math.Float64bits(o.EValue), 16)
	for _, f := range [...]bool{o.DisableLengthFilter, o.DisableScoreFilter, o.DisableDomination} {
		if f {
			b = append(b, '1')
		} else {
			b = append(b, '0')
		}
	}
	return string(b)
}

// sessionPool returns (building if needed) the StoreSession pool for
// one options fingerprint. Pools hold warm sessions — per-shard lanes
// whose core sessions, collectors and gram tables are already sized —
// so bursty Store.Search traffic reuses lanes instead of opening per
// call. Sessions re-sync themselves to the current view per search, so
// pools survive mutations.
func (st *Store) sessionPool(fp string) *sync.Pool {
	st.mu.Lock()
	defer st.mu.Unlock()
	p := st.pools[fp]
	if p == nil {
		p = &sync.Pool{}
		st.pools[fp] = p
	}
	return p
}

// Search runs one query through the store: a query-cache probe, then —
// on a miss — a pooled scatter-gather session (see StoreSession). The
// returned result may be shared with the cache; callers must not
// modify its Hits.
func (st *Store) Search(query []byte, opts SearchOptions) (*StoreResult, error) {
	return st.SearchContext(context.Background(), query, opts)
}

// SearchContext is Search under a context: a deadline or cancellation
// aborts the scatter across every shard within a bounded number of DP
// entries per worker and returns the context's error (see
// Index.SearchContext). An already-dead context is rejected before the
// cache probe, so a cached result never masks a cancelled request, and
// a cancelled search is never published to the cache.
func (st *Store) SearchContext(cx context.Context, query []byte, opts SearchOptions) (*StoreResult, error) {
	s := opts.Scheme
	if s == (Scheme{}) {
		s = DefaultDNAScheme
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := validateSearchOptions(opts, s); err != nil {
		return nil, err
	}
	if err := cx.Err(); err != nil {
		return nil, err
	}
	fp := optionsFingerprint(opts)
	pool := st.sessionPool(fp)
	var ss *StoreSession
	if v := pool.Get(); v != nil {
		ss = v.(*StoreSession)
	} else {
		var err error
		if ss, err = st.OpenSession(opts); err != nil {
			return nil, err
		}
	}
	res, err := st.cachedSearch(cx, ss, fp, query)
	pool.Put(ss)
	return res, err
}

// cachedSearch answers query through the cache when possible,
// computing and publishing through ss otherwise. fp must be the
// fingerprint of ss's options. The session is synced to the current
// view FIRST and the cache key carries that view's mutation stamp, so
// the probe, the computation and the published entry all describe the
// same store state — a concurrent mutation can only make an entry
// stale-keyed (unreachable), never wrong. Errors — cancellation
// included — are never cached: only a completed result is published.
func (st *Store) cachedSearch(cx context.Context, ss *StoreSession, fp string, query []byte) (*StoreResult, error) {
	if err := ss.syncView(); err != nil {
		return nil, err
	}
	if st.cache == nil {
		return ss.searchCurrent(cx, query)
	}
	key := cacheKey(ss.view.stamp, fp, query)
	if cached, ok := st.cache.get(key); ok {
		// A shallow copy shares the immutable hit slice but gives the
		// caller its own counters.
		cp := *cached
		cp.Stats.QueryCacheHits = 1
		return &cp, nil
	}
	res, err := ss.searchCurrent(cx, query)
	if err != nil {
		return nil, err
	}
	canon := *res
	canon.Stats.QueryCacheHits, canon.Stats.QueryCacheMisses = 0, 0
	st.cache.put(key, &canon)
	res.Stats.QueryCacheMisses = 1
	return res, nil
}

// QueryCacheStats reports the store-lifetime query-cache hit and miss
// totals (both zero when the cache is disabled).
func (st *Store) QueryCacheStats() (hits, misses int64) {
	if st.cache == nil {
		return 0, 0
	}
	return st.cache.hits.Load(), st.cache.misses.Load()
}

// QueryCachePressure reports the query cache's current footprint: live
// cached results and the total number of hits they pin (the dominant,
// workload-dependent part of the cache's memory). Both are zero when
// the cache is disabled.
func (st *Store) QueryCachePressure() (results int, totalHits int64) {
	if st.cache == nil {
		return 0, 0
	}
	return st.cache.pressure()
}

// ShedQueryCache evicts cached results (approximately least recently
// used first) until the cache pins at most maxHits total hits, and
// reports how many results were evicted. Serving sweeps call it on a
// schedule to bound the cache's worst-case footprint between requests;
// maxHits ≤ 0 empties the cache. No-op when the cache is disabled.
func (st *Store) ShedQueryCache(maxHits int64) (evicted int) {
	if st.cache == nil {
		return 0
	}
	return st.cache.shed(maxHits)
}

// Align reconstructs the best alignment ending at a store hit, for
// display. The traceback runs inside the hit's member generation. The
// hit must come from a search against the CURRENT store state: after a
// mutation, re-search rather than aligning stale hits (a renumbered
// member is detected by the bounds check, a re-used index is not).
func (st *Store) Align(query []byte, s Scheme, hit SeqHit) (Alignment, error) {
	v := st.currentView()
	if hit.Member < 0 || hit.Member >= len(v.loc) {
		return Alignment{}, fmt.Errorf("alae: hit member %d is not a live member (store mutated since the search?)", hit.Member)
	}
	gl := v.loc[hit.Member]
	g := v.gens[gl.gen]
	local := Hit{
		TEnd:  g.tab.Start(gl.member) + hit.LocalTEnd,
		QEnd:  hit.QEnd,
		Score: hit.Score,
	}
	return g.ix.Align(query, s, local)
}

// FormatAlignment renders an alignment produced by Store.Align for the
// given hit.
func (st *Store) FormatAlignment(a Alignment, hit SeqHit, query []byte, width int) string {
	v := st.currentView()
	if hit.Member < 0 || hit.Member >= len(v.loc) {
		return ""
	}
	g := v.gens[v.loc[hit.Member].gen]
	return g.ix.FormatAlignment(a, query, width)
}

// TopKSeq returns the k highest-scoring store hits (all when k ≤ 0),
// with the same deterministic positional tiebreak as TopK: equal
// scores order by (TEnd, QEnd). The input is not modified; serving
// layers use this to truncate large responses to the best hits.
func TopKSeq(hits []SeqHit, k int) []SeqHit {
	out := append([]SeqHit(nil), hits...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].TEnd != out[j].TEnd {
			return out[i].TEnd < out[j].TEnd
		}
		return out[i].QEnd < out[j].QEnd
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// SampleQuery returns a copy of up to n leading bytes of the store's
// longest LIVE member sequence — a guaranteed-hit probe query drawn
// from the store's own data. Serving self-checks use it: a search for
// a live member's own prefix must come back with hits, whatever the
// store holds, so an empty answer means the serving path (not the
// data) is broken. Tombstoned members are never sampled (their bytes
// would return no hits by design). The copy never aliases shard texts
// and never contains a separator byte.
func (st *Store) SampleQuery(n int) []byte {
	v := st.currentView()
	best := 0
	for g := 1; g < v.seqs.Len(); g++ {
		if v.seqs.SeqLen(g) > v.seqs.SeqLen(best) {
			best = g
		}
	}
	if n > v.seqs.SeqLen(best) {
		n = v.seqs.SeqLen(best)
	}
	if n <= 0 {
		return nil
	}
	gl := v.loc[best]
	g := v.gens[gl.gen]
	start := g.tab.Start(gl.member)
	return append([]byte(nil), g.ix.Text()[start:start+n]...)
}
