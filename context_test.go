package alae

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/seq"
)

// Robustness acceptance tests for the serving-facing API: context
// cancellation through every public search layer, separator-query
// rejection at the store boundary, and crash-safe store persistence.

// storeCancelWorkload is a shared mid-size store workload: big enough
// that searches do real scatter work, small enough for test time.
func storeCancelWorkload(t *testing.T) (st *Store, queries [][]byte) {
	t.Helper()
	wl := buildStoreWorkload(seq.DNA, 6, 6000, 500, 7001)
	st, err := NewStore(wl.records, StoreOptions{Shards: 2, QueryCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	return st, wl.queries
}

// TestStoreSearchContextCancellation: a cancelled context aborts the
// scatter with the context's own error on the sequential and parallel
// per-shard paths, and the store — its pooled sessions included —
// remains fully usable with byte-identical answers afterwards.
func TestStoreSearchContextCancellation(t *testing.T) {
	st, queries := storeCancelWorkload(t)
	for _, parallelism := range []int{1, 4} {
		opts := SearchOptions{Threshold: 60, Parallelism: parallelism}
		ref, err := st.Search(queries[0], opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(ref.Hits) == 0 {
			t.Fatal("workload produced no hits; the test is vacuous")
		}

		cancelled, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := st.SearchContext(cancelled, queries[0], opts); err != context.Canceled {
			t.Fatalf("parallelism %d: cancelled store search returned %v, want context.Canceled", parallelism, err)
		}

		expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel2()
		if _, err := st.SearchContext(expired, queries[0], opts); err != context.DeadlineExceeded {
			t.Fatalf("parallelism %d: expired store search returned %v, want context.DeadlineExceeded", parallelism, err)
		}

		// The pooled sessions the cancelled searches ran through must
		// answer the next search exactly.
		res, err := st.Search(queries[0], opts)
		if err != nil {
			t.Fatal(err)
		}
		if !seqHitsEqual(res.Hits, ref.Hits) {
			t.Fatalf("parallelism %d: post-cancellation store search diverged", parallelism)
		}
	}
}

// TestStoreSessionSearchContextCancellation pins the same contract on
// an explicitly held StoreSession — one serving lane, cancelled and
// then reused.
func TestStoreSessionSearchContextCancellation(t *testing.T) {
	st, queries := storeCancelWorkload(t)
	ss, err := st.OpenSession(SearchOptions{Threshold: 60})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	ref, err := ss.Search(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ss.SearchContext(cancelled, queries[0]); err != context.Canceled {
		t.Fatalf("cancelled session search returned %v, want context.Canceled", err)
	}
	res, err := ss.Search(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if !seqHitsEqual(res.Hits, ref.Hits) {
		t.Fatal("post-cancellation session search diverged")
	}
}

// TestStoreCachedResultNeverMasksCancellation: with the query cache
// on, a dead context is rejected even when the answer is already
// cached, and a cancelled search is never published to the cache.
func TestStoreCachedResultNeverMasksCancellation(t *testing.T) {
	wl := buildStoreWorkload(seq.DNA, 4, 4000, 400, 7002)
	st, err := NewStore(wl.records, StoreOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	opts := SearchOptions{Threshold: 60}
	if _, err := st.Search(wl.queries[0], opts); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := st.SearchContext(cancelled, wl.queries[0], opts); err != context.Canceled {
		t.Fatalf("cached query under a cancelled context returned %v, want context.Canceled", err)
	}
	// A cancelled search of an UNCACHED query must not publish.
	if _, err := st.SearchContext(cancelled, wl.queries[1], opts); err != context.Canceled {
		t.Fatalf("uncached query under a cancelled context returned %v", err)
	}
	res, err := st.Search(wl.queries[1], opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.QueryCacheHits != 0 {
		t.Fatal("a cancelled search published a result to the query cache")
	}
}

// TestIndexSearchContextAllAlgorithms: every algorithm rejects a dead
// context at admission with the context's error (the ALAE engines also
// abort mid-flight; the baselines only gate at admission).
func TestIndexSearchContextAllAlgorithms(t *testing.T) {
	text, query := workload(7003, 4000, 400)
	ix := NewIndex(text)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range []Algorithm{ALAE, ALAEHybrid, BWTSW, BLAST, SmithWaterman} {
		opts := SearchOptions{Threshold: 40, Algorithm: alg}
		if _, err := ix.SearchContext(cancelled, query, opts); err != context.Canceled {
			t.Errorf("%v: cancelled search returned %v, want context.Canceled", alg, err)
		}
		if _, err := ix.SearchContext(context.Background(), query, opts); err != nil {
			t.Errorf("%v: background-context search failed: %v", alg, err)
		}
	}
}

// TestStoreSearchAllContextCancellation: a cancelled batch returns the
// context's error and stops launching queries.
func TestStoreSearchAllContextCancellation(t *testing.T) {
	st, queries := storeCancelWorkload(t)
	batch := make([][]byte, 12)
	for i := range batch {
		batch[i] = queries[i%len(queries)]
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := st.SearchAllContext(cancelled, batch, SearchOptions{Threshold: 60}, 2); err != context.Canceled {
		t.Fatalf("cancelled SearchAll returned %v, want context.Canceled", err)
	}
	// And the store still serves batches afterwards.
	res, err := st.SearchAll(batch[:2], SearchOptions{Threshold: 60}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0] == nil || len(res[0].Hits) == 0 {
		t.Fatal("post-cancellation SearchAll returned no results")
	}
}

// TestStoreRejectsSeparatorQueries: a query containing the member
// separator byte is rejected at every store search entry point with a
// diagnostic, not answered with cross-member matches.
func TestStoreRejectsSeparatorQueries(t *testing.T) {
	wl := buildStoreWorkload(seq.DNA, 4, 2000, 300, 7004)
	st, err := NewStore(wl.records, StoreOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	bad := append(append([]byte("ACGTACGT"), seq.Separator), []byte("ACGTACGT")...)

	if _, err := st.Search(bad, SearchOptions{Threshold: 30}); err == nil || !strings.Contains(err.Error(), "separator") {
		t.Fatalf("Store.Search accepted a separator query (err=%v)", err)
	}
	ss, err := st.OpenSession(SearchOptions{Threshold: 30})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if _, err := ss.Search(bad); err == nil || !strings.Contains(err.Error(), "separator") {
		t.Fatalf("StoreSession.Search accepted a separator query (err=%v)", err)
	}
	if _, err := st.SearchAll([][]byte{wl.queries[0], bad}, SearchOptions{Threshold: 30}, 2); err == nil || !strings.Contains(err.Error(), "separator") {
		t.Fatalf("Store.SearchAll accepted a separator query (err=%v)", err)
	}
	// Clean queries still work after the rejections.
	if _, err := st.Search(wl.queries[0], SearchOptions{Threshold: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestStoreSaveFileRoundTrip: SaveFile → LoadStoreFile preserves the
// partition and the answers, leaves no temp litter, and overwrites
// atomically.
func TestStoreSaveFileRoundTrip(t *testing.T) {
	wl := buildStoreWorkload(seq.DNA, 5, 2000, 300, 7005)
	st, err := NewStore(wl.records, StoreOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	opts := SearchOptions{Threshold: 40}
	ref, err := st.Search(wl.queries[0], opts)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "db.alae")
	if err := st.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Saving again over the existing file must also work (the reload
	// cycle: rebuild, SaveFile, daemon reloads).
	if err := st.SaveFile(path); err != nil {
		t.Fatalf("overwriting SaveFile: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "db.alae" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("SaveFile left litter: %v", names)
	}

	loaded, err := LoadStoreFile(path, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// K is a runtime parallelism knob, never persisted: a load without
	// StoreOptions.Shards serves at K=1 whatever the saver used.
	if loaded.Shards() != 1 || loaded.Sequences().Len() != st.Sequences().Len() {
		t.Fatalf("round trip: %d lanes (want default 1), %d/%d members",
			loaded.Shards(), loaded.Sequences().Len(), st.Sequences().Len())
	}
	res, err := loaded.Search(wl.queries[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	if !seqHitsEqual(res.Hits, ref.Hits) {
		t.Fatal("round trip changed the answers")
	}
}

// TestStoreSaveFileFailureLeavesNoTrace: a SaveFile that cannot
// complete (unwritable directory) errors without creating or damaging
// anything at the target path.
func TestStoreSaveFileFailureLeavesNoTrace(t *testing.T) {
	wl := buildStoreWorkload(seq.DNA, 3, 500, 100, 7006)
	st, err := NewStore(wl.records, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(t.TempDir(), "no-such-dir", "db.alae")
	if err := st.SaveFile(missing); err == nil {
		t.Fatal("SaveFile into a missing directory succeeded")
	}
	if _, err := os.Stat(missing); !os.IsNotExist(err) {
		t.Fatalf("failed SaveFile left something at the target: %v", err)
	}
}

// TestStoreSampleQuery: the serving probe's query source returns a
// separator-free copy of real store bytes that actually hits.
func TestStoreSampleQuery(t *testing.T) {
	wl := buildStoreWorkload(seq.DNA, 4, 1000, 200, 7007)
	st, err := NewStore(wl.records, StoreOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := st.SampleQuery(64)
	if len(q) != 64 {
		t.Fatalf("SampleQuery returned %d bytes, want 64", len(q))
	}
	if err := validateStoreQuery(q); err != nil {
		t.Fatalf("sampled query contains a separator: %v", err)
	}
	res, err := st.Search(q, SearchOptions{Threshold: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("a sampled member prefix returned no hits")
	}
	// Oversized requests clamp to the longest member.
	if q := st.SampleQuery(1 << 30); len(q) == 0 || len(q) > st.Sequences().TotalLen() {
		t.Fatalf("clamped SampleQuery returned %d bytes", len(q))
	}
}
